#!/usr/bin/env python3
"""Validate the observability artifacts the CLI and bench emit.

Usage:
    validate_obs.py json FILE       # `check --json` / `batch --json` output
    validate_obs.py explain FILE    # `check --explain --json` output
    validate_obs.py trace FILE      # --trace JSONL spans/events
    validate_obs.py chrome FILE [MIN_TRACKS]  # --chrome-trace JSON
    validate_obs.py metrics FILE    # --metrics Prometheus text exposition
    validate_obs.py bench FILE      # BENCH_results.json

Exits non-zero with a message on the first violation. Used by CI; handy
locally too.
"""
import json
import re
import sys


def die(msg):
    sys.exit(f"validate_obs: {msg}")


def need(obj, keys, where):
    for k in keys:
        if k not in obj:
            die(f"{where}: missing key {k!r} (has {sorted(obj)})")


def check_outcome(o, where):
    need(o, ["verdict", "procedure", "detail", "cached", "seconds", "stages"], where)
    if o["verdict"] not in ("safe", "unsafe", "unknown"):
        die(f"{where}: bad verdict {o['verdict']!r}")
    for i, st in enumerate(o["stages"]):
        need(st, ["stage", "procedure", "status", "detail", "seconds"],
             f"{where}.stages[{i}]")


EXPLAIN_STATUSES = ("decided", "passed", "error", "skipped",
                    "inapplicable", "not-reached")


def check_explain_record(ex, where):
    """The typed provenance record: schema tag, the whole checker table
    with one entry per stage, cache disposition, optional oracle."""
    need(ex, ["schema", "verdict", "procedure", "detail", "cached",
              "seconds", "cache", "stages"], where)
    if ex["schema"] != "distlock.explain/1":
        die(f"{where}: bad schema {ex['schema']!r}")
    if ex["verdict"] not in ("safe", "unsafe", "unknown"):
        die(f"{where}: bad verdict {ex['verdict']!r}")
    need(ex["cache"], ["fingerprint", "hit", "pair_hits", "pair_misses",
                       "pairs_redecided"], f"{where}.cache")
    if not re.fullmatch(r"[0-9a-f]{32}", ex["cache"]["fingerprint"]):
        die(f"{where}.cache: fingerprint is not a 32-char hex digest")
    if not ex["stages"]:
        die(f"{where}: empty stage table")
    decided = 0
    for i, st in enumerate(ex["stages"]):
        w = f"{where}.stages[{i}]"
        need(st, ["checker", "procedure", "cost", "applicable", "status",
                  "detail", "seconds", "budget_spent_s"], w)
        if st["status"] not in EXPLAIN_STATUSES:
            die(f"{w}: bad status {st['status']!r}")
        if st["status"] == "decided":
            decided += 1
        if not st["applicable"] and st["status"] != "inapplicable":
            die(f"{w}: inapplicable stage has status {st['status']!r}")
    if ex["verdict"] in ("safe", "unsafe") and not ex["cache"]["hit"] \
            and decided != 1:
        die(f"{where}: decided verdict but {decided} 'decided' stages")
    if "oracle" in ex:
        need(ex["oracle"], ["states", "dup_hits", "dedup_ratio",
                            "exhausted"], f"{where}.oracle")
        if not 0 <= ex["oracle"]["dedup_ratio"] <= 1:
            die(f"{where}.oracle: dedup_ratio out of [0,1]")


def check_explain(path):
    data = json.load(open(path))
    outcomes = data["results"] if "results" in data else [data]
    n = 0
    for i, o in enumerate(outcomes):
        if "explain" not in o:
            die(f"outcome[{i}]: missing explain record "
                "(was --explain passed?)")
        check_explain_record(o["explain"], f"outcome[{i}].explain")
        n += 1
    if n == 0:
        die(f"{path}: no outcomes")


def check_json(path):
    data = json.load(open(path))
    if "results" in data:  # batch
        need(data, ["results", "report"], "batch")
        for i, o in enumerate(data["results"]):
            check_outcome(o, f"results[{i}]")
        need(data["report"],
             ["submitted", "unique", "batch_dedup_hits", "cache_hits",
              "cache_misses", "pair_hits", "pair_misses", "pairs_redecided",
              "hit_rate", "seconds", "jobs", "per_procedure"],
             "report")
        if not (isinstance(data["report"]["jobs"], int)
                and data["report"]["jobs"] >= 1):
            die(f"report: jobs must be a positive int, got "
                f"{data['report']['jobs']!r}")
    else:  # single check
        check_outcome(data, "outcome")


def check_trace(path):
    stage_attrs = ("checker", "verdict", "cache_hit")
    n = 0
    for ln, line in enumerate(open(path), 1):
        if not line.strip():
            continue
        rec = json.loads(line)
        n += 1
        if rec.get("type") == "span":
            need(rec, ["id", "name", "start_s", "duration_s"], f"line {ln}")
            if rec["name"] == "engine.stage":
                for k in stage_attrs:
                    if k not in rec.get("attrs", {}):
                        die(f"line {ln}: engine.stage span lacks attr {k!r}")
        elif rec.get("type") == "event":
            need(rec, ["name", "time_s"], f"line {ln}")
        else:
            die(f"line {ln}: record is neither span nor event")
    if n == 0:
        die(f"{path}: empty trace")


def check_chrome(path, min_tracks=1):
    """--chrome-trace output: the trace-event JSON object format that
    chrome://tracing and Perfetto load."""
    data = json.load(open(path))
    need(data, ["traceEvents"], "chrome")
    evs = data["traceEvents"]
    if not evs:
        die(f"{path}: no trace events")
    tracks = set()
    complete = 0
    for i, e in enumerate(evs):
        need(e, ["ph", "pid", "name"], f"traceEvents[{i}]")
        if e["ph"] == "M":  # metadata: names a process/thread track
            continue  # process_name events legitimately carry no tid
        need(e, ["ts", "tid"], f"traceEvents[{i}]")
        if e["ts"] < 0:
            die(f"traceEvents[{i}]: negative timestamp")
        if e["ph"] == "X":
            need(e, ["dur"], f"traceEvents[{i}]")
            if e["dur"] < 0:
                die(f"traceEvents[{i}]: negative duration")
            complete += 1
            tracks.add((e["pid"], e["tid"]))
        elif e["ph"] == "i":
            if e.get("s") not in ("t", "p", "g"):
                die(f"traceEvents[{i}]: instant without a scope")
        else:
            die(f"traceEvents[{i}]: unexpected phase {e['ph']!r}")
    if complete == 0:
        die(f"{path}: no complete (ph=X) events")
    if len(tracks) < min_tracks:
        die(f"{path}: {len(tracks)} track(s), expected >= {min_tracks}")


def check_metrics(path):
    sample = re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$')
    families, current = set(), None
    n = 0
    for ln, line in enumerate(open(path), 1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            fam, kind = line.split()[2], line.split()[3]
            if fam in families:
                die(f"line {ln}: family {fam} declared twice")
            if kind not in ("counter", "gauge", "histogram"):
                die(f"line {ln}: bad kind {kind}")
            families.add(fam)
            current = fam
            continue
        if not sample.match(line):
            die(f"line {ln}: unparseable sample {line!r}")
        name = line.split("{")[0].split(" ")[0]
        base = name
        for suf in ("_bucket", "_sum", "_count"):
            if name.endswith(suf) and name[: -len(suf)] in families:
                base = name[: -len(suf)]
        if base != current:
            die(f"line {ln}: sample {name} outside its family block")
        n += 1
    if n == 0:
        die(f"{path}: no samples")


def check_bench(path):
    data = json.load(open(path))
    need(data, ["harness", "version", "experiments", "host"], "bench")
    host = data["host"]
    need(host, ["cpu_count", "ocaml_version", "git_describe", "os_type",
                "word_size"], "bench.host")
    if host["cpu_count"] < 1:
        die(f"bench: implausible cpu_count {host['cpu_count']}")
    if not host["ocaml_version"]:
        die("bench: empty ocaml_version")
    if not data["experiments"]:
        die("bench: no experiments recorded")
    for i, e in enumerate(data["experiments"]):
        need(e, ["id", "params", "wall_seconds", "cpu_seconds", "metrics"],
             f"experiments[{i}]")
        if e["id"] == "E15":
            check_e15(e)
        if e["id"] == "E16":
            check_e16(e)
        if e["id"] == "E17":
            check_e17(e)
        if e["id"] == "E18":
            check_e18(e)
        if e["id"] == "E19":
            check_e19(e)
        if e["id"] == "E20":
            check_e20(e)


def check_e15(e):
    """The parallel-speedup artifact: a per-jobs curve with agreement
    flags, plus the headline jobs:4 speedup."""
    m = e["metrics"]
    need(e["params"], ["corpus_systems", "recommended_domain_count"],
         "E15.params")
    if e["params"]["corpus_systems"] < 500:
        die(f"E15: corpus too small ({e['params']['corpus_systems']} < 500)")
    for jobs in (1, 2, 4, 8):
        need(m, [f"jobs{jobs}_seconds", f"jobs{jobs}_speedup",
                 f"jobs{jobs}_verdicts_agree"], "E15.metrics")
        if m[f"jobs{jobs}_seconds"] <= 0:
            die(f"E15: jobs{jobs}_seconds not positive")
        if m[f"jobs{jobs}_verdicts_agree"] is not True:
            die(f"E15: verdicts disagree between jobs:1 and jobs:{jobs}")
    need(m, ["speedup_jobs4"], "E15.metrics")
    if m["speedup_jobs4"] <= 0:
        die("E15: speedup_jobs4 not positive")


def check_e16(e):
    """The state-graph-oracle artifact: the memoized state graph must be
    strictly smaller than the schedule tree on every corpus system, win
    the wall-clock race by at least 10x where schedule enumeration is
    feasible, and agree with itself across the batch domain pool."""
    m = e["metrics"]
    need(e["params"], ["corpus_systems", "count_cap"], "E16.params")
    if e["params"]["corpus_systems"] < 40:
        die(f"E16: corpus too small ({e['params']['corpus_systems']} < 40)")
    need(m, ["states_fewer_on_every_system", "total_states",
             "total_duplicate_hits", "speedup_subset_systems",
             "median_decide_speedup", "jobs1_seconds", "jobs4_seconds",
             "jobs_verdicts_agree"], "E16.metrics")
    if m["states_fewer_on_every_system"] is not True:
        die("E16: some system visited at least as many states as schedules")
    if m["total_states"] <= 0:
        die("E16: no states visited")
    if m["speedup_subset_systems"] < 1:
        die("E16: empty exhaustive-oracle speedup subset")
    if m["median_decide_speedup"] < 10:
        die(f"E16: median decision speedup {m['median_decide_speedup']:.1f}x "
            "below the 10x bar")
    if m["jobs_verdicts_agree"] is not True:
        die("E16: jobs:1 and jobs:4 verdicts disagree")


def check_e17(e):
    """The incremental-session artifact: for each corpus size the warm
    session must beat from-scratch decides by at least 10x at the
    median, agree with them on every step, and re-run at most 2n-3
    pairs per single-transaction edit."""
    m = e["metrics"]
    need(e["params"], ["edits_per_size"], "E17.params")
    for n in (64, 128):
        need(m, [f"n{n}_delta_median_seconds", f"n{n}_scratch_median_seconds",
                 f"n{n}_speedup", f"n{n}_max_pairs_redecided",
                 f"n{n}_pair_bound", f"n{n}_verdicts_agree"], "E17.metrics")
        if m[f"n{n}_delta_median_seconds"] <= 0:
            die(f"E17: n{n}_delta_median_seconds not positive")
        if m[f"n{n}_verdicts_agree"] is not True:
            die(f"E17: n={n}: decide_delta disagrees with from-scratch")
        if m[f"n{n}_pair_bound"] != 2 * n - 3:
            die(f"E17: n={n}: pair bound is {m[f'n{n}_pair_bound']}, "
                f"expected {2 * n - 3}")
        if m[f"n{n}_max_pairs_redecided"] > m[f"n{n}_pair_bound"]:
            die(f"E17: n={n}: re-decided {m[f'n{n}_max_pairs_redecided']} "
                f"pairs in one edit, above the 2n-3 bound "
                f"{m[f'n{n}_pair_bound']}")
        if m[f"n{n}_speedup"] < 10:
            die(f"E17: n={n}: warm-cache speedup {m[f'n{n}_speedup']:.1f}x "
                "below the 10x bar")


def check_e18(e):
    """The recorder-overhead artifact: the always-on flight recorder must
    cost under 5% at the median against a noop sink; the full stack
    (recorder + JSONL + Chrome collector) just has to be measured."""
    m = e["metrics"]
    need(e["params"], ["queries", "full_stack"], "E18.params")
    need(m, ["noop_seconds", "recorder_seconds", "full_seconds",
             "recorder_overhead_ratio", "full_overhead_ratio"],
         "E18.metrics")
    for k in ("noop_seconds", "recorder_seconds", "full_seconds"):
        if m[k] <= 0:
            die(f"E18: {k} not positive")
    if m["recorder_overhead_ratio"] >= 1.05:
        die(f"E18: recorder overhead {m['recorder_overhead_ratio']:.3f}x "
            "at or above the 1.05x bar")


def check_e19(e):
    """The fault-injection artifact: on a corpus the decision engine
    proves safe, leased locks with crashes must produce non-serializable
    histories at small TTLs (the static-safe/dynamic-unsafe gap), and
    the gap must vanish exactly when the TTL covers the downtime, when
    faults are off, and under the expiry-free bakery backend. The whole
    sweep must be bit-deterministic."""
    m = e["metrics"]
    need(e["params"], ["corpus_systems", "seeds_per_system", "down_time"],
         "E19.params")
    need(m, ["corpus_statically_safe", "gap_small_ttl", "gap_infinite_ttl",
             "gap_faults_off", "bakery_gap", "deterministic"], "E19.metrics")
    if m["corpus_statically_safe"] is not True:
        die("E19: corpus not statically proven safe — the gap would be "
            "meaningless")
    if m["gap_small_ttl"] <= 0:
        die("E19: no non-serializable histories at small TTL; the "
            "static-safe/dynamic-unsafe gap did not appear")
    for k in ("gap_infinite_ttl", "gap_faults_off", "bakery_gap"):
        if m[k] != 0:
            die(f"E19: {k} is {m[k]}, expected exactly 0")
    if m["deterministic"] is not True:
        die("E19: re-run with the same seeds diverged")


def check_e20(e):
    """The live-telemetry artifact: a concurrent scraper on the fully
    instrumented simulator must cost under 1.10x against the
    recorder-only baseline, the sim metric families must be present on
    /metrics, and every scrape taken during a parallel batch must parse
    with monotone counters."""
    m = e["metrics"]
    need(e["params"], ["corpus_systems", "seeds_per_system", "batch_queries",
                       "batch_jobs"], "E20.params")
    need(m, ["baseline_seconds", "scraped_seconds", "scrape_overhead_ratio",
             "overhead_scrapes", "sim_families_present", "batch_scrapes",
             "scrapes_parse", "counters_monotone"], "E20.metrics")
    for k in ("baseline_seconds", "scraped_seconds"):
        if m[k] <= 0:
            die(f"E20: {k} not positive")
    if m["scrape_overhead_ratio"] >= 1.10:
        die(f"E20: scrape overhead {m['scrape_overhead_ratio']:.3f}x "
            "at or above the 1.10x bar")
    if m["overhead_scrapes"] < 1:
        die("E20: no scrapes landed during the overhead measurement")
    if m["sim_families_present"] is not True:
        die("E20: simulator metric families missing from /metrics")
    if m["batch_scrapes"] < 1:
        die("E20: no scrapes landed during the parallel batch")
    if m["scrapes_parse"] is not True:
        die("E20: a scrape taken under concurrent writes failed to parse")
    if m["counters_monotone"] is not True:
        die("E20: decision counter went backwards between scrapes")


def main():
    if len(sys.argv) not in (3, 4):
        die("usage: validate_obs.py "
            "{json|explain|trace|chrome|metrics|bench} FILE [MIN_TRACKS]")
    kind, path = sys.argv[1], sys.argv[2]
    handlers = {"json": check_json, "explain": check_explain,
                "trace": check_trace, "metrics": check_metrics,
                "bench": check_bench}
    if kind == "chrome":
        min_tracks = int(sys.argv[3]) if len(sys.argv) == 4 else 1
        check_chrome(path, min_tracks)
    elif kind in handlers:
        if len(sys.argv) == 4:
            die(f"{kind} takes no extra argument")
        handlers[kind](path)
    else:
        die(f"unknown artifact kind {kind!r}")
    print(f"validate_obs: {kind} {path}: OK")


if __name__ == "__main__":
    main()
