(* The incremental session: Dyngraph maintenance, pair fingerprints,
   and decide_delta agreement with from-scratch decisions under random
   mutation scripts. *)

open Distlock_txn
open Distlock_core
module E = Distlock_engine
module G = Distlock_graph

(* ------------------------------------------------------------------ *)
(* Dyngraph *)

let test_dyngraph_basic () =
  let g = G.Dyngraph.create () in
  Util.check_int "empty" 0 (G.Dyngraph.num_vertices g);
  G.Dyngraph.add_vertex g "a";
  G.Dyngraph.add_vertex g "b";
  G.Dyngraph.add_vertex g "c";
  G.Dyngraph.add_vertex g "a";
  (* no-op *)
  Util.check_int "vertices" 3 (G.Dyngraph.num_vertices g);
  G.Dyngraph.add_edge g "a" "b";
  G.Dyngraph.add_edge g "b" "a";
  (* re-add, other orientation: still one edge *)
  G.Dyngraph.add_edge g "b" "c";
  Util.check_int "edges" 2 (G.Dyngraph.num_edges g);
  Util.check "undirected" true (G.Dyngraph.has_edge g "c" "b");
  Alcotest.(check (list string)) "neighbours sorted" [ "a"; "c" ]
    (G.Dyngraph.neighbours g "b");
  G.Dyngraph.remove_vertex g "b";
  Util.check_int "incident edges dropped" 0 (G.Dyngraph.num_edges g);
  Util.check "vertex gone" false (G.Dyngraph.has_vertex g "b");
  Util.check "edge gone" false (G.Dyngraph.has_edge g "a" "b");
  G.Dyngraph.remove_edge g "a" "c";
  (* absent: no-op *)
  Alcotest.check_raises "self-loop rejected"
    (Invalid_argument "Dyngraph.add_edge: self-loop") (fun () ->
      G.Dyngraph.add_edge g "a" "a")

let test_dyngraph_snapshot () =
  let g = G.Dyngraph.create () in
  List.iter (G.Dyngraph.add_vertex g) [ "x"; "y"; "z" ];
  G.Dyngraph.add_edge g "x" "y";
  G.Dyngraph.add_edge g "y" "z";
  let idx = function "x" -> 0 | "y" -> 1 | "z" -> 2 | _ -> assert false in
  let d = G.Dyngraph.to_digraph g ~index_of:idx ~n:3 in
  (* Both orientations of each undirected edge. *)
  Util.check "x->y" true (G.Digraph.mem_arc d 0 1);
  Util.check "y->x" true (G.Digraph.mem_arc d 1 0);
  Util.check "y->z" true (G.Digraph.mem_arc d 1 2);
  Util.check "no x->z" false (G.Digraph.mem_arc d 0 2)

(* ------------------------------------------------------------------ *)
(* Pair fingerprints *)

let three_txn_db () =
  let db = Database.create () in
  Database.add_all db [ ("x", 1); ("y", 1); ("z", 2) ];
  db

let chained db name es = Builder.two_phase_sequence db ~name es

let test_pair_fingerprint () =
  let db = three_txn_db () in
  let t1 = chained db "T1" [ "x"; "z" ] in
  let t2 = chained db "T2" [ "y"; "z" ] in
  let t3 = chained db "T3" [ "x"; "y" ] in
  let sys = System.make db [ t1; t2; t3 ] in
  Util.check "symmetric" true
    (System.pair_fingerprint sys 0 1 = System.pair_fingerprint sys 1 0);
  (* Invariant under reordering of unrelated transactions: the (T1,T2)
     digest does not care where T3 sits, or what it contains. *)
  let reordered = System.make db [ t3; t1; t2 ] in
  Util.check "reorder-invariant" true
    (System.pair_fingerprint sys 0 1 = System.pair_fingerprint reordered 1 2);
  let t3' = chained db "T3" [ "y" ] in
  let edited = System.make db [ t1; t2; t3' ] in
  Util.check "edit-of-other-invariant" true
    (System.pair_fingerprint sys 0 1 = System.pair_fingerprint edited 0 1);
  (* ... but editing a member changes it. *)
  let t2' = chained db "T2" [ "z"; "y" ] in
  let changed = System.make db [ t1; t2'; t3 ] in
  Util.check "member-edit-sensitive" false
    (System.pair_fingerprint sys 0 1 = System.pair_fingerprint changed 0 1);
  (* Distinct pairs get distinct digests. *)
  Util.check "pairs distinct" false
    (System.pair_fingerprint sys 0 1 = System.pair_fingerprint sys 0 2);
  (* The fp-injected variant is byte-identical. *)
  let fp i = Txn.fingerprint (System.txn sys i) in
  Util.check "with-variant identical" true
    (System.pair_fingerprint sys 0 2
    = System.pair_fingerprint_with ~fp sys 0 2);
  Alcotest.check_raises "equal indices"
    (Invalid_argument "System.pair_fingerprint: equal indices") (fun () ->
      ignore (System.pair_fingerprint sys 1 1))

(* ------------------------------------------------------------------ *)
(* Session mutations and reuse *)

let loose db name es =
  (* per-entity critical sections only — no cross-entity order *)
  let steps =
    List.concat_map
      (fun e -> [ ("L" ^ e, `Lock e); ("U" ^ e, `Unlock e) ])
      es
  in
  let arcs = List.map (fun e -> ("L" ^ e, "U" ^ e)) es in
  Builder.make_exn db ~name ~steps ~arcs ()

let test_session_reuse () =
  let db = three_txn_db () in
  let t1 = chained db "T1" [ "x"; "z" ] in
  let t2 = chained db "T2" [ "y"; "z" ] in
  let t3 = chained db "T3" [ "x"; "y" ] in
  let s = Incremental.create db [ t1; t2; t3 ] in
  let o1 = Incremental.decide_delta s in
  Util.check "base safe" true (o1.Incremental.verdict = Incremental.Safe);
  Util.check_int "base pairs all fresh" 3 o1.Incremental.pairs_redecided;
  Util.check_int "base nothing reused" 0 o1.Incremental.pairs_reused;
  (* Untouched re-decision: everything reused, nothing re-run. *)
  let o2 = Incremental.decide_delta s in
  Util.check_int "warm pairs reused" 3 o2.Incremental.pairs_reused;
  Util.check_int "warm none re-decided" 0 o2.Incremental.pairs_redecided;
  Util.check_int "warm cycles reused" o2.Incremental.cycles_total
    o2.Incremental.cycles_reused;
  (* Break the (T1,T2) pair: loose sections over two sites. *)
  Incremental.replace_txn s "T1" (loose db "T1" [ "x"; "z" ]);
  Incremental.replace_txn s "T2" (loose db "T2" [ "x"; "z" ]);
  let o3 = Incremental.decide_delta s in
  (match o3.Incremental.verdict with
  | Incremental.Unsafe (Multisite.Unsafe_pair (i, j)) ->
      let sys = Incremental.system s in
      Util.check "witness pair really unsafe" false
        (Safety.is_safe_exn (Multisite.pair_system sys i j))
  | _ -> Alcotest.fail "expected an unsafe pair");
  (* Restore the originals: every pair digest matches an earlier one. *)
  Incremental.replace_txn s "T1" t1;
  Incremental.replace_txn s "T2" t2;
  let o4 = Incremental.decide_delta s in
  Util.check "restored safe" true (o4.Incremental.verdict = Incremental.Safe);
  Util.check_int "restore re-decides nothing" 0 o4.Incremental.pairs_redecided;
  Util.check_int "restore re-judges nothing" 0 o4.Incremental.cycles_rejudged;
  (* Removal shrinks the conflict graph. *)
  Incremental.remove_txn s "T3";
  Util.check_int "two left" 2 (Incremental.num_txns s);
  let o5 = Incremental.decide_delta s in
  Util.check_int "one pair left" 1 o5.Incremental.pairs_total;
  Util.check_int "still cached" 1 o5.Incremental.pairs_reused

let test_session_errors () =
  let db = three_txn_db () in
  let t1 = chained db "T1" [ "x"; "z" ] in
  let s = Incremental.create db [ t1 ] in
  let o = Incremental.decide_delta s in
  Util.check "singleton safe" true (o.Incremental.verdict = Incremental.Safe);
  Alcotest.check_raises "duplicate add"
    (Invalid_argument "Incremental: duplicate transaction name T1")
    (fun () -> Incremental.add_txn s t1);
  Alcotest.check_raises "unknown remove"
    (Invalid_argument "Incremental: unknown transaction T9") (fun () ->
      Incremental.remove_txn s "T9");
  Alcotest.check_raises "unknown replace"
    (Invalid_argument "Incremental: unknown transaction T9") (fun () ->
      Incremental.replace_txn s "T9" t1);
  Incremental.remove_txn s "T1";
  let o = Incremental.decide_delta s in
  Util.check "empty safe" true (o.Incremental.verdict = Incremental.Safe);
  Util.check_int "empty examines nothing" 0 o.Incremental.pairs_total

(* ------------------------------------------------------------------ *)
(* Budgeted cycle enumeration: typed exhaustion, never a hang *)

let triangle_system () =
  let db = three_txn_db () in
  System.make db
    [
      chained db "T1" [ "x"; "z" ];
      chained db "T2" [ "y"; "z" ];
      chained db "T3" [ "x"; "y" ];
    ]

let test_exhaustion () =
  let sys = triangle_system () in
  let g = Multisite.conflict_graph sys in
  (match Multisite.simple_cycles_bounded ~limit:2 g with
  | Multisite.Cut { examined; limit } ->
      Util.check_int "limit echoed" 2 limit;
      Util.check "examined past limit" true (examined > limit)
  | Multisite.Cycles _ -> Alcotest.fail "expected Cut at limit 2");
  (match Multisite.simple_cycles_bounded ~limit:1_000_000 g with
  | Multisite.Cycles cs -> Util.check "cycles found" true (cs <> [])
  | Multisite.Cut _ -> Alcotest.fail "unexpected Cut");
  (match Multisite.decide_bounded ~cycle_limit:2 sys with
  | Multisite.Exhausted _ -> ()
  | Multisite.Decided _ -> Alcotest.fail "expected Exhausted");
  (* The session maps exhaustion to Unknown, not a hang or a crash. *)
  let s = Incremental.of_system sys in
  (match Incremental.decide_delta ~budget:(E.Budget.of_steps 2) s with
  | { Incremental.verdict = Incremental.Unknown _; _ } -> ()
  | _ -> Alcotest.fail "expected Unknown under a 2-step budget");
  (* The engine stage turns the same exhaustion into an inconclusive
     Pass — visible in the stage trace — and the pipeline still
     terminates (here Unknown: the state-graph fallback is equally
     starved by a 4-step budget). *)
  let eng = Decision.create ~budget:(E.Budget.of_steps 4) () in
  let o = Decision.decide eng sys in
  (match o.E.Outcome.verdict with
  | E.Outcome.Unknown _ -> ()
  | _ -> Alcotest.fail "expected Unknown under a 4-step budget");
  Util.check "multisite stage passes on exhaustion" true
    (List.exists
       (fun (s : E.Outcome.stage_trace) ->
         s.E.Outcome.stage = "multisite"
         && E.Outcome.status_label s.E.Outcome.status = "passed"
         && String.length s.E.Outcome.detail >= 17
         && String.sub s.E.Outcome.detail 0 17 = "cycle-enumeration")
       o.E.Outcome.trace)

(* ------------------------------------------------------------------ *)
(* Property: decide_delta agrees with a from-scratch decision after
   every step of a random mutation script, and unsafe witnesses are
   valid. *)

let entity_names = [ "a"; "b"; "c"; "d"; "e"; "f" ]

let script_db () =
  let db = Database.create () in
  List.iteri
    (fun i e -> ignore (Database.add db ~name:e ~site:(1 + (i mod 2))))
    entity_names;
  db

let random_script_txn st db ~name =
  let pool = Array.of_list (Database.entities db) in
  let k = Array.length pool in
  let e1 = Random.State.int st k in
  let e2 = (e1 + 1 + Random.State.int st (k - 1)) mod k in
  Txn_gen.random_txn st db ~name
    ~entities:[ pool.(e1); pool.(e2) ]
    ~cross_prob:(if Random.State.bool st then 1.0 else 0.3)
    ()

(* One random mutation script: a small base system, then a handful of
   add / remove / replace steps, deciding (and cross-checking) after
   the base and after every step. *)
let run_script st =
  let db = script_db () in
  let n0 = 2 + Random.State.int st 3 in
  let base =
    List.init n0 (fun i ->
        random_script_txn st db ~name:(Printf.sprintf "T%d" (i + 1)))
  in
  let s = Incremental.create db base in
  let scratch =
    Decision.create ~cache_capacity:0 ~pair_cache_capacity:0 ()
  in
  let next_name = ref (n0 + 1) in
  let check_step step_label prev_safe =
    let o = Incremental.decide_delta s in
    let n = Incremental.num_txns s in
    (* Single-edit pair bound — only meaningful when the previous
       decision ran to completion (an unsafe short-circuit leaves
       skipped pairs undecided for the next call to pick up). *)
    if prev_safe && n >= 2 then
      Util.check
        (step_label ^ ": pairs re-decided within 2n-3")
        true
        (o.Incremental.pairs_redecided <= (2 * n) - 3);
    (match o.Incremental.verdict with
    | Incremental.Unsafe (Multisite.Unsafe_pair (i, j)) ->
        let sys = Incremental.system s in
        Util.check (step_label ^ ": unsafe-pair witness valid") false
          (Safety.is_safe_exn (Multisite.pair_system sys i j))
    | Incremental.Unsafe (Multisite.Acyclic_bc cycle) ->
        let sys = Incremental.system s in
        Util.check
          (step_label ^ ": B_c witness acyclic")
          true
          (G.Topo.is_acyclic (Multisite.b_cycle_graph sys cycle));
        List.iteri
          (fun k i ->
            let j = List.nth cycle ((k + 1) mod List.length cycle) in
            Util.check
              (step_label ^ ": witness cycle arcs conflict")
              true
              (System.common_locked sys i j <> []))
          cycle
    | Incremental.Safe | Incremental.Unknown _ -> ());
    let expected =
      if Incremental.num_txns s = 0 then "safe"
      else
        let fresh = Decision.decide scratch (Incremental.system s) in
        match fresh.E.Outcome.verdict with
        | E.Outcome.Safe -> "safe"
        | E.Outcome.Unsafe _ -> "unsafe"
        | E.Outcome.Unknown _ -> "unknown"
    in
    let got =
      match o.Incremental.verdict with
      | Incremental.Safe -> "safe"
      | Incremental.Unsafe _ -> "unsafe"
      | Incremental.Unknown _ -> "unknown"
    in
    Alcotest.(check string) (step_label ^ ": agrees with scratch") expected
      got;
    got = "safe"
  in
  let prev = ref (check_step "base" false) in
  for step = 1 to 4 do
    let names = Incremental.txn_names s in
    let n = List.length names in
    let label = Printf.sprintf "step %d" step in
    (match Random.State.int st 3 with
    | 0 ->
        let name = Printf.sprintf "T%d" !next_name in
        incr next_name;
        Incremental.add_txn s (random_script_txn st db ~name)
    | 1 when n > 0 ->
        Incremental.remove_txn s (List.nth names (Random.State.int st n))
    | _ when n > 0 ->
        let name = List.nth names (Random.State.int st n) in
        Incremental.replace_txn s name (random_script_txn st db ~name)
    | _ ->
        let name = Printf.sprintf "T%d" !next_name in
        incr next_name;
        Incremental.add_txn s (random_script_txn st db ~name));
    prev := check_step label !prev
  done;
  true

let prop_mutation_scripts =
  Util.qtest ~count:1000 "decide_delta agrees with from-scratch after every edit"
    (Util.gen_with_state run_script)
    Fun.id

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "incremental"
    [
      ( "dyngraph",
        [
          Alcotest.test_case "basic" `Quick test_dyngraph_basic;
          Alcotest.test_case "snapshot" `Quick test_dyngraph_snapshot;
        ] );
      ( "fingerprint",
        [ Alcotest.test_case "pair fingerprints" `Quick test_pair_fingerprint ]
      );
      ( "session",
        [
          Alcotest.test_case "reuse across edits" `Quick test_session_reuse;
          Alcotest.test_case "errors and degenerate sizes" `Quick
            test_session_errors;
          Alcotest.test_case "budgeted cycle enumeration" `Quick
            test_exhaustion;
        ] );
      ("mutation scripts", [ prop_mutation_scripts ]);
    ]
