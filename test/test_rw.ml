open Distlock_txn
open Distlock_rw

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

(* Both transactions S-lock then unlock one entity. *)
let shared_pair () =
  let db = mkdb [ ("x", 1) ] in
  let mk name =
    let steps =
      [|
        { Rw_txn.action = Rw_txn.Lock Rw_txn.Shared; entity = 0 };
        { Rw_txn.action = Rw_txn.Unlock; entity = 0 };
      |]
    in
    Rw_txn.make ~name ~labels:[| "SLx"; "Ux" |] ~steps
      (Option.get (Distlock_order.Poset.of_arcs 2 [ (0, 1) ]))
  in
  (db, Rw_system.make db [ mk "T1"; mk "T2" ])

let test_shared_locks_overlap () =
  let _db, sys = shared_pair () in
  Util.check "well-formed" true (Rw_system.validate sys = []);
  (* interleaved shared sections are legal *)
  let h = [ (0, 0); (1, 0); (0, 1); (1, 1) ] in
  Util.check "overlapping shared legal" true (Rw_system.is_legal sys h);
  Util.check "and serializable" true (Rw_system.is_serializable sys h);
  (* S-S entities are not conflicting *)
  Util.check "no conflicting entities" true
    (Rw_system.conflicting_common sys = []);
  Util.check "vacuously safe" true (Rw_safety.twosite_decide sys);
  Util.check "oracle agrees" true (Rw_system.safe sys)

let exclusive_pair () =
  let db = mkdb [ ("x", 1) ] in
  let mk name =
    let steps =
      [|
        { Rw_txn.action = Rw_txn.Lock Rw_txn.Exclusive; entity = 0 };
        { Rw_txn.action = Rw_txn.Unlock; entity = 0 };
      |]
    in
    Rw_txn.make ~name ~labels:[| "XLx"; "Ux" |] ~steps
      (Option.get (Distlock_order.Poset.of_arcs 2 [ (0, 1) ]))
  in
  (db, Rw_system.make db [ mk "T1"; mk "T2" ])

let test_exclusive_exclusion () =
  let _db, sys = exclusive_pair () in
  let interleaved = [ (0, 0); (1, 0); (0, 1); (1, 1) ] in
  Util.check "overlapping exclusive illegal" false
    (Rw_system.is_legal sys interleaved);
  let serial = [ (0, 0); (0, 1); (1, 0); (1, 1) ] in
  Util.check "serial legal" true (Rw_system.is_legal sys serial);
  Util.check "one conflicting entity" true
    (List.length (Rw_system.conflicting_common sys) = 1)

let test_mixed_modes_conflict () =
  (* S in one transaction, X in the other: sections must not overlap *)
  let db = mkdb [ ("x", 1) ] in
  let mk name mode =
    let steps =
      [|
        { Rw_txn.action = Rw_txn.Lock mode; entity = 0 };
        { Rw_txn.action = Rw_txn.Unlock; entity = 0 };
      |]
    in
    Rw_txn.make ~name ~steps
      (Option.get (Distlock_order.Poset.of_arcs 2 [ (0, 1) ]))
  in
  let sys =
    Rw_system.make db [ mk "T1" Rw_txn.Shared; mk "T2" Rw_txn.Exclusive ]
  in
  Util.check "S then X overlap illegal" false
    (Rw_system.is_legal sys [ (0, 0); (1, 0); (0, 1); (1, 1) ]);
  Util.check "conflicting" true
    (List.length (Rw_system.conflicting_common sys) = 1)

let test_validate () =
  let db = mkdb [ ("x", 1) ] in
  let orphan =
    Rw_txn.make ~name:"B"
      ~steps:[| { Rw_txn.action = Rw_txn.Lock Rw_txn.Shared; entity = 0 } |]
      (Distlock_order.Poset.empty 1)
  in
  Util.check "orphan lock flagged" true (Rw_txn.validate db orphan <> [])

(* The headline property: the paper's "variants change the theory very
   little" — two-site safety is again strong connectivity, now over the
   conflicting entities only. *)
let qcheck_rw_twosite_exact =
  Util.qtest ~count:60 "RW two-site safety = strong connectivity over conflicts"
    (Util.gen_with_state (fun st ->
         Rw_gen.random_pair st ~num_shared:(2 + Random.State.int st 2)
           ~num_sites:(1 + Random.State.int st 2)
           ~shared_prob:(Random.State.float st 1.0)
           ~cross_prob:(Random.State.float st 1.0) ()))
    (fun sys ->
      match Rw_system.safe ~limit:3_000_000 sys with
      | exception Failure _ -> true
      | oracle -> Rw_safety.twosite_decide sys = oracle)

let qcheck_gen_well_formed =
  Util.qtest ~count:60 "RW generator produces well-formed systems"
    (Util.gen_with_state (fun st ->
         Rw_gen.random_pair st ~num_shared:(2 + Random.State.int st 4)
           ~num_sites:(1 + Random.State.int st 3) ()))
    (fun sys -> Rw_system.validate sys = [])

let qcheck_all_shared_safe =
  Util.qtest ~count:40 "all-shared systems are always safe"
    (Util.gen_with_state (fun st ->
         Rw_gen.random_pair st ~num_shared:(2 + Random.State.int st 2)
           ~num_sites:2 ~shared_prob:1.0
           ~cross_prob:(Random.State.float st 1.0) ()))
    (fun sys ->
      Rw_system.conflicting_common sys = []
      && Rw_safety.twosite_decide sys
      && match Rw_system.safe ~limit:3_000_000 sys with
         | exception Failure _ -> true
         | oracle -> oracle)

let qcheck_all_exclusive_matches_exclusive_model =
  Util.qtest ~count:40
    "shared_prob 0 degenerates to the exclusive model's verdicts"
    (Util.gen_with_state (fun st ->
         Rw_gen.random_pair st ~num_shared:(2 + Random.State.int st 2)
           ~num_sites:2 ~shared_prob:0.0
           ~cross_prob:(Random.State.float st 1.0) ()))
    (fun sys ->
      (* rebuild as an exclusive-model system and compare verdicts *)
      let db = Rw_system.db sys in
      let convert rwt =
        let n = Rw_txn.num_steps rwt in
        let steps =
          Array.init n (fun i ->
              let s = Rw_txn.step rwt i in
              match s.Rw_txn.action with
              | Rw_txn.Lock _ -> Distlock_txn.Step.lock s.Rw_txn.entity
              | Rw_txn.Unlock -> Distlock_txn.Step.unlock s.Rw_txn.entity)
        in
        Txn.make ~name:(Rw_txn.name rwt) ~steps (Rw_txn.order rwt)
      in
      let t1, t2 = Rw_system.pair sys in
      let esys = System.make db [ convert t1; convert t2 ] in
      Rw_safety.twosite_decide sys = Distlock_core.Twosite.is_safe esys)

let () =
  Alcotest.run "rw"
    [
      ( "semantics",
        [
          Alcotest.test_case "shared overlap" `Quick test_shared_locks_overlap;
          Alcotest.test_case "exclusive exclusion" `Quick test_exclusive_exclusion;
          Alcotest.test_case "mixed modes" `Quick test_mixed_modes_conflict;
          Alcotest.test_case "validate" `Quick test_validate;
        ] );
      ( "safety",
        [
          qcheck_rw_twosite_exact;
          qcheck_gen_well_formed;
          qcheck_all_shared_safe;
          qcheck_all_exclusive_matches_exclusive_model;
        ] );
    ]
