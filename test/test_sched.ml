open Distlock_txn
open Distlock_sched

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

(* Two totally ordered single-entity transactions. *)
let tiny_pair () =
  let db = mkdb [ ("x", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "x" ] in
  System.make db [ t1; t2 ]

let test_serial () =
  let sys = tiny_pair () in
  let h = Schedule.serial sys [ 0; 1 ] in
  Util.check_int "length" 6 (Schedule.length h);
  Util.check "complete" true (Schedule.is_complete sys h);
  Util.check "legal" true (Legality.is_legal sys h);
  Util.check "serializable" true (Conflict.is_serializable sys h);
  Alcotest.(check (array int)) "projection" [| 0; 1; 2 |] (Schedule.project h 0)

let test_incomplete () =
  let sys = tiny_pair () in
  let h = Schedule.of_events [ (0, 0); (0, 1) ] in
  Util.check "incomplete detected" false (Schedule.is_complete sys h);
  Util.check "illegal" false (Legality.is_legal sys h);
  let dup = Schedule.of_events (Schedule.events (Schedule.serial sys [ 0; 1 ]) @ [ (0, 0) ]) in
  Util.check "duplicate detected" false (Schedule.is_complete sys dup)

let test_lock_exclusion () =
  let sys = tiny_pair () in
  (* interleave the two lock sections: T1 locks, T2 locks before T1 unlocks *)
  let h =
    Schedule.of_events
      [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (1, 2) ]
  in
  Util.check "exclusion violated" true
    (List.exists
       (function Legality.Lock_held _ -> true | _ -> false)
       (Legality.check sys h))

let test_order_violation () =
  let sys = tiny_pair () in
  let h =
    Schedule.of_events [ (0, 1); (0, 0); (0, 2); (1, 0); (1, 1); (1, 2) ]
  in
  Util.check "order violated" true
    (List.exists
       (function Legality.Order_violated _ -> true | _ -> false)
       (Legality.check sys h))

let test_unlock_not_held () =
  let db = mkdb [ ("x", 1) ] in
  (* ill-formed on purpose: unlock with no lock *)
  let t = Builder.make_exn db ~name:"T" ~steps:[ ("Ux", `Unlock "x") ] () in
  let sys = System.make db [ t ] in
  let h = Schedule.of_events [ (0, 0) ] in
  Util.check "unlock-not-held" true
    (List.exists
       (function Legality.Unlock_not_held _ -> true | _ -> false)
       (Legality.check sys h))

(* Conflict graphs *)

let test_conflict_two_entities () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "y"; "x" ] in
  let sys = System.make db [ t1; t2 ] in
  (* T1 does x before T2, T2 does y before T1: conflict cycle *)
  let h =
    Schedule.of_events
      [
        (0, 0); (0, 1); (0, 2); (* T1 x section *)
        (1, 0); (1, 1); (1, 2); (* T2 y section *)
        (0, 3); (0, 4); (0, 5); (* T1 y section *)
        (1, 3); (1, 4); (1, 5); (* T2 x section *)
      ]
  in
  Util.check "legal" true (Legality.is_legal sys h);
  (match Conflict.check sys h with
  | Conflict.Not_serializable cycle ->
      Util.check_int "cycle over both txns" 2 (List.length (List.sort_uniq compare cycle))
  | Conflict.Serializable _ -> Alcotest.fail "expected conflict cycle");
  (* consistent order: serializable *)
  let h2 = Schedule.serial sys [ 1; 0 ] in
  match Conflict.check sys h2 with
  | Conflict.Serializable order ->
      Alcotest.(check (list int)) "equivalent serial order" [ 1; 0 ] order
  | Conflict.Not_serializable _ -> Alcotest.fail "serial schedule must serialize"

(* Enumeration *)

let count_interleavings n1 n2 =
  (* C(n1+n2, n1) *)
  let rec binom n k =
    if k = 0 then 1 else binom (n - 1) (k - 1) * n / k
  in
  binom (n1 + n2) n1

let test_enumerate_counts () =
  (* Two disjoint-entity transactions: every interleaving is legal. *)
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "y" ] in
  let sys = System.make db [ t1; t2 ] in
  let exact name = function
    | Enumerate.Exact n -> n
    | Enumerate.Exhausted _ -> Alcotest.failf "%s: count exhausted" name
  in
  Util.check_int "all interleavings" (count_interleavings 3 3)
    (exact "all interleavings" (Enumerate.count_legal sys));
  (* Shared entity: locking forbids interleaved sections; count by hand:
     the 3-step sections must not overlap, so schedules = 2 (T1 first or
     T2 first)? No: sections can't interleave, but the whole transactions
     are the sections here, so exactly 2 legal schedules. *)
  let sys2 = tiny_pair () in
  Util.check_int "exclusive sections" 2
    (exact "exclusive sections" (Enumerate.count_legal sys2));
  (* A tiny limit reports typed exhaustion instead of raising. *)
  match Enumerate.count_legal ~limit:1 sys with
  | Enumerate.Exhausted 1 -> ()
  | Enumerate.Exhausted n -> Alcotest.failf "wrong limit recorded: %d" n
  | Enumerate.Exact _ -> Alcotest.fail "expected exhaustion under limit 1"

let qcheck_enumerated_legal =
  Util.qtest ~count:30 "every enumerated schedule is legal and complete"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:2 ~num_private:0
           ~num_sites:2 ~cross_prob:0.5 ()))
    (fun sys ->
      let ok = ref true and n = ref 0 in
      Enumerate.iter_legal sys (fun h ->
          incr n;
          if not (Legality.is_legal sys h) then ok := false);
      !ok && !n > 0)

let qcheck_random_legal =
  Util.qtest ~count:50 "random_legal produces legal schedules"
    (Util.gen_with_state (fun st ->
         ( Txn_gen.random_pair_system st ~num_shared:3 ~num_private:1
             ~num_sites:2 ~cross_prob:0.4 (),
           st )))
    (fun (sys, st) ->
      match Enumerate.random_legal st sys with
      | None -> true (* all attempts deadlocked: allowed *)
      | Some h -> Legality.is_legal sys h)

let test_deadlock_detection () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  (* classic: T1 locks x then y, T2 locks y then x, two-phase *)
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "y"; "x" ] in
  let sys = System.make db [ t1; t2 ] in
  Util.check "deadlock reachable" true (Enumerate.has_deadlock sys);
  (* same lock order: no deadlock *)
  let db2 = mkdb [ ("x", 1); ("y", 1) ] in
  let s1 = Builder.two_phase_sequence db2 ~name:"T1" [ "x"; "y" ] in
  let s2 = Builder.two_phase_sequence db2 ~name:"T2" [ "x"; "y" ] in
  Util.check "ordered locking avoids deadlock" false
    (Enumerate.has_deadlock (System.make db2 [ s1; s2 ]))

(* Herbrand semantics (the paper's definition of serializability) *)

let test_interpretation_basic () =
  let db = mkdb [ ("x", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "x" ] in
  let sys = System.make db [ t1; t2 ] in
  let h12 = Schedule.serial sys [ 0; 1 ] and h21 = Schedule.serial sys [ 1; 0 ] in
  (* the two serial orders write different terms: f2(f1(x0)) vs f1(f2(x0)) *)
  Util.check "serial orders differ" false
    (Interpretation.states_equal
       (Interpretation.final_state sys h12)
       (Interpretation.final_state sys h21));
  (* each is (trivially) equivalent to itself *)
  Util.check "h12 serializable" true (Interpretation.is_serializable sys h12);
  (match Interpretation.equivalent_serial sys h12 with
  | Some [ 0; 1 ] -> ()
  | Some o ->
      Alcotest.failf "wrong witness [%s]"
        (String.concat ";" (List.map string_of_int o))
  | None -> Alcotest.fail "expected witness")

let test_interpretation_untouched_entities () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x" ] in
  let sys = System.make db [ t1 ] in
  let h = Schedule.serial sys [ 0 ] in
  let state = Interpretation.final_state sys h in
  let y = Database.id_exn db "y" in
  Util.check "y keeps its initial value" true
    (Interpretation.equal_term (List.assoc y state) (Interpretation.initial y))

(* The central semantic theorem of the implementation: the conflict-graph
   test decides exactly the paper's all-interpretations serializability
   (no blind reads or writes under the update semantics). *)
let qcheck_conflict_equals_herbrand =
  Util.qtest ~count:120 "conflict serializability = Herbrand serializability"
    (Util.gen_with_state (fun st ->
         ( Txn_gen.random_multi_system st ~num_txns:(2 + Random.State.int st 2)
             ~num_entities:4 ~entities_per_txn:2
             ~num_sites:(1 + Random.State.int st 2) ~with_updates:true
             ~cross_prob:(Random.State.float st 1.0) (),
           st )))
    (fun (sys, st) ->
      match Enumerate.random_legal st sys with
      | None -> true
      | Some h ->
          Conflict.is_serializable sys h = Interpretation.is_serializable sys h)

let test_to_string () =
  let sys = tiny_pair () in
  let h = Schedule.serial sys [ 0; 1 ] in
  Alcotest.(check string) "paper notation" "Lx_1 x_1 Ux_1 Lx_2 x_2 Ux_2"
    (Schedule.to_string sys h)

let () =
  Alcotest.run "sched"
    [
      ( "schedule",
        [
          Alcotest.test_case "serial" `Quick test_serial;
          Alcotest.test_case "incomplete" `Quick test_incomplete;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "legality",
        [
          Alcotest.test_case "lock exclusion" `Quick test_lock_exclusion;
          Alcotest.test_case "order violation" `Quick test_order_violation;
          Alcotest.test_case "unlock not held" `Quick test_unlock_not_held;
        ] );
      ( "conflict",
        [ Alcotest.test_case "two entities" `Quick test_conflict_two_entities ] );
      ( "interpretation",
        [
          Alcotest.test_case "basics" `Quick test_interpretation_basic;
          Alcotest.test_case "untouched entities" `Quick test_interpretation_untouched_entities;
          qcheck_conflict_equals_herbrand;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "counts" `Quick test_enumerate_counts;
          Alcotest.test_case "deadlock" `Quick test_deadlock_detection;
          qcheck_enumerated_legal;
          qcheck_random_legal;
        ] );
    ]
