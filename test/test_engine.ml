(* The decision engine: fingerprints, the staged pipeline, the verdict
   cache, budgets, and the batch API. *)

open Distlock_core
open Distlock_txn
module E = Distlock_engine

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

(* The quickstart unsafe pair, parameterized by the site of [z] so tests
   can perturb the placement without touching anything else. *)
let unsafe_pair ?(z_site = 2) () =
  let db = mkdb [ ("x", 1); ("z", z_site) ] in
  let mk name =
    Builder.make_exn db ~name
      ~steps:
        [ ("Lx", `Lock "x"); ("Ux", `Unlock "x");
          ("Lz", `Lock "z"); ("Uz", `Unlock "z") ]
      ~arcs:[ ("Lx", "Ux"); ("Lz", "Uz") ]
      ()
  in
  System.make db [ mk "T1"; mk "T2" ]

let two_phase_pair () =
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let mk name = Builder.two_phase_sequence db ~name [ "x"; "z" ] in
  System.make db [ mk "T1"; mk "T2" ]

let total_three_site_pair () =
  let db = mkdb [ ("x", 1); ("y", 2); ("z", 3) ] in
  let mk name = Builder.locked_sequence db ~name [ "x"; "y"; "z" ] in
  System.make db [ mk "T1"; mk "T2" ]

let safe_multi () =
  let db = mkdb [ ("x", 1); ("y", 2); ("z", 1) ] in
  let mk name = Builder.two_phase_sequence db ~name [ "x"; "y"; "z" ] in
  System.make db [ mk "T1"; mk "T2"; mk "T3" ]

(* ------------------------------------------------------------------ *)
(* Fingerprints *)

let test_fingerprint_stable () =
  Util.check "same construction, same fingerprint" true
    (System.fingerprint (Figures.fig1 ()) = System.fingerprint (Figures.fig1 ()));
  Util.check "distinct systems, distinct fingerprints" true
    (System.fingerprint (Figures.fig1 ())
    <> System.fingerprint (Figures.fig5 ()))

let test_fingerprint_perturbation () =
  let base = System.fingerprint (unsafe_pair ()) in
  Util.check "moving an entity to another site changes the fingerprint" true
    (base <> System.fingerprint (unsafe_pair ~z_site:3 ()));
  (* Same steps, one extra precedence. *)
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let mk extra name =
    Builder.make_exn db ~name
      ~steps:
        [ ("Lx", `Lock "x"); ("Ux", `Unlock "x");
          ("Lz", `Lock "z"); ("Uz", `Unlock "z") ]
      ~arcs:([ ("Lx", "Ux"); ("Lz", "Uz") ] @ extra)
      ()
  in
  let loose = System.make db [ mk [] "T1"; mk [] "T2" ] in
  let tight =
    System.make db [ mk [ ("Ux", "Lz") ] "T1"; mk [] "T2" ]
  in
  Util.check "adding a precedence changes the fingerprint" true
    (System.fingerprint loose <> System.fingerprint tight)

(* ------------------------------------------------------------------ *)
(* Provenance: each paper procedure decides its own territory *)

let procedure_of sys =
  (Safety.decide sys).E.Outcome.procedure

let test_provenance () =
  Util.check "fig1 decided by Theorem 2" true
    (procedure_of (Figures.fig1 ()) = Some E.Checker.Theorem_2);
  Util.check "strong 2PL pair decided by Theorem 1" true
    (procedure_of (two_phase_pair ()) = Some E.Checker.Theorem_1);
  Util.check "fig5 decided by the state graph" true
    (procedure_of (Figures.fig5 ()) = Some E.Checker.State_graph);
  Util.check "total pair on three sites decided by Proposition 1" true
    (procedure_of (total_three_site_pair ()) = Some E.Checker.Proposition_1);
  let eng = Decision.create () in
  let o = Decision.decide eng (safe_multi ()) in
  Util.check "three-transaction system decided by Proposition 2" true
    (o.E.Outcome.procedure = Some E.Checker.Proposition_2
    && o.E.Outcome.verdict = E.Outcome.Safe)

let test_proposition1_counterexample () =
  let sys = total_three_site_pair () in
  match (Safety.decide sys).E.Outcome.verdict with
  | E.Outcome.Unsafe (Safety.Counterexample h) ->
      Util.check "legal" true (Distlock_sched.Legality.is_legal sys h);
      Util.check "non-serializable" false
        (Distlock_sched.Conflict.is_serializable sys h)
  | _ -> Alcotest.fail "expected a geometric counterexample"

(* ------------------------------------------------------------------ *)
(* Budgets and the Unknown path *)

let test_budget_exhaustion () =
  (* fig5 needs an exhaustive oracle; one step is not enough. *)
  let o = Safety.decide ~budget:(E.Budget.of_steps 1) (Figures.fig5 ()) in
  (match o.E.Outcome.verdict with
  | E.Outcome.Unknown _ -> ()
  | _ -> Alcotest.fail "expected Unknown under a 1-step budget");
  (* Exhaustion is reported as an inconclusive pass, never an error. *)
  let mentions_budget (s : E.Outcome.stage_trace) =
    let d = s.E.Outcome.detail in
    let needle = "budget exhausted" in
    let n = String.length needle and len = String.length d in
    let rec at i = i + n <= len && (String.sub d i n = needle || at (i + 1)) in
    at 0
  in
  Util.check "an exhausted stage passes with a budget note" true
    (List.exists
       (fun (s : E.Outcome.stage_trace) ->
         s.E.Outcome.status = E.Outcome.Passed && mentions_budget s)
       o.E.Outcome.trace);
  Util.check "no stage is traced as an error" true
    (List.for_all
       (fun (s : E.Outcome.stage_trace) -> s.E.Outcome.status <> E.Outcome.Errored)
       o.E.Outcome.trace);
  (* The compatibility shim reports the same. *)
  match Safety.decide_pair ~exhaustive_budget:1 (Figures.fig5 ()) with
  | Safety.Unknown _ -> ()
  | _ -> Alcotest.fail "decide_pair: expected Unknown under a 1-step budget"

let test_deadline_expiry () =
  let o =
    Safety.decide
      ~budget:(E.Budget.make ~max_seconds:0. ())
      (Figures.fig5 ())
  in
  (match o.E.Outcome.verdict with
  | E.Outcome.Unknown _ -> ()
  | _ -> Alcotest.fail "expected Unknown under a zero deadline");
  Util.check "every applicable stage skipped" true
    (o.E.Outcome.trace <> []
    && List.for_all
         (fun (s : E.Outcome.stage_trace) ->
           s.E.Outcome.status = E.Outcome.Skipped)
         o.E.Outcome.trace)

let test_budget_validation () =
  Util.check "negative steps rejected" true
    (try
       ignore (E.Budget.make ~max_steps:(-1) ());
       false
     with Invalid_argument _ -> true);
  Util.check "negative seconds rejected" true
    (try
       ignore (E.Budget.make ~max_seconds:(-1.) ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The verdict cache *)

let test_cache_hit_on_resubmission () =
  let eng = Decision.create () in
  let first = Decision.decide eng (unsafe_pair ()) in
  Util.check "first decision computed" false first.E.Outcome.cached;
  let second = Decision.decide eng (unsafe_pair ()) in
  Util.check "identical resubmission served from cache" true
    second.E.Outcome.cached;
  Util.check "same verdict" true
    (E.Outcome.decided second
    && second.E.Outcome.procedure = first.E.Outcome.procedure);
  (* A perturbed system is a different key. *)
  let third = Decision.decide eng (unsafe_pair ~z_site:3 ()) in
  Util.check "site perturbation misses the cache" false third.E.Outcome.cached;
  Util.check_int "two distinct misses recorded" 2
    (E.Stats.cache_misses (Decision.stats eng))

let test_unknown_never_cached () =
  let eng = Decision.create () in
  let o1 =
    Decision.decide ~budget:(E.Budget.of_steps 1) eng (Figures.fig5 ())
  in
  Util.check "undecided" false (E.Outcome.decided o1);
  (* A bigger budget must be allowed to try again — the Unknown verdict
     was budget-dependent, so it must not have been cached. *)
  let o2 = Decision.decide eng (Figures.fig5 ()) in
  Util.check "re-decided, not served from cache" false o2.E.Outcome.cached;
  Util.check "now decided safe" true (o2.E.Outcome.verdict = E.Outcome.Safe);
  let o3 = Decision.decide eng (Figures.fig5 ()) in
  Util.check "decided verdicts do get cached" true o3.E.Outcome.cached

let test_lru_find_refreshes_recency () =
  (* [find] must move the entry to the recency front, not just read it:
     otherwise a hot key gets evicted under scan pressure. *)
  let lru = E.Lru.create ~capacity:3 in
  E.Lru.add lru "hot" 0;
  E.Lru.add lru "b" 1;
  E.Lru.add lru "c" 2;
  (* "hot" is oldest by insertion; touching it must protect it. *)
  Util.check "find returns the value" true (E.Lru.find lru "hot" = Some 0);
  E.Lru.add lru "d" 3;
  E.Lru.add lru "e" 4;
  Util.check "touched entry outlives untouched newer ones" true
    (E.Lru.mem lru "hot");
  Util.check "untouched entries evicted first" false (E.Lru.mem lru "b");
  Util.check "find misses return None" true (E.Lru.find lru "b" = None)

let test_lru_sharded_semantics () =
  (* Capacity is far above the key count: hashing is not perfectly
     uniform, so per-shard headroom must absorb the skew. *)
  let c = E.Lru_sharded.create ~shards:4 ~capacity:512 () in
  Util.check_int "empty" 0 (E.Lru_sharded.length c);
  Util.check "shards is a power of two" true
    (let n = E.Lru_sharded.num_shards c in
     n land (n - 1) = 0);
  Util.check "capacity never below the request" true
    (E.Lru_sharded.capacity c >= 512);
  for i = 0 to 63 do
    E.Lru_sharded.add c (string_of_int i) i
  done;
  Util.check_int "all entries stored" 64 (E.Lru_sharded.length c);
  for i = 0 to 63 do
    Util.check "find retrieves stored value" true
      (E.Lru_sharded.find c (string_of_int i) = Some i)
  done;
  Util.check "mem on absent" false (E.Lru_sharded.mem c "absent");
  E.Lru_sharded.add c "0" 100;
  Util.check "add replaces in place" true (E.Lru_sharded.find c "0" = Some 100);
  Util.check_int "replace does not grow" 64 (E.Lru_sharded.length c);
  E.Lru_sharded.clear c;
  Util.check_int "clear empties" 0 (E.Lru_sharded.length c);
  (* Eviction stays bounded per shard: overfill and check the global
     length never exceeds the (rounded-up) capacity. *)
  let cap = E.Lru_sharded.capacity c in
  for i = 0 to (4 * cap) - 1 do
    E.Lru_sharded.add c ("k" ^ string_of_int i) i
  done;
  Util.check "length bounded by capacity under overfill" true
    (E.Lru_sharded.length c <= cap);
  Util.check "evictions counted" true (E.Lru_sharded.evictions c > 0);
  Util.check "tiny cache rejects nothing but stays valid" true
    (let tiny = E.Lru_sharded.create ~shards:16 ~capacity:2 () in
     E.Lru_sharded.num_shards tiny <= 2);
  Util.check "rejects capacity 0" true
    (try
       ignore (E.Lru_sharded.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

let test_lru_sharded_stress () =
  (* 4 domains hammer one sharded cache with overlapping keys; the test
     passes when nothing crashes, every read is consistent, and the
     length bound holds afterwards. *)
  let c = E.Lru_sharded.create ~capacity:128 () in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for round = 0 to 499 do
              let k = "key" ^ string_of_int ((round + d) mod 200) in
              E.Lru_sharded.add c k round;
              (match E.Lru_sharded.find c k with
              | Some v ->
                  if v < 0 || v > 499 then failwith "corrupt value read"
              | None -> () (* evicted by a neighbour — legal *));
              ignore (E.Lru_sharded.mem c "key0");
              ignore (E.Lru_sharded.length c)
            done))
  in
  List.iter Domain.join domains;
  Util.check "length bounded after stress" true
    (E.Lru_sharded.length c <= E.Lru_sharded.capacity c);
  Util.check "cache still serves after stress" true
    (E.Lru_sharded.add c "after" 1;
     E.Lru_sharded.find c "after" = Some 1)

let test_lru_eviction () =
  let lru = E.Lru.create ~capacity:2 in
  E.Lru.add lru "a" 1;
  E.Lru.add lru "b" 2;
  ignore (E.Lru.find lru "a");
  (* "b" is now least recently used. *)
  E.Lru.add lru "c" 3;
  Util.check_int "capacity respected" 2 (E.Lru.length lru);
  Util.check_int "one eviction" 1 (E.Lru.evictions lru);
  Util.check "LRU entry evicted" false (E.Lru.mem lru "b");
  Util.check "recently used entry kept" true (E.Lru.mem lru "a");
  Util.check "rejects capacity 0" true
    (try
       ignore (E.Lru.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The batch API *)

let test_batch_dedup_and_stats () =
  let eng = Decision.create () in
  let a () = unsafe_pair () and b () = two_phase_pair () in
  let outcomes, report =
    Decision.decide_batch eng [ a (); b (); a (); a (); b () ]
  in
  Util.check_int "all outcomes returned" 5 (List.length outcomes);
  Util.check_int "two unique systems" 2 report.E.Engine.unique;
  Util.check_int "three duplicates folded in-batch" 3
    report.E.Engine.batch_dedup_hits;
  Util.check "positive hit rate on a duplicated workload" true
    (E.Engine.hit_rate report > 0.);
  Util.check "per-procedure tally populated" true
    (report.E.Engine.per_procedure <> []);
  (* Per-stage counters saw real work. *)
  let stages = E.Stats.stages (Decision.stats eng) in
  Util.check "stage counters populated" true (stages <> []);
  Util.check "some stage attempted" true
    (List.exists (fun s -> s.E.Stats.attempts > 0) stages);
  Util.check "stage timings accumulate" true
    (List.for_all (fun s -> s.E.Stats.seconds >= 0.) stages);
  (* A second identical batch is served entirely by the LRU cache. *)
  let _, report2 = Decision.decide_batch eng [ a (); b () ] in
  Util.check_int "second batch: all cache hits" 2 report2.E.Engine.cache_hits

let test_batch_agrees_with_decide () =
  let eng = Decision.create ~cache_capacity:0 () in
  let sys = [ unsafe_pair (); two_phase_pair (); safe_multi () ] in
  let cached = Decision.create () in
  let batched, _ = Decision.decide_batch cached sys in
  List.iter2
    (fun s (b : _ E.Outcome.t) ->
      let plain = Decision.decide eng s in
      Util.check "same procedure with and without cache" true
        (plain.E.Outcome.procedure = b.E.Outcome.procedure);
      Util.check "same decidedness" true
        (E.Outcome.decided plain = E.Outcome.decided b))
    sys batched

(* ------------------------------------------------------------------ *)
(* Parallel batches: jobs:k must be observationally equal to jobs:1 *)

let verdict_tag (o : _ E.Outcome.t) =
  match o.E.Outcome.verdict with
  | E.Outcome.Safe -> "safe"
  | E.Outcome.Unsafe _ -> "unsafe"
  | E.Outcome.Unknown _ -> "unknown"

(* Everything observable about a batch except wall-clock time and the
   job count itself. *)
let observable (outcomes, (r : E.Engine.batch_report)) =
  ( List.map
      (fun (o : _ E.Outcome.t) ->
        (verdict_tag o, o.E.Outcome.procedure, o.E.Outcome.cached))
      outcomes,
    ( r.E.Engine.submitted,
      r.E.Engine.unique,
      r.E.Engine.batch_dedup_hits,
      r.E.Engine.cache_hits,
      r.E.Engine.cache_misses,
      r.E.Engine.per_procedure ) )

let gen_small_batch =
  Util.gen_with_state (fun st ->
      let n = 1 + Random.State.int st 5 in
      let syss =
        List.init n (fun _ ->
            Txn_gen.random_pair_system st
              ~num_shared:(1 + Random.State.int st 3)
              ~num_private:(Random.State.int st 2)
              ~num_sites:(1 + Random.State.int st 3)
              ~cross_prob:(Random.State.float st 1.0) ())
      in
      (* Re-submit a random prefix so batch dedup is exercised too. *)
      let k = Random.State.int st (n + 1) in
      syss @ List.filteri (fun i _ -> i < k) syss)

let qcheck_jobs_equivalence =
  Util.qtest ~count:1000 "decide_batch jobs:4 ≡ jobs:1 (cold caches)"
    gen_small_batch
    (fun syss ->
      let seq = Decision.decide_batch ~jobs:1 (Decision.create ()) syss in
      let par = Decision.decide_batch ~jobs:4 (Decision.create ()) syss in
      observable seq = observable par)

let test_batch_jobs_warm_cache () =
  (* The same engine serving a second, parallel batch must hit its cache
     exactly as a sequential second batch would. *)
  let mk_batch () =
    [ unsafe_pair (); two_phase_pair (); unsafe_pair (); safe_multi () ]
  in
  let eng_seq = Decision.create () and eng_par = Decision.create () in
  let warm1 = Decision.decide_batch ~jobs:1 eng_seq (mk_batch ()) in
  let warm2 = Decision.decide_batch ~jobs:4 eng_par (mk_batch ()) in
  Util.check "cold batch observationally equal" true
    (observable warm1 = observable warm2);
  let second_seq = Decision.decide_batch ~jobs:1 eng_seq (mk_batch ()) in
  let second_par = Decision.decide_batch ~jobs:4 eng_par (mk_batch ()) in
  Util.check "warm batch observationally equal" true
    (observable second_seq = observable second_par);
  Util.check_int "warm parallel batch served from cache" 3
    (snd second_par).E.Engine.cache_hits;
  Util.check_int "jobs recorded in the report" 4 (snd second_par).E.Engine.jobs

let test_batch_jobs_validation () =
  Util.check "jobs:0 rejected" true
    (try
       ignore (Decision.decide_batch ~jobs:0 (Decision.create ()) []);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Explain: the typed provenance record *)

let stage_status (ex : E.Explain.t) name =
  match
    List.find_opt (fun (s : E.Explain.stage) -> s.E.Explain.checker = name)
      ex.E.Explain.stages
  with
  | Some s -> s.E.Explain.status
  | None -> Alcotest.failf "explain carries no stage %S" name

let test_explain_fast_path () =
  let eng = Decision.create () in
  let o, ex = Decision.decide_explained eng (two_phase_pair ()) in
  Util.check "decided by Theorem 1" true
    (o.E.Outcome.procedure = Some E.Checker.Theorem_1);
  Util.check "verdict mirrored" true (ex.E.Explain.verdict = "safe");
  Util.check "procedure mirrored" true
    (ex.E.Explain.procedure = E.Outcome.provenance o);
  Util.check "not served from cache" false ex.E.Explain.cache.E.Explain.hit;
  Util.check "the winning stage is marked decided" true
    (stage_status ex "theorem1" = "decided");
  (* Every checker in the table appears exactly once, and stages after
     the winner never ran. *)
  Util.check_int "full checker table present"
    (List.length Decision.checkers)
    (List.length ex.E.Explain.stages);
  Util.check "state graph not reached on a fast path" true
    (stage_status ex "state-graph" = "not-reached");
  (* budget_spent_s is a cumulative, nondecreasing prefix sum. *)
  let rec nondecreasing prev = function
    | [] -> true
    | (s : E.Explain.stage) :: rest ->
        s.E.Explain.budget_spent_s >= prev
        && nondecreasing s.E.Explain.budget_spent_s rest
  in
  Util.check "budget_spent_s nondecreasing" true
    (nondecreasing 0. ex.E.Explain.stages);
  Util.check "fast path carries no oracle stats" true
    (ex.E.Explain.oracle = None)

let test_explain_oracle_stats () =
  let eng = Decision.create () in
  let _, ex = Decision.decide_explained eng (Figures.fig5 ()) in
  Util.check "fig5 decided by the state graph" true
    (stage_status ex "state-graph" = "decided");
  match ex.E.Explain.oracle with
  | None -> Alcotest.fail "state-graph decision must carry oracle stats"
  | Some o ->
      Util.check "states visited" true (o.E.Explain.states > 0);
      Util.check "dedup ratio in [0,1]" true
        (o.E.Explain.dedup_ratio >= 0. && o.E.Explain.dedup_ratio <= 1.);
      Util.check "not exhausted" false o.E.Explain.exhausted

let test_explain_cache_hit () =
  let eng = Decision.create () in
  let _, ex1 = Decision.decide_explained eng (unsafe_pair ()) in
  let o2, ex2 = Decision.decide_explained eng (unsafe_pair ()) in
  Util.check "second decision cached" true o2.E.Outcome.cached;
  Util.check "explain reports the hit" true ex2.E.Explain.cache.E.Explain.hit;
  Util.check "same fingerprint digest both times" true
    (ex1.E.Explain.cache.E.Explain.fingerprint
    = ex2.E.Explain.cache.E.Explain.fingerprint);
  Util.check "digest is 32 hex chars" true
    (String.length ex1.E.Explain.cache.E.Explain.fingerprint = 32)

let test_explain_exhaustion () =
  let eng = Decision.create () in
  let o, ex =
    Decision.decide_explained ~budget:(E.Budget.of_steps 1) eng
      (Figures.fig5 ())
  in
  Util.check "undecided" false (E.Outcome.decided o);
  Util.check "verdict unknown" true (ex.E.Explain.verdict = "unknown");
  match ex.E.Explain.oracle with
  | None -> Alcotest.fail "exhausted oracle must still report stats"
  | Some os -> Util.check "exhaustion flagged" true os.E.Explain.exhausted

let test_explain_annotated_metrics () =
  (* A custom checker wrapping its result in [Annotated] must surface
     its attributes as the stage's [metrics]. *)
  let checker =
    E.Checker.make ~name:"annotated"
      ~procedure:(E.Checker.Custom "annotated")
      ~cost:E.Checker.Constant
      ~applicable:(fun _ -> true)
      ~run:(fun _ _ ->
        E.Checker.Annotated
          ( [ Distlock_obs.Attr.int "widgets" 7 ],
            E.Checker.Safe "annotated says safe" ))
  in
  let eng = E.Engine.create ~fingerprint:(fun () -> "unit") [ checker ] in
  let _, ex = E.Engine.decide_explained eng () in
  match ex.E.Explain.stages with
  | [ s ] ->
      Util.check "status decided" true (s.E.Explain.status = "decided");
      Util.check "annotation surfaced as a stage metric" true
        (List.assoc_opt "widgets" s.E.Explain.metrics
        = Some (Distlock_obs.Attr.Int 7));
      Util.check "detail is the unwrapped result's" true
        (s.E.Explain.detail = "annotated says safe")
  | l -> Alcotest.failf "expected 1 stage, got %d" (List.length l)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "stable" `Quick test_fingerprint_stable;
          Alcotest.test_case "perturbation" `Quick
            test_fingerprint_perturbation;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "provenance" `Quick test_provenance;
          Alcotest.test_case "proposition 1 counterexample" `Quick
            test_proposition1_counterexample;
        ] );
      ( "budget",
        [
          Alcotest.test_case "step exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "validation" `Quick test_budget_validation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit on resubmission" `Quick
            test_cache_hit_on_resubmission;
          Alcotest.test_case "unknown never cached" `Quick
            test_unknown_never_cached;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "lru find refreshes recency" `Quick
            test_lru_find_refreshes_recency;
          Alcotest.test_case "sharded semantics" `Quick
            test_lru_sharded_semantics;
          Alcotest.test_case "sharded 4-domain stress" `Quick
            test_lru_sharded_stress;
        ] );
      ( "batch",
        [
          Alcotest.test_case "dedup and stats" `Quick
            test_batch_dedup_and_stats;
          Alcotest.test_case "agrees with decide" `Quick
            test_batch_agrees_with_decide;
          Alcotest.test_case "warm-cache jobs equivalence" `Quick
            test_batch_jobs_warm_cache;
          Alcotest.test_case "jobs validation" `Quick
            test_batch_jobs_validation;
          qcheck_jobs_equivalence;
        ] );
      ( "explain",
        [
          Alcotest.test_case "fast path" `Quick test_explain_fast_path;
          Alcotest.test_case "oracle stats" `Quick test_explain_oracle_stats;
          Alcotest.test_case "cache hit" `Quick test_explain_cache_hit;
          Alcotest.test_case "budget exhaustion" `Quick test_explain_exhaustion;
          Alcotest.test_case "annotated metrics" `Quick
            test_explain_annotated_metrics;
        ] );
    ]
