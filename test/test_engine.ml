(* The decision engine: fingerprints, the staged pipeline, the verdict
   cache, budgets, and the batch API. *)

open Distlock_core
open Distlock_txn
module E = Distlock_engine

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

(* The quickstart unsafe pair, parameterized by the site of [z] so tests
   can perturb the placement without touching anything else. *)
let unsafe_pair ?(z_site = 2) () =
  let db = mkdb [ ("x", 1); ("z", z_site) ] in
  let mk name =
    Builder.make_exn db ~name
      ~steps:
        [ ("Lx", `Lock "x"); ("Ux", `Unlock "x");
          ("Lz", `Lock "z"); ("Uz", `Unlock "z") ]
      ~arcs:[ ("Lx", "Ux"); ("Lz", "Uz") ]
      ()
  in
  System.make db [ mk "T1"; mk "T2" ]

let two_phase_pair () =
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let mk name = Builder.two_phase_sequence db ~name [ "x"; "z" ] in
  System.make db [ mk "T1"; mk "T2" ]

let total_three_site_pair () =
  let db = mkdb [ ("x", 1); ("y", 2); ("z", 3) ] in
  let mk name = Builder.locked_sequence db ~name [ "x"; "y"; "z" ] in
  System.make db [ mk "T1"; mk "T2" ]

let safe_multi () =
  let db = mkdb [ ("x", 1); ("y", 2); ("z", 1) ] in
  let mk name = Builder.two_phase_sequence db ~name [ "x"; "y"; "z" ] in
  System.make db [ mk "T1"; mk "T2"; mk "T3" ]

(* ------------------------------------------------------------------ *)
(* Fingerprints *)

let test_fingerprint_stable () =
  Util.check "same construction, same fingerprint" true
    (System.fingerprint (Figures.fig1 ()) = System.fingerprint (Figures.fig1 ()));
  Util.check "distinct systems, distinct fingerprints" true
    (System.fingerprint (Figures.fig1 ())
    <> System.fingerprint (Figures.fig5 ()))

let test_fingerprint_perturbation () =
  let base = System.fingerprint (unsafe_pair ()) in
  Util.check "moving an entity to another site changes the fingerprint" true
    (base <> System.fingerprint (unsafe_pair ~z_site:3 ()));
  (* Same steps, one extra precedence. *)
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let mk extra name =
    Builder.make_exn db ~name
      ~steps:
        [ ("Lx", `Lock "x"); ("Ux", `Unlock "x");
          ("Lz", `Lock "z"); ("Uz", `Unlock "z") ]
      ~arcs:([ ("Lx", "Ux"); ("Lz", "Uz") ] @ extra)
      ()
  in
  let loose = System.make db [ mk [] "T1"; mk [] "T2" ] in
  let tight =
    System.make db [ mk [ ("Ux", "Lz") ] "T1"; mk [] "T2" ]
  in
  Util.check "adding a precedence changes the fingerprint" true
    (System.fingerprint loose <> System.fingerprint tight)

(* ------------------------------------------------------------------ *)
(* Provenance: each paper procedure decides its own territory *)

let procedure_of sys =
  (Safety.decide sys).E.Outcome.procedure

let test_provenance () =
  Util.check "fig1 decided by Theorem 2" true
    (procedure_of (Figures.fig1 ()) = Some E.Checker.Theorem_2);
  Util.check "strong 2PL pair decided by Theorem 1" true
    (procedure_of (two_phase_pair ()) = Some E.Checker.Theorem_1);
  Util.check "fig5 decided by Lemma 1" true
    (procedure_of (Figures.fig5 ()) = Some E.Checker.Lemma_1);
  Util.check "total pair on three sites decided by Proposition 1" true
    (procedure_of (total_three_site_pair ()) = Some E.Checker.Proposition_1);
  let eng = Decision.create () in
  let o = Decision.decide eng (safe_multi ()) in
  Util.check "three-transaction system decided by Proposition 2" true
    (o.E.Outcome.procedure = Some E.Checker.Proposition_2
    && o.E.Outcome.verdict = E.Outcome.Safe)

let test_proposition1_counterexample () =
  let sys = total_three_site_pair () in
  match (Safety.decide sys).E.Outcome.verdict with
  | E.Outcome.Unsafe (Safety.Counterexample h) ->
      Util.check "legal" true (Distlock_sched.Legality.is_legal sys h);
      Util.check "non-serializable" false
        (Distlock_sched.Conflict.is_serializable sys h)
  | _ -> Alcotest.fail "expected a geometric counterexample"

(* ------------------------------------------------------------------ *)
(* Budgets and the Unknown path *)

let test_budget_exhaustion () =
  (* fig5 needs the Lemma 1 oracle; one step is not enough. *)
  let o = Safety.decide ~budget:(E.Budget.of_steps 1) (Figures.fig5 ()) in
  (match o.E.Outcome.verdict with
  | E.Outcome.Unknown _ -> ()
  | _ -> Alcotest.fail "expected Unknown under a 1-step budget");
  Util.check "the exhausted stage is traced as an error" true
    (List.exists
       (fun (s : E.Outcome.stage_trace) -> s.E.Outcome.status = E.Outcome.Errored)
       o.E.Outcome.trace);
  (* The compatibility shim reports the same. *)
  match Safety.decide_pair ~exhaustive_budget:1 (Figures.fig5 ()) with
  | Safety.Unknown _ -> ()
  | _ -> Alcotest.fail "decide_pair: expected Unknown under a 1-step budget"

let test_deadline_expiry () =
  let o =
    Safety.decide
      ~budget:(E.Budget.make ~max_seconds:0. ())
      (Figures.fig5 ())
  in
  (match o.E.Outcome.verdict with
  | E.Outcome.Unknown _ -> ()
  | _ -> Alcotest.fail "expected Unknown under a zero deadline");
  Util.check "every applicable stage skipped" true
    (o.E.Outcome.trace <> []
    && List.for_all
         (fun (s : E.Outcome.stage_trace) ->
           s.E.Outcome.status = E.Outcome.Skipped)
         o.E.Outcome.trace)

let test_budget_validation () =
  Util.check "negative steps rejected" true
    (try
       ignore (E.Budget.make ~max_steps:(-1) ());
       false
     with Invalid_argument _ -> true);
  Util.check "negative seconds rejected" true
    (try
       ignore (E.Budget.make ~max_seconds:(-1.) ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The verdict cache *)

let test_cache_hit_on_resubmission () =
  let eng = Decision.create () in
  let first = Decision.decide eng (unsafe_pair ()) in
  Util.check "first decision computed" false first.E.Outcome.cached;
  let second = Decision.decide eng (unsafe_pair ()) in
  Util.check "identical resubmission served from cache" true
    second.E.Outcome.cached;
  Util.check "same verdict" true
    (E.Outcome.decided second
    && second.E.Outcome.procedure = first.E.Outcome.procedure);
  (* A perturbed system is a different key. *)
  let third = Decision.decide eng (unsafe_pair ~z_site:3 ()) in
  Util.check "site perturbation misses the cache" false third.E.Outcome.cached;
  Util.check_int "two distinct misses recorded" 2
    (E.Stats.cache_misses (Decision.stats eng))

let test_unknown_never_cached () =
  let eng = Decision.create () in
  let o1 =
    Decision.decide ~budget:(E.Budget.of_steps 1) eng (Figures.fig5 ())
  in
  Util.check "undecided" false (E.Outcome.decided o1);
  (* A bigger budget must be allowed to try again — the Unknown verdict
     was budget-dependent, so it must not have been cached. *)
  let o2 = Decision.decide eng (Figures.fig5 ()) in
  Util.check "re-decided, not served from cache" false o2.E.Outcome.cached;
  Util.check "now decided safe" true (o2.E.Outcome.verdict = E.Outcome.Safe);
  let o3 = Decision.decide eng (Figures.fig5 ()) in
  Util.check "decided verdicts do get cached" true o3.E.Outcome.cached

let test_lru_eviction () =
  let lru = E.Lru.create ~capacity:2 in
  E.Lru.add lru "a" 1;
  E.Lru.add lru "b" 2;
  ignore (E.Lru.find lru "a");
  (* "b" is now least recently used. *)
  E.Lru.add lru "c" 3;
  Util.check_int "capacity respected" 2 (E.Lru.length lru);
  Util.check_int "one eviction" 1 (E.Lru.evictions lru);
  Util.check "LRU entry evicted" false (E.Lru.mem lru "b");
  Util.check "recently used entry kept" true (E.Lru.mem lru "a");
  Util.check "rejects capacity 0" true
    (try
       ignore (E.Lru.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The batch API *)

let test_batch_dedup_and_stats () =
  let eng = Decision.create () in
  let a () = unsafe_pair () and b () = two_phase_pair () in
  let outcomes, report =
    Decision.decide_batch eng [ a (); b (); a (); a (); b () ]
  in
  Util.check_int "all outcomes returned" 5 (List.length outcomes);
  Util.check_int "two unique systems" 2 report.E.Engine.unique;
  Util.check_int "three duplicates folded in-batch" 3
    report.E.Engine.batch_dedup_hits;
  Util.check "positive hit rate on a duplicated workload" true
    (E.Engine.hit_rate report > 0.);
  Util.check "per-procedure tally populated" true
    (report.E.Engine.per_procedure <> []);
  (* Per-stage counters saw real work. *)
  let stages = E.Stats.stages (Decision.stats eng) in
  Util.check "stage counters populated" true (stages <> []);
  Util.check "some stage attempted" true
    (List.exists (fun s -> s.E.Stats.attempts > 0) stages);
  Util.check "stage timings accumulate" true
    (List.for_all (fun s -> s.E.Stats.seconds >= 0.) stages);
  (* A second identical batch is served entirely by the LRU cache. *)
  let _, report2 = Decision.decide_batch eng [ a (); b () ] in
  Util.check_int "second batch: all cache hits" 2 report2.E.Engine.cache_hits

let test_batch_agrees_with_decide () =
  let eng = Decision.create ~cache_capacity:0 () in
  let sys = [ unsafe_pair (); two_phase_pair (); safe_multi () ] in
  let cached = Decision.create () in
  let batched, _ = Decision.decide_batch cached sys in
  List.iter2
    (fun s (b : _ E.Outcome.t) ->
      let plain = Decision.decide eng s in
      Util.check "same procedure with and without cache" true
        (plain.E.Outcome.procedure = b.E.Outcome.procedure);
      Util.check "same decidedness" true
        (E.Outcome.decided plain = E.Outcome.decided b))
    sys batched

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "stable" `Quick test_fingerprint_stable;
          Alcotest.test_case "perturbation" `Quick
            test_fingerprint_perturbation;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "provenance" `Quick test_provenance;
          Alcotest.test_case "proposition 1 counterexample" `Quick
            test_proposition1_counterexample;
        ] );
      ( "budget",
        [
          Alcotest.test_case "step exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "validation" `Quick test_budget_validation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit on resubmission" `Quick
            test_cache_hit_on_resubmission;
          Alcotest.test_case "unknown never cached" `Quick
            test_unknown_never_cached;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
        ] );
      ( "batch",
        [
          Alcotest.test_case "dedup and stats" `Quick
            test_batch_dedup_and_stats;
          Alcotest.test_case "agrees with decide" `Quick
            test_batch_agrees_with_decide;
        ] );
    ]
