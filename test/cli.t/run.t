The CLI decides safety of transaction-system files. An unsafe two-site
pair gets a verified certificate and exit code 1:

  $ ../../bin/distlock_cli.exe check unsafe.txt
  UNSAFE
  non-serializable schedule:
    Lx_1 Ux_1 Lz_2 Uz_2 Lz_1 Uz_1 Lx_2 Ux_2
  rectangles below the path: {x}
  rectangles above the path: {z}
  [1]

A two-phase pair is safe (exit 0):

  $ ../../bin/distlock_cli.exe check safe.txt
  SAFE — Theorem 1: D(T1,T2) strongly connected

The D-graph can be inspected directly:

  $ ../../bin/distlock_cli.exe dgraph safe.txt
  D-graph on {x, z}:
    x -> z
    z -> x
  
  strongly connected: true

  $ ../../bin/distlock_cli.exe dgraph unsafe.txt
  D-graph on {x, z}:
  
  strongly connected: false

Graphviz output:

  $ ../../bin/distlock_cli.exe dgraph safe.txt --dot
  digraph G {
    n0 [label="x"];
    n1 [label="z"];
    n0 -> n1;
    n1 -> n0;
  }

Parse errors are reported with a line number and exit code 2:

  $ ../../bin/distlock_cli.exe check broken.txt
  error: line 3: unknown action grab
  [2]

Theorem 3: a DIMACS formula becomes a pair of distributed transactions;
the sweep decides satisfiability through unsafety:

  $ ../../bin/distlock_cli.exe reduce formula.cnf --decide | head -3
  # restricted form: 3 vars, 3 clauses
  # gadget: 35 entities (one site each)
  entity u @ 1

  $ ../../bin/distlock_cli.exe reduce formula.cnf --decide | tail -1
  # UNSAFE, hence SATISFIABLE

The simulator runs seeded random schedules and reports violations:

  $ ../../bin/distlock_cli.exe simulate safe.txt --seeds 5
  5 runs: 0 violations, 0 aborts, 0 deadlocks, 40 ticks

The analyze command produces a full diagnostic, including the repair
proposal:

  $ ../../bin/distlock_cli.exe analyze unsafe.txt
  sites used: 1, 2
  well-formed: yes
  D(T1,T2): 2 vertices {x, z}, 0 arcs, strongly connected: false
  T1: two-phase weak only
  T2: two-phase weak only
  verdict: UNSAFE
  non-serializable schedule:
    Lx_1 Ux_1 Lz_2 Uz_2 Lz_1 Uz_1 Lx_2 Ux_2
  rectangles below the path: {x}
  rectangles above the path: {z}
  deadlock: not analyzed (partial orders)
  repair: 4 inserted precedence(s) make it safe (loss: 4 pairs)
  

  $ ../../bin/distlock_cli.exe analyze safe.txt
  sites used: 1, 2
  well-formed: yes
  D(T1,T2): 2 vertices {x, z}, 2 arcs, strongly connected: true
  T1: two-phase strong
  T2: two-phase strong
  verdict: SAFE — Theorem 1: D(T1,T2) strongly connected
  deadlock: impossible
  

Repair prints the fixed system with the insertions as comments:

  $ ../../bin/distlock_cli.exe repair unsafe.txt | head -6
  # 4 precedence(s) inserted; system now SAFE (Theorem 1)
  # T2: Lx before Uz
  # T1: Lz before Ux
  # T2: Lz before Ux
  # T1: Lx before Uz
  entity x @ 1

  $ ../../bin/distlock_cli.exe repair unsafe.txt 2>/dev/null | tail -n +6 > repaired.txt
  $ ../../bin/distlock_cli.exe check repaired.txt
  SAFE — Theorem 1: D(T1,T2) strongly connected

Deadlock analysis (this pair has none to reach):

  $ ../../bin/distlock_cli.exe deadlock safe.txt
  deadlock: impossible

The coordinated plane of a totally ordered pair (Fig 2 style), with the
separating staircase drawn when the pair is unsafe:

  $ ../../bin/distlock_cli.exe plane fig2.txt
  UNSAFE — separating staircase:
         +  +  +  +  +  +  *
      Ux     xx xx         
         +  +  +  +  +  +  *
      Lx                   
         +  *  *  *  *  *  *
      Uy        yy yy      
         +  *  +  +  +  +  +
      Ly                   
         +  *  +  +  +  +  +
      Uz                 zz
         +  *  +  +  +  +  +
      Lz                   
         *  *  +  +  +  +  +
          Lx Ly Ux Uy Lz Uz

The advisor compares repair strategies by concurrency cost:

  $ ../../bin/distlock_cli.exe advise unsafe.txt
  UNSAFE; repair options (cheapest first):
    two-phase conversion   loss: 4 newly ordered pair(s)
    precedence insertion   loss: 4 newly ordered pair(s)

  $ ../../bin/distlock_cli.exe advise safe.txt
  already SAFE — Theorem 1: D(T1,T2) strongly connected
