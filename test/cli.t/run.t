The CLI decides safety of transaction-system files. An unsafe two-site
pair gets a verified certificate and exit code 1:

  $ ../../bin/distlock_cli.exe check unsafe.txt
  UNSAFE
  non-serializable schedule:
    Lx_1 Ux_1 Lz_2 Uz_2 Lz_1 Uz_1 Lx_2 Ux_2
  rectangles below the path: {x}
  rectangles above the path: {z}
  [1]

A two-phase pair is safe (exit 0):

  $ ../../bin/distlock_cli.exe check safe.txt
  SAFE — Theorem 1: D(T1,T2) strongly connected

--oracle bypasses the staged engine and decides with one exhaustive
oracle; all three agree with the pipeline:

  $ ../../bin/distlock_cli.exe check --oracle states safe.txt
  SAFE — exhaustive state-graph oracle

  $ ../../bin/distlock_cli.exe check --oracle schedules safe.txt
  SAFE — exhaustive schedule-enumeration oracle

  $ ../../bin/distlock_cli.exe check --oracle extensions safe.txt
  SAFE — exhaustive extension-pair oracle

  $ ../../bin/distlock_cli.exe check --oracle states unsafe.txt
  UNSAFE — exhaustive state-graph oracle
  non-serializable schedule:
    Lx_1 Ux_1 Lx_2 Ux_2 Lz_2 Uz_2 Lz_1 Uz_1
  [1]

The D-graph can be inspected directly:

  $ ../../bin/distlock_cli.exe dgraph safe.txt
  D-graph on {x, z}:
    x -> z
    z -> x
  
  strongly connected: true

  $ ../../bin/distlock_cli.exe dgraph unsafe.txt
  D-graph on {x, z}:
  
  strongly connected: false

Graphviz output:

  $ ../../bin/distlock_cli.exe dgraph safe.txt --dot
  digraph G {
    n0 [label="x"];
    n1 [label="z"];
    n0 -> n1;
    n1 -> n0;
  }

Parse errors are reported with a line number and exit code 2:

  $ ../../bin/distlock_cli.exe check broken.txt
  error: line 3: unknown action grab
  [2]

Theorem 3: a DIMACS formula becomes a pair of distributed transactions;
the sweep decides satisfiability through unsafety:

  $ ../../bin/distlock_cli.exe reduce formula.cnf --decide | head -3
  # restricted form: 3 vars, 3 clauses
  # gadget: 35 entities (one site each)
  entity u @ 1

  $ ../../bin/distlock_cli.exe reduce formula.cnf --decide | tail -1
  # UNSAFE, hence SATISFIABLE

The simulator runs seeded random schedules and reports violations:

  $ ../../bin/distlock_cli.exe simulate safe.txt --seeds 5
  5 runs: 0 violations, 0 aborts, 0 deadlocks, 40 ticks

Fault injection: leased locks with worker crashes break even a
statically-safe system — a crashed holder's lease expires, another
transaction takes the entity, and the resumed holder's stale unlock
leaves an overlapping (illegal, non-serializable) history:

  $ ../../bin/distlock_cli.exe simulate safe.txt --seeds 6 --backend leased \
  >   --lease-ttl 2 --crash-rate 0.4 --down-time 30 --latency 1-3 --sites 2
  6 runs: 5 violations, 0 aborts, 0 deadlocks, 115 ticks, 17 crashes, 20 lease expiries, 20 stale unlocks, 5 illegal histories

The same command is bit-deterministic given the seeds:

  $ ../../bin/distlock_cli.exe simulate safe.txt --seeds 6 --backend leased \
  >   --lease-ttl 2 --crash-rate 0.4 --down-time 30 --latency 1-3 --sites 2
  6 runs: 5 violations, 0 aborts, 0 deadlocks, 115 ticks, 17 crashes, 20 lease expiries, 20 stale unlocks, 5 illegal histories

A lease TTL covering the downtime closes the gap — the holder always
resumes before expiry:

  $ ../../bin/distlock_cli.exe simulate safe.txt --seeds 6 --backend leased \
  >   --lease-ttl 30 --crash-rate 0.4 --down-time 30 --latency 1-3 --sites 2
  6 runs: 0 violations, 0 aborts, 0 deadlocks, 95 ticks, 17 crashes

So does the bakery backend (message-passing mutual exclusion, no
expiry), even with crashes on:

  $ ../../bin/distlock_cli.exe simulate safe.txt --seeds 6 --backend bakery \
  >   --crash-rate 0.4 --down-time 30 --latency 2 --sites 3
  6 runs: 0 violations, 0 aborts, 0 deadlocks, 119 ticks, 17 crashes

Bad flag values are rejected:

  $ ../../bin/distlock_cli.exe simulate safe.txt --backend pigeon
  distlock: option '--backend': unknown backend "pigeon"
  Usage: distlock simulate [OPTION]… FILE
  Try 'distlock simulate --help' or 'distlock --help' for more information.
  [124]
  $ ../../bin/distlock_cli.exe simulate safe.txt --latency fast
  distlock: option '--latency': invalid latency "fast" (use none, a constant,
            or LO-HI)
  Usage: distlock simulate [OPTION]… FILE
  Try 'distlock simulate --help' or 'distlock --help' for more information.
  [124]

The analyze command produces a full diagnostic, including the repair
proposal:

  $ ../../bin/distlock_cli.exe analyze unsafe.txt
  sites used: 1, 2
  well-formed: yes
  D(T1,T2): 2 vertices {x, z}, 0 arcs, strongly connected: false
  T1: two-phase weak only
  T2: two-phase weak only
  verdict: UNSAFE
  non-serializable schedule:
    Lx_1 Ux_1 Lz_2 Uz_2 Lz_1 Uz_1 Lx_2 Ux_2
  rectangles below the path: {x}
  rectangles above the path: {z}
  deadlock: not analyzed (partial orders)
  repair: 4 inserted precedence(s) make it safe (loss: 4 pairs)
  

  $ ../../bin/distlock_cli.exe analyze safe.txt
  sites used: 1, 2
  well-formed: yes
  D(T1,T2): 2 vertices {x, z}, 2 arcs, strongly connected: true
  T1: two-phase strong
  T2: two-phase strong
  verdict: SAFE — Theorem 1: D(T1,T2) strongly connected
  deadlock: impossible
  

Repair prints the fixed system with the insertions as comments:

  $ ../../bin/distlock_cli.exe repair unsafe.txt | head -6
  # 4 precedence(s) inserted; system now SAFE (Theorem 1)
  # T2: Lx before Uz
  # T1: Lz before Ux
  # T2: Lz before Ux
  # T1: Lx before Uz
  entity x @ 1

  $ ../../bin/distlock_cli.exe repair unsafe.txt 2>/dev/null | tail -n +6 > repaired.txt
  $ ../../bin/distlock_cli.exe check repaired.txt
  SAFE — Theorem 1: D(T1,T2) strongly connected

Deadlock analysis (this pair has none to reach):

  $ ../../bin/distlock_cli.exe deadlock safe.txt
  deadlock: impossible

The coordinated plane of a totally ordered pair (Fig 2 style), with the
separating staircase drawn when the pair is unsafe:

  $ ../../bin/distlock_cli.exe plane fig2.txt
  UNSAFE — separating staircase:
         +  +  +  +  +  +  *
      Ux     xx xx         
         +  +  +  +  +  +  *
      Lx                   
         +  *  *  *  *  *  *
      Uy        yy yy      
         +  *  +  +  +  +  +
      Ly                   
         +  *  +  +  +  +  +
      Uz                 zz
         +  *  +  +  +  +  +
      Lz                   
         *  *  +  +  +  +  +
          Lx Ly Ux Uy Lz Uz

The advisor compares repair strategies by concurrency cost:

  $ ../../bin/distlock_cli.exe advise unsafe.txt
  UNSAFE; repair options (cheapest first):
    two-phase conversion   loss: 4 newly ordered pair(s)
    precedence insertion   loss: 4 newly ordered pair(s)

  $ ../../bin/distlock_cli.exe advise safe.txt
  already SAFE — Theorem 1: D(T1,T2) strongly connected

Machine-readable verdicts: --json carries the verdict, the deciding
procedure, and the full stage trace (timings normalized here):

  $ ../../bin/distlock_cli.exe check --json safe.txt \
  >   | sed -E 's/"seconds": [0-9.e+-]+/"seconds": _/'
  {
    "file": "safe.txt",
    "verdict": "safe",
    "procedure": "Thm 1",
    "detail": "Theorem 1: D(T1,T2) strongly connected",
    "cached": false,
    "seconds": _,
    "stages": [
      {
        "stage": "trivial",
        "procedure": "trivial",
        "status": "passed",
        "detail": "two or more commonly locked entities",
        "seconds": _
      },
      {
        "stage": "theorem1",
        "procedure": "Thm 1",
        "status": "decided",
        "detail": "Theorem 1: D(T1,T2) strongly connected",
        "seconds": _
      }
    ]
  }

An unsafe file keeps exit code 1 and includes the witness schedule:

  $ ../../bin/distlock_cli.exe check --json unsafe.txt \
  >   | sed -E 's/"seconds": [0-9.e+-]+/"seconds": _/' \
  >   | grep -E '"(verdict|schedule)"'
    "verdict": "unsafe",
    "schedule": "Lx_1 Ux_1 Lz_2 Uz_2 Lz_1 Uz_1 Lx_2 Ux_2",

Batch mode exports spans to --trace and Prometheus text to --metrics;
every engine stage span carries its checker and verdict attributes:

  $ ../../bin/distlock_cli.exe batch safe.txt unsafe.txt \
  >   --trace spans.jsonl --metrics metrics.prom \
  >   | sed -E 's/[0-9.]+ ms/_ ms/'
  safe.txt: SAFE — Theorem 1: D(T1,T2) strongly connected
  unsafe.txt: UNSAFE — Theorem 2: certificate from the dominator closure
  batch: 2 submitted, 2 unique, 0 batch duplicate(s), 0 cache hit(s), 2 miss(es); hit rate 0.0%; _ ms
  per procedure: Thm 1 ×1, Thm 2 ×1

  $ grep -c '"name":"engine.stage"' spans.jsonl
  5
  $ grep '"name":"engine.stage"' spans.jsonl | grep -vc '"checker":'
  0
  [1]
  $ grep '"name":"engine.stage"' spans.jsonl | grep -vc '"verdict":'
  0
  [1]
  $ grep -c '"name":"engine.batch"' spans.jsonl
  1

  $ grep '^# TYPE' metrics.prom | sort
  # TYPE distlock_engine_cache_hits_total counter
  # TYPE distlock_engine_cache_misses_total counter
  # TYPE distlock_engine_decisions_total counter
  # TYPE distlock_engine_pair_hits_total counter
  # TYPE distlock_engine_pair_misses_total counter
  # TYPE distlock_engine_pairs_redecided_total counter
  # TYPE distlock_engine_stage_seconds histogram
  # TYPE distlock_engine_stage_total counter
  # TYPE distlock_engine_unknowns_total counter
  $ grep '^distlock_engine_decisions_total' metrics.prom
  distlock_engine_decisions_total 2

--stats appends the per-stage table with bucket-interpolated latency
quantiles (p50/p90/p99); --json carries the same numbers:

  $ ../../bin/distlock_cli.exe check --stats safe.txt \
  >   | sed -E 's/ +[0-9]+\.[0-9]+ ms/ X ms/g'
  SAFE — Theorem 1: D(T1,T2) strongly connected
  --
  procedure: Thm 1
  trivial      [trivial] passed X ms  two or more commonly locked entities
  theorem1     [Thm 1  ] decided X ms  Theorem 1: D(T1,T2) strongly connected
  decisions: 1 (0 unknown); cache: 0 hit(s), 1 miss(es), hit rate 0.0%
  stage            runs   safe   unsafe   passed  errors  skipped         time         mean          p50          p90          p99
  trivial             1      0        0        1       0        0 X ms X ms X ms X ms X ms
  theorem1            1      1        0        0       0        0 X ms X ms X ms X ms X ms

  $ ../../bin/distlock_cli.exe check --stats --json safe.txt \
  >   | grep -cE '"p(50|90|99)_seconds"'
  6

--metrics-port keeps a live scrape endpoint (/metrics, /healthz, /vars)
up for the whole run; port 0 picks an ephemeral port, reported on
stderr so stdout stays parseable:

  $ ../../bin/distlock_cli.exe check --metrics-port 0 safe.txt \
  >   2>&1 >/dev/null | sed -E 's|:[0-9]+/|:PORT/|'
  metrics: serving on http://127.0.0.1:PORT/metrics

--jobs fans the batch's distinct systems out to a domain pool; verdicts,
counts, and exit codes are the same as the sequential run, and the
report names the job count:

  $ ../../bin/distlock_cli.exe batch --jobs 4 safe.txt unsafe.txt safe.txt \
  >   | sed -E 's/[0-9.]+ ms/_ ms/'
  safe.txt: SAFE — Theorem 1: D(T1,T2) strongly connected
  unsafe.txt: UNSAFE — Theorem 2: certificate from the dominator closure
  safe.txt: SAFE — Theorem 1: D(T1,T2) strongly connected (cached)
  batch: 3 submitted, 2 unique, 1 batch duplicate(s), 0 cache hit(s), 2 miss(es); hit rate 33.3%; _ ms (4 jobs)
  per procedure: Thm 1 ×1, Thm 2 ×1

  $ ../../bin/distlock_cli.exe batch --jobs 2 --json safe.txt unsafe.txt \
  >   | grep '"jobs"'
      "jobs": 2,

  $ ../../bin/distlock_cli.exe batch --jobs 0 safe.txt
  distlock: --jobs must be >= 1
  [2]

Spans emitted from pool workers carry the emitting domain's id; so do
spans from the main domain:

  $ ../../bin/distlock_cli.exe batch --jobs 2 safe.txt unsafe.txt \
  >   --trace spans_par.jsonl > /dev/null
  [1]
  $ grep '"name":"engine.stage"' spans_par.jsonl | grep -vc '"domain":'
  0
  [1]

Mutate decides a stream of edits of one system incrementally: the
first file is the base, every later file is the system after one edit
batch, diffed by transaction name and content. After an edit only the
pairs incident to the mutated transactions re-run the pipeline; an
edit that restores earlier content reuses everything. --verify
cross-checks every step against a from-scratch decision:

  $ ../../bin/distlock_cli.exe mutate --verify \
  >   mutate_base.txt mutate_edit1.txt mutate_edit2.txt
  mutate_base.txt: SAFE
    edits: +3 -0 ~0; pairs: 0 reused, 3 re-decided; cycles: 0 reused, 2 re-judged
  mutate_edit1.txt: UNSAFE — transactions T1 and T2 form an unsafe pair
    edits: +0 -0 ~2; pairs: 0 reused, 1 re-decided; cycles: 0 reused, 0 re-judged
  mutate_edit2.txt: SAFE
    edits: +0 -0 ~2; pairs: 3 reused, 0 re-decided; cycles: 2 reused, 0 re-judged
  [1]

The JSON stream carries the per-step reuse counters; pair-cache
traffic also lands in --metrics:

  $ ../../bin/distlock_cli.exe mutate --json --metrics mutate.prom \
  >   mutate_base.txt mutate_edit2.txt \
  >   | grep -E '"(verdict|pairs_reused|pairs_redecided)"'
        "verdict": "safe",
        "pairs_reused": 0,
        "pairs_redecided": 3,
        "verdict": "safe",
        "pairs_reused": 3,
        "pairs_redecided": 0,
  $ grep '^distlock_engine_pair' mutate.prom | sort
  distlock_engine_pair_hits_total 3
  distlock_engine_pair_misses_total 3
  distlock_engine_pairs_redecided_total 3

The simulator exports its full step event stream — committed and
aborted attempts, with tick, site, entity, and attempt — as JSONL:

  $ ../../bin/distlock_cli.exe simulate unsafe.txt --seeds 2 --trace sim.jsonl
  2 runs: 1 violations, 0 aborts, 0 deadlocks, 16 ticks
  $ head -3 sim.jsonl
  {"seed":0,"tick":1,"txn":"T2","step":"Lx","action":"lock","entity":"x","site":1,"attempt":1}
  {"seed":0,"tick":2,"txn":"T2","step":"Lz","action":"lock","entity":"z","site":2,"attempt":1}
  {"seed":0,"tick":3,"txn":"T2","step":"Uz","action":"unlock","entity":"z","site":2,"attempt":1}
  $ wc -l < sim.jsonl
  16

--explain prints the full provenance record after the verdict: every
checker in the table with its status (including the ones that never
ran and why), per-stage timing against the cumulative budget, the
cache fingerprint, and — when an exhaustive oracle ran — its state
statistics:

  $ ../../bin/distlock_cli.exe check --explain fig5.txt > explain5.txt
  $ sed -E 's/ +[0-9]+\.[0-9]+ ms/ X ms/g' explain5.txt
  SAFE — state graph: no reachable execution is non-serializable
  --
  explain: safe via States in X ms (fingerprint 7d145e9cd38f4267d16bdfac6d6f67d4)
  trivial           [trivial] poly passed X ms (spent X ms)  two or more commonly locked entities
  theorem1          [Thm 1  ] poly passed X ms (spent X ms)  D(T1,T2) not strongly connected
  two-site          [Thm 2  ] poly inapplicable
  geometric         [Prop 1 ] poly inapplicable
  closure           [Cor 2  ] exp  passed X ms (spent X ms)  no dominator of D(T1,T2) closes
  state-graph       [States ] exp  decided X ms (spent X ms)  state graph: no reachable execution is non-serializable  {states=319 dup_hits=490 exhausted=false}
  exhaustive        [Lemma 1] exp  not-reached
  multisite         [Prop 2 ] exp  inapplicable
  multi-state-graph [States ] exp  inapplicable
  oracle: 319 state(s), 490 duplicate hit(s) (60.6% dedup)

The JSON form embeds the same record under "explain", schema-tagged
and carrying the oracle's dedup statistics:

  $ ../../bin/distlock_cli.exe check --explain --json fig5.txt \
  >   | grep -E '"(schema|dedup_ratio)"'
      "schema": "distlock.explain/1",
        "dedup_ratio": 0.605686032138,

In a batch report every item carries its own record; a --repeat
duplicate is explained as a cache hit:

  $ ../../bin/distlock_cli.exe batch --repeat 2 --explain --json fig2.txt \
  >   | grep '"hit"'
            "hit": false,
            "hit": true,

--chrome-trace renders the span stream as Chrome trace-event JSON
(load it in chrome://tracing or Perfetto); a --jobs batch gets one
thread track per domain:

  $ ../../bin/distlock_cli.exe batch --jobs 2 --chrome-trace chrome.json \
  >   safe.txt fig5.txt > /dev/null
  $ grep -q '"traceEvents"' chrome.json
  $ grep -q '"displayTimeUnit": "ms"' chrome.json
  $ test $(grep -c '"ph": "X"' chrome.json) -ge 2

A decision that ends Unknown trips the flight recorder: the recent
span ring, a GC snapshot, and every registered counter/histogram are
dumped to stderr as JSON Lines. The exhausted oracle still explains
itself:

  $ ../../bin/distlock_cli.exe check --explain --budget 0 fig5.txt \
  >   2> flight.jsonl > explain_b0.txt
  [3]
  $ sed -E 's/ +[0-9]+\.[0-9]+ ms/ X ms/g' explain_b0.txt
  UNKNOWN — no applicable procedure decided the system
  --
  explain: unknown via undecided in X ms (fingerprint 7d145e9cd38f4267d16bdfac6d6f67d4)
  trivial           [trivial] poly passed X ms (spent X ms)  two or more commonly locked entities
  theorem1          [Thm 1  ] poly passed X ms (spent X ms)  D(T1,T2) not strongly connected
  two-site          [Thm 2  ] poly inapplicable
  geometric         [Prop 1 ] poly inapplicable
  closure           [Cor 2  ] exp  passed X ms (spent X ms)  no dominator of D(T1,T2) closes
  state-graph       [States ] exp  passed X ms (spent X ms)  state budget exhausted after 0 of 0 allowed states  {states=0 dup_hits=0 exhausted=true}
  exhaustive        [Lemma 1] exp  passed X ms (spent X ms)  picture budget exhausted after 0 of 0 allowed extension pairs
  multisite         [Prop 2 ] exp  inapplicable
  multi-state-graph [States ] exp  inapplicable
  oracle: 0 state(s), 0 duplicate hit(s) (0.0% dedup), budget exhausted
  $ grep -c '"type":"flight_dump"' flight.jsonl
  1
  $ grep -q '"engine decision ended Unknown' flight.jsonl
  $ grep -q '"minor_words"' flight.jsonl
  $ grep -q '"kind":"histogram"' flight.jsonl
