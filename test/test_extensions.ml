(* Tests for the extension modules: geometric deadlock analysis, the tree
   locking protocol, and safety repair by precedence insertion. *)

open Distlock_core
open Distlock_txn

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

(* ------------------------------------------------------------------ *)
(* Deadlock geometry *)

let deadlock_pair () =
  (* T1 locks x then y (two-phase), T2 locks y then x: the classic
     deadlock square. *)
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "y"; "x" ] in
  System.make db [ t1; t2 ]

let no_deadlock_pair () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "x"; "y" ] in
  System.make db [ t1; t2 ]

let test_deadlock_known () =
  let open Distlock_geometry in
  let plane = Plane.make (deadlock_pair ()) in
  Util.check "deadlock possible" true (Deadlock.possible plane);
  (match Deadlock.witness_prefix plane with
  | None -> Alcotest.fail "expected witness"
  | Some prefix ->
      (* the prefix must be non-empty and reach a blocked state: both next
         steps are lock steps on held entities *)
      Util.check "non-empty prefix" true (prefix <> []));
  let plane2 = Plane.make (no_deadlock_pair ()) in
  Util.check "ordered locking: none" false (Deadlock.possible plane2);
  Util.check "safe and deadlock-free" true
    (Deadlock.deadlock_free_and_safe plane2)

let test_forbidden_points () =
  let open Distlock_geometry in
  let plane = Plane.make (deadlock_pair ()) in
  (* T1 = Lx Ly x y Ux Uy; T2 = Ly Lx y x Uy Ux.
     After T1's Lx (i=1) and T2's Ly (j=1): no shared holding yet. *)
  Util.check "start free" false (Deadlock.forbidden plane 0 0);
  (* T1 executed Lx Ly (i=2), T2 executed Ly (j=1): y held by both. *)
  Util.check "double hold forbidden" true (Deadlock.forbidden plane 2 1)

let qcheck_deadlock_geometry_vs_oracle =
  Util.qtest ~count:80 "geometric deadlock test matches state exploration"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 3)
           ~num_private:1 ~num_sites:(1 + Random.State.int st 3)
           ~cross_prob:1.0 ()))
    (fun sys ->
      let plane = Distlock_geometry.Plane.make sys in
      Distlock_geometry.Deadlock.possible plane
      = Distlock_sched.Enumerate.has_deadlock sys)

let qcheck_witness_is_blocked_prefix =
  Util.qtest ~count:60 "deadlock witness prefixes really block"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:3 ~num_private:0
           ~num_sites:2 ~cross_prob:1.0 ()))
    (fun sys ->
      let plane = Distlock_geometry.Plane.make sys in
      match Distlock_geometry.Deadlock.witness_prefix plane with
      | None -> true
      | Some prefix ->
          (* replay: the prefix is a legal execution; afterwards every
             next step of both transactions must be a blocked lock *)
          let holder = Hashtbl.create 8 in
          let progress = [| 0; 0 |] in
          let exts = [| Distlock_geometry.Plane.extension plane 0;
                        Distlock_geometry.Plane.extension plane 1 |] in
          let legal = ref true in
          List.iter
            (fun (ti, s) ->
              let txn = System.txn sys ti in
              if exts.(ti).(progress.(ti)) <> s then legal := false;
              progress.(ti) <- progress.(ti) + 1;
              let step = Txn.step txn s in
              match step.Step.action with
              | Step.Lock ->
                  if Hashtbl.mem holder step.Step.entity then legal := false
                  else Hashtbl.replace holder step.Step.entity ti
              | Step.Unlock -> Hashtbl.remove holder step.Step.entity
              | Step.Update -> ())
            prefix;
          let blocked ti =
            progress.(ti) < Array.length exts.(ti)
            &&
            let s = exts.(ti).(progress.(ti)) in
            let step = Txn.step (System.txn sys ti) s in
            step.Step.action = Step.Lock
            && (match Hashtbl.find_opt holder step.Step.entity with
               | Some h -> h <> ti
               | None -> false)
          in
          !legal && blocked 0 && blocked 1)

(* ------------------------------------------------------------------ *)
(* Tree protocol *)

let forest_db () =
  (*        a
           / \
          b   c
          |
          d        (e is a separate root) *)
  let db =
    mkdb [ ("a", 1); ("b", 1); ("c", 2); ("d", 2); ("e", 3) ]
  in
  let f =
    Tree_policy.forest_exn db [ ("b", "a"); ("c", "a"); ("d", "b") ]
  in
  (db, f)

let test_forest_errors () =
  let db = mkdb [ ("a", 1); ("b", 1) ] in
  (match Tree_policy.forest db [ ("b", "a"); ("b", "a") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate child accepted");
  (match Tree_policy.forest db [ ("a", "b"); ("b", "a") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cycle accepted");
  match Tree_policy.forest db [ ("z", "a") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown entity accepted"

let test_protocol_known () =
  let db, f = forest_db () in
  (* good: La Lb Ua Ld Ub Ud — locks a, then b under a, then d under b;
     not two-phase (Ua before Ld). *)
  let good =
    Builder.total db ~name:"G"
      [ `Lock "a"; `Lock "b"; `Unlock "a"; `Lock "d"; `Unlock "b"; `Unlock "d" ]
  in
  Util.check "follows" true (Tree_policy.follows f good);
  Util.check "not two-phase" false (Policy.is_two_phase_strong good);
  Util.check "first is a" true
    (Tree_policy.first_entity f good = Database.find db "a");
  (* bad: lock d after parent b released *)
  let bad =
    Builder.total db ~name:"B"
      [ `Lock "b"; `Unlock "b"; `Lock "d"; `Unlock "d" ]
  in
  Util.check "parent released" false (Tree_policy.follows f bad);
  Util.check "violations reported" true (Tree_policy.violations f bad <> []);
  (* bad: two unrelated first locks (concurrent) *)
  let concurrent_firsts =
    Builder.make_exn db ~name:"C"
      ~steps:[ ("La", `Lock "a"); ("Ua", `Unlock "a");
               ("Le", `Lock "e"); ("Ue", `Unlock "e") ]
      ~arcs:[ ("La", "Ua"); ("Le", "Ue") ]
      ()
  in
  Util.check "no unique first" false (Tree_policy.follows f concurrent_firsts);
  (* empty transaction trivially follows *)
  let empty = Builder.make_exn db ~name:"E" ~steps:[] () in
  Util.check "empty follows" true (Tree_policy.follows f empty)

let qcheck_generator_follows =
  Util.qtest ~count:80 "generated protocol transactions follow the protocol"
    (Util.gen_with_state (fun st ->
         let n = 4 + Random.State.int st 4 in
         let db =
           Txn_gen.random_database st ~num_entities:n
             ~num_sites:(1 + Random.State.int st 3)
         in
         let pairs =
           List.filter_map
             (fun i ->
               if i > 0 && Random.State.float st 1.0 < 0.7 then
                 Some (Database.name db i, Database.name db (Random.State.int st i))
               else None)
             (List.init n Fun.id)
         in
         let f = Tree_policy.forest_exn db pairs in
         let t =
           Tree_policy.random_protocol_txn st db f ~name:"T"
             ~cross_prob:(Random.State.float st 1.0) ()
         in
         (db, f, t)))
    (fun (db, f, t) -> Tree_policy.follows f t && Validate.check db t = [])

let qcheck_tree_protocol_safe =
  Util.qtest ~count:60 "tree-protocol pairs are safe"
    (Util.gen_with_state (fun st ->
         let n = 4 + Random.State.int st 3 in
         let db =
           Txn_gen.random_database st ~num_entities:n
             ~num_sites:(1 + Random.State.int st 3)
         in
         let pairs =
           List.filter_map
             (fun i ->
               if i > 0 && Random.State.float st 1.0 < 0.7 then
                 Some (Database.name db i, Database.name db (Random.State.int st i))
               else None)
             (List.init n Fun.id)
         in
         let f = Tree_policy.forest_exn db pairs in
         let mk name =
           Tree_policy.random_protocol_txn st db f ~name
             ~cross_prob:(Random.State.float st 1.0) ()
         in
         System.make db [ mk "T1"; mk "T2" ]))
    (fun sys ->
      match Brute.safe_by_extensions ~limit:1_000_000 sys with
      | Brute.Safe -> true
      | Brute.Unsafe _ -> false
      | Brute.Exhausted _ -> true)

(* ------------------------------------------------------------------ *)
(* Repair *)

let test_repair_quickstart () =
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let mk name =
    Builder.make_exn db ~name
      ~steps:[ ("Lx", `Lock "x"); ("Ux", `Unlock "x");
               ("Lz", `Lock "z"); ("Uz", `Unlock "z") ]
      ~arcs:[ ("Lx", "Ux"); ("Lz", "Uz") ]
      ()
  in
  let sys = System.make db [ mk "T1"; mk "T2" ] in
  Util.check "unsafe before" false (Twosite.is_safe sys);
  match Repair.make_safe sys with
  | None -> Alcotest.fail "expected repair"
  | Some (sys', insertions) ->
      Util.check "insertions made" true (insertions <> []);
      Util.check "safe after" true (Twosite.is_safe sys');
      Util.check "steps preserved" true
        (Txn.num_steps (System.txn sys' 0) = Txn.num_steps (System.txn sys 0));
      Util.check "loss positive" true
        (Repair.concurrency_loss ~before:sys ~after:sys' > 0)

let test_repair_total_orders_unrepairable () =
  (* nothing to insert into totally ordered transactions *)
  let sys = Figures.fig2 () in
  Util.check "unsafe and total" false (Twosite.is_safe sys);
  Util.check "no repair possible" true (Repair.make_safe sys = None)

let test_repair_already_safe () =
  let db = mkdb [ ("x", 1); ("y", 2) ] in
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "x"; "y" ] in
  let sys = System.make db [ t1; t2 ] in
  match Repair.make_safe sys with
  | Some (_, []) -> ()
  | Some (_, _ :: _) -> Alcotest.fail "no insertions expected"
  | None -> Alcotest.fail "safe system trivially repaired"

let qcheck_repair_sound =
  Util.qtest ~count:60 "repaired systems are safe and preserve the original order"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 3)
           ~num_private:1 ~num_sites:(2 + Random.State.int st 3)
           ~cross_prob:(Random.State.float st 0.5) ()))
    (fun sys ->
      match Repair.make_safe sys with
      | None -> true
      | Some (sys', _) ->
          Theorem1.guarantees_safe sys'
          && System.validate sys' = []
          &&
          (* all original precedences preserved *)
          let preserved i =
            let t = System.txn sys i and t' = System.txn sys' i in
            List.for_all
              (fun (a, b) -> Txn.precedes t' a b)
              (Distlock_order.Poset.relation (Txn.order t))
          in
          preserved 0 && preserved 1)

(* ------------------------------------------------------------------ *)
(* Advisor *)

let test_advisor_unsafe_pair () =
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let mk name =
    Builder.make_exn db ~name
      ~steps:[ ("Lx", `Lock "x"); ("Ux", `Unlock "x");
               ("Lz", `Lock "z"); ("Uz", `Unlock "z") ]
      ~arcs:[ ("Lx", "Ux"); ("Lz", "Uz") ]
      ()
  in
  let sys = System.make db [ mk "T1"; mk "T2" ] in
  let options = Advisor.advise sys in
  Util.check "options offered" true (List.length options >= 2);
  List.iter
    (fun o ->
      Util.check
        (Advisor.strategy_name o.Advisor.strategy ^ " verified safe")
        true
        (match Safety.decide_pair o.Advisor.system with
        | Safety.Safe _ -> true
        | _ -> false);
      Util.check "loss positive" true (o.Advisor.concurrency_loss > 0))
    options;
  (* sorted by cost *)
  let costs = List.map (fun o -> o.Advisor.concurrency_loss) options in
  Util.check "sorted" true (List.sort compare costs = costs)

let test_advisor_unrepairable_totals () =
  (* fig2 is totally ordered and unsafe: no strategy applies *)
  let sys = Figures.fig2 () in
  Util.check "no options" true (Advisor.advise sys = [])

let qcheck_advisor_options_safe =
  Util.qtest ~count:40 "every advisor option is safe and order-preserving"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 2)
           ~num_private:1 ~num_sites:2
           ~cross_prob:(Random.State.float st 0.5) ()))
    (fun sys ->
      List.for_all
        (fun o ->
          (match Safety.decide_pair o.Advisor.system with
          | Safety.Safe _ -> true
          | _ -> false)
          &&
          let preserved i =
            let t = System.txn sys i and t' = System.txn o.Advisor.system i in
            List.for_all
              (fun (a, b) -> Txn.precedes t' a b)
              (Distlock_order.Poset.relation (Txn.order t))
          in
          preserved 0 && preserved 1)
        (Advisor.advise sys))

let () =
  Alcotest.run "extensions"
    [
      ( "deadlock",
        [
          Alcotest.test_case "known pairs" `Quick test_deadlock_known;
          Alcotest.test_case "forbidden points" `Quick test_forbidden_points;
          qcheck_deadlock_geometry_vs_oracle;
          qcheck_witness_is_blocked_prefix;
        ] );
      ( "tree protocol",
        [
          Alcotest.test_case "forest validation" `Quick test_forest_errors;
          Alcotest.test_case "known transactions" `Quick test_protocol_known;
          qcheck_generator_follows;
          qcheck_tree_protocol_safe;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "unsafe pair" `Quick test_advisor_unsafe_pair;
          Alcotest.test_case "unrepairable totals" `Quick test_advisor_unrepairable_totals;
          qcheck_advisor_options_safe;
        ] );
      ( "repair",
        [
          Alcotest.test_case "quickstart pair" `Quick test_repair_quickstart;
          Alcotest.test_case "total orders" `Quick test_repair_total_orders_unrepairable;
          Alcotest.test_case "already safe" `Quick test_repair_already_safe;
          qcheck_repair_sound;
        ] );
    ]
