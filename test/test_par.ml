(* The domain pool: ordering, exception propagation, pool reuse, and the
   degenerate single-domain configuration. *)

module Par = Distlock_par.Par

let check = Util.check

let check_int = Util.check_int

let test_map_order () =
  Par.with_pool ~domains:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      let ys = Par.map pool (fun x -> x * x) xs in
      check "results in input order" true
        (ys = List.map (fun x -> x * x) xs);
      check "empty input" true (Par.map pool (fun x -> x) [] = []);
      check_int "singleton" 7 (List.hd (Par.map pool (fun x -> x + 1) [ 6 ])))

let test_single_domain_inline () =
  (* A 1-wide pool spawns nothing and runs tasks on the caller — exact
     sequential semantics, observable through domain identity. *)
  Par.with_pool ~domains:1 (fun pool ->
      let here = (Domain.self () :> int) in
      let ids =
        Par.map pool (fun _ -> (Domain.self () :> int)) (List.init 10 Fun.id)
      in
      check "domains:1 runs on the calling domain" true
        (List.for_all (( = ) here) ids))

let test_exception_propagation () =
  Par.with_pool ~domains:2 (fun pool ->
      (match
         Par.map pool
           (fun x -> if x = 3 then failwith "boom" else x)
           [ 0; 1; 2; 3; 4 ]
       with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure msg ->
          Alcotest.(check string) "task exception surfaces" "boom" msg);
      (* The pool survives a failed map and keeps serving. *)
      check_int "pool usable after an exception" 10
        (List.fold_left ( + ) 0
           (Par.map pool Fun.id [ 1; 2; 3; 4 ])))

let test_lowest_index_exception () =
  Par.with_pool ~domains:4 (fun pool ->
      match
        Par.map pool
          (fun x -> if x mod 2 = 1 then failwith (string_of_int x) else x)
          [ 0; 1; 2; 3; 4; 5 ]
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          Alcotest.(check string) "lowest-index task's exception wins" "1" msg)

let test_iter_and_reuse () =
  Par.with_pool ~domains:3 (fun pool ->
      let total = Atomic.make 0 in
      Par.iter pool
        (fun x -> ignore (Atomic.fetch_and_add total x))
        (List.init 101 Fun.id);
      check_int "iter visits every element" 5050 (Atomic.get total);
      (* Several maps through one pool: results stay independent. *)
      let a = Par.map pool (fun x -> x + 1) (List.init 50 Fun.id)
      and b = Par.map pool (fun x -> x * 2) (List.init 50 Fun.id) in
      check "first map intact" true (a = List.init 50 (fun x -> x + 1));
      check "second map intact" true (b = List.init 50 (fun x -> x * 2)))

let test_shutdown () =
  let pool = Par.create ~domains:2 in
  check_int "usable before shutdown" 6
    (List.fold_left ( + ) 0 (Par.map pool Fun.id [ 1; 2; 3 ]));
  Par.shutdown pool;
  Par.shutdown pool;
  (* idempotent *)
  check "submit after shutdown rejected" true
    (try
       Par.iter pool ignore [ 1 ];
       false
     with Invalid_argument _ -> true)

let test_create_validation () =
  check "rejects domains:0" true
    (try
       ignore (Par.create ~domains:0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "single domain inline" `Quick
            test_single_domain_inline;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "lowest-index exception" `Quick
            test_lowest_index_exception;
          Alcotest.test_case "iter and reuse" `Quick test_iter_and_reuse;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
    ]
