open Distlock_graph

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Util.check "initially empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Util.check "mem 0" true (Bitset.mem s 0);
  Util.check "mem 63" true (Bitset.mem s 63);
  Util.check "mem 64" true (Bitset.mem s 64);
  Util.check "not mem 1" false (Bitset.mem s 1);
  Util.check_int "cardinal" 4 (Bitset.cardinal s);
  Bitset.remove s 63;
  Util.check "removed" false (Bitset.mem s 63);
  Util.check_int "elements" 3 (List.length (Bitset.elements s));
  Alcotest.(check (list int)) "elements sorted" [ 0; 64; 99 ] (Bitset.elements s)

let test_bitset_ops () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.of_list 10 [ 3; 4 ] in
  let u = Bitset.copy a in
  Bitset.union_into ~dst:u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.elements u);
  let i = Bitset.copy a in
  Bitset.inter_into ~dst:i b;
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.elements i);
  Util.check "subset" true (Bitset.subset i a);
  Util.check "not subset" false (Bitset.subset a b);
  Util.check "disjoint" true
    (Bitset.disjoint (Bitset.of_list 10 [ 0 ]) (Bitset.of_list 10 [ 9 ]));
  let c = Bitset.complement a in
  Util.check_int "complement card" 7 (Bitset.cardinal c);
  Util.check "full" true (Bitset.equal (Bitset.full 5) (Bitset.complement (Bitset.create 5)))

let test_bitset_bounds () =
  let s = Bitset.create 4 in
  Alcotest.check_raises "oob add" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 4);
  Alcotest.check_raises "oob mem" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s (-1)))

(* ------------------------------------------------------------------ *)
(* Digraph *)

let test_digraph_basic () =
  let g = Digraph.of_arcs 4 [ (0, 1); (1, 2); (2, 3); (0, 1) ] in
  Util.check_int "n" 4 (Digraph.n g);
  Util.check_int "arcs deduped" 3 (Digraph.num_arcs g);
  Util.check "mem" true (Digraph.mem_arc g 0 1);
  Util.check "not mem" false (Digraph.mem_arc g 1 0);
  Alcotest.(check (list int)) "succ" [ 2 ] (Digraph.succ g 1);
  Alcotest.(check (list int)) "pred" [ 1 ] (Digraph.pred g 2);
  Util.check_int "out_degree" 1 (Digraph.out_degree g 0);
  Util.check_int "in_degree 0" 0 (Digraph.in_degree g 0)

let test_digraph_transpose () =
  let g = Digraph.of_arcs 3 [ (0, 1); (1, 2) ] in
  let t = Digraph.transpose g in
  Util.check "transposed arc" true (Digraph.mem_arc t 1 0);
  Util.check "double transpose" true (Digraph.equal g (Digraph.transpose t))

let test_digraph_union_induced () =
  let a = Digraph.of_arcs 4 [ (0, 1) ] in
  let b = Digraph.of_arcs 4 [ (1, 2) ] in
  let u = Digraph.union a b in
  Util.check_int "union arcs" 2 (Digraph.num_arcs u);
  let sub, back = Digraph.induced u (Bitset.of_list 4 [ 1; 2 ]) in
  Util.check_int "induced size" 2 (Digraph.n sub);
  Util.check_int "induced arcs" 1 (Digraph.num_arcs sub);
  Alcotest.(check (array int)) "back map" [| 1; 2 |] back

(* ------------------------------------------------------------------ *)
(* SCC *)

let naive_scc_same g u v =
  let r1 = Reach.from g u and r2 = Reach.from g v in
  Bitset.mem r1 v && Bitset.mem r2 u

let test_scc_known () =
  let cycle = Digraph.of_arcs 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Util.check "cycle strongly connected" true (Scc.is_strongly_connected cycle);
  let path = Digraph.of_arcs 3 [ (0, 1); (1, 2) ] in
  Util.check "path not" false (Scc.is_strongly_connected path);
  Util.check_int "path comps" 3 (Scc.compute path).Scc.count;
  let two =
    Digraph.of_arcs 5 [ (0, 1); (1, 0); (2, 3); (3, 4); (4, 2); (1, 2) ]
  in
  let r = Scc.compute two in
  Util.check_int "two comps" 2 r.Scc.count;
  Util.check "0,1 together" true (r.Scc.component.(0) = r.Scc.component.(1));
  Util.check "2,3,4 together" true
    (r.Scc.component.(2) = r.Scc.component.(3)
    && r.Scc.component.(3) = r.Scc.component.(4));
  (* condensation numbering: arc a -> b implies a > b *)
  let cond = Scc.condensation two r in
  Digraph.iter_arcs cond (fun a b -> Util.check "reverse topo" true (a > b))

let test_scc_empty_single () =
  Util.check "empty strongly connected" true
    (Scc.is_strongly_connected (Digraph.create 0));
  Util.check "single vertex" true (Scc.is_strongly_connected (Digraph.create 1));
  Util.check "two isolated" false (Scc.is_strongly_connected (Digraph.create 2))

let test_scc_deep_chain () =
  (* Stack-safety: a 100k chain must not overflow. *)
  let n = 100_000 in
  let g = Digraph.of_arcs n (List.init (n - 1) (fun i -> (i, i + 1))) in
  Util.check_int "chain comps" n (Scc.compute g).Scc.count

let qcheck_scc =
  Util.qtest ~count:60 "SCC agrees with naive mutual reachability"
    (Util.gen_with_state (fun st ->
         let n = 2 + Random.State.int st 10 in
         (n, Util.random_digraph_arcs st n 0.25)))
    (fun (n, arcs) ->
      let g = Digraph.of_arcs n arcs in
      let r = Scc.compute g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let same = r.Scc.component.(u) = r.Scc.component.(v) in
          if same <> naive_scc_same g u v then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Topo *)

let test_topo_basic () =
  let g = Digraph.of_arcs 4 [ (3, 1); (1, 0); (0, 2) ] in
  (match Topo.sort g with
  | None -> Alcotest.fail "expected DAG"
  | Some o -> Util.check "valid order" true (Topo.is_topological_order g o));
  let cyc = Digraph.of_arcs 2 [ (0, 1); (1, 0) ] in
  Util.check "cycle has no sort" true (Topo.sort cyc = None);
  Util.check "acyclic" false (Topo.is_acyclic cyc)

let test_topo_priority () =
  (* 0 and 1 both available; priority prefers 1. *)
  let g = Digraph.of_arcs 3 [ (0, 2); (1, 2) ] in
  match Topo.sort_with_priority g ~priority:(fun v -> if v = 1 then 0 else 5) with
  | Some o -> Alcotest.(check (array int)) "1 first" [| 1; 0; 2 |] o
  | None -> Alcotest.fail "expected DAG"

let test_find_cycle () =
  let g = Digraph.of_arcs 5 [ (0, 1); (1, 2); (2, 3); (3, 1); (3, 4) ] in
  match Topo.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
      Util.check "cycle length" true (List.length cycle >= 2);
      (* each consecutive pair an arc, and last -> first *)
      let arr = Array.of_list cycle in
      let k = Array.length arr in
      for i = 0 to k - 1 do
        Util.check "cycle arc" true (Digraph.mem_arc g arr.(i) arr.((i + 1) mod k))
      done

let qcheck_topo =
  Util.qtest ~count:80 "topological sort of random DAG is valid"
    (Util.gen_with_state (fun st ->
         let n = 1 + Random.State.int st 15 in
         (n, Util.random_dag_arcs st n 0.3)))
    (fun (n, arcs) ->
      let g = Digraph.of_arcs n arcs in
      match Topo.sort g with
      | None -> false
      | Some o -> Topo.is_topological_order g o)

(* ------------------------------------------------------------------ *)
(* Reach *)

let naive_closure g =
  (* Floyd-Warshall-style boolean closure. *)
  let n = Digraph.n g in
  let m = Array.make_matrix n n false in
  Digraph.iter_arcs g (fun u v -> m.(u).(v) <- true);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if m.(i).(k) && m.(k).(j) then m.(i).(j) <- true
      done
    done
  done;
  m

let qcheck_closure =
  Util.qtest ~count:60 "closure agrees with Floyd-Warshall"
    (Util.gen_with_state (fun st ->
         let n = 1 + Random.State.int st 10 in
         (n, Util.random_digraph_arcs st n 0.2)))
    (fun (n, arcs) ->
      let g = Digraph.of_arcs n arcs in
      let c = Reach.closure g in
      let m = naive_closure g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Bitset.mem c.(u) v <> m.(u).(v) then ok := false
        done
      done;
      !ok)

let test_transitive_reduction () =
  let g = Digraph.of_arcs 3 [ (0, 1); (1, 2); (0, 2) ] in
  let r = Reach.transitive_reduction g in
  Util.check_int "redundant arc dropped" 2 (Digraph.num_arcs r);
  Util.check "0->2 gone" false (Digraph.mem_arc r 0 2)

let qcheck_reduction =
  Util.qtest ~count:60 "transitive reduction preserves reachability"
    (Util.gen_with_state (fun st ->
         let n = 1 + Random.State.int st 10 in
         (n, Util.random_dag_arcs st n 0.4)))
    (fun (n, arcs) ->
      let g = Digraph.of_arcs n arcs in
      let r = Reach.transitive_reduction g in
      let cg = Reach.closure g and cr = Reach.closure r in
      Array.for_all2 Bitset.equal cg cr)

(* ------------------------------------------------------------------ *)
(* Dominator *)

let naive_dominators g =
  (* all nonempty proper subsets with no incoming outside arcs *)
  let n = Digraph.n g in
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 2 do
    let s = Bitset.create n in
    for v = 0 to n - 1 do
      if mask land (1 lsl v) <> 0 then Bitset.add s v
    done;
    if Dominator.is_dominator g s then out := s :: !out
  done;
  List.rev !out

let test_dominator_known () =
  let g = Digraph.of_arcs 3 [ (0, 1); (1, 2) ] in
  (* dominators: {0}, {0,1} *)
  let doms = Dominator.enumerate g in
  Util.check_int "count" 2 (List.length doms);
  Util.check "find some" true (Dominator.find g <> None);
  let cyc = Digraph.of_arcs 3 [ (0, 1); (1, 2); (2, 0) ] in
  Util.check "strongly connected: none" true (Dominator.find cyc = None);
  Util.check "enumerate empty" true (Dominator.enumerate cyc = [])

let qcheck_dominators =
  Util.qtest ~count:60 "enumerate matches the definition"
    (Util.gen_with_state (fun st ->
         let n = 2 + Random.State.int st 6 in
         (n, Util.random_digraph_arcs st n 0.3)))
    (fun (n, arcs) ->
      let g = Digraph.of_arcs n arcs in
      let enumerated =
        List.sort compare (List.map Bitset.elements (Dominator.enumerate g))
      in
      let naive =
        List.sort compare (List.map Bitset.elements (naive_dominators g))
      in
      enumerated = naive)

let qcheck_find_dominator =
  Util.qtest ~count:80 "find returns a dominator iff not strongly connected"
    (Util.gen_with_state (fun st ->
         let n = 2 + Random.State.int st 8 in
         (n, Util.random_digraph_arcs st n 0.3)))
    (fun (n, arcs) ->
      let g = Digraph.of_arcs n arcs in
      match Dominator.find g with
      | Some x -> Dominator.is_dominator g x && not (Scc.is_strongly_connected g)
      | None -> Scc.is_strongly_connected g)

let test_to_dot () =
  let g = Digraph.of_arcs 2 [ (0, 1) ] in
  let dot = Digraph.to_dot ~name:"T" ~label:(fun v -> Printf.sprintf "v%d" v) g in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Util.check "digraph name" true (contains dot "digraph T");
  Util.check "label" true (contains dot "v1");
  Util.check "arc" true (contains dot "n0 -> n1")

let () =
  Alcotest.run "graph"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "set ops" `Quick test_bitset_ops;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "transpose" `Quick test_digraph_transpose;
          Alcotest.test_case "union/induced" `Quick test_digraph_union_induced;
        ] );
      ("dot", [ Alcotest.test_case "rendering" `Quick test_to_dot ]);
      ( "scc",
        [
          Alcotest.test_case "known graphs" `Quick test_scc_known;
          Alcotest.test_case "degenerate" `Quick test_scc_empty_single;
          Alcotest.test_case "deep chain" `Slow test_scc_deep_chain;
          qcheck_scc;
        ] );
      ( "topo",
        [
          Alcotest.test_case "basic" `Quick test_topo_basic;
          Alcotest.test_case "priority" `Quick test_topo_priority;
          Alcotest.test_case "find_cycle" `Quick test_find_cycle;
          qcheck_topo;
        ] );
      ( "reach",
        [
          Alcotest.test_case "reduction" `Quick test_transitive_reduction;
          qcheck_closure;
          qcheck_reduction;
        ] );
      ( "dominator",
        [
          Alcotest.test_case "known" `Quick test_dominator_known;
          qcheck_dominators;
          qcheck_find_dominator;
        ] );
    ]
