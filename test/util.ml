(* Shared helpers for the test suites. *)

let rng () = Random.State.make [| 0xd15710c6 |]

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Fold a brute-force verdict to a boolean with an explicit match.
   Exhaustion fails the test loudly instead of masquerading as UNSAFE,
   which is what a polymorphic [= Brute.Safe] comparison would do. *)
let brute_safe = function
  | Distlock_core.Brute.Safe -> true
  | Distlock_core.Brute.Unsafe _ -> false
  | Distlock_core.Brute.Exhausted { examined; limit } ->
      Alcotest.failf "brute-force oracle exhausted (%d of %d steps)" examined
        limit

(* A random DAG on [n] vertices as an arc list (arcs only go forward in a
   random permutation, so acyclicity is guaranteed). *)
let random_dag_arcs st n density =
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let arcs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float st 1.0 < density then
        arcs := (perm.(i), perm.(j)) :: !arcs
    done
  done;
  !arcs

(* A random digraph (possibly cyclic). *)
let random_digraph_arcs st n density =
  let arcs = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Random.State.float st 1.0 < density then arcs := (i, j) :: !arcs
    done
  done;
  !arcs

(* QCheck2 generator wrapping a stateful builder. *)
let gen_with_state f =
  QCheck2.Gen.map
    (fun seed ->
      let st = Random.State.make [| seed |] in
      f st)
    QCheck2.Gen.(int_range 0 1_000_000)
