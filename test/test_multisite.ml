open Distlock_core
open Distlock_txn

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

let test_conflict_graph () =
  let db = mkdb [ ("x", 1); ("y", 1); ("z", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "y"; "z" ] in
  let t3 = Builder.locked_sequence db ~name:"T3" [ "z" ] in
  let sys = System.make db [ t1; t2; t3 ] in
  let g = Multisite.conflict_graph sys in
  Util.check "T1-T2" true (Distlock_graph.Digraph.mem_arc g 0 1);
  Util.check "symmetric" true (Distlock_graph.Digraph.mem_arc g 1 0);
  Util.check "T2-T3" true (Distlock_graph.Digraph.mem_arc g 1 2);
  Util.check "no T1-T3" false (Distlock_graph.Digraph.mem_arc g 0 2)

let test_simple_cycles () =
  let triangle =
    Distlock_graph.Digraph.of_arcs 3
      [ (0, 1); (1, 0); (1, 2); (2, 1); (0, 2); (2, 0) ]
  in
  (* both orientations of the one undirected triangle *)
  Util.check_int "triangle cycles" 2
    (List.length (Multisite.simple_cycles triangle));
  let path = Distlock_graph.Digraph.of_arcs 3 [ (0, 1); (1, 0); (1, 2); (2, 1) ] in
  Util.check_int "path has none" 0 (List.length (Multisite.simple_cycles path));
  (* K4 has 4 triangles and 3 four-cycles, each in 2 orientations *)
  let k4arcs =
    List.concat_map
      (fun i ->
        List.filter_map (fun j -> if i <> j then Some (i, j) else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  let k4 = Distlock_graph.Digraph.of_arcs 4 k4arcs in
  Util.check_int "K4 cycles" 14 (List.length (Multisite.simple_cycles k4))

let test_b_graph_structure () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "x"; "y" ] in
  let t3 = Builder.locked_sequence db ~name:"T3" [ "y" ] in
  let sys = System.make db [ t1; t2; t3 ] in
  let g, names = Multisite.b_graph sys ~i:0 ~j:1 ~k:2 in
  (* nodes: x@{0,1} and y@{1,2} *)
  Util.check_int "two nodes" 2 (Array.length names);
  (* In T2 = Lx x Ux Ly y Uy: Lx precedes Uy, so arc x@01 -> y@12. *)
  Util.check_int "one arc" 1 (Distlock_graph.Digraph.num_arcs g)

(* Proposition 2 against the exhaustive schedule oracle. *)
let gen_small_multi ~sites =
  Util.gen_with_state (fun st ->
      Txn_gen.random_multi_system st ~num_txns:3 ~num_entities:4
        ~entities_per_txn:2 ~num_sites:sites
        ~cross_prob:(Random.State.float st 1.0) ())

let prop2_vs_oracle sys =
  let oracle_pair sub = Util.brute_safe (Brute.safe_by_extensions sub) in
  let p2 =
    Multisite.decide ~pair_decider:oracle_pair sys = Multisite.Safe
  in
  let oracle = Util.brute_safe (Brute.safe_by_schedules ~limit:2_000_000 sys) in
  p2 = oracle

let qcheck_prop2_centralized =
  Util.qtest ~count:40 "Proposition 2 matches the oracle (centralized)"
    (gen_small_multi ~sites:1) prop2_vs_oracle

let qcheck_prop2_distributed =
  Util.qtest ~count:40 "Proposition 2 matches the oracle (two sites)"
    (gen_small_multi ~sites:2) prop2_vs_oracle

let qcheck_prop2_three_sites =
  Util.qtest ~count:30 "Proposition 2 matches the oracle (three sites)"
    (gen_small_multi ~sites:3) prop2_vs_oracle

let test_decide_known () =
  (* three transactions in a safe 2PL ring *)
  let db = mkdb [ ("x", 1); ("y", 2); ("z", 3) ] in
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "y"; "z" ] in
  let t3 = Builder.two_phase_sequence db ~name:"T3" [ "z"; "x" ] in
  let sys = System.make db [ t1; t2; t3 ] in
  Util.check "2PL ring safe" true (Multisite.decide sys = Multisite.Safe);
  (* sequential ring is unsafe *)
  let db2 = mkdb [ ("x", 1); ("y", 2); ("z", 3) ] in
  let s1 = Builder.locked_sequence db2 ~name:"T1" [ "x"; "y" ] in
  let s2 = Builder.locked_sequence db2 ~name:"T2" [ "y"; "z" ] in
  let s3 = Builder.locked_sequence db2 ~name:"T3" [ "z"; "x" ] in
  let sys2 = System.make db2 [ s1; s2; s3 ] in
  (match Multisite.decide sys2 with
  | Multisite.Safe -> Alcotest.fail "sequential ring is unsafe"
  | Multisite.Unsafe _ -> ());
  Util.check "oracle agrees" false (Util.brute_safe (Brute.safe_by_schedules sys2))

let test_unsafe_pair_detected () =
  (* an unsafe pair inside a trio is reported as such *)
  let db = mkdb [ ("x", 1); ("z", 2); ("w", 3) ] in
  let mk name =
    Builder.make_exn db ~name
      ~steps:[ ("Lx", `Lock "x"); ("Ux", `Unlock "x"); ("Lz", `Lock "z"); ("Uz", `Unlock "z") ]
      ~arcs:[ ("Lx", "Ux"); ("Lz", "Uz") ]
      ()
  in
  let t3 = Builder.locked_sequence db ~name:"T3" [ "w" ] in
  let sys = System.make db [ mk "T1"; mk "T2"; t3 ] in
  match Multisite.decide sys with
  | Multisite.Unsafe (Multisite.Unsafe_pair (0, 1)) -> ()
  | _ -> Alcotest.fail "expected unsafe pair (0,1)"

let test_disconnected_conflict_graph () =
  (* no common entities between any pair: trivially safe, no cycles *)
  let db = mkdb [ ("x", 1); ("y", 2); ("z", 3) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "y" ] in
  let t3 = Builder.locked_sequence db ~name:"T3" [ "z" ] in
  let sys = System.make db [ t1; t2; t3 ] in
  Util.check_int "no conflict arcs" 0
    (Distlock_graph.Digraph.num_arcs (Multisite.conflict_graph sys));
  Util.check "safe" true (Multisite.decide sys = Multisite.Safe);
  Util.check "oracle agrees" true (Util.brute_safe (Brute.safe_by_schedules sys))

let test_pair_decider_injection () =
  (* a decider that lies "unsafe" must surface as Unsafe_pair *)
  let db = mkdb [ ("x", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "x" ] in
  let sys = System.make db [ t1; t2 ] in
  (match Multisite.decide ~pair_decider:(fun _ -> false) sys with
  | Multisite.Unsafe (Multisite.Unsafe_pair (0, 1)) -> ()
  | _ -> Alcotest.fail "expected injected unsafe pair");
  match Multisite.decide ~pair_decider:(fun _ -> true) sys with
  | Multisite.Safe -> ()
  | _ -> Alcotest.fail "expected safe with permissive decider"

let test_bc_union () =
  (* B_c of a triangle unions three B_ijk's. The sequential ring is unsafe
     because SOME orientation of the conflict cycle has an acyclic B_c;
     for the 2PL ring every orientation's B_c is cyclic (condition (b)
     holds). *)
  let acyclic_orientation sys =
    List.exists
      (fun c -> Distlock_graph.Topo.is_acyclic (Multisite.b_cycle_graph sys c))
      (Multisite.simple_cycles (Multisite.conflict_graph sys))
  in
  let db = mkdb [ ("x", 1); ("y", 2); ("z", 3) ] in
  let s1 = Builder.locked_sequence db ~name:"T1" [ "x"; "y" ] in
  let s2 = Builder.locked_sequence db ~name:"T2" [ "y"; "z" ] in
  let s3 = Builder.locked_sequence db ~name:"T3" [ "z"; "x" ] in
  let seq = System.make db [ s1; s2; s3 ] in
  Util.check "sequential ring: some acyclic B_c" true (acyclic_orientation seq);
  let db2 = mkdb [ ("x", 1); ("y", 2); ("z", 3) ] in
  let p1 = Builder.two_phase_sequence db2 ~name:"T1" [ "x"; "y" ] in
  let p2 = Builder.two_phase_sequence db2 ~name:"T2" [ "y"; "z" ] in
  let p3 = Builder.two_phase_sequence db2 ~name:"T3" [ "z"; "x" ] in
  let tp = System.make db2 [ p1; p2; p3 ] in
  Util.check "2PL ring: every B_c cyclic" false (acyclic_orientation tp)

let () =
  Alcotest.run "multisite"
    [
      ( "structure",
        [
          Alcotest.test_case "conflict graph" `Quick test_conflict_graph;
          Alcotest.test_case "simple cycles" `Quick test_simple_cycles;
          Alcotest.test_case "B_ijk" `Quick test_b_graph_structure;
        ] );
      ( "structure2",
        [
          Alcotest.test_case "disconnected graph" `Quick test_disconnected_conflict_graph;
          Alcotest.test_case "pair decider injection" `Quick test_pair_decider_injection;
          Alcotest.test_case "B_c union" `Quick test_bc_union;
        ] );
      ( "proposition2",
        [
          Alcotest.test_case "known systems" `Quick test_decide_known;
          Alcotest.test_case "unsafe pair" `Quick test_unsafe_pair_detected;
          qcheck_prop2_centralized;
          qcheck_prop2_distributed;
          qcheck_prop2_three_sites;
        ] );
    ]
