(* Tests for the observability core: JSON writer, metric instruments,
   registry + Prometheus exposition, span lifecycle, sinks — and the
   registry-backed engine Stats edge cases. *)

open Distlock_obs
module E = Distlock_engine

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_compact () =
  let j =
    Json.Obj
      [
        ("s", Json.Str "a\"b\nc");
        ("i", Json.Int (-3));
        ("f", Json.Float 0.25);
        ("t", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2 ]);
      ]
  in
  check string "compact form"
    {|{"s":"a\"b\nc","i":-3,"f":0.25,"t":true,"n":null,"l":[1,2]}|}
    (Json.to_string j)

let test_json_floats () =
  check string "integral floats print without exponent" {|1000000|}
    (Json.to_string (Json.Float 1e6));
  check string "NaN is null" {|null|} (Json.to_string (Json.Float Float.nan));
  check string "negative zero" {|-0|} (Json.to_string (Json.Float (-0.)))

let test_json_pretty () =
  check string "pretty empty containers" {|{}|}
    (Json.to_string_pretty (Json.Obj []));
  check string "pretty nesting"
    "{\n  \"a\": [\n    1\n  ]\n}"
    (Json.to_string_pretty (Json.Obj [ ("a", Json.List [ Json.Int 1 ]) ]))

(* ------------------------------------------------------------------ *)
(* Metric *)

let test_counter () =
  let c = Metric.counter () in
  Metric.incr c;
  Metric.incr_by c 4;
  Metric.incr_by c (-10);
  check int "monotone: negative deltas ignored" 5 (Metric.counter_value c);
  Metric.reset_counter c;
  check int "reset" 0 (Metric.counter_value c)

let test_histogram_buckets () =
  let h = Metric.histogram ~buckets:[| 0.1; 1.; 10. |] () in
  (* le semantics: a value lands in the first bucket whose bound >= it *)
  List.iter (Metric.observe h) [ 0.1; 0.5; 1.; 5.; 100. ];
  check (Alcotest.array int) "cumulative counts, +Inf last"
    [| 1; 3; 4; 5 |] (Metric.cumulative h);
  check int "count = +Inf total" 5 (Metric.histogram_count h);
  check (Alcotest.float 1e-9) "sum" 106.6 (Metric.histogram_sum h)

let test_histogram_validation () =
  Alcotest.check_raises "non-increasing bounds rejected"
    (Invalid_argument
       "Metric.histogram: bucket bounds must be strictly increasing")
    (fun () -> ignore (Metric.histogram ~buckets:[| 1.; 1. |] ()));
  Alcotest.check_raises "empty bounds rejected"
    (Invalid_argument "Metric.histogram: empty bucket list") (fun () ->
      ignore (Metric.histogram ~buckets:[||] ()))

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_get_or_create () =
  let r = Registry.create () in
  let c1 = Registry.counter r ~help:"h" "m_total" in
  let c2 = Registry.counter r ~help:"h" "m_total" in
  Metric.incr c1;
  check int "same key returns the same handle" 1 (Metric.counter_value c2);
  let c3 = Registry.counter r ~labels:[ ("k", "v") ] ~help:"h" "m_total" in
  check int "distinct labels are a distinct instance" 0
    (Metric.counter_value c3);
  check int "entries lists both" 2 (List.length (Registry.entries r))

let test_registry_kind_mismatch () =
  let r = Registry.create () in
  ignore (Registry.counter r ~help:"h" "m_total");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Registry: m_total already registered as a counter")
    (fun () -> ignore (Registry.gauge r ~help:"h" "m_total"))

let test_registry_invalid_name () =
  let r = Registry.create () in
  Alcotest.check_raises "invalid name"
    (Invalid_argument "Registry: invalid metric name \"9bad\"") (fun () ->
      ignore (Registry.counter r ~help:"h" "9bad"))

let test_prometheus_exposition () =
  let r = Registry.create () in
  let c = Registry.counter r ~labels:[ ("q", {|a"b|}) ] ~help:"A counter" "c_total" in
  Metric.incr c;
  let h = Registry.histogram r ~buckets:[| 0.5 |] ~help:"A histogram" "h_s" in
  Metric.observe h 0.25;
  Metric.observe h 2.;
  check string "text exposition"
    "# HELP c_total A counter\n\
     # TYPE c_total counter\n\
     c_total{q=\"a\\\"b\"} 1\n\
     # HELP h_s A histogram\n\
     # TYPE h_s histogram\n\
     h_s_bucket{le=\"0.5\"} 1\n\
     h_s_bucket{le=\"+Inf\"} 2\n\
     h_s_sum 2.25\n\
     h_s_count 2\n"
    (Registry.to_prometheus r)

let test_prometheus_families_contiguous () =
  (* Interleaved registration must still group samples per family. *)
  let r = Registry.create () in
  ignore (Registry.counter r ~labels:[ ("s", "a") ] ~help:"h" "x_total");
  ignore (Registry.counter r ~labels:[ ("s", "a") ] ~help:"h" "y_total");
  ignore (Registry.counter r ~labels:[ ("s", "b") ] ~help:"h" "x_total");
  check string "families grouped, headers once"
    "# HELP x_total h\n# TYPE x_total counter\n\
     x_total{s=\"a\"} 0\nx_total{s=\"b\"} 0\n\
     # HELP y_total h\n# TYPE y_total counter\ny_total{s=\"a\"} 0\n"
    (Registry.to_prometheus r)

let test_registry_reset () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"h" "c_total" in
  Metric.incr c;
  Registry.reset r;
  check int "instrument zeroed" 0 (Metric.counter_value c);
  check int "registration survives" 1 (List.length (Registry.entries r))

(* ------------------------------------------------------------------ *)
(* Spans, events, sinks *)

(* Install a collecting sink for the duration of [f]. *)
let with_collecting f =
  let sink, collected = Sink.collecting () in
  Obs.set_sink sink;
  Fun.protect ~finally:(fun () -> Obs.set_sink Sink.noop) f;
  collected ()

let test_span_nesting () =
  let spans, _ =
    with_collecting (fun () ->
        Obs.with_span "outer" (fun _ ->
            Obs.with_span "inner" (fun sp ->
                Obs.add_attrs sp [ Attr.str "k" "v" ])))
  in
  match spans with
  | [ inner; outer ] ->
      (* children complete (and are delivered) first *)
      check string "inner name" "inner" inner.Span.name;
      check string "outer name" "outer" outer.Span.name;
      check bool "inner parented to outer" true
        (inner.Span.parent = Some outer.Span.id);
      check bool "outer is a root" true (outer.Span.parent = None);
      check bool "inner carries added attr" true
        (List.mem_assoc "k" inner.Span.attrs);
      check bool "duration is non-negative" true (inner.Span.duration_s >= 0.)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_exception_closes () =
  let spans, _ =
    with_collecting (fun () ->
        try Obs.with_span "boom" (fun _ -> failwith "x")
        with Failure _ -> ())
  in
  check int "span delivered despite exception" 1 (List.length spans)

let test_end_span_idempotent () =
  let spans, _ =
    with_collecting (fun () ->
        let sp = Obs.start_span "once" in
        Obs.end_span sp;
        Obs.end_span sp)
  in
  check int "second end_span is a no-op" 1 (List.length spans)

let test_event_level_gating () =
  let _, events =
    with_collecting (fun () ->
        Obs.set_level Obs.Info;
        Obs.event "kept";
        Obs.event ~level:Obs.Debug "dropped";
        Obs.set_level Obs.Debug;
        Obs.event ~level:Obs.Debug "kept2";
        Obs.set_level Obs.Info)
  in
  check
    (Alcotest.list string)
    "only events within the level" [ "kept"; "kept2" ]
    (List.map (fun (e : Span.event) -> e.Span.name) events)

let test_disabled_thunks_unforced () =
  (* With the no-op sink installed nothing forces attr thunks. *)
  let forced = ref false in
  let sp =
    Obs.start_span "quiet" ~attrs:(fun () ->
        forced := true;
        [])
  in
  Obs.end_span sp;
  Obs.event "quiet" ~attrs:(fun () ->
      forced := true;
      []);
  check bool "attr thunks never forced when disabled" false !forced;
  check bool "tracing reports disabled" false (Obs.enabled ())

let test_span_jsonl_shape () =
  let s =
    {
      Span.id = 7;
      parent = Some 3;
      name = "engine.stage";
      start_s = 12.5;
      duration_s = 0.25;
      attrs = [ Attr.str "checker" "trivial"; Attr.bool "cache_hit" false ];
    }
  in
  check string "span JSON"
    {|{"type":"span","id":7,"parent":3,"name":"engine.stage","start_s":12.5,"duration_s":0.25,"attrs":{"checker":"trivial","cache_hit":false}}|}
    (Json.to_string (Span.span_to_json s));
  let e =
    { Span.name = "sim.txn.abort"; time_s = 1.5; span = None; attrs = [] }
  in
  check string "event JSON"
    {|{"type":"event","name":"sim.txn.abort","time_s":1.5}|}
    (Json.to_string (Span.event_to_json e))

let test_level_of_string () =
  check bool "warning alias" true (Obs.level_of_string "warning" = Some Obs.Warn);
  check bool "unknown rejected" true (Obs.level_of_string "loud" = None)

(* ------------------------------------------------------------------ *)
(* Domain-safety: span domain tags, serialized sinks, shared registry *)

let test_span_domain_attr () =
  let spans, events =
    with_collecting (fun () ->
        Obs.with_span "main-span" (fun _ -> Obs.event "main-event");
        Domain.join
          (Domain.spawn (fun () ->
               Obs.with_span "worker-span" (fun _ -> ()))))
  in
  let domain_of name attrs =
    match List.assoc_opt "domain" attrs with
    | Some (Attr.Int d) -> d
    | _ -> Alcotest.failf "%s carries no integer domain attribute" name
  in
  let find name =
    List.find (fun (s : Span.span) -> s.Span.name = name) spans
  in
  let main_d = domain_of "main-span" (find "main-span").Span.attrs in
  let worker_d = domain_of "worker-span" (find "worker-span").Span.attrs in
  check int "main span tagged with this domain" (Domain.self () :> int) main_d;
  check bool "worker span tagged with a different domain" true
    (worker_d <> main_d);
  match events with
  | [ e ] -> check int "event tagged too" main_d (domain_of "event" e.Span.attrs)
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

let test_jsonl_no_interleaving () =
  (* 4 domains each emit 50 spans with long attribute payloads through
     one jsonl sink; every line of the file must be a complete, parseable
     record — a torn write would break the shape check. *)
  let path = Filename.temp_file "distlock_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Sink.jsonl oc in
      Obs.set_sink sink;
      Fun.protect
        ~finally:(fun () ->
          Obs.set_sink Sink.noop;
          close_out oc)
        (fun () ->
          let payload = String.make 256 'x' in
          let emit d =
            for i = 0 to 49 do
              Obs.with_span "concurrent" (fun sp ->
                  Obs.add_attrs sp
                    [ Attr.int "task" ((100 * d) + i); Attr.str "pad" payload ])
            done
          in
          let workers = List.init 3 (fun d -> Domain.spawn (fun () -> emit (d + 1))) in
          emit 0;
          List.iter Domain.join workers;
          sink.Sink.flush ());
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      check int "every span is exactly one line" 200 (List.length !lines);
      check bool "every line is a complete record" true
        (List.for_all
           (fun l ->
             String.length l > 0
             && l.[0] = '{'
             && l.[String.length l - 1] = '}'
             && contains l {|"type":"span"|}
             && contains l {|"name":"concurrent"|})
           !lines))

let test_registry_concurrent_get_or_create () =
  (* 4 domains race get-or-create on the same name and bump it 100 times
     each: exactly one instrument must exist, holding every increment. *)
  let r = Registry.create () in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 100 do
              Metric.incr (Registry.counter r ~help:"h" "race_total")
            done))
  in
  List.iter Domain.join workers;
  check int "single registration" 1 (List.length (Registry.entries r));
  check int "no lost increments" 400
    (Metric.counter_value (Registry.counter r ~help:"h" "race_total"))

let test_counter_atomic_under_domains () =
  let c = Metric.counter () in
  let h = Metric.histogram ~buckets:[| 0.5; 1.5 |] () in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Metric.incr c;
              Metric.observe h 1.
            done))
  in
  List.iter Domain.join workers;
  check int "counter: no lost updates across 4 domains" 40_000
    (Metric.counter_value c);
  check int "histogram count intact" 40_000 (Metric.histogram_count h);
  check (Alcotest.float 1e-6) "histogram sum intact" 40_000.
    (Metric.histogram_sum h)

(* ------------------------------------------------------------------ *)
(* Monotonic clock *)

let test_mono_nondecreasing () =
  let prev = ref (Obs.mono_s ()) in
  for _ = 1 to 1_000 do
    let now = Obs.mono_s () in
    if now < !prev then
      Alcotest.failf "mono_s went backwards: %.9f after %.9f" now !prev;
    prev := now
  done;
  (* The clock must actually advance over real work. *)
  let t0 = Obs.mono_s () in
  ignore (Sys.opaque_identity (List.init 100_000 Fun.id));
  check bool "mono_s advances" true (Obs.mono_s () > t0)

(* ------------------------------------------------------------------ *)
(* Chrome trace export *)

let mk_span ?(attrs = []) ~id ?parent ~name ~start_s ~duration_s ~domain () =
  {
    Span.id;
    parent;
    name;
    start_s;
    duration_s;
    attrs = Attr.int "domain" domain :: attrs;
  }

let test_trace_export_shape () =
  let spans =
    [
      mk_span ~id:1 ~name:"engine.decide" ~start_s:10.0 ~duration_s:0.002
        ~domain:0 ();
      mk_span ~id:2 ~parent:1 ~name:"engine.stage" ~start_s:10.0005
        ~duration_s:0.001 ~domain:0 ();
      mk_span ~id:3 ~name:"engine.decide" ~start_s:10.001 ~duration_s:0.003
        ~domain:1 ();
    ]
  in
  let events =
    [
      {
        Span.name = "sim.txn.abort";
        time_s = 10.0010;
        span = Some 1;
        attrs = [ Attr.int "domain" 0 ];
      };
    ]
  in
  match Trace_export.to_json ~spans ~events () with
  | Json.Obj fields ->
      check bool "displayTimeUnit ms" true
        (List.assoc_opt "displayTimeUnit" fields = Some (Json.Str "ms"));
      let evs =
        match List.assoc "traceEvents" fields with
        | Json.List l -> l
        | _ -> Alcotest.fail "traceEvents is not a list"
      in
      let phase j =
        match j with
        | Json.Obj f -> (
            match List.assoc_opt "ph" f with
            | Some (Json.Str p) -> p
            | _ -> Alcotest.fail "event without ph")
        | _ -> Alcotest.fail "trace event is not an object"
      in
      let completes = List.filter (fun j -> phase j = "X") evs in
      check int "one complete event per span" 3 (List.length completes);
      check int "one instant per event" 1
        (List.length (List.filter (fun j -> phase j = "i") evs));
      (* process_name + a thread_name per domain *)
      check int "metadata names process and both domains" 3
        (List.length (List.filter (fun j -> phase j = "M") evs));
      let field f j =
        match j with Json.Obj l -> List.assoc_opt f l | _ -> None
      in
      let tids =
        List.sort_uniq compare (List.filter_map (field "tid") completes)
      in
      check int "one track per domain" 2 (List.length tids);
      (* ts is microseconds relative to the earliest record: the first
         span starts at 0, the second 500us later. *)
      let ts =
        List.sort compare
          (List.filter_map
             (fun j ->
               match field "ts" j with Some (Json.Float t) -> Some t | _ -> None)
             completes)
      in
      (match ts with
      | [ t0; t1; t2 ] ->
          check (Alcotest.float 1e-6) "earliest span at ts 0" 0. t0;
          check (Alcotest.float 1e-6) "second span 500us later" 500. t1;
          check (Alcotest.float 1e-6) "third span 1000us later" 1000. t2
      | _ -> Alcotest.fail "expected 3 complete-event timestamps")
  | _ -> Alcotest.fail "to_json did not return an object"

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let rspan ~id ~start_s ~task =
  Recorder.Rspan
    (mk_span ~id ~name:"hammer" ~start_s ~duration_s:0.001 ~domain:0
       ~attrs:[ Attr.int "task" task ]
       ())

let test_recorder_ring_wrap () =
  let r = Recorder.create ~stripes:1 ~capacity:4 () in
  let sink = Recorder.sink r in
  for i = 1 to 10 do
    match rspan ~id:i ~start_s:(float_of_int i) ~task:i with
    | Recorder.Rspan s -> sink.Sink.on_span s
    | Recorder.Revent _ -> assert false
  done;
  let recs = Recorder.records r in
  check int "ring keeps the last [capacity] records" 4 (List.length recs);
  let ids =
    List.map
      (function
        | Recorder.Rspan s -> s.Span.id
        | Recorder.Revent _ -> Alcotest.fail "unexpected event")
      recs
  in
  check (Alcotest.list int) "oldest-first, newest retained" [ 7; 8; 9; 10 ] ids

let test_recorder_multi_domain_hammer () =
  (* 4 domains push 200 spans each through the striped ring. Capacity
     is large enough that nothing is evicted even if every domain lands
     on the same stripe, so afterwards the ring must hold exactly 800
     records, each with its payload intact — a torn record (or a lost
     push) breaks the count or the per-emitter reconstruction. *)
  let per_domain = 200 in
  let r = Recorder.create ~stripes:8 ~capacity:1_024 () in
  let sink = Recorder.sink r in
  let emit e =
    for i = 0 to per_domain - 1 do
      let id = (e * per_domain) + i in
      sink.Sink.on_span
        (mk_span ~id ~name:"hammer" ~start_s:(float_of_int id)
           ~duration_s:0.001
           ~domain:(Domain.self () :> int)
           ~attrs:[ Attr.int "emitter" e; Attr.int "seq" i ]
           ())
    done
  in
  let workers = List.init 3 (fun e -> Domain.spawn (fun () -> emit (e + 1))) in
  emit 0;
  List.iter Domain.join workers;
  let recs = Recorder.records r in
  check int "every push retained" (4 * per_domain) (List.length recs);
  let seen = Array.make_matrix 4 per_domain false in
  List.iter
    (function
      | Recorder.Revent _ -> Alcotest.fail "unexpected event in ring"
      | Recorder.Rspan s -> (
          match
            ( List.assoc_opt "emitter" s.Span.attrs,
              List.assoc_opt "seq" s.Span.attrs )
          with
          | Some (Attr.Int e), Some (Attr.Int i) ->
              check string "payload name intact" "hammer" s.Span.name;
              if seen.(e).(i) then
                Alcotest.failf "duplicate record emitter=%d seq=%d" e i;
              seen.(e).(i) <- true
          | _ -> Alcotest.fail "torn record: emitter/seq attrs missing"))
    recs;
  Array.iteri
    (fun e row ->
      Array.iteri
        (fun i present ->
          if not present then Alcotest.failf "lost push emitter=%d seq=%d" e i)
        row)
    seen

let test_recorder_dump_and_anomaly_cap () =
  let r = Recorder.create ~stripes:1 ~capacity:8 ~dump_limit:2 () in
  let sink = Recorder.sink r in
  (match rspan ~id:1 ~start_s:1. ~task:1 with
  | Recorder.Rspan s -> sink.Sink.on_span s
  | Recorder.Revent _ -> assert false);
  let reg = Registry.create () in
  Metric.incr (Registry.counter reg ~help:"h" "dumped_total");
  Metric.observe (Registry.histogram reg ~buckets:[| 1. |] ~help:"h" "lat_s") 0.5;
  Recorder.set_registries r (fun () -> [ ("test", reg) ]);
  let path = Filename.temp_file "distlock_rec" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Recorder.set_dump_dest r (fun () -> oc);
      Recorder.set_global (Some r);
      Fun.protect
        ~finally:(fun () ->
          Recorder.set_global None;
          close_out oc)
        (fun () ->
          Recorder.anomaly ~reason:"first";
          Recorder.anomaly ~reason:"second";
          Recorder.anomaly ~reason:"third (over the cap)");
      check int "every anomaly counted" 3 (Recorder.dump_count r);
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check int "dump cap held: 2 headers" 2
        (List.length
           (List.filter (fun l -> contains l {|"type":"flight_dump"|}) lines));
      check bool "header carries the gc snapshot" true
        (List.exists (fun l -> contains l {|"minor_words"|}) lines);
      check bool "buffered span dumped" true
        (List.exists (fun l -> contains l {|"name":"hammer"|}) lines);
      check bool "counter snapshot present" true
        (List.exists
           (fun l ->
             contains l {|"name":"dumped_total"|} && contains l {|"value":1|})
           lines);
      check bool "histogram snapshot carries buckets" true
        (List.exists
           (fun l ->
             contains l {|"name":"lat_s"|}
             && contains l {|"cumulative":[1,1]|}
             && contains l {|"sum":0.5|})
           lines))

let test_anomaly_uninstalled_noop () =
  Recorder.set_global None;
  (* Must not raise or print; there is nothing installed. *)
  Recorder.anomaly ~reason:"nobody home"

(* ------------------------------------------------------------------ *)
(* Engine Stats on top of the registry *)

let test_stats_zero_decisions () =
  let s = E.Stats.create () in
  check (Alcotest.float 0.) "hit_rate 0 before any decision" 0.
    (E.Stats.hit_rate s);
  check bool "stages empty" true (E.Stats.stages s = []);
  let out = Format.asprintf "%a" E.Stats.pp s in
  check bool "pp mentions the empty stage table" true
    (contains out "(no stage activity)")

let test_stats_skip_only_stage () =
  let s = E.Stats.create () in
  E.Stats.record_stage s ~name:"exhaustive" (E.Outcome.Skipped, false) 0.;
  match E.Stats.stages s with
  | [ st ] ->
      check int "skip is not an attempt" 0 st.E.Stats.attempts;
      check int "skip recorded" 1 st.E.Stats.skipped;
      check (Alcotest.float 0.) "mean_seconds is 0, not NaN" 0.
        (E.Stats.mean_seconds st)
  | l -> Alcotest.failf "expected 1 stage, got %d" (List.length l)

let test_stats_counters_roundtrip () =
  let s = E.Stats.create () in
  E.Stats.record_stage s ~name:"theorem1" (E.Outcome.Decided, false) 0.5;
  E.Stats.record_stage s ~name:"theorem1" (E.Outcome.Decided, true) 0.25;
  E.Stats.record_stage s ~name:"theorem1" (E.Outcome.Passed, false) 0.25;
  E.Stats.record_decision s ~cached:false ~unknown:false;
  E.Stats.record_cache_miss s;
  E.Stats.record_decision s ~cached:true ~unknown:false;
  check int "decisions" 2 (E.Stats.decisions s);
  check int "cache hits" 1 (E.Stats.cache_hits s);
  check (Alcotest.float 1e-9) "hit rate" 0.5 (E.Stats.hit_rate s);
  (match E.Stats.stages s with
  | [ st ] ->
      check int "attempts" 3 st.E.Stats.attempts;
      check int "safe" 1 st.E.Stats.decided_safe;
      check int "unsafe" 1 st.E.Stats.decided_unsafe;
      check (Alcotest.float 1e-9) "seconds accumulate" 1. st.E.Stats.seconds;
      check (Alcotest.float 1e-9) "mean over attempts" (1. /. 3.)
        (E.Stats.mean_seconds st)
  | l -> Alcotest.failf "expected 1 stage, got %d" (List.length l));
  let prom = Format.asprintf "%a" E.Stats.pp_prometheus s in
  check bool "prometheus carries the stage label" true
    (contains prom
       {|distlock_engine_stage_total{stage="theorem1",result="safe"} 1|})

let test_stats_reset () =
  let s = E.Stats.create () in
  E.Stats.record_stage s ~name:"trivial" (E.Outcome.Passed, false) 0.1;
  E.Stats.record_decision s ~cached:false ~unknown:false;
  E.Stats.reset s;
  check int "decisions zeroed" 0 (E.Stats.decisions s);
  check bool "stage list emptied" true (E.Stats.stages s = []);
  E.Stats.record_stage s ~name:"trivial" (E.Outcome.Passed, false) 0.1;
  check int "stage usable again after reset" 1
    (List.length (E.Stats.stages s))

(* ------------------------------------------------------------------ *)
(* Histogram quantiles *)

let test_quantile_empty () =
  let h = Metric.histogram ~buckets:[| 1.; 2. |] () in
  check bool "empty histogram quantile is NaN" true
    (Float.is_nan (Metric.quantile h 0.5))

let test_quantile_interpolation () =
  let h = Metric.histogram ~buckets:[| 1.; 2.; 4. |] () in
  (* 4 observations in (1,2]: the bucket holding any quantile. *)
  List.iter (fun v -> Metric.observe h v) [ 1.2; 1.4; 1.6; 1.8 ];
  (* p50 target = 2nd observation of 4 in [1,2]: 1 + (2/4)*1 = 1.5 *)
  check (Alcotest.float 1e-9) "p50 interpolates inside the bucket" 1.5
    (Metric.quantile h 0.5);
  check (Alcotest.float 1e-9) "p0 is the bucket's lower bound" 1.
    (Metric.quantile h 0.);
  check (Alcotest.float 1e-9) "p100 is the bucket's upper bound" 2.
    (Metric.quantile h 1.)

let test_quantile_inf_bucket () =
  let h = Metric.histogram ~buckets:[| 1.; 2. |] () in
  Metric.observe h 0.5;
  Metric.observe h 50.;
  (* The +Inf bucket has no upper bound to interpolate against; the
     quantile clamps to the highest finite bound. *)
  check (Alcotest.float 1e-9) "overflow quantile clamps to last bound" 2.
    (Metric.quantile h 0.99)

let test_quantile_invalid_q () =
  let h = Metric.histogram ~buckets:[| 1. |] () in
  Alcotest.check_raises "q out of range rejected"
    (Invalid_argument "Metric.quantile: q outside [0,1]") (fun () ->
      ignore (Metric.quantile h 1.5))

(* ------------------------------------------------------------------ *)
(* HELP escaping in the exposition *)

let test_prometheus_help_escaped () =
  let r = Registry.create () in
  let _ =
    Registry.counter r ~help:"line one\nback\\slash" "help_escape_total"
  in
  let out = Registry.to_prometheus r in
  check bool "newline escaped in HELP" true
    (contains out {|# HELP help_escape_total line one\nback\\slash|});
  check bool "no literal newline inside the HELP text" false
    (contains out "line one\nback")

(* ------------------------------------------------------------------ *)
(* Expose: the scrape endpoint *)

let http_get ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
          path
      in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let body_of resp =
  let rec find i =
    if i + 4 > String.length resp then resp
    else if String.sub resp i 4 = "\r\n\r\n" then
      String.sub resp (i + 4) (String.length resp - i - 4)
    else find (i + 1)
  in
  find 0

let with_server registries f =
  match Expose.start ~port:0 ~registries () with
  | Error m -> Alcotest.fail m
  | Ok srv ->
      Fun.protect ~finally:(fun () -> Expose.stop srv) (fun () ->
          f (Expose.port srv))

let test_expose_routes () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"a counter" "route_total" in
  Metric.incr c;
  let h = Registry.histogram r ~buckets:[| 1.; 2. |] ~help:"a hist" "lat" in
  Metric.observe h 1.5;
  with_server (fun () -> [ ("test", r) ]) (fun port ->
      let metrics = http_get ~port "/metrics" in
      check bool "metrics is 200" true (contains metrics "HTTP/1.1 200 OK");
      check bool "prometheus content type" true
        (contains metrics "text/plain; version=0.0.4");
      check bool "counter served" true
        (contains (body_of metrics) "route_total 1");
      check bool "healthz" true (contains (http_get ~port "/healthz") "ok\n");
      let vars = body_of (http_get ~port "/vars") in
      check bool "vars carries the quantile snapshot" true
        (contains vars {|"p50"|});
      check bool "unknown path is 404" true
        (contains (http_get ~port "/nope") "404 Not Found");
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let req = "POST /metrics HTTP/1.1\r\n\r\n" in
          ignore (Unix.write_substring sock req 0 (String.length req));
          let buf = Bytes.create 256 in
          let n = Unix.read sock buf 0 256 in
          check bool "non-GET is 405" true
            (contains (Bytes.sub_string buf 0 n) "405")));
  (* stop is idempotent and the port is released: a second server can
     bind a fresh ephemeral port immediately. *)
  with_server (fun () -> [ ("test", r) ]) (fun port -> ignore port)

(* Prometheus text sanity, shared with the hammer below: every
   non-comment line must end in a numeric sample. *)
let scrape_parses body =
  String.split_on_char '\n' body
  |> List.for_all (fun line ->
         line = ""
         || line.[0] = '#'
         ||
         match String.rindex_opt line ' ' with
         | None -> false
         | Some i ->
             float_of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
             <> None)

let metric_value body name =
  String.split_on_char '\n' body
  |> List.find_map (fun line ->
         if
           String.length line > String.length name
           && String.sub line 0 (String.length name) = name
           && line.[String.length name] = ' '
         then
           match String.rindex_opt line ' ' with
           | Some i ->
               float_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
           | None -> None
         else None)

let test_expose_scrape_under_write () =
  let r = Registry.create () in
  let stop = Atomic.make false in
  (* Four writer domains hammer a shared counter and histogram while the
     main thread scrapes in a loop: every scrape must parse, and the
     counter must be monotone from one scrape to the next. *)
  let writers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let c =
              Registry.counter r ~help:"hammered" "hammer_total"
            and h =
              Registry.histogram r
                ~labels:[ ("writer", string_of_int d) ]
                ~buckets:[| 1.; 10.; 100. |] ~help:"hammered" "hammer_lat"
            in
            while not (Atomic.get stop) do
              Metric.incr c;
              Metric.observe h (float_of_int (1 + (d * 7 mod 97)))
            done))
  in
  with_server (fun () -> [ ("hammer", r) ]) (fun port ->
      let last = ref neg_infinity in
      for i = 1 to 25 do
        let body = body_of (http_get ~port "/metrics") in
        if not (scrape_parses body) then
          Alcotest.failf "scrape %d failed to parse:\n%s" i body;
        match metric_value body "hammer_total" with
        | Some v ->
            if v < !last then
              Alcotest.failf "scrape %d: counter went backwards (%g < %g)" i v
                !last;
            last := v
        | None -> ()
      done;
      Atomic.set stop true;
      List.iter Domain.join writers;
      check bool "writes landed" true (!last > 0.))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "compact" `Quick test_json_compact;
          Alcotest.test_case "floats" `Quick test_json_floats;
          Alcotest.test_case "pretty" `Quick test_json_pretty;
        ] );
      ( "metric",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram validation" `Quick
            test_histogram_validation;
          Alcotest.test_case "quantile empty" `Quick test_quantile_empty;
          Alcotest.test_case "quantile interpolation" `Quick
            test_quantile_interpolation;
          Alcotest.test_case "quantile +Inf clamp" `Quick
            test_quantile_inf_bucket;
          Alcotest.test_case "quantile invalid q" `Quick
            test_quantile_invalid_q;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get-or-create" `Quick test_registry_get_or_create;
          Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "invalid name" `Quick test_registry_invalid_name;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "families contiguous" `Quick
            test_prometheus_families_contiguous;
          Alcotest.test_case "reset" `Quick test_registry_reset;
          Alcotest.test_case "HELP escaped" `Quick test_prometheus_help_escaped;
        ] );
      ( "expose",
        [
          Alcotest.test_case "routes" `Quick test_expose_routes;
          Alcotest.test_case "scrape under write" `Quick
            test_expose_scrape_under_write;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception closes span" `Quick
            test_span_exception_closes;
          Alcotest.test_case "end_span idempotent" `Quick
            test_end_span_idempotent;
          Alcotest.test_case "event level gating" `Quick
            test_event_level_gating;
          Alcotest.test_case "disabled thunks unforced" `Quick
            test_disabled_thunks_unforced;
          Alcotest.test_case "jsonl shape" `Quick test_span_jsonl_shape;
          Alcotest.test_case "level_of_string" `Quick test_level_of_string;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "span domain attr" `Quick test_span_domain_attr;
          Alcotest.test_case "jsonl no interleaving" `Quick
            test_jsonl_no_interleaving;
          Alcotest.test_case "registry concurrent get-or-create" `Quick
            test_registry_concurrent_get_or_create;
          Alcotest.test_case "atomic instruments" `Quick
            test_counter_atomic_under_domains;
        ] );
      ( "mono clock",
        [ Alcotest.test_case "nondecreasing" `Quick test_mono_nondecreasing ] );
      ( "chrome trace",
        [ Alcotest.test_case "export shape" `Quick test_trace_export_shape ] );
      ( "flight recorder",
        [
          Alcotest.test_case "ring wrap" `Quick test_recorder_ring_wrap;
          Alcotest.test_case "multi-domain hammer" `Quick
            test_recorder_multi_domain_hammer;
          Alcotest.test_case "dump + anomaly cap" `Quick
            test_recorder_dump_and_anomaly_cap;
          Alcotest.test_case "anomaly uninstalled" `Quick
            test_anomaly_uninstalled_noop;
        ] );
      ( "engine stats",
        [
          Alcotest.test_case "zero decisions" `Quick test_stats_zero_decisions;
          Alcotest.test_case "skip-only stage" `Quick test_stats_skip_only_stage;
          Alcotest.test_case "counters roundtrip" `Quick
            test_stats_counters_roundtrip;
          Alcotest.test_case "reset" `Quick test_stats_reset;
        ] );
    ]
