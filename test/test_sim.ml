open Distlock_txn
open Distlock_sim

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

let unsafe_pair () =
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let mk name =
    Builder.make_exn db ~name
      ~steps:
        [
          ("Lx", `Lock "x"); ("ux", `Update "x"); ("Ux", `Unlock "x");
          ("Lz", `Lock "z"); ("uz", `Update "z"); ("Uz", `Unlock "z");
        ]
      ~chains:[ [ "Lx"; "ux"; "Ux" ]; [ "Lz"; "uz"; "Uz" ] ]
      ()
  in
  System.make db [ mk "T1"; mk "T2" ]

let safe_pair () =
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "z" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "x"; "z" ] in
  System.make db [ t1; t2 ]

let test_run_completes_and_legal () =
  let sys = unsafe_pair () in
  List.iter
    (fun policy ->
      match Engine.run ~policy sys with
      | Error m -> Alcotest.fail m
      | Ok o ->
          Util.check "history complete" true
            (Distlock_sched.Schedule.is_complete sys o.Engine.history);
          Util.check "history legal" true
            (Distlock_sched.Legality.is_legal sys o.Engine.history);
          Util.check_int "commits" 2 o.Engine.stats.Engine.commits)
    [ Engine.Round_robin; Engine.Random 1; Engine.Random 2 ]

let test_unsafe_system_violates () =
  let sys = unsafe_pair () in
  Util.check "some random run violates" true (Engine.violation_rate sys > 0.)

let test_safe_system_never_violates () =
  let sys = safe_pair () in
  Util.check "no violation in 100 runs" true (Engine.violation_rate sys = 0.)

let test_deadlock_handling () =
  (* opposite lock orders: deadlock must be detected and resolved *)
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "y"; "x" ] in
  let sys = System.make db [ t1; t2 ] in
  let saw_deadlock = ref false in
  for seed = 0 to 49 do
    match Engine.run ~policy:(Engine.Random seed) sys with
    | Error m -> Alcotest.fail m
    | Ok o ->
        if o.Engine.stats.Engine.deadlocks > 0 then saw_deadlock := true;
        Util.check "always serializable (2PL)" true o.Engine.serializable;
        Util.check "complete despite aborts" true
          (Distlock_sched.Schedule.is_complete sys o.Engine.history)
  done;
  Util.check "deadlock exercised" true !saw_deadlock

let qcheck_histories_always_legal =
  Util.qtest ~count:40 "simulated histories are legal schedules"
    (Util.gen_with_state (fun st ->
         ( Txn_gen.random_multi_system st ~num_txns:(2 + Random.State.int st 3)
             ~num_entities:5 ~entities_per_txn:2
             ~num_sites:(1 + Random.State.int st 3)
             ~with_updates:true ~cross_prob:0.5 (),
           Random.State.int st 1000 )))
    (fun (sys, seed) ->
      match Engine.run ~policy:(Engine.Random seed) sys with
      | Error _ -> true (* livelock guard tripped: acceptable *)
      | Ok o ->
          Distlock_sched.Legality.is_legal sys o.Engine.history
          && Distlock_sched.Schedule.is_complete sys o.Engine.history)

let qcheck_2pl_workloads_serializable =
  Util.qtest ~count:25 "two-phase workloads never produce violations"
    (Util.gen_with_state (fun st ->
         let db = mkdb (List.init 6 (fun i -> (Printf.sprintf "e%d" i, 1 + (i mod 3)))) in
         Workload.make st ~db ~style:Workload.Two_phase
           ~num_txns:(2 + Random.State.int st 3) ~entities_per_txn:3))
    (fun sys ->
      let s = Workload.measure ~seeds:[ 0; 1; 2; 3; 4 ] sys in
      s.Workload.violations = 0)

let test_cross_site_delay () =
  let sys = safe_pair () in
  let run delay =
    match Engine.run ~policy:(Engine.Random 11) ~cross_site_delay:delay sys with
    | Error m -> Alcotest.fail m
    | Ok o -> o
  in
  let fast = run 0 and slow = run 8 in
  Util.check "both complete" true
    (Distlock_sched.Schedule.is_complete sys fast.Engine.history
    && Distlock_sched.Schedule.is_complete sys slow.Engine.history);
  Util.check "latency stretches the run" true
    (slow.Engine.stats.Engine.ticks > fast.Engine.stats.Engine.ticks);
  Util.check "still serializable (2PL)" true slow.Engine.serializable

let qcheck_delay_runs_complete =
  Util.qtest ~count:30 "runs complete and stay legal under message latency"
    (Util.gen_with_state (fun st ->
         ( Txn_gen.random_multi_system st ~num_txns:(2 + Random.State.int st 2)
             ~num_entities:5 ~entities_per_txn:2 ~num_sites:3
             ~cross_prob:0.5 (),
           1 + Random.State.int st 6,
           Random.State.int st 1000 )))
    (fun (sys, delay, seed) ->
      match Engine.run ~policy:(Engine.Random seed) ~cross_site_delay:delay sys with
      | Error _ -> true
      | Ok o ->
          Distlock_sched.Legality.is_legal sys o.Engine.history
          && Distlock_sched.Schedule.is_complete sys o.Engine.history)

let test_workload_styles () =
  let rng = Util.rng () in
  let db = mkdb (List.init 6 (fun i -> (Printf.sprintf "e%d" i, 1 + (i mod 2)))) in
  List.iter
    (fun style ->
      let sys = Workload.make rng ~db ~style ~num_txns:4 ~entities_per_txn:2 in
      Util.check "well-formed" true (System.validate sys = []);
      let s = Workload.measure ~seeds:[ 0; 1 ] sys in
      Util.check "runs completed" true (s.Workload.runs = 2))
    [ Workload.Two_phase; Workload.Sequential; Workload.Random_locked 0.4 ]

let test_violation_rate_ordering () =
  (* Sequential sections must violate at least as often as 2PL (which is 0). *)
  let rng = Util.rng () in
  let db = mkdb (List.init 5 (fun i -> (Printf.sprintf "e%d" i, 1 + (i mod 2)))) in
  let seq = Workload.make rng ~db ~style:Workload.Sequential ~num_txns:4 ~entities_per_txn:3 in
  let tp = Workload.make rng ~db ~style:Workload.Two_phase ~num_txns:4 ~entities_per_txn:3 in
  let vs = (Workload.measure seq).Workload.violations in
  let vt = (Workload.measure tp).Workload.violations in
  Util.check_int "2PL violations" 0 vt;
  Util.check "sequential violates" true (vs >= 0) (* typically > 0; not guaranteed *)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "completes, legal" `Quick test_run_completes_and_legal;
          Alcotest.test_case "unsafe violates" `Quick test_unsafe_system_violates;
          Alcotest.test_case "safe never violates" `Quick test_safe_system_never_violates;
          Alcotest.test_case "deadlock handling" `Quick test_deadlock_handling;
          Alcotest.test_case "cross-site delay" `Quick test_cross_site_delay;
          qcheck_histories_always_legal;
          qcheck_delay_runs_complete;
        ] );
      ( "workload",
        [
          Alcotest.test_case "styles" `Quick test_workload_styles;
          Alcotest.test_case "violation ordering" `Quick test_violation_rate_ordering;
          qcheck_2pl_workloads_serializable;
        ] );
    ]
