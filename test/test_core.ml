open Distlock_core
open Distlock_txn

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

(* ------------------------------------------------------------------ *)
(* D(T1,T2) — Definition 1 *)

let test_dgraph_fig3 () =
  let sys = Figures.fig3 () in
  let db = System.db sys in
  let d = Dgraph.build_pair sys in
  Util.check_int "vertices = common entities" 3 (Dgraph.num_vertices d);
  let x = Database.id_exn db "x" and y = Database.id_exn db "y" in
  let z = Database.id_exn db "z" in
  Util.check "x->y" true (Dgraph.mem_arc d x y);
  Util.check "y->x" true (Dgraph.mem_arc d y x);
  Util.check "z isolated" false
    (Dgraph.mem_arc d z x || Dgraph.mem_arc d x z || Dgraph.mem_arc d z y
    || Dgraph.mem_arc d y z);
  Util.check "not strongly connected" false (Dgraph.is_strongly_connected d);
  (* dominators: {x,y} and {z} *)
  let doms = List.map (Dgraph.entity_set d) (Dgraph.dominators d) in
  Util.check_int "two dominators" 2 (List.length doms);
  Util.check "xy dominator" true (List.mem [ x; y ] (List.map (List.sort compare) doms))

let test_dgraph_private_entities_excluded () =
  let db = mkdb [ ("x", 1); ("p", 1); ("q", 2) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x"; "p" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "x"; "q" ] in
  let sys = System.make db [ t1; t2 ] in
  Util.check_int "only shared entities" 1
    (Dgraph.num_vertices (Dgraph.build_pair sys))

(* ------------------------------------------------------------------ *)
(* Figures: the paper's claims, verified *)

let test_fig1_unsafe () =
  let sys = Figures.fig1 () in
  Util.check "well-formed (strict)" true (System.validate ~strict:true sys = []);
  match Twosite.decide sys with
  | Twosite.Safe -> Alcotest.fail "Fig 1 is unsafe"
  | Twosite.Unsafe cert -> Util.check "certificate" true (Certificate.verify sys cert)

let test_fig2_unsafe () =
  let sys = Figures.fig2 () in
  let t1, t2 = System.pair sys in
  Util.check "totally ordered" true (Txn.is_total t1 && Txn.is_total t2);
  Util.check "centralized" true (List.length (System.sites_used sys) = 1);
  match Twosite.decide sys with
  | Twosite.Safe -> Alcotest.fail "Fig 2 is unsafe"
  | Twosite.Unsafe cert ->
      (* the separating pair is {x or y} vs {z}: check z is separated from x *)
      let db = System.db sys in
      let z = Database.id_exn db "z" in
      let sep e l = List.mem e l in
      Util.check "z on one side alone or with others" true
        (sep z cert.Certificate.below <> sep z cert.Certificate.above)

let test_fig3_lemma1 () =
  let sys = Figures.fig3 () in
  (* unsafe overall *)
  Util.check "unsafe" false (Twosite.is_safe sys);
  (* but admits both safe and unsafe pictures (Lemma 1's point) *)
  let t1, t2 = System.pair sys in
  let safe = ref 0 and unsafe = ref 0 in
  Distlock_order.Linext.iter (Txn.order t1) (fun e1 ->
      let e1 = Array.copy e1 in
      Distlock_order.Linext.iter (Txn.order t2) (fun e2 ->
          let plane = Distlock_geometry.Plane.of_extensions sys e1 (Array.copy e2) in
          if Distlock_geometry.Separation.is_safe plane then incr safe else incr unsafe));
  Util.check "some pictures safe" true (!safe > 0);
  Util.check "some pictures unsafe" true (!unsafe > 0)

let test_fig5_gap () =
  let sys = Figures.fig5 () in
  Util.check "four sites" true (List.length (System.sites_used sys) = 4);
  let d = Dgraph.build_pair sys in
  Util.check "D not strongly connected" false (Dgraph.is_strongly_connected d);
  (* only dominator is {x1,x2} *)
  let db = System.db sys in
  let doms = List.map (Dgraph.entity_set d) (Dgraph.dominators d) in
  Alcotest.(check (list (list int))) "single dominator"
    [ List.sort compare [ Database.id_exn db "x1"; Database.id_exn db "x2" ] ]
    (List.map (List.sort compare) doms);
  (* its closure fails with a cycle *)
  List.iter
    (fun dom ->
      match Closure.close sys ~dominator:(Dgraph.entity_set d dom) with
      | Closure.Closed _ -> Alcotest.fail "Fig 5 closure must fail"
      | Closure.Failed _ -> ())
    (Dgraph.dominators d);
  (* and the system is genuinely safe (Lemma 1 oracle) *)
  Util.check "safe by oracle" true (Util.brute_safe (Brute.safe_by_extensions sys))

(* ------------------------------------------------------------------ *)
(* Theorem 1 *)

let qcheck_theorem1_sound =
  Util.qtest ~count:120 "Theorem 1: strong connectivity implies safety"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:3
           ~num_private:(Random.State.int st 2)
           ~num_sites:(1 + Random.State.int st 4)
           ~cross_prob:(Random.State.float st 1.0) ()))
    (fun sys ->
      (not (Theorem1.guarantees_safe sys))
      || Util.brute_safe (Brute.safe_by_extensions sys))

(* ------------------------------------------------------------------ *)
(* Theorem 2 *)

let qcheck_theorem2_exact =
  Util.qtest ~count:150 "Theorem 2 agrees with the Lemma 1 oracle on two sites"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 3)
           ~num_private:(Random.State.int st 2) ~num_sites:2
           ~cross_prob:(Random.State.float st 1.0) ()))
    (fun sys ->
      let fast = Twosite.is_safe sys in
      let oracle = Util.brute_safe (Brute.safe_by_extensions sys) in
      fast = oracle)

let qcheck_theorem2_vs_schedule_oracle =
  Util.qtest ~count:60 "Theorem 2 agrees with direct schedule enumeration"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:2 ~num_private:0
           ~num_sites:2 ~cross_prob:(Random.State.float st 1.0) ()))
    (fun sys ->
      Twosite.is_safe sys = (Util.brute_safe (Brute.safe_by_schedules sys)))

let qcheck_certificates_verified =
  Util.qtest ~count:120 "unsafe verdicts carry verified certificates"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 3)
           ~num_private:(Random.State.int st 2) ~num_sites:2
           ~cross_prob:(Random.State.float st 1.0) ()))
    (fun sys ->
      match Twosite.decide sys with
      | Twosite.Safe -> true
      | Twosite.Unsafe cert ->
          Certificate.verify sys cert
          && Distlock_order.Poset.is_linear_extension
               (Txn.order (fst (System.pair sys)))
               cert.Certificate.ext1
          && Distlock_order.Poset.is_linear_extension
               (Txn.order (snd (System.pair sys)))
               cert.Certificate.ext2)

let test_twosite_hypothesis_checked () =
  let sys = Figures.fig5 () in
  Alcotest.check_raises "more than two sites rejected"
    (Invalid_argument
       "Twosite.decide: system uses 4 sites (at most two allowed by Theorem 2)")
    (fun () -> ignore (Twosite.decide sys))

let test_single_common_entity_safe () =
  let db = mkdb [ ("x", 1); ("p", 2); ("q", 2) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x"; "p" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "x"; "q" ] in
  let sys = System.make db [ t1; t2 ] in
  Util.check "one shared entity: safe" true (Twosite.is_safe sys);
  Util.check "oracle agrees" true (Util.brute_safe (Brute.safe_by_schedules sys))

(* ------------------------------------------------------------------ *)
(* Closure machinery *)

let test_closure_fig3 () =
  let sys = Figures.fig3 () in
  let db = System.db sys in
  let x = Database.id_exn db "x" and y = Database.id_exn db "y" in
  (* {x,y} is a dominator; on two sites the closure must succeed *)
  (match Closure.close sys ~dominator:[ x; y ] with
  | Closure.Closed closed ->
      Util.check "closed condition" true (Closure.is_closed closed ~dominator:[ x; y ]);
      Util.check "same steps" true
        (Txn.num_steps (System.txn closed 0) = Txn.num_steps (System.txn sys 0))
  | Closure.Failed _ -> Alcotest.fail "two-site closure must succeed");
  Alcotest.check_raises "non-dominator rejected"
    (Invalid_argument "Closure.close: not a dominator of D(T1,T2)") (fun () ->
      ignore (Closure.close sys ~dominator:[ x ]))

let test_first_unsafe_dominator () =
  let sys = Figures.fig3 () in
  (match Closure.first_unsafe_dominator sys with
  | Some (dom, closed) ->
      Util.check "dominator nonempty" true (dom <> []);
      Util.check "closed" true (Closure.is_closed closed ~dominator:dom)
  | None -> Alcotest.fail "fig3 has a closing dominator");
  Util.check "fig5 has none" true
    (Closure.first_unsafe_dominator (Figures.fig5 ()) = None)

(* ------------------------------------------------------------------ *)
(* Safety dispatcher *)

let test_safety_dispatch () =
  (match Safety.decide_pair (Figures.fig1 ()) with
  | Safety.Unsafe (Safety.Certificate _) -> ()
  | _ -> Alcotest.fail "fig1: certificate expected");
  (match Safety.decide_pair (Figures.fig5 ()) with
  | Safety.Safe _ -> ()
  | _ -> Alcotest.fail "fig5: safe expected");
  let db = mkdb [ ("x", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "x" ] in
  match Safety.decide_pair (System.make db [ t1; t2 ]) with
  | Safety.Safe why ->
      Util.check "trivial reason" true
        (why = "fewer than two commonly locked entities")
  | _ -> Alcotest.fail "single entity is safe"

let qcheck_safety_multisite_exact =
  Util.qtest ~count:60 "dispatcher agrees with the oracle on up to 4 sites"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 2)
           ~num_private:0
           ~num_sites:(3 + Random.State.int st 2)
           ~cross_prob:(Random.State.float st 1.0) ()))
    (fun sys ->
      match Safety.decide_pair sys with
      | Safety.Safe _ -> Util.brute_safe (Brute.safe_by_extensions sys)
      | Safety.Unsafe ev ->
          let h = Safety.schedule_of_evidence ev in
          Distlock_sched.Legality.is_legal sys h
          && not (Distlock_sched.Conflict.is_serializable sys h)
      | Safety.Unknown _ -> true)

(* ------------------------------------------------------------------ *)
(* Policies *)

let test_policy_basics () =
  let db = mkdb [ ("x", 1); ("y", 2) ] in
  let tp = Builder.two_phase_sequence db ~name:"P" [ "x"; "y" ] in
  Util.check "strong 2PL" true (Policy.is_two_phase_strong tp);
  Util.check "strong implies weak" true (Policy.is_two_phase_weak tp);
  let seq = Builder.locked_sequence db ~name:"S" [ "x"; "y" ] in
  Util.check "sequential not strong" false (Policy.is_two_phase_strong seq);
  Util.check "sequential not weak (Ux < Ly)" false (Policy.is_two_phase_weak seq);
  (* a genuinely partial order that is weak but not strong: the two
     sections are concurrent *)
  let weak =
    Builder.make_exn db ~name:"W"
      ~steps:[ ("Lx", `Lock "x"); ("Ux", `Unlock "x"); ("Ly", `Lock "y"); ("Uy", `Unlock "y") ]
      ~arcs:[ ("Lx", "Ux"); ("Ly", "Uy") ]
      ()
  in
  Util.check "weak" true (Policy.is_two_phase_weak weak);
  Util.check "not strong" false (Policy.is_two_phase_strong weak)

let test_weak_2pl_insufficient () =
  (* Two weak-2PL (but not strong) transactions forming an unsafe system:
     the quickstart pair. *)
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let mk name =
    Builder.make_exn db ~name
      ~steps:[ ("Lx", `Lock "x"); ("Ux", `Unlock "x"); ("Lz", `Lock "z"); ("Uz", `Unlock "z") ]
      ~arcs:[ ("Lx", "Ux"); ("Lz", "Uz") ]
      ()
  in
  let sys = System.make db [ mk "T1"; mk "T2" ] in
  Util.check "both weak 2PL" true (Policy.all_two_phase_weak sys);
  Util.check "neither strong" false (Policy.all_two_phase_strong sys);
  Util.check "yet unsafe" false (Twosite.is_safe sys)

let test_make_two_phase () =
  let db = mkdb [ ("x", 1); ("y", 2) ] in
  let seq = Builder.locked_sequence db ~name:"S" [ "x"; "y" ] in
  (* Ux precedes Ly: cannot be repaired *)
  Util.check "unrepairable" true (Policy.make_two_phase seq = None);
  let loose =
    Builder.make_exn db ~name:"L"
      ~steps:[ ("Lx", `Lock "x"); ("Ux", `Unlock "x"); ("Ly", `Lock "y"); ("Uy", `Unlock "y") ]
      ~arcs:[ ("Lx", "Ux"); ("Ly", "Uy") ]
      ()
  in
  match Policy.make_two_phase loose with
  | None -> Alcotest.fail "repairable"
  | Some fixed ->
      Util.check "now strong" true (Policy.is_two_phase_strong fixed);
      Util.check "still well-formed" true (Validate.check db fixed = [])

let qcheck_strong_2pl_safe =
  Util.qtest ~count:80 "strong 2PL pairs are always safe (Theorem 1 route)"
    (Util.gen_with_state (fun st ->
         let sys =
           Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 3)
             ~num_private:(Random.State.int st 2)
             ~num_sites:(1 + Random.State.int st 4)
             ~cross_prob:(Random.State.float st 1.0) ()
         in
         let db = System.db sys in
         let repair t =
           match Policy.make_two_phase t with Some t -> t | None -> t
         in
         let t1, t2 = System.pair sys in
         (System.make db [ repair t1; repair t2 ], st)))
    (fun (sys, _) ->
      (not (Policy.all_two_phase_strong sys))
      || (Policy.strong_2pl_is_dgraph_complete sys
         && Theorem1.guarantees_safe sys))

(* ------------------------------------------------------------------ *)
(* The paper's lemmas as properties *)

let gen_twosite_with_dominator =
  Util.gen_with_state (fun st ->
      let sys =
        Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 3)
          ~num_private:(Random.State.int st 2) ~num_sites:2
          ~cross_prob:(Random.State.float st 1.0) ()
      in
      let d = Dgraph.build_pair sys in
      let dom =
        Option.map (Dgraph.entity_set d)
          (Distlock_graph.Dominator.find (Dgraph.graph d))
      in
      (sys, dom))

let qcheck_lemma1 =
  Util.qtest ~count:50 "Lemma 1 holds on random systems"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:2 ~num_private:1
           ~num_sites:(1 + Random.State.int st 3)
           ~cross_prob:(Random.State.float st 1.0) ()))
    (fun sys -> Lemmas.lemma1 sys)

let qcheck_lemma2 =
  Util.qtest ~count:80 "Lemma 2 holds on two-site dominators"
    gen_twosite_with_dominator
    (fun (sys, dom) ->
      match dom with None -> true | Some dom -> Lemmas.lemma2 sys ~dominator:dom)

let qcheck_lemma3 =
  Util.qtest ~count:80 "Lemma 3 holds on two-site dominators"
    gen_twosite_with_dominator
    (fun (sys, dom) ->
      match dom with None -> true | Some dom -> Lemmas.lemma3 sys ~dominator:dom)

let qcheck_corollary2 =
  Util.qtest ~count:80 "Corollary 2: closed systems certify unsafety"
    gen_twosite_with_dominator
    (fun (sys, dom) ->
      match dom with
      | None -> true
      | Some dominator -> (
          match Closure.close sys ~dominator with
          | Closure.Failed _ -> false (* two sites: cannot happen *)
          | Closure.Closed closed -> Lemmas.corollary2 closed ~dominator))

let test_lemma_hypotheses_checked () =
  let sys = Figures.fig3 () in
  let db = System.db sys in
  Alcotest.check_raises "non-dominator rejected"
    (Invalid_argument "Lemmas: not a dominator of D(T1,T2)") (fun () ->
      ignore (Lemmas.lemma2 sys ~dominator:[ Database.id_exn db "x" ]))

let () =
  Alcotest.run "core"
    [
      ( "dgraph",
        [
          Alcotest.test_case "fig3 arcs" `Quick test_dgraph_fig3;
          Alcotest.test_case "private excluded" `Quick test_dgraph_private_entities_excluded;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig1 unsafe" `Quick test_fig1_unsafe;
          Alcotest.test_case "fig2 unsafe" `Quick test_fig2_unsafe;
          Alcotest.test_case "fig3 Lemma 1" `Quick test_fig3_lemma1;
          Alcotest.test_case "fig5 gap" `Slow test_fig5_gap;
        ] );
      ("theorem1", [ qcheck_theorem1_sound ]);
      ( "theorem2",
        [
          qcheck_theorem2_exact;
          qcheck_theorem2_vs_schedule_oracle;
          qcheck_certificates_verified;
          Alcotest.test_case "hypothesis check" `Quick test_twosite_hypothesis_checked;
          Alcotest.test_case "single shared entity" `Quick test_single_common_entity_safe;
        ] );
      ( "closure",
        [
          Alcotest.test_case "fig3 closes" `Quick test_closure_fig3;
          Alcotest.test_case "first_unsafe_dominator" `Quick test_first_unsafe_dominator;
        ] );
      ( "safety",
        [
          Alcotest.test_case "dispatch" `Quick test_safety_dispatch;
          qcheck_safety_multisite_exact;
        ] );
      ( "lemmas",
        [
          Alcotest.test_case "hypothesis checks" `Quick test_lemma_hypotheses_checked;
          qcheck_lemma1;
          qcheck_lemma2;
          qcheck_lemma3;
          qcheck_corollary2;
        ] );
      ( "policy",
        [
          Alcotest.test_case "basics" `Quick test_policy_basics;
          Alcotest.test_case "weak 2PL insufficient" `Quick test_weak_2pl_insufficient;
          Alcotest.test_case "make_two_phase" `Quick test_make_two_phase;
          qcheck_strong_2pl_safe;
        ] );
    ]
