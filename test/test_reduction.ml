open Distlock_core
open Distlock_sat
open Distlock_txn

let sat_formula () =
  Cnf.make ~num_vars:3
    [
      [ Cnf.pos 0; Cnf.pos 1 ];
      [ Cnf.neg 0; Cnf.pos 2 ];
      [ Cnf.pos 1; Cnf.neg 2 ];
    ]

(* Verified unsatisfiable (truth table) and in restricted form. *)
let unsat_formula () =
  Cnf.make ~num_vars:5
    [
      [ Cnf.neg 1; Cnf.pos 0 ];
      [ Cnf.pos 0; Cnf.pos 1 ];
      [ Cnf.neg 2; Cnf.pos 1 ];
      [ Cnf.pos 2; Cnf.pos 4 ];
      [ Cnf.pos 3; Cnf.pos 4 ];
      [ Cnf.neg 0; Cnf.neg 3 ];
      [ Cnf.pos 3; Cnf.neg 4 ];
    ]

let test_formulas_as_expected () =
  Util.check "sat formula restricted" true (Cnf.is_restricted (sat_formula ()));
  Util.check "sat" true (Dpll.solve_brute (sat_formula ()) <> None);
  Util.check "unsat formula restricted" true (Cnf.is_restricted (unsat_formula ()));
  Util.check "unsat" true (Dpll.solve_brute (unsat_formula ()) = None)

let test_gadget_structure () =
  let g = Reduction.encode (sat_formula ()) in
  let sys = Reduction.system g in
  (* every entity on its own site *)
  let db = System.db sys in
  Util.check_int "one entity per site" (Database.num_entities db)
    (Database.num_sites db);
  (* both transactions lock every entity *)
  let t1, t2 = System.pair sys in
  Util.check_int "T1 locks all" (Database.num_entities db)
    (List.length (Txn.locked_entities t1));
  Util.check_int "T2 locks all" (Database.num_entities db)
    (List.length (Txn.locked_entities t2));
  Util.check "well-formed" true (System.validate sys = []);
  (* encode already asserts D = intended gadget; check shape anyway *)
  let d = Reduction.dgraph g in
  Util.check "not strongly connected" false (Dgraph.is_strongly_connected d);
  let intended, _ = Reduction.intended_digraph g in
  Util.check "arcs present" true (Distlock_graph.Digraph.num_arcs intended > 0)

let test_rejects_bad_input () =
  let not_restricted =
    Cnf.make ~num_vars:1 [ [ Cnf.pos 0 ] ]
  in
  Alcotest.check_raises "unit clause rejected"
    (Invalid_argument "Reduction.encode: formula is not in restricted form")
    (fun () -> ignore (Reduction.encode not_restricted))

let test_dominator_assignment_roundtrip () =
  let g = Reduction.encode (sat_formula ()) in
  let a = [| true; false; true |] in
  let dom = Reduction.dominator_of_assignment g a in
  Alcotest.(check (array bool)) "roundtrip" a (Reduction.assignment_of_dominator g dom)

let test_sat_implies_unsafe_with_certificate () =
  let f = sat_formula () in
  let g = Reduction.encode f in
  let model = Option.get (Dpll.solve f) in
  match Reduction.certificate_of_model g model with
  | Error m -> Alcotest.fail m
  | Ok cert ->
      Util.check "verified" true (Certificate.verify (Reduction.system g) cert)

let test_non_model_rejected () =
  let f = sat_formula () in
  let g = Reduction.encode f in
  (* x0=0 x1=0 falsifies clause 1 *)
  match Reduction.certificate_of_model g [| false; false; false |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-model must be rejected"

let test_unsat_no_dominator_closes () =
  let g = Reduction.encode (unsat_formula ()) in
  Util.check "no closure" true (Reduction.decide_unsafe_by_closure g = None)

let test_unsat_randomized_probe () =
  (* Independent evidence on the unsat gadget: random legal schedules of
     the encoded system stay serializable. *)
  let g = Reduction.encode (unsat_formula ()) in
  let rng = Util.rng () in
  Util.check "no violation found in 50 random schedules" true
    (Brute.probe_random rng ~trials:50 (Reduction.system g) = None)

let test_sat_via_safety_end_to_end () =
  Util.check "sat" true (Reduction.sat_via_safety (sat_formula ()));
  Util.check "unsat" false (Reduction.sat_via_safety (unsat_formula ()));
  (* through the normalizer: arbitrary shapes *)
  let xor_unsat =
    Cnf.make ~num_vars:2
      [
        [ Cnf.pos 0; Cnf.pos 1 ]; [ Cnf.neg 0; Cnf.pos 1 ];
        [ Cnf.pos 0; Cnf.neg 1 ]; [ Cnf.neg 0; Cnf.neg 1 ];
      ]
  in
  Util.check "xor-unsat via locking" false (Reduction.sat_via_safety xor_unsat);
  let trivial = Cnf.make ~num_vars:1 [ [ Cnf.pos 0 ] ] in
  Util.check "unit clause via locking" true (Reduction.sat_via_safety trivial);
  let empty_clause = Cnf.make ~num_vars:1 [ [] ] in
  Util.check "empty clause" false (Reduction.sat_via_safety empty_clause)

let qcheck_reduction_equivalence =
  Util.qtest ~count:25 "satisfiable iff encoded system unsafe"
    (Util.gen_with_state (fun st ->
         Sat_gen.random_restricted st ~num_vars:(3 + Random.State.int st 2)
           ~num_clauses:(4 + Random.State.int st 4)))
    (fun f ->
      f.Cnf.clauses = []
      ||
      let sat = Dpll.solve_brute f <> None in
      let g = Reduction.encode f in
      match Reduction.decide_unsafe_by_closure g with
      | Some (dominator, closed) ->
          sat
          && (match
                Certificate.construct ~original:(Reduction.system g) ~closed
                  ~dominator
              with
             | Ok cert -> Certificate.verify (Reduction.system g) cert
             | Error _ -> false)
      | None -> not sat)

let qcheck_model_dominators_close =
  Util.qtest ~count:25 "every model's dominator closes and certifies"
    (Util.gen_with_state (fun st ->
         Sat_gen.random_restricted st ~num_vars:(3 + Random.State.int st 2)
           ~num_clauses:(3 + Random.State.int st 3)))
    (fun f ->
      f.Cnf.clauses = []
      ||
      match Dpll.solve f with
      | None -> true
      | Some model -> (
          let g = Reduction.encode f in
          match Reduction.certificate_of_model g model with
          | Ok cert -> Certificate.verify (Reduction.system g) cert
          | Error _ -> false))

let test_gadget_size_linear () =
  (* The reduction is polynomial: entity count grows linearly with the
     formula (the point of Theorem 3's construction). *)
  let size nv nc =
    let st = Random.State.make [| nv * 31 + nc |] in
    let f = Sat_gen.random_restricted st ~num_vars:nv ~num_clauses:nc in
    if f.Cnf.clauses = [] then 0
    else Reduction.num_entities (Reduction.encode f)
  in
  let s1 = size 4 4 and s2 = size 8 8 in
  Util.check "roughly linear growth" true (s2 < 4 * s1 && s2 > s1)

let () =
  Alcotest.run "reduction"
    [
      ( "gadget",
        [
          Alcotest.test_case "fixtures" `Quick test_formulas_as_expected;
          Alcotest.test_case "structure" `Quick test_gadget_structure;
          Alcotest.test_case "input validation" `Quick test_rejects_bad_input;
          Alcotest.test_case "dominator<->assignment" `Quick test_dominator_assignment_roundtrip;
          Alcotest.test_case "size linear" `Quick test_gadget_size_linear;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "sat => certificate" `Quick test_sat_implies_unsafe_with_certificate;
          Alcotest.test_case "non-model rejected" `Quick test_non_model_rejected;
          Alcotest.test_case "unsat => no closure" `Slow test_unsat_no_dominator_closes;
          Alcotest.test_case "unsat randomized probe" `Quick test_unsat_randomized_probe;
          Alcotest.test_case "end-to-end sat_via_safety" `Slow test_sat_via_safety_end_to_end;
          qcheck_reduction_equivalence;
          qcheck_model_dominators_close;
        ] );
    ]
