open Distlock_order

let factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

let test_poset_basic () =
  match Poset.of_arcs 4 [ (0, 1); (1, 2) ] with
  | None -> Alcotest.fail "expected acyclic"
  | Some p ->
      Util.check "0<1" true (Poset.precedes p 0 1);
      Util.check "0<2 (transitive)" true (Poset.precedes p 0 2);
      Util.check "not 2<0" false (Poset.precedes p 2 0);
      Util.check "3 concurrent with 0" true (Poset.concurrent p 3 0);
      Util.check "comparable 0 2" true (Poset.comparable p 0 2);
      Util.check "not total" false (Poset.is_total p);
      Util.check "total on chain" true (Poset.total_on p [ 0; 1; 2 ]);
      Util.check "not total with 3" false (Poset.total_on p [ 0; 3 ])

let test_poset_cycle () =
  Util.check "cycle rejected" true (Poset.of_arcs 2 [ (0, 1); (1, 0) ] = None);
  Util.check "self loop rejected" true (Poset.of_arcs 1 [ (0, 0) ] = None)

let test_chain_empty () =
  let c = Poset.chain 4 in
  Util.check "chain total" true (Poset.is_total c);
  Util.check "chain order" true (Poset.precedes c 0 3);
  let e = Poset.empty 4 in
  Util.check "antichain" true (Poset.concurrent e 0 3);
  Util.check_int "chain exts" 1 (Linext.count c);
  Util.check_int "antichain exts" (factorial 4) (Linext.count e)

let test_covers () =
  match Poset.of_arcs 3 [ (0, 1); (1, 2); (0, 2) ] with
  | None -> Alcotest.fail "acyclic"
  | Some p ->
      Alcotest.(check (list (pair int int)))
        "covers drop transitive arc" [ (0, 1); (1, 2) ] (Poset.covers p)

let test_add_arcs () =
  let p = Option.get (Poset.of_arcs 3 [ (0, 1) ]) in
  (match Poset.add_arcs p [ (1, 2) ] with
  | None -> Alcotest.fail "extension should work"
  | Some q ->
      Util.check "new precedence" true (Poset.precedes q 0 2);
      Util.check "original untouched" false (Poset.precedes p 1 2));
  Util.check "contradiction rejected" true (Poset.add_arcs p [ (1, 0) ] = None)

let test_reverse () =
  let p = Option.get (Poset.of_arcs 3 [ (0, 1); (1, 2) ]) in
  let r = Poset.reverse p in
  Util.check "reversed" true (Poset.precedes r 2 0);
  Util.check "involution" true (Poset.equal p (Poset.reverse r))

(* Known extension counts: the "N" poset 0<2, 1<2, 1<3 over {0,1,2,3}. *)
let test_known_counts () =
  let p = Option.get (Poset.of_arcs 4 [ (0, 2); (1, 2); (1, 3) ]) in
  (* extensions: choose interleavings; count by brute definition *)
  let count = Linext.count p in
  (* verify against direct permutation filter *)
  let all_perms =
    let rec perms = function
      | [] -> [ [] ]
      | l ->
          List.concat_map
            (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
            l
    in
    perms [ 0; 1; 2; 3 ]
  in
  let valid =
    List.filter
      (fun perm -> Poset.is_linear_extension p (Array.of_list perm))
      all_perms
  in
  Util.check_int "count matches filter" (List.length valid) count

let qcheck_extensions_valid =
  Util.qtest ~count:50 "every enumerated extension is a linear extension"
    (Util.gen_with_state (fun st ->
         let n = 1 + Random.State.int st 6 in
         (n, Util.random_dag_arcs st n 0.4)))
    (fun (n, arcs) ->
      let p = Option.get (Poset.of_arcs n arcs) in
      let ok = ref true in
      Linext.iter p (fun ext ->
          if not (Poset.is_linear_extension p ext) then ok := false);
      !ok)

let qcheck_extension_count_vs_perms =
  Util.qtest ~count:30 "extension count equals permutation filter"
    (Util.gen_with_state (fun st ->
         let n = 1 + Random.State.int st 5 in
         (n, Util.random_dag_arcs st n 0.4)))
    (fun (n, arcs) ->
      let p = Option.get (Poset.of_arcs n arcs) in
      let count = Linext.count p in
      (* count permutations validating *)
      let rec perms acc = function
        | [] -> if Poset.is_linear_extension p (Array.of_list (List.rev acc)) then 1 else 0
        | l ->
            List.fold_left
              (fun total x -> total + perms (x :: acc) (List.filter (( <> ) x) l))
              0 l
      in
      count = perms [] (List.init n Fun.id))

let qcheck_random_extension =
  Util.qtest ~count:60 "random extension is valid"
    (Util.gen_with_state (fun st ->
         let n = 1 + Random.State.int st 10 in
         let arcs = Util.random_dag_arcs st n 0.3 in
         let p = Option.get (Poset.of_arcs n arcs) in
         (p, Linext.random st p)))
    (fun (p, ext) -> Poset.is_linear_extension p ext)

let qcheck_priority_extension =
  Util.qtest ~count:60 "priority linearization is valid"
    (Util.gen_with_state (fun st ->
         let n = 1 + Random.State.int st 10 in
         (Option.get (Poset.of_arcs n (Util.random_dag_arcs st n 0.3)),
          Random.State.int st n)))
    (fun (p, pivot) ->
      let ext = Poset.linearize_with_priority p ~priority:(fun v -> abs (v - pivot)) in
      Poset.is_linear_extension p ext)

let test_find_exists () =
  let p = Poset.empty 3 in
  Util.check "exists" true
    (Linext.exists p (fun e -> e.(0) = 2 && e.(1) = 1 && e.(2) = 0));
  (match Linext.find p (fun e -> e.(0) = 1) with
  | Some e -> Util.check_int "found starts with 1" 1 e.(0)
  | None -> Alcotest.fail "should find");
  let c = Poset.chain 3 in
  Util.check "chain: no reversed extension" false
    (Linext.exists c (fun e -> e.(0) = 2))

let test_down_up_sets () =
  let p = Option.get (Poset.of_arcs 4 [ (0, 1); (1, 2) ]) in
  Alcotest.(check (list int)) "down 2" [ 0; 1 ]
    (Distlock_graph.Bitset.elements (Poset.down_set p 2));
  Alcotest.(check (list int)) "up 0" [ 1; 2 ]
    (Distlock_graph.Bitset.elements (Poset.up_set p 0));
  Alcotest.(check (list int)) "down 3 empty" []
    (Distlock_graph.Bitset.elements (Poset.down_set p 3))

let () =
  Alcotest.run "order"
    [
      ( "poset",
        [
          Alcotest.test_case "basic" `Quick test_poset_basic;
          Alcotest.test_case "cycles rejected" `Quick test_poset_cycle;
          Alcotest.test_case "chain/antichain" `Quick test_chain_empty;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "add_arcs" `Quick test_add_arcs;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "down/up sets" `Quick test_down_up_sets;
        ] );
      ( "linext",
        [
          Alcotest.test_case "known counts" `Quick test_known_counts;
          Alcotest.test_case "find/exists" `Quick test_find_exists;
          qcheck_extensions_valid;
          qcheck_extension_count_vs_perms;
          qcheck_random_extension;
          qcheck_priority_extension;
        ] );
    ]
