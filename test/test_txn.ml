open Distlock_txn

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

let test_database () =
  let db = mkdb [ ("x", 1); ("y", 2) ] in
  Util.check_int "entities" 2 (Database.num_entities db);
  Util.check_int "sites" 2 (Database.num_sites db);
  Util.check_int "site of x" 1 (Database.site db (Database.id_exn db "x"));
  Util.check "find" true (Database.find db "y" <> None);
  Util.check "missing" true (Database.find db "z" = None);
  (* re-adding same site is idempotent *)
  let x = Database.id_exn db "x" in
  Util.check_int "idempotent" x (Database.add db ~name:"x" ~site:1);
  Alcotest.check_raises "conflicting site"
    (Invalid_argument "Database.add: entity \"x\" already stored at site 1")
    (fun () -> ignore (Database.add db ~name:"x" ~site:2));
  Alcotest.(check (list int)) "entities_at 1" [ x ] (Database.entities_at db 1)

let test_builder_errors () =
  let db = mkdb [ ("x", 1) ] in
  let fails = function Error _ -> true | Ok _ -> false in
  Util.check "duplicate label" true
    (fails
       (Builder.make db ~name:"T" ~steps:[ ("a", `Lock "x"); ("a", `Unlock "x") ] ()));
  Util.check "unknown entity" true
    (fails (Builder.make db ~name:"T" ~steps:[ ("a", `Lock "nope") ] ()));
  Util.check "unknown label in arc" true
    (fails
       (Builder.make db ~name:"T" ~steps:[ ("a", `Lock "x") ] ~arcs:[ ("a", "b") ] ()));
  Util.check "cyclic arcs" true
    (fails
       (Builder.make db ~name:"T"
          ~steps:[ ("a", `Lock "x"); ("b", `Unlock "x") ]
          ~arcs:[ ("a", "b"); ("b", "a") ]
          ()))

let test_builder_conveniences () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let seq = Builder.locked_sequence db ~name:"S" [ "x"; "y" ] in
  Util.check_int "sequence steps" 6 (Txn.num_steps seq);
  Util.check "sequence total" true (Txn.is_total seq);
  Util.check "sequence well-formed" true (Validate.check ~strict:true db seq = []);
  let tp = Builder.two_phase_sequence db ~name:"P" [ "x"; "y" ] in
  Util.check "two-phase well-formed" true (Validate.check ~strict:true db tp = []);
  Util.check "locks precede unlocks" true
    (Txn.precedes tp
       (Option.get (Txn.lock_of tp (Database.id_exn db "y")))
       (Option.get (Txn.unlock_of tp (Database.id_exn db "x"))))

let test_txn_queries () =
  let db = mkdb [ ("x", 1); ("y", 2) ] in
  let t =
    Builder.make_exn db ~name:"T"
      ~steps:
        [
          ("Lx", `Lock "x"); ("ux", `Update "x"); ("Ux", `Unlock "x");
          ("Ly", `Lock "y"); ("Uy", `Unlock "y");
        ]
      ~chains:[ [ "Lx"; "ux"; "Ux" ]; [ "Ly"; "Uy" ] ]
      ()
  in
  let x = Database.id_exn db "x" and y = Database.id_exn db "y" in
  Util.check "lock_of x" true (Txn.lock_of t x = Some 0);
  Util.check "unlock_of x" true (Txn.unlock_of t x = Some 2);
  Alcotest.(check (list int)) "updates x" [ 1 ] (Txn.updates_of t x);
  Alcotest.(check (list int)) "locked entities" [ x; y ] (Txn.locked_entities t);
  Alcotest.(check (list int)) "site 1 steps" [ 0; 1; 2 ] (Txn.steps_at_site t db 1);
  Util.check "cross-site concurrent" true (Txn.concurrent t 0 3);
  Util.check "label" true (Txn.label t 0 = "Lx")

let test_validate_violations () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let has_violation t pred = List.exists pred (Validate.check db t) in
  (* same-site steps concurrent *)
  let bad_site =
    Builder.make_exn db ~name:"B1"
      ~steps:[ ("Lx", `Lock "x"); ("Ux", `Unlock "x"); ("Ly", `Lock "y"); ("Uy", `Unlock "y") ]
      ~chains:[ [ "Lx"; "Ux" ]; [ "Ly"; "Uy" ] ]
      ()
  in
  Util.check "site totality" true
    (has_violation bad_site (function Validate.Site_not_total _ -> true | _ -> false));
  (* unlock before lock *)
  let bad_order =
    Builder.make_exn db ~name:"B2"
      ~steps:[ ("Ux", `Unlock "x"); ("Lx", `Lock "x") ]
      ~chains:[ [ "Ux"; "Lx" ] ]
      ()
  in
  Util.check "unlock before lock" true
    (has_violation bad_order (function
      | Validate.Unlock_not_after_lock _ -> true
      | _ -> false));
  (* lock without unlock *)
  let orphan =
    Builder.make_exn db ~name:"B3" ~steps:[ ("Lx", `Lock "x") ] ()
  in
  Util.check "orphan lock" true
    (has_violation orphan (function Validate.Lock_without_unlock _ -> true | _ -> false));
  (* update outside its section *)
  let outside =
    Builder.make_exn db ~name:"B4"
      ~steps:[ ("ux", `Update "x"); ("Lx", `Lock "x"); ("Ux", `Unlock "x") ]
      ~chains:[ [ "ux"; "Lx"; "Ux" ] ]
      ()
  in
  Util.check "update outside" true
    (has_violation outside (function
      | Validate.Update_outside_section _ -> true
      | _ -> false));
  (* unprotected update *)
  let naked = Builder.make_exn db ~name:"B5" ~steps:[ ("ux", `Update "x") ] () in
  Util.check "naked update" true
    (has_violation naked (function Validate.Update_without_lock _ -> true | _ -> false));
  (* strict mode: empty section *)
  let empty_section =
    Builder.make_exn db ~name:"B6"
      ~steps:[ ("Lx", `Lock "x"); ("Ux", `Unlock "x") ]
      ~chains:[ [ "Lx"; "Ux" ] ]
      ()
  in
  Util.check "relaxed accepts" true (Validate.check db empty_section = []);
  Util.check "strict flags" true
    (List.exists
       (function Validate.Empty_section _ -> true | _ -> false)
       (Validate.check ~strict:true db empty_section))

let test_add_precedences_along () =
  let db = mkdb [ ("x", 1); ("y", 2) ] in
  let t =
    Builder.make_exn db ~name:"T"
      ~steps:[ ("Lx", `Lock "x"); ("Ux", `Unlock "x"); ("Ly", `Lock "y"); ("Uy", `Unlock "y") ]
      ~chains:[ [ "Lx"; "Ux" ]; [ "Ly"; "Uy" ] ]
      ()
  in
  (match Txn.add_precedences t [ (1, 2) ] with
  | None -> Alcotest.fail "consistent extension"
  | Some t' ->
      Util.check "added" true (Txn.precedes t' 0 3);
      Util.check "original intact" true (Txn.concurrent t 0 3));
  Util.check "cyclic extension rejected" true
    (Txn.add_precedences t [ (1, 0) ] = None);
  let ext = [| 2; 0; 1; 3 |] in
  let total = Txn.along t ext in
  Util.check "along total" true (Txn.is_total total);
  Util.check "along order" true (Txn.precedes total 2 0);
  Alcotest.check_raises "bad extension"
    (Invalid_argument "Txn.along: not a linear extension") (fun () ->
      ignore (Txn.along t [| 1; 0; 2; 3 |]))

let test_system () =
  let db = mkdb [ ("x", 1); ("y", 2) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "x" ] in
  let sys = System.make db [ t1; t2 ] in
  Util.check_int "txns" 2 (System.num_txns sys);
  Util.check_int "total steps" 9 (System.total_steps sys);
  Alcotest.(check (list int)) "common" [ Database.id_exn db "x" ]
    (System.common_locked sys 0 1);
  Alcotest.(check (list int)) "sites used" [ 1; 2 ] (System.sites_used sys);
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "System.make: duplicate transaction names") (fun () ->
      ignore (System.make db [ t1; t1 ]))

let qcheck_gen_well_formed =
  Util.qtest ~count:100 "generated transactions are well-formed"
    (Util.gen_with_state (fun st ->
         let sys =
           Txn_gen.random_pair_system st ~num_shared:(1 + Random.State.int st 4)
             ~num_private:(Random.State.int st 3)
             ~num_sites:(1 + Random.State.int st 4)
             ~with_updates:(Random.State.bool st)
             ~cross_prob:(Random.State.float st 1.0) ()
         in
         sys))
    (fun sys -> System.validate sys = [])

let qcheck_gen_total_when_cross1 =
  Util.qtest ~count:50 "cross_prob 1.0 yields total orders"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:3 ~num_private:1
           ~num_sites:3 ~cross_prob:1.0 ()))
    (fun sys ->
      let t1, t2 = System.pair sys in
      Txn.is_total t1 && Txn.is_total t2)

let qcheck_multi_gen =
  Util.qtest ~count:50 "multi-transaction generator is well-formed"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_multi_system st ~num_txns:(2 + Random.State.int st 3)
           ~num_entities:6 ~entities_per_txn:3
           ~num_sites:(1 + Random.State.int st 3) ()))
    (fun sys -> System.validate sys = [])

let test_parse_roundtrip () =
  let sys = Distlock_core.Figures.fig1 () in
  let text = Parse.system_to_string sys in
  match Parse.system_of_string text with
  | Error m -> Alcotest.fail m
  | Ok sys' ->
      Util.check_int "txns" (System.num_txns sys) (System.num_txns sys');
      let t, t' = (System.txn sys 0, System.txn sys' 0) in
      Util.check_int "steps" (Txn.num_steps t) (Txn.num_steps t');
      (* same precedence relations *)
      Util.check "same order" true
        (Distlock_order.Poset.equal (Txn.order t) (Txn.order t'));
      Util.check "same steps" true
        (Array.for_all2 Step.equal (Txn.steps t) (Txn.steps t'))

let test_parse_errors () =
  let bad = function Error _ -> true | Ok _ -> false in
  Util.check "empty" true (bad (Parse.system_of_string ""));
  Util.check "bad site" true
    (bad (Parse.system_of_string "entity x @ zero\ntxn T {\nstep a lock x\n}\n"));
  Util.check "unterminated" true
    (bad (Parse.system_of_string "entity x @ 1\ntxn T {\nstep a lock x\n"));
  Util.check "unknown action" true
    (bad (Parse.system_of_string "entity x @ 1\ntxn T {\nstep a grab x\n}\n"));
  Util.check "comments fine" true
    (match
       Parse.system_of_string
         "# header\nentity x @ 1 # inline\ntxn T {\nstep a lock x\nstep b unlock x\nchain a b\n}\n"
     with
    | Ok sys -> System.total_steps sys = 2
    | Error _ -> false)

let test_pretty_columns () =
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let t =
    Builder.make_exn db ~name:"T"
      ~steps:[ ("Lx", `Lock "x"); ("Ux", `Unlock "x");
               ("Lz", `Lock "z"); ("Uz", `Unlock "z") ]
      ~chains:[ [ "Lx"; "Ux" ]; [ "Lz"; "Uz" ] ]
      ()
  in
  let rendered = Pretty.site_columns db t in
  let lines = String.split_on_char '\n' rendered in
  (* header + 4 step rows + trailing blank *)
  Util.check_int "line count" 6 (List.length lines);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Util.check "header shows both sites" true
    (match lines with
    | h :: _ -> contains h "site 1" && contains h "site 2"
    | [] -> false);
  Util.check "Lz appears" true (contains rendered "Lz")

let () =
  Alcotest.run "txn"
    [
      ( "database",
        [ Alcotest.test_case "intern and sites" `Quick test_database ] );
      ( "builder",
        [
          Alcotest.test_case "errors" `Quick test_builder_errors;
          Alcotest.test_case "conveniences" `Quick test_builder_conveniences;
        ] );
      ( "txn",
        [
          Alcotest.test_case "queries" `Quick test_txn_queries;
          Alcotest.test_case "add_precedences/along" `Quick test_add_precedences_along;
        ] );
      ( "validate",
        [ Alcotest.test_case "violations" `Quick test_validate_violations ] );
      ("system", [ Alcotest.test_case "basic" `Quick test_system ]);
      ( "generator",
        [ qcheck_gen_well_formed; qcheck_gen_total_when_cross1; qcheck_multi_gen ] );
      ( "pretty",
        [ Alcotest.test_case "site columns" `Quick test_pretty_columns ] );
      ( "parse",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
    ]
