Every example runs to completion and reaches its headline conclusions.
(Outputs are seeded, so the grep'd lines are deterministic.)

  $ ../../examples/quickstart.exe | grep -E "(UNSAFE|SAFE \(D|non-serial)" | head -3
  system is UNSAFE; certificate:
  non-serializable schedule:
  system is SAFE (D is complete: true)

  $ ../../examples/figure_gallery.exe | grep -E "^(verdict|oracle|pictures)" 
  verdict: UNSAFE
  oracle (Lemma 1 over all pictures): UNSAFE
  oracle (Lemma 1 over all pictures): UNSAFE
  verdict: UNSAFE
  pictures: 169 safe, 56 unsafe — safety is a property of ALL pictures
  verdict: SAFE — state graph: no reachable execution is non-serializable
  oracle (Lemma 1 over all pictures): SAFE

  $ ../../examples/banking.exe | grep -E "^(Theorem 2|simulator)"
  Theorem 2: UNSAFE
  simulator: 54% of 100 random runs non-serializable
  Theorem 2: UNSAFE
  simulator: 100% of 100 random runs non-serializable
  Theorem 2: SAFE
  simulator: 0% of 100 random runs non-serializable

  $ ../../examples/sat_to_txn.exe | grep -E "^(DPLL|locking)"
  DPLL: SATISFIABLE
  locking: UNSAFE — dominator decodes to assignment [1;1;1]
  DPLL: UNSATISFIABLE
  locking: SAFE — hence unsatisfiable
  DPLL: false, via locking: false (both should be false)

  $ ../../examples/inventory.exe | grep -E "^(Proposition|oracle: (SAFE|UNSAFE))"
  Proposition 2: UNSAFE — cycle restock->fulfil->reconcile has acyclic B_c
  oracle: UNSAFE, e.g.
  Proposition 2: UNSAFE — cycle restock->fulfil->reconcile has acyclic B_c
  oracle: UNSAFE, e.g.
  Proposition 2: SAFE
  oracle: SAFE

  $ ../../examples/protocols.exe | grep -E "(follows tree|Theorem 2: SAFE|after: safe|deadlock possible)"
  follows tree protocol: true, two-phase: false
  Theorem 2: SAFE (despite early release)
  after: safe = true, 4 precedence(s) inserted:
  opposite lock orders: safe = true, deadlock possible = true
  same lock orders:    safe = true, deadlock possible = false

  $ ../../examples/read_mostly.exe | grep -E "^(conflicting|two-site)"
  conflicting entities: {catalog, orders}
  two-site test: UNSAFE
  conflicting entities: {orders}
  two-site test: SAFE

  $ ../../examples/online_edits.exe
  base (3 two-phase txns):     SAFE
                               pairs: 0 reused, 3 re-decided; cycles: 0 reused, 2 re-judged
  deploy loose fulfil:         UNSAFE — transactions restock and fulfil form an unsafe pair
                               pairs: 0 reused, 1 re-decided; cycles: 0 reused, 0 re-judged
  roll back:                   SAFE
                               pairs: 3 reused, 0 re-decided; cycles: 2 reused, 0 re-judged
  add report txn:              SAFE
                               pairs: 3 reused, 2 re-decided; cycles: 2 reused, 4 re-judged
  remove restock:              SAFE
                               pairs: 3 reused, 0 re-decided; cycles: 2 reused, 0 re-judged
