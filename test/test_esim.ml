open Distlock_txn
open Distlock_sim

(* The event-driven simulator: legacy equivalence (the refactor safety
   net), the clock and backend layers in isolation, fault injection
   (lease expiry, crash/restart, the static-safe/dynamic-unsafe gap),
   deterministic replay, and the trace/violation-rate satellite fixes. *)

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

let safe_pair () =
  let db = mkdb [ ("x", 1); ("y", 2) ] in
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "x"; "y" ] in
  System.make db [ t1; t2 ]

let deadlock_pair () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "y"; "x" ] in
  System.make db [ t1; t2 ]

(* ------------------------------------------------------------------ *)
(* Clock layer. *)

let test_clock_ordering () =
  let c = Clock.create () in
  List.iter (fun t -> Clock.at c ~time:t t) [ 5; 1; 9; 3; 7; 3; 1 ];
  let rec drain acc =
    match Clock.pop c with None -> List.rev acc | Some (t, _) -> drain (t :: acc)
  in
  Util.check "pops in time order" true
    (drain [] = [ 1; 1; 3; 3; 5; 7; 9 ]);
  Util.check "now advanced to last pop" true (Clock.now c = 9)

let test_clock_ties_fifo () =
  let c = Clock.create () in
  List.iteri (fun i () -> Clock.at c ~time:4 i) [ (); (); (); () ];
  let rec drain acc =
    match Clock.pop c with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
  in
  Util.check "equal times pop in scheduling order" true
    (drain [] = [ 0; 1; 2; 3 ])

let test_clock_past_clamped () =
  let c = Clock.create () in
  Clock.at c ~time:10 "a";
  ignore (Clock.pop c);
  Clock.at c ~time:3 "late";
  Util.check "past schedules clamp to now" true (Clock.pop c = Some (10, "late"))

(* ------------------------------------------------------------------ *)
(* Backend layer. *)

let test_leased_expiry_and_handoff () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let b = Backend.leased db ~ttl:2 in
  let x = Database.id_exn db "x" in
  Util.check "grant on free" true
    (Backend.acquire b ~now:0 ~owner:0 ~ready_at:0 x = Backend.Granted);
  Util.check "second requester queues" true
    (Backend.acquire b ~now:1 ~owner:1 ~ready_at:1 x = Backend.Queued);
  Backend.crash b ~now:5 ~owner:0;
  Util.check "no expiry at the deadline" true (Backend.drain b ~now:7 = []);
  (match Backend.drain b ~now:8 with
  | [ Backend.Expired { entity; owner }; Backend.Handed { owner = w; _ } ] ->
      Util.check_int "expired entity" x entity;
      Util.check_int "expired owner" 0 owner;
      Util.check_int "handed to waiter" 1 w
  | _ -> Alcotest.fail "expected expiry followed by handoff");
  Util.check "waiter now holds" true (Backend.holder b x = Some 1);
  Util.check "dead owner's unlock is stale" false (Backend.release b ~owner:0 x);
  Util.check "new holder's unlock works" true (Backend.release b ~owner:1 x)

let test_leased_resume_keeps_lease () =
  let db = mkdb [ ("x", 1) ] in
  let b = Backend.leased db ~ttl:3 in
  let x = Database.id_exn db "x" in
  ignore (Backend.acquire b ~now:0 ~owner:0 ~ready_at:0 x);
  Backend.crash b ~now:5 ~owner:0;
  Backend.resume b ~owner:0;
  Util.check "resume cancels the countdown" true (Backend.drain b ~now:1000 = []);
  Util.check "still held" true (Backend.holder b x = Some 0)

let test_bakery_never_expires () =
  let db = mkdb [ ("x", 1) ] in
  let b = Backend.bakery db in
  let x = Database.id_exn db "x" in
  ignore (Backend.acquire b ~now:0 ~owner:0 ~ready_at:0 x);
  ignore (Backend.acquire b ~now:1 ~owner:1 ~ready_at:1 x);
  Backend.crash b ~now:2 ~owner:0;
  Util.check "bakery tickets survive any outage" true
    (Backend.drain b ~now:1_000_000 = []);
  Util.check "holder unchanged" true (Backend.holder b x = Some 0)

let test_forfeit_drops_held_and_queued () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let b = Backend.leased db ~ttl:5 in
  let x = Database.id_exn db "x" and y = Database.id_exn db "y" in
  ignore (Backend.acquire b ~now:0 ~owner:0 ~ready_at:0 x);
  ignore (Backend.acquire b ~now:0 ~owner:1 ~ready_at:0 y);
  ignore (Backend.acquire b ~now:1 ~owner:0 ~ready_at:1 y);
  Backend.forfeit b ~owner:0;
  Util.check "held lock dropped" true (Backend.holder b x = None);
  Util.check "queued request dropped" true (Backend.drain b ~now:100 = []);
  Util.check "other holder untouched" true (Backend.holder b y = Some 1)

let test_queued_request_arrival_gated () =
  let db = mkdb [ ("x", 1) ] in
  let b = Backend.leased db ~ttl:5 in
  let x = Database.id_exn db "x" in
  (* Free entity, but the request message is still in flight. *)
  Util.check "in-flight request queues" true
    (Backend.acquire b ~now:0 ~owner:0 ~ready_at:4 x = Backend.Queued);
  Util.check "wakeup at arrival" true (Backend.next_wakeup b = Some 4);
  Util.check "not granted before arrival" true (Backend.drain b ~now:3 = []);
  (match Backend.drain b ~now:4 with
  | [ Backend.Handed { owner = 0; _ } ] -> ()
  | _ -> Alcotest.fail "expected grant at arrival time");
  Util.check "holds after arrival" true (Backend.holder b x = Some 0)

(* ------------------------------------------------------------------ *)
(* Legacy equivalence: instant backend, zero latency, no faults must
   reproduce Engine.run exactly — histories, stats, and traces, for
   both policies. This is the net under the whole refactor. *)

let outcomes_agree sys (legacy : (Engine.outcome, string) result)
    (evented : (Esim.outcome, string) result) =
  match (legacy, evented) with
  | Error a, Error b -> a = b
  | Ok a, Ok b ->
      Distlock_sched.Schedule.events a.Engine.history
      = Distlock_sched.Schedule.events b.Esim.history
      && a.Engine.serializable = b.Esim.serializable
      && a.Engine.trace = b.Esim.trace
      && a.Engine.stats.Engine.ticks = b.Esim.stats.Esim.ticks
      && a.Engine.stats.Engine.commits = b.Esim.stats.Esim.commits
      && a.Engine.stats.Engine.aborts = b.Esim.stats.Esim.aborts
      && a.Engine.stats.Engine.deadlocks = b.Esim.stats.Esim.deadlocks
      && b.Esim.legal = Distlock_sched.Legality.is_legal sys b.Esim.history
  | _ -> false

let qcheck_legacy_equivalence =
  Util.qtest ~count:1000 "fault-free event engine == legacy engine"
    (Util.gen_with_state (fun st ->
         ( Txn_gen.random_multi_system st ~num_txns:(2 + Random.State.int st 3)
             ~num_entities:(4 + Random.State.int st 3)
             ~entities_per_txn:2
             ~num_sites:(1 + Random.State.int st 3)
             ~with_updates:(Random.State.bool st)
             ~cross_prob:0.5 (),
           Random.State.int st 1_000_000 )))
    (fun (sys, seed) ->
      let policy = Engine.Random seed in
      outcomes_agree sys (Engine.run ~policy sys) (Esim.run ~policy sys))

let test_round_robin_equivalence () =
  List.iter
    (fun sys ->
      Util.check "round-robin runs agree" true
        (outcomes_agree sys
           (Engine.run ~policy:Engine.Round_robin sys)
           (Esim.run ~policy:Engine.Round_robin sys)))
    [ safe_pair (); deadlock_pair () ]

(* ------------------------------------------------------------------ *)
(* Fault injection: the static-safe/dynamic-unsafe gap. *)

let gap_scenario ?(ttl = 1) ?(crash_rate = 0.5) ?(down_time = 40) () =
  {
    Scenario.default with
    Scenario.backend = Scenario.Leased;
    lease_ttl = Some ttl;
    crash_rate;
    down_time;
  }

let seeds = List.init 40 Fun.id

let test_gap_exists_at_small_ttl () =
  let sys = safe_pair () in
  Util.check "corpus is statically safe" true (Workload.proven_safe sys);
  let s = Esim.measure ~scenario:(gap_scenario ()) ~seeds sys in
  Util.check "leases were lost" true (s.Esim.total_expiries > 0);
  Util.check "statically-safe system commits non-serializable histories"
    true (s.Esim.violations > 0);
  Util.check "violating histories are illegal schedules" true
    (s.Esim.illegal >= s.Esim.violations)

let test_gap_zero_with_faults_off () =
  let sys = safe_pair () in
  let s =
    Esim.measure ~scenario:(gap_scenario ~crash_rate:0. ()) ~seeds sys
  in
  Util.check_int "no crashes" 0 s.Esim.total_crashes;
  Util.check_int "no expiries" 0 s.Esim.total_expiries;
  Util.check_int "no violations" 0 s.Esim.violations

let test_gap_zero_with_long_ttl () =
  (* ttl >= down_time: the holder always resumes before its lease can
     expire, so faults cost time but never safety. *)
  let sys = safe_pair () in
  let s =
    Esim.measure ~scenario:(gap_scenario ~ttl:40 ~down_time:40 ()) ~seeds sys
  in
  Util.check "crashes did happen" true (s.Esim.total_crashes > 0);
  Util.check_int "but no lease was lost" 0 s.Esim.total_expiries;
  Util.check_int "and no violation occurred" 0 s.Esim.violations

let test_instant_backend_crash_is_only_delay () =
  (* The instant backend ignores crashes entirely: a paused worker keeps
     its locks, so safety is untouched. *)
  let sys = safe_pair () in
  let scenario =
    { Scenario.default with Scenario.crash_rate = 0.5; down_time = 10 }
  in
  let s = Esim.measure ~scenario ~seeds sys in
  Util.check "crashes injected" true (s.Esim.total_crashes > 0);
  Util.check_int "no violations" 0 s.Esim.violations;
  Util.check_int "no illegal histories" 0 s.Esim.illegal

let test_bakery_backend_no_gap () =
  let sys = safe_pair () in
  let scenario =
    {
      Scenario.default with
      Scenario.backend = Scenario.Bakery;
      crash_rate = 0.5;
      down_time = 40;
    }
  in
  let s = Esim.measure ~scenario ~seeds sys in
  Util.check "crashes injected" true (s.Esim.total_crashes > 0);
  Util.check_int "bakery loses no locks" 0 s.Esim.total_expiries;
  Util.check_int "so no violations" 0 s.Esim.violations

let test_deterministic_replay () =
  let sys = safe_pair () in
  let scenario =
    {
      (gap_scenario ~ttl:3 ~crash_rate:0.3 ~down_time:20 ()) with
      Scenario.latency = Latency.make (Latency.Uniform (1, 4));
    }
  in
  List.iter
    (fun seed ->
      let run () = Esim.run ~policy:(Engine.Random seed) ~scenario sys in
      match (run (), run ()) with
      | Ok a, Ok b ->
          Util.check "identical histories" true
            (Distlock_sched.Schedule.events a.Esim.history
            = Distlock_sched.Schedule.events b.Esim.history);
          Util.check "identical traces" true (a.Esim.trace = b.Esim.trace);
          Util.check "identical stats" true (a.Esim.stats = b.Esim.stats)
      | Error a, Error b -> Util.check "identical errors" true (a = b)
      | _ -> Alcotest.fail "one replica errored, the other did not")
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let qcheck_faulty_runs_complete =
  Util.qtest ~count:60 "faulty leased runs complete with full histories"
    (Util.gen_with_state (fun st ->
         ( Txn_gen.random_multi_system st ~num_txns:(2 + Random.State.int st 2)
             ~num_entities:5 ~entities_per_txn:2 ~num_sites:2
             ~with_updates:true ~cross_prob:0.5 (),
           Random.State.int st 1000 )))
    (fun (sys, seed) ->
      let scenario = gap_scenario ~ttl:2 ~crash_rate:0.2 ~down_time:15 () in
      match Esim.run ~policy:(Engine.Random seed) ~scenario sys with
      | Error _ -> true (* abort budget: acceptable *)
      | Ok o ->
          (* Every committed history is complete (all steps of all
             transactions), even when leases were lost along the way. *)
          Distlock_sched.Schedule.is_complete sys o.Esim.history)

let test_latency_stretches_makespan () =
  let sys = safe_pair () in
  let slow =
    {
      Scenario.default with
      Scenario.backend = Scenario.Leased;
      latency = Latency.make (Latency.Constant 6);
    }
  in
  match
    ( Esim.run ~policy:(Engine.Random 11) sys,
      Esim.run ~policy:(Engine.Random 11) ~scenario:slow sys )
  with
  | Ok fast, Ok lagged ->
      Util.check "latency stretches the makespan" true
        (lagged.Esim.stats.Esim.makespan > fast.Esim.stats.Esim.makespan);
      Util.check "still serializable (2PL, fault-free)" true
        lagged.Esim.serializable;
      Util.check "still legal" true lagged.Esim.legal
  | _ -> Alcotest.fail "runs errored"

let test_spread_sites () =
  let sys = safe_pair () in
  let sys3 = Scenario.spread_sites sys ~sites:3 in
  let db = System.db sys3 in
  Util.check_int "entities preserved" 2 (Database.num_entities db);
  List.iter
    (fun e ->
      Util.check "sites assigned round-robin" true
        (Database.site db e = 1 + (e mod 3)))
    (Database.entities db);
  Util.check "transactions preserved" true
    (System.num_txns sys3 = System.num_txns sys)

let test_latency_parsing () =
  Util.check "none" true (Latency.of_string "none" = Latency.none);
  Util.check "constant" true
    (Latency.of_string "3" = Latency.make (Latency.Constant 3));
  Util.check "range" true
    (Latency.of_string "1-5" = Latency.make (Latency.Uniform (1, 5)));
  Util.check "roundtrip" true
    (Latency.to_string (Latency.of_string "2-7") = "2-7")

(* ------------------------------------------------------------------ *)
(* Satellite fixes. *)

let test_trace_never_started () =
  let sys = safe_pair () in
  (* A trace in which T2 (index 1) never ran a step. *)
  let events =
    [ { Trace.tick = 1; txn = 0; step = 0; site = 1; attempt = 1 } ]
  in
  let r = Trace.analyze sys events in
  let m0 = List.nth r.Trace.txns 0 and m1 = List.nth r.Trace.txns 1 in
  Util.check_int "started txn attempts" 1 m0.Trace.attempts;
  Util.check "started txn has a start" true (m0.Trace.first_start = Some 1);
  Util.check_int "never-started attempts are 0" 0 m1.Trace.attempts;
  Util.check "never-started has no start" true (m1.Trace.first_start = None);
  Util.check "never-started has no commit" true (m1.Trace.commit = None);
  let rendered = Format.asprintf "%a" (Trace.pp_report sys) r in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Util.check "report says so" true (contains rendered "T2: never started");
  Util.check "started txn keeps the old line format" true
    (contains rendered "T1: start 1, commit 1, 1 attempt(s), 1 steps (0 wasted)")

let test_violation_rate_excludes_errors () =
  (* With a zero abort budget every deadlocked run errors out; those
     runs commit nothing and must leave the rate's denominator. *)
  let sys = deadlock_pair () in
  let bad, completed, errored = Engine.violation_runs ~max_aborts:0 sys in
  Util.check "some runs hit the budget" true (errored > 0);
  Util.check "others completed" true (completed > 0);
  Util.check_int "accounting is total" 100 (completed + errored);
  Util.check_int "2PL never violates" 0 bad;
  Util.check "rate is over completed runs only" true
    (Engine.violation_rate ~max_aborts:0 sys = 0.);
  (* All-error degenerate case: rate reports 0 rather than dividing by
     the errored runs. *)
  let _, c2, _ = Engine.violation_runs ~policy_seeds:[ 2 ] ~max_aborts:0 sys in
  if c2 = 0 then
    Util.check "all-error rate is 0" true
      (Engine.violation_rate ~policy_seeds:[ 2 ] ~max_aborts:0 sys = 0.)

let () =
  Alcotest.run "esim"
    [
      ( "clock",
        [
          Alcotest.test_case "time ordering" `Quick test_clock_ordering;
          Alcotest.test_case "fifo ties" `Quick test_clock_ties_fifo;
          Alcotest.test_case "past clamped" `Quick test_clock_past_clamped;
        ] );
      ( "backend",
        [
          Alcotest.test_case "lease expiry + handoff" `Quick
            test_leased_expiry_and_handoff;
          Alcotest.test_case "resume keeps lease" `Quick
            test_leased_resume_keeps_lease;
          Alcotest.test_case "bakery never expires" `Quick
            test_bakery_never_expires;
          Alcotest.test_case "forfeit drops everything" `Quick
            test_forfeit_drops_held_and_queued;
          Alcotest.test_case "arrival-gated grants" `Quick
            test_queued_request_arrival_gated;
        ] );
      ( "equivalence",
        [
          qcheck_legacy_equivalence;
          Alcotest.test_case "round-robin" `Quick test_round_robin_equivalence;
        ] );
      ( "faults",
        [
          Alcotest.test_case "gap at small ttl" `Quick test_gap_exists_at_small_ttl;
          Alcotest.test_case "no gap without faults" `Quick
            test_gap_zero_with_faults_off;
          Alcotest.test_case "no gap with long ttl" `Quick
            test_gap_zero_with_long_ttl;
          Alcotest.test_case "instant backend: crash only delays" `Quick
            test_instant_backend_crash_is_only_delay;
          Alcotest.test_case "bakery backend: no gap" `Quick
            test_bakery_backend_no_gap;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
          qcheck_faulty_runs_complete;
          Alcotest.test_case "latency stretches makespan" `Quick
            test_latency_stretches_makespan;
          Alcotest.test_case "spread_sites" `Quick test_spread_sites;
          Alcotest.test_case "latency parsing" `Quick test_latency_parsing;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "trace: never started" `Quick
            test_trace_never_started;
          Alcotest.test_case "violation_rate: errors excluded" `Quick
            test_violation_rate_excludes_errors;
        ] );
    ]
