open Distlock_txn
open Distlock_sched
open Distlock_geometry

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

(* The Fig 2 plane: t1 = Lx Ly x y Ux Uy Lz z Uz. *)
let fig2 () = Distlock_core.Figures.fig2 ()

let test_rect_overlap () =
  let r1 = { Rect.entity = 0; x_lock = 1; x_unlock = 5; y_lock = 1; y_unlock = 5 } in
  let r2 = { Rect.entity = 1; x_lock = 3; x_unlock = 7; y_lock = 3; y_unlock = 7 } in
  let r3 = { Rect.entity = 2; x_lock = 6; x_unlock = 8; y_lock = 1; y_unlock = 2 } in
  Util.check "overlap" true (Rect.overlaps r1 r2);
  Util.check "no overlap" false (Rect.overlaps r1 r3)

let test_plane_fig2 () =
  let sys = fig2 () in
  let plane = Plane.make sys in
  Util.check_int "width" 9 (Plane.width plane);
  Util.check_int "height" 9 (Plane.height plane);
  Util.check_int "rectangles" 3 (List.length (Plane.rectangles plane));
  let db = System.db sys in
  let rx = Option.get (Plane.rectangle plane (Database.id_exn db "x")) in
  (* t1 = Lx Ly x y Ux Uy Lz z Uz: Lx at 1, Ux at 5 *)
  Util.check_int "x rect left" 1 rx.Rect.x_lock;
  Util.check_int "x rect right" 5 rx.Rect.x_unlock;
  (* t2 = Lz z Uz Ly y Uy Lx x Ux: Lx at 7, Ux at 9 *)
  Util.check_int "x rect bottom" 7 rx.Rect.y_lock;
  Util.check_int "x rect top" 9 rx.Rect.y_unlock

let test_path_roundtrip () =
  let sys = fig2 () in
  let plane = Plane.make sys in
  let moves =
    List.init 18 (fun i -> i mod 2 = 1) (* alternate right/up *)
  in
  let h = Schedule.of_events (Schedule.events (Plane.schedule_of_path plane moves)) in
  Alcotest.(check (list bool)) "roundtrip" moves (Plane.path_of_schedule plane h)

let test_b_vector_serial () =
  let sys = fig2 () in
  let plane = Plane.make sys in
  (* t1 fully first: every section of t1 precedes t2's -> all b = 0 *)
  let h = Schedule.serial sys [ 0; 1 ] in
  Util.check "all below" true
    (List.for_all (fun (_, b) -> not b) (Plane.b_vector plane h));
  let h2 = Schedule.serial sys [ 1; 0 ] in
  Util.check "all above" true (List.for_all snd (Plane.b_vector plane h2));
  Util.check "serial separates nothing" true (Plane.separates plane h = None)

let test_separation_fig2 () =
  let sys = fig2 () in
  let plane = Plane.make sys in
  match Separation.decide plane with
  | Separation.Safe -> Alcotest.fail "fig2 must be unsafe"
  | Separation.Unsafe { schedule; below; above } ->
      Util.check "legal" true (Legality.is_legal sys schedule);
      Util.check "non-serializable" false (Conflict.is_serializable sys schedule);
      Util.check "separates" true (below <> [] && above <> []);
      Util.check "witness in plane" true (Plane.separates plane schedule <> None)

let test_interlock_fig2 () =
  let sys = fig2 () in
  let plane = Plane.make sys in
  let g, ents = Separation.interlock plane in
  let db = System.db sys in
  let idx name =
    let e = Database.id_exn db name in
    let rec go i = if ents.(i) = e then i else go (i + 1) in
    go 0
  in
  (* (x,z): Lx <1 Uz (1 < 9) and Lz <2 Ux (1 < 9): arc *)
  Util.check "x->z" true (Distlock_graph.Digraph.mem_arc g (idx "x") (idx "z"));
  (* (z,x): Lz <1 Ux (7 < 5 false): no arc *)
  Util.check "no z->x" false (Distlock_graph.Digraph.mem_arc g (idx "z") (idx "x"))

let test_safe_pair () =
  (* Two transactions locking x and y in the same order: 2PL-like and safe. *)
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "x"; "y" ] in
  let sys = System.make db [ t1; t2 ] in
  let plane = Plane.make sys in
  Util.check "safe" true (Separation.is_safe plane)

let test_realize_orientations () =
  let sys = fig2 () in
  let plane = Plane.make sys in
  let db = System.db sys in
  let x = Database.id_exn db "x" and z = Database.id_exn db "z" in
  (* b_x = 0, b_z = 1 is realizable (the separating picture) *)
  (match Separation.realize plane ~above:(fun e -> e = z) with
  | Some h ->
      let bv = Plane.b_vector plane h in
      Util.check "b_x below" true (List.assoc x bv = false);
      Util.check "b_z above" true (List.assoc z bv = true)
  | None -> Alcotest.fail "expected realizable");
  (* b_x = 1, b_z = 0 is NOT realizable: the arc (x,z) forces b_x <= b_z *)
  Util.check "forbidden orientation" true
    (Separation.realize plane ~above:(fun e -> e = x) = None)

(* The key semantic property: for a pair of total orders, Separation.decide
   says Safe iff every legal schedule is conflict-serializable. *)
let qcheck_decide_vs_enumeration =
  Util.qtest ~count:60 "Proposition 1 test matches schedule enumeration"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 2)
           ~num_private:(Random.State.int st 2)
           ~num_sites:(1 + Random.State.int st 3) ~cross_prob:1.0 ()))
    (fun sys ->
      let plane = Plane.make sys in
      let geometric = Separation.is_safe plane in
      let exhaustive =
        not
          (Distlock_sched.Enumerate.exists_legal sys (fun h ->
               not (Conflict.is_serializable sys h)))
      in
      geometric = exhaustive)

let qcheck_unsafe_witness_valid =
  Util.qtest ~count:80 "every Unsafe verdict carries a valid witness"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 3)
           ~num_private:(Random.State.int st 2)
           ~num_sites:(1 + Random.State.int st 3) ~cross_prob:1.0 ()))
    (fun sys ->
      let plane = Plane.make sys in
      match Separation.decide plane with
      | Separation.Safe -> true
      | Separation.Unsafe { schedule; _ } ->
          Legality.is_legal sys schedule
          && not (Conflict.is_serializable sys schedule))

let qcheck_b_vector_monotone =
  Util.qtest ~count:60 "b-vectors respect the interlock arcs (Theorem 1 invariant)"
    (Util.gen_with_state (fun st ->
         ( Txn_gen.random_pair_system st ~num_shared:3 ~num_private:0
             ~num_sites:2 ~cross_prob:1.0 (),
           st )))
    (fun (sys, st) ->
      let plane = Plane.make sys in
      match Distlock_sched.Enumerate.random_legal st sys with
      | None -> true
      | Some h ->
          let bv = Plane.b_vector plane h in
          let g, ents = Separation.interlock plane in
          let ok = ref true in
          Distlock_graph.Digraph.iter_arcs g (fun a b ->
              let ba = List.assoc ents.(a) bv and bb = List.assoc ents.(b) bv in
              if ba && not bb then ok := false);
          !ok)

let qcheck_fast_test_agrees =
  Util.qtest ~count:120 "arc-compressed test agrees with the naive interlock"
    (Util.gen_with_state (fun st ->
         (* synthetic rectangles: random lock/unlock nestings on each axis *)
         let k = 2 + Random.State.int st 14 in
         let axis () =
           let slots = Array.init (2 * k) (fun i -> i mod k) in
           for i = (2 * k) - 1 downto 1 do
             let j = Random.State.int st (i + 1) in
             let t = slots.(i) in
             slots.(i) <- slots.(j);
             slots.(j) <- t
           done;
           let l = Array.make k 0 and u = Array.make k 0 in
           let seen = Array.make k false in
           Array.iteri
             (fun pos e ->
               if seen.(e) then u.(e) <- pos + 1
               else begin
                 seen.(e) <- true;
                 l.(e) <- pos + 1
               end)
             slots;
           (l, u)
         in
         let l1, u1 = axis () and l2, u2 = axis () in
         List.init k (fun e ->
             {
               Rect.entity = e;
               x_lock = l1.(e);
               x_unlock = u1.(e);
               y_lock = l2.(e);
               y_unlock = u2.(e);
             })))
    (fun rects ->
      Separation.rects_strongly_connected rects
      = Fast_test.rects_strongly_connected rects)

let test_fast_test_on_figures () =
  List.iter
    (fun (name, sys) ->
      let t1, t2 = System.pair sys in
      if Txn.is_total t1 && Txn.is_total t2 then begin
        let plane = Plane.make sys in
        Util.check name (Separation.is_safe plane) (Fast_test.is_safe plane)
      end)
    (Distlock_core.Figures.all ());
  (* degenerate sizes *)
  Util.check "no rects" true (Fast_test.rects_strongly_connected []);
  Util.check "one rect" true
    (Fast_test.rects_strongly_connected
       [ { Rect.entity = 0; x_lock = 1; x_unlock = 2; y_lock = 1; y_unlock = 2 } ])

let test_render_plane () =
  let sys = fig2 () in
  let plane = Plane.make sys in
  let bare = Render.plane plane in
  let lines = String.split_on_char '\n' bare in
  (* 2*9+1 grid rows + axis label row + trailing empty = 21 *)
  Util.check_int "row count" 21 (List.length lines);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Util.check "no staircase without schedule" false (contains bare "*");
  Util.check "rectangles present" true
    (contains bare "xx" && contains bare "yy" && contains bare "zz");
  match Separation.decide plane with
  | Separation.Unsafe { schedule; _ } ->
      let drawn = Render.plane ~schedule plane in
      Util.check "staircase drawn" true (contains drawn "*")
  | Separation.Safe -> Alcotest.fail "fig2 unsafe"

let () =
  Alcotest.run "geometry"
    [
      ("rect", [ Alcotest.test_case "overlap" `Quick test_rect_overlap ]);
      ( "plane",
        [
          Alcotest.test_case "fig2 rectangles" `Quick test_plane_fig2;
          Alcotest.test_case "path roundtrip" `Quick test_path_roundtrip;
          Alcotest.test_case "b-vector on serial" `Quick test_b_vector_serial;
        ] );
      ( "separation",
        [
          Alcotest.test_case "fig2 unsafe" `Quick test_separation_fig2;
          Alcotest.test_case "fig2 interlock" `Quick test_interlock_fig2;
          Alcotest.test_case "safe pair" `Quick test_safe_pair;
          Alcotest.test_case "realize orientations" `Quick test_realize_orientations;
          qcheck_decide_vs_enumeration;
          qcheck_unsafe_witness_valid;
          qcheck_b_vector_monotone;
        ] );
      ( "render",
        [ Alcotest.test_case "fig2 picture" `Quick test_render_plane ] );
      ( "fast test",
        [
          Alcotest.test_case "figures and degenerate" `Quick test_fast_test_on_figures;
          qcheck_fast_test_agrees;
        ] );
    ]
