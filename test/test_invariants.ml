(* Cross-module invariants: properties tying two or more components
   together, beyond each module's own suite. *)

open Distlock_core
open Distlock_txn

let gen_two_site =
  Util.gen_with_state (fun st ->
      Txn_gen.random_pair_system st ~num_shared:(2 + Random.State.int st 3)
        ~num_private:(Random.State.int st 2) ~num_sites:2
        ~cross_prob:(Random.State.float st 1.0) ())

let relation_size sys =
  let t1, t2 = System.pair sys in
  List.length (Distlock_order.Poset.relation (Txn.order t1))
  + List.length (Distlock_order.Poset.relation (Txn.order t2))

(* Closure is a fixpoint: closing a closed system changes nothing. *)
let qcheck_closure_idempotent =
  Util.qtest ~count:80 "closure is idempotent"
    gen_two_site
    (fun sys ->
      let d = Dgraph.build_pair sys in
      match Distlock_graph.Dominator.find (Dgraph.graph d) with
      | None -> true
      | Some x -> (
          let dominator = Dgraph.entity_set d x in
          match Closure.close sys ~dominator with
          | Closure.Failed _ -> false (* impossible on two sites *)
          | Closure.Closed closed -> (
              match Closure.close closed ~dominator with
              | Closure.Closed closed2 ->
                  relation_size closed = relation_size closed2
              | Closure.Failed _ -> false)))

(* D(T1,T2) is monotone in the precedence relations. *)
let qcheck_dgraph_monotone =
  Util.qtest ~count:80 "adding precedences only adds D-arcs"
    (Util.gen_with_state (fun st ->
         let sys =
           Txn_gen.random_pair_system st ~num_shared:3 ~num_private:1
             ~num_sites:3 ~cross_prob:0.3 ()
         in
         (sys, st)))
    (fun (sys, st) ->
      let t1, t2 = System.pair sys in
      (* add one random consistent precedence to T1 *)
      let n = Txn.num_steps t1 in
      let a = Random.State.int st n and b = Random.State.int st n in
      match (if a = b then None else Txn.add_precedences t1 [ (a, b) ]) with
      | None -> true
      | Some t1' ->
          let before = Dgraph.build_pair sys in
          let after =
            Dgraph.build_pair (System.make (System.db sys) [ t1'; t2 ])
          in
          List.for_all
            (fun (u, v) ->
              Distlock_graph.Digraph.mem_arc (Dgraph.graph after) u v)
            (Distlock_graph.Digraph.arcs (Dgraph.graph before)))

(* Multisite on a two-transaction system agrees with the pair decider. *)
let qcheck_multisite_degenerate =
  Util.qtest ~count:60 "Proposition 2 degenerates to pair safety for 2 txns"
    gen_two_site
    (fun sys ->
      let p2 = Multisite.decide sys = Multisite.Safe in
      p2 = Twosite.is_safe sys)

(* Analysis reports are internally consistent. *)
let qcheck_analysis_consistent =
  Util.qtest ~count:50 "analysis report is consistent with its parts"
    gen_two_site
    (fun sys ->
      let r = Analysis.pair ~try_repair:false sys in
      let verdict_safe =
        match r.Analysis.verdict with Safety.Safe _ -> true | _ -> false
      in
      r.Analysis.strongly_connected = Dgraph.is_strongly_connected (Dgraph.build_pair sys)
      && verdict_safe = Twosite.is_safe sys
      && List.length r.Analysis.common_entities = r.Analysis.d_vertices)

(* Certificates extend the *closed* orders too. *)
let qcheck_certificate_extends_closed =
  Util.qtest ~count:60 "certificate extensions linearize the closed system"
    gen_two_site
    (fun sys ->
      let d = Dgraph.build_pair sys in
      if Dgraph.num_vertices d < 2 || Dgraph.is_strongly_connected d then true
      else
        match Distlock_graph.Dominator.find (Dgraph.graph d) with
        | None -> true
        | Some x -> (
            let dominator = Dgraph.entity_set d x in
            match Closure.close sys ~dominator with
            | Closure.Failed _ -> false
            | Closure.Closed closed -> (
                match Certificate.construct ~original:sys ~closed ~dominator with
                | Error _ -> false
                | Ok cert ->
                    let c1, c2 = System.pair closed in
                    Distlock_order.Poset.is_linear_extension (Txn.order c1)
                      cert.Certificate.ext1
                    && Distlock_order.Poset.is_linear_extension (Txn.order c2)
                         cert.Certificate.ext2)))

(* Proposition 1 tie-in: a schedule of a totally ordered pair is
   serializable iff its b-vector is constant. *)
let qcheck_b_vector_iff_serializable =
  Util.qtest ~count:60 "constant b-vector iff serializable"
    (Util.gen_with_state (fun st ->
         ( Txn_gen.random_pair_system st ~num_shared:3 ~num_private:1
             ~num_sites:2 ~cross_prob:1.0 (),
           st )))
    (fun (sys, st) ->
      let plane = Distlock_geometry.Plane.make sys in
      match Distlock_sched.Enumerate.random_legal st sys with
      | None -> true
      | Some h ->
          let bv = Distlock_geometry.Plane.b_vector plane h in
          let constant =
            match bv with
            | [] | [ _ ] -> true
            | (_, b0) :: rest -> List.for_all (fun (_, b) -> b = b0) rest
          in
          constant = Distlock_sched.Conflict.is_serializable sys h)

(* Text-format roundtrip preserves semantics on random systems. *)
let qcheck_parse_roundtrip =
  Util.qtest ~count:60 "parse/print roundtrip preserves orders and steps"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:(1 + Random.State.int st 3)
           ~num_private:(Random.State.int st 2)
           ~num_sites:(1 + Random.State.int st 3)
           ~with_updates:(Random.State.bool st)
           ~cross_prob:(Random.State.float st 1.0) ()))
    (fun sys ->
      match Parse.system_of_string (Parse.system_to_string sys) with
      | Error _ -> false
      | Ok sys' ->
          System.num_txns sys = System.num_txns sys'
          && List.for_all
               (fun i ->
                 let t = System.txn sys i and t' = System.txn sys' i in
                 Distlock_order.Poset.equal (Txn.order t) (Txn.order t')
                 && Array.for_all2 Step.equal (Txn.steps t) (Txn.steps t'))
               [ 0; 1 ])

(* All figures roundtrip through the text format with verdicts intact. *)
let test_figures_roundtrip () =
  List.iter
    (fun (name, sys) ->
      match Parse.system_of_string (Parse.system_to_string sys) with
      | Error m -> Alcotest.fail (name ^ ": " ^ m)
      | Ok sys' ->
          let verdict s =
            match Safety.decide_pair ~exhaustive_budget:5_000_000 s with
            | Safety.Safe _ -> true
            | Safety.Unsafe _ -> false
            | Safety.Unknown m -> Alcotest.fail m
          in
          Util.check (name ^ " verdict preserved") (verdict sys) (verdict sys'))
    (Figures.all ())

(* Simulator traces are consistent with their outcomes. *)
let qcheck_trace_consistent =
  Util.qtest ~count:40 "traces account for every executed step"
    (Util.gen_with_state (fun st ->
         ( Txn_gen.random_multi_system st ~num_txns:(2 + Random.State.int st 2)
             ~num_entities:5 ~entities_per_txn:2 ~num_sites:2
             ~with_updates:false ~cross_prob:0.5 (),
           Random.State.int st 1000 )))
    (fun (sys, seed) ->
      match Distlock_sim.Engine.run ~policy:(Distlock_sim.Engine.Random seed) sys with
      | Error _ -> true
      | Ok o ->
          let r = Distlock_sim.Trace.analyze sys o.Distlock_sim.Engine.trace in
          let total_executed =
            List.fold_left
              (fun acc m -> acc + m.Distlock_sim.Trace.steps_executed)
              0 r.Distlock_sim.Trace.txns
          in
          let committed =
            List.fold_left
              (fun acc m ->
                acc + m.Distlock_sim.Trace.steps_executed
                - m.Distlock_sim.Trace.wasted_steps)
              0 r.Distlock_sim.Trace.txns
          in
          total_executed = List.length o.Distlock_sim.Engine.trace
          && committed = Distlock_sched.Schedule.length o.Distlock_sim.Engine.history
          && r.Distlock_sim.Trace.makespan <= o.Distlock_sim.Engine.stats.Distlock_sim.Engine.ticks)

(* Repair is a no-op on strongly connected systems. *)
let qcheck_repair_noop_on_safe =
  Util.qtest ~count:40 "repair inserts nothing into strongly connected systems"
    gen_two_site
    (fun sys ->
      (not (Theorem1.guarantees_safe sys))
      ||
      match Repair.make_safe sys with
      | Some (_, []) -> true
      | _ -> false)

let () =
  Alcotest.run "invariants"
    [
      ( "closure",
        [ qcheck_closure_idempotent; qcheck_certificate_extends_closed ] );
      ("dgraph", [ qcheck_dgraph_monotone ]);
      ("multisite", [ qcheck_multisite_degenerate ]);
      ("analysis", [ qcheck_analysis_consistent ]);
      ("geometry", [ qcheck_b_vector_iff_serializable ]);
      ( "format",
        [
          qcheck_parse_roundtrip;
          Alcotest.test_case "figures roundtrip" `Slow test_figures_roundtrip;
        ] );
      ("simulator", [ qcheck_trace_consistent ]);
      ("repair", [ qcheck_repair_noop_on_safe ]);
    ]
