(* The memoized state-graph oracle: agreement with the schedule- and
   extension-enumeration oracles on random systems, witness validity,
   memoization collapse, deadlock agreement, and typed exhaustion. *)

open Distlock_core
open Distlock_txn
open Distlock_sched

let mkdb entities =
  let db = Database.create () in
  Database.add_all db entities;
  db

let tiny_pair () =
  let db = mkdb [ ("x", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "x" ] in
  System.make db [ t1; t2 ]

let disjoint_pair () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.locked_sequence db ~name:"T1" [ "x" ] in
  let t2 = Builder.locked_sequence db ~name:"T2" [ "y" ] in
  System.make db [ t1; t2 ]

(* The quickstart unsafe pair: lock sections on two sites in the same
   order, nothing forcing agreement between them. *)
let unsafe_pair () =
  let db = mkdb [ ("x", 1); ("z", 2) ] in
  let mk name =
    Builder.make_exn db ~name
      ~steps:
        [ ("Lx", `Lock "x"); ("Ux", `Unlock "x");
          ("Lz", `Lock "z"); ("Uz", `Unlock "z") ]
      ~arcs:[ ("Lx", "Ux"); ("Lz", "Uz") ]
      ()
  in
  System.make db [ mk "T1"; mk "T2" ]

(* ------------------------------------------------------------------ *)
(* Unit tests *)

let test_known_verdicts () =
  (match Stategraph.decide (tiny_pair ()) with
  | Stategraph.Safe, _ -> ()
  | _ -> Alcotest.fail "tiny pair must be safe");
  (match Stategraph.decide (unsafe_pair ()) with
  | Stategraph.Unsafe h, _ ->
      let sys = unsafe_pair () in
      Util.check "witness legal" true (Legality.is_legal sys h);
      Util.check "witness complete" true (Schedule.is_complete sys h);
      Util.check "witness non-serializable" false
        (Conflict.is_serializable sys h)
  | _ -> Alcotest.fail "quickstart pair must be unsafe with a witness")

let test_collapse () =
  (* Two disjoint 3-step transactions: C(6,3) = 20 schedules but only
     4*4 = 16 done-mask states (no conflict edges ever), root included.
     The state graph must be strictly smaller than the schedule tree. *)
  let sys = disjoint_pair () in
  let _, st = Stategraph.census sys in
  Util.check_int "disjoint pair collapses to 16 states" 16 st.Stategraph.states;
  Util.check "duplicate transitions pruned" true (st.Stategraph.dup_hits > 0);
  Util.check_int "one complete state" 1 st.Stategraph.complete;
  Util.check_int "no deadlocks" 0 st.Stategraph.deadlocked;
  match Enumerate.count_legal sys with
  | Enumerate.Exact n ->
      Util.check "fewer states than schedules" true (st.Stategraph.states < n)
  | Enumerate.Exhausted _ -> Alcotest.fail "tiny census exhausted"

let test_exhaustion () =
  (match Stategraph.decide ~limit:1 (tiny_pair ()) with
  | Stategraph.Exhausted { visited; limit }, _ ->
      Util.check_int "limit recorded" 1 limit;
      Util.check "visited within limit" true (visited <= 1)
  | _ -> Alcotest.fail "expected exhaustion under limit 1");
  match Brute.safe_by_states ~limit:1 (tiny_pair ()) with
  | Brute.Exhausted { limit = 1; _ } -> ()
  | _ -> Alcotest.fail "Brute.safe_by_states must surface exhaustion"

let test_deadlock () =
  let db = mkdb [ ("x", 1); ("y", 1) ] in
  let t1 = Builder.two_phase_sequence db ~name:"T1" [ "x"; "y" ] in
  let t2 = Builder.two_phase_sequence db ~name:"T2" [ "y"; "x" ] in
  Util.check "opposite lock orders deadlock" true
    (Stategraph.has_deadlock (System.make db [ t1; t2 ]));
  let db2 = mkdb [ ("x", 1); ("y", 1) ] in
  let s1 = Builder.two_phase_sequence db2 ~name:"T1" [ "x"; "y" ] in
  let s2 = Builder.two_phase_sequence db2 ~name:"T2" [ "x"; "y" ] in
  Util.check "same lock order is deadlock-free" false
    (Stategraph.has_deadlock (System.make db2 [ s1; s2 ]))

(* ------------------------------------------------------------------ *)
(* Random agreement: the state-graph oracle must decide exactly what
   schedule enumeration decides (and, on pairs, what Lemma 1 decides),
   and every Unsafe witness must be a legal complete non-serializable
   schedule. *)

let gen_system =
  Util.gen_with_state (fun st ->
      let num_txns = 2 + Random.State.int st 2 in
      Txn_gen.random_multi_system st ~num_txns ~num_entities:4
        ~entities_per_txn:2
        ~num_sites:(1 + Random.State.int st 3)
        ~cross_prob:(Random.State.float st 1.0) ())

let check_witness sys = function
  | Brute.Safe -> true
  | Brute.Unsafe h ->
      Legality.is_legal sys h
      && Schedule.is_complete sys h
      && not (Conflict.is_serializable sys h)
  | Brute.Exhausted { examined; limit } ->
      Alcotest.failf "state oracle exhausted (%d of %d)" examined limit

let qcheck_states_agree =
  Util.qtest ~count:1000 "state graph ≡ schedule enumeration (2-3 txns)"
    gen_system
    (fun sys ->
      let by_states = Brute.safe_by_states sys in
      let agree =
        Util.brute_safe by_states
        = Util.brute_safe (Brute.safe_by_schedules sys)
      in
      let pair_agree =
        System.num_txns sys <> 2
        || Util.brute_safe by_states
           = Util.brute_safe (Brute.safe_by_extensions sys)
      in
      agree && pair_agree && check_witness sys by_states)

let qcheck_deadlock_agrees =
  Util.qtest ~count:300 "state-graph deadlock ≡ enumerated deadlock"
    gen_system
    (fun sys -> Stategraph.has_deadlock sys = Enumerate.has_deadlock sys)

let qcheck_census_bounds =
  Util.qtest ~count:200 "census never visits more states than schedules ≥ 2 txns have prefixes"
    (Util.gen_with_state (fun st ->
         Txn_gen.random_pair_system st ~num_shared:2 ~num_private:1
           ~num_sites:2 ~cross_prob:0.5 ()))
    (fun sys ->
      let _, st = Stategraph.census sys in
      (* Every distinct state is reached by at least one legal prefix, and
         distinct complete states partition the complete schedules. *)
      st.Stategraph.states > 0
      && st.Stategraph.complete >= if Stategraph.has_deadlock sys then 0 else 1)

let () =
  Alcotest.run "stategraph"
    [
      ( "oracle",
        [
          Alcotest.test_case "known verdicts" `Quick test_known_verdicts;
          Alcotest.test_case "memoization collapse" `Quick test_collapse;
          Alcotest.test_case "typed exhaustion" `Quick test_exhaustion;
          Alcotest.test_case "deadlock" `Quick test_deadlock;
        ] );
      ( "agreement",
        [ qcheck_states_agree; qcheck_deadlock_agrees; qcheck_census_bounds ]
      );
    ]
