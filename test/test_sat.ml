open Distlock_sat

let gen_formula =
  Util.gen_with_state (fun st ->
      let nv = 1 + Random.State.int st 8 in
      let nc = 1 + Random.State.int st 12 in
      Sat_gen.random st ~num_vars:nv ~num_clauses:nc ~max_len:4)

let test_eval () =
  let f =
    Cnf.make ~num_vars:2 [ [ Cnf.pos 0; Cnf.neg 1 ]; [ Cnf.pos 1 ] ]
  in
  Util.check "10 falsifies? c2" false (Cnf.eval [| true; false |] f);
  Util.check "11 satisfies" true (Cnf.eval [| true; true |] f);
  Util.check "01 falsifies c1" false (Cnf.eval [| false; true |] f);
  Util.check_int "clauses" 2 (Cnf.num_clauses f)

let test_occurrences_restricted () =
  let f =
    Cnf.make ~num_vars:3
      [ [ Cnf.pos 0; Cnf.pos 1 ]; [ Cnf.pos 0; Cnf.neg 2 ]; [ Cnf.neg 0; Cnf.pos 2 ] ]
  in
  Alcotest.(check (array (pair int int)))
    "occurrences" [| (2, 1); (1, 0); (1, 1) |] (Cnf.occurrences f);
  Util.check "restricted" true (Cnf.is_restricted f);
  let too_many =
    Cnf.make ~num_vars:1 [] |> fun _ ->
    Cnf.make ~num_vars:2
      [ [ Cnf.pos 0; Cnf.pos 1 ]; [ Cnf.pos 0; Cnf.neg 1 ]; [ Cnf.pos 0; Cnf.pos 1 ] ]
  in
  Util.check "3 positives rejected" false (Cnf.is_restricted too_many);
  let unit_clause = Cnf.make ~num_vars:2 [ [ Cnf.pos 0 ]; [ Cnf.pos 0; Cnf.pos 1 ] ] in
  Util.check "unit clause rejected" false (Cnf.is_restricted unit_clause);
  let dup_var = Cnf.make ~num_vars:2 [ [ Cnf.pos 0; Cnf.neg 0; Cnf.pos 1 ] ] in
  Util.check "duplicate var rejected" false (Cnf.is_restricted dup_var)

let test_out_of_range () =
  Alcotest.check_raises "literal range"
    (Invalid_argument "Cnf.make: literal out of range") (fun () ->
      ignore (Cnf.make ~num_vars:1 [ [ Cnf.pos 1 ] ]))

let test_dpll_known () =
  let unsat =
    Cnf.make ~num_vars:1 [ [ Cnf.pos 0 ]; [ Cnf.neg 0 ] ]
  in
  Util.check "x & ~x unsat" false (Dpll.is_satisfiable unsat);
  let trivial = Cnf.make ~num_vars:3 [] in
  Util.check "empty formula sat" true (Dpll.is_satisfiable trivial);
  let empty_clause = Cnf.make ~num_vars:1 [ [] ] in
  Util.check "empty clause unsat" false (Dpll.is_satisfiable empty_clause);
  (* The fixed propagate-leak regression: a formula whose first branch hits
     a conflict during unit propagation and must backtrack cleanly. *)
  let f =
    Cnf.make ~num_vars:4
      [
        [ Cnf.neg 1; Cnf.neg 3 ]; [ Cnf.pos 2; Cnf.neg 0 ]; [ Cnf.pos 3; Cnf.neg 2 ];
        [ Cnf.pos 2; Cnf.pos 3; Cnf.pos 0 ]; [ Cnf.pos 1; Cnf.pos 0 ];
      ]
  in
  Util.check "regression: satisfiable" true (Dpll.is_satisfiable f);
  match Dpll.solve f with
  | Some m -> Util.check "model valid" true (Cnf.eval m f)
  | None -> Alcotest.fail "expected model"

let qcheck_dpll_vs_brute =
  Util.qtest ~count:300 "DPLL agrees with the truth table"
    gen_formula
    (fun f ->
      let s1 = Dpll.solve f and s2 = Dpll.solve_brute f in
      (s1 = None) = (s2 = None)
      && (match s1 with Some m -> Cnf.eval m f | None -> true))

let qcheck_count_models =
  Util.qtest ~count:50 "count_models consistent with satisfiability"
    gen_formula
    (fun f -> Dpll.count_models f > 0 = Dpll.is_satisfiable f)

let qcheck_normalize =
  Util.qtest ~count:150 "normalization is restricted and equisatisfiable"
    gen_formula
    (fun f ->
      match Normalize.run f with
      | None -> not (Dpll.is_satisfiable f)
      | Some n ->
          Cnf.is_restricted n.Normalize.formula
          && Dpll.is_satisfiable n.Normalize.formula = Dpll.is_satisfiable f)

let qcheck_normalize_project =
  Util.qtest ~count:100 "projected models satisfy the original"
    gen_formula
    (fun f ->
      match Normalize.run f with
      | None -> true
      | Some n -> (
          match Dpll.solve n.Normalize.formula with
          | None -> true
          | Some m -> Cnf.eval (Normalize.project n m) f))

let test_normalize_long_clause () =
  (* One clause of 6 literals: must be split into <= 3-literal clauses. *)
  let f = Cnf.make ~num_vars:6 [ List.init 6 Cnf.pos ] in
  match Normalize.run f with
  | None -> Alcotest.fail "satisfiable input"
  | Some n ->
      Util.check "restricted" true (Cnf.is_restricted n.Normalize.formula);
      Util.check "still satisfiable" true (Dpll.is_satisfiable n.Normalize.formula)

let test_normalize_tautology () =
  let f = Cnf.make ~num_vars:1 [ [ Cnf.pos 0; Cnf.neg 0 ] ] in
  match Normalize.run f with
  | None -> Alcotest.fail "tautologies are satisfiable"
  | Some n -> Util.check "sat" true (Dpll.is_satisfiable n.Normalize.formula)

let qcheck_random_restricted =
  Util.qtest ~count:100 "Sat_gen.random_restricted produces restricted formulas"
    (Util.gen_with_state (fun st ->
         Sat_gen.random_restricted st ~num_vars:(3 + Random.State.int st 6)
           ~num_clauses:(2 + Random.State.int st 8)))
    (fun f -> Cnf.is_restricted f)

let test_dimacs_roundtrip () =
  let f =
    Cnf.make ~num_vars:3
      [ [ Cnf.pos 0; Cnf.neg 2 ]; [ Cnf.neg 1 ]; [ Cnf.pos 2; Cnf.pos 1; Cnf.neg 0 ] ]
  in
  match Dimacs.of_string (Dimacs.to_string f) with
  | Error m -> Alcotest.fail m
  | Ok g ->
      Util.check_int "vars" f.Cnf.num_vars g.Cnf.num_vars;
      Util.check "clauses" true (f.Cnf.clauses = g.Cnf.clauses)

let test_dimacs_errors () =
  Util.check "missing header" true
    (match Dimacs.of_string "1 2 0\n" with Error _ -> true | Ok _ -> false);
  Util.check "unterminated" true
    (match Dimacs.of_string "p cnf 2 1\n1 2\n" with Error _ -> true | Ok _ -> false);
  Util.check "comments ok" true
    (match Dimacs.of_string "c hello\np cnf 1 1\n1 0\n" with
    | Ok f -> Cnf.num_clauses f = 1
    | Error _ -> false)

let () =
  Alcotest.run "sat"
    [
      ( "cnf",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "occurrences/restricted" `Quick test_occurrences_restricted;
          Alcotest.test_case "range check" `Quick test_out_of_range;
        ] );
      ( "dpll",
        [
          Alcotest.test_case "known formulas" `Quick test_dpll_known;
          qcheck_dpll_vs_brute;
          qcheck_count_models;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "long clause" `Quick test_normalize_long_clause;
          Alcotest.test_case "tautology" `Quick test_normalize_tautology;
          qcheck_normalize;
          qcheck_normalize_project;
          qcheck_random_restricted;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
        ] );
    ]
