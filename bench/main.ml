(* Benchmark and experiment harness.

   The paper (PODS '82 / JCSS '84) is pure theory — its "evaluation" is a
   set of worked figures and complexity claims. Each experiment below
   regenerates one of them (see DESIGN.md section 5 and EXPERIMENTS.md for
   the recorded outcomes):

     E1   Fig 1   two-site unsafety with a certificate schedule
     E2   Cor 1   O(n^2) scaling of the two-site test
     E2b  [5,14]  subquadratic Proposition 1 test vs the naive Theta(k^2)
     E3   Fig 3   Lemma 1: picture census of a partial-order system
     E4   Thm 2   polynomial test vs exponential oracle crossover
     E5   Fig 5   the four-site gap: D not strongly connected yet safe
     E6   Thm 3   CNF -> transactions: sat iff unsafe, gadget sizes
     E7   Prop 2  multi-transaction safety scaling
     E8   Sec 6   policies under the simulator (2PL vs eager release)
     E8b  --      cross-site message latency vs makespan and violations
     E8c  --      closed-loop throughput per locking style
     E9   --      Theorem 1 precision per site count + the 3-site probe
     E10  Sec 6   repair by precedence insertion (the closing remark)
     E11  [7]     deadlock and safety are orthogonal axes
     E12  Sec 1   shared locks: the theory is unchanged
     E13  --      decision-engine verdict cache and batch throughput
     E14  --      observability overhead: no-op sink vs JSONL export
     E15  --      parallel batch speedup over 1/2/4/8 domains

   Wall-clock tables are printed first; Bechamel micro-benchmarks (one
   Test.make per experiment family) run at the end. *)

open Distlock_core
open Distlock_txn

let pf = Printf.printf

let rule title =
  pf "\n%s\n%s\n" title (String.make (String.length title) '-')

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ms t = t *. 1_000.

(* ------------------------------------------------------------------ *)
(* Run artifact. Experiments push parameters and derived metrics into
   these accumulators; the driver snapshots them per experiment together
   with wall/CPU time and writes BENCH_results.json at the end. *)

module J = Distlock_obs.Json

let bench_params : (string * J.t) list ref = ref []
let bench_metrics : (string * J.t) list ref = ref []
let param_i k v = bench_params := (k, J.Int v) :: !bench_params
let param_s k v = bench_params := (k, J.Str v) :: !bench_params
let metric_f k v = bench_metrics := (k, J.Float v) :: !bench_metrics
let metric_i k v = bench_metrics := (k, J.Int v) :: !bench_metrics
let metric_b k v = bench_metrics := (k, J.Bool v) :: !bench_metrics

(* ------------------------------------------------------------------ *)
(* E1: Fig 1 *)

let e1 () =
  rule "E1 (Fig 1): two-site unsafety with certificate";
  let sys = Figures.fig1 () in
  let verdict, t = time (fun () -> Twosite.decide sys) in
  match verdict with
  | Twosite.Unsafe cert ->
      let verified = Certificate.verify sys cert in
      pf "verdict: UNSAFE in %.3f ms; certificate verified: %b\n" (ms t)
        verified;
      pf "schedule: %s\n"
        (Distlock_sched.Schedule.to_string sys cert.Certificate.schedule);
      metric_f "decide_seconds" t;
      metric_b "certificate_verified" verified
  | Twosite.Safe -> pf "UNEXPECTED: safe\n"

(* ------------------------------------------------------------------ *)
(* E2: Corollary 1 scaling *)

let e2 () =
  rule "E2 (Corollary 1): two-site safety test scaling (expected ~O(n^2))";
  pf "%8s %14s %8s\n" "steps" "median test" "ratio";
  let prev = ref None in
  List.iter
    (fun shared ->
      let rng = Random.State.make [| 7 * shared |] in
      let sys =
        Txn_gen.random_pair_system rng ~num_shared:shared ~num_private:0
          ~num_sites:2 ~cross_prob:0.3 ()
      in
      let n = System.total_steps sys in
      let times =
        List.sort compare
          (List.init 3 (fun _ ->
               snd
                 (time (fun () ->
                      ignore (Twosite.decide_connectivity_only sys)))))
      in
      let t = List.nth times 1 in
      let ratio =
        match !prev with Some p when p > 0. -> t /. p | _ -> Float.nan
      in
      prev := Some t;
      pf "%8d %11.3f ms %8.2f\n" n (ms t) ratio)
    [ 8; 16; 32; 64; 128; 256 ]

(* E2b: arc-compressed Proposition 1 test (the [5,14] direction) *)

let random_rects rng k =
  let axis () =
    let slots = Array.init (2 * k) (fun i -> i mod k) in
    for i = (2 * k) - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = slots.(i) in
      slots.(i) <- slots.(j);
      slots.(j) <- t
    done;
    let l = Array.make k 0
    and u = Array.make k 0
    and seen = Array.make k false in
    Array.iteri
      (fun pos e ->
        if seen.(e) then u.(e) <- pos + 1
        else begin
          seen.(e) <- true;
          l.(e) <- pos + 1
        end)
      slots;
    (l, u)
  in
  let l1, u1 = axis () and l2, u2 = axis () in
  List.init k (fun e ->
      {
        Distlock_geometry.Rect.entity = e;
        x_lock = l1.(e);
        x_unlock = u1.(e);
        y_lock = l2.(e);
        y_unlock = u2.(e);
      })

let e2b () =
  rule
    "E2b (Prop 1, [5,14] direction): naive Theta(k^2) vs arc-compressed \
     O(k log^2 k) safety test";
  pf "%8s %12s %12s %9s\n" "rects" "naive" "compressed" "speedup";
  let rng = Random.State.make [| 99 |] in
  List.iter
    (fun k ->
      let rects = random_rects rng k in
      let fast, tf =
        time (fun () -> Distlock_geometry.Fast_test.rects_strongly_connected rects)
      in
      if k <= 2048 then begin
        let naive, tn =
          time (fun () ->
              Distlock_geometry.Separation.rects_strongly_connected rects)
        in
        assert (naive = fast);
        pf "%8d %9.1f ms %9.1f ms %8.1fx\n" k (ms tn) (ms tf)
          (tn /. max 1e-9 tf)
      end
      else pf "%8d %12s %9.1f ms %9s\n" k "(skipped)" (ms tf) "-")
    [ 256; 1024; 2048; 8192 ]

(* ------------------------------------------------------------------ *)
(* E3: Fig 3 picture census *)

let e3 () =
  rule "E3 (Fig 3 / Lemma 1): picture census of a partial-order system";
  let sys = Figures.fig3 () in
  let t1, t2 = System.pair sys in
  let safe = ref 0 and unsafe = ref 0 in
  let (), t =
    time (fun () ->
        Distlock_order.Linext.iter (Txn.order t1) (fun e1 ->
            let e1 = Array.copy e1 in
            Distlock_order.Linext.iter (Txn.order t2) (fun e2 ->
                let plane =
                  Distlock_geometry.Plane.of_extensions sys e1 (Array.copy e2)
                in
                if Distlock_geometry.Separation.is_safe plane then incr safe
                else incr unsafe)))
  in
  pf "pictures: %d safe, %d unsafe (%.1f ms) -> system UNSAFE by Lemma 1\n"
    !safe !unsafe (ms t);
  pf "Theorem 2 verdict: %s\n"
    (match Twosite.decide sys with
    | Twosite.Safe -> "SAFE (WRONG)"
    | Twosite.Unsafe _ -> "UNSAFE (agrees)")

(* ------------------------------------------------------------------ *)
(* E4: crossover polynomial vs exponential *)

let e4 () =
  rule "E4 (Theorem 2): polynomial test vs exponential Lemma-1 oracle";
  pf "(safe instances: the oracle cannot exit early and must check every picture)\n";
  pf "%8s %8s %14s %16s %10s\n" "shared" "steps" "Theorem 2" "oracle" "speedup";
  List.iter
    (fun shared ->
      let rng = Random.State.make [| 13 * shared |] in
      (* rejection-sample a SAFE system so the oracle exhausts the space *)
      let rec safe_instance attempts =
        let sys =
          Txn_gen.random_pair_system rng ~num_shared:shared ~num_private:1
            ~num_sites:2 ~cross_prob:0.25 ()
        in
        if attempts = 0 || Twosite.decide_connectivity_only sys then sys
        else safe_instance (attempts - 1)
      in
      let sys = safe_instance 500 in
      let n = System.total_steps sys in
      let _, t_fast = time (fun () -> ignore (Twosite.decide sys)) in
      let oracle_result, t_brute =
        time (fun () -> Brute.safe_by_extensions ~limit:3_000_000 sys)
      in
      match oracle_result with
      | Brute.Safe | Brute.Unsafe _ ->
          pf "%8d %8d %11.3f ms %13.3f ms %9.0fx\n" shared n (ms t_fast)
            (ms t_brute)
            (t_brute /. max 1e-9 t_fast)
      | Brute.Exhausted _ ->
          pf "%8d %8d %11.3f ms %16s %10s\n" shared n (ms t_fast)
            "> 3M pictures" "inf")
    [ 2; 3; 4; 5; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* E5: Fig 5 *)

let e5 () =
  rule "E5 (Fig 5): four sites — strong connectivity is not necessary";
  let sys = Figures.fig5 () in
  let d = Dgraph.build_pair sys in
  pf "D strongly connected: %b\n" (Dgraph.is_strongly_connected d);
  List.iter
    (fun x ->
      let dom = Dgraph.entity_set d x in
      match Closure.close sys ~dominator:dom with
      | Closure.Closed _ -> pf "dominator closes (UNEXPECTED)\n"
      | Closure.Failed (Closure.Would_cycle { txn }) ->
          pf "unique dominator {x1,x2}: closure forces a cycle in T%d\n"
            (txn + 1)
      | Closure.Failed Closure.Dominator_lost -> pf "dominator lost\n")
    (Dgraph.dominators d);
  let verdict, t = time (fun () -> Brute.safe_by_extensions sys) in
  pf "exhaustive Lemma-1 check: %s (%.1f ms)\n"
    (match verdict with
    | Brute.Safe -> "SAFE"
    | Brute.Unsafe _ -> "UNSAFE"
    | Brute.Exhausted _ -> "(budget)")
    (ms t)

(* ------------------------------------------------------------------ *)
(* E6: Theorem 3 reduction *)

let e6 () =
  rule "E6 (Theorem 3): CNF satisfiability via unsafety of the gadget";
  pf "%6s %8s %9s %7s %7s %7s %12s\n" "vars" "clauses" "entities" "DPLL"
    "unsafe" "agree" "sweep time";
  let agree_all = ref true in
  List.iter
    (fun nv ->
      let rng = Random.State.make [| 101 * nv |] in
      let f =
        Distlock_sat.Sat_gen.random_restricted rng ~num_vars:nv ~num_clauses:nv
      in
      if f.Distlock_sat.Cnf.clauses <> [] then begin
        let g = Reduction.encode f in
        let sat = Distlock_sat.Dpll.is_satisfiable f in
        let unsafe, t =
          time (fun () -> Reduction.decide_unsafe_by_closure g <> None)
        in
        if sat <> unsafe then agree_all := false;
        pf "%6d %8d %9d %7b %7b %7b %10.1f ms\n" nv
          (Distlock_sat.Cnf.num_clauses f)
          (Reduction.num_entities g) sat unsafe (sat = unsafe) (ms t)
      end)
    [ 3; 4; 5; 6; 7 ];
  pf "all rows agree (sat <=> unsafe): %b\n" !agree_all

(* ------------------------------------------------------------------ *)
(* E7: Proposition 2 scaling *)

let e7 () =
  rule "E7 (Proposition 2): multi-transaction safety";
  pf "%6s %8s %10s %12s %10s\n" "txns" "cycles" "verdict" "time" "oracle";
  List.iter
    (fun k ->
      let rng = Random.State.make [| 23 * k |] in
      let sys =
        Txn_gen.random_multi_system rng ~num_txns:k ~num_entities:(k + 2)
          ~entities_per_txn:2 ~num_sites:2 ~cross_prob:0.6 ()
      in
      let cycles =
        List.length (Multisite.simple_cycles (Multisite.conflict_graph sys))
      in
      let verdict, t = time (fun () -> Multisite.decide sys) in
      let oracle =
        if k <= 4 then
          match Brute.safe_by_schedules ~limit:3_000_000 sys with
          | Brute.Safe -> "SAFE"
          | Brute.Unsafe _ -> "UNSAFE"
          | Brute.Exhausted _ -> "(budget)"
        else "(skipped)"
      in
      pf "%6d %8d %10s %10.1f ms %10s\n" k cycles
        (match verdict with
        | Multisite.Safe -> "SAFE"
        | Multisite.Unsafe _ -> "UNSAFE")
        (ms t) oracle)
    [ 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* E8: policies under the simulator *)

let e8 () =
  rule "E8 (Section 6): locking styles under the lock-manager simulator";
  pf "%-24s %6s %11s %8s %10s %8s\n" "style" "runs" "violations" "aborts"
    "deadlocks" "ticks";
  let rng = Random.State.make [| 4242 |] in
  List.iter
    (fun (label, style) ->
      let db = Database.create () in
      Database.add_all db
        (List.init 8 (fun i -> (Printf.sprintf "e%d" i, 1 + (i mod 3))));
      let sys =
        Distlock_sim.Workload.make rng ~db ~style ~num_txns:6
          ~entities_per_txn:3
      in
      let s =
        Distlock_sim.Workload.measure ~seeds:(List.init 30 Fun.id) sys
      in
      pf "%-24s %6d %11d %8d %10d %8d\n" label s.Distlock_sim.Workload.runs
        s.Distlock_sim.Workload.violations
        s.Distlock_sim.Workload.total_aborts
        s.Distlock_sim.Workload.total_deadlocks
        s.Distlock_sim.Workload.total_ticks)
    [
      ("two-phase", Distlock_sim.Workload.Two_phase);
      ("sequential sections", Distlock_sim.Workload.Sequential);
      ("random locked (0.3)", Distlock_sim.Workload.Random_locked 0.3);
    ]

(* E8c: closed-loop throughput per locking style *)

let e8c () =
  rule "E8c: closed-loop throughput per locking style (20 rounds x 5 txns)";
  pf "%-24s %9s %8s %18s %11s\n" "style" "commits" "ticks" "commits/kilotick"
    "violations";
  List.iter
    (fun (label, style) ->
      let rng = Random.State.make [| 515 |] in
      let db = Database.create () in
      Database.add_all db
        (List.init 8 (fun i -> (Printf.sprintf "e%d" i, 1 + (i mod 3))));
      let t =
        Distlock_sim.Workload.closed_loop rng ~db ~style ~num_txns:5
          ~entities_per_txn:3 ~rounds:20 ()
      in
      pf "%-24s %9d %8d %18.1f %8d/%d\n" label t.Distlock_sim.Workload.committed
        t.Distlock_sim.Workload.total_ticks
        t.Distlock_sim.Workload.commits_per_kilotick
        t.Distlock_sim.Workload.violation_rounds t.Distlock_sim.Workload.rounds)
    [
      ("two-phase", Distlock_sim.Workload.Two_phase);
      ("sequential sections", Distlock_sim.Workload.Sequential);
      ("random locked (0.3)", Distlock_sim.Workload.Random_locked 0.3);
    ]

(* E8b: the effect of cross-site message latency *)

let e8b () =
  rule "E8b: message latency vs violations and makespan";
  (* a workload WITH cross-site precedences (messages to wait for):
     transactions spanning 3 sites, moderate synchronization *)
  let rng = Random.State.make [| 88 |] in
  let sys =
    Txn_gen.random_multi_system rng ~num_txns:4 ~num_entities:6
      ~entities_per_txn:3 ~num_sites:3 ~with_updates:true ~cross_prob:0.5 ()
  in
  pf "%8s %12s %14s\n" "delay" "violations" "avg makespan";
  List.iter
    (fun delay ->
      let seeds = List.init 30 Fun.id in
      let violations = ref 0 and ticks = ref 0 and runs = ref 0 in
      List.iter
        (fun seed ->
          match
            Distlock_sim.Engine.run ~policy:(Distlock_sim.Engine.Random seed)
              ~cross_site_delay:delay sys
          with
          | Error _ -> ()
          | Ok o ->
              incr runs;
              if not o.Distlock_sim.Engine.serializable then incr violations;
              ticks := !ticks + o.Distlock_sim.Engine.stats.Distlock_sim.Engine.ticks)
        seeds;
      pf "%8d %9d/%d %11.1f\n" delay !violations !runs
        (float_of_int !ticks /. float_of_int (max 1 !runs)))
    [ 0; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* E9: precision of the Theorem 1 condition per site count *)

let e9 () =
  rule "E9: how often is strong connectivity exact? (gap = not-SC yet safe)";
  pf "%6s %9s %9s %7s %26s\n" "sites" "samples" "not-SC" "gap" "note";
  List.iter
    (fun sites ->
      let rng = Random.State.make [| 31 * sites |] in
      let samples = 150 in
      let not_sc = ref 0 and gap = ref 0 in
      for _ = 1 to samples do
        let sys =
          Txn_gen.random_pair_system rng ~num_shared:3 ~num_private:0
            ~num_sites:sites
            ~cross_prob:(Random.State.float rng 1.0) ()
        in
        if not (Theorem1.guarantees_safe sys) then begin
          incr not_sc;
          match Brute.safe_by_extensions sys with
          | Brute.Safe -> incr gap
          | Brute.Unsafe _ | Brute.Exhausted _ -> ()
        end
      done;
      let note =
        if sites <= 2 then "Theorem 2: gap must be 0" else "necessity can fail"
      in
      pf "%6d %9d %9d %7d %26s\n" sites samples !not_sc !gap note)
    [ 1; 2; 3; 4 ];
  let sys = Figures.fig5 () in
  pf "Fig 5 exhibit (4 sites): not-SC = %b, safe = %b\n"
    (not (Theorem1.guarantees_safe sys))
    (match Brute.safe_by_extensions sys with
    | Brute.Safe -> true
    | Brute.Unsafe _ | Brute.Exhausted _ -> false);
  (* The paper leaves three sites open: hunt for a 3-site gap instance. *)
  pf "\nopen-problem probe: searching for a 3-site not-SC-yet-safe system...\n";
  let rng = Random.State.make [| 2718 |] in
  let tried = ref 0 and notsc = ref 0 and unclosed = ref 0 and gap = ref 0 in
  while !tried < 1500 do
    incr tried;
    let sys =
      Txn_gen.random_pair_system rng ~num_shared:4 ~num_private:0 ~num_sites:3
        ~cross_prob:(0.05 +. Random.State.float rng 0.3) ()
    in
    if List.length (System.sites_used sys) = 3 then begin
      let d = Dgraph.build_pair sys in
      if not (Dgraph.is_strongly_connected d) then begin
        incr notsc;
        if Closure.first_unsafe_dominator sys = None then begin
          incr unclosed;
          match Brute.safe_by_extensions ~limit:500_000 sys with
          | Brute.Safe -> incr gap
          | Brute.Unsafe _ | Brute.Exhausted _ -> ()
        end
      end
    end
  done;
  pf
    "3-site probe: %d sampled, %d not-SC, %d with no closing dominator, %d \
     gap instances found\n" !tried !notsc !unclosed !gap;
  pf
    "(132 structured Fig-5 co-location variants also yield none: co-locating \
     any two entities restores strong connectivity)\n"

(* ------------------------------------------------------------------ *)
(* E10: repair by precedence insertion *)

let e10 () =
  rule "E10 (closing remark): repairing unsafe systems via Theorem 1";
  pf "%6s %9s %10s %9s %8s %14s\n" "sites" "samples" "unsafe" "repaired"
    "stuck" "avg loss";
  List.iter
    (fun sites ->
      let rng = Random.State.make [| 47 * sites |] in
      let samples = 60 in
      let unsafe_n = ref 0 and repaired = ref 0 and stuck = ref 0 in
      let loss = ref 0 in
      for _ = 1 to samples do
        let sys =
          Txn_gen.random_pair_system rng ~num_shared:3 ~num_private:1
            ~num_sites:sites ~cross_prob:(Random.State.float rng 0.5) ()
        in
        if not (Theorem1.guarantees_safe sys) then begin
          incr unsafe_n;
          match Repair.make_safe sys with
          | Some (sys', _) ->
              incr repaired;
              loss := !loss + Repair.concurrency_loss ~before:sys ~after:sys'
          | None -> incr stuck
        end
      done;
      pf "%6d %9d %10d %9d %8d %11.1f\n" sites samples !unsafe_n !repaired
        !stuck
        (if !repaired = 0 then Float.nan
         else float_of_int !loss /. float_of_int !repaired))
    [ 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* E11: deadlock geometry *)

let e11 () =
  rule "E11 ([7] aside): safety and deadlock are independent axes";
  let rng = Random.State.make [| 59 |] in
  let tally = Array.make_matrix 2 2 0 in
  let samples = 300 in
  for _ = 1 to samples do
    let sys =
      Txn_gen.random_pair_system rng ~num_shared:(2 + Random.State.int rng 3)
        ~num_private:1 ~num_sites:(1 + Random.State.int rng 3) ~cross_prob:1.0
        ()
    in
    let plane = Distlock_geometry.Plane.make sys in
    let safe = if Distlock_geometry.Separation.is_safe plane then 1 else 0 in
    let dead = if Distlock_geometry.Deadlock.possible plane then 1 else 0 in
    tally.(safe).(dead) <- tally.(safe).(dead) + 1
  done;
  pf "%d random totally ordered pairs:\n" samples;
  pf "%22s %12s %12s\n" "" "no deadlock" "deadlock";
  pf "%22s %12d %12d\n" "unsafe" tally.(0).(0) tally.(0).(1);
  pf "%22s %12d %12d\n" "safe" tally.(1).(0) tally.(1).(1);
  pf "all four quadrants are populated: the two properties are orthogonal\n"

(* ------------------------------------------------------------------ *)
(* E12: shared locks — "variants change the theory very little" *)

let e12 () =
  rule "E12 (Section 1 variants): shared locks, safety vs read fraction";
  pf "%14s %9s %9s %9s %12s\n" "shared_prob" "samples" "safe" "agree"
    "avg |D|";
  List.iter
    (fun shared_prob ->
      let rng = Random.State.make [| int_of_float (shared_prob *. 100.) + 3 |] in
      let samples = 60 in
      let safe_n = ref 0 and agree = ref 0 and decided = ref 0 in
      let conflict_sum = ref 0 in
      for _ = 1 to samples do
        let sys =
          Distlock_rw.Rw_gen.random_pair rng ~num_shared:3 ~num_sites:2
            ~shared_prob ~cross_prob:(Random.State.float rng 1.0) ()
        in
        let fast = Distlock_rw.Rw_safety.twosite_decide sys in
        conflict_sum :=
          !conflict_sum
          + List.length (Distlock_rw.Rw_system.conflicting_common sys);
        if fast then incr safe_n;
        match Distlock_rw.Rw_system.safe ~limit:1_000_000 sys with
        | exception Failure _ -> ()
        | oracle ->
            incr decided;
            if oracle = fast then incr agree
      done;
      pf "%14.1f %9d %9d %6d/%d %12.2f\n" shared_prob samples !safe_n !agree
        !decided
        (float_of_int !conflict_sum /. float_of_int samples))
    [ 0.0; 0.3; 0.6; 1.0 ]

(* ------------------------------------------------------------------ *)
(* E13: decision-engine verdict cache and batch throughput *)

let e13 () =
  rule "E13 (engine): verdict cache hit rate and batch throughput";
  let module E = Distlock_engine in
  let rng = Random.State.make [| 13 |] in
  (* A small pool of distinct systems, queried many times over: the
     shape a verdict cache is for. *)
  let pool =
    List.init 10 (fun i ->
        Txn_gen.random_pair_system rng
          ~num_shared:(2 + (i mod 3))
          ~num_private:1
          ~num_sites:(2 + (i mod 2))
          ~cross_prob:0.5 ())
    @ List.init 2 (fun _ ->
          Txn_gen.random_multi_system rng ~num_txns:3 ~num_entities:6
            ~entities_per_txn:2 ~num_sites:2 ~cross_prob:0.6 ())
  in
  let pool = Array.of_list pool in
  let queries =
    List.init 400 (fun _ -> pool.(Random.State.int rng (Array.length pool)))
  in
  let n = List.length queries in
  (* cache off: every query runs the full pipeline *)
  let eng_off = Decision.create ~cache_capacity:0 () in
  let off, t_off =
    time (fun () -> List.map (Decision.decide eng_off) queries)
  in
  (* cache on, batch API: fingerprint dedup + LRU *)
  let eng_on = Decision.create () in
  let (on_, report), t_on =
    time (fun () -> Decision.decide_batch eng_on queries)
  in
  let agree =
    List.for_all2
      (fun (a : _ E.Outcome.t) (b : _ E.Outcome.t) ->
        E.Outcome.decided a = E.Outcome.decided b
        && a.E.Outcome.procedure = b.E.Outcome.procedure)
      off on_
  in
  let thr t = float_of_int n /. t in
  pf "queries: %d over %d distinct systems; verdicts agree: %b\n" n
    (Array.length pool) agree;
  pf "cache off: %8.2f ms  (%10.0f decisions/s)\n" (ms t_off) (thr t_off);
  pf "cache on:  %8.2f ms  (%10.0f decisions/s)  speedup: %.1fx\n" (ms t_on)
    (thr t_on) (t_off /. t_on);
  pf "hit rate: %.1f%% (%d dedup + %d cache hits / %d submitted)\n"
    (100. *. E.Engine.hit_rate report)
    report.E.Engine.batch_dedup_hits report.E.Engine.cache_hits
    report.E.Engine.submitted;
  param_i "pool_systems" (Array.length pool);
  param_i "queries" n;
  metric_b "verdicts_agree" agree;
  metric_i "batch_dedup_hits" report.E.Engine.batch_dedup_hits;
  metric_i "cache_hits" report.E.Engine.cache_hits;
  metric_f "cache_off_seconds" t_off;
  metric_f "cache_on_seconds" t_on;
  metric_f "speedup" (t_off /. t_on);
  metric_f "hit_rate" (E.Engine.hit_rate report);
  Format.printf "%a@." E.Stats.pp (Decision.stats eng_on)

(* ------------------------------------------------------------------ *)
(* E14: observability overhead — no-op sink vs JSONL trace export *)

let e14 () =
  rule "E14 (obs): tracing overhead on the E13 batch workload";
  let module E = Distlock_engine in
  let module Obs = Distlock_obs.Obs in
  let rng = Random.State.make [| 13 |] in
  let pool =
    Array.of_list
      (List.init 10 (fun i ->
           Txn_gen.random_pair_system rng
             ~num_shared:(2 + (i mod 3))
             ~num_private:1
             ~num_sites:(2 + (i mod 2))
             ~cross_prob:0.5 ()))
  in
  let queries =
    List.init 400 (fun _ -> pool.(Random.State.int rng (Array.length pool)))
  in
  let n = List.length queries in
  let run_once () =
    let eng = Decision.create () in
    ignore (Decision.decide_batch eng queries)
  in
  (* median of [reps] runs, first run as warm-up *)
  let median_time () =
    run_once ();
    let reps = 5 in
    let ts =
      List.sort compare (List.init reps (fun _ -> snd (time run_once)))
    in
    List.nth ts (reps / 2)
  in
  let t_noop = median_time () in
  let oc = open_out Filename.null in
  Obs.set_sink (Distlock_obs.Sink.jsonl oc);
  let t_jsonl = median_time () in
  Obs.set_sink Distlock_obs.Sink.noop;
  close_out oc;
  let per_decision t = t /. float_of_int n *. 1e6 in
  pf "batch of %d decisions (median of 5):\n" n;
  pf "no-op sink: %8.2f ms  (%6.2f us/decision)\n" (ms t_noop)
    (per_decision t_noop);
  pf "JSONL sink: %8.2f ms  (%6.2f us/decision)  overhead: %.2fx\n"
    (ms t_jsonl) (per_decision t_jsonl)
    (t_jsonl /. max 1e-9 t_noop);
  param_i "queries" n;
  param_s "jsonl_target" "null device";
  metric_f "noop_seconds" t_noop;
  metric_f "jsonl_seconds" t_jsonl;
  metric_f "jsonl_overhead_ratio" (t_jsonl /. max 1e-9 t_noop)

(* ------------------------------------------------------------------ *)
(* E15: parallel batch decisions — speedup curve over domain counts *)

let e15 () =
  rule "E15 (engine): decide_batch speedup over 1/2/4/8 domains";
  let module E = Distlock_engine in
  let rng = Random.State.make [| 15 |] in
  (* A mixed corpus of distinct systems — no duplicates, and a fresh
     engine per run, so every decision is a cold-cache pipeline run and
     the curve measures the pipeline fan-out, not the cache. *)
  let corpus =
    List.init 480 (fun i ->
        Txn_gen.random_pair_system rng
          ~num_shared:(3 + (i mod 4))
          ~num_private:(i mod 2)
          ~num_sites:(2 + (i mod 3))
          ~cross_prob:(0.3 +. (0.1 *. float_of_int (i mod 5)))
          ())
    @ List.init 40 (fun i ->
          Txn_gen.random_multi_system rng
            ~num_txns:(3 + (i mod 2))
            ~num_entities:6 ~entities_per_txn:2 ~num_sites:2 ~cross_prob:0.6
            ())
  in
  let n = List.length corpus in
  let job_counts = [ 1; 2; 4; 8 ] in
  let run jobs =
    let eng = Decision.create ~cache_capacity:0 () in
    time (fun () -> Decision.decide_batch ~jobs eng corpus)
  in
  (* Warm-up once so allocator state is comparable across runs. *)
  ignore (run 1);
  let results = List.map (fun jobs -> (jobs, run jobs)) job_counts in
  let (baseline, _), t1 =
    List.assoc 1 results
  in
  pf "corpus: %d distinct systems (pairs + multi), cold cache per run\n" n;
  pf "%6s %12s %14s %9s %s\n" "jobs" "seconds" "decisions/s" "speedup"
    "verdicts";
  let speedups =
    List.map
      (fun (jobs, ((outcomes, report), t)) ->
        let agree =
          List.for_all2
            (fun (a : _ E.Outcome.t) (b : _ E.Outcome.t) ->
              E.Outcome.decided a = E.Outcome.decided b
              && a.E.Outcome.procedure = b.E.Outcome.procedure)
            baseline outcomes
        in
        let speedup = t1 /. t in
        pf "%6d %9.2f ms %14.0f %8.2fx %s\n" jobs (ms t)
          (float_of_int n /. t) speedup
          (if agree then "agree" else "DISAGREE");
        metric_f (Printf.sprintf "jobs%d_seconds" jobs) t;
        metric_f (Printf.sprintf "jobs%d_speedup" jobs) speedup;
        metric_b (Printf.sprintf "jobs%d_verdicts_agree" jobs) agree;
        ignore report;
        (jobs, speedup))
      results
  in
  param_i "corpus_systems" n;
  param_i "recommended_domain_count" (Domain.recommended_domain_count ());
  metric_f "speedup_jobs4" (List.assoc 4 speedups);
  pf
    "note: speedup saturates at the machine's core count \
     (recommended_domain_count = %d here)\n"
    (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* E16: the memoized state-graph oracle vs factorial schedule
   enumeration. Same flavour of corpus as E15 — partial orders, several
   shared entities, multiple sites — so the schedule tree has genuine
   interleaving freedom for the state graph to collapse. *)

let e16 () =
  rule "E16 (stategraph): bitset state graph vs factorial schedule tree";
  let module S = Distlock_sched in
  let module E = Distlock_engine in
  let rng = Random.State.make [| 16 |] in
  let cap = 500_000 in
  let corpus =
    List.init 40 (fun i ->
        Txn_gen.random_pair_system rng
          ~num_shared:(3 + (i mod 3))
          ~num_private:(i mod 2)
          ~num_sites:(2 + (i mod 3))
          ~cross_prob:(0.3 +. (0.15 *. float_of_int (i mod 4)))
          ())
    @ List.init 10 (fun i ->
          Txn_gen.random_multi_system rng ~num_txns:3
            ~num_entities:(5 + (i mod 2)) ~entities_per_txn:2 ~num_sites:2
            ~cross_prob:0.5 ())
  in
  let n = List.length corpus in
  param_i "corpus_systems" n;
  param_i "count_cap" cap;
  let median = function
    | [] -> 0.
    | xs ->
        let a = List.sort compare xs in
        List.nth a (List.length a / 2)
  in
  pf "%4s %8s %12s %10s %11s %11s %s\n" "sys" "states" "schedules"
    "dup hits" "t_states" "t_sched" "verdict";
  let all_fewer = ref true in
  let total_states = ref 0 and total_dups = ref 0 in
  let speedups = ref [] in
  List.iteri
    (fun i sys ->
      let (outcome, st), t_census =
        time (fun () -> S.Stategraph.census ~limit:cap sys)
      in
      let sched, t_count =
        time (fun () -> S.Enumerate.count_legal ~limit:cap sys)
      in
      total_states := !total_states + st.S.Stategraph.states;
      total_dups := !total_dups + st.S.Stategraph.dup_hits;
      let sched_str, fewer, exact_count =
        match sched with
        | S.Enumerate.Exact m ->
            (string_of_int m, st.S.Stategraph.states < m, Some m)
        | S.Enumerate.Exhausted m ->
            (Printf.sprintf ">%d" m, st.S.Stategraph.states < m, None)
      in
      if not fewer then all_fewer := false;
      let verdict =
        match outcome with
        | S.Stategraph.Safe -> "safe"
        | S.Stategraph.Unsafe _ -> "unsafe"
        | S.Stategraph.Exhausted _ -> "(budget)"
      in
      (* Race the two oracles on the decision itself wherever the
         schedule oracle can finish exhaustively and has real work to
         do; a SAFE verdict forces both to cover their whole space. *)
      (match (outcome, exact_count) with
      | S.Stategraph.Safe, Some m when m >= 1_000 ->
          let _, t_states = time (fun () -> Brute.safe_by_states sys) in
          let _, t_sched = time (fun () -> Brute.safe_by_schedules sys) in
          speedups := (t_sched /. Float.max t_states 1e-9) :: !speedups
      | _ -> ());
      pf "%4d %8d %12s %10d %8.2f ms %8.2f ms %s\n" i st.S.Stategraph.states
        sched_str st.S.Stategraph.dup_hits (ms t_census) (ms t_count) verdict)
    corpus;
  let med = median !speedups in
  pf "states < schedules on every system: %b\n" !all_fewer;
  pf "decision speedup (exhaustive SAFE subset, %d systems): median %.1fx\n"
    (List.length !speedups) med;
  metric_b "states_fewer_on_every_system" !all_fewer;
  metric_i "total_states" !total_states;
  metric_i "total_duplicate_hits" !total_dups;
  metric_i "speedup_subset_systems" (List.length !speedups);
  metric_f "median_decide_speedup" med;
  (* The engine path: the State_graph stage rides the same batch fan-out
     as E15; jobs:1 and jobs:4 must agree decision for decision. *)
  let run jobs =
    let eng = Decision.create ~cache_capacity:0 () in
    time (fun () -> Decision.decide_batch ~jobs eng corpus)
  in
  let (out1, _), t1 = run 1 in
  let (out4, _), t4 = run 4 in
  let agree =
    List.for_all2
      (fun (a : _ E.Outcome.t) (b : _ E.Outcome.t) ->
        E.Outcome.decided a = E.Outcome.decided b
        && a.E.Outcome.procedure = b.E.Outcome.procedure)
      out1 out4
  in
  pf "engine batch: jobs:1 %.2f ms, jobs:4 %.2f ms, verdicts %s\n" (ms t1)
    (ms t4)
    (if agree then "agree" else "DISAGREE");
  metric_f "jobs1_seconds" t1;
  metric_f "jobs4_seconds" t4;
  metric_b "jobs_verdicts_agree" agree

(* ------------------------------------------------------------------ *)
(* E17: warm-cache edit latency — an incremental session absorbing
   single-transaction replacements vs deciding each edited system from
   scratch. The corpus is subcritical (each transaction locks 2 of 4n
   entities) so the conflict graph stays a scatter of small components —
   pair pipelines dominate the from-scratch cost and condition (b)
   never explodes — while the session re-runs only the pairs incident
   to the mutated transaction (at most 2n-3 of them). *)

let e17 () =
  rule "E17 (incremental): warm-cache edit latency vs from-scratch decide";
  let module E = Distlock_engine in
  let median = function
    | [] -> 0.
    | xs ->
        let a = List.sort compare xs in
        List.nth a (List.length a / 2)
  in
  let edits_per_size = 15 in
  param_i "edits_per_size" edits_per_size;
  List.iter
    (fun n ->
      let rng = Random.State.make [| 17 * n |] in
      let base =
        Txn_gen.random_multi_system rng ~num_txns:n ~num_entities:(4 * n)
          ~entities_per_txn:2 ~num_sites:2 ~cross_prob:1.0 ()
      in
      let db = System.db base in
      let pool = Array.of_list (Database.entities db) in
      let session = Incremental.of_system base in
      (* Warm the session: the base decision populates the pair store
         and the cycle caches; every later call is a true delta. *)
      let warm = Incremental.decide_delta session in
      let scratch =
        Decision.create ~cache_capacity:0 ~pair_cache_capacity:0 ()
      in
      let delta_times = ref []
      and scratch_times = ref []
      and max_redecided = ref 0
      and agree = ref true in
      for i = 0 to edits_per_size - 1 do
        let k = (i * 7 + 3) mod n in
        let name = List.nth (Incremental.txn_names session) k in
        let e1 = Random.State.int rng (Array.length pool) in
        let e2 =
          (e1 + 1 + Random.State.int rng (Array.length pool - 1))
          mod Array.length pool
        in
        let txn =
          Txn_gen.random_txn rng db ~name
            ~entities:[ pool.(e1); pool.(e2) ]
            ~cross_prob:1.0 ()
        in
        Incremental.replace_txn session name txn;
        let o, t_delta = time (fun () -> Incremental.decide_delta session) in
        let fresh, t_scratch =
          time (fun () ->
              Decision.decide scratch (Incremental.system session))
        in
        let same =
          match (o.Incremental.verdict, fresh.E.Outcome.verdict) with
          | Incremental.Safe, E.Outcome.Safe
          | Incremental.Unsafe _, E.Outcome.Unsafe _
          | Incremental.Unknown _, E.Outcome.Unknown _ ->
              true
          | _ -> false
        in
        if not same then agree := false;
        delta_times := t_delta :: !delta_times;
        scratch_times := t_scratch :: !scratch_times;
        max_redecided := max !max_redecided o.Incremental.pairs_redecided
      done;
      let d = median !delta_times and s = median !scratch_times in
      let speedup = s /. Float.max d 1e-9 in
      let bound = (2 * n) - 3 in
      pf
        "n=%3d  base: %d pairs, %d cycles; per edit: delta %8.3f ms, \
         scratch %8.3f ms, %6.1fx; max pairs re-decided %d (bound %d); \
         verdicts %s\n"
        n warm.Incremental.pairs_total warm.Incremental.cycles_total (ms d)
        (ms s) speedup !max_redecided bound
        (if !agree then "agree" else "DISAGREE");
      metric_f (Printf.sprintf "n%d_delta_median_seconds" n) d;
      metric_f (Printf.sprintf "n%d_scratch_median_seconds" n) s;
      metric_f (Printf.sprintf "n%d_speedup" n) speedup;
      metric_i (Printf.sprintf "n%d_max_pairs_redecided" n) !max_redecided;
      metric_i (Printf.sprintf "n%d_pair_bound" n) bound;
      metric_b (Printf.sprintf "n%d_verdicts_agree" n) !agree)
    [ 64; 128 ]

(* ------------------------------------------------------------------ *)
(* E18: flight-recorder overhead — no-op sink vs recorder-only vs the
   full export stack (JSONL to the null device + Chrome-trace collector
   + recorder, teed). The recorder is on by default in the CLI, so its
   overhead budget (< 5% median vs no-op) is an acceptance gate. *)

let e18 () =
  rule "E18 (obs): flight-recorder overhead on the E14 batch workload";
  let module Obs = Distlock_obs.Obs in
  let module Sink = Distlock_obs.Sink in
  let rng = Random.State.make [| 13 |] in
  let pool =
    Array.of_list
      (List.init 10 (fun i ->
           Txn_gen.random_pair_system rng
             ~num_shared:(2 + (i mod 3))
             ~num_private:1
             ~num_sites:(2 + (i mod 2))
             ~cross_prob:0.5 ()))
  in
  let queries =
    List.init 400 (fun _ -> pool.(Random.State.int rng (Array.length pool)))
  in
  let n = List.length queries in
  let run_once () =
    let eng = Decision.create () in
    ignore (Decision.decide_batch eng queries)
  in
  (* median of [reps] runs, first run as warm-up; more reps than E14
     because the effect measured here is small *)
  let median_time () =
    run_once ();
    let reps = 9 in
    let ts =
      List.sort compare (List.init reps (fun _ -> snd (time run_once)))
    in
    List.nth ts (reps / 2)
  in
  let t_noop = median_time () in
  let recorder = Distlock_obs.Recorder.create () in
  Obs.set_sink (Distlock_obs.Recorder.sink recorder);
  let t_recorder = median_time () in
  let oc = open_out Filename.null in
  let chrome_sink, _render = Distlock_obs.Trace_export.collector () in
  Obs.set_sink
    (Sink.tee
       (Sink.tee (Distlock_obs.Recorder.sink recorder) (Sink.jsonl oc))
       chrome_sink);
  let t_full = median_time () in
  Obs.set_sink Sink.noop;
  close_out oc;
  let per_decision t = t /. float_of_int n *. 1e6 in
  let ratio t = t /. Float.max 1e-9 t_noop in
  pf "batch of %d decisions (median of 9):\n" n;
  pf "no-op sink:      %8.2f ms  (%6.2f us/decision)\n" (ms t_noop)
    (per_decision t_noop);
  pf "recorder only:   %8.2f ms  (%6.2f us/decision)  overhead: %.3fx\n"
    (ms t_recorder) (per_decision t_recorder) (ratio t_recorder);
  pf "full export:     %8.2f ms  (%6.2f us/decision)  overhead: %.3fx\n"
    (ms t_full) (per_decision t_full) (ratio t_full);
  param_i "queries" n;
  param_s "full_stack" "recorder + jsonl(null) + chrome collector";
  metric_f "noop_seconds" t_noop;
  metric_f "recorder_seconds" t_recorder;
  metric_f "full_seconds" t_full;
  metric_f "recorder_overhead_ratio" (ratio t_recorder);
  metric_f "full_overhead_ratio" (ratio t_full)

(* E19: the static-safe/dynamic-unsafe gap. A corpus of two-phase
   systems the decision engine proves safe is run through the
   event-driven simulator's leased lock backend with worker crashes
   injected: a crashed holder's leases expire after the TTL and pass to
   waiters, the dead worker resumes believing it still holds them, and
   the committed history overlaps two locked sections — illegal, hence
   outside the static verdict's quantifier, and non-serializable. The
   sweep shows the gap shrinking to exactly zero as the TTL reaches the
   downtime (a holder then always resumes before expiry) and with
   faults off; the bakery backend (no expiry) never shows it at all. *)

let e19 () =
  rule
    "E19 (faults): statically-safe corpus under leased locks with crash \
     injection";
  let module Sim = Distlock_sim in
  let rng = Random.State.make [| 42 |] in
  let mk_db () =
    let db = Database.create () in
    Database.add_all db
      (List.init 8 (fun i -> (Printf.sprintf "e%d" i, 1 + (i mod 4))));
    db
  in
  let corpus =
    List.init 12 (fun _ ->
        Sim.Workload.make rng ~db:(mk_db ()) ~style:Sim.Workload.Two_phase
          ~num_txns:4 ~entities_per_txn:3)
  in
  let all_safe = List.for_all Sim.Workload.proven_safe corpus in
  let seeds = List.init 12 Fun.id in
  let down_time = 24 in
  let scenario ?ttl ?(crash = 0.08) ?(backend = Sim.Scenario.Leased) () =
    {
      Sim.Scenario.backend;
      latency = Sim.Latency.make (Sim.Latency.Uniform (1, 3));
      lease_ttl = ttl;
      crash_rate = crash;
      down_time;
      max_aborts = 1000;
    }
  in
  (* Aggregate (violations, completed runs, expiries, stale unlocks)
     over the corpus; faulty scenarios never take the proven-safe
     shortcut, so every history gets the full conflict check. *)
  let sweep sc =
    List.fold_left
      (fun (v, r, e, st) sys ->
        let s = Sim.Esim.measure ~scenario:sc ~seeds sys in
        ( v + s.Sim.Esim.violations,
          r + s.Sim.Esim.runs,
          e + s.Sim.Esim.total_expiries,
          st + s.Sim.Esim.total_stale_unlocks ))
      (0, 0, 0, 0) corpus
  in
  let gap (v, r, _, _) =
    if r = 0 then 0. else float_of_int v /. float_of_int r
  in
  pf "corpus: %d two-phase systems, all proven safe statically: %b\n"
    (List.length corpus) all_safe;
  pf "scenario: leased backend, latency 1-3, crash rate 0.08, downtime %d\n\n"
    down_time;
  let ttls = [ 2; 6; 12; down_time ] in
  let per_ttl =
    List.map
      (fun ttl ->
        let ((v, r, e, st) as agg) = sweep (scenario ~ttl ()) in
        pf
          "ttl %3d: %3d/%3d non-serializable (gap %.3f)  %4d lease \
           expiries, %4d stale unlocks\n"
          ttl v r (gap agg) e st;
        metric_f (Printf.sprintf "ttl%d_gap" ttl) (gap agg);
        metric_i (Printf.sprintf "ttl%d_expiries" ttl) e;
        (ttl, agg))
      ttls
  in
  let off = sweep (scenario ~ttl:2 ~crash:0. ()) in
  pf "faults off: gap %.3f\n" (gap off);
  let bakery = sweep (scenario ~backend:Sim.Scenario.Bakery ()) in
  pf "bakery backend (crashes on): gap %.3f\n" (gap bakery);
  let rerun = sweep (scenario ~ttl:6 ()) in
  let deterministic = rerun = snd (List.nth per_ttl 1) in
  pf "bit-deterministic re-run (ttl 6): %b\n" deterministic;
  param_i "corpus_systems" (List.length corpus);
  param_i "seeds_per_system" (List.length seeds);
  param_i "down_time" down_time;
  param_s "latency" "1-3";
  metric_b "corpus_statically_safe" all_safe;
  metric_f "gap_small_ttl" (gap (snd (List.hd per_ttl)));
  metric_f "gap_infinite_ttl" (gap (snd (List.nth per_ttl 3)));
  metric_f "gap_faults_off" (gap off);
  metric_f "bakery_gap" (gap bakery);
  metric_b "deterministic" deterministic

(* ------------------------------------------------------------------ *)
(* E20: live telemetry — overhead of a concurrent scraper on the fully
   instrumented simulator vs the recorder-only baseline (bar: <= 1.10x),
   plus sustained scrape correctness: every /metrics response during a
   parallel batch must parse and its counters must be monotone. *)

module Str_find = struct
  (* First occurrence of [needle] in [hay], naive scan. *)
  let index hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    if nn = 0 then Some 0 else go 0
end

(* Minimal HTTP GET against the Expose endpoint; returns the body. *)
let http_get ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
          path
      in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let resp = Buffer.contents buf in
      match Str_find.index resp "\r\n\r\n" with
      | Some i -> String.sub resp (i + 4) (String.length resp - i - 4)
      | None -> resp)

let e20 () =
  rule "E20 (obs): live telemetry overhead and scrape correctness";
  let module Sim = Distlock_sim in
  let module E = Distlock_engine in
  let module Obs = Distlock_obs.Obs in
  (* Prometheus text sanity: every sample line ends in a number, and the
     named counter's value is extracted for monotonicity checks. *)
  let scrape_parses body =
    String.split_on_char '\n' body
    |> List.for_all (fun line ->
           line = ""
           || line.[0] = '#'
           ||
           match String.rindex_opt line ' ' with
           | None -> false
           | Some i -> (
               match
                 float_of_string_opt
                   (String.sub line (i + 1) (String.length line - i - 1))
               with
               | Some _ -> true
               | None -> false))
  in
  let metric_value body name =
    String.split_on_char '\n' body
    |> List.find_map (fun line ->
           if
             String.length line > String.length name
             && String.sub line 0 (String.length name) = name
             && line.[String.length name] = ' '
           then
             match String.rindex_opt line ' ' with
             | Some i ->
                 float_of_string_opt
                   (String.sub line (i + 1) (String.length line - i - 1))
             | None -> None
           else None)
  in
  let rng = Random.State.make [| 77 |] in
  let mk_db () =
    let db = Database.create () in
    Database.add_all db
      (List.init 8 (fun i -> (Printf.sprintf "e%d" i, 1 + (i mod 4))));
    db
  in
  let corpus =
    List.init 8 (fun _ ->
        Sim.Workload.make rng ~db:(mk_db ()) ~style:Sim.Workload.Two_phase
          ~num_txns:4 ~entities_per_txn:3)
  in
  let scenario =
    {
      Sim.Scenario.backend = Sim.Scenario.Leased;
      latency = Sim.Latency.make (Sim.Latency.Uniform (1, 3));
      lease_ttl = Some 6;
      crash_rate = 0.08;
      down_time = 24;
      max_aborts = 1000;
    }
  in
  (* Enough seeds that one rep spans several runtime preemption ticks —
     the serving thread gets a slice per tick, so short reps would see
     at most one scrape in flight. *)
  let seeds = List.init 40 Fun.id in
  let run_once () =
    List.iter (fun sys -> ignore (Sim.Esim.measure ~scenario ~seeds sys)) corpus
  in
  let median_time () =
    run_once ();
    let reps = 7 in
    let ts =
      List.sort compare (List.init reps (fun _ -> snd (time run_once)))
    in
    List.nth ts (reps / 2)
  in
  (* Baseline: the CLI's default-on stack — flight recorder sink, all
     simulator instruments live, nobody reading them. *)
  let recorder = Distlock_obs.Recorder.create () in
  Obs.set_sink (Distlock_obs.Recorder.sink recorder);
  let t_base = median_time () in
  let served = ref [ ("global", Obs.global) ] in
  let srv =
    match
      Distlock_obs.Expose.start ~port:0 ~registries:(fun () -> !served) ()
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  let port = Distlock_obs.Expose.port srv in
  (* Same load with a scraper hammering /metrics from another domain. *)
  let stop = Atomic.make false in
  let scrapes = Atomic.make 0 in
  let scraper =
    (* A systhread, like the server itself: a scraper *domain* would bill
       the sim for a stop-the-world GC participant rather than for being
       scraped (~10% on one core even when idle). In production the
       scraper is another process entirely; keeping the client in-process
       makes this measurement conservative. 5 ms between scrapes is still
       orders of magnitude above any real Prometheus interval. *)
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          (try ignore (http_get ~port "/metrics") with _ -> ());
          Atomic.incr scrapes;
          Unix.sleepf 0.005
        done)
      ()
  in
  let t_scraped = median_time () in
  Atomic.set stop true;
  Thread.join scraper;
  let overhead = t_scraped /. Float.max 1e-9 t_base in
  let final = http_get ~port "/metrics" in
  let family f = Str_find.index final ("# TYPE " ^ f ^ " ") <> None in
  let families_present =
    List.for_all family
      [
        "distlock_sim_lock_wait_ticks"; "distlock_sim_lock_hold_ticks";
        "distlock_sim_grants_total"; "distlock_sim_crashes_total";
        "distlock_esim_runs_total";
      ]
  in
  pf "workload: %d two-phase systems x %d seeds, leased + crashes\n"
    (List.length corpus) (List.length seeds);
  pf "recorder-only baseline:   %8.2f ms\n" (ms t_base);
  pf "with concurrent scraper:  %8.2f ms  overhead: %.3fx (%d scrapes)\n"
    (ms t_scraped) overhead (Atomic.get scrapes);
  pf "sim metric families present on /metrics: %b\n" families_present;
  (* Sustained scrape correctness while a parallel batch runs. *)
  let rng2 = Random.State.make [| 78 |] in
  let pool =
    Array.of_list
      (List.init 10 (fun i ->
           Txn_gen.random_pair_system rng2
             ~num_shared:(2 + (i mod 3))
             ~num_private:1
             ~num_sites:(2 + (i mod 2))
             ~cross_prob:0.5 ()))
  in
  let queries =
    List.init 400 (fun _ -> pool.(Random.State.int rng2 (Array.length pool)))
  in
  let eng = Decision.create () in
  served :=
    [ ("global", Obs.global); ("engine", E.Stats.registry (Decision.stats eng)) ];
  let stop2 = Atomic.make false in
  let parsed = ref true
  and monotone = ref true
  and count = ref 0 in
  let checker =
    Thread.create
      (fun () ->
        let last = ref neg_infinity in
        while not (Atomic.get stop2) do
          (try
             let body = http_get ~port "/metrics" in
             incr count;
             if not (scrape_parses body) then parsed := false;
             match metric_value body "distlock_engine_decisions_total" with
             | Some v ->
                 if v < !last then monotone := false;
                 last := v
             | None -> ()
           with _ -> parsed := false);
          Unix.sleepf 0.001
        done)
      ()
  in
  ignore (Decision.decide_batch ~jobs:4 eng queries);
  Unix.sleepf 0.02;
  Atomic.set stop2 true;
  Thread.join checker;
  let parsed_ok, monotone, batch_scrapes = (!parsed, !monotone, !count) in
  Distlock_obs.Expose.stop srv;
  Obs.set_sink Distlock_obs.Sink.noop;
  pf
    "batch --jobs 4 under scrape: %d scrapes, all parse: %b, counters \
     monotone: %b\n"
    batch_scrapes parsed_ok monotone;
  param_i "corpus_systems" (List.length corpus);
  param_i "seeds_per_system" (List.length seeds);
  param_i "batch_queries" (List.length queries);
  param_i "batch_jobs" 4;
  metric_f "baseline_seconds" t_base;
  metric_f "scraped_seconds" t_scraped;
  metric_f "scrape_overhead_ratio" overhead;
  metric_i "overhead_scrapes" (Atomic.get scrapes);
  metric_b "sim_families_present" families_present;
  metric_i "batch_scrapes" batch_scrapes;
  metric_b "scrapes_parse" parsed_ok;
  metric_b "counters_monotone" monotone

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let bechamel_benches () =
  rule "Bechamel micro-benchmarks (OLS time per call)";
  let open Bechamel in
  let fig1 = Figures.fig1 () in
  let rng = Random.State.make [| 5 |] in
  let sys_big =
    Txn_gen.random_pair_system rng ~num_shared:64 ~num_private:0 ~num_sites:2
      ~cross_prob:0.3 ()
  in
  let sat3 =
    Distlock_sat.Cnf.make ~num_vars:3
      [
        [ Distlock_sat.Cnf.pos 0; Distlock_sat.Cnf.pos 1 ];
        [ Distlock_sat.Cnf.neg 0; Distlock_sat.Cnf.pos 2 ];
        [ Distlock_sat.Cnf.pos 1; Distlock_sat.Cnf.neg 2 ];
      ]
  in
  let multi =
    Txn_gen.random_multi_system rng ~num_txns:4 ~num_entities:6
      ~entities_per_txn:2 ~num_sites:2 ~cross_prob:0.6 ()
  in
  let g512 =
    Distlock_graph.Digraph.of_arcs 512
      (List.concat
         (List.init 512 (fun i ->
              [ (i, (i + 1) mod 512); (i, (i + 7) mod 512) ])))
  in
  let tests =
    [
      Test.make ~name:"E1/fig1-theorem2"
        (Staged.stage (fun () -> ignore (Twosite.decide fig1)));
      Test.make ~name:"E2/corollary1-n128"
        (Staged.stage (fun () ->
             ignore (Twosite.decide_connectivity_only sys_big)));
      Test.make ~name:"E2/dgraph-build-n128"
        (Staged.stage (fun () -> ignore (Dgraph.build_pair sys_big)));
      Test.make ~name:"E4/certificate-fig1"
        (Staged.stage (fun () ->
             match Twosite.decide fig1 with
             | Twosite.Unsafe c -> ignore (Certificate.verify fig1 c)
             | Twosite.Safe -> ()));
      Test.make ~name:"E6/encode-3vars"
        (Staged.stage (fun () -> ignore (Reduction.encode sat3)));
      Test.make ~name:"E7/prop2-4txns"
        (Staged.stage (fun () -> ignore (Multisite.decide multi)));
      Test.make ~name:"E8/simulate-fig1"
        (Staged.stage (fun () ->
             ignore
               (Distlock_sim.Engine.run
                  ~policy:(Distlock_sim.Engine.Random 3) fig1)));
      Test.make ~name:"graph/scc-512"
        (Staged.stage (fun () -> ignore (Distlock_graph.Scc.compute g512)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  pf "%-26s %14s %10s\n" "benchmark" "time/call" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name bench ->
          let est = Analyze.one ols instance bench in
          let nanos =
            match Analyze.OLS.estimates est with
            | Some (e :: _) -> e
            | _ -> Float.nan
          in
          let r2 =
            Option.value ~default:Float.nan (Analyze.OLS.r_square est)
          in
          let pretty =
            if nanos > 1e9 then Printf.sprintf "%8.3f  s" (nanos /. 1e9)
            else if nanos > 1e6 then Printf.sprintf "%8.3f ms" (nanos /. 1e6)
            else if nanos > 1e3 then Printf.sprintf "%8.3f us" (nanos /. 1e3)
            else Printf.sprintf "%8.1f ns" nanos
          in
          pf "%-26s %14s %10.4f\n%!" name pretty r2)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver: run the selected experiments, snapshot each one's params and
   derived metrics with wall/CPU time, and write the JSON artifact. *)

let experiments =
  [ ("E1", e1); ("E2", e2); ("E2b", e2b); ("E3", e3); ("E4", e4);
    ("E5", e5); ("E6", e6); ("E7", e7); ("E8", e8); ("E8b", e8b);
    ("E8c", e8c); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12);
    ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17);
    ("E18", e18); ("E19", e19); ("E20", e20) ]

(* Host metadata, so an archived BENCH_results.json says what machine
   and build produced it. *)
let host_json () =
  let git_describe =
    try
      let ic =
        Unix.open_process_in "git describe --always --dirty 2>/dev/null"
      in
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"
  in
  J.Obj
    [
      ("cpu_count", J.Int (Domain.recommended_domain_count ()));
      ("ocaml_version", J.Str Sys.ocaml_version);
      ("os_type", J.Str Sys.os_type);
      ("word_size", J.Int Sys.word_size);
      ("git_describe", J.Str git_describe);
    ]

let usage () =
  prerr_endline
    "usage: bench [--only E1,E13,...] [--out FILE] [--no-artifact]";
  exit 2

let () =
  let only = ref None and out = ref "BENCH_results.json" in
  let artifact = ref true in
  let rec parse = function
    | [] -> ()
    | "--only" :: v :: rest ->
        only := Some (String.split_on_char ',' v);
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--no-artifact" :: rest ->
        artifact := false;
        parse rest
    | a :: _ ->
        Printf.eprintf "bench: unknown argument %s\n" a;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    match !only with
    | None -> experiments
    | Some ids ->
        let wanted id =
          List.exists
            (fun s -> String.lowercase_ascii s = String.lowercase_ascii id)
            ids
        in
        let sel = List.filter (fun (id, _) -> wanted id) experiments in
        if sel = [] then begin
          Printf.eprintf "bench: --only matched no experiment\n";
          usage ()
        end;
        sel
  in
  pf "distlock benchmark harness — reproducing Kanellakis & Papadimitriou 1982\n";
  let records =
    List.map
      (fun (id, f) ->
        bench_params := [];
        bench_metrics := [];
        let w0 = Unix.gettimeofday () and c0 = Sys.time () in
        f ();
        let wall = Unix.gettimeofday () -. w0 and cpu = Sys.time () -. c0 in
        J.Obj
          [
            ("id", J.Str id);
            ("params", J.Obj (List.rev !bench_params));
            ("wall_seconds", J.Float wall);
            ("cpu_seconds", J.Float cpu);
            ("metrics", J.Obj (List.rev !bench_metrics));
          ])
      selected
  in
  (* micro-benchmarks only on full sweeps; a filtered run is a smoke *)
  if !only = None then bechamel_benches ();
  if !artifact then begin
    let oc = open_out !out in
    output_string oc
      (J.to_string_pretty
         (J.Obj
            [
              ("harness", J.Str "distlock-bench");
              ("version", J.Str "1.8.0");
              ("host", host_json ());
              ("experiments", J.List records);
            ]));
    output_char oc '\n';
    close_out oc;
    pf "\nwrote %s\n" !out
  end;
  pf "\ndone.\n"
