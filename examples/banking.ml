(* A two-branch bank: accounts live at branch 1, the audit ledger at
   branch 2. A fund transfer and an audit sweep run concurrently.

   The "optimized" versions release each branch's locks as soon as that
   branch's work is done — and the pair is provably unsafe (Theorem 2
   certificate shows the exact interleaving in which the audit sees the
   transfer's debit but not its credit... in conflict terms, the audit
   serializes before the transfer at one branch and after it at the
   other). Two-phase versions of the same programs are provably safe.

   Run with: dune exec examples/banking.exe *)

open Distlock_core
open Distlock_txn

let db () =
  let db = Database.create () in
  Database.add_all db
    [ ("checking", 1); ("savings", 1); ("ledger", 2); ("summary", 2) ];
  db

(* Transfer: debit checking, credit savings (branch 1), then append both
   movements to the ledger (branch 2). The eager version unlocks the
   accounts before touching the ledger. *)
let transfer db ~eager =
  let steps =
    [
      ("Lc", `Lock "checking"); ("debit", `Update "checking");
      ("Ls", `Lock "savings"); ("credit", `Update "savings");
      ("Uc", `Unlock "checking"); ("Us", `Unlock "savings");
      ("Ll", `Lock "ledger"); ("append", `Update "ledger");
      ("Ul", `Unlock "ledger");
    ]
  in
  let branch1 = [ "Lc"; "debit"; "Ls"; "credit"; "Uc"; "Us" ] in
  let branch2 = [ "Ll"; "append"; "Ul" ] in
  let chains =
    if eager then [ branch1; branch2 ] (* branches unordered: maximum parallelism *)
    else [ branch1 @ branch2 ] (* ledger work strictly after account work *)
  in
  Builder.make_exn db ~name:"transfer" ~steps ~chains ()

(* Audit: snapshot the ledger and summary (branch 2), then read both
   account balances (branch 1). *)
let audit db ~eager =
  let steps =
    [
      ("Ll", `Lock "ledger"); ("scan", `Update "ledger");
      ("Lm", `Lock "summary"); ("post", `Update "summary");
      ("Ul", `Unlock "ledger"); ("Um", `Unlock "summary");
      ("Lc", `Lock "checking"); ("readc", `Update "checking");
      ("Ls", `Lock "savings"); ("reads", `Update "savings");
      ("Uc", `Unlock "checking"); ("Us", `Unlock "savings");
    ]
  in
  let branch2 = [ "Ll"; "scan"; "Lm"; "post"; "Ul"; "Um" ] in
  let branch1 = [ "Lc"; "readc"; "Ls"; "reads"; "Uc"; "Us" ] in
  let chains = if eager then [ branch1; branch2 ] else [ branch2 @ branch1 ] in
  Builder.make_exn db ~name:"audit" ~steps ~chains ()

let report label sys =
  Printf.printf "\n--- %s ---\n" label;
  System.validate_exn sys;
  (match Twosite.decide sys with
  | Twosite.Safe -> Printf.printf "Theorem 2: SAFE\n"
  | Twosite.Unsafe cert ->
      Printf.printf "Theorem 2: UNSAFE\n";
      Format.printf "%a@." (Certificate.pp sys) cert);
  let rate = Distlock_sim.Engine.violation_rate sys in
  Printf.printf "simulator: %.0f%% of 100 random runs non-serializable\n"
    (100. *. rate)

let () =
  let db1 = db () in
  report "eager lock release (both transactions)"
    (System.make db1 [ transfer db1 ~eager:true; audit db1 ~eager:true ]);

  let db2 = db () in
  report "ordered branches (still not two-phase)"
    (System.make db2 [ transfer db2 ~eager:false; audit db2 ~eager:false ]);

  let db3 = db () in
  let two_phase t = Option.get (Policy.make_two_phase t) in
  report "two-phase repair"
    (System.make db3
       [ two_phase (transfer db3 ~eager:true); two_phase (audit db3 ~eager:true) ]);

  (* A single traced run: where does the time go? *)
  Printf.printf "\n--- traced run (two-phase repair, seed 7) ---\n";
  let db4 = db () in
  let traced =
    System.make db4
      [ two_phase (transfer db4 ~eager:true); two_phase (audit db4 ~eager:true) ]
  in
  (match Distlock_sim.Engine.run ~policy:(Distlock_sim.Engine.Random 7) traced with
  | Error m -> Printf.printf "run failed: %s\n" m
  | Ok o ->
      let report = Distlock_sim.Trace.analyze traced o.Distlock_sim.Engine.trace in
      Format.printf "%a@." (Distlock_sim.Trace.pp_report traced) report);

  (* Throughput view: many instances under the simulator. *)
  Printf.printf "\n--- workload: 6 concurrent transactions, 8 entities ---\n";
  let rng = Random.State.make [| 2024 |] in
  List.iter
    (fun (label, style) ->
      let wdb = Database.create () in
      Database.add_all wdb
        (List.init 8 (fun i -> (Printf.sprintf "acct%d" i, 1 + (i mod 2))));
      let sys =
        Distlock_sim.Workload.make rng ~db:wdb ~style ~num_txns:6
          ~entities_per_txn:3
      in
      let summary = Distlock_sim.Workload.measure sys in
      Format.printf "%-22s %a@." label Distlock_sim.Workload.pp_summary summary)
    [
      ("two-phase:", Distlock_sim.Workload.Two_phase);
      ("sequential sections:", Distlock_sim.Workload.Sequential);
      ("random locked:", Distlock_sim.Workload.Random_locked 0.3);
    ]
