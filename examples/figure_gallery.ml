(* Reproduces the paper's worked examples (Figs 1, 2, 3, 5) end to end,
   cross-checking each verdict against the brute-force oracle.

   Run with: dune exec examples/figure_gallery.exe *)

open Distlock_core
open Distlock_txn

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let show_dgraph sys =
  let d = Dgraph.build_pair sys in
  Format.printf "%a@." (Dgraph.pp (System.db sys)) d;
  Printf.printf "strongly connected: %b\n" (Dgraph.is_strongly_connected d)

let show_verdict sys =
  match Safety.decide_pair ~exhaustive_budget:5_000_000 sys with
  | Safety.Safe why -> Printf.printf "verdict: SAFE — %s\n" why
  | Safety.Unsafe ev ->
      Printf.printf "verdict: UNSAFE\n";
      (match ev with
      | Safety.Certificate c -> Format.printf "%a@." (Certificate.pp sys) c
      | Safety.Counterexample h ->
          Printf.printf "  schedule: %s\n" (Distlock_sched.Schedule.to_string sys h))
  | Safety.Unknown m -> Printf.printf "verdict: UNKNOWN — %s\n" m

let cross_check sys =
  match Brute.safe_by_extensions sys with
  | Brute.Safe -> Printf.printf "oracle (Lemma 1 over all pictures): SAFE\n"
  | Brute.Unsafe _ -> Printf.printf "oracle (Lemma 1 over all pictures): UNSAFE\n"
  | Brute.Exhausted _ ->
      Printf.printf "oracle (Lemma 1 over all pictures): budget exhausted\n"

let () =
  rule "Fig 1: an unsafe two-site system";
  let sys = Figures.fig1 () in
  print_string (Parse.system_to_string sys);
  show_dgraph sys;
  show_verdict sys;
  cross_check sys;

  rule "Fig 2: two totally ordered transactions (Proposition 1)";
  let sys = Figures.fig2 () in
  print_string (Parse.system_to_string sys);
  let plane = Distlock_geometry.Plane.make sys in
  List.iter
    (fun r ->
      Format.printf "rectangle %a@." (Distlock_geometry.Rect.pp (System.db sys)) r)
    (Distlock_geometry.Plane.rectangles plane);
  (match Distlock_geometry.Separation.decide plane with
  | Distlock_geometry.Separation.Safe -> Printf.printf "picture: SAFE\n"
  | Distlock_geometry.Separation.Unsafe { schedule; below; above } ->
      Printf.printf "picture: UNSAFE — the path separates {%s} from {%s}\n"
        (String.concat ","
           (List.map (Database.name (System.db sys)) below))
        (String.concat ","
           (List.map (Database.name (System.db sys)) above));
      Printf.printf "schedule: %s\n" (Distlock_sched.Schedule.to_string sys schedule);
      Printf.printf "the geometric picture (rectangles and the separating staircase):\n%s"
        (Distlock_geometry.Render.plane ~schedule plane));
  cross_check sys;

  rule "Fig 3: Lemma 1 — unsafe although one picture is safe";
  let sys = Figures.fig3 () in
  show_dgraph sys;
  show_verdict sys;
  let t1, t2 = System.pair sys in
  let safe = ref 0 and unsafe = ref 0 in
  Distlock_order.Linext.iter (Txn.order t1) (fun e1 ->
      let e1 = Array.copy e1 in
      Distlock_order.Linext.iter (Txn.order t2) (fun e2 ->
          let plane =
            Distlock_geometry.Plane.of_extensions sys e1 (Array.copy e2)
          in
          if Distlock_geometry.Separation.is_safe plane then incr safe
          else incr unsafe));
  Printf.printf "pictures: %d safe, %d unsafe — safety is a property of ALL pictures\n"
    !safe !unsafe;

  rule "Fig 5: four sites — strong connectivity is not necessary";
  let sys = Figures.fig5 () in
  show_dgraph sys;
  (* The only dominator is {x1, x2}, and its closure is contradictory. *)
  let d = Dgraph.build_pair sys in
  List.iter
    (fun x ->
      let entities = Dgraph.entity_set d x in
      let names =
        String.concat "," (List.map (Database.name (System.db sys)) entities)
      in
      match Closure.close sys ~dominator:entities with
      | Closure.Closed _ -> Printf.printf "dominator {%s}: closure SUCCEEDS\n" names
      | Closure.Failed (Closure.Would_cycle { txn }) ->
          Printf.printf
            "dominator {%s}: closure forces a cycle in T%d — no certificate\n"
            names (txn + 1)
      | Closure.Failed Closure.Dominator_lost ->
          Printf.printf "dominator {%s}: dominator lost during closure\n" names)
    (Dgraph.dominators d);
  show_verdict sys;
  cross_check sys
