(* Theorem 3 live: satisfiability decided through distributed locking.

   We take a formula, encode it as the pair {T1(F), T2(F)} of multisite
   transactions, and decide its satisfiability twice: once with DPLL, once
   by hunting for a dominator of D(T1,T2) whose closure succeeds
   (Corollary 2) — which exists iff the system is unsafe iff F is
   satisfiable.

   Run with: dune exec examples/sat_to_txn.exe *)

open Distlock_core
open Distlock_sat
open Distlock_txn

let demo name f =
  Printf.printf "\n=== %s: %s ===\n" name (Format.asprintf "%a" Cnf.pp f);
  assert (Cnf.is_restricted f);
  let gadget = Reduction.encode f in
  let sys = Reduction.system gadget in
  Printf.printf "gadget: %d entities, each on its own site; %d steps per transaction\n"
    (Reduction.num_entities gadget)
    (Txn.num_steps (System.txn sys 0));
  let d = Reduction.dgraph gadget in
  Printf.printf "D(T1,T2): %d vertices, %d arcs, strongly connected: %b\n"
    (Dgraph.num_vertices d)
    (Distlock_graph.Digraph.num_arcs (Dgraph.graph d))
    (Dgraph.is_strongly_connected d);
  let dpll = Dpll.is_satisfiable f in
  Printf.printf "DPLL: %s\n" (if dpll then "SATISFIABLE" else "UNSATISFIABLE");
  (match Reduction.decide_unsafe_by_closure gadget with
  | Some (dominator, closed) ->
      let a = Reduction.assignment_of_dominator gadget dominator in
      Printf.printf "locking: UNSAFE — dominator decodes to assignment [%s]\n"
        (String.concat ";"
           (Array.to_list (Array.map (fun b -> if b then "1" else "0") a)));
      assert (Cnf.eval a f);
      (match Certificate.construct ~original:sys ~closed ~dominator with
      | Ok cert ->
          Printf.printf
            "certificate: a legal non-serializable schedule of %d steps \
             (verified: %b)\n"
            (Distlock_sched.Schedule.length cert.Certificate.schedule)
            (Certificate.verify sys cert)
      | Error m -> Printf.printf "certificate failed: %s\n" m)
  | None -> Printf.printf "locking: SAFE — hence unsatisfiable\n");
  assert (dpll = (Reduction.decide_unsafe_by_closure gadget <> None))

let () =
  demo "satisfiable"
    (Cnf.make ~num_vars:3
       [
         [ Cnf.pos 0; Cnf.pos 1 ];
         [ Cnf.neg 0; Cnf.pos 2 ];
         [ Cnf.pos 1; Cnf.neg 2 ];
       ]);
  demo "unsatisfiable"
    (Cnf.make ~num_vars:5
       [
         [ Cnf.neg 1; Cnf.pos 0 ];
         [ Cnf.pos 0; Cnf.pos 1 ];
         [ Cnf.neg 2; Cnf.pos 1 ];
         [ Cnf.pos 2; Cnf.pos 4 ];
         [ Cnf.pos 3; Cnf.pos 4 ];
         [ Cnf.neg 0; Cnf.neg 3 ];
         [ Cnf.pos 3; Cnf.neg 4 ];
       ]);
  (* An arbitrary (non-restricted) formula through the normalizer. *)
  let arbitrary =
    Cnf.make ~num_vars:2
      [
        [ Cnf.pos 0; Cnf.pos 1 ]; [ Cnf.neg 0; Cnf.pos 1 ];
        [ Cnf.pos 0; Cnf.neg 1 ]; [ Cnf.neg 0; Cnf.neg 1 ];
      ]
  in
  Printf.printf "\n=== arbitrary CNF through the normalizer: %s ===\n"
    (Format.asprintf "%a" Cnf.pp arbitrary);
  Printf.printf "DPLL: %b, via locking: %b (both should be false)\n"
    (Dpll.is_satisfiable arbitrary)
    (Reduction.sat_via_safety arbitrary)
