(* Quickstart: build a distributed locked transaction system, test its
   safety, read the certificate, and repair it with two-phase locking.

   Run with: dune exec examples/quickstart.exe *)

open Distlock_core
open Distlock_txn

let () =
  (* A database distributed over two sites. *)
  let db = Database.create () in
  Database.add_all db [ ("x", 1); ("z", 2) ];

  (* Two transactions that each lock x (site 1) and z (site 2), with no
     ordering between the two sites' sections: the classic distributed
     mistake. *)
  let t1 =
    Builder.make_exn db ~name:"T1"
      ~steps:
        [
          ("Lx", `Lock "x"); ("ux", `Update "x"); ("Ux", `Unlock "x");
          ("Lz", `Lock "z"); ("uz", `Update "z"); ("Uz", `Unlock "z");
        ]
      ~chains:[ [ "Lx"; "ux"; "Ux" ]; [ "Lz"; "uz"; "Uz" ] ]
      ()
  in
  let t2 =
    Builder.make_exn db ~name:"T2"
      ~steps:
        [
          ("Lx", `Lock "x"); ("ux", `Update "x"); ("Ux", `Unlock "x");
          ("Lz", `Lock "z"); ("uz", `Update "z"); ("Uz", `Unlock "z");
        ]
      ~chains:[ [ "Lx"; "ux"; "Ux" ]; [ "Lz"; "uz"; "Uz" ] ]
      ()
  in
  let sys = System.make db [ t1; t2 ] in
  System.validate_exn sys;

  (* The safety test (Theorem 2: exact for two sites, O(n^2)). *)
  Printf.printf "D(T1,T2):\n";
  Format.printf "%a@." (Dgraph.pp db) (Dgraph.build_pair sys);
  (match Twosite.decide sys with
  | Twosite.Safe -> Printf.printf "system is SAFE\n"
  | Twosite.Unsafe cert ->
      Printf.printf "system is UNSAFE; certificate:\n";
      Format.printf "%a@." (Certificate.pp sys) cert);

  (* Repair: make both transactions two-phase and re-test. *)
  let repair t = Option.get (Policy.make_two_phase t) in
  let fixed = System.make db [ repair t1; repair t2 ] in
  Printf.printf "\nafter two-phase repair:\n";
  (match Twosite.decide fixed with
  | Twosite.Safe ->
      Printf.printf "system is SAFE (D is complete: %b)\n"
        (Policy.strong_2pl_is_dgraph_complete fixed)
  | Twosite.Unsafe _ -> Printf.printf "still unsafe?!\n");

  (* Watch both under the lock-manager simulator. *)
  let rate sys = Distlock_sim.Engine.violation_rate sys in
  Printf.printf
    "\nsimulator, 100 random schedules each:\n\
    \  unlocked-early version: %.0f%% non-serializable histories\n\
    \  two-phase version:      %.0f%% non-serializable histories\n"
    (100. *. rate sys) (100. *. rate fixed)
