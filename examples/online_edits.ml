(* Online edits: keep a transaction system under an incremental session
   and re-decide after each change, paying only for the pairs and cycles
   the edit actually touched.

   Run with: dune exec examples/online_edits.exe *)

open Distlock_core
open Distlock_txn

let () =
  (* An order-processing mix over two sites: stock and ledger on site 1,
     the shipping queue on site 2. *)
  let db = Database.create () in
  Database.add_all db [ ("stock", 1); ("ledger", 1); ("queue", 2) ];
  let two_phase name es = Builder.two_phase_sequence db ~name es in
  let restock = two_phase "restock" [ "stock"; "queue" ] in
  let fulfil = two_phase "fulfil" [ "ledger"; "queue" ] in
  let audit = two_phase "audit" [ "stock"; "ledger" ] in

  let session = Incremental.create db [ restock; fulfil; audit ] in
  let show label =
    let o = Incremental.decide_delta session in
    let verdict =
      match o.Incremental.verdict with
      | Incremental.Safe -> "SAFE"
      | Incremental.Unsafe r ->
          "UNSAFE — "
          ^ Decision.describe_multi (Incremental.system session) r
      | Incremental.Unknown m -> "UNKNOWN — " ^ m
    in
    Printf.printf "%-28s %s\n" label verdict;
    Printf.printf
      "%-28s pairs: %d reused, %d re-decided; cycles: %d reused, %d \
       re-judged\n"
      "" o.Incremental.pairs_reused o.Incremental.pairs_redecided
      o.Incremental.cycles_reused o.Incremental.cycles_rejudged
  in

  (* Base: three two-phase transactions in a conflict triangle. *)
  show "base (3 two-phase txns):";

  (* A deploy rewrites fulfil with loose per-entity critical sections
     spanning both sites — the classic distributed mistake. Only the
     two pairs through fulfil re-run; the audit-restock pair and its
     fingerprint are untouched. *)
  let loose_fulfil =
    Builder.make_exn db ~name:"fulfil"
      ~steps:
        [
          ("Ls", `Lock "stock"); ("Us", `Unlock "stock");
          ("Lq", `Lock "queue"); ("Uq", `Unlock "queue");
        ]
      ~arcs:[ ("Ls", "Us"); ("Lq", "Uq") ]
      ()
  in
  Incremental.replace_txn session "fulfil" loose_fulfil;
  show "deploy loose fulfil:";

  (* Roll back: every pair fingerprint matches one already decided, so
     the verdict is free — nothing re-runs at all. *)
  Incremental.replace_txn session "fulfil" fulfil;
  show "roll back:";

  (* Grow the workload: a reporting transaction that only reads the
     ledger cannot conflict with more than one running pair. *)
  Incremental.add_txn session (two_phase "report" [ "ledger" ]);
  show "add report txn:";

  (* Retire restock; its cached verdicts simply stop mattering. *)
  Incremental.remove_txn session "restock";
  show "remove restock:"
