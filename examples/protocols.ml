(* Beyond two-phase locking: the tree protocol, automatic safety repair,
   and deadlock geometry.

   Three tools the paper's framework gives a scheduler designer:

   1. Non-two-phase safety. The tree protocol of [12] locks along a
      hierarchy and releases early, yet every system of conforming
      transactions is safe — our checker proves a sample pair safe while
      rejecting two-phase-ness.
   2. Repair. An unsafe pair can be made safe by inserting precedences
      (cross-site synchronization messages) until D(T1,T2) is strongly
      connected (Theorem 1).
   3. Deadlock. Safety and deadlock are different axes: the geometric
      method also finds the reachable deadlock states of a pair, with a
      driving prefix.

   Run with: dune exec examples/protocols.exe *)

open Distlock_core
open Distlock_txn

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  (* -------------------------------------------------------------- *)
  section "1. The tree protocol: safe but not two-phase";
  let db = Database.create () in
  Database.add_all db
    [ ("root", 1); ("left", 1); ("right", 2); ("leaf", 2) ];
  let forest =
    Tree_policy.forest_exn db
      [ ("left", "root"); ("right", "root"); ("leaf", "left") ]
  in
  (* Walk root -> left -> leaf, releasing each parent once its child is
     locked: early release, so NOT two-phase. *)
  let walker name =
    Builder.total db ~name
      [
        `Lock "root"; `Lock "left"; `Unlock "root"; `Lock "leaf";
        `Unlock "left"; `Unlock "leaf";
      ]
  in
  let t1 = walker "T1" and t2 = walker "T2" in
  Printf.printf "follows tree protocol: %b, two-phase: %b\n"
    (Tree_policy.follows forest t1)
    (Policy.is_two_phase_strong t1);
  let sys = System.make db [ t1; t2 ] in
  (match Twosite.decide sys with
  | Twosite.Safe -> Printf.printf "Theorem 2: SAFE (despite early release)\n"
  | Twosite.Unsafe _ -> Printf.printf "unexpected: unsafe\n");
  (* Breaking the protocol breaks safety. *)
  let rogue =
    Builder.total db ~name:"rogue"
      [ `Lock "leaf"; `Unlock "leaf"; `Lock "root"; `Unlock "root" ]
  in
  Printf.printf "rogue follows protocol: %b — %s\n"
    (Tree_policy.follows forest rogue)
    (String.concat "; " (Tree_policy.violations forest rogue));
  let sys_rogue = System.make db [ t1; rogue ] in
  (match Twosite.decide sys_rogue with
  | Twosite.Safe -> Printf.printf "with rogue: safe (this pair happens to be)\n"
  | Twosite.Unsafe cert ->
      Printf.printf "with rogue: UNSAFE —\n";
      Format.printf "%a@." (Certificate.pp sys_rogue) cert);

  (* -------------------------------------------------------------- *)
  section "2. Repairing an unsafe system by inserted synchronization";
  let db2 = Database.create () in
  Database.add_all db2 [ ("x", 1); ("z", 2) ];
  let mk name =
    Builder.make_exn db2 ~name
      ~steps:
        [
          ("Lx", `Lock "x"); ("Ux", `Unlock "x"); ("Lz", `Lock "z");
          ("Uz", `Unlock "z");
        ]
      ~arcs:[ ("Lx", "Ux"); ("Lz", "Uz") ]
      ()
  in
  let unsafe_sys = System.make db2 [ mk "T1"; mk "T2" ] in
  Printf.printf "before: safe = %b\n" (Twosite.is_safe unsafe_sys);
  (match Repair.make_safe unsafe_sys with
  | None -> Printf.printf "no repair found\n"
  | Some (fixed, insertions) ->
      Printf.printf "after: safe = %b, %d precedence(s) inserted:\n"
        (Twosite.is_safe fixed) (List.length insertions);
      List.iter
        (fun { Repair.txn; before; after } ->
          let t = System.txn fixed txn in
          Printf.printf "  T%d: %s before %s\n" (txn + 1) (Txn.label t before)
            (Txn.label t after))
        insertions;
      Printf.printf "concurrency loss: %d newly ordered step pairs\n"
        (Repair.concurrency_loss ~before:unsafe_sys ~after:fixed));

  (* -------------------------------------------------------------- *)
  section "3. Deadlock geometry";
  let db3 = Database.create () in
  Database.add_all db3 [ ("x", 1); ("y", 2) ];
  let a = Builder.two_phase_sequence db3 ~name:"A" [ "x"; "y" ] in
  let b = Builder.two_phase_sequence db3 ~name:"B" [ "y"; "x" ] in
  let square = System.make db3 [ a; b ] in
  let plane = Distlock_geometry.Plane.make square in
  Printf.printf "opposite lock orders: safe = %b, deadlock possible = %b\n"
    (Distlock_geometry.Separation.is_safe plane)
    (Distlock_geometry.Deadlock.possible plane);
  (match Distlock_geometry.Deadlock.witness_prefix plane with
  | Some prefix ->
      Printf.printf "a prefix that deadlocks: %s\n"
        (String.concat " "
           (List.map
              (fun (ti, s) ->
                Printf.sprintf "%s_%d"
                  (Step.to_string db3 (Txn.step (System.txn square ti) s))
                  (ti + 1))
              prefix))
  | None -> Printf.printf "no witness\n");
  Printf.printf
    "same lock orders:    safe = %b, deadlock possible = %b\n"
    (Distlock_geometry.Separation.is_safe
       (Distlock_geometry.Plane.make
          (let a = Builder.two_phase_sequence db3 ~name:"A2" [ "x"; "y" ] in
           let b = Builder.two_phase_sequence db3 ~name:"B2" [ "x"; "y" ] in
           System.make db3 [ a; b ])))
    (Distlock_geometry.Deadlock.possible
       (Distlock_geometry.Plane.make
          (let a = Builder.two_phase_sequence db3 ~name:"A3" [ "x"; "y" ] in
           let b = Builder.two_phase_sequence db3 ~name:"B3" [ "x"; "y" ] in
           System.make db3 [ a; b ])))
