(* A three-site warehouse: stock at site 1, orders at site 2, shipping
   manifests at site 3. Three transactions — restock, order fulfilment,
   and a manifest reconciler — run concurrently; safety of the trio is
   decided with Proposition 2 (conflict-graph cycles and the B_c graphs)
   and cross-checked against the exhaustive oracle and the simulator.

   Run with: dune exec examples/inventory.exe *)

open Distlock_core
open Distlock_txn

let db () =
  let db = Database.create () in
  Database.add_all db
    [ ("stock", 1); ("reserved", 1); ("orders", 2); ("manifest", 3) ];
  db

let restock db ~two_phase =
  if two_phase then
    Builder.two_phase_sequence db ~name:"restock" [ "stock"; "manifest" ]
  else
    Builder.total db ~name:"restock"
      [
        `Lock "stock"; `Update "stock"; `Unlock "stock"; `Lock "manifest";
        `Update "manifest"; `Unlock "manifest";
      ]

let fulfil db ~two_phase =
  if two_phase then
    Builder.two_phase_sequence db ~name:"fulfil" [ "orders"; "stock"; "reserved" ]
  else
    Builder.locked_sequence db ~name:"fulfil" [ "orders"; "stock"; "reserved" ]

let reconcile db ~two_phase =
  if two_phase then
    Builder.two_phase_sequence db ~name:"reconcile" [ "manifest"; "orders" ]
  else
    Builder.locked_sequence db ~name:"reconcile" [ "manifest"; "orders" ]

let report label sys =
  Printf.printf "\n--- %s ---\n" label;
  System.validate_exn sys;
  let g = Multisite.conflict_graph sys in
  Printf.printf "conflict graph: %d arcs; simple cycles: %d\n"
    (Distlock_graph.Digraph.num_arcs g)
    (List.length (Multisite.simple_cycles g));
  (match Multisite.decide sys with
  | Multisite.Safe -> Printf.printf "Proposition 2: SAFE\n"
  | Multisite.Unsafe (Multisite.Unsafe_pair (i, j)) ->
      Printf.printf "Proposition 2: UNSAFE — pair (%s, %s)\n"
        (Txn.name (System.txn sys i))
        (Txn.name (System.txn sys j))
  | Multisite.Unsafe (Multisite.Acyclic_bc c) ->
      Printf.printf "Proposition 2: UNSAFE — cycle %s has acyclic B_c\n"
        (String.concat "->" (List.map (fun i -> Txn.name (System.txn sys i)) c)));
  (match Brute.safe_by_schedules ~limit:5_000_000 sys with
  | Brute.Safe -> Printf.printf "oracle: SAFE\n"
  | Brute.Unsafe h ->
      Printf.printf "oracle: UNSAFE, e.g.\n  %s\n"
        (Distlock_sched.Schedule.to_string sys h)
  | Brute.Exhausted _ -> Printf.printf "oracle: (too many schedules)\n");
  let rate = Distlock_sim.Engine.violation_rate sys in
  Printf.printf "simulator: %.0f%% non-serializable histories\n" (100. *. rate)

let () =
  let d1 = db () in
  report "sequential lock sections everywhere"
    (System.make d1
       [
         restock d1 ~two_phase:false; fulfil d1 ~two_phase:false;
         reconcile d1 ~two_phase:false;
       ]);
  (* One straggler is enough to spoil the whole system: even with fulfil
     and reconcile two-phase, the sequential restock leaves a conflict
     cycle with an acyclic B_c. *)
  let d2 = db () in
  report "two-phase fulfilment and reconciliation, sequential restock"
    (System.make d2
       [
         restock d2 ~two_phase:false; fulfil d2 ~two_phase:true;
         reconcile d2 ~two_phase:true;
       ]);
  let d3 = db () in
  report "two-phase everywhere"
    (System.make d3
       [
         restock d3 ~two_phase:true; fulfil d3 ~two_phase:true;
         reconcile d3 ~two_phase:true;
       ])
