(* Shared locks: how read-mostly workloads regain safety.

   The paper notes (Section 1) that lock variants like shared locks
   "change the theory very little": the same strong-connectivity test
   applies, but only entities on which the two transactions genuinely
   conflict — at least one side exclusive — enter the digraph. A pair
   that is unsafe under all-exclusive locking can become provably safe
   once its read locks are downgraded to shared: the read-read entities
   drop out of D(T1,T2) entirely.

   Run with: dune exec examples/read_mostly.exe *)

open Distlock_txn
open Distlock_rw

let db () =
  let db = Database.create () in
  Database.add_all db [ ("catalog", 1); ("orders", 2) ];
  db

(* Both transactions read the catalog (site 1) and update the order book
   (site 2), with the two sections unordered — the Fig 1 shape. *)
let reporter db ~catalog_mode name =
  let steps =
    [|
      { Rw_txn.action = Rw_txn.Lock catalog_mode; entity = Database.id_exn db "catalog" };
      { Rw_txn.action = Rw_txn.Unlock; entity = Database.id_exn db "catalog" };
      { Rw_txn.action = Rw_txn.Lock Rw_txn.Exclusive; entity = Database.id_exn db "orders" };
      { Rw_txn.action = Rw_txn.Unlock; entity = Database.id_exn db "orders" };
    |]
  in
  let labels =
    [|
      (match catalog_mode with Rw_txn.Shared -> "SLcat" | Rw_txn.Exclusive -> "XLcat");
      "Ucat"; "XLord"; "Uord";
    |]
  in
  Rw_txn.make ~name ~labels ~steps
    (Option.get (Distlock_order.Poset.of_arcs 4 [ (0, 1); (2, 3) ]))

let report label sys =
  Printf.printf "\n--- %s ---\n" label;
  assert (Rw_system.validate sys = []);
  let db = Rw_system.db sys in
  let conflicting = Rw_system.conflicting_common sys in
  Printf.printf "conflicting entities: {%s}\n"
    (String.concat ", " (List.map (Database.name db) conflicting));
  let verdict = Rw_safety.twosite_decide sys in
  Printf.printf "two-site test: %s\n" (if verdict then "SAFE" else "UNSAFE");
  Printf.printf "exhaustive oracle: %s\n"
    (if Rw_system.safe sys then "SAFE" else "UNSAFE")

let () =
  let d1 = db () in
  report "catalog locked EXCLUSIVELY by both (over-locking reads)"
    (Rw_system.make d1
       [
         reporter d1 ~catalog_mode:Rw_txn.Exclusive "T1";
         reporter d1 ~catalog_mode:Rw_txn.Exclusive "T2";
       ]);
  let d2 = db () in
  report "catalog locked SHARED by both (reads declared as reads)"
    (Rw_system.make d2
       [
         reporter d2 ~catalog_mode:Rw_txn.Shared "T1";
         reporter d2 ~catalog_mode:Rw_txn.Shared "T2";
       ]);
  Printf.printf
    "\nWith exclusive catalog locks the two entities form a disconnected\n\
     D(T1,T2) — unsafe (the Fig 1 pattern). Declaring the catalog reads\n\
     shared removes that entity from D entirely: one conflicting entity\n\
     remains, and a single rectangle cannot be separated from anything.\n"
