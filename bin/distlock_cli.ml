(* distlock — command-line front end.

   Subcommands:
     check     decide safety of a transaction system file
     batch     decide many files at once through the cached engine
     mutate    decide a stream of edits of one system incrementally
     dgraph    print D(T1,T2) (optionally as Graphviz)
     figures   print the paper's worked examples with verdicts
     reduce    encode a DIMACS CNF as a transaction system (Theorem 3)
     simulate  run the lock-manager simulator on a system file *)

open Cmdliner
open Distlock_core
open Distlock_txn
module E = Distlock_engine
module Obs = Distlock_obs.Obs
module J = Distlock_obs.Json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_system path =
  match Parse.system_of_string (read_file path) with
  | Ok sys -> sys
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2

(* Engines whose per-instance metrics `--metrics` exports alongside the
   global registry. Subcommands run at most one engine per invocation,
   so the Prometheus output never carries duplicate samples. *)
let metric_engines : Decision.t list ref = ref []

let register_engine e =
  metric_engines := e :: !metric_engines;
  e

(* Engine-less stats sinks (the `mutate` session) exported the same way. *)
let metric_stats : E.Stats.t list ref = ref []

let register_stats s =
  metric_stats := s :: !metric_stats;
  s

(* One engine instance shared by every decision the process makes, so
   repeated systems (e.g. across `figures`) hit the verdict cache. *)
let engine = lazy (register_engine (Decision.create ()))

(* ------------------------------------------------------------------ *)
(* Observability flags. [--metrics] and [--log-level] are uniform across
   subcommands; [--trace] means "JSONL spans/events" everywhere except
   `simulate`, where it exports the step event stream instead. *)

let dump_metrics path =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Distlock_obs.Registry.pp_prometheus ppf Obs.global;
  List.iter
    (fun e -> E.Stats.pp_prometheus ppf (Decision.stats e))
    !metric_engines;
  List.iter (fun s -> E.Stats.pp_prometheus ppf s) !metric_stats;
  Format.pp_print_flush ppf ();
  close_out oc

(* The flight recorder rides along on every invocation: a bounded ring
   of the most recent spans/events, dumped to stderr (with a Gc snapshot
   and the current counter/histogram values) when a decision ends
   Unknown or a --verify cross-check diverges. Cheap enough to leave on;
   bench E18 measures the overhead. *)
let install_recorder () =
  let r = Distlock_obs.Recorder.create () in
  Distlock_obs.Recorder.set_registries r (fun () ->
      ("global", Obs.global)
      :: List.map
           (fun e -> ("engine", E.Stats.registry (Decision.stats e)))
           !metric_engines
      @ List.map (fun s -> ("session", E.Stats.registry s)) !metric_stats);
  Distlock_obs.Recorder.set_global (Some r);
  Distlock_obs.Recorder.sink r

(* The same registry set the flight recorder snapshots — evaluated per
   request, so engines created after the server starts are scraped too. *)
let serve_registries () =
  ("global", Obs.global)
  :: List.map
       (fun e -> ("engine", E.Stats.registry (Decision.stats e)))
       !metric_engines
  @ List.map (fun s -> ("session", E.Stats.registry s)) !metric_stats

let start_metrics_server port =
  match Distlock_obs.Expose.start ~port ~registries:serve_registries () with
  | Ok srv ->
      (* The bound port goes to stderr so it never perturbs stdout
         expectations; with --metrics-port 0 it is the only way to learn
         the ephemeral port. *)
      Printf.eprintf "metrics: serving on http://127.0.0.1:%d/metrics\n%!"
        (Distlock_obs.Expose.port srv);
      at_exit (fun () -> Distlock_obs.Expose.stop srv);
      srv
  | Error msg ->
      Printf.eprintf "distlock: %s\n" msg;
      exit 2

let setup_obs span_trace chrome metrics metrics_port level =
  Obs.set_level level;
  (match metrics_port with
  | None -> ()
  | Some port -> ignore (start_metrics_server port));
  let sinks = ref [ install_recorder () ] in
  (match span_trace with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      sinks := Distlock_obs.Sink.jsonl oc :: !sinks;
      at_exit (fun () ->
        Obs.flush ();
        close_out oc));
  (match chrome with
  | None -> ()
  | Some path ->
      let sink, render = Distlock_obs.Trace_export.collector () in
      sinks := sink :: !sinks;
      at_exit (fun () ->
        Obs.flush ();
        let oc = open_out path in
        render oc;
        close_out oc));
  (match !sinks with
  | [] -> ()
  | s :: rest ->
      Obs.set_sink (List.fold_left Distlock_obs.Sink.tee s rest));
  match metrics with
  | None -> ()
  | Some path -> at_exit (fun () -> dump_metrics path)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "On exit, write the accumulated metrics (engine counters, \
           stage latency histograms, simulator totals) to $(docv) in \
           Prometheus text exposition format")

let metrics_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:
          "Serve live telemetry over HTTP on 127.0.0.1:$(docv) for the \
           duration of the run: $(b,/metrics) (Prometheus text), \
           $(b,/healthz), and $(b,/vars) (JSON snapshot). Port 0 picks a \
           free port; the bound address is printed to stderr")

let log_level_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("error", Obs.Error); ("warn", Obs.Warn); ("info", Obs.Info);
             ("debug", Obs.Debug) ])
        Obs.Info
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Event verbosity for $(b,--trace): $(docv) is error, warn, \
           info, or debug (debug adds per-lock traffic)")

let chrome_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome-trace" ] ~docv:"FILE"
        ~doc:
          "Write the span/event stream as a Chrome trace-event JSON file \
           to $(docv) — open it in chrome://tracing or Perfetto; one \
           thread track per OCaml domain")

(* Full setup: --trace carries structured spans/events as JSON Lines. *)
let obs_setup =
  let span_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write structured spans and events (engine pipeline stages, \
             simulator lifecycle) as JSON Lines to $(docv)")
  in
  Term.(const setup_obs $ span_trace $ chrome_trace_arg $ metrics_arg
        $ metrics_port_arg $ log_level_arg)

(* Reduced setup for `simulate`, which owns the --trace flag (the step
   stream) but still exports its spans via --chrome-trace. *)
let obs_setup_no_trace =
  Term.(const setup_obs $ const None $ chrome_trace_arg $ metrics_arg
        $ metrics_port_arg $ log_level_arg)

let print_stats (o : Decision.evidence E.Outcome.t) =
  Format.printf "--@.procedure: %s%s@." (E.Outcome.provenance o)
    (if o.E.Outcome.cached then " (cached)" else "");
  Format.printf "%a@." E.Outcome.pp_trace o.E.Outcome.trace;
  Format.printf "%a@." E.Stats.pp (Decision.stats (Lazy.force engine))

(* Returns an exit status: 0 safe, 1 unsafe, 3 unknown. *)
let print_outcome ?(stats = false) sys (o : Decision.evidence E.Outcome.t) =
  let code =
    match o.E.Outcome.verdict with
    | E.Outcome.Safe ->
        if System.num_txns sys = 2 then
          Printf.printf "SAFE — %s\n" o.E.Outcome.detail
        else Printf.printf "SAFE — Proposition 2\n";
        0
    | E.Outcome.Unsafe (Decision.Pair ev) ->
        Printf.printf "UNSAFE\n";
        (match ev with
        | Safety.Certificate c -> Format.printf "%a@." (Certificate.pp sys) c
        | Safety.Counterexample h ->
            Printf.printf "non-serializable schedule:\n  %s\n"
              (Distlock_sched.Schedule.to_string sys h));
        1
    | E.Outcome.Unsafe (Decision.Multi reason) ->
        Printf.printf "UNSAFE — %s\n" (Decision.describe_multi sys reason);
        1
    | E.Outcome.Unknown msg ->
        Printf.printf "UNKNOWN — %s\n" msg;
        3
  in
  if stats then print_stats o;
  code

let print_verdict ?stats sys =
  print_outcome ?stats sys (Decision.decide (Lazy.force engine) sys)

let exit_code (o : _ E.Outcome.t) =
  match o.E.Outcome.verdict with
  | E.Outcome.Safe -> 0
  | E.Outcome.Unsafe _ -> 1
  | E.Outcome.Unknown _ -> 3

(* ------------------------------------------------------------------ *)
(* --json rendering: verdict, deciding procedure, stage trace, timings —
   machine-readable so CI stops parsing the pretty output. *)

let json_of_outcome ?file ?explain sys (o : Decision.evidence E.Outcome.t) =
  let verdict =
    match o.E.Outcome.verdict with
    | E.Outcome.Safe -> "safe"
    | E.Outcome.Unsafe _ -> "unsafe"
    | E.Outcome.Unknown _ -> "unknown"
  in
  let detail =
    match o.E.Outcome.verdict with
    | E.Outcome.Unsafe (Decision.Multi reason) -> Decision.describe_multi sys reason
    | _ -> o.E.Outcome.detail
  in
  let schedule =
    match o.E.Outcome.verdict with
    | E.Outcome.Unsafe ev -> (
        match Decision.schedule_of_evidence ev with
        | Some h ->
            [ ("schedule", J.Str (Distlock_sched.Schedule.to_string sys h)) ]
        | None -> [])
    | _ -> []
  in
  let stage (s : E.Outcome.stage_trace) =
    J.Obj
      ([
         ("stage", J.Str s.E.Outcome.stage);
         ("procedure", J.Str (E.Checker.procedure_label s.E.Outcome.procedure));
         ("status", J.Str (E.Outcome.status_label s.E.Outcome.status));
         ("detail", J.Str s.E.Outcome.detail);
         ("seconds", J.Float s.E.Outcome.seconds);
       ]
      (* Checker-reported measurements; absent (not empty) when a stage
         reported none, so pre-existing outputs are byte-identical. *)
      @
      if s.E.Outcome.attrs = [] then []
      else [ ("metrics", Distlock_obs.Attr.to_json s.E.Outcome.attrs) ])
  in
  J.Obj
    ((match file with Some f -> [ ("file", J.Str f) ] | None -> [])
    @ [
        ("verdict", J.Str verdict);
        ("procedure", J.Str (E.Outcome.provenance o));
        ("detail", J.Str detail);
        ("cached", J.Bool o.E.Outcome.cached);
        ("seconds", J.Float o.E.Outcome.seconds);
      ]
    @ schedule
    @ [ ("stages", J.List (List.map stage o.E.Outcome.trace)) ]
    @
    match explain with
    | None -> []
    | Some ex -> [ ("explain", E.Explain.to_json ex) ])

let json_of_report (r : E.Engine.batch_report) =
  J.Obj
    [
      ("submitted", J.Int r.E.Engine.submitted);
      ("unique", J.Int r.E.Engine.unique);
      ("batch_dedup_hits", J.Int r.E.Engine.batch_dedup_hits);
      ("cache_hits", J.Int r.E.Engine.cache_hits);
      ("cache_misses", J.Int r.E.Engine.cache_misses);
      ("pair_hits", J.Int r.E.Engine.pair_hits);
      ("pair_misses", J.Int r.E.Engine.pair_misses);
      ("pairs_redecided", J.Int r.E.Engine.pairs_redecided);
      ("hit_rate", J.Float (E.Engine.hit_rate r));
      ("seconds", J.Float r.E.Engine.batch_seconds);
      ("jobs", J.Int r.E.Engine.jobs);
      ( "per_procedure",
        J.Obj (List.map (fun (p, n) -> (p, J.Int n)) r.E.Engine.per_procedure)
      );
    ]

(* Engine counters and per-stage timing quantiles for --json --stats. *)
let json_of_stats st =
  let qs = E.Stats.quantiles st in
  J.Obj
    [
      ("decisions", J.Int (E.Stats.decisions st));
      ("unknowns", J.Int (E.Stats.unknowns st));
      ("cache_hits", J.Int (E.Stats.cache_hits st));
      ("cache_misses", J.Int (E.Stats.cache_misses st));
      ( "stages",
        J.List
          (List.map
             (fun (s : E.Stats.stage) ->
               let q50, q90, q99 =
                 match List.assoc_opt s.E.Stats.stage_name qs with
                 | Some t -> t
                 | None -> (Float.nan, Float.nan, Float.nan)
               in
               J.Obj
                 [
                   ("stage", J.Str s.E.Stats.stage_name);
                   ("runs", J.Int s.E.Stats.attempts);
                   ("safe", J.Int s.E.Stats.decided_safe);
                   ("unsafe", J.Int s.E.Stats.decided_unsafe);
                   ("passed", J.Int s.E.Stats.passed);
                   ("errors", J.Int s.E.Stats.errors);
                   ("skipped", J.Int s.E.Stats.skipped);
                   ("seconds", J.Float s.E.Stats.seconds);
                   ("p50_seconds", J.Float q50);
                   ("p90_seconds", J.Float q90);
                   ("p99_seconds", J.Float q99);
                 ])
             (E.Stats.stages st)) );
    ]

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Also print the deciding procedure, the per-stage pipeline trace, \
           and the engine's cumulative counters")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the verdict, deciding procedure, stage trace, and \
           timings as JSON instead of pretty text")

(* Bypass the staged engine and decide with one exhaustive oracle.
   Exit status mirrors `check`: 0 safe, 1 unsafe, 3 budget exhausted. *)
let run_oracle sys which =
  let name, verdict =
    match which with
    | `States -> ("state-graph", Brute.safe_by_states sys)
    | `Schedules -> ("schedule-enumeration", Brute.safe_by_schedules sys)
    | `Extensions ->
        if System.num_txns sys <> 2 then begin
          Printf.eprintf
            "error: --oracle extensions needs a two-transaction system\n";
          exit 2
        end;
        ("extension-pair", Brute.safe_by_extensions sys)
  in
  match verdict with
  | Brute.Safe ->
      Printf.printf "SAFE — exhaustive %s oracle\n" name;
      0
  | Brute.Unsafe h ->
      Printf.printf "UNSAFE — exhaustive %s oracle\n" name;
      Printf.printf "non-serializable schedule:\n  %s\n"
        (Distlock_sched.Schedule.to_string sys h);
      1
  | Brute.Exhausted { examined; limit } ->
      Printf.printf "UNKNOWN — %s oracle exhausted its budget (%d of %d)\n"
        name examined limit;
      3

let explain_flag =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Emit the full decision-provenance record: every pipeline \
           stage with status and timing (including inapplicable and \
           not-reached stages), cache and pair-cache disposition, and \
           state-graph oracle statistics. With $(b,--json), embedded as \
           an $(i,explain) object")

let check_cmd =
  let run () file oracle budget explain stats json =
    let sys = load_system file in
    (match System.validate sys with
    | [] -> ()
    | vs ->
        List.iter
          (fun (t, v) ->
            Printf.eprintf "warning: %s: %s\n" (Txn.name t)
              (Validate.to_string (System.db sys) t v))
          vs);
    match oracle with
    | Some which -> exit (run_oracle sys which)
    | None ->
        let budget = Option.map E.Budget.of_steps budget in
        let eng = Lazy.force engine in
        let o = Decision.decide ?budget eng sys in
        let ex = if explain then Some (Decision.explain eng sys o) else None in
        if json then begin
          let j = json_of_outcome ~file ?explain:ex sys o in
          let j =
            match (j, stats) with
            | J.Obj fields, true ->
                J.Obj
                  (fields
                  @ [ ("stats", json_of_stats (Decision.stats eng)) ])
            | _ -> j
          in
          print_endline (J.to_string_pretty j);
          exit (exit_code o)
        end
        else begin
          let code = print_outcome ~stats sys o in
          Option.iter (fun ex -> Format.printf "--@.%a@." E.Explain.pp ex) ex;
          exit code
        end
  in
  let oracle =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("states", `States); ("schedules", `Schedules);
                  ("extensions", `Extensions) ]))
          None
      & info [ "oracle" ] ~docv:"ORACLE"
          ~doc:
            "Bypass the staged engine and decide with one exhaustive \
             oracle: $(b,states) (memoized state graph), $(b,schedules) \
             (legal-schedule enumeration), or $(b,extensions) (Lemma 1 \
             over all extension pairs; two-transaction systems only)")
  in
  let budget =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ]
          ~doc:"Step budget for the decision (caps the exhaustive stages)"
          ~docv:"STEPS")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Decide safety of a locked transaction system")
    Term.(
      const run $ obs_setup $ file_arg $ oracle $ budget $ explain_flag
      $ stats_flag $ json_flag)

let batch_cmd =
  let run () files repeat no_cache budget jobs explain stats json =
    if jobs < 1 then begin
      Printf.eprintf "distlock: --jobs must be >= 1\n";
      exit 2
    end;
    let named = List.map (fun f -> (f, load_system f)) files in
    let named = List.concat (List.init (max 1 repeat) (fun _ -> named)) in
    let budget =
      match budget with
      | Some n -> E.Budget.of_steps n
      | None -> E.Budget.unlimited
    in
    let eng =
      register_engine
        (Decision.create
           ~cache_capacity:(if no_cache then 0 else 1024)
           ~pair_cache_capacity:(if no_cache then 0 else 4096)
           ~budget ())
    in
    let outcomes, report =
      Decision.decide_batch ~jobs eng (List.map snd named)
    in
    let explain_of sys o =
      if explain then Some (Decision.explain eng sys o) else None
    in
    if json then
      print_endline
        (J.to_string_pretty
           (J.Obj
              ([
                 ( "results",
                   J.List
                     (List.map2
                        (fun (file, sys) o ->
                          json_of_outcome ~file ?explain:(explain_of sys o) sys
                            o)
                        named outcomes) );
                 ("report", json_of_report report);
               ]
              @
              if stats then
                [ ("stats", json_of_stats (Decision.stats eng)) ]
              else [])))
    else begin
      List.iter2
        (fun (file, sys) (o : Decision.evidence E.Outcome.t) ->
          let line =
            match o.E.Outcome.verdict with
            | E.Outcome.Safe -> "SAFE — " ^ o.E.Outcome.detail
            | E.Outcome.Unsafe (Decision.Pair _) ->
                "UNSAFE — " ^ o.E.Outcome.detail
            | E.Outcome.Unsafe (Decision.Multi reason) ->
                "UNSAFE — " ^ Decision.describe_multi sys reason
            | E.Outcome.Unknown msg -> "UNKNOWN — " ^ msg
          in
          Printf.printf "%s: %s%s\n" file line
            (if o.E.Outcome.cached then " (cached)" else "");
          Option.iter
            (fun ex -> Format.printf "%a@." E.Explain.pp ex)
            (explain_of sys o))
        named outcomes;
      Format.printf "%a@." E.Engine.pp_batch_report report;
      if stats then Format.printf "%a@." E.Stats.pp (Decision.stats eng)
    end;
    exit (List.fold_left (fun acc o -> max acc (exit_code o)) 0 outcomes)
  in
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE...")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ]
          ~doc:"Submit the file list $(docv) times (cache-behaviour demos)"
          ~docv:"N")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the verdict cache")
  in
  let budget =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ]
          ~doc:"Step budget per decision (caps the exhaustive stages)"
          ~docv:"STEPS")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:
            "Decide the batch's distinct systems on $(docv) domains in \
             parallel (1 = sequential); outcomes and report totals are \
             identical for any value"
          ~docv:"N")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Decide many system files through the cached engine, with \
          fingerprint deduplication and a hit-rate report")
    Term.(
      const run $ obs_setup $ files $ repeat $ no_cache $ budget $ jobs
      $ explain_flag $ stats_flag $ json_flag)

(* `mutate` drives an incremental session over a stream of snapshots:
   the first FILE is the base system, every later FILE is the system
   after one edit batch. Consecutive snapshots are diffed by transaction
   name and content fingerprint into add / remove / replace operations,
   and the session re-decides after each step, reusing every pair
   verdict and cycle judgement whose inputs the edit left untouched. *)
let mutate_cmd =
  let run () files verify budget stats json =
    let budget =
      match budget with
      | Some n -> E.Budget.of_steps n
      | None -> E.Budget.unlimited
    in
    match files with
    | [] -> assert false (* non_empty *)
    | base_file :: edit_files ->
        let base = load_system base_file in
        let session = Incremental.of_system ~budget base in
        ignore (register_stats (Incremental.stats session));
        let db_sig sys =
          let db = System.db sys in
          List.map
            (fun e -> (Database.name db e, Database.site db e))
            (Database.entities db)
        in
        let base_sig = db_sig base in
        (* name -> fingerprint of what the session currently holds *)
        let fpt = Hashtbl.create 16 in
        Array.iter
          (fun t -> Hashtbl.replace fpt (Txn.name t) (Txn.fingerprint t))
          (System.txns base);
        (* From-scratch comparator for --verify: no verdict cache, no
           pair store, so agreement is with a genuinely fresh decision. *)
        let scratch =
          lazy
            (Decision.create ~cache_capacity:0 ~pair_cache_capacity:0
               ~budget ())
        in
        let code = ref 0 in
        let steps = ref [] in
        let verdict_label = function
          | Incremental.Safe -> "safe"
          | Incremental.Unsafe _ -> "unsafe"
          | Incremental.Unknown _ -> "unknown"
        in
        let step file ~added ~removed ~replaced =
          let o = Incremental.decide_delta session in
          (code :=
             max !code
               (match o.Incremental.verdict with
               | Incremental.Safe -> 0
               | Incremental.Unsafe _ -> 1
               | Incremental.Unknown _ -> 3));
          if verify && Incremental.num_txns session > 0 then begin
            let sys = Incremental.system session in
            let fresh = Decision.decide (Lazy.force scratch) sys in
            let fresh_label =
              match fresh.E.Outcome.verdict with
              | E.Outcome.Safe -> "safe"
              | E.Outcome.Unsafe _ -> "unsafe"
              | E.Outcome.Unknown _ -> "unknown"
            in
            if fresh_label <> verdict_label o.Incremental.verdict then begin
              Printf.eprintf
                "error: %s: incremental verdict %s disagrees with \
                 from-scratch verdict %s\n"
                file
                (verdict_label o.Incremental.verdict)
                fresh_label;
              (* A divergence is exactly what the flight recorder is
                 for: dump the recent spans and counters before dying. *)
              Distlock_obs.Recorder.anomaly
                ~reason:
                  (Printf.sprintf
                     "mutate --verify divergence at %s: incremental %s vs \
                      from-scratch %s"
                     file
                     (verdict_label o.Incremental.verdict)
                     fresh_label);
              exit 4
            end
          end;
          if json then
            steps :=
              J.Obj
                [
                  ("file", J.Str file);
                  ("verdict", J.Str (verdict_label o.Incremental.verdict));
                  ("added", J.Int added);
                  ("removed", J.Int removed);
                  ("replaced", J.Int replaced);
                  ("pairs_total", J.Int o.Incremental.pairs_total);
                  ("pairs_reused", J.Int o.Incremental.pairs_reused);
                  ("pairs_redecided", J.Int o.Incremental.pairs_redecided);
                  ("cycles_total", J.Int o.Incremental.cycles_total);
                  ("cycles_reused", J.Int o.Incremental.cycles_reused);
                  ("cycles_rejudged", J.Int o.Incremental.cycles_rejudged);
                  ("seconds", J.Float o.Incremental.seconds);
                ]
              :: !steps
          else begin
            let line =
              match o.Incremental.verdict with
              | Incremental.Safe -> "SAFE"
              | Incremental.Unsafe r ->
                  "UNSAFE — "
                  ^ Decision.describe_multi (Incremental.system session) r
              | Incremental.Unknown m -> "UNKNOWN — " ^ m
            in
            Printf.printf "%s: %s\n" file line;
            Printf.printf
              "  edits: +%d -%d ~%d; pairs: %d reused, %d re-decided; \
               cycles: %d reused, %d re-judged\n"
              added removed replaced o.Incremental.pairs_reused
              o.Incremental.pairs_redecided o.Incremental.cycles_reused
              o.Incremental.cycles_rejudged
          end
        in
        step base_file ~added:(System.num_txns base) ~removed:0 ~replaced:0;
        List.iter
          (fun file ->
            let next = load_system file in
            if db_sig next <> base_sig then begin
              Printf.eprintf
                "error: %s: entity declarations differ from %s\n" file
                base_file;
              exit 2
            end;
            let next_txns = Array.to_list (System.txns next) in
            let next_names = List.map Txn.name next_txns in
            let stale =
              List.filter
                (fun nm -> not (List.mem nm next_names))
                (Incremental.txn_names session)
            in
            List.iter
              (fun nm ->
                Incremental.remove_txn session nm;
                Hashtbl.remove fpt nm)
              stale;
            let added = ref 0 and replaced = ref 0 in
            List.iter
              (fun txn ->
                let nm = Txn.name txn in
                let fp = Txn.fingerprint txn in
                match Hashtbl.find_opt fpt nm with
                | None ->
                    Incremental.add_txn session txn;
                    Hashtbl.replace fpt nm fp;
                    incr added
                | Some old when old <> fp ->
                    Incremental.replace_txn session nm txn;
                    Hashtbl.replace fpt nm fp;
                    incr replaced
                | Some _ -> ())
              next_txns;
            step file ~added:!added ~removed:(List.length stale)
              ~replaced:!replaced)
          edit_files;
        if json then
          print_endline
            (J.to_string_pretty (J.Obj [ ("steps", J.List (List.rev !steps)) ]));
        if stats then
          Format.printf "%a@." E.Stats.pp (Incremental.stats session);
        exit !code
  in
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"BASE EDIT..."
          ~doc:
            "The base system followed by one snapshot per edit step; \
             consecutive snapshots are diffed by transaction name and \
             content")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "After each step, also decide from scratch (no caches) and \
             fail with exit 4 if the verdicts disagree")
  in
  let budget =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ]
          ~doc:"Step budget per decision (caps the exhaustive stages)"
          ~docv:"STEPS")
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:
         "Decide a stream of edits of one system incrementally, reusing \
          pair and cycle verdicts across steps")
    Term.(
      const run $ obs_setup $ files $ verify $ budget $ stats_flag
      $ json_flag)

let dgraph_cmd =
  let run () file dot =
    let sys = load_system file in
    let d = Dgraph.build_pair sys in
    if dot then
      print_string
        (Distlock_graph.Digraph.to_dot
           ~label:(fun v ->
             Database.name (System.db sys) (Dgraph.entities d).(v))
           (Dgraph.graph d))
    else begin
      Format.printf "%a@." (Dgraph.pp (System.db sys)) d;
      Printf.printf "strongly connected: %b\n" (Dgraph.is_strongly_connected d)
    end
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz") in
  Cmd.v
    (Cmd.info "dgraph" ~doc:"Print D(T1,T2) of a two-transaction system")
    Term.(const run $ obs_setup $ file_arg $ dot)

let figures_cmd =
  let run () () =
    List.iter
      (fun (name, sys) ->
        Printf.printf "### %s\n%s\n" name (Parse.system_to_string sys);
        ignore (print_verdict sys))
      (Figures.all ())
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Print the paper's worked examples with verdicts")
    Term.(const run $ obs_setup $ const ())

let reduce_cmd =
  let run () file decide =
    match Distlock_sat.Dimacs.of_string (read_file file) with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | Ok f -> (
        match Distlock_sat.Normalize.run f with
        | None -> Printf.printf "trivially unsatisfiable (empty clause)\n"
        | Some { Distlock_sat.Normalize.formula = g; _ } ->
            Printf.printf
              "# restricted form: %d vars, %d clauses\n" g.Distlock_sat.Cnf.num_vars
              (Distlock_sat.Cnf.num_clauses g);
            let gadget = Reduction.encode g in
            Printf.printf "# gadget: %d entities (one site each)\n"
              (Reduction.num_entities gadget);
            print_string (Parse.system_to_string (Reduction.system gadget));
            if decide then
              match Reduction.decide_unsafe_by_closure gadget with
              | Some _ -> Printf.printf "# UNSAFE, hence SATISFIABLE\n"
              | None -> Printf.printf "# safe, hence UNSATISFIABLE\n")
  in
  let decide =
    Arg.(value & flag & info [ "decide" ]
           ~doc:"Also decide satisfiability via the dominator-closure sweep \
                 (exponential)")
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Encode a DIMACS CNF as a pair of distributed transactions \
             (Theorem 3)")
    Term.(const run $ obs_setup $ file_arg $ decide)

let analyze_cmd =
  let run () file =
    let sys = load_system file in
    if System.num_txns sys <> 2 then begin
      Printf.eprintf "error: analyze expects a two-transaction system\n";
      exit 2
    end;
    Format.printf "%a@." Analysis.pp (Analysis.pair sys)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Full diagnostic report for a two-transaction system")
    Term.(const run $ obs_setup $ file_arg)

let repair_cmd =
  let run () file =
    let sys = load_system file in
    if System.num_txns sys <> 2 then begin
      Printf.eprintf "error: repair expects a two-transaction system\n";
      exit 2
    end;
    match Repair.make_safe sys with
    | None ->
        Printf.printf "# no precedence insertion makes this system safe\n";
        exit 1
    | Some (sys', insertions) ->
        Printf.printf "# %d precedence(s) inserted; system now SAFE (Theorem 1)\n"
          (List.length insertions);
        List.iter
          (fun { Repair.txn; before; after } ->
            let t = System.txn sys' txn in
            Printf.printf "# %s: %s before %s\n" (Txn.name t)
              (Txn.label t before) (Txn.label t after))
          insertions;
        print_string (Parse.system_to_string sys')
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:"Insert precedences until D(T1,T2) is strongly connected and \
             print the repaired system")
    Term.(const run $ obs_setup $ file_arg)

let deadlock_cmd =
  let run () file =
    let sys = load_system file in
    let t1, t2 = System.pair sys in
    if not (Txn.is_total t1 && Txn.is_total t2) then begin
      (* partial orders: memoized state-graph exploration *)
      let d = Distlock_sched.Stategraph.has_deadlock sys in
      Printf.printf "deadlock reachable (state exploration): %b\n" d;
      exit (if d then 1 else 0)
    end;
    let plane = Distlock_geometry.Plane.make sys in
    match Distlock_geometry.Deadlock.reachable_deadlocks plane with
    | [] -> Printf.printf "deadlock: impossible\n"
    | states ->
        Printf.printf "deadlock: %d reachable state(s)\n" (List.length states);
        (match Distlock_geometry.Deadlock.witness_prefix plane with
        | Some prefix ->
            Printf.printf "witness prefix: %s\n"
              (String.concat " "
                 (List.map
                    (fun (ti, s) ->
                      Printf.sprintf "%s_%d"
                        (Step.to_string (System.db sys)
                           (Txn.step (System.txn sys ti) s))
                        (ti + 1))
                    prefix))
        | None -> ());
        exit 1
  in
  Cmd.v
    (Cmd.info "deadlock"
       ~doc:"Deadlock analysis of a two-transaction system (geometric for \
             total orders, state exploration otherwise)")
    Term.(const run $ obs_setup $ file_arg)

let advise_cmd =
  let run () file =
    let sys = load_system file in
    if System.num_txns sys <> 2 then begin
      Printf.eprintf "error: advise expects a two-transaction system\n";
      exit 2
    end;
    match Safety.decide_pair sys with
    | Safety.Safe why ->
        Printf.printf "already SAFE — %s\n" why
    | Safety.Unknown m ->
        Printf.printf "UNKNOWN — %s\n" m;
        exit 3
    | Safety.Unsafe _ -> (
        Printf.printf "UNSAFE; repair options (cheapest first):\n";
        match Advisor.advise sys with
        | [] ->
            Printf.printf "  none found\n";
            exit 1
        | options ->
            List.iter
              (fun o ->
                Printf.printf "  %-22s loss: %d newly ordered pair(s)\n"
                  (Advisor.strategy_name o.Advisor.strategy)
                  o.Advisor.concurrency_loss)
              options)
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Compare repair strategies for an unsafe two-transaction system")
    Term.(const run $ obs_setup $ file_arg)

let show_cmd =
  let run () file =
    let sys = load_system file in
    print_string (Parse.system_to_string sys);
    print_newline ();
    print_string (Pretty.system sys)
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print a system in the text format and as per-site columns")
    Term.(const run $ obs_setup $ file_arg)

let plane_cmd =
  let run () file =
    let sys = load_system file in
    let t1, t2 = System.pair sys in
    if not (Txn.is_total t1 && Txn.is_total t2) then begin
      Printf.eprintf
        "error: plane rendering needs totally ordered transactions\n";
      exit 2
    end;
    let plane = Distlock_geometry.Plane.make sys in
    match Safety.decide_pair sys with
    | Safety.Unsafe ev ->
        Printf.printf "UNSAFE — separating staircase:\n";
        print_string
          (Distlock_geometry.Render.plane
             ~schedule:(Safety.schedule_of_evidence ev) plane)
    | Safety.Safe _ | Safety.Unknown _ ->
        print_string (Distlock_geometry.Render.plane plane)
  in
  Cmd.v
    (Cmd.info "plane"
       ~doc:"Draw the coordinated plane of a totally ordered pair, with \
             the separating schedule when unsafe")
    Term.(const run $ obs_setup $ file_arg)

let simulate_cmd =
  let run () file seeds backend lease_ttl crash_rate down_time latency sites
      trace_file =
    let sys = load_system file in
    let sys =
      match sites with
      | None -> sys
      | Some n -> Distlock_sim.Scenario.spread_sites sys ~sites:n
    in
    let scenario =
      {
        Distlock_sim.Scenario.default with
        Distlock_sim.Scenario.backend;
        latency;
        lease_ttl;
        crash_rate;
        down_time;
      }
    in
    let summary =
      Distlock_sim.Esim.measure ~scenario ~seeds:(List.init seeds Fun.id) sys
    in
    (match trace_file with
    | None -> ()
    | Some path ->
        (* Re-run each seed deterministically and export the full step
           event stream — committed and aborted attempts alike. *)
        let oc = open_out path in
        for seed = 0 to seeds - 1 do
          match
            Distlock_sim.Esim.run ~policy:(Distlock_sim.Engine.Random seed)
              ~scenario ~check_serializability:false sys
          with
          | Ok o ->
              Distlock_sim.Trace.write_jsonl ~seed sys oc
                o.Distlock_sim.Esim.trace
          | Error _ -> ()
        done;
        close_out oc);
    Format.printf "%a@." Distlock_sim.Esim.pp_summary summary
  in
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Number of seeded runs")
  in
  let backend_conv =
    let parse s =
      match Distlock_sim.Scenario.backend_of_string s with
      | Ok b -> Ok b
      | Error m -> Error (`Msg m)
    in
    let print ppf b =
      Format.pp_print_string ppf (Distlock_sim.Scenario.backend_to_string b)
    in
    Arg.conv (parse, print)
  in
  let backend =
    Arg.(
      value
      & opt backend_conv Distlock_sim.Scenario.Instant
      & info [ "backend" ] ~docv:"KIND"
          ~doc:
            "Lock backend: $(b,instant) (legacy in-memory manager, locks \
             never lost), $(b,leased) (TTL leases; a crashed holder's \
             locks expire and pass to waiters), or $(b,bakery) \
             (arrival-order tickets, no expiry)")
  in
  let lease_ttl =
    Arg.(
      value
      & opt (some int) None
      & info [ "lease-ttl" ] ~docv:"TICKS"
          ~doc:
            (Printf.sprintf
               "Lease TTL for the leased backend: ticks a crashed \
                holder's locks survive before being granted to waiters \
                (default %d)"
               Distlock_sim.Scenario.default_ttl))
  in
  let crash_rate =
    Arg.(
      value
      & opt float 0.
      & info [ "crash-rate" ] ~docv:"P"
          ~doc:
            "Probability a worker crashes after each executed step \
             (default 0 — no fault injection); it resumes after \
             $(b,--down-time) ticks still believing it holds its locks")
  in
  let down_time =
    Arg.(
      value
      & opt int 16
      & info [ "down-time" ] ~docv:"TICKS"
          ~doc:"How long a crashed worker stays down (default 16)")
  in
  let latency_conv =
    let parse s =
      try Ok (Distlock_sim.Latency.of_string s)
      with _ ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid latency %S (use none, a constant, or LO-HI)" s))
    in
    Arg.conv (parse, Distlock_sim.Latency.pp)
  in
  let latency =
    Arg.(
      value
      & opt latency_conv Distlock_sim.Latency.none
      & info [ "latency" ] ~docv:"SPEC"
          ~doc:
            "Cross-site message latency in ticks: $(b,none), a constant \
             ($(b,3)), or a uniform range ($(b,1-5))")
  in
  let sites =
    Arg.(
      value
      & opt (some int) None
      & info [ "sites" ] ~docv:"N"
          ~doc:
            "Respread the system's entities round-robin over $(docv) \
             sites before simulating (names and transactions preserved)")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Export every executed step (tick, site, entity, attempt — \
             including aborted attempts) as JSON Lines to $(docv)")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the lock-manager simulator on a system")
    Term.(
      const run $ obs_setup_no_trace $ file_arg $ seeds $ backend $ lease_ttl
      $ crash_rate $ down_time $ latency $ sites $ trace_file)

(* Smoke-test the telemetry endpoint: serve the (initially idle) global
   registry until SIGINT, or for --for seconds in scripted runs. *)
let telemetry_cmd =
  let run port duration =
    match Distlock_obs.Expose.start ~port ~registries:serve_registries () with
    | Error msg ->
        Printf.eprintf "distlock: %s\n" msg;
        exit 2
    | Ok srv ->
        Printf.printf "serving on http://127.0.0.1:%d — /metrics /healthz \
                       /vars (SIGINT to stop)\n%!"
          (Distlock_obs.Expose.port srv);
        Sys.catch_break true;
        let deadline =
          match duration with
          | None -> Float.infinity
          | Some s -> Unix.gettimeofday () +. s
        in
        (try
           while Unix.gettimeofday () < deadline do
             Unix.sleepf 0.2
           done
         with Sys.Break | Unix.Unix_error (Unix.EINTR, _, _) -> ());
        Distlock_obs.Expose.stop srv
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to bind on 127.0.0.1 (default 0: pick a free port)")
  in
  let duration =
    Arg.(
      value
      & opt (some float) None
      & info [ "for" ] ~docv:"SECONDS"
          ~doc:"Stop after $(docv) seconds instead of waiting for SIGINT")
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:
         "Serve the metrics endpoint (/metrics, /healthz, /vars) until \
          SIGINT — a smoke target for scrape configs")
    Term.(const run $ port $ duration)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "distlock" ~version:"1.8.0"
             ~doc:"Safety of distributed locked transactions (Kanellakis & \
                   Papadimitriou 1982)")
          [ advise_cmd; batch_cmd; check_cmd; analyze_cmd; dgraph_cmd;
            deadlock_cmd; figures_cmd; mutate_cmd; plane_cmd; reduce_cmd;
            repair_cmd; show_cmd; simulate_cmd; telemetry_cmd ]))
