open Distlock_txn

(** Systems of shared/exclusive-locked transactions, their legal
    schedules, and conflict serializability. *)

type t

val make : Database.t -> Rw_txn.t list -> t

val db : t -> Database.t

val num_txns : t -> int

val txn : t -> int -> Rw_txn.t

val pair : t -> Rw_txn.t * Rw_txn.t

val validate : t -> string list

type event = int * int

val schedule_to_string : t -> event list -> string

val is_legal : t -> event list -> bool
(** A complete legal schedule: respects every partial order, and lock
    compatibility — any number of concurrent shared holders, exclusive
    holders alone. *)

val is_serializable : t -> event list -> bool
(** Conflict serializability where two locked sections on the same entity
    conflict unless both locks are shared. *)

val iter_legal : t -> (event list -> unit) -> unit
(** All complete legal schedules (exponential). *)

val safe : ?limit:int -> t -> bool
(** Every legal schedule serializable, by enumeration; raises [Failure]
    past [limit] (default [2_000_000]) schedules. *)

val conflicting_common : t -> Database.entity list
(** Entities locked by both transactions of a pair with at least one
    exclusive mode — the vertex set of the D-graph analog. *)
