open Distlock_txn
open Distlock_order

let random_txn rng db ~name ~entities ~shared_prob ~cross_prob =
  let entities = Array.of_list entities in
  let n = 2 * Array.length entities in
  let steps = Array.make n { Rw_txn.action = Rw_txn.Unlock; entity = 0 } in
  let labels = Array.make n "" in
  let constraints = ref [] in
  Array.iteri
    (fun k e ->
      let mode =
        if Random.State.float rng 1.0 < shared_prob then Rw_txn.Shared
        else Rw_txn.Exclusive
      in
      let l = 2 * k and u = (2 * k) + 1 in
      steps.(l) <- { Rw_txn.action = Rw_txn.Lock mode; entity = e };
      steps.(u) <- { Rw_txn.action = Rw_txn.Unlock; entity = e };
      let en = Database.name db e in
      labels.(l) <-
        (match mode with Rw_txn.Shared -> "SL" ^ en | Rw_txn.Exclusive -> "XL" ^ en);
      labels.(u) <- "U" ^ en;
      constraints := (l, u) :: !constraints)
    entities;
  (* random base linear order respecting L < U *)
  let g = Distlock_graph.Digraph.of_arcs n !constraints in
  let indeg = Array.init n (Distlock_graph.Digraph.in_degree g) in
  let placed = Array.make n false in
  let base = Array.make n (-1) in
  for depth = 0 to n - 1 do
    let avail = ref [] in
    for v = 0 to n - 1 do
      if (not placed.(v)) && indeg.(v) = 0 then avail := v :: !avail
    done;
    let arr = Array.of_list !avail in
    let v = arr.(Random.State.int rng (Array.length arr)) in
    placed.(v) <- true;
    base.(depth) <- v;
    Distlock_graph.Digraph.iter_succ g v (fun w -> indeg.(w) <- indeg.(w) - 1)
  done;
  let site_of i = Database.site db steps.(i).Rw_txn.entity in
  let arcs = ref !constraints in
  let last_at_site = Hashtbl.create 8 in
  Array.iter
    (fun i ->
      let s = site_of i in
      (match Hashtbl.find_opt last_at_site s with
      | Some prev -> arcs := (prev, i) :: !arcs
      | None -> ());
      Hashtbl.replace last_at_site s i)
    base;
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let i = base.(a) and j = base.(b) in
      if site_of i <> site_of j && Random.State.float rng 1.0 < cross_prob then
        arcs := (i, j) :: !arcs
    done
  done;
  let order = Option.get (Poset.of_arcs n !arcs) in
  Rw_txn.make ~name ~labels ~steps order

let random_pair rng ~num_shared ~num_sites ?(shared_prob = 0.4)
    ?(cross_prob = 0.3) () =
  let db =
    Txn_gen.random_database rng ~num_entities:(max num_shared num_sites)
      ~num_sites
  in
  let entities =
    List.filteri (fun i _ -> i < num_shared) (Database.entities db)
  in
  let t1 = random_txn rng db ~name:"T1" ~entities ~shared_prob ~cross_prob in
  let t2 = random_txn rng db ~name:"T2" ~entities ~shared_prob ~cross_prob in
  Rw_system.make db [ t1; t2 ]
