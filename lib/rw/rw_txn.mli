open Distlock_txn
open Distlock_order

(** Locked transactions with shared and exclusive lock modes — the lock
    "variant" the paper notes changes the theory very little (Section 1,
    citing [8, 18, 19]).

    A step either takes a shared ([Slock]) or exclusive ([Xlock]) lock on
    an entity or releases it; at most one lock/unlock pair per entity, the
    lock preceding the unlock, per-site steps totally ordered — the same
    discipline as the exclusive model. The locked section stands for the
    transaction's access: a shared section reads, an exclusive section may
    write, so two sections on the same entity conflict unless both are
    shared. *)

type mode = Shared | Exclusive

type action = Lock of mode | Unlock

type step = { action : action; entity : Database.entity }

type t

val make :
  name:string -> ?labels:string array -> steps:step array -> Poset.t -> t

val name : t -> string

val num_steps : t -> int

val step : t -> int -> step

val label : t -> int -> string

val order : t -> Poset.t

val precedes : t -> int -> int -> bool

val lock_of : t -> Database.entity -> (int * mode) option

val unlock_of : t -> Database.entity -> int option

val locked_entities : t -> (Database.entity * mode) list

val is_total : t -> bool

val validate : Database.t -> t -> string list
(** Violations of the discipline, rendered; empty iff well-formed. *)

val step_to_string : Database.t -> step -> string
(** [SLx], [XLx], [Ux]. *)
