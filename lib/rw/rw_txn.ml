open Distlock_txn
open Distlock_order

type mode = Shared | Exclusive

type action = Lock of mode | Unlock

type step = { action : action; entity : Database.entity }

type t = {
  name : string;
  steps : step array;
  order : Poset.t;
  labels : string array;
}

let make ~name ?labels ~steps order =
  let n = Array.length steps in
  if Poset.size order <> n then
    invalid_arg "Rw_txn.make: poset size differs from step count";
  let labels =
    match labels with
    | Some l ->
        if Array.length l <> n then
          invalid_arg "Rw_txn.make: label count differs from step count";
        l
    | None -> Array.init n string_of_int
  in
  { name; steps; order; labels }

let name t = t.name

let num_steps t = Array.length t.steps

let step t i = t.steps.(i)

let label t i = t.labels.(i)

let order t = t.order

let precedes t a b = Poset.precedes t.order a b

let lock_of t e =
  let rec go i =
    if i >= num_steps t then None
    else
      match t.steps.(i) with
      | { action = Lock m; entity } when entity = e -> Some (i, m)
      | _ -> go (i + 1)
  in
  go 0

let unlock_of t e =
  let rec go i =
    if i >= num_steps t then None
    else
      match t.steps.(i) with
      | { action = Unlock; entity } when entity = e -> Some i
      | _ -> go (i + 1)
  in
  go 0

let locked_entities t =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      match s.action with
      | Lock m ->
          if
            (not (Hashtbl.mem seen s.entity)) && unlock_of t s.entity <> None
          then Hashtbl.add seen s.entity m
      | Unlock -> ())
    t.steps;
  List.sort compare (Hashtbl.fold (fun e m acc -> (e, m) :: acc) seen [])

let is_total t = Poset.is_total t.order

let step_to_string db s =
  let n = Database.name db s.entity in
  match s.action with
  | Lock Shared -> "SL" ^ n
  | Lock Exclusive -> "XL" ^ n
  | Unlock -> "U" ^ n

let validate db t =
  let msgs = ref [] in
  let report m = msgs := m :: !msgs in
  (* per-site totality *)
  let n = num_steps t in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if
        Database.site db t.steps.(a).entity
        = Database.site db t.steps.(b).entity
        && Poset.concurrent t.order a b
      then
        report
          (Printf.sprintf "steps %s and %s at the same site are unordered"
             t.labels.(a) t.labels.(b))
    done
  done;
  (* one lock/unlock pair per entity, lock before unlock *)
  let entities =
    List.sort_uniq compare
      (Array.to_list (Array.map (fun s -> s.entity) t.steps))
  in
  List.iter
    (fun e ->
      let locks = ref [] and unlocks = ref [] in
      Array.iteri
        (fun i s ->
          if s.entity = e then
            match s.action with
            | Lock _ -> locks := i :: !locks
            | Unlock -> unlocks := i :: !unlocks)
        t.steps;
      let en = Database.name db e in
      (match (!locks, !unlocks) with
      | [ l ], [ u ] ->
          if not (precedes t l u) then
            report (Printf.sprintf "unlock of %s does not follow its lock" en)
      | [], [] -> ()
      | [ _ ], [] -> report (Printf.sprintf "lock of %s is never released" en)
      | [], [ _ ] -> report (Printf.sprintf "unlock of %s without a lock" en)
      | _ -> report (Printf.sprintf "multiple lock or unlock steps for %s" en)))
    entities;
  List.rev !msgs
