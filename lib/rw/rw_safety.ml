open Distlock_txn
open Distlock_graph

let dgraph sys =
  let t1, t2 = Rw_system.pair sys in
  let common = Array.of_list (Rw_system.conflicting_common sys) in
  let k = Array.length common in
  let g = Digraph.create k in
  let l1 = Array.map (fun e -> fst (Option.get (Rw_txn.lock_of t1 e))) common in
  let u1 = Array.map (fun e -> Option.get (Rw_txn.unlock_of t1 e)) common in
  let l2 = Array.map (fun e -> fst (Option.get (Rw_txn.lock_of t2 e))) common in
  let u2 = Array.map (fun e -> Option.get (Rw_txn.unlock_of t2 e)) common in
  for a = 0 to k - 1 do
    for b = 0 to k - 1 do
      if
        a <> b
        && Rw_txn.precedes t1 l1.(a) u1.(b)
        && Rw_txn.precedes t2 l2.(b) u2.(a)
      then Digraph.add_arc g a b
    done
  done;
  (g, common)

let sites_used sys =
  let db = Rw_system.db sys in
  let acc = Hashtbl.create 8 in
  for i = 0 to Rw_system.num_txns sys - 1 do
    let txn = Rw_system.txn sys i in
    for s = 0 to Rw_txn.num_steps txn - 1 do
      Hashtbl.replace acc (Database.site db (Rw_txn.step txn s).Rw_txn.entity) ()
    done
  done;
  Hashtbl.length acc

let theorem1_guarantee sys =
  let g, entities = dgraph sys in
  Array.length entities < 2 || Scc.is_strongly_connected g

let twosite_decide sys =
  if Rw_system.num_txns sys <> 2 then
    invalid_arg "Rw_safety.twosite_decide: need two transactions";
  if sites_used sys > 2 then
    invalid_arg "Rw_safety.twosite_decide: more than two sites";
  theorem1_guarantee sys
