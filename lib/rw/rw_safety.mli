open Distlock_txn
open Distlock_graph

(** Safety of shared/exclusive-locked pairs: the paper's claim that lock
    variants "change the theory very little" (Section 1, citing [8]),
    made precise and machine-checked.

    The D-graph analog is built over the *conflicting* common entities —
    those locked by both transactions with at least one exclusive mode;
    entities shared on both sides produce no forbidden region and drop
    out. On that vertex set the arcs are Definition 1's, and the test
    suite validates on random two-site systems that strong connectivity
    is again exact (agreeing with exhaustive enumeration under the
    shared-compatible lock semantics). *)

val dgraph : Rw_system.t -> Digraph.t * Database.entity array
(** The analog of [D(T1,T2)] over {!Rw_system.conflicting_common}. *)

val twosite_decide : Rw_system.t -> bool
(** [true] = safe. Raises [Invalid_argument] on systems with more than two
    transactions or more than two sites. *)

val theorem1_guarantee : Rw_system.t -> bool
(** Strong connectivity of the analog graph (sufficient for safety at any
    number of sites, by reduction to the exclusive model). *)
