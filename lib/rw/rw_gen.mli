(** Random generation of well-formed shared/exclusive systems (same
    global-linear-order technique as {!Distlock_txn.Txn_gen}). *)

val random_pair :
  Random.State.t ->
  num_shared:int ->
  num_sites:int ->
  ?shared_prob:float ->
  ?cross_prob:float ->
  unit ->
  Rw_system.t
(** Both transactions lock the same [num_shared] entities; each lock is
    shared with probability [shared_prob] (default [0.4]),
    independently per transaction. *)
