open Distlock_txn

type t = { db : Database.t; txns : Rw_txn.t array }

let make db txns =
  if txns = [] then invalid_arg "Rw_system.make: no transactions";
  { db; txns = Array.of_list txns }

let db t = t.db

let num_txns t = Array.length t.txns

let txn t i = t.txns.(i)

let pair t =
  if num_txns t <> 2 then invalid_arg "Rw_system.pair: need two transactions";
  (t.txns.(0), t.txns.(1))

let validate t =
  Array.to_list t.txns
  |> List.concat_map (fun txn ->
         List.map
           (fun m -> Rw_txn.name txn ^ ": " ^ m)
           (Rw_txn.validate t.db txn))

type event = int * int

let schedule_to_string t events =
  String.concat " "
    (List.map
       (fun (i, s) ->
         Printf.sprintf "%s_%d"
           (Rw_txn.step_to_string t.db (Rw_txn.step t.txns.(i) s))
           (i + 1))
       events)

(* Lock table state during replay: per entity, the list of (txn, mode)
   holders. Compatible iff all holders (old and new) are Shared. *)
let replay t events ~on_illegal =
  let holders : (Database.entity, (int * Rw_txn.mode) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let progressed = Array.map (fun txn -> Array.make (Rw_txn.num_steps txn) false) t.txns in
  let ok = ref true in
  List.iter
    (fun (i, s) ->
      if !ok then begin
        let txn = t.txns.(i) in
        (* order respected *)
        for p = 0 to Rw_txn.num_steps txn - 1 do
          if Rw_txn.precedes txn p s && not progressed.(i).(p) then begin
            ok := false;
            on_illegal `Order
          end
        done;
        progressed.(i).(s) <- true;
        let step = Rw_txn.step txn s in
        match step.Rw_txn.action with
        | Rw_txn.Lock m ->
            let current =
              Option.value ~default:[] (Hashtbl.find_opt holders step.Rw_txn.entity)
            in
            let compatible =
              m = Rw_txn.Shared
              && List.for_all (fun (_, hm) -> hm = Rw_txn.Shared) current
              || current = []
            in
            if not compatible then begin
              ok := false;
              on_illegal `Lock
            end
            else
              Hashtbl.replace holders step.Rw_txn.entity ((i, m) :: current)
        | Rw_txn.Unlock -> (
            let current =
              Option.value ~default:[] (Hashtbl.find_opt holders step.Rw_txn.entity)
            in
            match List.partition (fun (h, _) -> h = i) current with
            | [ _ ], rest -> Hashtbl.replace holders step.Rw_txn.entity rest
            | _ ->
                ok := false;
                on_illegal `Unlock)
      end)
    events;
  !ok

let is_complete t events =
  let expected =
    Array.fold_left (fun acc txn -> acc + Rw_txn.num_steps txn) 0 t.txns
  in
  List.length events = expected
  && List.length (List.sort_uniq compare events) = expected

let is_legal t events =
  is_complete t events && replay t events ~on_illegal:(fun _ -> ())

(* Conflict serializability: per entity, the locked sections of different
   transactions conflict unless both shared; sections are ordered by
   position of their steps in the schedule. *)
let is_serializable t events =
  let pos = Hashtbl.create 64 in
  List.iteri (fun p ev -> Hashtbl.replace pos ev p) events;
  let n = num_txns t in
  let g = Distlock_graph.Digraph.create n in
  let entities =
    List.sort_uniq compare
      (Array.to_list t.txns
      |> List.concat_map (fun txn ->
             List.map fst (Rw_txn.locked_entities txn)))
  in
  List.iter
    (fun e ->
      let sections =
        List.filteri (fun _ _ -> true)
          (List.filter_map
             (fun i ->
               let txn = t.txns.(i) in
               match (Rw_txn.lock_of txn e, Rw_txn.unlock_of txn e) with
               | Some (l, m), Some u -> (
                   match
                     (Hashtbl.find_opt pos (i, l), Hashtbl.find_opt pos (i, u))
                   with
                   | Some pl, Some pu -> Some (i, m, pl, pu)
                   | _ -> None)
               | _ -> None)
             (List.init n Fun.id))
      in
      let rec pairs = function
        | [] -> ()
        | (i, mi, _li, ui) :: rest ->
            List.iter
              (fun (j, mj, lj, uj) ->
                if not (mi = Rw_txn.Shared && mj = Rw_txn.Shared) then
                  if ui < lj then Distlock_graph.Digraph.add_arc g i j
                  else if uj < _li then Distlock_graph.Digraph.add_arc g j i
                  else begin
                    (* overlapping conflicting sections: illegal schedule *)
                    Distlock_graph.Digraph.add_arc g i j;
                    Distlock_graph.Digraph.add_arc g j i
                  end)
              rest;
            pairs rest
      in
      pairs sections)
    entities;
  Distlock_graph.Topo.is_acyclic g

let iter_legal t f =
  let n = num_txns t in
  let done_ = Array.map (fun txn -> Array.make (Rw_txn.num_steps txn) false) t.txns in
  let holders : (Database.entity, (int * Rw_txn.mode) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let total =
    Array.fold_left (fun acc txn -> acc + Rw_txn.num_steps txn) 0 t.txns
  in
  let trace = ref [] in
  let enabled i s =
    let txn = t.txns.(i) in
    (not done_.(i).(s))
    && (let ok = ref true in
        for p = 0 to Rw_txn.num_steps txn - 1 do
          if Rw_txn.precedes txn p s && not done_.(i).(p) then ok := false
        done;
        !ok)
    &&
    let step = Rw_txn.step txn s in
    match step.Rw_txn.action with
    | Rw_txn.Lock m ->
        let current =
          Option.value ~default:[] (Hashtbl.find_opt holders step.Rw_txn.entity)
        in
        current = []
        || (m = Rw_txn.Shared
           && List.for_all (fun (_, hm) -> hm = Rw_txn.Shared) current)
    | Rw_txn.Unlock -> true
  in
  let apply i s =
    let step = Rw_txn.step t.txns.(i) s in
    done_.(i).(s) <- true;
    trace := (i, s) :: !trace;
    match step.Rw_txn.action with
    | Rw_txn.Lock m ->
        let current =
          Option.value ~default:[] (Hashtbl.find_opt holders step.Rw_txn.entity)
        in
        Hashtbl.replace holders step.Rw_txn.entity ((i, m) :: current)
    | Rw_txn.Unlock ->
        let current =
          Option.value ~default:[] (Hashtbl.find_opt holders step.Rw_txn.entity)
        in
        Hashtbl.replace holders step.Rw_txn.entity
          (List.filter (fun (h, _) -> h <> i) current)
  in
  let undo i s =
    let step = Rw_txn.step t.txns.(i) s in
    done_.(i).(s) <- false;
    (match !trace with _ :: tl -> trace := tl | [] -> ());
    match step.Rw_txn.action with
    | Rw_txn.Lock _ ->
        let current =
          Option.value ~default:[] (Hashtbl.find_opt holders step.Rw_txn.entity)
        in
        Hashtbl.replace holders step.Rw_txn.entity
          (List.filter (fun (h, _) -> h <> i) current)
    | Rw_txn.Unlock -> (
        match Rw_txn.lock_of t.txns.(i) step.Rw_txn.entity with
        | Some (_, m) ->
            let current =
              Option.value ~default:[]
                (Hashtbl.find_opt holders step.Rw_txn.entity)
            in
            Hashtbl.replace holders step.Rw_txn.entity ((i, m) :: current)
        | None -> ())
  in
  let executed = ref 0 in
  let rec go () =
    if !executed = total then f (List.rev !trace)
    else
      for i = 0 to n - 1 do
        for s = 0 to Rw_txn.num_steps t.txns.(i) - 1 do
          if enabled i s then begin
            apply i s;
            incr executed;
            go ();
            decr executed;
            undo i s
          end
        done
      done
  in
  go ()

let safe ?(limit = 2_000_000) t =
  let count = ref 0 in
  let exception Unsafe in
  try
    iter_legal t (fun events ->
        incr count;
        if !count > limit then failwith "Rw_system.safe: limit exceeded";
        if not (is_serializable t events) then raise Unsafe);
    true
  with Unsafe -> false

let conflicting_common t =
  let t1, t2 = pair t in
  let l1 = Rw_txn.locked_entities t1 and l2 = Rw_txn.locked_entities t2 in
  List.filter_map
    (fun (e, m1) ->
      match List.assoc_opt e l2 with
      | Some m2
        when not (m1 = Rw_txn.Shared && m2 = Rw_txn.Shared) ->
          Some e
      | _ -> None)
    l1
