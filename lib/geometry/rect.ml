open Distlock_txn

type t = {
  entity : Database.entity;
  x_lock : int;
  x_unlock : int;
  y_lock : int;
  y_unlock : int;
}

let overlaps a b =
  a.x_lock < b.x_unlock && b.x_lock < a.x_unlock && a.y_lock < b.y_unlock
  && b.y_lock < a.y_unlock

let pp db ppf r =
  Format.fprintf ppf "%s:[%d,%d]x[%d,%d]" (Database.name db r.entity) r.x_lock
    r.x_unlock r.y_lock r.y_unlock
