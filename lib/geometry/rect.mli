open Distlock_txn

(** Forbidden rectangles in the coordinated plane (Section 3, Fig 2).

    For an entity [x] locked by both transactions, the rectangle spans
    horizontally from [t1]'s [Lx] to its [Ux] and vertically from [t2]'s
    [Lx] to its [Ux]; its interior is unreachable because both transactions
    would hold the lock simultaneously. Positions are 1-based step indices
    on each axis. *)

type t = {
  entity : Database.entity;
  x_lock : int;  (** position of [Lx] in [t1] *)
  x_unlock : int;  (** position of [Ux] in [t1] *)
  y_lock : int;  (** position of [Lx] in [t2] *)
  y_unlock : int;  (** position of [Ux] in [t2] *)
}

val overlaps : t -> t -> bool
(** Open-interior intersection in both dimensions (such rectangles can
    never be separated — they form a 2-cycle in the interlock digraph). *)

val pp : Database.t -> Format.formatter -> t -> unit
