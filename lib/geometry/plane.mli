open Distlock_txn
open Distlock_sched

(** The coordinated plane of a pair of totally ordered transactions
    (Section 3, Fig 2): [t1] on the horizontal axis, [t2] on the vertical
    axis, one forbidden rectangle per commonly locked entity.

    A schedule of [{t1, t2}] corresponds to a monotone lattice path from
    [(0,0)] to [(n1+1, n2+1)]; the path passes either below or above each
    rectangle, which is recorded by the b-vector of Theorem 1's proof:
    [b_x = 0] iff [t1] finishes with [x] before [t2] starts
    ([Ux_1 < Lx_2] in the schedule), [b_x = 1] in the opposite case. *)

type t

val of_extensions : System.t -> int array -> int array -> t
(** [of_extensions sys ext1 ext2] builds the plane for the pair of linear
    extensions of a two-transaction system. Raises [Invalid_argument] if
    the arrays are not linear extensions of the respective transactions. *)

val make : System.t -> t
(** The plane of an already totally ordered pair (Fig 2's situation);
    raises [Invalid_argument] if either transaction is not total. *)

val system : t -> System.t

val width : t -> int
(** Steps of [t1] ([n1]). *)

val height : t -> int

val rectangles : t -> Rect.t list
(** One per commonly locked entity, ascending entity id. *)

val rectangle : t -> Database.entity -> Rect.t option

val extension : t -> int -> int array
(** The linear extension of transaction [0] or [1] underlying the axis. *)

val position : t -> int -> int -> int
(** [position plane txn step] is the 1-based axis position of a step. *)

val schedule_of_path : t -> bool list -> Schedule.t
(** [schedule_of_path plane moves] converts a monotone path — [false] =
    right (a [t1] step), [true] = up (a [t2] step) — into a schedule.
    Raises [Invalid_argument] unless there are exactly [width] rights and
    [height] ups. *)

val path_of_schedule : t -> Schedule.t -> bool list
(** Inverse of {!schedule_of_path}; raises [Invalid_argument] if the
    schedule's projections disagree with the plane's extensions. *)

val b_vector : t -> Schedule.t -> (Database.entity * bool) list
(** For a legal schedule: whether the path passes above ([true]) each
    rectangle. Raises [Invalid_argument] if some rectangle is neither
    cleanly above nor below (an illegal schedule). *)

val separates : t -> Schedule.t -> (Database.entity * Database.entity) option
(** Proposition 1's criterion: two rectangles on opposite sides of the
    path, if any — in which case the schedule is not serializable. *)
