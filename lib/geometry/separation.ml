open Distlock_txn
open Distlock_sched
open Distlock_graph

type verdict =
  | Safe
  | Unsafe of {
      schedule : Schedule.t;
      below : Database.entity list;
      above : Database.entity list;
    }

let interlock_rects rects =
  let k = Array.length rects in
  let g = Digraph.create k in
  for a = 0 to k - 1 do
    for b = 0 to k - 1 do
      if a <> b then begin
        let ra = rects.(a) and rb = rects.(b) in
        (* (a,b): La precedes Ub in t1 and Lb precedes Ua in t2. *)
        if ra.Rect.x_lock < rb.Rect.x_unlock && rb.Rect.y_lock < ra.Rect.y_unlock
        then Digraph.add_arc g a b
      end
    done
  done;
  (g, Array.map (fun r -> r.Rect.entity) rects)

let interlock plane = interlock_rects (Array.of_list (Plane.rectangles plane))

let rects_strongly_connected rects =
  let g, entities = interlock_rects (Array.of_list rects) in
  Array.length entities < 2 || Distlock_graph.Scc.is_strongly_connected g

let realize plane ~above =
  let n1 = Plane.width plane and n2 = Plane.height plane in
  (* Preconditions per axis position: to take t1's step at position i+1,
     the other axis must have advanced at least [need1.(i)]. *)
  let need1 = Array.make n1 0 and need2 = Array.make n2 0 in
  List.iter
    (fun r ->
      let e = r.Rect.entity in
      if above e then
        (* above: t2's section first; t1 may not lock e before t2 unlocks. *)
        need1.(r.Rect.x_lock - 1) <- max need1.(r.Rect.x_lock - 1) r.Rect.y_unlock
      else
        need2.(r.Rect.y_lock - 1) <- max need2.(r.Rect.y_lock - 1) r.Rect.x_unlock)
    (Plane.rectangles plane);
  let seen = Array.make_matrix (n1 + 1) (n2 + 1) false in
  let rec go i j path =
    if i = n1 && j = n2 then Some (List.rev path)
    else if seen.(i).(j) then None
    else begin
      seen.(i).(j) <- true;
      let right =
        if i < n1 && j >= need1.(i) then go (i + 1) j (false :: path) else None
      in
      match right with
      | Some _ -> right
      | None ->
          if j < n2 && i >= need2.(j) then go i (j + 1) (true :: path) else None
    end
  in
  Option.map (Plane.schedule_of_path plane) (go 0 0 [])

let decide plane =
  let g, entities = interlock plane in
  let k = Array.length entities in
  if k < 2 then Safe
  else
    match Dominator.find g with
    | None -> Safe
    | Some x ->
        let in_x = Array.make k false in
        Distlock_graph.Bitset.iter (fun v -> in_x.(v) <- true) x;
        let above e =
          (* b = 0 (below) on the dominator, 1 elsewhere. *)
          let rec idx a = if entities.(a) = e then a else idx (a + 1) in
          not in_x.(idx 0)
        in
        (match realize plane ~above with
        | Some schedule ->
            let below, above_l =
              List.partition (fun e -> not (above e))
                (Array.to_list entities)
            in
            Unsafe { schedule; below; above = above_l }
        | None ->
            (* For total orders a dominator always yields a realizable
               b-vector (Theorem 2 with trivial closure). *)
            assert false)

let is_safe plane = match decide plane with Safe -> true | Unsafe _ -> false
