(** ASCII rendering of the coordinated plane (the paper's Fig 2 picture).

    [t1] runs left-to-right, [t2] bottom-to-top. Each forbidden rectangle
    is filled with its entity's letter; an optional schedule is drawn as a
    monotone staircase of [*] marks through the lattice points it visits.
    Axis labels show the step at each grid position. *)

val plane : ?schedule:Distlock_sched.Schedule.t -> Plane.t -> string
(** Raises [Invalid_argument] if the schedule's projections disagree with
    the plane's extensions (see {!Plane.path_of_schedule}). *)
