(* Point semantics: at (i,j), transaction t1 has executed its first i
   steps, t2 its first j. t1 holds entity x iff x_lock <= i < x_unlock
   (1-based step positions), and symmetrically for t2; a point is
   forbidden when some common entity is held by both. *)

let forbidden plane i j =
  List.exists
    (fun r ->
      r.Rect.x_lock <= i && i < r.Rect.x_unlock && r.Rect.y_lock <= j
      && j < r.Rect.y_unlock)
    (Plane.rectangles plane)

let reachability plane =
  let n1 = Plane.width plane and n2 = Plane.height plane in
  let reach = Array.make_matrix (n1 + 1) (n2 + 1) false in
  reach.(0).(0) <- not (forbidden plane 0 0);
  for i = 0 to n1 do
    for j = 0 to n2 do
      if (not reach.(i).(j)) && not (forbidden plane i j) then
        reach.(i).(j) <-
          (i > 0 && reach.(i - 1).(j)) || (j > 0 && reach.(i).(j - 1))
    done
  done;
  reach

let reachable_deadlocks plane =
  let n1 = Plane.width plane and n2 = Plane.height plane in
  let reach = reachability plane in
  let out = ref [] in
  for i = n1 - 1 downto 0 do
    for j = n2 - 1 downto 0 do
      if
        reach.(i).(j)
        && forbidden plane (i + 1) j
        && forbidden plane i (j + 1)
      then out := (i, j) :: !out
    done
  done;
  !out

let possible plane = reachable_deadlocks plane <> []

let witness_prefix plane =
  match reachable_deadlocks plane with
  | [] -> None
  | (di, dj) :: _ ->
      (* walk back along reachable predecessors to (0,0), then emit *)
      let reach = reachability plane in
      let rec back i j acc =
        if i = 0 && j = 0 then acc
        else if i > 0 && reach.(i - 1).(j) then
          back (i - 1) j ((0, (Plane.extension plane 0).(i - 1)) :: acc)
        else begin
          assert (j > 0 && reach.(i).(j - 1));
          back i (j - 1) ((1, (Plane.extension plane 1).(j - 1)) :: acc)
        end
      in
      Some (back di dj [])

let deadlock_free_and_safe plane =
  (not (possible plane)) && Separation.is_safe plane
