open Distlock_txn
open Distlock_sched

type t = {
  sys : System.t;
  exts : int array array; (* exts.(0), exts.(1): axis order of step indices *)
  pos : int array array; (* pos.(axis).(step) = 1-based axis position *)
  rects : Rect.t list;
}

let of_extensions sys ext1 ext2 =
  let t1, t2 = System.pair sys in
  if not (Distlock_order.Poset.is_linear_extension (Txn.order t1) ext1) then
    invalid_arg "Plane.of_extensions: ext1 is not a linear extension of T1";
  if not (Distlock_order.Poset.is_linear_extension (Txn.order t2) ext2) then
    invalid_arg "Plane.of_extensions: ext2 is not a linear extension of T2";
  let positions ext =
    let p = Array.make (Array.length ext) 0 in
    Array.iteri (fun i s -> p.(s) <- i + 1) ext;
    p
  in
  let pos1 = positions ext1 and pos2 = positions ext2 in
  let common = System.common_locked sys 0 1 in
  let rects =
    List.map
      (fun e ->
        let get f txn = match f txn e with
          | Some s -> s
          | None -> assert false (* e is commonly locked *)
        in
        {
          Rect.entity = e;
          x_lock = pos1.(get Txn.lock_of t1);
          x_unlock = pos1.(get Txn.unlock_of t1);
          y_lock = pos2.(get Txn.lock_of t2);
          y_unlock = pos2.(get Txn.unlock_of t2);
        })
      common
  in
  { sys; exts = [| ext1; ext2 |]; pos = [| pos1; pos2 |]; rects }

let make sys =
  let t1, t2 = System.pair sys in
  if not (Txn.is_total t1 && Txn.is_total t2) then
    invalid_arg "Plane.make: transactions are not totally ordered";
  of_extensions sys
    (Distlock_order.Poset.linearize (Txn.order t1))
    (Distlock_order.Poset.linearize (Txn.order t2))

let system t = t.sys

let width t = Array.length t.exts.(0)

let height t = Array.length t.exts.(1)

let rectangles t = t.rects

let rectangle t e = List.find_opt (fun r -> r.Rect.entity = e) t.rects

let extension t axis = Array.copy t.exts.(axis)

let position t axis step = t.pos.(axis).(step)

let schedule_of_path t moves =
  let ups = List.length (List.filter Fun.id moves) in
  let rights = List.length moves - ups in
  if rights <> width t || ups <> height t then
    invalid_arg "Plane.schedule_of_path: wrong move counts";
  let i = ref 0 and j = ref 0 in
  let events =
    List.map
      (fun up ->
        if up then begin
          let s = t.exts.(1).(!j) in
          incr j;
          (1, s)
        end
        else begin
          let s = t.exts.(0).(!i) in
          incr i;
          (0, s)
        end)
      moves
  in
  Schedule.of_events events

let path_of_schedule t sched =
  let i = ref 0 and j = ref 0 in
  List.map
    (fun (txn, s) ->
      match txn with
      | 0 ->
          if !i >= width t || t.exts.(0).(!i) <> s then
            invalid_arg "Plane.path_of_schedule: schedule disagrees with axis 1";
          incr i;
          false
      | 1 ->
          if !j >= height t || t.exts.(1).(!j) <> s then
            invalid_arg "Plane.path_of_schedule: schedule disagrees with axis 2";
          incr j;
          true
      | _ -> invalid_arg "Plane.path_of_schedule: not a two-transaction schedule")
    (Schedule.events sched)

let b_vector t sched =
  (* b = 1 (above) iff t2's Ux precedes t1's Lx in the schedule;
     b = 0 (below) iff t1's Ux precedes t2's Lx. *)
  let index = Hashtbl.create 64 in
  List.iteri (fun p ev -> Hashtbl.replace index ev p) (Schedule.events sched);
  let t1, t2 = System.pair t.sys in
  List.map
    (fun r ->
      let e = r.Rect.entity in
      let p txn_idx txn f =
        match f txn e with
        | Some s -> Hashtbl.find index (txn_idx, s)
        | None -> assert false
      in
      let l1 = p 0 t1 Txn.lock_of
      and u1 = p 0 t1 Txn.unlock_of
      and l2 = p 1 t2 Txn.lock_of
      and u2 = p 1 t2 Txn.unlock_of in
      if u2 < l1 then (e, true)
      else if u1 < l2 then (e, false)
      else invalid_arg "Plane.b_vector: interleaved lock sections (illegal schedule)")
    t.rects

let separates t sched =
  let bv = b_vector t sched in
  let above = List.filter_map (fun (e, b) -> if b then Some e else None) bv in
  let below = List.filter_map (fun (e, b) -> if not b then Some e else None) bv in
  match (above, below) with a :: _, b :: _ -> Some (a, b) | _ -> None
