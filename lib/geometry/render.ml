open Distlock_txn

(* The picture uses two kinds of text rows:
   - point rows: the lattice points at height j, drawn as '+' ('*' when
     the schedule's staircase passes through them);
   - cell rows: the unit squares between heights j-1 and j, filled with
     the letter of the rectangle covering them (rectangles span from grid
     line [lock] to grid line [unlock] on each axis). *)
let plane ?schedule p =
  let sys = Plane.system p in
  let db = System.db sys in
  let n1 = Plane.width p and n2 = Plane.height p in
  (* square (i, j): x in (i, i+1), y in (j-1, j) *)
  let square i j =
    let covering =
      List.find_opt
        (fun r ->
          r.Rect.x_lock <= i && i < r.Rect.x_unlock && r.Rect.y_lock < j
          && j <= r.Rect.y_unlock)
        (Plane.rectangles p)
    in
    match covering with
    | None -> ' '
    | Some r ->
        let name = Database.name db r.Rect.entity in
        if String.length name > 0 then name.[0] else '#'
  in
  let on_path = Array.make_matrix (n1 + 1) (n2 + 1) false in
  (match schedule with
  | None -> ()
  | Some h ->
      let moves = Plane.path_of_schedule p h in
      let i = ref 0 and j = ref 0 in
      on_path.(0).(0) <- true;
      List.iter
        (fun up ->
          if up then incr j else incr i;
          on_path.(!i).(!j) <- true)
        moves);
  let t1, t2 = System.pair sys in
  let ext1 = Plane.extension p 0 and ext2 = Plane.extension p 1 in
  let buf = Buffer.create 1024 in
  let point_row j =
    Buffer.add_string buf (String.make 7 ' ');
    for i = 0 to n1 do
      Buffer.add_char buf (if on_path.(i).(j) then '*' else '+');
      if i < n1 then Buffer.add_string buf "  "
    done;
    Buffer.add_char buf '\n'
  in
  let cell_row j =
    let ylab = Step.to_string db (Txn.step t2 ext2.(j - 1)) in
    Buffer.add_string buf (Printf.sprintf "%6s " ylab);
    for i = 0 to n1 - 1 do
      let c = square i j in
      Buffer.add_char buf ' ';
      Buffer.add_char buf c;
      Buffer.add_char buf c
    done;
    Buffer.add_char buf '\n'
  in
  for j = n2 downto 1 do
    point_row j;
    cell_row j
  done;
  point_row 0;
  (* x axis labels *)
  Buffer.add_string buf (String.make 7 ' ');
  for i = 1 to n1 do
    Buffer.add_string buf (Printf.sprintf "%3s" (Step.to_string db (Txn.step t1 ext1.(i - 1))))
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf
