(** A subquadratic safety test for totally ordered pairs, in the spirit of
    the O(n log n)-class algorithms the paper cites for Proposition 1
    (Lipski–Papadimitriou [5]; Soisalon-Soininen–Wood [14]).

    For total orders, safety is strong connectivity of the interlock
    digraph [D(t1,t2)], whose arc set

    {v (x,y)  iff  L1x < U1y  and  L2y < U2x v}

    has Θ(k²) arcs in the worst case. Materializing it (as
    {!Separation.interlock} does) costs Θ(k²) regardless of the outcome.
    This module instead builds an {e arc-compressed} graph: entities are
    leaves of a segment tree over the [L2]-order, each internal node
    carrying a chain of helper vertices over its entities sorted by [U1],
    so that the out-neighbourhood of [x] — an [L2]-prefix intersected with
    a [U1]-suffix — is covered by O(log² k) arcs into helper vertices.
    Entity-to-entity reachability in the compressed graph equals
    reachability in [D], so Tarjan on O(k log k) vertices and
    O(k log² k) arcs decides strong connectivity.

    The test suite checks exact agreement with the naive construction;
    benchmark E2b measures the crossover. *)

val is_safe : Plane.t -> bool
(** Equivalent to {!Separation.is_safe} (no certificate construction). *)

val is_strongly_connected : Plane.t -> bool
(** Strong connectivity of [D(t1,t2)] via the compressed graph; [true]
    when there are fewer than two rectangles. *)

val rects_strongly_connected : Rect.t list -> bool
(** The same test on bare rectangles (no plane construction), for
    synthetic benchmarking. *)

val compressed_size : Plane.t -> int * int
(** (vertices, arcs) of the compressed graph — for the benchmark's size
    accounting. *)
