open Distlock_txn
open Distlock_sched
open Distlock_graph

(** Proposition 1: deciding safety of a pair of *totally ordered*
    transactions, and constructing separating (hence non-serializable)
    schedules.

    For total orders there is a single geometric picture, so the interlock
    digraph [D(t1,t2)] of Definition 1 decides safety exactly: the pair is
    safe iff the digraph is strongly connected (or has fewer than two
    rectangles). When it is not, any dominator yields a realizable b-vector
    whose path separates the dominator's rectangles from the rest. *)

type verdict =
  | Safe
  | Unsafe of {
      schedule : Schedule.t;  (** A legal, non-serializable schedule. *)
      below : Database.entity list;  (** Rectangles the path passes below. *)
      above : Database.entity list;
    }

val interlock : Plane.t -> Digraph.t * Database.entity array
(** [D(t1,t2)] over the commonly locked entities; the array maps vertex
    indices to entity ids. *)

val rects_strongly_connected : Rect.t list -> bool
(** The naive Θ(k²) strong-connectivity test on bare rectangles, for
    benchmarking against {!Fast_test}. *)

val realize : Plane.t -> above:(Database.entity -> bool) -> Schedule.t option
(** A legal schedule whose path passes above exactly the rectangles chosen
    by [above], if one exists (memoized lattice search, O(n²) states). *)

val decide : Plane.t -> verdict
(** Safety of the totally ordered pair. [Unsafe] verdicts come with a
    verified separating schedule. *)

val is_safe : Plane.t -> bool
