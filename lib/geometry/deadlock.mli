(** Deadlock analysis in the coordinated plane.

    The paper notes (Section 6) that in the centralized case deadlocks can
    be studied side by side with correctness [7], while distributed
    deadlocks are left open. This module implements the geometric side: a
    lattice point [(i,j)] — [i] steps of [t1] and [j] of [t2] executed — is
    {e forbidden} when both transactions hold a common entity's lock there,
    and a reachable point is a {e deadlock state} when both of its outgoing
    moves lead into forbidden points. A pair of total orders can deadlock
    iff such a state exists, testable in O(n²) by dynamic programming over
    the grid.

    For genuinely distributed (partial-order) transactions, deadlock
    reachability is decided by direct state exploration
    ({!Distlock_sched.Enumerate.has_deadlock}); the test suite checks that
    on totally ordered pairs the two notions coincide. *)

val forbidden : Plane.t -> int -> int -> bool
(** Is the point [(i,j)] forbidden (some common entity locked by both)? *)

val reachable_deadlocks : Plane.t -> (int * int) list
(** All reachable deadlock states, ascending lexicographic order. *)

val possible : Plane.t -> bool
(** Can the totally ordered pair reach a deadlock? *)

val witness_prefix : Plane.t -> Distlock_sched.Schedule.event list option
(** A legal prefix of events driving the pair into a deadlock state, if
    one exists: after executing it, neither transaction can take another
    step. *)

val deadlock_free_and_safe : Plane.t -> bool
(** The conjunction studied in [7]: no separating path and no reachable
    deadlock state. *)
