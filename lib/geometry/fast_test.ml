open Distlock_graph

(* Compressed interlock graph. Leaves are entities; internal segment-tree
   nodes over the L2-order carry helper chains sorted by U1 so that the
   target set of x — an L2-prefix intersected with a U1-suffix — is
   reachable through O(log^2 k) query arcs. *)

type compressed = {
  graph : Digraph.t;
  num_entities : int;
}

let build_rects rects =
  let k = Array.length rects in
  let l1 = Array.map (fun r -> r.Rect.x_lock) rects in
  let u1 = Array.map (fun r -> r.Rect.x_unlock) rects in
  let l2 = Array.map (fun r -> r.Rect.y_lock) rects in
  let u2 = Array.map (fun r -> r.Rect.y_unlock) rects in
  (* entities sorted by L2 *)
  let byl2 = Array.init k Fun.id in
  Array.sort (fun a b -> compare l2.(a) l2.(b)) byl2;
  let sorted_l2 = Array.map (fun e -> l2.(e)) byl2 in
  (* Segment tree nodes over [lo, hi) ranges of the L2-order. Each node
     stores its member entities sorted by U1 and the id of its first
     helper vertex (helpers are consecutive). *)
  let nodes = ref [] in
  (* (lo, hi, members_sorted_by_u1, first_helper_id) collected later *)
  let next_vertex = ref k in
  let rec build_node lo hi =
    if hi - lo < 1 then None
    else begin
      let members = Array.sub byl2 lo (hi - lo) in
      Array.sort (fun a b -> compare u1.(a) u1.(b)) members;
      let first_helper = !next_vertex in
      next_vertex := !next_vertex + Array.length members;
      let node = (lo, hi, members, first_helper) in
      nodes := node :: !nodes;
      if hi - lo > 1 then begin
        let mid = (lo + hi) / 2 in
        ignore (build_node lo mid);
        ignore (build_node mid hi)
      end;
      Some node
    end
  in
  let root = if k > 0 then build_node 0 k else None in
  ignore root;
  let g = Digraph.create (max 1 !next_vertex) in
  (* helper chain arcs: h_j -> entity_j and h_j -> h_{j+1} *)
  List.iter
    (fun (_, _, members, first) ->
      Array.iteri
        (fun j e ->
          Digraph.add_arc g (first + j) e;
          if j + 1 < Array.length members then
            Digraph.add_arc g (first + j) (first + j + 1))
        members)
    !nodes;
  (* node lookup by (lo, hi) for canonical decomposition *)
  let node_tbl = Hashtbl.create 64 in
  List.iter
    (fun ((lo, hi, _, _) as node) -> Hashtbl.replace node_tbl (lo, hi) node)
    !nodes;
  (* binary search: number of sorted_l2 values < v *)
  let prefix_len v =
    let lo = ref 0 and hi = ref k in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sorted_l2.(mid) < v then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (* first index in members (sorted by u1) with u1 > threshold *)
  let first_above members threshold =
    let lo = ref 0 and hi = ref (Array.length members) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if u1.(members.(mid)) > threshold then hi := mid else lo := mid + 1
    done;
    !lo
  in
  (* canonical decomposition of [0, plen) and query arcs *)
  let add_query_arcs x plen threshold =
    let rec go lo hi =
      if plen <= lo || hi <= lo then ()
      else if plen >= hi then begin
        (* whole node is inside the prefix *)
        match Hashtbl.find_opt node_tbl (lo, hi) with
        | Some (_, _, members, first) ->
            let idx = first_above members threshold in
            if idx < Array.length members then
              Digraph.add_arc g x (first + idx)
        | None -> assert false
      end
      else begin
        let mid = (lo + hi) / 2 in
        go lo mid;
        go mid hi
      end
    in
    go 0 k
  in
  for x = 0 to k - 1 do
    add_query_arcs x (prefix_len u2.(x)) l1.(x)
  done;
  { graph = g; num_entities = k }

let build plane = build_rects (Array.of_list (Plane.rectangles plane))

let strongly_connected_of c =
  if c.num_entities < 2 then true
  else begin
    let r = Scc.compute c.graph in
    let comp0 = r.Scc.component.(0) in
    let ok = ref true in
    for e = 1 to c.num_entities - 1 do
      if r.Scc.component.(e) <> comp0 then ok := false
    done;
    !ok
  end

let is_strongly_connected plane = strongly_connected_of (build plane)

let rects_strongly_connected rects =
  strongly_connected_of (build_rects (Array.of_list rects))

let is_safe plane = is_strongly_connected plane

let compressed_size plane =
  let c = build plane in
  (Digraph.n c.graph, Digraph.num_arcs c.graph)
