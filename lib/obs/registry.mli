(** A metrics registry: names, help strings, and labels over the raw
    {!Metric} instruments, with Prometheus text exposition.

    Registration is get-or-create keyed on (name, labels): asking twice
    for the same key returns the same handle, so modules can keep lazy
    handles without coordinating. Re-registering a name as a different
    instrument kind raises [Invalid_argument].

    Get-or-create, {!entries}, and {!reset} are domain-safe (one mutex
    per registry): concurrent registration of the same key from several
    worker domains yields a single shared instrument. *)

type instrument =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

type entry = {
  name : string;
  help : string;
  labels : (string * string) list;
  instrument : instrument;
}

type t

val create : unit -> t

val counter :
  t -> ?labels:(string * string) list -> help:string -> string -> Metric.counter

val gauge :
  t -> ?labels:(string * string) list -> help:string -> string -> Metric.gauge

val histogram :
  t ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  help:string ->
  string ->
  Metric.histogram

val entries : t -> entry list
(** In first-registration order. *)

val reset : t -> unit
(** Zero every instrument; registrations (and handles) survive. *)

val pp_prometheus : Format.formatter -> t -> unit
(** Prometheus text exposition format 0.0.4: HELP/TYPE headers per
    family, histogram [_bucket]/[_sum]/[_count] expansion with
    cumulative [le] labels ending at [+Inf]. *)

val to_prometheus : t -> string
