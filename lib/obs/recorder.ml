(* The flight recorder: a bounded, lock-striped ring buffer of recent
   spans and events, cheap enough to leave on by default, dumped only
   when something anomalous happens (a decision errors, a budget
   exhausts, a --verify cross-check diverges).

   Concurrency: each push locks exactly one stripe, chosen by the
   emitting domain's id, so domains contend only when their ids collide
   modulo the stripe count. Inside a stripe the buffer is a classic
   ring: `next` wraps, old records are overwritten, nothing allocates
   beyond the record already in hand. A record is an immutable OCaml
   value stored under the stripe mutex, so a snapshot can never observe
   a torn (half-written) record. *)

type record = Rspan of Span.span | Revent of Span.event

let record_time = function
  | Rspan s -> s.Span.start_s
  | Revent e -> e.Span.time_s

let record_to_json = function
  | Rspan s -> Span.span_to_json s
  | Revent e -> Span.event_to_json e

type stripe = {
  lock : Mutex.t;
  buf : record option array;
  mutable next : int;  (* next write slot *)
  mutable pushes : int;  (* lifetime pushes into this stripe *)
}

type t = {
  stripes : stripe array;
  capacity : int;  (* per stripe *)
  registries : (unit -> (string * Registry.t) list) Atomic.t;
  dump_dest : (unit -> out_channel) Atomic.t;
  dumps : int Atomic.t;
  dump_limit : int;
}

let create ?(stripes = 8) ?(capacity = 512) ?(dump_limit = 5) () =
  if stripes < 1 then invalid_arg "Recorder.create: stripes must be >= 1";
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  {
    stripes =
      Array.init stripes (fun _ ->
          {
            lock = Mutex.create ();
            buf = Array.make capacity None;
            next = 0;
            pushes = 0;
          });
    capacity;
    registries = Atomic.make (fun () -> []);
    dump_dest = Atomic.make (fun () -> stderr);
    dumps = Atomic.make 0;
    dump_limit;
  }

let with_lock lock f =
  Mutex.lock lock;
  match f () with
  | r ->
      Mutex.unlock lock;
      r
  | exception e ->
      Mutex.unlock lock;
      raise e

let push t r =
  let st =
    t.stripes.((Domain.self () :> int) mod Array.length t.stripes)
  in
  with_lock st.lock (fun () ->
      st.buf.(st.next) <- Some r;
      st.next <- (st.next + 1) mod t.capacity;
      st.pushes <- st.pushes + 1)

let sink t =
  {
    Sink.on_span = (fun s -> push t (Rspan s));
    on_event = (fun e -> push t (Revent e));
    flush = ignore;
  }

let set_registries t f = Atomic.set t.registries f

let set_dump_dest t f = Atomic.set t.dump_dest f

(* Oldest-first snapshot of one stripe: the ring reads from `next`
   (oldest surviving slot once the buffer has wrapped) around to
   `next - 1`. *)
let stripe_records st capacity =
  with_lock st.lock (fun () ->
      let out = ref [] in
      for i = capacity - 1 downto 0 do
        match st.buf.((st.next + i) mod capacity) with
        | Some r -> out := r :: !out
        | None -> ()
      done;
      (!out, st.pushes))

let records t =
  let per_stripe =
    Array.to_list
      (Array.map (fun st -> fst (stripe_records st t.capacity)) t.stripes)
  in
  (* Merge the stripes on the records' wall-clock stamps so the dump
     reads chronologically; stable sort keeps same-stamp records in
     stripe order. *)
  List.stable_sort
    (fun a b -> Float.compare (record_time a) (record_time b))
    (List.concat per_stripe)

let dropped t =
  Array.fold_left
    (fun acc st ->
      let _, pushes = stripe_records st t.capacity in
      acc + max 0 (pushes - t.capacity))
    0 t.stripes

let gc_json () =
  let q = Gc.quick_stat () in
  Json.Obj
    [
      (* [quick_stat]'s counters only refresh at GC events (a short run
         with no minor collection reports zeros); [Gc.minor_words] reads
         the allocation pointer and is exact at any moment. *)
      ("minor_words", Json.Float (Gc.minor_words ()));
      ("promoted_words", Json.Float q.Gc.promoted_words);
      ("major_words", Json.Float q.Gc.major_words);
      ("minor_collections", Json.Int q.Gc.minor_collections);
      ("major_collections", Json.Int q.Gc.major_collections);
      ("heap_words", Json.Int q.Gc.heap_words);
      ("compactions", Json.Int q.Gc.compactions);
    ]

let instrument_json (e : Registry.entry) =
  let labels =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.Registry.labels)
  in
  let base kind fields =
    Json.Obj
      ([
         ("type", Json.Str "metric");
         ("name", Json.Str e.Registry.name);
         ("labels", labels);
         ("kind", Json.Str kind);
       ]
      @ fields)
  in
  match e.Registry.instrument with
  | Registry.Counter c ->
      base "counter" [ ("value", Json.Int (Metric.counter_value c)) ]
  | Registry.Gauge g ->
      base "gauge" [ ("value", Json.Float (Metric.gauge_value g)) ]
  | Registry.Histogram h ->
      base "histogram"
        [
          ( "le",
            Json.List
              (Array.to_list
                 (Array.map
                    (fun b ->
                      if b = Float.infinity then Json.Str "+Inf"
                      else Json.Float b)
                    (Metric.bucket_bounds h))) );
          ( "cumulative",
            Json.List
              (Array.to_list
                 (Array.map (fun n -> Json.Int n) (Metric.cumulative h))) );
          ("sum", Json.Float (Metric.histogram_sum h));
          ("count", Json.Int (Metric.histogram_count h));
        ]

let dump t ~reason oc =
  let line j =
    output_string oc (Json.to_string j);
    output_char oc '\n'
  in
  let recs = records t in
  line
    (Json.Obj
       [
         ("type", Json.Str "flight_dump");
         ("reason", Json.Str reason);
         ("time_s", Json.Float (Unix.gettimeofday ()));
         ("records", Json.Int (List.length recs));
         ("dropped", Json.Int (dropped t));
         ("gc", gc_json ());
       ]);
  List.iter (fun r -> line (record_to_json r)) recs;
  List.iter
    (fun (label, reg) ->
      List.iter
        (fun e ->
          match instrument_json e with
          | Json.Obj fields ->
              line (Json.Obj (("registry", Json.Str label) :: fields))
          | j -> line j)
        (Registry.entries reg))
    ((Atomic.get t.registries) ());
  flush oc

(* ------------------------------------------------------------------ *)
(* The process-global instance the anomaly hooks consult. Installed by
   the CLI at startup; libraries only ever call [anomaly], which is a
   no-op until something is installed, so tests and embedders that
   exercise Unknown verdicts on purpose see no surprise output. *)

let installed : t option Atomic.t = Atomic.make None

let set_global r = Atomic.set installed r

let global () = Atomic.get installed

let anomaly ~reason =
  match Atomic.get installed with
  | None -> ()
  | Some t ->
      (* Cap the dumps: one anomaly per decision in a pathological batch
         would flood stderr with near-identical flight dumps. *)
      if Atomic.fetch_and_add t.dumps 1 < t.dump_limit then
        dump t ~reason ((Atomic.get t.dump_dest) ())

let dump_count t = Atomic.get t.dumps
