(** Chrome trace-event export.

    Renders a collected span/event stream as the JSON object format of
    [chrome://tracing] / Perfetto: spans become "complete" events
    ([ph:"X"], microsecond [ts]/[dur]), events become thread-scoped
    "instants" ([ph:"i"]), and every OCaml domain becomes its own
    thread track ([tid] = the record's ["domain"] attribute, named by
    [ph:"M"] metadata). Timestamps are microseconds relative to the
    earliest record in the stream. *)

val to_json :
  ?pid:int ->
  ?process_name:string ->
  spans:Span.span list ->
  events:Span.event list ->
  unit ->
  Json.t
(** The [{"traceEvents": [...], "displayTimeUnit": "ms"}] object.
    [pid] defaults to [1]; [process_name] (default ["distlock"]) names
    the process track. *)

val write :
  ?pid:int ->
  ?process_name:string ->
  out_channel ->
  spans:Span.span list ->
  events:Span.event list ->
  unit ->
  unit
(** {!to_json} pretty-printed to a channel (not closed). *)

val collector :
  ?pid:int ->
  ?process_name:string ->
  unit ->
  Sink.t * (out_channel -> unit)
(** A buffering sink plus the closure that renders everything received
    so far — tee it with the live sink and call the closure at exit.
    Serialized (built on {!Sink.collecting}). *)
