type span = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;
  duration_s : float;
  attrs : Attr.t;
}

type event = {
  name : string;
  time_s : float;
  span : int option;
  attrs : Attr.t;
}

let attrs_field = function
  | [] -> []
  | attrs -> [ ("attrs", Attr.to_json attrs) ]

let span_to_json (s : span) =
  Json.Obj
    ([ ("type", Json.Str "span"); ("id", Json.Int s.id) ]
    @ (match s.parent with
      | Some p -> [ ("parent", Json.Int p) ]
      | None -> [])
    @ [
        ("name", Json.Str s.name);
        ("start_s", Json.Float s.start_s);
        ("duration_s", Json.Float s.duration_s);
      ]
    @ attrs_field s.attrs)

let event_to_json (e : event) =
  Json.Obj
    ([ ("type", Json.Str "event"); ("name", Json.Str e.name);
       ("time_s", Json.Float e.time_s) ]
    @ (match e.span with
      | Some p -> [ ("span", Json.Int p) ]
      | None -> [])
    @ attrs_field e.attrs)

let pp_span ppf (s : span) =
  Format.fprintf ppf "span %s (%.3f ms)%s%a" s.name (s.duration_s *. 1_000.)
    (if s.attrs = [] then "" else " ")
    Attr.pp s.attrs

let pp_event ppf (e : event) =
  Format.fprintf ppf "event %s%s%a" e.name
    (if e.attrs = [] then "" else " ")
    Attr.pp e.attrs
