(** Typed key/value attributes carried by spans and events. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type t = (string * value) list

val str : string -> string -> string * value

val int : string -> int -> string * value

val float : string -> float -> string * value

val bool : string -> bool -> string * value

val json_of_value : value -> Json.t

val to_json : t -> Json.t

val value_to_string : value -> string

val pp : Format.formatter -> t -> unit
(** Space-separated [k=v] pairs, the pretty-sink form. *)
