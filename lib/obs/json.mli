(** A minimal JSON value and writer — just enough for JSONL traces,
    [--json] CLI output, and bench artifacts, with no external
    dependency. Serialization only; the repo never needs to parse. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN serializes as [null]. *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-escape (without the surrounding quotes). *)

val to_string : t -> string
(** Compact single-line form — one trace record per line in JSONL. *)

val to_string_pretty : t -> string
(** Multi-line, two-space-indented form for human-facing [--json]. *)
