type instrument =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

type entry = {
  name : string;
  help : string;
  labels : (string * string) list;
  instrument : instrument;
}

(* The table and order list are guarded by [lock]: get-or-create must be
   atomic under concurrent registration from worker domains, or two
   domains asking for the same (name, labels) key could each create an
   instrument and split the counts between them. *)
type t = {
  tbl : (string * (string * string) list, entry) Hashtbl.t;
  mutable order : (string * (string * string) list) list;
      (* reversed first-registration order *)
  lock : Mutex.t;
}

let create () = { tbl = Hashtbl.create 32; order = []; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | r ->
      Mutex.unlock t.lock;
      r
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let valid_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       n

let register t ~name ~help ~labels make wrong_kind =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid metric name %S" name);
  let key = (name, labels) in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e -> (
          match wrong_kind e.instrument with
          | Some got ->
              invalid_arg
                (Printf.sprintf "Registry: %s already registered as a %s" name
                   got)
          | None -> e.instrument)
      | None ->
          let instrument = make () in
          Hashtbl.add t.tbl key { name; help; labels; instrument };
          t.order <- key :: t.order;
          instrument)

let kind_label = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let counter t ?(labels = []) ~help name =
  match
    register t ~name ~help ~labels
      (fun () -> Counter (Metric.counter ()))
      (function Counter _ -> None | i -> Some (kind_label i))
  with
  | Counter c -> c
  | _ -> assert false

let gauge t ?(labels = []) ~help name =
  match
    register t ~name ~help ~labels
      (fun () -> Gauge (Metric.gauge ()))
      (function Gauge _ -> None | i -> Some (kind_label i))
  with
  | Gauge g -> g
  | _ -> assert false

let histogram t ?(labels = []) ?buckets ~help name =
  match
    register t ~name ~help ~labels
      (fun () -> Histogram (Metric.histogram ?buckets ()))
      (function Histogram _ -> None | i -> Some (kind_label i))
  with
  | Histogram h -> h
  | _ -> assert false

let entries t =
  with_lock t (fun () -> List.rev_map (Hashtbl.find t.tbl) t.order)

let reset t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ e ->
          match e.instrument with
          | Counter c -> Metric.reset_counter c
          | Gauge g -> Metric.reset_gauge g
          | Histogram h -> Metric.reset_histogram h)
        t.tbl)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (version 0.0.4): one HELP/TYPE header per
   metric family, then one sample line per labeled instance. *)

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* HELP text escapes only backslash and newline (the 0.0.4 spec leaves
   double quotes alone outside label values). *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_block labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let float_sample f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let bound_label b =
  if b = Float.infinity then "+Inf" else float_sample b

(* Group entries by family so every sample of a family sits under its
   one HELP/TYPE header — the exposition format forbids interleaving. *)
let families t =
  let seen = Hashtbl.create 16 in
  let es = entries t in
  List.filter_map
    (fun (e : entry) ->
      if Hashtbl.mem seen e.name then None
      else begin
        Hashtbl.add seen e.name ();
        Some (e.name, List.filter (fun e' -> e'.name = e.name) es)
      end)
    es

let pp_prometheus ppf t =
  List.iter
    (fun (_, members) ->
      (match members with
      | e :: _ ->
          Format.fprintf ppf "# HELP %s %s@." e.name (escape_help e.help);
          Format.fprintf ppf "# TYPE %s %s@." e.name (kind_label e.instrument)
      | [] -> ());
      List.iter
        (fun e ->
          match e.instrument with
      | Counter c ->
          Format.fprintf ppf "%s%s %d@." e.name (label_block e.labels)
            (Metric.counter_value c)
      | Gauge g ->
          Format.fprintf ppf "%s%s %s@." e.name (label_block e.labels)
            (float_sample (Metric.gauge_value g))
      | Histogram h ->
          let bounds = Metric.bucket_bounds h in
          let cum = Metric.cumulative h in
          Array.iteri
            (fun i c ->
              let le =
                if i < Array.length bounds then bounds.(i) else Float.infinity
              in
              Format.fprintf ppf "%s_bucket%s %d@." e.name
                (label_block (e.labels @ [ ("le", bound_label le) ]))
                c)
            cum;
          Format.fprintf ppf "%s_sum%s %s@." e.name (label_block e.labels)
            (float_sample (Metric.histogram_sum h));
          Format.fprintf ppf "%s_count%s %d@." e.name (label_block e.labels)
            (Metric.histogram_count h))
        members)
    (families t)

let to_prometheus t = Format.asprintf "%a" pp_prometheus t
