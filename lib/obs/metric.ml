(* Instruments are domain-safe: counters and gauges are [Atomic] cells
   (an update is one lock-free RMW), histograms take a per-histogram
   mutex because one observation touches a bucket, the sum, and the
   count and must stay consistent under concurrent readers. *)

type counter = int Atomic.t

let counter () = Atomic.make 0

let rec add_positive c n =
  let cur = Atomic.get c in
  if not (Atomic.compare_and_set c cur (cur + n)) then add_positive c n

let incr_by c n = if n > 0 then add_positive c n

let incr c = Atomic.incr c

let counter_value c = Atomic.get c

let reset_counter c = Atomic.set c 0

type gauge = float Atomic.t

let gauge () = Atomic.make 0.

let set g v = Atomic.set g v

let gauge_value g = Atomic.get g

let reset_gauge g = Atomic.set g 0.

(* Fixed upper-bound buckets; counts has one extra slot for +Inf. The
   bounds are validated once at creation so [observe] is a bare linear
   scan — bucket arrays are short (≤ ~12 entries). *)
type histogram = {
  bounds : float array;
  counts : int array;
  mutable sum : float;
  mutable observations : int;
  h_lock : Mutex.t;
}

(* 1µs .. 10s — spans engine stage times from trivial connectivity
   checks to budget-capped exhaustive oracles. *)
let latency_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

let histogram ?(buckets = latency_buckets) () =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metric.histogram: empty bucket list";
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metric.histogram: bucket bounds must be strictly increasing"
  done;
  { bounds = Array.copy buckets; counts = Array.make (n + 1) 0; sum = 0.;
    observations = 0; h_lock = Mutex.create () }

let with_lock h f =
  Mutex.lock h.h_lock;
  match f () with
  | r ->
      Mutex.unlock h.h_lock;
      r
  | exception e ->
      Mutex.unlock h.h_lock;
      raise e

let observe h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  with_lock h (fun () ->
      h.counts.(i) <- h.counts.(i) + 1;
      h.sum <- h.sum +. v;
      h.observations <- h.observations + 1)

let histogram_sum h = with_lock h (fun () -> h.sum)

let histogram_count h = with_lock h (fun () -> h.observations)

let bucket_bounds h = Array.copy h.bounds

(* Cumulative counts in bound order, ending with the +Inf total. *)
let cumulative h =
  let counts = with_lock h (fun () -> Array.copy h.counts) in
  let acc = ref 0 in
  Array.map
    (fun c ->
      acc := !acc + c;
      !acc)
    counts

(* Prometheus-style [histogram_quantile]: find the bucket containing the
   q-th observation and interpolate linearly inside it. The +Inf bucket
   has no upper edge, so a quantile landing there clamps to the highest
   finite bound — the honest answer a fixed-bucket sketch can give. *)
let quantile h q =
  if q < 0. || q > 1. then invalid_arg "Metric.quantile: q outside [0,1]";
  let counts, total =
    with_lock h (fun () -> (Array.copy h.counts, h.observations))
  in
  if total = 0 then Float.nan
  else begin
    let n = Array.length h.bounds in
    let target = q *. float_of_int total in
    let rec find i acc =
      if i > n then n
      else
        let acc' = acc + counts.(i) in
        if float_of_int acc' >= target && counts.(i) > 0 then i
        else find (i + 1) acc'
    in
    let rec below i acc = if i <= 0 then acc else below (i - 1) (acc + counts.(i - 1)) in
    let i = find 0 0 in
    if i >= n then h.bounds.(n - 1)
    else
      let lo = if i = 0 then 0. else h.bounds.(i - 1) in
      let hi = h.bounds.(i) in
      let before = below i 0 in
      let inside = counts.(i) in
      if inside = 0 then hi
      else
        let frac = (target -. float_of_int before) /. float_of_int inside in
        let frac = Float.max 0. (Float.min 1. frac) in
        lo +. ((hi -. lo) *. frac)
  end

let reset_histogram h =
  with_lock h (fun () ->
      Array.fill h.counts 0 (Array.length h.counts) 0;
      h.sum <- 0.;
      h.observations <- 0)
