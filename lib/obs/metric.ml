type counter = { mutable count : int }

let counter () = { count = 0 }

let incr_by c n = if n > 0 then c.count <- c.count + n

let incr c = c.count <- c.count + 1

let counter_value c = c.count

let reset_counter c = c.count <- 0

type gauge = { mutable value : float }

let gauge () = { value = 0. }

let set g v = g.value <- v

let gauge_value g = g.value

let reset_gauge g = g.value <- 0.

(* Fixed upper-bound buckets; counts has one extra slot for +Inf. The
   bounds are validated once at creation so [observe] is a bare linear
   scan — bucket arrays are short (≤ ~12 entries). *)
type histogram = {
  bounds : float array;
  counts : int array;
  mutable sum : float;
  mutable observations : int;
}

(* 1µs .. 10s — spans engine stage times from trivial connectivity
   checks to budget-capped exhaustive oracles. *)
let latency_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

let histogram ?(buckets = latency_buckets) () =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metric.histogram: empty bucket list";
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metric.histogram: bucket bounds must be strictly increasing"
  done;
  { bounds = Array.copy buckets; counts = Array.make (n + 1) 0; sum = 0.;
    observations = 0 }

let observe h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.observations <- h.observations + 1

let histogram_sum h = h.sum

let histogram_count h = h.observations

let bucket_bounds h = Array.copy h.bounds

(* Cumulative counts in bound order, ending with the +Inf total. *)
let cumulative h =
  let acc = ref 0 in
  Array.map
    (fun c ->
      acc := !acc + c;
      !acc)
    h.counts

let reset_histogram h =
  Array.fill h.counts 0 (Array.length h.counts) 0;
  h.sum <- 0.;
  h.observations <- 0
