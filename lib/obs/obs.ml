type level = Error | Warn | Info | Debug

let level_rank = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string = function
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let current_sink = ref Sink.noop

let current_level = ref Info

let global = Registry.create ()

let set_sink s = current_sink := s

let sink () = !current_sink

let set_level l = current_level := l

let level () = !current_level

(* The one check every instrumentation site makes first: with the no-op
   sink installed this is a pointer comparison, and attribute thunks are
   never forced. *)
let enabled () = not (Sink.is_noop !current_sink)

let logs l = enabled () && level_rank l <= level_rank !current_level

let now () = Unix.gettimeofday ()

type ctx = {
  id : int;
  parent : int option;
  ctx_name : string;
  start : float;
  mutable ctx_attrs : Attr.t;
  mutable closed : bool;
}

type span_ctx = ctx option

let next_id = ref 0

let stack = ref []

let current_span_id () = match !stack with [] -> None | p :: _ -> Some p

let start_span ?attrs name =
  if not (enabled ()) then None
  else begin
    incr next_id;
    let id = !next_id in
    let parent = current_span_id () in
    stack := id :: !stack;
    Some
      {
        id;
        parent;
        ctx_name = name;
        start = now ();
        ctx_attrs = (match attrs with None -> [] | Some f -> f ());
        closed = false;
      }
  end

let add_attrs sc attrs =
  match sc with
  | None -> ()
  | Some c -> c.ctx_attrs <- c.ctx_attrs @ attrs

let end_span sc =
  match sc with
  | None -> ()
  | Some c ->
      if not c.closed then begin
        c.closed <- true;
        (* Remove our frame wherever it sits, so an out-of-order close
           (e.g. via an exception path) cannot orphan the stack. *)
        stack := List.filter (fun i -> i <> c.id) !stack;
        !current_sink.Sink.on_span
          {
            Span.id = c.id;
            parent = c.parent;
            name = c.ctx_name;
            start_s = c.start;
            duration_s = now () -. c.start;
            attrs = c.ctx_attrs;
          }
      end

let with_span ?attrs name f =
  let sc = start_span ?attrs name in
  match f sc with
  | r ->
      end_span sc;
      r
  | exception e ->
      end_span sc;
      raise e

let event ?(level = Info) ?attrs name =
  if logs level then
    !current_sink.Sink.on_event
      {
        Span.name;
        time_s = now ();
        span = current_span_id ();
        attrs = (match attrs with None -> [] | Some f -> f ());
      }

let flush () = !current_sink.Sink.flush ()
