type level = Error | Warn | Info | Debug

let level_rank = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string = function
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

(* Sink and level are installed once at startup but read from every
   domain; [Atomic] makes the publication well-defined. *)
let current_sink = Atomic.make Sink.noop

let current_level = Atomic.make Info

let global = Registry.create ()

let set_sink s = Atomic.set current_sink s

let sink () = Atomic.get current_sink

let set_level l = Atomic.set current_level l

let level () = Atomic.get current_level

(* The one check every instrumentation site makes first: with the no-op
   sink installed this is a pointer comparison, and attribute thunks are
   never forced. *)
let enabled () = not (Sink.is_noop (Atomic.get current_sink))

let logs l = enabled () && level_rank l <= level_rank (Atomic.get current_level)

(* Two clocks, two jobs. [now_s] is the wall clock — the only clock
   that can say *when* something happened, so it stamps [start_s] and
   event times. [mono_s] is the monotonic clock — immune to NTP steps,
   so it measures every duration the system reports: span durations,
   stage timings, batch wall time (a wall-clock difference across a
   clock step is negative or garbage). Process CPU time ({!cpu_s})
   stays available for the attributes that genuinely mean CPU work —
   under several domains the two diverge, and mixing them under-reports
   wall time (or over-reports it by the domain count). *)
let now_s () = Unix.gettimeofday ()

external mono_s : unit -> float = "distlock_obs_mono_s"

let cpu_s () = Sys.time ()

let domain_id () = (Domain.self () :> int)

type ctx = {
  id : int;
  parent : int option;
  ctx_name : string;
  start : float;  (* wall clock: the span's [start_s] timestamp *)
  start_mono : float;  (* monotonic: what [duration_s] is measured on *)
  mutable ctx_attrs : Attr.t;
  mutable closed : bool;
}

type span_ctx = ctx option

let next_id = Atomic.make 0

(* The open-span stack is per domain: a worker's spans parent to the
   worker's own enclosing spans, never to a frame another domain pushed
   concurrently. *)
let stack : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current_span_id () =
  match !(Domain.DLS.get stack) with [] -> None | p :: _ -> Some p

let start_span ?attrs name =
  if not (enabled ()) then None
  else begin
    let id = 1 + Atomic.fetch_and_add next_id 1 in
    let parent = current_span_id () in
    let st = Domain.DLS.get stack in
    st := id :: !st;
    Some
      {
        id;
        parent;
        ctx_name = name;
        start = now_s ();
        start_mono = mono_s ();
        ctx_attrs =
          Attr.int "domain" (domain_id ())
          :: (match attrs with None -> [] | Some f -> f ());
        closed = false;
      }
  end

let add_attrs sc attrs =
  match sc with
  | None -> ()
  | Some c -> c.ctx_attrs <- c.ctx_attrs @ attrs

let end_span sc =
  match sc with
  | None -> ()
  | Some c ->
      if not c.closed then begin
        c.closed <- true;
        (* Remove our frame wherever it sits, so an out-of-order close
           (e.g. via an exception path) cannot orphan the stack. *)
        let st = Domain.DLS.get stack in
        st := List.filter (fun i -> i <> c.id) !st;
        (Atomic.get current_sink).Sink.on_span
          {
            Span.id = c.id;
            parent = c.parent;
            name = c.ctx_name;
            start_s = c.start;
            duration_s = mono_s () -. c.start_mono;
            attrs = c.ctx_attrs;
          }
      end

let with_span ?attrs name f =
  let sc = start_span ?attrs name in
  match f sc with
  | r ->
      end_span sc;
      r
  | exception e ->
      end_span sc;
      raise e

let event ?(level = Info) ?attrs name =
  if logs level then
    (Atomic.get current_sink).Sink.on_event
      {
        Span.name;
        time_s = now_s ();
        span = current_span_id ();
        attrs =
          Attr.int "domain" (domain_id ())
          :: (match attrs with None -> [] | Some f -> f ());
      }

let flush () = (Atomic.get current_sink).Sink.flush ()
