(** Pluggable destinations for spans and events. The tracer ({!Obs})
    holds exactly one sink; callers compose with {!tee} if they want
    more. *)

type t = {
  on_span : Span.span -> unit;
  on_event : Span.event -> unit;
  flush : unit -> unit;
}

val noop : t
(** The default: drops everything. {!Obs} treats this sink specially —
    tracing is disabled while it is installed, so instrumented code
    skips attribute construction entirely. *)

val is_noop : t -> bool

val serialized : t -> t
(** Wraps every callback of a sink in one shared mutex, so concurrent
    deliveries from several domains never interleave. The sinks below
    are already serialized; use this for hand-rolled ones. *)

val pretty : Format.formatter -> t
(** One human-readable line per record. Serialized. *)

val jsonl : out_channel -> t
(** One compact JSON object per line ({!Span.span_to_json} /
    {!Span.event_to_json}). The channel is not closed by the sink;
    [flush] flushes it. Serialized: lines from concurrent domains never
    interleave. *)

val tee : t -> t -> t

val collecting : unit -> t * (unit -> Span.span list * Span.event list)
(** In-memory sink for tests: the closure returns everything received so
    far, in emission order. Serialized. *)
