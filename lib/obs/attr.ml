type value = Str of string | Int of int | Float of float | Bool of bool

type t = (string * value) list

let str k v = (k, Str v)

let int k v = (k, Int v)

let float k v = (k, Float v)

let bool k v = (k, Bool v)

let json_of_value = function
  | Str s -> Json.Str s
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

let to_json attrs =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)

let value_to_string = function
  | Str s -> s
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let pp ppf attrs =
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%s=%s" k (value_to_string v))
    attrs
