type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips every float; trim the common integral case so the
   output stays readable ("3" not "3.0000000000000000"). *)
let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 128 in
  write buf j;
  Buffer.contents buf

(* Pretty printer: objects and lists one field per line, two-space
   indent — the shape `--json` consumers diff and grep. *)
let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as j -> write buf j
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          write_pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write_pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'

let to_string_pretty j =
  let buf = Buffer.create 256 in
  write_pretty buf 0 j;
  Buffer.contents buf
