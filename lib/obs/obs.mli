(** The process-wide tracer: one installed {!Sink}, a log level, a
    global metrics {!Registry}, and the span lifecycle (ids, parent
    stack, wall-clock timing).

    Overhead contract: with the default no-op sink, {!enabled} is a
    pointer comparison and every [?attrs] thunk goes unforced, so
    instrumented hot paths pay essentially nothing (the E14 experiment
    in [bench/] measures this).

    Domain-safety: span ids are allocated from one [Atomic]; the
    open-span stack is {e per domain} ([Domain.DLS]), so spans parent
    only within their own domain; every span and event carries a
    ["domain"] attribute; and the shipped sinks serialize writes, so
    concurrent JSONL lines never interleave. Install the sink and level
    from the main domain before spawning workers. *)

type level = Error | Warn | Info | Debug

val level_to_string : level -> string

val level_of_string : string -> level option
(** Accepts ["error"], ["warn"]/["warning"], ["info"], ["debug"]. *)

val set_sink : Sink.t -> unit

val sink : unit -> Sink.t

val set_level : level -> unit

val level : unit -> level

val enabled : unit -> bool
(** [true] iff a non-noop sink is installed. Guard attribute
    construction with this at instrumentation sites that build anything
    beyond a thunk. *)

val logs : level -> bool
(** [enabled () && l] is within the current log level — the gate
    {!event} applies. *)

val now_s : unit -> float
(** The wall clock (seconds since the epoch, sub-µs resolution) — the
    clock for {e timestamps}: span [start_s], event times. Not for
    durations: an NTP step between two reads yields a negative or
    garbage difference — use {!mono_s} for those. *)

val mono_s : unit -> float
(** The monotonic clock ([clock_gettime(CLOCK_MONOTONIC)], seconds
    from an arbitrary origin) — the clock for every {e duration} the
    system reports: span [duration_s], engine stage timings, batch
    wall time. Immune to NTP steps; comparable only within one
    process. Use this — not [Sys.time], which is process CPU time and
    diverges from wall time as soon as more than one domain runs. *)

val cpu_s : unit -> float
(** Process CPU time, for attributes that genuinely mean CPU work
    (e.g. the [cpu_seconds] span attribute on engine stages). Summed
    over all domains by the OS, so it can exceed wall time under
    parallelism. *)

val domain_id : unit -> int
(** The current domain's id, as tagged on spans and events. *)

val global : Registry.t
(** The process-wide metrics registry ([--metrics] exports it).
    Library-level progress counters (simulator ticks, brute-force
    pictures examined, …) live here; per-engine counters live in each
    engine's own {!Stats}-owned registry. *)

type span_ctx
(** An open span, or a free dummy when tracing is disabled. *)

val start_span : ?attrs:(unit -> Attr.t) -> string -> span_ctx
(** Opens a span as a child of the innermost open span {e of the
    calling domain}. The [attrs] thunk is forced only when tracing is
    enabled; a ["domain"] attribute is prepended automatically. *)

val add_attrs : span_ctx -> Attr.t -> unit
(** Appends attributes to an open span (callers should guard argument
    construction with {!enabled}). No-op on a dummy or closed span. *)

val end_span : span_ctx -> unit
(** Closes the span and delivers it to the sink; idempotent. *)

val with_span : ?attrs:(unit -> Attr.t) -> string -> (span_ctx -> 'a) -> 'a
(** Runs the function inside a span, closing it on return or exception.
    The callback receives the span to {!add_attrs} result attributes. *)

val current_span_id : unit -> int option

val event : ?level:level -> ?attrs:(unit -> Attr.t) -> string -> unit
(** Emits a point event (default level [Info]) attached to the innermost
    open span of the calling domain; dropped unless [logs level].
    Carries a ["domain"] attribute like spans do. *)

val flush : unit -> unit
