(* Chrome trace-event export: render collected spans and events in the
   JSON format chrome://tracing and Perfetto read natively.

   Mapping:
     span   -> a "complete" event  (ph "X", ts + dur in microseconds)
     event  -> an "instant" event  (ph "i", thread-scoped)
     domain -> a thread track      (tid = the span's "domain" attribute)

   The whole process is one pid; each OCaml domain becomes one thread
   track, named by "M"-phase metadata records, so a --jobs N batch shows
   its pool workers as N parallel lanes. Timestamps are microseconds
   relative to the earliest record, which keeps them small and lines the
   viewer up at t=0. *)

let domain_of (attrs : Attr.t) =
  match List.assoc_opt "domain" attrs with
  | Some (Attr.Int d) -> d
  | Some (Attr.Str _ | Attr.Float _ | Attr.Bool _) | None -> 0

let us_since t0 t = (t -. t0) *. 1e6

(* The earliest wall-clock timestamp in the stream, the export's t=0. *)
let origin spans events =
  let m =
    List.fold_left
      (fun acc (s : Span.span) -> Float.min acc s.Span.start_s)
      infinity spans
  in
  let m =
    List.fold_left
      (fun acc (e : Span.event) -> Float.min acc e.Span.time_s)
      m events
  in
  if m = infinity then 0. else m

let args_field (attrs : Attr.t) extra =
  match (attrs, extra) with
  | [], [] -> []
  | _ ->
      [
        ( "args",
          Json.Obj
            (extra
            @ List.map (fun (k, v) -> (k, Attr.json_of_value v)) attrs) );
      ]

let span_record ~pid ~t0 (s : Span.span) =
  Json.Obj
    ([
       ("name", Json.Str s.Span.name);
       ("cat", Json.Str "span");
       ("ph", Json.Str "X");
       ("ts", Json.Float (us_since t0 s.Span.start_s));
       ("dur", Json.Float (Float.max 0. (s.Span.duration_s *. 1e6)));
       ("pid", Json.Int pid);
       ("tid", Json.Int (domain_of s.Span.attrs));
     ]
    @ args_field s.Span.attrs
        (("span_id", Json.Int s.Span.id)
        ::
        (match s.Span.parent with
        | Some p -> [ ("parent", Json.Int p) ]
        | None -> [])))

let event_record ~pid ~t0 (e : Span.event) =
  Json.Obj
    ([
       ("name", Json.Str e.Span.name);
       ("cat", Json.Str "event");
       ("ph", Json.Str "i");
       ("s", Json.Str "t");
       ("ts", Json.Float (us_since t0 e.Span.time_s));
       ("pid", Json.Int pid);
       ("tid", Json.Int (domain_of e.Span.attrs));
     ]
    @ args_field e.Span.attrs
        (match e.Span.span with
        | Some p -> [ ("span", Json.Int p) ]
        | None -> []))

let metadata ~pid ~process_name tids =
  Json.Obj
    [
      ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("args", Json.Obj [ ("name", Json.Str process_name) ]);
    ]
  :: List.map
       (fun tid ->
         Json.Obj
           [
             ("name", Json.Str "thread_name");
             ("ph", Json.Str "M");
             ("pid", Json.Int pid);
             ("tid", Json.Int tid);
             ( "args",
               Json.Obj
                 [ ("name", Json.Str (Printf.sprintf "domain %d" tid)) ] );
           ])
       tids

let tracks spans events =
  let seen = Hashtbl.create 8 in
  let note attrs =
    let d = domain_of attrs in
    if not (Hashtbl.mem seen d) then Hashtbl.add seen d ()
  in
  List.iter (fun (s : Span.span) -> note s.Span.attrs) spans;
  List.iter (fun (e : Span.event) -> note e.Span.attrs) events;
  List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) seen [])

let to_json ?(pid = 1) ?(process_name = "distlock") ~spans ~events () =
  let t0 = origin spans events in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (metadata ~pid ~process_name (tracks spans events)
          @ List.map (span_record ~pid ~t0) spans
          @ List.map (event_record ~pid ~t0) events) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let write ?pid ?process_name oc ~spans ~events () =
  output_string oc (Json.to_string_pretty (to_json ?pid ?process_name ~spans ~events ()));
  output_char oc '\n'

(* A sink that buffers everything plus a closure that renders the
   buffer; what `--chrome-trace FILE` tees into. *)
let collector ?pid ?process_name () =
  let sink, read = Sink.collecting () in
  ( sink,
    fun oc ->
      let spans, events = read () in
      write ?pid ?process_name oc ~spans ~events () )
