(** The flight recorder: a bounded in-memory ring of recent spans and
    events, installed as (part of) the process sink by default and
    dumped — together with a [Gc.quick_stat] snapshot and the current
    counter/histogram values of the registered registries — when an
    anomaly fires: a decision errors, a budget exhausts, or a
    [--verify] cross-check diverges.

    Domain-safety: the ring is lock-striped by domain id, so a push
    locks exactly one stripe; records are immutable values stored under
    that stripe's mutex, so a snapshot never observes a torn record.
    Per-push cost is one mutex round-trip and one array store — cheap
    enough to leave on always (bench E18 measures the overhead). *)

type t

type record = Rspan of Span.span | Revent of Span.event

val create : ?stripes:int -> ?capacity:int -> ?dump_limit:int -> unit -> t
(** [stripes] (default [8]) mutex-striped rings; [capacity] (default
    [512]) records {e per stripe}; at most [dump_limit] (default [5])
    automatic {!anomaly} dumps per process, so a pathological batch
    cannot flood stderr. Raises [Invalid_argument] on non-positive
    [stripes] or [capacity]. *)

val sink : t -> Sink.t
(** Every span/event delivered is pushed into the ring (oldest records
    overwritten); [flush] is a no-op. Tee with a live sink as needed. *)

val records : t -> record list
(** Snapshot of everything currently buffered, merged across stripes in
    wall-clock order. Takes each stripe mutex once. *)

val set_registries : t -> (unit -> (string * Registry.t) list) -> unit
(** The registries whose instruments a dump snapshots (labelled for the
    dump output) — a closure, so registries created after installation
    (per-engine stats) are still seen. Default: none. *)

val set_dump_dest : t -> (unit -> out_channel) -> unit
(** Where {!anomaly} writes. Default: [stderr]. *)

val dump : t -> reason:string -> out_channel -> unit
(** Write the flight dump as JSON Lines: one header record ([type
    "flight_dump"] with the reason, wall time, record/drop counts, and
    [Gc.quick_stat] fields), then every buffered span/event, then one
    [type "metric"] record per registered instrument (histograms carry
    bounds, cumulative counts, sum, count — the per-checker latency
    snapshot). Flushes the channel; does not close it. *)

val set_global : t option -> unit
(** Install (or clear) the process-global recorder {!anomaly} consults.
    The CLI installs one at startup; libraries never install. *)

val global : unit -> t option

val anomaly : reason:string -> unit
(** Dump the global recorder to its destination, if one is installed
    and the dump cap has not been reached; otherwise a no-op. This is
    the hook engine code calls on anomalous paths. *)

val dump_count : t -> int
(** How many {!anomaly} dumps have fired (including ones suppressed by
    the cap). *)
