(** Raw metric instruments: monotone counters, gauges, and fixed-bucket
    latency histograms. All instruments are domain-safe: counters and
    gauges are [Atomic] cells (an update is one lock-free RMW), and a
    histogram observation runs under a per-histogram mutex so the
    bucket/sum/count triple stays consistent. Registration, naming, and
    exposition live in {!Registry}. *)

type counter

val counter : unit -> counter

val incr : counter -> unit

val incr_by : counter -> int -> unit
(** Adds [n] when positive; negative deltas are ignored (counters are
    monotone). *)

val counter_value : counter -> int

val reset_counter : counter -> unit

type gauge

val gauge : unit -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val reset_gauge : gauge -> unit

type histogram

val latency_buckets : float array
(** Default bounds, in seconds: 1µs, 10µs, …, 1s, 10s. *)

val histogram : ?buckets:float array -> unit -> histogram
(** [buckets] are upper bounds and must be strictly increasing; an
    implicit +Inf bucket is always appended. Raises [Invalid_argument]
    on an empty or non-increasing bound list. *)

val observe : histogram -> float -> unit
(** A value lands in the first bucket whose bound is [>=] it (Prometheus
    [le] semantics). *)

val histogram_sum : histogram -> float

val histogram_count : histogram -> int

val bucket_bounds : histogram -> float array

val cumulative : histogram -> int array
(** Cumulative per-bucket counts in bound order; the final entry is the
    +Inf total and equals {!histogram_count}. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-th quantile ([0 <= q <= 1]) by
    linear interpolation within the bucket holding the q-th observation
    (the same estimate Prometheus' [histogram_quantile] computes). A
    quantile landing in the +Inf bucket clamps to the highest finite
    bound; an empty histogram yields [nan]. Raises [Invalid_argument]
    when [q] is outside [0, 1]. *)

val reset_histogram : histogram -> unit
