/* Monotonic clock for span durations.

   Obs.now_s is wall-clock (gettimeofday): right for timestamps, wrong
   for durations — an NTP step between a span's start and end yields a
   negative or garbage duration_s.  clock_gettime(CLOCK_MONOTONIC) is
   immune to clock steps; no opam package is needed for one syscall. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value distlock_obs_mono_s(value unit)
{
  static LARGE_INTEGER freq; /* zero-initialised; set on first call */
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return caml_copy_double((double)now.QuadPart / (double)freq.QuadPart);
}

#else
#include <time.h>
#include <sys/time.h>

CAMLprim value distlock_obs_mono_s(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  /* Fallback: wall clock — still a valid clock, just steppable. */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
#endif
