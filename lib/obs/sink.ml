type t = {
  on_span : Span.span -> unit;
  on_event : Span.event -> unit;
  flush : unit -> unit;
}

let noop = { on_span = ignore; on_event = ignore; flush = ignore }

let is_noop s = s == noop

let pretty ppf =
  {
    on_span = (fun s -> Format.fprintf ppf "%a@." Span.pp_span s);
    on_event = (fun e -> Format.fprintf ppf "%a@." Span.pp_event e);
    flush = (fun () -> Format.pp_print_flush ppf ());
  }

let jsonl oc =
  let line j =
    output_string oc (Json.to_string j);
    output_char oc '\n'
  in
  {
    on_span = (fun s -> line (Span.span_to_json s));
    on_event = (fun e -> line (Span.event_to_json e));
    flush = (fun () -> flush oc);
  }

let tee a b =
  {
    on_span =
      (fun s ->
        a.on_span s;
        b.on_span s);
    on_event =
      (fun e ->
        a.on_event e;
        b.on_event e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

let collecting () =
  let spans = ref [] and events = ref [] in
  ( {
      on_span = (fun s -> spans := s :: !spans);
      on_event = (fun e -> events := e :: !events);
      flush = ignore;
    },
    fun () -> (List.rev !spans, List.rev !events) )
