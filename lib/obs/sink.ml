type t = {
  on_span : Span.span -> unit;
  on_event : Span.event -> unit;
  flush : unit -> unit;
}

let noop = { on_span = ignore; on_event = ignore; flush = ignore }

let is_noop s = s == noop

(* One mutex over all three callbacks: worker domains deliver records
   concurrently, and a text sink that interleaves two half-written lines
   is corrupt. Delivery sections are short (format + write), so a plain
   mutex is fine. *)
let serialized s =
  let lock = Mutex.create () in
  let guarded f x =
    Mutex.lock lock;
    match f x with
    | r ->
        Mutex.unlock lock;
        r
    | exception e ->
        Mutex.unlock lock;
        raise e
  in
  {
    on_span = guarded s.on_span;
    on_event = guarded s.on_event;
    flush = guarded s.flush;
  }

let pretty ppf =
  serialized
    {
      on_span = (fun s -> Format.fprintf ppf "%a@." Span.pp_span s);
      on_event = (fun e -> Format.fprintf ppf "%a@." Span.pp_event e);
      flush = (fun () -> Format.pp_print_flush ppf ());
    }

let jsonl oc =
  let line j =
    output_string oc (Json.to_string j);
    output_char oc '\n'
  in
  serialized
    {
      on_span = (fun s -> line (Span.span_to_json s));
      on_event = (fun e -> line (Span.event_to_json e));
      flush = (fun () -> flush oc);
    }

let tee a b =
  {
    on_span =
      (fun s ->
        a.on_span s;
        b.on_span s);
    on_event =
      (fun e ->
        a.on_event e;
        b.on_event e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

(* The reader closure takes the same mutex as the writers so reading
   while worker domains are still emitting sees a consistent snapshot. *)
let collecting () =
  let lock = Mutex.create () in
  let spans = ref [] and events = ref [] in
  let guarded f x =
    Mutex.lock lock;
    match f x with
    | r ->
        Mutex.unlock lock;
        r
    | exception e ->
        Mutex.unlock lock;
        raise e
  in
  ( {
      on_span = guarded (fun s -> spans := s :: !spans);
      on_event = guarded (fun e -> events := e :: !events);
      flush = ignore;
    },
    fun () -> guarded (fun () -> (List.rev !spans, List.rev !events)) () )
