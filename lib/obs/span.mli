(** Completed spans and point-in-time events — the records a {!Sink}
    consumes. Span lifecycle (ids, the parent stack, timing) is managed
    by {!Obs}; these are the finished, immutable values. *)

type span = {
  id : int;  (** Process-unique, monotonically increasing. *)
  parent : int option;  (** Enclosing span id, if any. *)
  name : string;
  start_s : float;  (** Wall-clock seconds since the Unix epoch. *)
  duration_s : float;
  attrs : Attr.t;
}

type event = {
  name : string;
  time_s : float;
  span : int option;  (** Span open at emission time, if any. *)
  attrs : Attr.t;
}

val span_to_json : span -> Json.t

val event_to_json : event -> Json.t

val pp_span : Format.formatter -> span -> unit

val pp_event : Format.formatter -> event -> unit
