(** A minimal zero-dependency HTTP/1.1 scrape endpoint over Unix
    sockets. One background systhread accepts connections and serves
    three routes:

    - [GET /metrics] — Prometheus text exposition (version 0.0.4) of
      every registry the server was started with, concatenated;
    - [GET /healthz] — ["ok\n"], for liveness probes;
    - [GET /vars] — a JSON snapshot of every instrument, grouped by
      registry, with histogram count/sum/p50/p90/p99.

    The server renders each response from live registries, so scrapes
    observe instruments concurrently with worker domains; instruments
    are themselves domain-safe, so a scrape sees a consistent value per
    sample (no torn histograms). Connections are handled one at a time
    — a scrape endpoint needs no concurrency — and every response
    carries [Content-Length] and [Connection: close]. *)

type t

val start :
  ?host:string ->
  port:int ->
  registries:(unit -> (string * Registry.t) list) ->
  unit ->
  (t, string) result
(** Bind [host] (default ["127.0.0.1"]) on [port] (0 picks an ephemeral
    port — read it back with {!port}) and spawn the accept thread — a
    systhread of the calling domain, not a fresh domain, so an idle
    endpoint adds no stop-the-world GC participant (see [expose.ml]).
    [registries] is re-evaluated on every request, so registries created
    after [start] still show up. Returns [Error msg] when the bind
    fails (port in use, privileged port, bad host). *)

val port : t -> int
(** The actually-bound TCP port. *)

val stop : t -> unit
(** Signal the accept loop, join the thread, and close the listening
    socket. Idempotent. *)
