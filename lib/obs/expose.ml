(* The accept loop runs [Unix.select] with a short timeout and polls a
   stop flag between waits: closing a socket another thread is blocked
   in [accept] on is undefined on some platforms, so the loop owns the
   fd until it observes the flag, and [stop] closes it only after the
   join.

   The loop is a systhread of the calling domain, not a separate
   domain, on purpose: in OCaml 5 every live domain joins a
   stop-the-world handshake on each minor collection, so an extra
   domain — even one blocked in [select] — taxes allocation-heavy
   workloads on small machines (measured ~10% on one core). A
   systhread shares its domain's runtime lock instead: it costs
   nothing while blocked and only competes for cycles while actually
   serving a request. The trade-off is scrape latency — while the
   spawning domain computes without blocking, the serving thread waits
   for the runtime's preemption tick (~50ms) — which is fine for a
   metrics endpoint. *)

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  mutable worker : Thread.t option;
}

let http_date () =
  (* Fixed-locale RFC 1123 date; Unix.gmtime is locale-free. *)
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let day = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |] in
  let mon =
    [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun";
       "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |]
  in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT" day.(tm.Unix.tm_wday)
    tm.Unix.tm_mday mon.(tm.Unix.tm_mon) (tm.Unix.tm_year + 1900)
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\n\
     Date: %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status (http_date ()) content_type (String.length body) body

let metrics_body registries =
  String.concat "" (List.map (fun (_, r) -> Registry.to_prometheus r) registries)

let instrument_to_json = function
  | Registry.Counter c -> Json.Int (Metric.counter_value c)
  | Registry.Gauge g -> Json.Float (Metric.gauge_value g)
  | Registry.Histogram h ->
      Json.Obj
        [
          ("count", Json.Int (Metric.histogram_count h));
          ("sum", Json.Float (Metric.histogram_sum h));
          ("p50", Json.Float (Metric.quantile h 0.5));
          ("p90", Json.Float (Metric.quantile h 0.9));
          ("p99", Json.Float (Metric.quantile h 0.99));
        ]

let entry_key (e : Registry.entry) =
  if e.labels = [] then e.name
  else
    e.name ^ "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) e.labels)
    ^ "}"

let vars_body registries =
  let reg (name, r) =
    ( name,
      Json.Obj
        (List.map
           (fun (e : Registry.entry) ->
             (entry_key e, instrument_to_json e.instrument))
           (Registry.entries r)) )
  in
  Json.to_string_pretty (Json.Obj (List.map reg registries)) ^ "\n"

let route registries path =
  match path with
  | "/metrics" ->
      response ~status:"200 OK"
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (metrics_body (registries ()))
  | "/healthz" -> response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
  | "/vars" ->
      response ~status:"200 OK" ~content_type:"application/json"
        (vars_body (registries ()))
  | _ ->
      response ~status:"404 Not Found" ~content_type:"text/plain"
        "not found\n"

(* Read until the blank line ending the request head; the routes ignore
   headers and bodies, so 8 KiB is plenty and caps a hostile client. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then Buffer.contents buf
    else
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let rec has_terminator i =
          i >= 0
          && (String.sub s i 4 = "\r\n\r\n" || has_terminator (i - 1))
        in
        if String.length s >= 4 && has_terminator (String.length s - 4) then s
        else go ()
      end
  in
  go ()

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let handle registries client =
  Unix.setsockopt_float client Unix.SO_RCVTIMEO 2.;
  Unix.setsockopt_float client Unix.SO_SNDTIMEO 5.;
  let head = read_head client in
  let reply =
    match String.split_on_char ' ' (List.hd (String.split_on_char '\r' head))
    with
    | "GET" :: path :: _ -> route registries path
    | _ :: _ :: _ ->
        response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
          "method not allowed\n"
    | _ ->
        response ~status:"400 Bad Request" ~content_type:"text/plain"
          "bad request\n"
  in
  write_all client reply

let accept_loop t registries =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ when Atomic.get t.stopping -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.sock with
        | client, _ ->
            (try handle registries client with _ -> ());
            (try Unix.close client with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) ->
            ())
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let start ?(host = "127.0.0.1") ~port ~registries () =
  match
    let addr = Unix.inet_addr_of_string host in
    let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt sock Unix.SO_REUSEADDR true;
       Unix.bind sock (Unix.ADDR_INET (addr, port));
       Unix.listen sock 16
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    let bound_port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    let t = { sock; bound_port; stopping = Atomic.make false; worker = None } in
    t.worker <- Some (Thread.create (fun () -> accept_loop t registries) ());
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot serve metrics on %s:%d: %s" host port
           (Unix.error_message err))
  | exception Failure _ ->
      Error (Printf.sprintf "cannot serve metrics: invalid host %S" host)

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (match t.worker with Some th -> Thread.join th | None -> ());
    t.worker <- None;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
