open Distlock_txn

exception Stop

(* Shared stepping machinery: a mutable execution state over the system.
   Alongside the indegree/lock bookkeeping it maintains the set of
   currently enabled steps (as flat step ids with positions, swap-remove
   on disable), updated in O(affected steps) by [apply]/[undo] — so
   random walks pick a step in O(1) instead of rescanning every step. *)
type state = {
  sys : System.t;
  indeg : int array array; (* remaining unexecuted predecessors per step *)
  done_ : bool array array;
  holder : (Database.entity, int) Hashtbl.t;
  mutable executed : int;
  total : int;
  trace : Schedule.event array;
  flat_base : int array; (* txn -> first flat id of its steps *)
  flat_txn : int array; (* flat id -> txn *)
  flat_step : int array; (* flat id -> step *)
  lockers : (int * int) list array; (* entity -> its Lock steps *)
  enab_list : int array; (* enabled flat ids, first [enab_n] entries *)
  enab_pos : int array; (* flat id -> index in enab_list, or -1 *)
  mutable enab_n : int;
}

let enabled st i s =
  (not st.done_.(i).(s))
  && st.indeg.(i).(s) = 0
  &&
  let step = Txn.step (System.txn st.sys i) s in
  match step.Step.action with
  | Step.Lock -> not (Hashtbl.mem st.holder step.Step.entity)
  | Step.Unlock | Step.Update -> true

(* Reconciles one step's membership in the enabled set with [enabled]. *)
let sync st i s =
  let fid = st.flat_base.(i) + s in
  let now = enabled st i s in
  let was = st.enab_pos.(fid) >= 0 in
  if now && not was then begin
    st.enab_list.(st.enab_n) <- fid;
    st.enab_pos.(fid) <- st.enab_n;
    st.enab_n <- st.enab_n + 1
  end
  else if was && not now then begin
    let p = st.enab_pos.(fid) in
    let last = st.enab_n - 1 in
    let moved = st.enab_list.(last) in
    st.enab_list.(p) <- moved;
    st.enab_pos.(moved) <- p;
    st.enab_n <- last;
    st.enab_pos.(fid) <- -1
  end

let init sys =
  let n = System.num_txns sys in
  let indeg =
    Array.init n (fun i ->
        let txn = System.txn sys i in
        let k = Txn.num_steps txn in
        Array.init k (fun s ->
            let d = ref 0 in
            for p = 0 to k - 1 do
              if Txn.precedes txn p s then incr d
            done;
            !d))
  in
  let done_ =
    Array.init n (fun i -> Array.make (Txn.num_steps (System.txn sys i)) false)
  in
  let total = System.total_steps sys in
  let flat_base = Array.make n 0 in
  let flat_txn = Array.make total 0 and flat_step = Array.make total 0 in
  let lockers = Array.make (Database.num_entities (System.db sys)) [] in
  let fid = ref 0 in
  for i = 0 to n - 1 do
    let txn = System.txn sys i in
    flat_base.(i) <- !fid;
    for s = 0 to Txn.num_steps txn - 1 do
      flat_txn.(!fid) <- i;
      flat_step.(!fid) <- s;
      incr fid;
      let step = Txn.step txn s in
      match step.Step.action with
      | Step.Lock -> lockers.(step.Step.entity) <- (i, s) :: lockers.(step.Step.entity)
      | Step.Unlock | Step.Update -> ()
    done
  done;
  let st =
    {
      sys;
      indeg;
      done_;
      holder = Hashtbl.create 16;
      executed = 0;
      total;
      trace = Array.make total (-1, -1);
      flat_base;
      flat_txn;
      flat_step;
      lockers;
      enab_list = Array.make total 0;
      enab_pos = Array.make total (-1);
      enab_n = 0;
    }
  in
  for i = 0 to n - 1 do
    for s = 0 to Txn.num_steps (System.txn sys i) - 1 do
      sync st i s
    done
  done;
  st

(* Applying or undoing (i,s) can change enabledness only of (i,s)
   itself, of s's successors within the transaction, and — for lock
   steps' entity — of the Lock steps on that entity. *)
let sync_affected st i s (step : Step.t) =
  let txn = System.txn st.sys i in
  sync st i s;
  for q = 0 to Txn.num_steps txn - 1 do
    if Txn.precedes txn s q then sync st i q
  done;
  match step.Step.action with
  | Step.Lock | Step.Unlock ->
      List.iter (fun (j, t) -> sync st j t) st.lockers.(step.Step.entity)
  | Step.Update -> ()

let apply st i s =
  let txn = System.txn st.sys i in
  let step = Txn.step txn s in
  st.done_.(i).(s) <- true;
  st.trace.(st.executed) <- (i, s);
  st.executed <- st.executed + 1;
  for q = 0 to Txn.num_steps txn - 1 do
    if Txn.precedes txn s q then st.indeg.(i).(q) <- st.indeg.(i).(q) - 1
  done;
  (match step.Step.action with
  | Step.Lock -> Hashtbl.replace st.holder step.Step.entity i
  | Step.Unlock -> Hashtbl.remove st.holder step.Step.entity
  | Step.Update -> ());
  sync_affected st i s step

let undo st i s =
  let txn = System.txn st.sys i in
  let step = Txn.step txn s in
  st.done_.(i).(s) <- false;
  st.executed <- st.executed - 1;
  for q = 0 to Txn.num_steps txn - 1 do
    if Txn.precedes txn s q then st.indeg.(i).(q) <- st.indeg.(i).(q) + 1
  done;
  (match step.Step.action with
  | Step.Lock -> Hashtbl.remove st.holder step.Step.entity
  | Step.Unlock -> Hashtbl.replace st.holder step.Step.entity i
  | Step.Update -> ());
  sync_affected st i s step

let snapshot st = Schedule.of_events (Array.to_list st.trace)

(* Progress counter for exhaustive enumeration, mirrored in the global
   metrics registry so long runs are observable from outside. Fetched
   once per run via mutex-guarded get-or-create — a shared [lazy]
   forced from several pool domains at once raises [RacyLazy]. *)
let m_schedules () =
  Distlock_obs.Registry.counter Distlock_obs.Obs.global
    ~help:"Complete legal schedules visited by state enumeration"
    "distlock_enumerate_schedules_total"

let iter_legal sys f =
  let st = init sys in
  let n = System.num_txns sys in
  let progress = m_schedules () in
  let rec go () =
    if st.executed = st.total then begin
      Distlock_obs.Metric.incr progress;
      f (snapshot st)
    end
    else
      for i = 0 to n - 1 do
        let k = Txn.num_steps (System.txn sys i) in
        for s = 0 to k - 1 do
          if enabled st i s then begin
            apply st i s;
            go ();
            undo st i s
          end
        done
      done
  in
  go ()

let exists_legal sys pred =
  try
    iter_legal sys (fun h -> if pred h then raise Stop);
    false
  with Stop -> true

let find_legal sys pred =
  let found = ref None in
  (try
     iter_legal sys (fun h ->
         if pred h then begin
           found := Some h;
           raise Stop
         end)
   with Stop -> ());
  !found

type count = Exact of int | Exhausted of int

let count_legal ?(limit = 10_000_000) sys =
  let c = ref 0 in
  match
    iter_legal sys (fun _ ->
        incr c;
        if !c > limit then raise Stop)
  with
  | () -> Exact !c
  | exception Stop -> Exhausted limit

let random_legal rng ?(max_attempts = 100) sys =
  let attempt () =
    let st = init sys in
    let ok = ref true in
    while !ok && st.executed < st.total do
      if st.enab_n = 0 then ok := false (* deadlock *)
      else begin
        let fid = st.enab_list.(Random.State.int rng st.enab_n) in
        apply st st.flat_txn.(fid) st.flat_step.(fid)
      end
    done;
    if !ok then Some (snapshot st) else None
  in
  let rec try_n k = if k = 0 then None else
      match attempt () with Some h -> Some h | None -> try_n (k - 1)
  in
  try_n max_attempts

let has_deadlock sys =
  let st = init sys in
  let rec go () =
    if st.executed < st.total then begin
      if st.enab_n = 0 then raise Stop;
      (* snapshot the frontier: apply/undo mutate the enabled set *)
      let frontier = Array.sub st.enab_list 0 st.enab_n in
      Array.iter
        (fun fid ->
          let i = st.flat_txn.(fid) and s = st.flat_step.(fid) in
          apply st i s;
          go ();
          undo st i s)
        frontier
    end
  in
  try
    go ();
    false
  with Stop -> true
