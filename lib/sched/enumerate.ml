open Distlock_txn

exception Stop

(* Shared stepping machinery: a mutable execution state over the system. *)
type state = {
  sys : System.t;
  indeg : int array array; (* remaining unexecuted predecessors per step *)
  done_ : bool array array;
  holder : (Database.entity, int) Hashtbl.t;
  mutable executed : int;
  total : int;
  trace : Schedule.event array;
}

let init sys =
  let n = System.num_txns sys in
  let indeg =
    Array.init n (fun i ->
        let txn = System.txn sys i in
        let k = Txn.num_steps txn in
        Array.init k (fun s ->
            let d = ref 0 in
            for p = 0 to k - 1 do
              if Txn.precedes txn p s then incr d
            done;
            !d))
  in
  let done_ =
    Array.init n (fun i -> Array.make (Txn.num_steps (System.txn sys i)) false)
  in
  let total = System.total_steps sys in
  {
    sys;
    indeg;
    done_;
    holder = Hashtbl.create 16;
    executed = 0;
    total;
    trace = Array.make total (-1, -1);
  }

let enabled st i s =
  (not st.done_.(i).(s))
  && st.indeg.(i).(s) = 0
  &&
  let step = Txn.step (System.txn st.sys i) s in
  match step.Step.action with
  | Step.Lock -> not (Hashtbl.mem st.holder step.Step.entity)
  | Step.Unlock | Step.Update -> true

let apply st i s =
  let txn = System.txn st.sys i in
  let step = Txn.step txn s in
  st.done_.(i).(s) <- true;
  st.trace.(st.executed) <- (i, s);
  st.executed <- st.executed + 1;
  for q = 0 to Txn.num_steps txn - 1 do
    if Txn.precedes txn s q then st.indeg.(i).(q) <- st.indeg.(i).(q) - 1
  done;
  (match step.Step.action with
  | Step.Lock -> Hashtbl.replace st.holder step.Step.entity i
  | Step.Unlock -> Hashtbl.remove st.holder step.Step.entity
  | Step.Update -> ())

let undo st i s =
  let txn = System.txn st.sys i in
  let step = Txn.step txn s in
  st.done_.(i).(s) <- false;
  st.executed <- st.executed - 1;
  for q = 0 to Txn.num_steps txn - 1 do
    if Txn.precedes txn s q then st.indeg.(i).(q) <- st.indeg.(i).(q) + 1
  done;
  (match step.Step.action with
  | Step.Lock -> Hashtbl.remove st.holder step.Step.entity
  | Step.Unlock -> Hashtbl.replace st.holder step.Step.entity i
  | Step.Update -> ())

let snapshot st = Schedule.of_events (Array.to_list st.trace)

(* Progress counter for exhaustive enumeration, mirrored in the global
   metrics registry so long runs are observable from outside. Fetched
   once per run via mutex-guarded get-or-create — a shared [lazy]
   forced from several pool domains at once raises [RacyLazy]. *)
let m_schedules () =
  Distlock_obs.Registry.counter Distlock_obs.Obs.global
    ~help:"Complete legal schedules visited by state enumeration"
    "distlock_enumerate_schedules_total"

let iter_legal sys f =
  let st = init sys in
  let n = System.num_txns sys in
  let progress = m_schedules () in
  let rec go () =
    if st.executed = st.total then begin
      Distlock_obs.Metric.incr progress;
      f (snapshot st)
    end
    else
      for i = 0 to n - 1 do
        let k = Txn.num_steps (System.txn sys i) in
        for s = 0 to k - 1 do
          if enabled st i s then begin
            apply st i s;
            go ();
            undo st i s
          end
        done
      done
  in
  go ()

let exists_legal sys pred =
  try
    iter_legal sys (fun h -> if pred h then raise Stop);
    false
  with Stop -> true

let find_legal sys pred =
  let found = ref None in
  (try
     iter_legal sys (fun h ->
         if pred h then begin
           found := Some h;
           raise Stop
         end)
   with Stop -> ());
  !found

let count_legal ?(limit = 10_000_000) sys =
  let c = ref 0 in
  iter_legal sys (fun _ ->
      incr c;
      if !c > limit then failwith "Enumerate.count_legal: limit exceeded");
  !c

let random_legal rng ?(max_attempts = 100) sys =
  let n = System.num_txns sys in
  let attempt () =
    let st = init sys in
    let ok = ref true in
    while !ok && st.executed < st.total do
      let avail = ref [] in
      for i = 0 to n - 1 do
        let k = Txn.num_steps (System.txn sys i) in
        for s = 0 to k - 1 do
          if enabled st i s then avail := (i, s) :: !avail
        done
      done;
      match !avail with
      | [] -> ok := false (* deadlock *)
      | choices ->
          let arr = Array.of_list choices in
          let i, s = arr.(Random.State.int rng (Array.length arr)) in
          apply st i s
    done;
    if !ok then Some (snapshot st) else None
  in
  let rec try_n k = if k = 0 then None else
      match attempt () with Some h -> Some h | None -> try_n (k - 1)
  in
  try_n max_attempts

let has_deadlock sys =
  let st = init sys in
  let n = System.num_txns sys in
  let found = ref false in
  let rec go () =
    if not !found then
      if st.executed = st.total then ()
      else begin
        let any = ref false in
        for i = 0 to n - 1 do
          let k = Txn.num_steps (System.txn sys i) in
          for s = 0 to k - 1 do
            if enabled st i s then begin
              any := true;
              apply st i s;
              go ();
              undo st i s
            end
          done
        done;
        if not !any then found := true
      end
  in
  go ();
  !found
