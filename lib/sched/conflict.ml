open Distlock_txn
open Distlock_graph

type verdict = Serializable of int list | Not_serializable of int list

(* Per (entity, txn): the span of positions at which the transaction
   accesses the entity — the locked section when one exists, otherwise the
   bare update positions. *)
let access_spans sys sched =
  let spans = Hashtbl.create 32 in
  (* (entity, txn) -> (first_pos, last_pos) *)
  List.iteri
    (fun pos (i, s) ->
      let step = Txn.step (System.txn sys i) s in
      let key = (step.Step.entity, i) in
      match Hashtbl.find_opt spans key with
      | None -> Hashtbl.replace spans key (pos, pos)
      | Some (first, _) -> Hashtbl.replace spans key (first, pos))
    (Schedule.events sched);
  spans

let graph sys sched =
  let g = Digraph.create (System.num_txns sys) in
  let spans = access_spans sys sched in
  let by_entity = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (e, i) span ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_entity e) in
      Hashtbl.replace by_entity e ((i, span) :: cur))
    spans;
  Hashtbl.iter
    (fun _e accesses ->
      let rec pairs = function
        | [] -> ()
        | (i, (fi, li)) :: rest ->
            List.iter
              (fun (j, (fj, lj)) ->
                if i <> j then
                  if li < fj then Digraph.add_arc g i j
                  else if lj < fi then Digraph.add_arc g j i
                  else begin
                    (* Overlapping accesses on the same entity: only
                       possible in illegal schedules; record both
                       directions so the cycle is caught. *)
                    Digraph.add_arc g i j;
                    Digraph.add_arc g j i
                  end)
              rest;
            pairs rest
      in
      pairs accesses)
    by_entity;
  g

let check sys sched =
  let g = graph sys sched in
  match Topo.sort g with
  | Some order -> Serializable (Array.to_list order)
  | None -> (
      match Topo.find_cycle g with
      | Some cycle -> Not_serializable cycle
      | None -> assert false)

let is_serializable sys sched =
  match check sys sched with Serializable _ -> true | Not_serializable _ -> false
