open Distlock_txn

(** Schedules: total orderings of the steps of a transaction system.

    An event is a pair [(txn index, step index)]. A *schedule* in the
    paper's sense (Section 2) additionally satisfies the two legality
    conditions checked by {!Legality}. *)

type event = int * int

type t

val of_events : event list -> t

val events : t -> event list

val length : t -> int

val event : t -> int -> event

val serial : System.t -> int list -> t
(** [serial sys [i1; ...; ik]] runs the transactions one after another in
    the given order, each along a default linear extension of its own
    partial order. *)

val is_complete : System.t -> t -> bool
(** Every step of every transaction occurs exactly once. *)

val position : t -> event -> int option
(** Index of an event in the schedule. *)

val project : t -> int -> int array
(** [project h i] is the sequence of step indices of transaction [i], in
    schedule order. *)

val to_string : System.t -> t -> string
(** Paper notation with transaction subscripts, e.g.
    ["Lx_1 Lz_2 x_1 ..."]. *)

val pp : System.t -> Format.formatter -> t -> unit
