open Distlock_txn

(** Legality of schedules (Section 2): a schedule must (a) not contradict
    any transaction's partial order, and (b) separate every two [lock x]
    steps by an [unlock x] step. *)

type violation =
  | Order_violated of { txn : int; earlier : int; later : int }
      (** Step [later] was scheduled before its predecessor [earlier]. *)
  | Lock_held of { entity : Database.entity; holder : int; requester : int }
      (** A transaction locked an entity still held by another. *)
  | Unlock_not_held of { entity : Database.entity; txn : int }
      (** An unlock of an entity the transaction does not hold. *)
  | Incomplete
      (** Not a permutation of all steps (schedules are total orderings of
          *all* the steps). *)

val check : System.t -> Schedule.t -> violation list

val is_legal : System.t -> Schedule.t -> bool

val to_string : System.t -> violation -> string
