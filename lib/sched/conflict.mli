open Distlock_txn
open Distlock_graph

(** Conflict-graph serializability.

    Under the paper's update semantics (every step [update x] reads and
    rewrites [x]), two accesses of the same entity by different
    transactions always conflict, so a schedule is serializable iff its
    transaction conflict digraph is acyclic, and any topological order of
    that digraph is an equivalent serial schedule.

    For the figures' update-free transactions the *locked section* (from
    [lock x] to [unlock x]) plays the role of the access: legality makes
    sections on the same entity disjoint, so sections are totally ordered
    and induce the conflict arcs. When updates are present they fall inside
    their sections, so the two views agree on well-formed systems. *)

type verdict =
  | Serializable of int list
      (** An equivalent serial order of transaction indices. *)
  | Not_serializable of int list
      (** A cycle in the conflict digraph (transaction indices,
          [t1 -> t2 -> ... -> t1]). *)

val graph : System.t -> Schedule.t -> Digraph.t
(** The conflict digraph over transaction indices. *)

val check : System.t -> Schedule.t -> verdict

val is_serializable : System.t -> Schedule.t -> bool
