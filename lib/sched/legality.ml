open Distlock_txn

type violation =
  | Order_violated of { txn : int; earlier : int; later : int }
  | Lock_held of { entity : Database.entity; holder : int; requester : int }
  | Unlock_not_held of { entity : Database.entity; txn : int }
  | Incomplete

let check sys sched =
  let violations = ref [] in
  let report v = violations := v :: !violations in
  if not (Schedule.is_complete sys sched) then report Incomplete;
  (* (a) partial orders respected: within each transaction, the projected
     sequence must be a linear extension. *)
  for i = 0 to System.num_txns sys - 1 do
    let txn = System.txn sys i in
    let proj = Schedule.project sched i in
    let seen = Array.make (Txn.num_steps txn) false in
    Array.iter
      (fun s ->
        if s >= 0 && s < Txn.num_steps txn then begin
          for p = 0 to Txn.num_steps txn - 1 do
            if Txn.precedes txn p s && not seen.(p) then
              report (Order_violated { txn = i; earlier = p; later = s })
          done;
          seen.(s) <- true
        end)
      proj
  done;
  (* (b) exclusion: replay the lock table. *)
  let holder = Hashtbl.create 16 in
  List.iter
    (fun (i, s) ->
      let step = Txn.step (System.txn sys i) s in
      let e = step.Step.entity in
      match step.Step.action with
      | Step.Lock -> (
          match Hashtbl.find_opt holder e with
          | Some h when h <> i ->
              report (Lock_held { entity = e; holder = h; requester = i })
          | Some _ -> report (Lock_held { entity = e; holder = i; requester = i })
          | None -> Hashtbl.replace holder e i)
      | Step.Unlock -> (
          match Hashtbl.find_opt holder e with
          | Some h when h = i -> Hashtbl.remove holder e
          | _ -> report (Unlock_not_held { entity = e; txn = i }))
      | Step.Update -> ())
    (Schedule.events sched);
  List.rev !violations

let is_legal sys sched = check sys sched = []

let to_string sys v =
  let db = System.db sys in
  match v with
  | Order_violated { txn; earlier; later } ->
      let t = System.txn sys txn in
      Printf.sprintf "T%d: step %s scheduled before its predecessor %s"
        (txn + 1)
        (Step.to_string db (Txn.step t later))
        (Step.to_string db (Txn.step t earlier))
  | Lock_held { entity; holder; requester } ->
      Printf.sprintf "T%d locks %s while T%d still holds it" (requester + 1)
        (Database.name db entity) (holder + 1)
  | Unlock_not_held { entity; txn } ->
      Printf.sprintf "T%d unlocks %s which it does not hold" (txn + 1)
        (Database.name db entity)
  | Incomplete -> "schedule is not a permutation of all steps"
