open Distlock_txn

(** The paper's update semantics, executed symbolically.

    Section 2 interprets each step [s] as the indivisible pair

    {v temp_s := e(s);  e(s) := f_s(temp_s1, ..., temp_sk) v}

    where [s1 ... sk] are the steps of the same transaction preceding [s]
    (including [s] itself), and defines a schedule to be {e serializable}
    when it is equivalent to a serial schedule {e under all
    interpretations of the update functions} [f_s].

    Quantifying over all interpretations is the same as computing with
    uninterpreted (Herbrand) terms: this module executes a schedule
    symbolically — each update builds the term
    [F_{txn,step}(read values of its transaction predecessors)] — and two
    schedules are equivalent iff they leave every entity holding the same
    term. [equivalent_serial] searches the r! serial orders directly,
    giving an oracle for the paper's definition that is independent of the
    conflict-graph test; the test suite checks the two agree on every
    generated system with updates. *)

type term
(** A Herbrand value: either an entity's initial value or an application
    of an uninterpreted update function to previously read values. *)

val initial : Database.entity -> term

val pp_term : Database.t -> Format.formatter -> term -> unit

val equal_term : term -> term -> bool

val final_state : System.t -> Schedule.t -> (Database.entity * term) list
(** Entity values after symbolically executing the schedule (which need
    not be legal — only the ordering of update steps matters here).
    Entities never updated keep their initial value. *)

val states_equal :
  (Database.entity * term) list -> (Database.entity * term) list -> bool

val equivalent_serial : System.t -> Schedule.t -> int list option
(** A serial transaction order whose execution leaves every entity with
    the same final term, if any — the paper's serializability, decided by
    definition. Exponential in the number of transactions. *)

val is_serializable : System.t -> Schedule.t -> bool
