open Distlock_txn

type term =
  | Initial of Database.entity
  | Apply of { txn : int; step : int; args : term list }
      (** [F_{txn,step}] applied to the reads of the step's
          within-transaction predecessors (including its own). *)

let initial e = Initial e

let rec equal_term a b =
  match (a, b) with
  | Initial x, Initial y -> x = y
  | Apply a, Apply b ->
      a.txn = b.txn && a.step = b.step
      && List.length a.args = List.length b.args
      && List.for_all2 equal_term a.args b.args
  | Initial _, Apply _ | Apply _, Initial _ -> false

let rec pp_term db ppf = function
  | Initial e -> Format.fprintf ppf "%s0" (Database.name db e)
  | Apply { txn; step; args } ->
      Format.fprintf ppf "f%d_%d(%a)" (txn + 1) step
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           (pp_term db))
        args

let final_state sys sched =
  let db = System.db sys in
  (* current symbolic value per entity *)
  let value = Hashtbl.create 16 in
  let read e =
    match Hashtbl.find_opt value e with
    | Some t -> t
    | None -> Initial e
  in
  (* temp_{txn,step} of executed update steps *)
  let temp = Hashtbl.create 64 in
  List.iter
    (fun (i, s) ->
      let txn = System.txn sys i in
      let step = Txn.step txn s in
      if Step.is_update step then begin
        let this_read = read step.Step.entity in
        Hashtbl.replace temp (i, s) this_read;
        (* arguments: temps of all same-transaction predecessors that are
           updates and already executed (in any legal schedule all of them
           are), plus this step's own read — in step-index order, as a
           canonical argument list *)
        let args = ref [] in
        for p = Txn.num_steps txn - 1 downto 0 do
          if
            (p = s || Txn.precedes txn p s)
            && Step.is_update (Txn.step txn p)
          then
            match Hashtbl.find_opt temp (i, p) with
            | Some t -> args := t :: !args
            | None -> ()
        done;
        Hashtbl.replace value step.Step.entity
          (Apply { txn = i; step = s; args = !args })
      end)
    (Schedule.events sched);
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map (fun e -> (e, read e)) (Database.entities db))

let states_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (e1, t1) (e2, t2) -> e1 = e2 && equal_term t1 t2)
       a b

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (( <> ) x) l)))
        l

let equivalent_serial sys sched =
  let target = final_state sys sched in
  let orders = permutations (List.init (System.num_txns sys) Fun.id) in
  List.find_opt
    (fun order ->
      states_equal target (final_state sys (Schedule.serial sys order)))
    orders

let is_serializable sys sched = equivalent_serial sys sched <> None
