open Distlock_txn

(** Exhaustive and randomized generation of legal schedules.

    The walk maintains each transaction's ready frontier and a lock table;
    a step is enabled when its intra-transaction predecessors have run and,
    for a lock step, the entity is free. Branches that dead-end (a locking
    deadlock) are abandoned: schedules are total orderings of *all* steps,
    so deadlocked prefixes are not schedules. *)

val iter_legal : System.t -> (Schedule.t -> unit) -> unit
(** Every complete legal schedule, each exactly once. Exponential: meant
    for the brute-force oracle on small systems. *)

val exists_legal : System.t -> (Schedule.t -> bool) -> bool

val find_legal : System.t -> (Schedule.t -> bool) -> Schedule.t option

type count =
  | Exact of int  (** The space was exhausted; this is the true count. *)
  | Exhausted of int
      (** More than [limit] legal schedules exist; counting stopped. *)

val count_legal : ?limit:int -> System.t -> count
(** Counts complete legal schedules, giving up past [limit] (default
    [10_000_000]) with a typed {!Exhausted} instead of an exception. *)

val random_legal :
  Random.State.t -> ?max_attempts:int -> System.t -> Schedule.t option
(** A random complete legal schedule via uniform random choice among
    enabled steps (an incrementally maintained set — O(1) per pick),
    restarting on deadlock (up to [max_attempts], default [100]).
    [None] if every attempt deadlocked. *)

val has_deadlock : System.t -> bool
(** Is some legal *prefix* extendable to no complete schedule — i.e., can
    the system reach a locking deadlock? Exhaustive over prefixes (small
    systems; see {!Stategraph.has_deadlock} for the memoized search) and
    terminates at the first deadlocked prefix. *)
