open Distlock_txn

type event = int * int

type t = { events : event array }

let of_events l = { events = Array.of_list l }

let events t = Array.to_list t.events

let length t = Array.length t.events

let event t i = t.events.(i)

let serial sys order =
  let acc = ref [] in
  List.iter
    (fun i ->
      let txn = System.txn sys i in
      let ext = Distlock_order.Poset.linearize (Txn.order txn) in
      Array.iter (fun s -> acc := (i, s) :: !acc) ext)
    order;
  { events = Array.of_list (List.rev !acc) }

let is_complete sys t =
  let n = System.num_txns sys in
  let expected =
    Array.init n (fun i -> Txn.num_steps (System.txn sys i))
  in
  let seen = Array.map (fun k -> Array.make k 0) expected in
  let ok = ref (Array.length t.events = Array.fold_left ( + ) 0 expected) in
  Array.iter
    (fun (i, s) ->
      if i < 0 || i >= n || s < 0 || s >= expected.(i) then ok := false
      else begin
        seen.(i).(s) <- seen.(i).(s) + 1;
        if seen.(i).(s) > 1 then ok := false
      end)
    t.events;
  !ok

let position t ev =
  let n = Array.length t.events in
  let rec go i =
    if i >= n then None else if t.events.(i) = ev then Some i else go (i + 1)
  in
  go 0

let project t i =
  let acc = ref [] in
  Array.iter (fun (j, s) -> if j = i then acc := s :: !acc) t.events;
  Array.of_list (List.rev !acc)

let to_string sys t =
  let db = System.db sys in
  String.concat " "
    (List.map
       (fun (i, s) ->
         Printf.sprintf "%s_%d"
           (Step.to_string db (Txn.step (System.txn sys i) s))
           (i + 1))
       (events t))

let pp sys ppf t = Format.pp_print_string ppf (to_string sys t)
