open Distlock_txn

type outcome =
  | Safe
  | Unsafe of Schedule.t
  | Exhausted of { visited : int; limit : int }

type stats = {
  states : int;
  dup_hits : int;
  complete : int;
  deadlocked : int;
}

(* Collapse counters in the global registry, so a long search is legible
   from the outside and E16 can report the states-vs-schedules ratio.
   Handles are fetched once per search through the registry's
   mutex-guarded get-or-create — not a shared [lazy], which raises
   [RacyLazy] when forced from several pool domains at once. *)
let m_states () =
  Distlock_obs.Registry.counter Distlock_obs.Obs.global
    ~help:"Distinct execution states visited by the state-graph oracle"
    "distlock_stategraph_states_total"

let m_dups () =
  Distlock_obs.Registry.counter Distlock_obs.Obs.global
    ~help:
      "Transitions into an already-visited state pruned by the state-graph \
       oracle"
    "distlock_stategraph_duplicate_hits_total"

(* ------------------------------------------------------------------ *)
(* Packed state keys: [done bitmasks][n*n conflict bits], 63 bits per
   word. The conflict region starts on a word boundary so the deadlock
   search can key on the mask prefix alone with [Array.sub]. *)

let bits_per_word = 63

module Key = struct
  type t = int array

  let equal (a : int array) (b : int array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i = n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  (* FNV-1a over the words, folded to a non-negative int. *)
  let hash (a : int array) =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor a.(i)) * 0x01000193 land max_int
    done;
    !h
end

module Tbl = Hashtbl.Make (Key)

(* Mutable search context: the same apply/undo walk as [Enumerate], plus
   the packed key words and the per-(txn, entity) access-span counters
   that drive incremental conflict-edge maintenance. *)
type ctx = {
  sys : System.t;
  n : int;
  total : int;
  indeg : int array array;
  done_ : bool array array;
  holder : int array; (* entity -> holding txn, or -1 when free *)
  mutable executed : int;
  touch_total : int array array; (* txn i, entity e -> |accesses of e| *)
  touch_done : int array array; (* executed accesses so far *)
  touchers : int list array; (* entity -> transactions accessing it *)
  words : int array; (* the packed key of the current state *)
  mask_words : int;
  bit_word : int array array; (* (txn, step) -> word index of its bit *)
  bit_mask : int array array;
}

let init sys =
  let n = System.num_txns sys in
  let ne = Database.num_entities (System.db sys) in
  let total = System.total_steps sys in
  let indeg =
    Array.init n (fun i ->
        let txn = System.txn sys i in
        let k = Txn.num_steps txn in
        Array.init k (fun s ->
            let d = ref 0 in
            for p = 0 to k - 1 do
              if Txn.precedes txn p s then incr d
            done;
            !d))
  in
  let done_ =
    Array.init n (fun i -> Array.make (Txn.num_steps (System.txn sys i)) false)
  in
  let touch_total = Array.make_matrix n ne 0 in
  let touchers = Array.make ne [] in
  let bit_word = Array.make n [||] and bit_mask = Array.make n [||] in
  let bit = ref 0 in
  for i = 0 to n - 1 do
    let txn = System.txn sys i in
    let k = Txn.num_steps txn in
    bit_word.(i) <- Array.make k 0;
    bit_mask.(i) <- Array.make k 0;
    for s = 0 to k - 1 do
      bit_word.(i).(s) <- !bit / bits_per_word;
      bit_mask.(i).(s) <- 1 lsl (!bit mod bits_per_word);
      incr bit;
      let e = (Txn.step txn s).Step.entity in
      if touch_total.(i).(e) = 0 then touchers.(e) <- i :: touchers.(e);
      touch_total.(i).(e) <- touch_total.(i).(e) + 1
    done
  done;
  let mask_words = max 1 ((total + bits_per_word - 1) / bits_per_word) in
  let conf_words = ((n * n) + bits_per_word - 1) / bits_per_word in
  {
    sys;
    n;
    total;
    indeg;
    done_;
    holder = Array.make ne (-1);
    executed = 0;
    touch_total;
    touch_done = Array.make_matrix n ne 0;
    touchers;
    words = Array.make (mask_words + conf_words) 0;
    mask_words;
    bit_word;
    bit_mask;
  }

let set_edge ctx a b trail =
  let p = (a * ctx.n) + b in
  let w = ctx.mask_words + (p / bits_per_word)
  and m = 1 lsl (p mod bits_per_word) in
  if ctx.words.(w) land m = 0 then begin
    ctx.words.(w) <- ctx.words.(w) lor m;
    trail := p :: !trail
  end

let clear_edge_bit ctx p =
  let w = ctx.mask_words + (p / bits_per_word)
  and m = 1 lsl (p mod bits_per_word) in
  ctx.words.(w) <- ctx.words.(w) land lnot m

let has_edge ctx a b =
  let p = (a * ctx.n) + b in
  ctx.words.(ctx.mask_words + (p / bits_per_word))
  land (1 lsl (p mod bits_per_word))
  <> 0

let enabled ctx i s =
  (not ctx.done_.(i).(s))
  && ctx.indeg.(i).(s) = 0
  &&
  let step = Txn.step (System.txn ctx.sys i) s in
  match step.Step.action with
  | Step.Lock -> ctx.holder.(step.Step.entity) < 0
  | Step.Unlock | Step.Update -> true

(* Executes step (i,s). Returns the conflict bit positions this call
   flipped 0->1: an edge can be implied by several events along one
   path, so [undo] must clear exactly the bits its [apply] set. Edges
   are decided at span starts — when this is [i]'s first access to [e],
   every transaction whose [e]-span already closed conflicts before [i],
   and every still-open span overlaps (both directions) — reproducing
   [Conflict.graph]'s span rule incrementally. *)
let apply ctx i s =
  let txn = System.txn ctx.sys i in
  let step = Txn.step txn s in
  let e = step.Step.entity in
  ctx.done_.(i).(s) <- true;
  ctx.executed <- ctx.executed + 1;
  ctx.words.(ctx.bit_word.(i).(s)) <-
    ctx.words.(ctx.bit_word.(i).(s)) lor ctx.bit_mask.(i).(s);
  for q = 0 to Txn.num_steps txn - 1 do
    if Txn.precedes txn s q then ctx.indeg.(i).(q) <- ctx.indeg.(i).(q) - 1
  done;
  (match step.Step.action with
  | Step.Lock -> ctx.holder.(e) <- i
  | Step.Unlock -> ctx.holder.(e) <- -1
  | Step.Update -> ());
  let trail = ref [] in
  if ctx.touch_done.(i).(e) = 0 then
    List.iter
      (fun j ->
        if j <> i then begin
          let dj = ctx.touch_done.(j).(e) in
          if dj > 0 then begin
            set_edge ctx j i trail;
            if dj < ctx.touch_total.(j).(e) then set_edge ctx i j trail
          end
        end)
      ctx.touchers.(e);
  ctx.touch_done.(i).(e) <- ctx.touch_done.(i).(e) + 1;
  !trail

let undo ctx i s trail =
  let txn = System.txn ctx.sys i in
  let step = Txn.step txn s in
  let e = step.Step.entity in
  ctx.done_.(i).(s) <- false;
  ctx.executed <- ctx.executed - 1;
  ctx.words.(ctx.bit_word.(i).(s)) <-
    ctx.words.(ctx.bit_word.(i).(s)) land lnot ctx.bit_mask.(i).(s);
  for q = 0 to Txn.num_steps txn - 1 do
    if Txn.precedes txn s q then ctx.indeg.(i).(q) <- ctx.indeg.(i).(q) + 1
  done;
  (match step.Step.action with
  | Step.Lock -> ctx.holder.(e) <- -1
  | Step.Unlock -> ctx.holder.(e) <- i
  | Step.Update -> ());
  ctx.touch_done.(i).(e) <- ctx.touch_done.(i).(e) - 1;
  List.iter (fun p -> clear_edge_bit ctx p) trail

exception Cyclic

(* Three-colour DFS over the n-vertex conflict-bit adjacency. *)
let conflict_cyclic ctx =
  let color = Array.make ctx.n 0 in
  let rec dfs u =
    color.(u) <- 1;
    for v = 0 to ctx.n - 1 do
      if has_edge ctx u v then
        if color.(v) = 1 then raise Cyclic
        else if color.(v) = 0 then dfs v
    done;
    color.(u) <- 2
  in
  try
    for u = 0 to ctx.n - 1 do
      if color.(u) = 0 then dfs u
    done;
    false
  with Cyclic -> true

(* ------------------------------------------------------------------ *)
(* The search proper. *)

type mode = Decide | Census | Deadlock

exception Found_unsafe of int array
exception Deadlock_found
exception Limit_hit

(* Deadlock dynamics ignore conflict history, so that mode keys on the
   mask prefix alone — a strictly coarser (sound) memoization. *)
let key_of ctx = function
  | Deadlock -> Array.sub ctx.words 0 ctx.mask_words
  | Decide | Census -> Array.copy ctx.words

let verdict_label = function
  | Safe -> "safe"
  | Unsafe _ -> "unsafe"
  | Exhausted _ -> "exhausted"

let mode_label = function
  | Decide -> "decide"
  | Census -> "census"
  | Deadlock -> "deadlock"

let run mode limit sys =
  Distlock_obs.Obs.with_span "stategraph.search" (fun sp ->
      let ctx = init sys in
      let visited : (Key.t * (int * int)) option Tbl.t = Tbl.create 1024 in
      let states = ref 0
      and dups = ref 0
      and complete = ref 0
      and deadlocked = ref 0 in
      let first_unsafe = ref None in
      let mstates = m_states () and mdups = m_dups () in
      (* [visit] is called with (i) the state applied in [ctx] and (ii)
         its key already inserted in [visited]; [my_key] is that key, the
         parent pointer for the children discovered here. *)
      let rec visit my_key =
        if ctx.executed = ctx.total then begin
          incr complete;
          if mode <> Deadlock && conflict_cyclic ctx then
            match mode with
            | Decide -> raise (Found_unsafe my_key)
            | Census ->
                if !first_unsafe = None then first_unsafe := Some my_key
            | Deadlock -> ()
        end
        else begin
          let any = ref false in
          for i = 0 to ctx.n - 1 do
            let k = Txn.num_steps (System.txn ctx.sys i) in
            for s = 0 to k - 1 do
              if enabled ctx i s then begin
                any := true;
                let trail = apply ctx i s in
                let key = key_of ctx mode in
                (match Tbl.find_opt visited key with
                | Some _ ->
                    incr dups;
                    Distlock_obs.Metric.incr mdups
                | None ->
                    if !states >= limit then raise Limit_hit;
                    incr states;
                    Distlock_obs.Metric.incr mstates;
                    Tbl.add visited key (Some (my_key, (i, s)));
                    visit key);
                undo ctx i s trail
              end
            done
          done;
          if not !any then begin
            incr deadlocked;
            if mode = Deadlock then raise Deadlock_found
          end
        end
      in
      (* Parent-pointer walk: first-discovery edges form a tree rooted at
         the empty state, so the chain up from a complete state is a
         legal schedule reaching it. *)
      let rebuild key =
        let rec go key acc =
          match Tbl.find visited key with
          | None -> acc
          | Some (parent, ev) -> go parent (ev :: acc)
        in
        Schedule.of_events (go key [])
      in
      let outcome =
        if limit < 1 then Exhausted { visited = 0; limit }
        else begin
          let root = key_of ctx mode in
          Tbl.add visited root None;
          incr states;
          Distlock_obs.Metric.incr mstates;
          match visit root with
          | () -> (
              match !first_unsafe with
              | Some k -> Unsafe (rebuild k)
              | None -> Safe)
          | exception Found_unsafe k -> Unsafe (rebuild k)
          | exception Deadlock_found -> Safe (* only [has_deadlock] asks *)
          | exception Limit_hit -> Exhausted { visited = !states; limit }
        end
      in
      let st =
        {
          states = !states;
          dup_hits = !dups;
          complete = !complete;
          deadlocked = !deadlocked;
        }
      in
      if Distlock_obs.Obs.enabled () then
        Distlock_obs.Obs.add_attrs sp
          Distlock_obs.Attr.
            [
              str "mode" (mode_label mode);
              int "states" st.states;
              int "dup_hits" st.dup_hits;
              int "complete_states" st.complete;
              str "verdict" (verdict_label outcome);
            ];
      (outcome, st))

let default_limit = 10_000_000

let decide ?(limit = default_limit) sys = run Decide limit sys

let census ?(limit = default_limit) sys = run Census limit sys

let has_deadlock sys =
  let _, st = run Deadlock max_int sys in
  st.deadlocked > 0

(* The oracle's per-state deadlock predicate ([enabled] over every
   pending step), evaluated on an externally supplied state instead of
   the search context — the online form a running simulator consults.
   A re-entrant Lock (holder = self) counts as enabled: a worker that
   believes it holds the entity can proceed, whatever the lock manager
   thinks. *)
let deadlocked_now sys ~executed ~holder =
  let n = System.num_txns sys in
  let any_enabled = ref false and all_done = ref true in
  for i = 0 to n - 1 do
    let txn = System.txn sys i in
    let k = Txn.num_steps txn in
    for s = 0 to k - 1 do
      if not (executed i s) then begin
        all_done := false;
        if not !any_enabled then begin
          let preds_ok = ref true in
          for p = 0 to k - 1 do
            if Txn.precedes txn p s && not (executed i p) then preds_ok := false
          done;
          if !preds_ok then
            let step = Txn.step txn s in
            match step.Step.action with
            | Step.Lock -> (
                match holder step.Step.entity with
                | None -> any_enabled := true
                | Some h -> if h = i then any_enabled := true)
            | Step.Unlock | Step.Update -> any_enabled := true
        end
      end
    done
  done;
  (not !all_done) && not !any_enabled
