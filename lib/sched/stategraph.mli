open Distlock_txn

(** Memoized state-graph safety oracle.

    {!Enumerate} decides safety by walking complete legal schedules —
    factorially many of them. But safety in the paper's model depends
    only on which *execution states* are reachable: a state is the pair
    (per-transaction done-bitmask, conflict-direction summary over
    ordered transaction pairs). Everything dynamic — enabled steps, lock
    holders, which conflict edges a future step will add — is a function
    of that pair, so schedules reaching the same state are
    interchangeable and the search collapses to a DFS over distinct
    states pruned by a visited table.

    States are packed into immutable [int array] keys: first the done
    bitmasks (one bit per step, 63 bits per word), then — word-aligned —
    the [n*n] conflict-edge bits. Lock holders are derivable from the
    done masks (an entity is held by the transaction that has executed
    its lock but not its unlock), so they stay out of the key.

    The system is unsafe iff some reachable complete state's conflict
    digraph is cyclic; the witness schedule is rebuilt from parent
    pointers recorded at first discovery, so the oracle meets
    [Brute.verdict]'s [Unsafe of Schedule.t] contract. A reachable
    non-final state with no enabled step is exactly a locking deadlock,
    so {!has_deadlock} falls out of the same search (memoized on the
    done masks alone — deadlock dynamics ignore conflict history). *)

type outcome =
  | Safe
  | Unsafe of Schedule.t  (** A legal non-serializable schedule. *)
  | Exhausted of { visited : int; limit : int }
      (** The visited-state budget ran out before the graph was covered. *)

(** Collapse statistics of one search, for E16 and the [--stats] path. *)
type stats = {
  states : int;  (** Distinct states visited (visited-table insertions). *)
  dup_hits : int;  (** Transitions pruned because the target was known. *)
  complete : int;  (** Distinct complete (all-steps-done) states. *)
  deadlocked : int;  (** Distinct non-final states with no enabled step. *)
}

val decide : ?limit:int -> System.t -> outcome * stats
(** Safety by state-graph reachability, returning at the first complete
    state with a cyclic conflict digraph. [limit] (default [10_000_000])
    bounds distinct states visited; past it the outcome is
    {!Exhausted}, never an exception. *)

val census : ?limit:int -> System.t -> outcome * stats
(** Like {!decide} but explores the whole reachable graph even after an
    unsafe state is found, so [stats] describes the full state graph
    (used by bench E16 to compare against the schedule census). *)

val has_deadlock : System.t -> bool
(** Can the system reach a locking deadlock? Same search keyed on the
    done masks only, with an early exit at the first deadlocked state.
    Exhaustive but memoized: the mask graph is exponentially smaller
    than the schedule tree. *)

val deadlocked_now :
  System.t ->
  executed:(int -> int -> bool) ->
  holder:(Database.entity -> int option) ->
  bool
(** The per-state deadlock predicate {!has_deadlock} searches with,
    exposed for online use: given the current execution state —
    [executed i s] tells whether transaction [i] has executed step [s],
    [holder e] who holds entity [e] — is some transaction unfinished
    while no pending step of any transaction is enabled? A Lock step is
    enabled when its entity is free or already held by its own
    transaction; Unlock/Update steps are enabled once their
    predecessors have executed. This is the simulator's wait-for
    detector: it fires exactly on the states the offline search counts
    as [deadlocked]. *)
