(* A fixed-size domain pool over a mutex-protected work queue.

   Design constraints, in order:
   - [domains:1] must not spawn anything: callers rely on a 1-wide pool
     being exactly the sequential semantics (same ordering, same
     exceptions, same effects on thread-unsafe state).
   - Result order is deterministic: [map] writes each result into the
     slot of its input index, so output order never depends on
     scheduling.
   - Tasks are coarse (a whole safety decision), so one global queue
     behind one mutex is not a contention point; no work stealing. *)

type job = unit -> unit

type t = {
  mutable domains : unit Domain.t array;  (* [||] for a 1-wide pool *)
  queue : job Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let size t = max 1 (Array.length t.domains)

let rec worker t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock (* closed: drain done *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.lock;
    job ();
    worker t
  end

let create ~domains =
  if domains < 1 then invalid_arg "Par.create: domains must be >= 1";
  let t =
    {
      domains = [||];
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
    }
  in
  if domains > 1 then
    t.domains <-
      Array.init domains (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t job =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Par.submit: pool is shut down"
  end;
  Queue.push job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  if not was_closed then Array.iter Domain.join t.domains

(* Each task writes its slot, then decrements a shared countdown; the
   caller waits on the countdown's condition. The first exception (by
   input index, so deterministically) is re-raised in the caller once
   every task has finished — tasks are never abandoned mid-flight. *)
let map t f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else if Array.length t.domains = 0 then List.map f xs
  else begin
    let out = Array.make n None in
    (* Exceptions carry the backtrace captured on the worker domain so a
       failure inside a task is debuggable from the caller's raise. *)
    let exn = Array.make n None in
    let remaining = ref n in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    for i = 0 to n - 1 do
      submit t (fun () ->
          (match f arr.(i) with
          | v -> out.(i) <- Some v
          | exception e -> exn.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          Mutex.lock done_lock;
          decr remaining;
          if !remaining = 0 then Condition.broadcast all_done;
          Mutex.unlock done_lock)
    done;
    Mutex.lock done_lock;
    while !remaining > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      exn;
    Array.to_list (Array.map Option.get out)
  end

let iter t f xs = ignore (map t (fun x -> f x) xs)

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
