(** A zero-dependency fixed-size domain pool: [domains] worker domains
    pulling thunks from one mutex-protected queue ([Domain] + [Mutex] +
    [Condition], nothing else).

    A pool of width 1 spawns no domains at all — {!map} and {!iter}
    degenerate to [List.map]/[List.iter] on the calling domain, so a
    1-wide pool is {e exactly} the sequential semantics (same order,
    same exceptions, same effects on thread-unsafe state). Callers can
    therefore use one code path for both.

    Tasks submitted through the pool run on worker domains; anything
    they touch must be domain-safe. Results of {!map} come back in input
    order regardless of scheduling. *)

type t

val create : domains:int -> t
(** Spawns [domains] worker domains ([domains = 1] spawns none). Raises
    [Invalid_argument] when [domains < 1]. Spawning costs ~1 ms per
    domain; reuse a pool across batches rather than creating one per
    small call. *)

val size : t -> int
(** The pool width requested at creation (1 for an inline pool). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Applies [f] to every element on the pool and returns the results in
    input order. Blocks the caller until all tasks finish. If any task
    raises, the exception of the {e lowest-indexed} failing element is
    re-raised in the caller — deterministically, and only after every
    task has completed (no abandoned work). *)

val iter : t -> ('a -> unit) -> 'a list -> unit
(** {!map} with unit results. *)

val shutdown : t -> unit
(** Signals the workers to exit once the queue drains and joins them.
    Idempotent. Submitting to a shut-down pool raises
    [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} — also on exception. *)
