type t = { adj : (string, (string, unit) Hashtbl.t) Hashtbl.t }

let create () = { adj = Hashtbl.create 32 }

let add_vertex t v =
  if not (Hashtbl.mem t.adj v) then Hashtbl.add t.adj v (Hashtbl.create 4)

let has_vertex t v = Hashtbl.mem t.adj v

let neighbour_tbl t v = Hashtbl.find_opt t.adj v

let remove_vertex t v =
  match neighbour_tbl t v with
  | None -> ()
  | Some ns ->
      Hashtbl.iter
        (fun w () ->
          match neighbour_tbl t w with
          | Some ws -> Hashtbl.remove ws v
          | None -> ())
        ns;
      Hashtbl.remove t.adj v

let num_vertices t = Hashtbl.length t.adj

let vertices t =
  List.sort compare (Hashtbl.fold (fun v _ acc -> v :: acc) t.adj [])

let add_edge t u v =
  if u = v then invalid_arg "Dyngraph.add_edge: self-loop";
  match (neighbour_tbl t u, neighbour_tbl t v) with
  | Some us, Some vs ->
      if not (Hashtbl.mem us v) then begin
        Hashtbl.add us v ();
        Hashtbl.add vs u ()
      end
  | _ -> invalid_arg "Dyngraph.add_edge: unknown vertex"

let remove_edge t u v =
  match (neighbour_tbl t u, neighbour_tbl t v) with
  | Some us, Some vs ->
      Hashtbl.remove us v;
      Hashtbl.remove vs u
  | _ -> ()

let has_edge t u v =
  match neighbour_tbl t u with Some us -> Hashtbl.mem us v | None -> false

let num_edges t =
  Hashtbl.fold (fun _ ns acc -> acc + Hashtbl.length ns) t.adj 0 / 2

let neighbours t v =
  match neighbour_tbl t v with
  | None -> []
  | Some ns -> List.sort compare (Hashtbl.fold (fun w () acc -> w :: acc) ns [])

let to_digraph t ~index_of ~n =
  let g = Digraph.create n in
  let idx v =
    let i = index_of v in
    if i < 0 || i >= n then invalid_arg "Dyngraph.to_digraph: index out of range";
    i
  in
  Hashtbl.iter
    (fun u ns ->
      let iu = idx u in
      Hashtbl.iter (fun v () -> Digraph.add_arc g iu (idx v)) ns)
    t.adj;
  g
