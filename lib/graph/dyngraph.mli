(** Dynamic undirected graphs over string-named vertices.

    {!Digraph} is a fixed-arity adjacency structure built once and then
    only read; incremental conflict-graph maintenance needs the dual:
    a graph whose vertex set and edge set change a little at a time
    (one transaction added, removed, or replaced) while the rest stays
    untouched. Vertices are identified by name so edges survive the
    index reshuffling that any array-backed representation suffers on
    removal. {!to_digraph} snapshots the current graph as a symmetric
    {!Digraph.t} for the read-only algorithms ({!Scc}, cycle
    enumeration).

    Not domain-safe; confine one graph to one domain (or lock
    externally), like [Hashtbl]. *)

type t

val create : unit -> t

val add_vertex : t -> string -> unit
(** No-op if already present. *)

val remove_vertex : t -> string -> unit
(** Removes the vertex and every incident edge; no-op if absent. *)

val has_vertex : t -> string -> bool

val num_vertices : t -> int

val vertices : t -> string list
(** Sorted by name. *)

val add_edge : t -> string -> string -> unit
(** Undirected; both endpoints must exist ([Invalid_argument]
    otherwise, as for a self-loop). Re-adding is a no-op. *)

val remove_edge : t -> string -> string -> unit
(** No-op if the edge (or either endpoint) is absent. *)

val has_edge : t -> string -> string -> bool

val num_edges : t -> int
(** Undirected edge count (each edge counted once). *)

val neighbours : t -> string -> string list
(** Sorted by name; [] for an absent vertex. *)

val to_digraph : t -> index_of:(string -> int) -> n:int -> Digraph.t
(** Snapshot as a symmetric digraph (both arcs per edge) on [n]
    vertices, mapping names through [index_of]. Raises
    [Invalid_argument] if [index_of] sends a vertex outside
    [0..n-1]. *)
