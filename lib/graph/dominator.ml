let is_dominator g x =
  let n = Digraph.n g in
  if Bitset.capacity x <> n then invalid_arg "Dominator.is_dominator";
  let card = Bitset.cardinal x in
  if card = 0 || card = n then false
  else begin
    let ok = ref true in
    Digraph.iter_arcs g (fun u v ->
        if Bitset.mem x v && not (Bitset.mem x u) then ok := false);
    !ok
  end

let find g =
  let n = Digraph.n g in
  if n < 2 then None
  else begin
    let r = Scc.compute g in
    if r.Scc.count <= 1 then None
    else begin
      let cond = Scc.condensation g r in
      let sets = Scc.component_sets g r in
      (* Source components of the condensation are minimal dominators. *)
      let best = ref None in
      for c = 0 to r.Scc.count - 1 do
        if Digraph.in_degree cond c = 0 then begin
          let size = Bitset.cardinal sets.(c) in
          match !best with
          | Some (s, _) when s <= size -> ()
          | _ -> best := Some (size, sets.(c))
        end
      done;
      Option.map snd !best
    end
  end

let find_all_minimal g =
  let r = Scc.compute g in
  if r.Scc.count <= 1 then []
  else begin
    let cond = Scc.condensation g r in
    let sets = Scc.component_sets g r in
    List.filter_map
      (fun c -> if Digraph.in_degree cond c = 0 then Some sets.(c) else None)
      (List.init r.Scc.count Fun.id)
  end

let enumerate ?(limit = 100_000) g =
  let n = Digraph.n g in
  let r = Scc.compute g in
  let k = r.Scc.count in
  if k <= 1 then []
  else begin
    let cond = Scc.condensation g r in
    let sets = Scc.component_sets g r in
    (* Enumerate predecessor-closed subsets of the condensation DAG.
       Components are numbered in reverse topological order (arc a -> b
       implies a > b), so predecessors of c have indices > c; we therefore
       scan components from high to low, deciding inclusion, and a component
       may be included only if all its condensation-predecessors are. *)
    let order =
      (* high-to-low = topological order of the condensation *)
      List.init k (fun i -> k - 1 - i)
    in
    let results = ref [] in
    let count = ref 0 in
    let chosen = Array.make k false in
    let rec go = function
      | [] ->
          let members = Bitset.create n in
          for c = 0 to k - 1 do
            if chosen.(c) then Bitset.union_into ~dst:members sets.(c)
          done;
          let card = Bitset.cardinal members in
          if card > 0 && card < n then begin
            incr count;
            if !count > limit then failwith "Dominator.enumerate: limit exceeded";
            results := members :: !results
          end
      | c :: rest ->
          chosen.(c) <- false;
          go rest;
          if List.for_all (fun p -> chosen.(p)) (Digraph.pred cond c) then begin
            chosen.(c) <- true;
            go rest;
            chosen.(c) <- false
          end
    in
    go order;
    List.rev !results
  end
