type t = {
  n : int;
  succ : int list array; (* reversed insertion order; normalized on read *)
  pred : int list array;
  arcset : (int * int, unit) Hashtbl.t;
  mutable num_arcs : int;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  {
    n;
    succ = Array.make (max n 1) [];
    pred = Array.make (max n 1) [];
    arcset = Hashtbl.create 64;
    num_arcs = 0;
  }

let n g = g.n

let num_arcs g = g.num_arcs

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Digraph: vertex out of range"

let mem_arc g u v =
  check g u;
  check g v;
  Hashtbl.mem g.arcset (u, v)

let add_arc g u v =
  check g u;
  check g v;
  if not (Hashtbl.mem g.arcset (u, v)) then begin
    Hashtbl.add g.arcset (u, v) ();
    g.succ.(u) <- v :: g.succ.(u);
    g.pred.(v) <- u :: g.pred.(v);
    g.num_arcs <- g.num_arcs + 1
  end

let of_arcs n arcs =
  let g = create n in
  List.iter (fun (u, v) -> add_arc g u v) arcs;
  g

let succ g v =
  check g v;
  List.rev g.succ.(v)

let pred g v =
  check g v;
  List.rev g.pred.(v)

let out_degree g v =
  check g v;
  List.length g.succ.(v)

let in_degree g v =
  check g v;
  List.length g.pred.(v)

let arcs g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun v -> acc := (u, v) :: !acc) (List.rev g.succ.(u))
  done;
  !acc

let copy g =
  {
    n = g.n;
    succ = Array.copy g.succ;
    pred = Array.copy g.pred;
    arcset = Hashtbl.copy g.arcset;
    num_arcs = g.num_arcs;
  }

let transpose g =
  let r = create g.n in
  Hashtbl.iter (fun (u, v) () -> add_arc r v u) g.arcset;
  r

let iter_succ g v f =
  check g v;
  List.iter f (List.rev g.succ.(v))

let iter_arcs g f = Hashtbl.iter (fun (u, v) () -> f u v) g.arcset

let vertices g = List.init g.n Fun.id

let equal a b =
  a.n = b.n
  && a.num_arcs = b.num_arcs
  && Hashtbl.fold (fun arc () ok -> ok && Hashtbl.mem b.arcset arc) a.arcset
       true

let union a b =
  if a.n <> b.n then invalid_arg "Digraph.union: size mismatch";
  let g = copy a in
  iter_arcs b (fun u v -> add_arc g u v);
  g

let induced g s =
  let keep = Bitset.elements s in
  let back = Array.of_list keep in
  let fwd = Hashtbl.create (Array.length back) in
  Array.iteri (fun i v -> Hashtbl.add fwd v i) back;
  let sub = create (Array.length back) in
  iter_arcs g (fun u v ->
      match (Hashtbl.find_opt fwd u, Hashtbl.find_opt fwd v) with
      | Some u', Some v' -> add_arc sub u' v'
      | _ -> ());
  (sub, back)

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph on %d vertices:@," g.n;
  List.iter (fun (u, v) -> Format.fprintf ppf "  %d -> %d@," u v) (arcs g);
  Format.fprintf ppf "@]"

let to_dot ?(name = "G") ?(label = string_of_int) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for v = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (label v))
  done;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    (arcs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
