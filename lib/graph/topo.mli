(** Topological sorting with priority tie-breaking, and cycle extraction.

    Theorem 2's certificate construction relies on two specially biased
    topological sorts ("place the [Ux] steps as early as possible", "place
    the [Lx] steps as late as possible"); [sort_with_priority] implements
    exactly that: among the currently available vertices, always emit one
    with the *smallest* priority value. *)

val sort : Digraph.t -> int array option
(** A topological order of the DAG, or [None] if the graph has a cycle. *)

val sort_with_priority : Digraph.t -> priority:(int -> int) -> int array option
(** Kahn's algorithm driven by a priority: whenever several vertices are
    available (all predecessors emitted), the one minimizing
    [priority v] — with the vertex id as final tie-break for determinism —
    is emitted first. [None] if the graph has a cycle. *)

val is_acyclic : Digraph.t -> bool

val find_cycle : Digraph.t -> int list option
(** Some cycle [v1; v2; ...; vk] with arcs [v1->v2->...->vk->v1], if any. *)

val is_topological_order : Digraph.t -> int array -> bool
(** Checks that the array is a permutation of the vertices in which every
    arc goes forward. *)
