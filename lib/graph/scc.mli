(** Strongly connected components (Tarjan's algorithm) and condensation.

    Strong connectivity of [D(T1,T2)] is the paper's central safety
    criterion (Theorems 1 and 2), and dominators are exactly the unions of
    components that are closed under predecessors in the condensation. *)

type result = {
  count : int;  (** Number of components. *)
  component : int array;
      (** [component.(v)] is the component index of vertex [v]. Components
          are numbered in reverse topological order of the condensation:
          if there is an arc from component [a] to component [b <> a] then
          [a > b]. *)
}

val compute : Digraph.t -> result

val is_strongly_connected : Digraph.t -> bool
(** [true] iff the graph has exactly one SCC. The empty graph (0 vertices)
    counts as strongly connected; a single vertex always does. *)

val members : result -> int -> int list
(** Vertices of one component. *)

val condensation : Digraph.t -> result -> Digraph.t
(** The DAG of components: vertex [c] for each component, arc [a -> b]
    whenever some original arc crosses from component [a] to [b]. *)

val component_sets : Digraph.t -> result -> Bitset.t array
(** [component_sets g r] gives each component as a bitset over [g]'s
    vertices. *)
