(* A tiny binary min-heap on (priority, vertex) pairs; the standard library
   has no priority queue and the priority sorts below are on hot paths of
   the Theorem 2 certificate construction. *)
module Heap = struct
  type t = { mutable data : (int * int) array; mutable size : int }

  let create () = { data = Array.make 16 (0, 0); size = 0 }

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h x =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0, 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && h.data.((!i - 1) / 2) > h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && h.data.(l) < h.data.(!smallest) then smallest := l;
        if r < h.size && h.data.(r) < h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let sort_with_priority g ~priority =
  let n = Digraph.n g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let heap = Heap.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Heap.push heap (priority v, v)
  done;
  let order = Array.make n (-1) in
  let emitted = ref 0 in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (_, v) ->
        order.(!emitted) <- v;
        incr emitted;
        Digraph.iter_succ g v (fun w ->
            indeg.(w) <- indeg.(w) - 1;
            if indeg.(w) = 0 then Heap.push heap (priority w, w));
        drain ()
  in
  drain ();
  if !emitted = n then Some order else None

let sort g = sort_with_priority g ~priority:(fun _ -> 0)

let is_acyclic g = Option.is_some (sort g)

let find_cycle g =
  let n = Digraph.n g in
  (* colors: 0 = unvisited, 1 = on current path, 2 = done *)
  let color = Array.make n 0 in
  let parent = Array.make n (-1) in
  let found = ref None in
  let rec dfs v =
    color.(v) <- 1;
    let rec scan = function
      | [] -> ()
      | w :: rest ->
          if !found = None then begin
            if color.(w) = 0 then begin
              parent.(w) <- v;
              dfs w
            end
            else if color.(w) = 1 then begin
              (* Walk back from v to w along parents. *)
              let rec back u acc = if u = w then u :: acc else back parent.(u) (u :: acc) in
              found := Some (back v [])
            end;
            scan rest
          end
    in
    scan (Digraph.succ g v);
    color.(v) <- 2
  in
  let v = ref 0 in
  while !found = None && !v < n do
    if color.(!v) = 0 then dfs !v;
    incr v
  done;
  !found

let is_topological_order g order =
  let n = Digraph.n g in
  if Array.length order <> n then false
  else begin
    let pos = Array.make n (-1) in
    let ok = ref true in
    Array.iteri
      (fun i v ->
        if v < 0 || v >= n || pos.(v) <> -1 then ok := false else pos.(v) <- i)
      order;
    if !ok then
      Digraph.iter_arcs g (fun u v -> if pos.(u) >= pos.(v) then ok := false);
    !ok
  end
