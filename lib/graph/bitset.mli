(** Fixed-capacity mutable bitsets over the universe [0 .. capacity-1].

    Used throughout the library as the backing store for transitive closures
    and reachability sets: the paper's conditions ("[Lx] precedes [Uy] in
    [T1]") all become O(1) membership probes once a closure has been
    computed. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val copy : t -> t

val clear : t -> unit

val cardinal : t -> int

val is_empty : t -> bool

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets [dst := dst ∪ src]. Capacities must match. *)

val inter_into : dst:t -> t -> unit

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] iff [a ⊆ b]. *)

val disjoint : t -> t -> bool

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list

val of_list : int -> int list -> t

val full : int -> t
(** [full n] contains every element of [0..n-1]. *)

val complement : t -> t
(** Complement within the universe. *)

val pp : Format.formatter -> t -> unit
