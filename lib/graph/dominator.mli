(** Dominators in the sense of the paper (Definition 2).

    A dominator of a digraph [D = (V, A)] is a nonempty *proper* subset
    [X ⊂ V] with no incoming arcs from [V - X]; equivalently, [X] is a
    nonempty proper union of SCCs that is closed under predecessors in the
    condensation. A digraph has a dominator iff it is not strongly
    connected. (This is *not* the flow-graph notion of dominator.) *)

val is_dominator : Digraph.t -> Bitset.t -> bool

val find : Digraph.t -> Bitset.t option
(** Some dominator if the graph is not strongly connected: the smallest
    source component of the condensation. [None] on strongly connected
    graphs (including graphs with [< 2] vertices). *)

val find_all_minimal : Digraph.t -> Bitset.t list
(** All source SCCs, each a (minimal) dominator. *)

val enumerate : ?limit:int -> Digraph.t -> Bitset.t list
(** Every dominator: all nonempty proper predecessor-closed unions of SCCs.
    Exponential in the number of components; [limit] (default [100_000])
    caps the output and raises [Failure] when exceeded. Used to sweep the
    dominator/assignment correspondence of the Theorem 3 gadgets. *)
