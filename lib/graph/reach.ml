let from g v =
  let n = Digraph.n g in
  let seen = Bitset.create n in
  let rec go v =
    if not (Bitset.mem seen v) then begin
      Bitset.add seen v;
      List.iter go (Digraph.succ g v)
    end
  in
  go v;
  seen

let closure_dag g order =
  let n = Digraph.n g in
  let desc = Array.init n (fun _ -> Bitset.create n) in
  (* Process in reverse topological order so successors are final. *)
  for i = n - 1 downto 0 do
    let v = order.(i) in
    List.iter
      (fun w ->
        Bitset.add desc.(v) w;
        Bitset.union_into ~dst:desc.(v) desc.(w))
      (Digraph.succ g v)
  done;
  desc

let closure_general g =
  let n = Digraph.n g in
  Array.init n (fun v ->
      let r = from g v in
      (* strict descendants: drop v unless v lies on a cycle through v *)
      let on_cycle =
        List.exists (fun w -> w = v || Bitset.mem (from g w) v) (Digraph.succ g v)
      in
      if not on_cycle then Bitset.remove r v;
      r)

let closure g =
  match Topo.sort g with
  | Some order -> closure_dag g order
  | None -> closure_general g

let closure_digraph g =
  let desc = closure g in
  let c = Digraph.create (Digraph.n g) in
  Array.iteri (fun u s -> Bitset.iter (fun v -> Digraph.add_arc c u v) s) desc;
  c

let transitive_reduction g =
  match Topo.sort g with
  | None -> invalid_arg "Reach.transitive_reduction: cyclic graph"
  | Some order ->
      let desc = closure_dag g order in
      let r = Digraph.create (Digraph.n g) in
      Digraph.iter_arcs g (fun u v ->
          (* keep u->v unless some other successor of u already reaches v *)
          let redundant =
            List.exists (fun w -> w <> v && Bitset.mem desc.(w) v) (Digraph.succ g u)
          in
          if not redundant then Digraph.add_arc r u v);
      r
