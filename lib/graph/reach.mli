(** Reachability and transitive closure. *)

val from : Digraph.t -> int -> Bitset.t
(** Vertices reachable from [v], including [v] itself. *)

val closure : Digraph.t -> Bitset.t array
(** [closure g] gives, for each vertex, its set of *strict* descendants:
    [mem (closure g).(u) v] iff there is a nonempty path [u -> ... -> v].
    Computed in reverse topological order when the graph is a DAG and by
    per-vertex BFS otherwise. *)

val closure_digraph : Digraph.t -> Digraph.t
(** The digraph whose arcs are all pairs [(u,v)] with a nonempty
    [u -> v] path. *)

val transitive_reduction : Digraph.t -> Digraph.t
(** For a DAG: the unique minimal subgraph with the same reachability.
    Raises [Invalid_argument] on cyclic input. *)
