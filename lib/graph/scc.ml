type result = { count : int; component : int array }

(* Iterative Tarjan: an explicit stack avoids stack overflow on the long
   chain-shaped graphs the benchmarks generate. *)
let compute g =
  let n = Digraph.n g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let component = Array.make n (-1) in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    (* Frame: vertex and the list of successors still to process. *)
    let frames = ref [ (root, ref (Digraph.succ g root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, todo) :: rest -> (
          match !todo with
          | w :: more ->
              todo := more;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                frames := (w, ref (Digraph.succ g w)) :: !frames
              end
              else if on_stack.(w) then
                lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
              if lowlink.(v) = index.(v) then begin
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> assert false
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      component.(w) <- !next_comp;
                      if w = v then continue := false
                done;
                incr next_comp
              end;
              frames := rest;
              (match rest with
              | (parent, _) :: _ ->
                  lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
              | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  { count = !next_comp; component }

let is_strongly_connected g = (compute g).count <= 1

let members r c =
  let acc = ref [] in
  for v = Array.length r.component - 1 downto 0 do
    if r.component.(v) = c then acc := v :: !acc
  done;
  !acc

let condensation g r =
  let c = Digraph.create r.count in
  Digraph.iter_arcs g (fun u v ->
      let cu = r.component.(u) and cv = r.component.(v) in
      if cu <> cv then Digraph.add_arc c cu cv);
  c

let component_sets g r =
  let n = Digraph.n g in
  let sets = Array.init r.count (fun _ -> Bitset.create n) in
  for v = 0 to n - 1 do
    Bitset.add sets.(r.component.(v)) v
  done;
  sets
