(** Directed graphs over vertices [0 .. n-1].

    The central objects of the paper — [D(T1,T2)] (Definition 1), transaction
    precedence DAGs, conflict graphs, and the [B_ijk] graphs of Section 6 —
    are all finite digraphs; this module is their common substrate. Arcs are
    stored both as adjacency lists (for traversal) and as a hash set (for
    O(1) membership). *)

type t

val create : int -> t
(** [create n] is the arcless digraph on [n] vertices. *)

val of_arcs : int -> (int * int) list -> t

val n : t -> int
(** Number of vertices. *)

val num_arcs : t -> int

val add_arc : t -> int -> int -> unit
(** [add_arc g u v] adds the arc [u -> v]; duplicate additions are no-ops.
    Self-loops are allowed. *)

val mem_arc : t -> int -> int -> bool

val succ : t -> int -> int list
(** Out-neighbours, in insertion order. *)

val pred : t -> int -> int list
(** In-neighbours, in insertion order. *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val arcs : t -> (int * int) list
(** All arcs, grouped by source vertex. *)

val copy : t -> t

val transpose : t -> t
(** The reverse digraph. *)

val iter_succ : t -> int -> (int -> unit) -> unit

val iter_arcs : t -> (int -> int -> unit) -> unit

val vertices : t -> int list

val equal : t -> t -> bool
(** Same vertex count and same arc set (order-insensitive). *)

val union : t -> t -> t
(** Arc-set union of two digraphs on the same vertex set. *)

val induced : t -> Bitset.t -> t * int array
(** [induced g s] is the subgraph induced by vertex set [s], with vertices
    renumbered [0..|s|-1]; the returned array maps new indices back to
    original vertices. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> ?label:(int -> string) -> t -> string
(** Graphviz rendering, used by the CLI's [--dot] output. *)
