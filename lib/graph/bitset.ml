type t = { words : int array; capacity : int }

let bits_per_word = Sys.int_size

let nwords n = if n = 0 then 0 else ((n - 1) / bits_per_word) + 1

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make (nwords n) 0; capacity = n }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let copy t = { t with words = Array.copy t.words }

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let union_into ~dst src =
  same_capacity dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let inter_into ~dst src =
  same_capacity dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let equal a b = a.capacity = b.capacity && a.words = b.words

let subset a b =
  same_capacity a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let disjoint a b =
  same_capacity a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land b.words.(i) <> 0 then ok := false
  done;
  !ok

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t

let full n =
  let t = create n in
  for i = 0 to n - 1 do
    add t i
  done;
  t

let complement t =
  let r = create t.capacity in
  for i = 0 to t.capacity - 1 do
    if not (mem t i) then add r i
  done;
  r

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements t)
