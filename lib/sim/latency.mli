(** The simulator's site model: per-site message-latency distributions.

    Messages between transactions at different sites (lock requests,
    grants, cross-site step notifications) cost a sampled number of
    ticks; same-site messages use a separate local distribution
    (zero by default). Latency draws take an explicit RNG so callers
    can keep them off the scheduling-policy stream. *)

type dist =
  | Zero
  | Constant of int  (** every message costs exactly [n] ticks *)
  | Uniform of int * int  (** inclusive range, sampled uniformly *)

type t = { local_ : dist; remote : dist }

val none : t
(** Zero latency everywhere — the legacy engine's implicit model. *)

val make : ?local:dist -> dist -> t
(** [make remote] with local traffic free unless [?local] is given. *)

val is_zero : t -> bool

val sample : t -> Random.State.t -> src:int -> dst:int -> int
(** One-way cost of a message from site [src] to site [dst]. *)

val of_string : string -> t
(** Parses ["none"], a constant (["3"]), or a uniform range (["1-5"]) as
    the remote distribution. Raises [Invalid_argument] or [Failure] on
    malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
