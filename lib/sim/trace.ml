open Distlock_txn

type event = { tick : int; txn : int; step : int; site : int; attempt : int }

type txn_metrics = {
  txn : int;
  attempts : int; (* 0 = never started *)
  first_start : int option;
  commit : int option;
  steps_executed : int;
  wasted_steps : int;
  wait_ticks : int;
}

type site_metrics = {
  site : int;
  events : int;
  busy_span : int;
  utilization : float;
}

type report = {
  events : event list;
  txns : txn_metrics list;
  sites : site_metrics list;
  makespan : int;
  wait_p50 : float;
  wait_p90 : float;
  wait_p99 : float;
}

module Metric = Distlock_obs.Metric

(* Powers of two up to 512 ticks — matches the simulator's live
   histograms so offline and scraped percentiles agree. *)
let wait_buckets = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. |]

let distinct_ticks evs =
  List.length (List.sort_uniq compare (List.map (fun (e : event) -> e.tick) evs))

let analyze sys events =
  let n = System.num_txns sys in
  let per_txn = Array.make n [] in
  List.iter (fun (e : event) -> per_txn.(e.txn) <- e :: per_txn.(e.txn)) events;
  (* Per-step waits (idle ticks between a transaction's consecutive
     steps) feed a bucket histogram so the report's percentiles use the
     same estimator as the live scrape endpoint. *)
  let wait_h = Metric.histogram ~buckets:wait_buckets () in
  let txns =
    List.init n (fun i ->
        let evs = List.rev per_txn.(i) in
        (let rec gaps = function
           | (a : event) :: (b :: _ as rest) ->
               Metric.observe wait_h (float_of_int (max 0 (b.tick - a.tick - 1)));
               gaps rest
           | _ -> ()
         in
         gaps evs);
        (* No events means the transaction never started: attempts is 0
           and start/commit are absent, distinguishable from one that
           committed at tick 0. *)
        let attempts =
          List.fold_left (fun m (e : event) -> max m e.attempt) 0 evs
        in
        let committed_steps =
          List.length (List.filter (fun (e : event) -> e.attempt = attempts) evs)
        in
        let first_start =
          match evs with [] -> None | (e : event) :: _ -> Some e.tick
        in
        let commit =
          match evs with
          | [] -> None
          | _ -> Some (List.fold_left (fun m (e : event) -> max m e.tick) 0 evs)
        in
        let wait_ticks =
          match (first_start, commit) with
          | Some s, Some c -> max 0 (c - s + 1 - distinct_ticks evs)
          | _ -> 0
        in
        {
          txn = i;
          attempts;
          first_start;
          commit;
          steps_executed = List.length evs;
          wasted_steps = List.length evs - committed_steps;
          wait_ticks;
        })
  in
  let site_tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : event) ->
      let evs =
        Option.value ~default:[] (Hashtbl.find_opt site_tbl e.site)
      in
      Hashtbl.replace site_tbl e.site (e :: evs))
    events;
  let makespan = List.fold_left (fun m (e : event) -> max m e.tick) 0 events in
  let sites =
    Hashtbl.fold
      (fun site evs acc ->
        let lo, hi =
          List.fold_left
            (fun (lo, hi) (e : event) -> (min lo e.tick, max hi e.tick))
            (max_int, min_int) evs
        in
        (* Busy span only says when the site was first and last touched;
           utilization counts the ticks it actually executed something,
           over the whole run. *)
        let utilization =
          if makespan = 0 then 0.
          else float_of_int (distinct_ticks evs) /. float_of_int makespan
        in
        { site; events = List.length evs; busy_span = hi - lo; utilization }
        :: acc)
      site_tbl []
    |> List.sort (fun a b -> compare a.site b.site)
  in
  let q p = Metric.quantile wait_h p in
  {
    events;
    txns;
    sites;
    makespan;
    wait_p50 = q 0.5;
    wait_p90 = q 0.9;
    wait_p99 = q 0.99;
  }

module Json = Distlock_obs.Json

(* One structured record per executed step — the JSONL schema behind
   `simulate --trace`. [seed] tags the run when several seeded runs
   share one file. *)
let event_to_json ?seed sys (e : event) =
  let txn = System.txn sys e.txn in
  let step = Txn.step txn e.step in
  Json.Obj
    ((match seed with Some s -> [ ("seed", Json.Int s) ] | None -> [])
    @ [
        ("tick", Json.Int e.tick);
        ("txn", Json.Str (Txn.name txn));
        ("step", Json.Str (Step.to_string (System.db sys) step));
        ( "action",
          Json.Str
            (match step.Step.action with
            | Step.Lock -> "lock"
            | Step.Unlock -> "unlock"
            | Step.Update -> "update") );
        ("entity", Json.Str (Database.name (System.db sys) step.Step.entity));
        ("site", Json.Int e.site);
        ("attempt", Json.Int e.attempt);
      ])

let write_jsonl ?seed sys oc events =
  List.iter
    (fun e ->
      output_string oc (Json.to_string (event_to_json ?seed sys e));
      output_char oc '\n')
    events

let pp_event sys ppf (e : event) =
  let txn = System.txn sys e.txn in
  Format.fprintf ppf "t=%d %s_%d@site%d%s" e.tick
    (Step.to_string (System.db sys) (Txn.step txn e.step))
    (e.txn + 1) e.site
    (if e.attempt > 1 then Printf.sprintf " (attempt %d)" e.attempt else "")

let pp_quantile v = Printf.sprintf "%.1f" v

let pp_report sys ppf r =
  Format.fprintf ppf "@[<v>makespan: %d ticks@," r.makespan;
  List.iter
    (fun m ->
      match (m.first_start, m.commit) with
      | Some start, Some commit ->
          Format.fprintf ppf
            "%s: start %d, commit %d, %d attempt(s), %d steps (%d wasted), \
             waited %d@,"
            (Txn.name (System.txn sys m.txn))
            start commit m.attempts m.steps_executed m.wasted_steps
            m.wait_ticks
      | _ ->
          Format.fprintf ppf "%s: never started@,"
            (Txn.name (System.txn sys m.txn)))
    r.txns;
  List.iter
    (fun s ->
      Format.fprintf ppf
        "site %d: %d events over %d ticks, utilization %.0f%%@," s.site
        s.events s.busy_span (100. *. s.utilization))
    r.sites;
  if not (Float.is_nan r.wait_p50) then
    Format.fprintf ppf "step waits (ticks): p50 %s p90 %s p99 %s@,"
      (pp_quantile r.wait_p50) (pp_quantile r.wait_p90)
      (pp_quantile r.wait_p99);
  Format.fprintf ppf "@]"
