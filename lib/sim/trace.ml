open Distlock_txn

type event = { tick : int; txn : int; step : int; site : int; attempt : int }

type txn_metrics = {
  txn : int;
  attempts : int; (* 0 = never started *)
  first_start : int option;
  commit : int option;
  steps_executed : int;
  wasted_steps : int;
}

type site_metrics = { site : int; events : int; busy_span : int }

type report = {
  events : event list;
  txns : txn_metrics list;
  sites : site_metrics list;
  makespan : int;
}

let analyze sys events =
  let n = System.num_txns sys in
  let per_txn = Array.make n [] in
  List.iter (fun (e : event) -> per_txn.(e.txn) <- e :: per_txn.(e.txn)) events;
  let txns =
    List.init n (fun i ->
        let evs = List.rev per_txn.(i) in
        (* No events means the transaction never started: attempts is 0
           and start/commit are absent, distinguishable from one that
           committed at tick 0. *)
        let attempts =
          List.fold_left (fun m (e : event) -> max m e.attempt) 0 evs
        in
        let committed_steps =
          List.length (List.filter (fun (e : event) -> e.attempt = attempts) evs)
        in
        {
          txn = i;
          attempts;
          first_start =
            (match evs with [] -> None | (e : event) :: _ -> Some e.tick);
          commit =
            (match evs with
            | [] -> None
            | _ ->
                Some
                  (List.fold_left (fun m (e : event) -> max m e.tick) 0 evs));
          steps_executed = List.length evs;
          wasted_steps = List.length evs - committed_steps;
        })
  in
  let site_tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : event) ->
      let lo, hi, k =
        Option.value ~default:(e.tick, e.tick, 0) (Hashtbl.find_opt site_tbl e.site)
      in
      Hashtbl.replace site_tbl e.site (min lo e.tick, max hi e.tick, k + 1))
    events;
  let sites =
    Hashtbl.fold
      (fun site (lo, hi, k) acc ->
        { site; events = k; busy_span = hi - lo } :: acc)
      site_tbl []
    |> List.sort (fun a b -> compare a.site b.site)
  in
  let makespan = List.fold_left (fun m (e : event) -> max m e.tick) 0 events in
  { events; txns; sites; makespan }

module Json = Distlock_obs.Json

(* One structured record per executed step — the JSONL schema behind
   `simulate --trace`. [seed] tags the run when several seeded runs
   share one file. *)
let event_to_json ?seed sys (e : event) =
  let txn = System.txn sys e.txn in
  let step = Txn.step txn e.step in
  Json.Obj
    ((match seed with Some s -> [ ("seed", Json.Int s) ] | None -> [])
    @ [
        ("tick", Json.Int e.tick);
        ("txn", Json.Str (Txn.name txn));
        ("step", Json.Str (Step.to_string (System.db sys) step));
        ( "action",
          Json.Str
            (match step.Step.action with
            | Step.Lock -> "lock"
            | Step.Unlock -> "unlock"
            | Step.Update -> "update") );
        ("entity", Json.Str (Database.name (System.db sys) step.Step.entity));
        ("site", Json.Int e.site);
        ("attempt", Json.Int e.attempt);
      ])

let write_jsonl ?seed sys oc events =
  List.iter
    (fun e ->
      output_string oc (Json.to_string (event_to_json ?seed sys e));
      output_char oc '\n')
    events

let pp_event sys ppf (e : event) =
  let txn = System.txn sys e.txn in
  Format.fprintf ppf "t=%d %s_%d@site%d%s" e.tick
    (Step.to_string (System.db sys) (Txn.step txn e.step))
    (e.txn + 1) e.site
    (if e.attempt > 1 then Printf.sprintf " (attempt %d)" e.attempt else "")

let pp_report sys ppf r =
  Format.fprintf ppf "@[<v>makespan: %d ticks@," r.makespan;
  List.iter
    (fun m ->
      match (m.first_start, m.commit) with
      | Some start, Some commit ->
          Format.fprintf ppf
            "%s: start %d, commit %d, %d attempt(s), %d steps (%d wasted)@,"
            (Txn.name (System.txn sys m.txn))
            start commit m.attempts m.steps_executed m.wasted_steps
      | _ ->
          Format.fprintf ppf "%s: never started@,"
            (Txn.name (System.txn sys m.txn)))
    r.txns;
  List.iter
    (fun s ->
      Format.fprintf ppf "site %d: %d events over %d ticks@," s.site s.events
        s.busy_span)
    r.sites;
  Format.fprintf ppf "@]"
