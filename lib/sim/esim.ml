open Distlock_txn
open Distlock_sched
module Obs = Distlock_obs.Obs
module A = Distlock_obs.Attr
module M = Distlock_obs.Metric

(* The layered event-driven simulator: a Clock of timestamped events
   drives scheduling decisions, lock traffic goes through a pluggable
   Backend, message costs come from a Latency model, and faults from a
   Scenario. With the instant backend, zero latency, and no faults, the
   event chain degenerates to one Decide per tick whose body mirrors
   [Engine.run]'s loop iteration statement for statement — the refactor
   safety net test/test_esim.ml checks that equivalence bit-for-bit.

   RNG discipline: three independent streams, so enabling one knob never
   perturbs another. The policy stream is seeded exactly as the legacy
   engine's ([| seed |]) and drawn once per decision with a non-empty
   choice set; the fault and latency streams are domain-salted and drawn
   only when crash_rate > 0 / latency is non-zero. Everything else is
   arrays indexed by dense ids — no Hashtbl iteration anywhere a
   decision depends on. *)

let m_runs () =
  Distlock_obs.Registry.counter Obs.global
    ~help:"Event-driven simulator runs completed" "distlock_esim_runs_total"

(* Per-backend labeled instruments, resolved once per [run]: registry
   get-or-create takes a mutex, so handles are captured up front and the
   site-labeled histograms are memoized on first use. Ticks are integer
   simulated time, so power-of-two buckets up to 512 cover everything
   from an instant grant to a badly starved worker. *)
let tick_buckets = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. |]

type meters = {
  mm_grants : M.counter;
  mm_queued : M.counter;
  mm_expiries : M.counter;
  mm_stale : M.counter;
  mm_crashes : M.counter;
  mm_restarts : M.counter;
  mm_depth : M.gauge;
  mm_wait : int -> M.histogram; (* by site *)
  mm_hold : int -> M.histogram;
  mm_msg : int -> M.histogram;
}

let make_meters backend_name =
  let labels = [ ("backend", backend_name) ] in
  let counter help name =
    Distlock_obs.Registry.counter Obs.global ~labels ~help name
  in
  let site_histogram help name =
    let cache = Hashtbl.create 8 in
    fun site ->
      match Hashtbl.find_opt cache site with
      | Some h -> h
      | None ->
          let h =
            Distlock_obs.Registry.histogram Obs.global
              ~labels:(labels @ [ ("site", string_of_int site) ])
              ~buckets:tick_buckets ~help name
          in
          Hashtbl.add cache site h;
          h
  in
  {
    mm_grants = counter "Lock requests granted" "distlock_sim_grants_total";
    mm_queued =
      counter "Lock requests queued behind a holder" "distlock_sim_queued_total";
    mm_expiries =
      counter "Leases expired while their holder was down"
        "distlock_sim_lease_expiries_total";
    mm_stale =
      counter "Unlocks by a worker that no longer held the lock"
        "distlock_sim_stale_releases_total";
    mm_crashes =
      counter "Worker crash events injected" "distlock_sim_crashes_total";
    mm_restarts =
      counter "Workers restarted after a crash" "distlock_sim_restarts_total";
    mm_depth =
      Distlock_obs.Registry.gauge Obs.global ~labels
        ~help:"Pending events in the simulator clock"
        "distlock_sim_event_queue_depth";
    mm_wait =
      site_histogram "Ticks between lock request and grant"
        "distlock_sim_lock_wait_ticks";
    mm_hold =
      site_histogram "Ticks between lock grant and release"
        "distlock_sim_lock_hold_ticks";
    mm_msg =
      site_histogram "Sampled message delivery latency in ticks"
        "distlock_sim_message_latency_ticks";
  }

type stats = {
  ticks : int;  (** scheduling decisions taken *)
  makespan : int;  (** simulated time at completion *)
  commits : int;
  aborts : int;
  deadlocks : int;
  crashes : int;
  lease_expiries : int;
  stale_unlocks : int;
}

type outcome = {
  history : Schedule.t;
  serializable : bool;
  legal : bool;
  stats : stats;
  trace : Trace.event list;
}

type event = Decide | Resume of int

type instance = {
  txn_index : int;
  txn : Txn.t;
  mutable done_ : bool array;
  mutable done_tick : int array;
  mutable ready_at : int array; (* per step: when its inputs have arrived *)
  mutable executed : int;
  mutable events : int list; (* step indices of the current attempt, reversed *)
  mutable committed : bool;
  mutable birth : int;
  mutable attempt : int;
  mutable waiting : int; (* step index of an outstanding queued lock, or -1 *)
  mutable waiting_since : int; (* tick the outstanding request was issued *)
  mutable crashed : bool;
  mutable loc : int; (* site of the last executed step — where the worker is *)
  mutable pending_grants : int list; (* grants that arrived while crashed *)
  mutable held_since : (int * int) list; (* entity -> tick of its grant *)
}

let home_site db txn =
  if Txn.num_steps txn = 0 then 1
  else Database.site db (Txn.step txn 0).Step.entity

let run ?(policy = Engine.Round_robin) ?(scenario = Scenario.default)
    ?(check_serializability = true) sys =
  let sp =
    Obs.start_span "esim.run"
      ~attrs:(fun () ->
        A.str "policy"
          (match policy with
          | Engine.Round_robin -> "round-robin"
          | Engine.Random seed -> Printf.sprintf "random(%d)" seed)
        :: A.int "txns" (System.num_txns sys)
        :: Scenario.to_attrs scenario)
  in
  let db = System.db sys in
  let n = System.num_txns sys in
  let backend = Scenario.make_backend scenario db in
  let queueing = Backend.queues backend in
  let latency = scenario.Scenario.latency in
  let zero_latency = Latency.is_zero latency in
  let faulty = not (Scenario.fault_free scenario) in
  let instances =
    Array.init n (fun i ->
        let txn = System.txn sys i in
        let k = Txn.num_steps txn in
        {
          txn_index = i;
          txn;
          done_ = Array.make k false;
          done_tick = Array.make k 0;
          ready_at = Array.make k 0;
          executed = 0;
          events = [];
          committed = false;
          birth = 0;
          attempt = 1;
          waiting = -1;
          waiting_since = -1;
          crashed = false;
          loc = home_site db txn;
          pending_grants = [];
          held_since = [];
        })
  in
  let meters = make_meters (Backend.name backend) in
  (* Policy stream seeded like the legacy engine; fault and latency
     streams salted so they cannot collide with it. *)
  let rng =
    match policy with
    | Engine.Random seed -> Some (Random.State.make [| seed |])
    | Engine.Round_robin -> None
  in
  let base_seed =
    match policy with Engine.Random s -> s | Engine.Round_robin -> 0
  in
  let fault_rng = Random.State.make [| base_seed; 0xFA17 |] in
  let lat_rng = Random.State.make [| base_seed; 0x1A7E |] in
  let clock = Clock.create () in
  let booked = ref max_int in
  let ensure_decide time =
    if time < !booked then begin
      Clock.at clock ~time Decide;
      booked := time
    end
  in
  let ticks = ref 0
  and aborts = ref 0
  and blocks = ref 0
  and crashes = ref 0
  and expiries = ref 0
  and stale = ref 0 in
  let global_log = ref [] in
  let trace = ref [] in
  let rr_cursor = ref 0 in
  let was_blocked = Array.make n false in
  let result = ref None in
  let all_committed () = Array.for_all (fun i -> i.committed) instances in
  let now () = Clock.now clock in
  let fresh_attempt inst =
    let k = Txn.num_steps inst.txn in
    inst.done_ <- Array.make k false;
    inst.done_tick <- Array.make k 0;
    inst.ready_at <- Array.make k 0;
    inst.executed <- 0;
    inst.events <- [];
    inst.birth <- now ();
    inst.attempt <- inst.attempt + 1;
    inst.waiting <- -1;
    inst.waiting_since <- -1;
    inst.pending_grants <- [];
    inst.held_since <- [];
    inst.loc <- home_site db inst.txn
  in
  (* `Ready: predecessors executed and their results have arrived;
     `Awaiting_message: executed but a notification is still in flight;
     `Blocked_order: some predecessor has not run. Mirrors the legacy
     [pred_status] with sampled arrival times in place of a constant
     delay. *)
  let pred_status inst s =
    let status = ref `Ready in
    for p = 0 to Txn.num_steps inst.txn - 1 do
      if Txn.precedes inst.txn p s && not inst.done_.(p) then
        status := `Blocked_order
    done;
    if !status = `Ready && inst.ready_at.(s) > now () then `Awaiting_message
    else !status
  in
  let enabled_steps inst =
    if inst.committed || inst.crashed then []
    else begin
      let acc = ref [] in
      for s = 0 to Txn.num_steps inst.txn - 1 do
        if (not inst.done_.(s)) && pred_status inst s = `Ready then begin
          let step = Txn.step inst.txn s in
          match step.Step.action with
          | Step.Lock ->
              if queueing then begin
                (* One outstanding request per worker: while queued it
                   issues no further locks (other actions still run). *)
                if inst.waiting < 0 then acc := s :: !acc
              end
              else begin
                match Backend.holder backend step.Step.entity with
                | Some h when h <> inst.txn_index -> () (* blocked *)
                | _ -> acc := s :: !acc
              end
          | Step.Unlock | Step.Update -> acc := s :: !acc
        end
      done;
      List.rev !acc
    end
  in
  let awaiting_message inst =
    (not inst.committed)
    && (not inst.crashed)
    && begin
         let found = ref false in
         for s = 0 to Txn.num_steps inst.txn - 1 do
           if (not inst.done_.(s)) && pred_status inst s = `Awaiting_message
           then found := true
         done;
         !found
       end
  in
  (* Wait-for edges for the deadlock victim chooser. A non-queueing
     worker waits on the holders of entities its ready locks need (the
     legacy scan, same accumulation order); a queueing worker waits on
     the holder of the entity its one outstanding request is queued
     behind. *)
  let blocked_on inst =
    let acc = ref [] in
    if queueing then begin
      if inst.waiting >= 0 then
        let e = (Txn.step inst.txn inst.waiting).Step.entity in
        match Backend.holder backend e with
        | Some h when h <> inst.txn_index -> acc := h :: !acc
        | _ -> ()
    end
    else
      for s = 0 to Txn.num_steps inst.txn - 1 do
        if (not inst.done_.(s)) && pred_status inst s = `Ready then begin
          let step = Txn.step inst.txn s in
          if step.Step.action = Step.Lock then
            match Backend.holder backend step.Step.entity with
            | Some h when h <> inst.txn_index -> acc := h :: !acc
            | _ -> ()
        end
      done;
    !acc
  in
  let step_attrs inst (step : Step.t) () =
    [
      A.int "tick" (now ());
      A.str "txn" (Txn.name inst.txn);
      A.str "entity" (Database.name db step.Step.entity);
      A.int "site" (Database.site db step.Step.entity);
      A.int "attempt" inst.attempt;
    ]
  in
  (* What a lock request costs to reach the entity's site. The bakery
     model pays two rounds (choosing, then reading the other tickets) of
     contacting every other site; the leased manager one request
     message. Instant never asks. *)
  let request_cost inst dst =
    if zero_latency || not queueing then 0
    else
      match Backend.name backend with
      | "bakery" ->
          let sites = Database.num_sites db in
          let round src =
            let m = ref 0 in
            for s' = 1 to sites do
              if s' <> src then
                m :=
                  max !m
                    (Latency.sample latency lat_rng ~src ~dst:s'
                    + Latency.sample latency lat_rng ~src:s' ~dst:src)
            done;
            !m
          in
          round inst.loc + round inst.loc
      | _ -> Latency.sample latency lat_rng ~src:inst.loc ~dst
  in
  let maybe_crash inst =
    if
      faulty
      && (not inst.committed)
      && Random.State.float fault_rng 1.0 < scenario.Scenario.crash_rate
    then begin
      inst.crashed <- true;
      incr crashes;
      M.incr meters.mm_crashes;
      Backend.crash backend ~now:(now ()) ~owner:inst.txn_index;
      Clock.after clock ~delay:scenario.Scenario.down_time
        (Resume inst.txn_index);
      Obs.event
        ~attrs:(fun () ->
          [
            A.int "tick" (now ());
            A.str "txn" (Txn.name inst.txn);
            A.int "down_time" scenario.Scenario.down_time;
          ])
        "sim.worker.crash"
    end
  in
  (* Mark step [s] executed at the current time: bookkeeping, history,
     trace, arrival times for cross-site successors, commit, and the
     post-step crash draw. *)
  let complete inst s =
    let step = Txn.step inst.txn s in
    let site_s = Database.site db step.Step.entity in
    inst.done_.(s) <- true;
    inst.done_tick.(s) <- now ();
    inst.executed <- inst.executed + 1;
    inst.events <- s :: inst.events;
    inst.loc <- site_s;
    global_log := (inst.txn_index, s) :: !global_log;
    trace :=
      {
        Trace.tick = now ();
        txn = inst.txn_index;
        step = s;
        site = site_s;
        attempt = inst.attempt;
      }
      :: !trace;
    if not zero_latency then
      for q = 0 to Txn.num_steps inst.txn - 1 do
        if Txn.precedes inst.txn s q then begin
          let site_q = Database.site db (Txn.step inst.txn q).Step.entity in
          if site_q <> site_s then begin
            let delay = Latency.sample latency lat_rng ~src:site_s ~dst:site_q in
            M.observe (meters.mm_msg site_q) (float_of_int delay);
            inst.ready_at.(q) <- max inst.ready_at.(q) (now () + delay)
          end
        end
      done;
    if inst.executed = Txn.num_steps inst.txn then begin
      inst.committed <- true;
      Obs.event
        ~attrs:(fun () ->
          [
            A.int "tick" (now ());
            A.str "txn" (Txn.name inst.txn);
            A.int "attempt" inst.attempt;
          ])
        "sim.txn.commit"
    end;
    maybe_crash inst
  in
  let complete_lock inst s =
    let step = Txn.step inst.txn s in
    let site = Database.site db step.Step.entity in
    let wait =
      if inst.waiting_since >= 0 then now () - inst.waiting_since else 0
    in
    inst.waiting_since <- -1;
    M.incr meters.mm_grants;
    M.observe (meters.mm_wait site) (float_of_int wait);
    inst.held_since <- (step.Step.entity, now ()) :: inst.held_since;
    Obs.event ~level:Obs.Debug ~attrs:(step_attrs inst step) "sim.lock.acquire";
    complete inst s
  in
  let execute inst s =
    let step = Txn.step inst.txn s in
    match step.Step.action with
    | Step.Lock -> (
        let dst = Database.site db step.Step.entity in
        let cost = request_cost inst dst in
        if cost > 0 then M.observe (meters.mm_msg dst) (float_of_int cost);
        let ready = now () + cost in
        inst.waiting_since <- now ();
        match
          Backend.acquire backend ~now:(now ()) ~owner:inst.txn_index
            ~ready_at:ready step.Step.entity
        with
        | Backend.Granted -> complete_lock inst s
        | Backend.Queued ->
            inst.waiting <- s;
            M.incr meters.mm_queued;
            Obs.event ~level:Obs.Debug ~attrs:(step_attrs inst step)
              "sim.lock.queue")
    | Step.Unlock ->
        (match List.assoc_opt step.Step.entity inst.held_since with
        | Some granted ->
            inst.held_since <-
              List.remove_assoc step.Step.entity inst.held_since;
            M.observe
              (meters.mm_hold (Database.site db step.Step.entity))
              (float_of_int (now () - granted))
        | None -> ());
        if not (Backend.release backend ~owner:inst.txn_index step.Step.entity)
        then begin
          (* The manager moved on without us: lease expired while we
             were down. The worker doesn't notice and keeps going. *)
          incr stale;
          M.incr meters.mm_stale;
          Obs.event ~attrs:(step_attrs inst step) "sim.lock.stale_release"
        end;
        Obs.event ~level:Obs.Debug ~attrs:(step_attrs inst step)
          "sim.lock.release";
        complete inst s
    | Step.Update -> complete inst s
  in
  let handle_notice = function
    | Backend.Expired { entity; owner } ->
        incr expiries;
        M.incr meters.mm_expiries;
        Obs.event
          ~attrs:(fun () ->
            [
              A.int "tick" (now ());
              A.str "entity" (Database.name db entity);
              A.str "txn" (Txn.name instances.(owner).txn);
            ])
          "sim.lease.expire"
    | Backend.Handed { entity = _; owner } ->
        let inst = instances.(owner) in
        let s = inst.waiting in
        if s >= 0 then begin
          inst.waiting <- -1;
          if inst.crashed then
            (* The grant arrived at a down worker; it acts on it when it
               comes back. *)
            inst.pending_grants <- s :: inst.pending_grants
          else complete_lock inst s
        end
  in
  let abort_victim () =
    (* Legacy victim rule, verbatim: build the wait-for graph, find a
       cycle, abort its youngest member; crashed workers are outside the
       graph (they are paused, not waiting). *)
    let wf = Distlock_graph.Digraph.create n in
    Array.iter
      (fun inst ->
        if (not inst.committed) && not inst.crashed then
          List.iter
            (fun h -> Distlock_graph.Digraph.add_arc wf inst.txn_index h)
            (blocked_on inst))
      instances;
    let victim =
      match Distlock_graph.Topo.find_cycle wf with
      | Some cycle ->
          Obs.event
            ~attrs:(fun () ->
              [
                A.int "tick" (now ());
                A.str "cycle"
                  (String.concat " -> "
                     (List.map (fun i -> Txn.name instances.(i).txn) cycle));
              ])
            "sim.deadlock.detect";
          List.fold_left
            (fun best i ->
              let inst = instances.(i) in
              match best with
              | Some v when v.birth >= inst.birth -> best
              | _ -> Some inst)
            None cycle
      | None ->
          Array.fold_left
            (fun best inst ->
              if
                (not inst.committed)
                && (not inst.crashed)
                && blocked_on inst <> []
              then match best with Some _ -> best | None -> Some inst
              else best)
            None instances
    in
    match victim with
    | None -> failwith "Esim: stuck with no blocked instance"
    | Some inst ->
        incr aborts;
        Obs.event
          ~attrs:(fun () ->
            [
              A.int "tick" (now ());
              A.str "txn" (Txn.name inst.txn);
              A.int "attempt" inst.attempt;
              A.int "wasted_steps" (List.length inst.events);
            ])
          "sim.txn.abort";
        let drop = List.length inst.events in
        global_log :=
          (let remaining = ref drop in
           List.filter
             (fun (i, _) ->
               if i = inst.txn_index && !remaining > 0 then begin
                 decr remaining;
                 false
               end
               else true)
             !global_log);
        Backend.forfeit backend ~owner:inst.txn_index;
        fresh_attempt inst
  in
  (* One scheduling decision — the legacy loop body, with the backend
     drained first and wake-time computation where the legacy loop spun
     on idle ticks. *)
  let decide () =
    if !aborts > scenario.Scenario.max_aborts then
      result := Some (Error "max aborts exceeded")
    else begin
      incr ticks;
      M.set meters.mm_depth (float_of_int (Clock.length clock));
      let notices = Backend.drain backend ~now:(now ()) in
      List.iter handle_notice notices;
      if not (all_committed ()) then begin
        let choices =
          Array.to_list instances
          |> List.concat_map (fun inst ->
                 List.map (fun s -> (inst, s)) (enabled_steps inst))
        in
        if Obs.logs Obs.Debug then
          Array.iter
            (fun inst ->
              if not inst.committed then
                match blocked_on inst with
                | [] -> was_blocked.(inst.txn_index) <- false
                | holders ->
                    if not was_blocked.(inst.txn_index) then begin
                      was_blocked.(inst.txn_index) <- true;
                      Obs.event ~level:Obs.Debug
                        ~attrs:(fun () ->
                          [
                            A.int "tick" (now ());
                            A.str "txn" (Txn.name inst.txn);
                            A.str "waiting_for"
                              (String.concat ", "
                                 (List.sort_uniq compare
                                    (List.map
                                       (fun h -> Txn.name instances.(h).txn)
                                       holders)));
                          ])
                        "sim.lock.block"
                    end)
            instances;
        match choices with
        | [] ->
            if notices <> [] then
              (* drain made progress; look again next tick *)
              ensure_decide (now () + 1)
            else begin
              (* Earliest time anything can change on its own: a message
                 arrival, or the backend expiring/granting. Crashed
                 workers re-book the decision from their Resume event. *)
              let wake = ref max_int in
              Array.iter
                (fun inst ->
                  if awaiting_message inst then
                    for s = 0 to Txn.num_steps inst.txn - 1 do
                      if
                        (not inst.done_.(s))
                        && pred_status inst s = `Awaiting_message
                        && inst.ready_at.(s) < !wake
                      then wake := inst.ready_at.(s)
                    done)
                instances;
              (match Backend.next_wakeup backend with
              | Some t -> if t < !wake then wake := t
              | None -> ());
              if !wake < max_int then begin
                Obs.event ~level:Obs.Debug
                  ~attrs:(fun () -> [ A.int "tick" (now ()) ])
                  "sim.message.wait";
                ensure_decide (max !wake (now () + 1))
              end
              else if Array.exists (fun i -> i.crashed) instances then ()
              else begin
                (* Every live worker waits on a lock: consult the
                   state-graph oracle's deadlock predicate online, then
                   break the cycle as the legacy engine does. *)
                if
                  Stategraph.deadlocked_now sys
                    ~executed:(fun i s -> instances.(i).done_.(s))
                    ~holder:(Backend.holder backend)
                then incr blocks;
                abort_victim ();
                ensure_decide (now () + 1)
              end
            end
        | _ ->
            (match rng with
            | Some rng ->
                let arr = Array.of_list choices in
                let inst, s = arr.(Random.State.int rng (Array.length arr)) in
                execute inst s
            | None ->
                let rec pick k =
                  let idx = (!rr_cursor + k) mod n in
                  let inst = instances.(idx) in
                  match enabled_steps inst with
                  | s :: _ ->
                      rr_cursor := (idx + 1) mod n;
                      execute inst s
                  | [] -> pick (k + 1)
                in
                pick 0);
            if not (all_committed ()) then ensure_decide (now () + 1)
      end
    end
  in
  let resume i =
    let inst = instances.(i) in
    inst.crashed <- false;
    M.incr meters.mm_restarts;
    Backend.resume backend ~owner:inst.txn_index;
    Obs.event
      ~attrs:(fun () ->
        [ A.int "tick" (now ()); A.str "txn" (Txn.name inst.txn) ])
      "sim.worker.resume";
    (* Grants that arrived while down take effect now, oldest first. *)
    let grants = List.rev inst.pending_grants in
    inst.pending_grants <- [];
    List.iter (fun s -> complete_lock inst s) grants;
    if not (all_committed ()) then ensure_decide (now () + 1)
  in
  ensure_decide 1;
  let rec loop () =
    if !result = None && not (all_committed ()) then
      match Clock.pop clock with
      | None -> result := Some (Error "simulation stalled")
      | Some (t, ev) ->
          (match ev with
          | Decide ->
              (* Only the earliest booked Decide is live; superseded
                 ones (booked, then re-booked earlier) are skipped. *)
              if t = !booked then begin
                booked := max_int;
                decide ()
              end
          | Resume i -> resume i);
          loop ()
  in
  loop ();
  let out =
    match !result with
    | Some err -> err
    | None ->
        let history = Schedule.of_events (List.rev !global_log) in
        let serializable, legal =
          if check_serializability then
            ( Conflict.is_serializable sys history,
              Legality.is_legal sys history )
          else (true, true)
        in
        Ok
          {
            history;
            serializable;
            legal;
            trace = List.rev !trace;
            stats =
              {
                ticks = !ticks;
                makespan = now ();
                commits = n;
                aborts = !aborts;
                deadlocks = !blocks;
                crashes = !crashes;
                lease_expiries = !expiries;
                stale_unlocks = !stale;
              };
          }
  in
  M.incr (m_runs ());
  if Obs.enabled () then
    Obs.add_attrs sp
      [
        A.int "ticks" !ticks;
        A.int "makespan" (now ());
        A.int "aborts" !aborts;
        A.int "deadlocks" !blocks;
        A.int "crashes" !crashes;
        A.int "lease_expiries" !expiries;
        A.str "result"
          (match out with
          | Ok o ->
              if o.serializable then "serializable" else "non-serializable"
          | Error e -> "error: " ^ e);
      ];
  Obs.end_span sp;
  out

type summary = {
  runs : int;
  errors : int;
  violations : int;
  illegal : int;
  total_aborts : int;
  total_deadlocks : int;
  total_ticks : int;
  total_crashes : int;
  total_expiries : int;
  total_stale_unlocks : int;
}

let empty_summary =
  {
    runs = 0;
    errors = 0;
    violations = 0;
    illegal = 0;
    total_aborts = 0;
    total_deadlocks = 0;
    total_ticks = 0;
    total_crashes = 0;
    total_expiries = 0;
    total_stale_unlocks = 0;
  }

let measure ?(precheck = true) ?(scenario = Scenario.default)
    ?(seeds = List.init 20 Fun.id) sys =
  (* The static verdict quantifies over *legal* schedules, and only a
     fault-free run is guaranteed to produce one — so the precheck
     shortcut applies only when the scenario cannot lose locks. *)
  let check_serializability =
    not (precheck && Scenario.fault_free scenario && Workload.proven_safe sys)
  in
  List.fold_left
    (fun acc seed ->
      match
        run ~policy:(Engine.Random seed) ~scenario ~check_serializability sys
      with
      | Error _ -> { acc with errors = acc.errors + 1 }
      | Ok o ->
          {
            runs = acc.runs + 1;
            errors = acc.errors;
            violations = (acc.violations + if o.serializable then 0 else 1);
            illegal = (acc.illegal + if o.legal then 0 else 1);
            total_aborts = acc.total_aborts + o.stats.aborts;
            total_deadlocks = acc.total_deadlocks + o.stats.deadlocks;
            total_ticks = acc.total_ticks + o.stats.ticks;
            total_crashes = acc.total_crashes + o.stats.crashes;
            total_expiries = acc.total_expiries + o.stats.lease_expiries;
            total_stale_unlocks =
              acc.total_stale_unlocks + o.stats.stale_unlocks;
          })
    empty_summary seeds

let violation_fraction s =
  if s.runs = 0 then 0. else float_of_int s.violations /. float_of_int s.runs

let pp_summary ppf s =
  (* The first line is byte-compatible with [Workload.pp_summary];
     fault-era fields appear only when something actually happened. *)
  Format.fprintf ppf "%d runs: %d violations, %d aborts, %d deadlocks, %d ticks"
    s.runs s.violations s.total_aborts s.total_deadlocks s.total_ticks;
  if s.total_crashes > 0 then
    Format.fprintf ppf ", %d crashes" s.total_crashes;
  if s.total_expiries > 0 then
    Format.fprintf ppf ", %d lease expiries" s.total_expiries;
  if s.total_stale_unlocks > 0 then
    Format.fprintf ppf ", %d stale unlocks" s.total_stale_unlocks;
  if s.illegal > 0 then Format.fprintf ppf ", %d illegal histories" s.illegal;
  if s.errors > 0 then Format.fprintf ppf ", %d errors" s.errors
