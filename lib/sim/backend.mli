(** Pluggable lock backends for the event-driven simulator.

    A backend is the lock *manager's* view of the world; workers keep
    their own beliefs about what they hold. The two views diverge under
    faults — a leased backend expires a crashed holder's locks and hands
    them to waiters, while the crashed worker later resumes still
    believing it holds them — and that divergence is exactly the
    static-safe/dynamically-unsafe gap bench E19 measures. *)

open Distlock_txn

type grant = Granted | Queued

type notice =
  | Expired of { entity : Database.entity; owner : int }
      (** A crashed holder's lease ran out; the entity is free (or about
          to be handed to a waiter in the same drain). *)
  | Handed of { entity : Database.entity; owner : int }
      (** A queued request was granted; [owner] now holds the lock. *)

module type S = sig
  type t

  val name : t -> string

  val queues : bool
  (** Whether [acquire] can return [Queued]. When [false] (instant
      backend) a denied lock is simply not an enabled choice, exactly as
      in the legacy engine. *)

  val acquire :
    t -> now:int -> owner:int -> ready_at:int -> Database.entity -> grant
  (** Request a lock. [ready_at] is when the request message reaches the
      entity's site ([now] under zero latency); a queued request cannot
      be granted before it has arrived. Re-acquiring an entity already
      held by [owner] is [Granted]. *)

  val release : t -> owner:int -> Database.entity -> bool
  (** [false] means [owner] was not the holder — a stale unlock from a
      worker whose lease expired while it was down. No state changes in
      that case. *)

  val holder : t -> Database.entity -> int option

  val crash : t -> now:int -> owner:int -> unit
  (** The worker stopped responding; a leasing backend starts the TTL
      countdown on each lock it holds. *)

  val resume : t -> owner:int -> unit
  (** The worker is back; surviving leases stop expiring. *)

  val forfeit : t -> owner:int -> unit
  (** Abort path: drop everything [owner] holds or has queued. *)

  val drain : t -> now:int -> notice list
  (** Apply everything due by [now]: expire overdue leases, then grant
      arrived queue-heads on free entities. Notices arrive in ascending
      entity order, so processing them is deterministic. *)

  val next_wakeup : t -> int option
  (** Earliest future time at which {!drain} would act: a pending lease
      deadline, or the arrival of a queue-head request on a free
      entity. *)
end

type t = B : (module S with type t = 's) * 's -> t
(** A backend instance packaged with its implementation. *)

(** Dispatch wrappers over the packed module. *)

val name : t -> string
val queues : t -> bool
val acquire : t -> now:int -> owner:int -> ready_at:int -> Database.entity -> grant
val release : t -> owner:int -> Database.entity -> bool
val holder : t -> Database.entity -> int option
val crash : t -> now:int -> owner:int -> unit
val resume : t -> owner:int -> unit
val forfeit : t -> owner:int -> unit
val drain : t -> now:int -> notice list
val next_wakeup : t -> int option

val instant : Database.t -> t
(** The legacy manager: grants iff the entity is free or re-entrant,
    never queues, ignores crashes, locks never expire. *)

val leased : Database.t -> ttl:int -> t
(** FIFO queue per entity; locks held by a crashed worker expire [ttl]
    ticks after the crash and pass to the next arrived waiter. The
    CassandraLock-style TTL mutex. *)

val bakery : Database.t -> t
(** Bakery-algorithm model: strict FIFO arrival-order tickets, no
    expiry — a crashed holder's locks survive any outage, trading
    liveness for the safety leases give up. *)
