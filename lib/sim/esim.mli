open Distlock_txn
open Distlock_sched

(** The layered event-driven simulator.

    Where {!Engine} advances in lockstep ticks with instant, infallible
    locks, this engine pops timestamped events off a {!Clock}, routes
    lock traffic through a pluggable {!Backend}, charges message costs
    from a {!Latency} model, and injects worker crashes from a
    {!Scenario}. Configured with the instant backend, zero latency, and
    no faults it reproduces {!Engine.run} exactly — same histories, same
    stats, same traces, seed for seed (the qcheck equivalence property
    in [test/test_esim.ml] holds it to that) — so the legacy engine's
    behaviour is one point in this engine's configuration space.

    With the leased backend and crashes enabled, committed histories can
    be {e illegal} (two holders of one entity at once, after a lease is
    lost) and therefore non-serializable even for systems the static
    checker proves safe: the static verdict quantifies over legal
    schedules only. Bench E19 measures that gap. *)

type stats = {
  ticks : int;  (** Scheduling decisions taken (= legacy ticks when
                    fault-free at zero latency). *)
  makespan : int;  (** Simulated time at completion; exceeds [ticks]
                       when latency or downtime left the clock idle. *)
  commits : int;
  aborts : int;
  deadlocks : int;
  crashes : int;  (** Worker crash events injected. *)
  lease_expiries : int;  (** Leases the backend expired. *)
  stale_unlocks : int;  (** Unlocks by a worker that had lost the lock. *)
}

type outcome = {
  history : Schedule.t;
  serializable : bool;
  legal : bool;
      (** Whether the committed history is even a legal schedule; lost
          leases typically make it illegal (overlapping locked
          sections), which is how non-serializability sneaks past the
          static verdict. *)
  stats : stats;
  trace : Trace.event list;
}

val run :
  ?policy:Engine.policy ->
  ?scenario:Scenario.t ->
  ?check_serializability:bool ->
  System.t ->
  (outcome, string) result
(** One seeded run to completion. Deterministic: the same policy and
    scenario produce bit-identical outcomes. Three independent RNG
    streams (policy — seeded exactly as {!Engine.run}'s —, faults,
    latency) keep each knob from perturbing the others. [Error] carries
    ["max aborts exceeded"] past [scenario.max_aborts] restarts. *)

type summary = {
  runs : int;  (** Runs that completed (errors excluded). *)
  errors : int;  (** Runs that exceeded the abort budget. *)
  violations : int;  (** Non-serializable committed histories. *)
  illegal : int;  (** Committed histories that are not legal schedules. *)
  total_aborts : int;
  total_deadlocks : int;
  total_ticks : int;
  total_crashes : int;
  total_expiries : int;
  total_stale_unlocks : int;
}

val measure :
  ?precheck:bool -> ?scenario:Scenario.t -> ?seeds:int list -> System.t ->
  summary
(** {!run} once per seed and aggregate. The {!Workload.proven_safe}
    precheck shortcut (skipping per-history serializability checks) is
    taken only when the scenario is fault-free: static verdicts cover
    legal schedules only, and a faulty scenario can commit illegal
    ones. *)

val violation_fraction : summary -> float
(** [violations / runs]; [0.] when no run completed. *)

val pp_summary : Format.formatter -> summary -> unit
(** First line byte-compatible with {!Workload.pp_summary}; crash,
    expiry, stale-unlock, illegal-history, and error counts appear only
    when non-zero. *)
