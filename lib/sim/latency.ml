(* Per-site message-latency distributions. A sample is the one-way cost
   of a message between two sites; same-site traffic uses the (usually
   cheaper) local distribution. Draws come from a caller-supplied RNG so
   the simulator can keep latency noise on its own stream, independent
   of scheduling-policy randomness. *)

type dist = Zero | Constant of int | Uniform of int * int

type t = { local_ : dist; remote : dist }

let none = { local_ = Zero; remote = Zero }

let make ?(local = Zero) remote = { local_ = local; remote }

let dist_is_zero = function
  | Zero -> true
  | Constant n -> n <= 0
  | Uniform (lo, hi) -> hi <= 0 && lo <= 0

let is_zero t = dist_is_zero t.local_ && dist_is_zero t.remote

let sample_dist d rng =
  match d with
  | Zero -> 0
  | Constant n -> max 0 n
  | Uniform (lo, hi) ->
      let lo = max 0 lo in
      let hi = max lo hi in
      lo + Random.State.int rng (hi - lo + 1)

let sample t rng ~src ~dst =
  sample_dist (if src = dst then t.local_ else t.remote) rng

let dist_of_string s =
  match String.index_opt s '-' with
  | Some i ->
      let lo = int_of_string (String.sub s 0 i) in
      let hi = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      if lo < 0 || hi < lo then invalid_arg "Latency.of_string";
      Uniform (lo, hi)
  | None -> (
      match int_of_string s with
      | 0 -> Zero
      | n when n > 0 -> Constant n
      | _ -> invalid_arg "Latency.of_string")

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "none" | "zero" | "0" -> none
  | s -> { local_ = Zero; remote = dist_of_string s }

let dist_to_string = function
  | Zero -> "0"
  | Constant n -> string_of_int n
  | Uniform (lo, hi) -> Printf.sprintf "%d-%d" lo hi

let to_string t =
  if is_zero t then "none" else dist_to_string t.remote

let pp ppf t = Format.pp_print_string ppf (to_string t)
