(* The fault-configuration layer: everything that distinguishes one
   simulated deployment from another, bundled so the engine, CLI, and
   bench describe runs with the same value. *)

open Distlock_txn

type backend_kind = Instant | Leased | Bakery

type t = {
  backend : backend_kind;
  latency : Latency.t;
  lease_ttl : int option;  (** leased backend only; [None] = default *)
  crash_rate : float;  (** per-step crash probability, [0., 1.] *)
  down_time : int;  (** ticks a crashed worker stays unresponsive *)
  max_aborts : int;
}

let default_ttl = 16

let default =
  {
    backend = Instant;
    latency = Latency.none;
    lease_ttl = None;
    crash_rate = 0.;
    down_time = 16;
    max_aborts = 1000;
  }

let fault_free t = t.crash_rate <= 0.

let make_backend t db =
  match t.backend with
  | Instant -> Backend.instant db
  | Leased ->
      Backend.leased db ~ttl:(Option.value t.lease_ttl ~default:default_ttl)
  | Bakery -> Backend.bakery db

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "instant" | "legacy" -> Ok Instant
  | "leased" | "lease" -> Ok Leased
  | "bakery" -> Ok Bakery
  | s -> Error (Printf.sprintf "unknown backend %S" s)

let backend_to_string = function
  | Instant -> "instant"
  | Leased -> "leased"
  | Bakery -> "bakery"

let to_attrs t =
  let open Distlock_obs in
  [
    Attr.str "backend" (backend_to_string t.backend);
    Attr.str "latency" (Latency.to_string t.latency);
    Attr.int "lease_ttl"
      (match t.lease_ttl with Some n -> n | None -> default_ttl);
    Attr.float "crash_rate" t.crash_rate;
    Attr.int "down_time" t.down_time;
  ]

(* Rebuild the system's database so its entities spread over [sites]
   sites round-robin by id, keeping names and transaction structure.
   Lets a single-site fixture exercise cross-site latency without
   editing the input file. *)
let spread_sites sys ~sites =
  if sites < 1 then invalid_arg "Scenario.spread_sites";
  let db = System.db sys in
  let db' = Database.create () in
  List.iter
    (fun e ->
      ignore
        (Database.add db' ~name:(Database.name db e) ~site:(1 + (e mod sites))))
    (Database.entities db);
  System.make db' (Array.to_list (System.txns sys))
