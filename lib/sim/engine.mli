open Distlock_txn
open Distlock_sched

(** A distributed lock-manager runtime: the system the paper's theory is
    about, made executable.

    The engine runs one instance per transaction of a {!System.t} under a
    scheduling policy, with per-entity exclusive locks held in per-site
    lock tables. A lock request against a held entity blocks the
    requester and records a wait-for edge; when every live instance is
    blocked the engine finds the wait-for cycle and aborts its youngest
    member (releasing its locks, undoing its progress, and restarting it
    from scratch). The run ends when every instance has committed.

    The committed history — each instance's final, completed attempt,
    interleaved as executed — is by construction a legal schedule of the
    system, so running an *unsafe* system under an adversarial-enough
    policy eventually exhibits a non-serializable committed history,
    while a safe system never does (experiment E8). *)

type policy =
  | Round_robin  (** Cycle over instances, running each enabled step. *)
  | Random of int  (** Uniform choice among enabled steps, seeded. *)

type stats = {
  ticks : int;  (** Scheduling decisions taken. *)
  commits : int;
  aborts : int;  (** Deadlock-victim restarts. *)
  deadlocks : int;  (** Wait-for cycles detected (each aborts a victim). *)
}

type outcome = {
  history : Schedule.t;
      (** Interleaving of the committed attempts' steps, in execution
          order; a legal schedule of the system. *)
  serializable : bool;
  stats : stats;
  trace : Trace.event list;
      (** Every executed step, including those of aborted attempts, with
          tick, site, and attempt number; feed to {!Trace.analyze}. *)
}

val run :
  ?policy:policy ->
  ?max_aborts:int ->
  ?cross_site_delay:int ->
  ?check_serializability:bool ->
  System.t ->
  (outcome, string) result
(** [Error] if the run exceeds [max_aborts] (default [1000]) restarts — a
    livelock guard. [cross_site_delay] (default [0]) models message
    latency: a step whose intra-transaction predecessor ran at a
    *different site* only becomes eligible that many ticks after the
    predecessor finished (the completion notification has to travel);
    while any such message is in flight the engine lets ticks pass
    instead of declaring deadlock. [check_serializability] (default
    [true]) controls the per-history conflict check; pass [false] when
    the system is already *proven* safe by the decision engine — every
    legal schedule is then serializable by definition, so [serializable]
    is reported [true] without the O(n²) conflict-graph pass. *)

val violation_runs :
  ?policy_seeds:int list -> ?max_aborts:int -> System.t -> int * int * int
(** [(violations, completed, errored)] over the seeded runs (default
    seeds [0..99]): non-serializable committed histories, runs that
    committed at all, and runs that died on the abort budget
    ([max_aborts], default [1000] as in {!run}). *)

val violation_rate :
  ?policy_seeds:int list -> ?max_aborts:int -> System.t -> float
(** Fraction of *completed* seeded random runs whose committed history
    is not serializable (default seeds [0..99]). Runs that return
    [Error] commit no history and witness nothing, so they are excluded
    from the denominator (they used to be silently counted as
    non-violating); [0.] when no run completes. Use {!violation_runs}
    to see the error count. [0.] is expected for safe systems; unsafe
    systems typically show a positive rate. *)
