open Distlock_txn

(** Execution traces and per-transaction metrics for simulator runs.

    The engine optionally records every scheduling decision with its tick;
    this module turns such logs into per-transaction latency/wait metrics
    and per-site utilization summaries — the quantities a practitioner
    would tune a distributed lock manager by. *)

type event = {
  tick : int;
  txn : int;
  step : int;
  site : int;
  attempt : int;  (** 1 = first attempt; > 1 after deadlock restarts. *)
}

type txn_metrics = {
  txn : int;
  attempts : int;  (** [0] when the transaction never started. *)
  first_start : int option;
      (** Tick of the first step of the first attempt; [None] when the
          transaction executed no step at all. *)
  commit : int option;
      (** Tick of the last step of the committed attempt; [None] when
          the transaction never started. *)
  steps_executed : int;  (** including aborted attempts' steps *)
  wasted_steps : int;  (** steps of attempts that were aborted *)
  wait_ticks : int;
      (** Idle ticks between first start and commit — the span minus the
          ticks the transaction actually executed a step on. *)
}

type site_metrics = {
  site : int;
  events : int;
  busy_span : int;  (** last tick minus first tick seen at the site *)
  utilization : float;
      (** Fraction of the makespan with a step executing at this site —
          [busy_span] only brackets activity, this measures it. *)
}

type report = {
  events : event list;
  txns : txn_metrics list;
  sites : site_metrics list;
  makespan : int;
  wait_p50 : float;
      (** Bucket-interpolated percentiles of per-step waits (idle ticks
          between a transaction's consecutive steps); [nan] when no
          transaction executed two steps. *)
  wait_p90 : float;
  wait_p99 : float;
}

val analyze : System.t -> event list -> report

val event_to_json : ?seed:int -> System.t -> event -> Distlock_obs.Json.t
(** Structured record: tick, transaction name, step label, action,
    entity name, site, attempt — plus the run [seed] when given. *)

val write_jsonl : ?seed:int -> System.t -> out_channel -> event list -> unit
(** One {!event_to_json} object per line. The channel is left open. *)

val pp_report : System.t -> Format.formatter -> report -> unit

val pp_event : System.t -> Format.formatter -> event -> unit
