open Distlock_txn

type style = Two_phase | Sequential | Random_locked of float

let make rng ~db ~style ~num_txns ~entities_per_txn =
  let all = Array.of_list (Database.entities db) in
  if entities_per_txn > Array.length all then
    invalid_arg "Workload.make: not enough entities";
  let pick () =
    for i = Array.length all - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = all.(i) in
      all.(i) <- all.(j);
      all.(j) <- t
    done;
    Array.to_list (Array.sub all 0 entities_per_txn)
  in
  let txns =
    List.init num_txns (fun k ->
        let name = Printf.sprintf "T%d" (k + 1) in
        let entities = pick () in
        match style with
        | Two_phase ->
            Builder.two_phase_sequence db ~name
              (List.map (Database.name db) entities)
        | Sequential ->
            Builder.locked_sequence db ~name
              (List.map (Database.name db) entities)
        | Random_locked cross_prob ->
            Txn_gen.random_txn rng db ~name ~entities ~with_updates:true
              ~cross_prob ())
  in
  System.make db txns

type summary = {
  runs : int;
  violations : int;
  total_aborts : int;
  total_deadlocks : int;
  total_ticks : int;
}

(* Shared safety-decision engine for the precheck below: a small cache
   pays off because closed-loop experiments re-measure structurally
   identical systems (same fingerprint) across rounds. *)
let precheck_engine =
  lazy
    (Distlock_core.Decision.create ~cache_capacity:64
       ~budget:(Distlock_engine.Budget.make ~max_steps:200_000 ()) ())

let proven_safe sys =
  let o = Distlock_core.Decision.decide (Lazy.force precheck_engine) sys in
  match o.Distlock_engine.Outcome.verdict with
  | Distlock_engine.Outcome.Safe -> true
  | Distlock_engine.Outcome.Unsafe _ | Distlock_engine.Outcome.Unknown _ ->
      false

let measure ?(precheck = true) ?(seeds = List.init 20 Fun.id) sys =
  (* A system the decision engine proves safe cannot produce a
     non-serializable committed history, so the per-run conflict check
     is skipped; unsafe or undecided systems keep the full check. *)
  let check_serializability = not (precheck && proven_safe sys) in
  List.fold_left
    (fun acc seed ->
      match
        Engine.run ~policy:(Engine.Random seed) ~check_serializability sys
      with
      | Error _ -> acc
      | Ok o ->
          {
            runs = acc.runs + 1;
            violations = (acc.violations + if o.Engine.serializable then 0 else 1);
            total_aborts = acc.total_aborts + o.Engine.stats.Engine.aborts;
            total_deadlocks =
              acc.total_deadlocks + o.Engine.stats.Engine.deadlocks;
            total_ticks = acc.total_ticks + o.Engine.stats.Engine.ticks;
          })
    { runs = 0; violations = 0; total_aborts = 0; total_deadlocks = 0; total_ticks = 0 }
    seeds

type throughput = {
  rounds : int;
  committed : int;
  total_ticks : int;
  commits_per_kilotick : float;
  violation_rounds : int;
}

let closed_loop rng ~db ~style ~num_txns ~entities_per_txn ~rounds
    ?(cross_site_delay = 0) () =
  let committed = ref 0 and ticks = ref 0 and violations = ref 0 in
  let done_rounds = ref 0 in
  for round = 1 to rounds do
    let sys = make rng ~db ~style ~num_txns ~entities_per_txn in
    match
      Engine.run ~policy:(Engine.Random round) ~cross_site_delay sys
    with
    | Error _ -> ()
    | Ok o ->
        incr done_rounds;
        committed := !committed + o.Engine.stats.Engine.commits;
        ticks := !ticks + o.Engine.stats.Engine.ticks;
        if not o.Engine.serializable then incr violations
  done;
  {
    rounds = !done_rounds;
    committed = !committed;
    total_ticks = !ticks;
    commits_per_kilotick =
      (if !ticks = 0 then 0.
       else 1000. *. float_of_int !committed /. float_of_int !ticks);
    violation_rounds = !violations;
  }

let pp_throughput ppf t =
  Format.fprintf ppf
    "%d rounds: %d commits in %d ticks (%.1f commits/kilotick), %d rounds \
     with violations"
    t.rounds t.committed t.total_ticks t.commits_per_kilotick
    t.violation_rounds

let pp_summary ppf s =
  Format.fprintf ppf
    "%d runs: %d violations, %d aborts, %d deadlocks, %d ticks" s.runs
    s.violations s.total_aborts s.total_deadlocks s.total_ticks
