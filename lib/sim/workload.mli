open Distlock_txn

(** Workload construction for the simulator: many concurrent transaction
    instances over a shared database, in the locking styles the paper
    contrasts (Section 6). *)

type style =
  | Two_phase  (** All locks, then updates, then all unlocks. *)
  | Sequential  (** Lock-update-unlock one entity at a time (unsafe-prone). *)
  | Random_locked of float
      (** Random well-formed partial-order transactions
          ({!Txn_gen.random_txn}) with the given cross-site arc
          probability. *)

val make :
  Random.State.t ->
  db:Database.t ->
  style:style ->
  num_txns:int ->
  entities_per_txn:int ->
  System.t
(** Each transaction locks a random subset of the database's entities in
    the given style. *)

type summary = {
  runs : int;
  violations : int;  (** Non-serializable committed histories. *)
  total_aborts : int;
  total_deadlocks : int;
  total_ticks : int;
}

val proven_safe : System.t -> bool
(** Whether the shared safety-decision engine (cached, 200k-step budget)
    proves the system safe — [false] for unsafe {e and} undecided.
    {!measure} and {!Esim.measure} use it to skip per-history
    serializability checks on fault-free runs. *)

val measure : ?precheck:bool -> ?seeds:int list -> System.t -> summary
(** Run the engine once per seed and aggregate. With [precheck] (the
    default) the system is first decided by the safety engine
    ({!Distlock_core.Decision}, shared cached instance, 200k-step
    budget); when it is proven safe the per-history serializability
    check is skipped, since every legal schedule of a safe system is
    serializable. Unsafe or undecided systems are unaffected. *)

val pp_summary : Format.formatter -> summary -> unit

type throughput = {
  rounds : int;
  committed : int;
  total_ticks : int;
  commits_per_kilotick : float;
  violation_rounds : int;
}

val closed_loop :
  Random.State.t ->
  db:Database.t ->
  style:style ->
  num_txns:int ->
  entities_per_txn:int ->
  rounds:int ->
  ?cross_site_delay:int ->
  unit ->
  throughput
(** A closed-loop benchmark: [rounds] batches of [num_txns] fresh
    transactions in the given style are run to completion one after
    another; throughput is committed transactions per 1000 scheduling
    ticks. *)

val pp_throughput : Format.formatter -> throughput -> unit
