(** The scenario/fault-configuration layer: which lock backend a run
    uses, message latency between sites, lease TTL, and crash
    injection. One value of {!t} fully describes a simulated deployment
    (beyond the transaction system itself), so the engine, CLI, and
    bench all speak the same language. *)

open Distlock_txn

type backend_kind = Instant | Leased | Bakery

type t = {
  backend : backend_kind;
  latency : Latency.t;
  lease_ttl : int option;
      (** TTL for the leased backend; [None] uses {!default_ttl}.
          Ignored by instant and bakery. *)
  crash_rate : float;
      (** Probability a worker crashes after completing a step. [0.]
          disables fault injection entirely. *)
  down_time : int;
      (** Ticks a crashed worker stays unresponsive before resuming —
          still believing it holds its locks. *)
  max_aborts : int;
}

val default_ttl : int

val default : t
(** Instant backend, zero latency, no faults — the legacy engine's
    world. *)

val fault_free : t -> bool
(** [crash_rate <= 0.]: no fault events can occur, so static safety
    verdicts apply to the runs. *)

val make_backend : t -> Database.t -> Backend.t

val backend_of_string : string -> (backend_kind, string) result
val backend_to_string : backend_kind -> string

val to_attrs : t -> Distlock_obs.Attr.t
(** Scenario as span/event attributes for the obs layer. *)

val spread_sites : System.t -> sites:int -> System.t
(** Rebuild the system with its entities spread round-robin (by id)
    over [sites] sites, preserving entity names and transactions. Lets
    one fixture exercise cross-site latency. Raises [Invalid_argument]
    if [sites < 1]. *)
