(* A deterministic discrete-event clock: a binary min-heap of
   (time, sequence) keyed events. The sequence stamp breaks time ties in
   scheduling order, so two runs that schedule the same events in the
   same order pop them in the same order — the property every seeded
   simulation above this layer leans on. *)

type 'a entry = { time : int; seq : int; v : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable stamp : int;
  mutable now : int;
}

let create () = { heap = [||]; size = 0; stamp = 0; now = 0 }

let now t = t.now

let length t = t.size

let is_empty t = t.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let ensure t filler =
  if t.size = Array.length t.heap then begin
    let cap = max 8 (2 * Array.length t.heap) in
    let h = Array.make cap filler in
    Array.blit t.heap 0 h 0 t.size;
    t.heap <- h
  end

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(p) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(p);
      t.heap.(p) <- tmp;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!m) then m := l;
  if r < t.size && before t.heap.(r) t.heap.(!m) then m := r;
  if !m <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!m);
    t.heap.(!m) <- tmp;
    sift_down t !m
  end

let at t ~time v =
  let e = { time = max time t.now; seq = t.stamp; v } in
  t.stamp <- t.stamp + 1;
  ensure t e;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let after t ~delay v = at t ~time:(t.now + max 0 delay) v

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    t.now <- top.time;
    Some (top.time, top.v)
  end
