(** The simulator's clock/event-queue layer.

    A priority queue of timestamped events replacing the legacy engine's
    lockstep tick: time advances by popping the earliest pending event,
    so idle stretches cost nothing. Events at equal times pop in the
    order they were scheduled (an internal sequence stamp breaks ties),
    which makes every simulation built on this layer deterministic given
    its seed — no iteration-order or wall-clock dependence. *)

type 'a t

val create : unit -> 'a t
(** An empty queue at time [0]. *)

val now : 'a t -> int
(** The time of the most recently popped event ([0] initially). *)

val at : 'a t -> time:int -> 'a -> unit
(** Schedule an event at an absolute time (clamped to [now]: the past is
    not addressable). *)

val after : 'a t -> delay:int -> 'a -> unit
(** Schedule an event [delay] ticks from [now] (negative clamps to 0). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event, advancing {!now} to its time;
    [None] when the queue is empty. *)

val peek_time : 'a t -> int option
(** Time of the earliest pending event without popping it. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
