open Distlock_txn
open Distlock_sched
module Obs = Distlock_obs.Obs
module A = Distlock_obs.Attr
module M = Distlock_obs.Metric

(* Whole-process simulator counters in the global registry, exported by
   the CLI's [--metrics]. Bumped once per run, not per tick. *)
let m_runs =
  lazy
    (Distlock_obs.Registry.counter Obs.global
       ~help:"Simulator runs completed" "distlock_sim_runs_total")

let m_ticks =
  lazy
    (Distlock_obs.Registry.counter Obs.global
       ~help:"Simulator scheduling ticks taken" "distlock_sim_ticks_total")

let m_commits =
  lazy
    (Distlock_obs.Registry.counter Obs.global
       ~help:"Transaction instances committed" "distlock_sim_commits_total")

let m_aborts =
  lazy
    (Distlock_obs.Registry.counter Obs.global
       ~help:"Deadlock-victim aborts" "distlock_sim_aborts_total")

let m_deadlocks =
  lazy
    (Distlock_obs.Registry.counter Obs.global
       ~help:"Wait-for cycles detected" "distlock_sim_deadlocks_total")

type policy = Round_robin | Random of int

type stats = {
  ticks : int;
  commits : int;
  aborts : int;
  deadlocks : int;
}

type outcome = {
  history : Schedule.t;
  serializable : bool;
  stats : stats;
  trace : Trace.event list;
}

type instance = {
  txn_index : int;
  txn : Txn.t;
  mutable done_ : bool array;
  mutable done_tick : int array;
  mutable executed : int;
  mutable events : int list; (* step indices of the current attempt, reversed *)
  mutable committed : bool;
  mutable birth : int; (* tick of the current attempt's start *)
  mutable attempt : int;
}

let fresh_attempt inst tick =
  inst.done_ <- Array.make (Txn.num_steps inst.txn) false;
  inst.done_tick <- Array.make (Txn.num_steps inst.txn) 0;
  inst.executed <- 0;
  inst.events <- [];
  inst.birth <- tick;
  inst.attempt <- inst.attempt + 1

(* `Ready: all predecessors executed and any cross-site results have had
   time to arrive; `Awaiting_message: executed but a cross-site
   predecessor's notification is still in flight; `Blocked_order:
   some predecessor has not run. *)
let pred_status db ~delay ~now inst s =
  let site_of q = Database.site db (Txn.step inst.txn q).Step.entity in
  let status = ref `Ready in
  for p = 0 to Txn.num_steps inst.txn - 1 do
    if Txn.precedes inst.txn p s then
      if not inst.done_.(p) then status := `Blocked_order
      else if
        delay > 0
        && site_of p <> site_of s
        && inst.done_tick.(p) + delay > now
        && !status = `Ready
      then status := `Awaiting_message
  done;
  !status

(* The lock table: entity -> holding instance index. One logical table
   suffices for simulation — partitioning it per site changes nothing
   observable in this model, since each entity lives at exactly one
   site. *)
let run ?(policy = Round_robin) ?(max_aborts = 1000) ?(cross_site_delay = 0)
    ?(check_serializability = true) sys =
  let sp =
    Obs.start_span "sim.run"
      ~attrs:(fun () ->
        [
          A.str "policy"
            (match policy with
            | Round_robin -> "round-robin"
            | Random seed -> Printf.sprintf "random(%d)" seed);
          A.int "txns" (System.num_txns sys);
          A.int "cross_site_delay" cross_site_delay;
        ])
  in
  let n = System.num_txns sys in
  let instances =
    Array.init n (fun i ->
        let txn = System.txn sys i in
        {
          txn_index = i;
          txn;
          done_ = Array.make (Txn.num_steps txn) false;
          done_tick = Array.make (Txn.num_steps txn) 0;
          executed = 0;
          events = [];
          committed = false;
          birth = 0;
          attempt = 1;
        })
  in
  let holder : (Database.entity, int) Hashtbl.t = Hashtbl.create 16 in
  let rng =
    match policy with
    | Random seed -> Some (Random.State.make [| seed |])
    | Round_robin -> None
  in
  let ticks = ref 0 and aborts = ref 0 and blocks = ref 0 in
  let global_log = ref [] in
  let trace = ref [] in
  let rr_cursor = ref 0 in
  let was_blocked = Array.make n false in
  (* A step is enabled if its predecessors ran and, for a lock, the entity
     is free or already ours (the latter cannot happen on well-formed
     transactions). Blocked = the instance's only frontier steps are locks
     on entities held by others. *)
  let db = System.db sys in
  let enabled_steps inst =
    if inst.committed then []
    else begin
      let acc = ref [] in
      for s = 0 to Txn.num_steps inst.txn - 1 do
        if
          (not inst.done_.(s))
          && pred_status db ~delay:cross_site_delay ~now:!ticks inst s = `Ready
        then begin
          let step = Txn.step inst.txn s in
          match step.Step.action with
          | Step.Lock -> (
              match Hashtbl.find_opt holder step.Step.entity with
              | Some h when h <> inst.txn_index -> () (* blocked on this one *)
              | _ -> acc := s :: !acc)
          | Step.Unlock | Step.Update -> acc := s :: !acc
        end
      done;
      List.rev !acc
    end
  in
  let awaiting_message inst =
    (not inst.committed)
    && begin
         let found = ref false in
         for s = 0 to Txn.num_steps inst.txn - 1 do
           if
             (not inst.done_.(s))
             && pred_status db ~delay:cross_site_delay ~now:!ticks inst s
                = `Awaiting_message
           then found := true
         done;
         !found
       end
  in
  let blocked_on inst =
    (* entities whose holders this instance is waiting for *)
    let acc = ref [] in
    for s = 0 to Txn.num_steps inst.txn - 1 do
      if
        (not inst.done_.(s))
        && pred_status db ~delay:cross_site_delay ~now:!ticks inst s = `Ready
      then begin
        let step = Txn.step inst.txn s in
        if step.Step.action = Step.Lock then
          match Hashtbl.find_opt holder step.Step.entity with
          | Some h when h <> inst.txn_index -> acc := h :: !acc
          | _ -> ()
      end
    done;
    !acc
  in
  let release_all inst =
    Hashtbl.iter
      (fun e h -> if h = inst.txn_index then Hashtbl.remove holder e)
      (Hashtbl.copy holder)
  in
  let step_attrs inst (step : Step.t) () =
    [
      A.int "tick" !ticks;
      A.str "txn" (Txn.name inst.txn);
      A.str "entity" (Database.name db step.Step.entity);
      A.int "site" (Database.site db step.Step.entity);
      A.int "attempt" inst.attempt;
    ]
  in
  let execute inst s =
    let step = Txn.step inst.txn s in
    (match step.Step.action with
    | Step.Lock ->
        Hashtbl.replace holder step.Step.entity inst.txn_index;
        Obs.event ~level:Obs.Debug ~attrs:(step_attrs inst step)
          "sim.lock.acquire"
    | Step.Unlock ->
        Hashtbl.remove holder step.Step.entity;
        Obs.event ~level:Obs.Debug ~attrs:(step_attrs inst step)
          "sim.lock.release"
    | Step.Update -> ());
    inst.done_.(s) <- true;
    inst.done_tick.(s) <- !ticks;
    inst.executed <- inst.executed + 1;
    inst.events <- s :: inst.events;
    global_log := (inst.txn_index, s) :: !global_log;
    trace :=
      {
        Trace.tick = !ticks;
        txn = inst.txn_index;
        step = s;
        site = Database.site (System.db sys) step.Step.entity;
        attempt = inst.attempt;
      }
      :: !trace;
    if inst.executed = Txn.num_steps inst.txn then begin
      inst.committed <- true;
      Obs.event
        ~attrs:(fun () ->
          [
            A.int "tick" !ticks;
            A.str "txn" (Txn.name inst.txn);
            A.int "attempt" inst.attempt;
          ])
        "sim.txn.commit"
    end
  in
  let abort_victim () =
    (* Build the wait-for graph, find a cycle, abort the youngest member
       of that cycle: a victim outside the cycle (e.g. a just-restarted
       instance re-blocking on a cycle member) would not break the
       deadlock. *)
    let wf = Distlock_graph.Digraph.create n in
    Array.iter
      (fun inst ->
        if not inst.committed then
          List.iter
            (fun h -> Distlock_graph.Digraph.add_arc wf inst.txn_index h)
            (blocked_on inst))
      instances;
    let victim =
      match Distlock_graph.Topo.find_cycle wf with
      | Some cycle ->
          Obs.event
            ~attrs:(fun () ->
              [
                A.int "tick" !ticks;
                A.str "cycle"
                  (String.concat " -> "
                     (List.map
                        (fun i -> Txn.name instances.(i).txn)
                        cycle));
              ])
            "sim.deadlock.detect";
          List.fold_left
            (fun best i ->
              let inst = instances.(i) in
              match best with
              | Some v when v.birth >= inst.birth -> best
              | _ -> Some inst)
            None cycle
      | None ->
          (* No wait-for cycle yet everything is blocked: impossible with
             exclusive locks, but fall back to any blocked instance. *)
          Array.fold_left
            (fun best inst ->
              if (not inst.committed) && blocked_on inst <> [] then
                match best with Some _ -> best | None -> Some inst
              else best)
            None instances
    in
    match victim with
    | None -> failwith "Engine: stuck with no blocked instance"
    | Some inst ->
        incr aborts;
        Obs.event
          ~attrs:(fun () ->
            [
              A.int "tick" !ticks;
              A.str "txn" (Txn.name inst.txn);
              A.int "attempt" inst.attempt;
              A.int "wasted_steps" (List.length inst.events);
            ])
          "sim.txn.abort";
        (* Remove this attempt's events from the global log. *)
        let drop = List.length inst.events in
        global_log :=
          (let remaining = ref drop in
           List.filter
             (fun (i, _) ->
               if i = inst.txn_index && !remaining > 0 then begin
                 decr remaining;
                 false
               end
               else true)
             !global_log);
        release_all inst;
        fresh_attempt inst !ticks
  in
  let all_committed () = Array.for_all (fun i -> i.committed) instances in
  let result = ref None in
  while !result = None && not (all_committed ()) do
    if !aborts > max_aborts then result := Some (Error "max aborts exceeded")
    else begin
      incr ticks;
      (* Gather all enabled (instance, step) pairs. *)
      let choices =
        Array.to_list instances
        |> List.concat_map (fun inst ->
               List.map (fun s -> (inst, s)) (enabled_steps inst))
      in
      (* Debug-level lock-wait edges, reported once per blocking episode
         (the whole scan is skipped below Debug). *)
      if Obs.logs Obs.Debug then
        Array.iter
          (fun inst ->
            if not inst.committed then
              match blocked_on inst with
              | [] -> was_blocked.(inst.txn_index) <- false
              | holders ->
                  if not was_blocked.(inst.txn_index) then begin
                    was_blocked.(inst.txn_index) <- true;
                    Obs.event ~level:Obs.Debug
                      ~attrs:(fun () ->
                        [
                          A.int "tick" !ticks;
                          A.str "txn" (Txn.name inst.txn);
                          A.str "waiting_for"
                            (String.concat ", "
                               (List.sort_uniq compare
                                  (List.map
                                     (fun h -> Txn.name instances.(h).txn)
                                     holders)));
                        ])
                      "sim.lock.block"
                  end)
          instances;
      match choices with
      | [] ->
          if Array.exists awaiting_message instances then
            (* messages in flight: let time pass *)
            Obs.event ~level:Obs.Debug
              ~attrs:(fun () -> [ A.int "tick" !ticks ])
              "sim.message.wait"
          else begin
            (* every live instance is blocked on a lock: deadlock *)
            incr blocks;
            abort_victim ()
          end
      | _ -> (
          match rng with
          | Some rng ->
              let arr = Array.of_list choices in
              let inst, s = arr.(Random.State.int rng (Array.length arr)) in
              execute inst s
          | None ->
              (* round-robin over instances; first enabled step *)
              let rec pick k =
                let idx = (!rr_cursor + k) mod n in
                let inst = instances.(idx) in
                match enabled_steps inst with
                | s :: _ ->
                    rr_cursor := (idx + 1) mod n;
                    execute inst s
                | [] -> pick (k + 1)
              in
              pick 0)
    end
  done;
  let out =
    match !result with
    | Some err -> err
    | None ->
        let history = Schedule.of_events (List.rev !global_log) in
        let serializable =
          (not check_serializability) || Conflict.is_serializable sys history
        in
        Ok
          {
            history;
            serializable;
            trace = List.rev !trace;
            stats =
              {
                ticks = !ticks;
                commits = n;
                aborts = !aborts;
                deadlocks = !blocks;
              };
          }
  in
  M.incr (Lazy.force m_runs);
  M.incr_by (Lazy.force m_ticks) !ticks;
  M.incr_by (Lazy.force m_aborts) !aborts;
  M.incr_by (Lazy.force m_deadlocks) !blocks;
  (match out with
  | Ok _ -> M.incr_by (Lazy.force m_commits) n
  | Error _ -> ());
  if Obs.enabled () then
    Obs.add_attrs sp
      [
        A.int "ticks" !ticks;
        A.int "aborts" !aborts;
        A.int "deadlocks" !blocks;
        A.str "result"
          (match out with
          | Ok o -> if o.serializable then "serializable" else "non-serializable"
          | Error e -> "error: " ^ e);
      ];
  Obs.end_span sp;
  out

let violation_runs ?(policy_seeds = List.init 100 Fun.id) ?max_aborts sys =
  List.fold_left
    (fun (bad, completed, errored) seed ->
      match run ~policy:(Random seed) ?max_aborts sys with
      | Ok o -> ((bad + if o.serializable then 0 else 1), completed + 1, errored)
      | Error _ -> (bad, completed, errored + 1))
    (0, 0, 0) policy_seeds

(* Errored runs (abort-budget livelocks) commit no history, so they can
   witness neither serializability nor its violation: they are excluded
   from the denominator rather than silently counted as non-violating. *)
let violation_rate ?policy_seeds ?max_aborts sys =
  let bad, completed, _errored = violation_runs ?policy_seeds ?max_aborts sys in
  if completed = 0 then 0. else float_of_int bad /. float_of_int completed
