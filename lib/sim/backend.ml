(* Pluggable lock managers for the event-driven simulator.

   The interface deliberately separates what the *worker believes* from
   what the *manager knows*: [release] returns [false] when the caller
   no longer holds the lock (its lease expired while it was crashed and
   the entity moved on), and [crash]/[resume] tell the manager about
   worker liveness without touching the worker's own state. That split
   is where the static-safety gap lives — a resumed worker keeps
   executing its critical section while the manager has already handed
   its locks to someone else. *)

open Distlock_txn

type grant = Granted | Queued

type notice =
  | Expired of { entity : Database.entity; owner : int }
      (** a crashed holder's lease ran out; the lock is free again *)
  | Handed of { entity : Database.entity; owner : int }
      (** a queued request was granted; [owner] now holds the lock *)

module type S = sig
  type t

  val name : t -> string

  val queues : bool
  (** Whether [acquire] can return [Queued]. The instant backend never
      queues — a denied request is simply not a choice this tick, which
      is what the legacy engine models. *)

  val acquire :
    t -> now:int -> owner:int -> ready_at:int -> Database.entity -> grant

  val release : t -> owner:int -> Database.entity -> bool
  (** [false] means the caller was not the holder — a stale unlock from
      a worker whose lease already expired. The manager's state is
      unchanged in that case. *)

  val holder : t -> Database.entity -> int option

  val crash : t -> now:int -> owner:int -> unit
  (** The worker stopped responding. A leasing manager starts the TTL
      countdown on every lock it holds. *)

  val resume : t -> owner:int -> unit
  (** The worker is back (it never knows it was gone). Leases it still
      holds stop expiring. *)

  val forfeit : t -> owner:int -> unit
  (** Abort path: drop everything [owner] holds or has queued. *)

  val drain : t -> now:int -> notice list
  (** Apply everything due by [now]: expire overdue leases, then grant
      queue heads whose request has arrived and whose entity is free.
      Notices are returned in ascending entity order — determinism over
      Hashtbl-style iteration. *)

  val next_wakeup : t -> int option
  (** Earliest future time at which [drain] would do something new:
      a pending lease deadline, or the arrival time of a queue-head
      request on a free entity. *)
end

type t = B : (module S with type t = 's) * 's -> t

let name (B ((module M), s)) = M.name s
let queues (B ((module M), _)) = M.queues
let acquire (B ((module M), s)) ~now ~owner ~ready_at e =
  M.acquire s ~now ~owner ~ready_at e
let release (B ((module M), s)) ~owner e = M.release s ~owner e
let holder (B ((module M), s)) e = M.holder s e
let crash (B ((module M), s)) ~now ~owner = M.crash s ~now ~owner
let resume (B ((module M), s)) ~owner = M.resume s ~owner
let forfeit (B ((module M), s)) ~owner = M.forfeit s ~owner
let drain (B ((module M), s)) ~now = M.drain s ~now
let next_wakeup (B ((module M), s)) = M.next_wakeup s

(* ---- Instant: the legacy manager. ---- *)

module Instant_impl = struct
  type t = { holder : int array }

  let name _ = "instant"
  let queues = false

  let acquire t ~now:_ ~owner ~ready_at:_ e =
    if t.holder.(e) >= 0 && t.holder.(e) <> owner then Queued
    else begin
      t.holder.(e) <- owner;
      Granted
    end

  let release t ~owner e =
    if t.holder.(e) = owner then begin
      t.holder.(e) <- -1;
      true
    end
    else false

  let holder t e = if t.holder.(e) >= 0 then Some t.holder.(e) else None
  let crash _ ~now:_ ~owner:_ = ()
  let resume _ ~owner:_ = ()

  let forfeit t ~owner =
    Array.iteri (fun e h -> if h = owner then t.holder.(e) <- -1) t.holder

  let drain _ ~now:_ = []
  let next_wakeup _ = None
end

let instant db =
  B
    ( (module Instant_impl),
      { Instant_impl.holder = Array.make (Database.num_entities db) (-1) } )

(* ---- Queued: shared machinery for leased and bakery. ----

   Each entity has at most one holder plus a FIFO queue of
   (owner, ready_at) requests; [ready_at] is when the request message
   reaches the entity's site, so a queued request can't be granted
   before it has arrived. With [ttl = Some n], a holder reported
   crashed gets a lease deadline [crash time + n] on every held
   entity; past the deadline [drain] expires the lease and the queue
   head (if arrived) takes over — even though the crashed worker will
   later resume believing it still holds the lock. With [ttl = None]
   (the Bakery model: tickets never time out) locks survive any
   outage and only [release]/[forfeit] free them. *)

module Queued_impl = struct
  type lease = { owner : int; mutable deadline : int (* max_int = none *) }

  type t = {
    label : string;
    ttl : int option;
    held : lease option array; (* per entity *)
    queue : (int * int) Queue.t array; (* per entity: owner, ready_at *)
  }

  let name t = t.label
  let queues = true

  let acquire t ~now ~owner ~ready_at e =
    match t.held.(e) with
    | Some l when l.owner = owner -> Granted (* re-entrant: already held *)
    | None when Queue.is_empty t.queue.(e) && ready_at <= now ->
        t.held.(e) <- Some { owner; deadline = max_int };
        Granted
    | _ ->
        Queue.add (owner, ready_at) t.queue.(e);
        Queued

  let release t ~owner e =
    match t.held.(e) with
    | Some l when l.owner = owner ->
        t.held.(e) <- None;
        true
    | _ -> false

  let holder t e = Option.map (fun l -> l.owner) t.held.(e)

  let crash t ~now ~owner =
    match t.ttl with
    | None -> ()
    | Some ttl ->
        Array.iter
          (function
            | Some l when l.owner = owner -> l.deadline <- now + ttl
            | _ -> ())
          t.held

  let resume t ~owner =
    Array.iter
      (function
        | Some l when l.owner = owner -> l.deadline <- max_int | _ -> ())
      t.held

  let forfeit t ~owner =
    Array.iteri
      (fun e held ->
        (match held with
        | Some l when l.owner = owner -> t.held.(e) <- None
        | _ -> ());
        let q = t.queue.(e) in
        let keep = Queue.create () in
        Queue.iter (fun (o, r) -> if o <> owner then Queue.add (o, r) keep) q;
        Queue.clear q;
        Queue.transfer keep q)
      t.held

  let drain t ~now =
    let notices = ref [] in
    Array.iteri
      (fun e held ->
        (* Strictly past the deadline: a holder that resumes exactly at
           its deadline keeps the lease, whatever order same-time events
           are processed in. *)
        (match held with
        | Some l when l.deadline < now ->
            t.held.(e) <- None;
            notices := Expired { entity = e; owner = l.owner } :: !notices
        | _ -> ());
        match t.held.(e) with
        | Some _ -> ()
        | None -> (
            match Queue.peek_opt t.queue.(e) with
            | Some (owner, ready_at) when ready_at <= now ->
                ignore (Queue.pop t.queue.(e));
                t.held.(e) <- Some { owner; deadline = max_int };
                notices := Handed { entity = e; owner } :: !notices
            | _ -> ()))
      t.held;
    List.rev !notices

  let next_wakeup t =
    let best = ref max_int in
    Array.iteri
      (fun e held ->
        match held with
        | Some l ->
            (* [drain] acts strictly past the deadline. *)
            if l.deadline <> max_int && l.deadline + 1 < !best then
              best := l.deadline + 1
        | None -> (
            match Queue.peek_opt t.queue.(e) with
            | Some (_, ready_at) -> if ready_at < !best then best := ready_at
            | None -> ()))
      t.held;
    if !best = max_int then None else Some !best
end

let queued db ~label ~ttl =
  let n = Database.num_entities db in
  B
    ( (module Queued_impl),
      {
        Queued_impl.label;
        ttl;
        held = Array.make n None;
        queue = Array.init n (fun _ -> Queue.create ());
      } )

let leased db ~ttl = queued db ~label:"leased" ~ttl:(Some ttl)
let bakery db = queued db ~label:"bakery" ~ttl:None
