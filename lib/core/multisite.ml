open Distlock_txn
open Distlock_graph

type unsafe_reason = Unsafe_pair of int * int | Acyclic_bc of int list

type verdict = Safe | Unsafe of unsafe_reason

let conflict_graph sys =
  let r = System.num_txns sys in
  let g = Digraph.create r in
  for i = 0 to r - 1 do
    for j = i + 1 to r - 1 do
      if System.common_locked sys i j <> [] then begin
        Digraph.add_arc g i j;
        Digraph.add_arc g j i
      end
    done
  done;
  g

(* Node table shared by B_ijk construction: key (lo, hi, entity). *)
module Nodes = struct
  type t = {
    index : (int * int * Database.entity, int) Hashtbl.t;
    mutable names : (int * int * Database.entity) list; (* reversed *)
    mutable count : int;
  }

  let create () = { index = Hashtbl.create 32; names = []; count = 0 }

  let get t key =
    match Hashtbl.find_opt t.index key with
    | Some v -> v
    | None ->
        let v = t.count in
        Hashtbl.add t.index key v;
        t.names <- key :: t.names;
        t.count <- t.count + 1;
        v

  let names t = Array.of_list (List.rev t.names)
end

let pair_key i j = if i < j then (i, j) else (j, i)

(* Add B_ijk arcs into [g] using the node table. *)
let add_b_arcs sys nodes add_arc ~i ~j ~k =
  let tj = System.txn sys j in
  let lo1, hi1 = pair_key i j and lo2, hi2 = pair_key j k in
  let xs = System.common_locked sys i j in
  let ys = System.common_locked sys j k in
  let lock e = Option.get (Txn.lock_of tj e) in
  let unlock e = Option.get (Txn.unlock_of tj e) in
  (* (x@ij, y@jk) iff Lx precedes Uy in Tj *)
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if Txn.precedes tj (lock x) (unlock y) then
            add_arc
              (Nodes.get nodes (lo1, hi1, x))
              (Nodes.get nodes (lo2, hi2, y)))
        ys)
    xs;
  (* (x@ij, x'@ij) iff Lx precedes Lx' in Tj *)
  List.iter
    (fun x ->
      List.iter
        (fun x' ->
          if x <> x' && Txn.precedes tj (lock x) (lock x') then
            add_arc
              (Nodes.get nodes (lo1, hi1, x))
              (Nodes.get nodes (lo1, hi1, x')))
        xs)
    xs;
  (* (y@jk, y'@jk) iff Uy precedes Uy' in Tj *)
  List.iter
    (fun y ->
      List.iter
        (fun y' ->
          if y <> y' && Txn.precedes tj (unlock y) (unlock y') then
            add_arc
              (Nodes.get nodes (lo2, hi2, y))
              (Nodes.get nodes (lo2, hi2, y')))
        ys)
    ys

(* Two-pass construction: collect arcs with a growing node table, then
   build the digraph once the node count is known. *)
let build_b sys triples =
  let nodes = Nodes.create () in
  let arcs = ref [] in
  let add_arc u v = arcs := (u, v) :: !arcs in
  List.iter (fun (i, j, k) -> add_b_arcs sys nodes add_arc ~i ~j ~k) triples;
  let g = Digraph.create nodes.Nodes.count in
  List.iter (fun (u, v) -> Digraph.add_arc g u v) !arcs;
  (g, Nodes.names nodes)

let b_graph sys ~i ~j ~k = build_b sys [ (i, j, k) ]

let b_cycle_graph sys cycle =
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  let triples =
    List.init n (fun p -> (arr.(p), arr.((p + 1) mod n), arr.((p + 2) mod n)))
  in
  fst (build_b sys triples)

type exhaustion = { examined : int; limit : int }

type cycle_enum = Cycles of int list list | Cut of exhaustion

let simple_cycles_bounded ~limit g =
  let n = Digraph.n g in
  let cycles = ref [] in
  let steps = ref 0 in
  let exception Budget_cut in
  (* DFS from each root, only visiting vertices >= root, so each cycle is
     found exactly once per orientation with its smallest vertex first.
     Every arc the search follows counts one step against [limit]: the
     path count — not the cycle count — is what explodes on dense
     graphs, so that is what the budget must meter. *)
  let rec extend root path on_path v =
    Digraph.iter_succ g v (fun w ->
        incr steps;
        if !steps > limit then raise Budget_cut;
        if w = root && List.length path >= 3 then
          cycles := List.rev path :: !cycles
        else if w > root && not (List.mem w on_path) then
          extend root (w :: path) (w :: on_path) w)
  in
  match
    for root = 0 to n - 1 do
      extend root [ root ] [ root ] root
    done
  with
  | () -> Cycles !cycles
  | exception Budget_cut -> Cut { examined = !steps; limit }

let simple_cycles g =
  match simple_cycles_bounded ~limit:max_int g with
  | Cycles cs -> cs
  | Cut _ -> assert false (* max_int steps is unreachable *)

let conflicting_pairs sys =
  let r = System.num_txns sys in
  let acc = ref [] in
  for i = r - 1 downto 0 do
    for j = r - 1 downto i + 1 do
      if System.common_locked sys i j <> [] then acc := (i, j) :: !acc
    done
  done;
  !acc

let pair_system sys i j =
  System.make (System.db sys) [ System.txn sys i; System.txn sys j ]

type result = Decided of verdict | Exhausted of exhaustion

(* Condition (b) alone: every directed cycle of [g] must have a cyclic
   B_c. Pure in the pair verdicts — callers that already know (a) holds
   (e.g. from a pair-verdict store) come straight here. *)
let check_cycles ?(cycle_limit = max_int) sys g =
  match simple_cycles_bounded ~limit:cycle_limit g with
  | Cut e -> Exhausted e
  | Cycles cs -> (
      match
        List.find_opt
          (fun c -> Distlock_graph.Topo.is_acyclic (b_cycle_graph sys c))
          cs
      with
      | Some c -> Decided (Unsafe (Acyclic_bc c))
      | None -> Decided Safe)

let decide_with ~pair_safe ?cycle_limit sys =
  (* (a) all conflicting two-transaction subsystems safe *)
  match
    List.find_opt (fun (i, j) -> not (pair_safe i j)) (conflicting_pairs sys)
  with
  | Some (i, j) -> Decided (Unsafe (Unsafe_pair (i, j)))
  | None ->
      (* (b) every directed conflict-graph cycle has a cyclic B_c *)
      check_cycles ?cycle_limit sys (conflict_graph sys)

let decide_bounded ?pair_decider ?budget ?cycle_limit sys =
  let pair_safe =
    match pair_decider with
    | Some f -> fun i j -> f (pair_system sys i j)
    | None -> fun i j -> Safety.is_safe_exn ?budget (pair_system sys i j)
  in
  let cycle_limit =
    match (cycle_limit, budget) with
    | Some l, _ -> Some l
    | None, Some (b : Distlock_engine.Budget.t) -> b.Distlock_engine.Budget.max_steps
    | None, None -> None
  in
  decide_with ~pair_safe ?cycle_limit sys

let decide ?pair_decider ?budget sys =
  match decide_bounded ?pair_decider ?budget sys with
  | Decided v -> v
  | Exhausted { examined; limit } ->
      failwith
        (Printf.sprintf
           "Proposition 2: cycle-enumeration budget exhausted after %d of %d \
            steps"
           examined limit)
