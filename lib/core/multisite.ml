open Distlock_txn
open Distlock_graph

type unsafe_reason = Unsafe_pair of int * int | Acyclic_bc of int list

type verdict = Safe | Unsafe of unsafe_reason

let conflict_graph sys =
  let r = System.num_txns sys in
  let g = Digraph.create r in
  for i = 0 to r - 1 do
    for j = i + 1 to r - 1 do
      if System.common_locked sys i j <> [] then begin
        Digraph.add_arc g i j;
        Digraph.add_arc g j i
      end
    done
  done;
  g

(* Node table shared by B_ijk construction: key (lo, hi, entity). *)
module Nodes = struct
  type t = {
    index : (int * int * Database.entity, int) Hashtbl.t;
    mutable names : (int * int * Database.entity) list; (* reversed *)
    mutable count : int;
  }

  let create () = { index = Hashtbl.create 32; names = []; count = 0 }

  let get t key =
    match Hashtbl.find_opt t.index key with
    | Some v -> v
    | None ->
        let v = t.count in
        Hashtbl.add t.index key v;
        t.names <- key :: t.names;
        t.count <- t.count + 1;
        v

  let names t = Array.of_list (List.rev t.names)
end

let pair_key i j = if i < j then (i, j) else (j, i)

(* Add B_ijk arcs into [g] using the node table. *)
let add_b_arcs sys nodes add_arc ~i ~j ~k =
  let tj = System.txn sys j in
  let lo1, hi1 = pair_key i j and lo2, hi2 = pair_key j k in
  let xs = System.common_locked sys i j in
  let ys = System.common_locked sys j k in
  let lock e = Option.get (Txn.lock_of tj e) in
  let unlock e = Option.get (Txn.unlock_of tj e) in
  (* (x@ij, y@jk) iff Lx precedes Uy in Tj *)
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if Txn.precedes tj (lock x) (unlock y) then
            add_arc
              (Nodes.get nodes (lo1, hi1, x))
              (Nodes.get nodes (lo2, hi2, y)))
        ys)
    xs;
  (* (x@ij, x'@ij) iff Lx precedes Lx' in Tj *)
  List.iter
    (fun x ->
      List.iter
        (fun x' ->
          if x <> x' && Txn.precedes tj (lock x) (lock x') then
            add_arc
              (Nodes.get nodes (lo1, hi1, x))
              (Nodes.get nodes (lo1, hi1, x')))
        xs)
    xs;
  (* (y@jk, y'@jk) iff Uy precedes Uy' in Tj *)
  List.iter
    (fun y ->
      List.iter
        (fun y' ->
          if y <> y' && Txn.precedes tj (unlock y) (unlock y') then
            add_arc
              (Nodes.get nodes (lo2, hi2, y))
              (Nodes.get nodes (lo2, hi2, y')))
        ys)
    ys

(* Two-pass construction: collect arcs with a growing node table, then
   build the digraph once the node count is known. *)
let build_b sys triples =
  let nodes = Nodes.create () in
  let arcs = ref [] in
  let add_arc u v = arcs := (u, v) :: !arcs in
  List.iter (fun (i, j, k) -> add_b_arcs sys nodes add_arc ~i ~j ~k) triples;
  let g = Digraph.create nodes.Nodes.count in
  List.iter (fun (u, v) -> Digraph.add_arc g u v) !arcs;
  (g, Nodes.names nodes)

let b_graph sys ~i ~j ~k = build_b sys [ (i, j, k) ]

let b_cycle_graph sys cycle =
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  let triples =
    List.init n (fun p -> (arr.(p), arr.((p + 1) mod n), arr.((p + 2) mod n)))
  in
  fst (build_b sys triples)

let simple_cycles g =
  let n = Digraph.n g in
  let cycles = ref [] in
  (* DFS from each root, only visiting vertices >= root, so each cycle is
     found exactly once per orientation with its smallest vertex first. *)
  let rec extend root path on_path v =
    Digraph.iter_succ g v (fun w ->
        if w = root && List.length path >= 3 then
          cycles := List.rev path :: !cycles
        else if w > root && not (List.mem w on_path) then
          extend root (w :: path) (w :: on_path) w)
  in
  for root = 0 to n - 1 do
    extend root [ root ] [ root ] root
  done;
  !cycles

let decide ?pair_decider ?budget sys =
  let pair_safe =
    match pair_decider with
    | Some f -> f
    | None -> fun pair_sys -> Safety.is_safe_exn ?budget pair_sys
  in
  let r = System.num_txns sys in
  (* (a) all two-transaction subsystems safe *)
  let bad_pair = ref None in
  (try
     for i = 0 to r - 1 do
       for j = i + 1 to r - 1 do
         if System.common_locked sys i j <> [] then begin
           let sub =
             System.make (System.db sys) [ System.txn sys i; System.txn sys j ]
           in
           if not (pair_safe sub) then begin
             bad_pair := Some (i, j);
             raise Exit
           end
         end
       done
     done
   with Exit -> ());
  match !bad_pair with
  | Some (i, j) -> Unsafe (Unsafe_pair (i, j))
  | None -> (
      (* (b) every directed conflict-graph cycle has a cyclic B_c *)
      let g = conflict_graph sys in
      let bad_cycle =
        List.find_opt
          (fun c ->
            let bc = b_cycle_graph sys c in
            Distlock_graph.Topo.is_acyclic bc)
          (simple_cycles g)
      in
      match bad_cycle with
      | Some c -> Unsafe (Acyclic_bc c)
      | None -> Safe)
