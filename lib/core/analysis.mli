open Distlock_txn

(** One-call diagnostic reports for two-transaction systems, combining
    every tool in the library: well-formedness, the [D]-graph, the safety
    verdict with evidence, policy classification, deadlock analysis (for
    totally ordered pairs), and a repair proposal when unsafe. Drives the
    CLI's [analyze] command. *)

type deadlock_info =
  | Deadlock_possible of int  (** number of reachable deadlock states *)
  | Deadlock_impossible
  | Deadlock_unknown  (** partial orders: not analyzed geometrically *)

type txn_policies = {
  name : string;
  two_phase_strong : bool;
  two_phase_weak : bool;
}

type t = {
  system : System.t;
  violations : (string * string) list;  (** (txn name, rendered violation) *)
  sites : int list;
  common_entities : string list;
  d_vertices : int;
  d_arcs : int;
  strongly_connected : bool;
  verdict : Safety.verdict;
  decision : Checkers.evidence Distlock_engine.Outcome.t;
      (** The full engine outcome behind [verdict]: provenance, stage
          trace, timings. *)
  policies : txn_policies list;
  deadlock : deadlock_info;
  repair : (int * int) option;
      (** (insertions, concurrency loss) when the system is unsafe and a
          repair was found. *)
}

val pair : ?exhaustive_budget:int -> ?try_repair:bool -> System.t -> t
(** [try_repair] defaults to [true]. *)

val pp : Format.formatter -> t -> unit

val pp_decision : Format.formatter -> t -> unit
(** The engine view of the verdict: deciding procedure plus the
    per-stage trace (status, detail, elapsed time per stage). *)
