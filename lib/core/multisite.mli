open Distlock_txn
open Distlock_graph

(** Proposition 2 (Section 6): safety of systems with more than two
    transactions.

    Let [G] be the (undirected) conflict graph on transactions — an edge
    [Ti - Tj] whenever they lock a common entity. For every directed path
    [(Ti, Tj, Tk)] of length two, [B_ijk] is the digraph with a node per
    (pair, entity) — entities locked by both endpoints of the pair — and
    arcs, all read off [Tj]'s partial order:

    - [(x@ij, y@jk)] iff [Lx] precedes [Uy] in [Tj];
    - [(x@ij, x'@ij)] iff [Lx] precedes [Lx'] in [Tj];
    - [(y@jk, y'@jk)] iff [Uy] precedes [Uy'] in [Tj].

    [T] is safe iff (a) every two-transaction subsystem is safe and (b)
    for each directed cycle [c] of [G], the union [B_c] of the [B_ijk] of
    its consecutive subpaths has a cycle. Testing (b) over all simple
    cycles is exponential — the problem is coNP-complete already in the
    centralized case [7] — so this module enumerates simple cycles
    explicitly and is meant for small transaction counts. *)

type unsafe_reason =
  | Unsafe_pair of int * int
  | Acyclic_bc of int list
      (** A directed conflict-graph cycle whose [B_c] is acyclic. *)

type verdict = Safe | Unsafe of unsafe_reason

val conflict_graph : System.t -> Digraph.t
(** Symmetric digraph (both arcs per undirected edge). *)

val b_graph : System.t -> i:int -> j:int -> k:int -> Digraph.t * (int * int * Database.entity) array
(** [B_ijk]; the array maps vertices to [(pair_lo, pair_hi, entity)]. *)

val b_cycle_graph : System.t -> int list -> Digraph.t
(** [B_c] for a directed cycle given as a transaction-index list. *)

type exhaustion = { examined : int; limit : int }
(** A typed budget cut, mirroring [Brute.Exhausted]: the enumeration
    followed [examined] arcs of its [limit]-arc allowance and stopped. *)

type cycle_enum = Cycles of int list list | Cut of exhaustion

val simple_cycles_bounded : limit:int -> Digraph.t -> cycle_enum
(** All directed simple cycles of length >= 3, each rotation-normalized
    (smallest vertex first), both orientations included — unless the
    DFS follows more than [limit] arcs first, in which case [Cut] is
    returned instead of hanging on a dense graph (the number of simple
    {e paths} explored is what grows exponentially). *)

val simple_cycles : Digraph.t -> int list list
(** [simple_cycles g] = [simple_cycles_bounded ~limit:max_int g] — the
    unbudgeted enumeration, for graphs known to be small. *)

val conflicting_pairs : System.t -> (int * int) list
(** Index pairs [(i, j)], [i < j], locking a common entity — the edge
    list of {!conflict_graph} — in lexicographic order. *)

val pair_system : System.t -> int -> int -> System.t
(** The two-transaction subsystem [{Ti, Tj}] over the same database. *)

type result = Decided of verdict | Exhausted of exhaustion

val check_cycles : ?cycle_limit:int -> System.t -> Digraph.t -> result
(** Condition (b) alone, as a pure judge over a conflict graph [g]:
    enumerate [g]'s directed simple cycles (within [cycle_limit] DFS
    arcs, default unlimited) and find one whose [B_c] is acyclic.
    Assumes condition (a) was already established elsewhere — e.g. from
    a pair-verdict store. *)

val decide_with :
  pair_safe:(int -> int -> bool) -> ?cycle_limit:int -> System.t -> result
(** The Proposition 2 skeleton over an abstract pair-verdict store:
    [pair_safe i j] answers condition (a) for the conflicting pair
    [(i, j)] ([i < j], asked in lexicographic order, first failure
    wins), then {!check_cycles} judges condition (b). This is the
    function both {!decide} and the incremental
    [Incremental.decide_delta] instantiate — they differ only in where
    pair verdicts come from. *)

val decide_bounded :
  ?pair_decider:(System.t -> bool) ->
  ?budget:Distlock_engine.Budget.t ->
  ?cycle_limit:int ->
  System.t ->
  result
(** {!decide_with} with pair verdicts computed on the fly:
    [pair_decider] decides each two-transaction subsystem (default
    {!Safety.is_safe_exn} under [budget]). [cycle_limit] defaults to
    the budget's [max_steps] when set, otherwise unlimited. *)

val decide :
  ?pair_decider:(System.t -> bool) ->
  ?budget:Distlock_engine.Budget.t ->
  System.t ->
  verdict
(** {!decide_bounded} collapsed to the historical API: raises [Failure]
    on cycle-budget exhaustion (as {!Safety.is_safe_exn} already does on
    an undecided pair). [budget] is ignored when an explicit
    [pair_decider] is supplied, except for its cycle-enumeration cap. *)
