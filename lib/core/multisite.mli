open Distlock_txn
open Distlock_graph

(** Proposition 2 (Section 6): safety of systems with more than two
    transactions.

    Let [G] be the (undirected) conflict graph on transactions — an edge
    [Ti - Tj] whenever they lock a common entity. For every directed path
    [(Ti, Tj, Tk)] of length two, [B_ijk] is the digraph with a node per
    (pair, entity) — entities locked by both endpoints of the pair — and
    arcs, all read off [Tj]'s partial order:

    - [(x@ij, y@jk)] iff [Lx] precedes [Uy] in [Tj];
    - [(x@ij, x'@ij)] iff [Lx] precedes [Lx'] in [Tj];
    - [(y@jk, y'@jk)] iff [Uy] precedes [Uy'] in [Tj].

    [T] is safe iff (a) every two-transaction subsystem is safe and (b)
    for each directed cycle [c] of [G], the union [B_c] of the [B_ijk] of
    its consecutive subpaths has a cycle. Testing (b) over all simple
    cycles is exponential — the problem is coNP-complete already in the
    centralized case [7] — so this module enumerates simple cycles
    explicitly and is meant for small transaction counts. *)

type unsafe_reason =
  | Unsafe_pair of int * int
  | Acyclic_bc of int list
      (** A directed conflict-graph cycle whose [B_c] is acyclic. *)

type verdict = Safe | Unsafe of unsafe_reason

val conflict_graph : System.t -> Digraph.t
(** Symmetric digraph (both arcs per undirected edge). *)

val b_graph : System.t -> i:int -> j:int -> k:int -> Digraph.t * (int * int * Database.entity) array
(** [B_ijk]; the array maps vertices to [(pair_lo, pair_hi, entity)]. *)

val b_cycle_graph : System.t -> int list -> Digraph.t
(** [B_c] for a directed cycle given as a transaction-index list. *)

val simple_cycles : Digraph.t -> int list list
(** All directed simple cycles of length >= 3, each rotation-normalized
    (smallest vertex first), both orientations included. *)

val decide :
  ?pair_decider:(System.t -> bool) ->
  ?budget:Distlock_engine.Budget.t ->
  System.t ->
  verdict
(** [pair_decider] decides safety of each two-transaction subsystem
    (default: {!Safety.is_safe_exn}, run under [budget] if given;
    [budget] is ignored when an explicit [pair_decider] is supplied). *)
