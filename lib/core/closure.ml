open Distlock_txn
open Distlock_graph

type failure = Would_cycle of { txn : int } | Dominator_lost

type outcome = Closed of System.t | Failed of failure

(* Step indices of the lock/unlock of each common entity in each
   transaction; recomputed lazily as the transactions never change their
   steps, only their orders. *)
type ctx = {
  common : Database.entity array;
  in_x : bool array; (* per common index *)
  l1 : int array;
  u1 : int array;
  l2 : int array;
  u2 : int array;
}

let make_ctx sys ~dominator =
  let t1, t2 = System.pair sys in
  let common = Array.of_list (System.common_locked sys 0 1) in
  let in_x = Array.map (fun e -> List.mem e dominator) common in
  {
    common;
    in_x;
    l1 = Array.map (fun e -> Option.get (Txn.lock_of t1 e)) common;
    u1 = Array.map (fun e -> Option.get (Txn.unlock_of t1 e)) common;
    l2 = Array.map (fun e -> Option.get (Txn.lock_of t2 e)) common;
    u2 = Array.map (fun e -> Option.get (Txn.unlock_of t2 e)) common;
  }

(* Find one Definition 3 violation: (z, x, y) satisfying the hypotheses
   whose conclusions do not (both) hold yet. *)
let find_violation ctx t1 t2 =
  let k = Array.length ctx.common in
  let found = ref None in
  (try
     for z = 0 to k - 1 do
       if not ctx.in_x.(z) then
         for x = 0 to k - 1 do
           if ctx.in_x.(x) && Txn.precedes t1 ctx.l1.(z) ctx.u1.(x) then
             for y = 0 to k - 1 do
               if
                 ctx.in_x.(y) && y <> x
                 && Txn.precedes t2 ctx.l2.(y) ctx.u2.(z)
                 && not
                      (Txn.precedes t1 ctx.u1.(y) ctx.u1.(x)
                      && Txn.precedes t2 ctx.l2.(y) ctx.l2.(x))
               then begin
                 found := Some (z, x, y);
                 raise Exit
               end
             done
         done
     done
   with Exit -> ());
  !found

let dominator_ok sys ~dominator =
  let d = Dgraph.build_pair sys in
  let g = Dgraph.graph d in
  let entities = Dgraph.entities d in
  let in_x = Array.map (fun e -> List.mem e dominator) entities in
  let ok = ref true in
  Digraph.iter_arcs g (fun u v -> if in_x.(v) && not in_x.(u) then ok := false);
  let members = Array.to_list in_x |> List.filter Fun.id |> List.length in
  !ok && members > 0 && members < Array.length entities

let is_closed sys ~dominator =
  let t1, t2 = System.pair sys in
  let ctx = make_ctx sys ~dominator in
  find_violation ctx t1 t2 = None

let close sys ~dominator =
  if not (dominator_ok sys ~dominator) then
    invalid_arg "Closure.close: not a dominator of D(T1,T2)";
  let ctx = make_ctx sys ~dominator in
  let rec loop t1 t2 =
    match find_violation ctx t1 t2 with
    | None ->
        let sys' = System.make (System.db sys) [ t1; t2 ] in
        if dominator_ok sys' ~dominator then Closed sys' else Failed Dominator_lost
    | Some (_z, x, y) -> (
        (* Add Uy -> Ux in T1 and Ly -> Lx in T2 (Lemma 2's inference). *)
        match Txn.add_precedences t1 [ (ctx.u1.(y), ctx.u1.(x)) ] with
        | None -> Failed (Would_cycle { txn = 0 })
        | Some t1' -> (
            match Txn.add_precedences t2 [ (ctx.l2.(y), ctx.l2.(x)) ] with
            | None -> Failed (Would_cycle { txn = 1 })
            | Some t2' -> loop t1' t2'))
  in
  let t1, t2 = System.pair sys in
  loop t1 t2

let dominator_sets sys =
  let d = Dgraph.build_pair sys in
  Dgraph.dominators d

let first_unsafe_dominator ?(limit = 100_000) sys =
  let d = Dgraph.build_pair sys in
  let doms =
    try Dgraph.dominators ~limit d
    with Failure _ -> failwith "Closure.first_unsafe_dominator: too many dominators"
  in
  List.find_map
    (fun x ->
      let entities = Dgraph.entity_set d x in
      match close sys ~dominator:entities with
      | Closed closed -> Some (entities, closed)
      | Failed _ -> None)
    doms
