open Distlock_txn

(** "What will it cost to make this safe?" — comparing repair strategies
    for an unsafe two-transaction system.

    Three mechanical routes to safety are quantified by how much
    intra-transaction concurrency each sacrifices (the count of step pairs
    that were concurrent and become ordered):

    - {e insertion}: add precedences until [D(T1,T2)] is strongly
      connected ({!Repair}) — usually the cheapest, but not always
      possible;
    - {e two-phase}: delay every unlock past every lock in both
      transactions ({!Policy.make_two_phase}) — possible iff no unlock
      already precedes a lock;
    - {e serialize}: the blunt instrument — chain each transaction into a
      total order, removing all intra-transaction concurrency (offered
      only when the resulting pair happens to be safe).

    Each returned option has been re-verified safe. *)

type strategy = Insertion | Two_phase | Serialize

type option_report = {
  strategy : strategy;
  system : System.t;  (** The repaired system. *)
  concurrency_loss : int;
}

val advise : System.t -> option_report list
(** Applicable strategies, cheapest first. Empty when the system is
    already safe (check first!). Raises [Invalid_argument] on systems
    without exactly two transactions. *)

val strategy_name : strategy -> string
