open Distlock_txn

type insertion = { txn : int; before : int; after : int }

let relation_size txn =
  List.length (Distlock_order.Poset.relation (Txn.order txn))

let concurrency_loss ~before ~after =
  let per i =
    relation_size (System.txn after i) - relation_size (System.txn before i)
  in
  per 0 + per 1

(* Try to realize the D-arc (z, x): Lz < Ux in T1 and Lx < Uz in T2.
   Returns the extended system and the insertions actually needed. *)
let try_connect sys z x =
  let t1, t2 = System.pair sys in
  let need txn a b = if Txn.precedes txn a b then [] else [ (a, b) ] in
  let l1 e = Option.get (Txn.lock_of t1 e) and u1 e = Option.get (Txn.unlock_of t1 e) in
  let l2 e = Option.get (Txn.lock_of t2 e) and u2 e = Option.get (Txn.unlock_of t2 e) in
  let add1 = need t1 (l1 z) (u1 x) and add2 = need t2 (l2 x) (u2 z) in
  match (Txn.add_precedences t1 add1, Txn.add_precedences t2 add2) with
  | Some t1', Some t2' ->
      let insertions =
        List.map (fun (a, b) -> { txn = 0; before = a; after = b }) add1
        @ List.map (fun (a, b) -> { txn = 1; before = a; after = b }) add2
      in
      Some (System.make (System.db sys) [ t1'; t2' ], insertions)
  | _ -> None

let make_safe sys =
  if System.num_txns sys <> 2 then
    invalid_arg "Repair.make_safe: not a two-transaction system";
  (* Greedy with limited backtracking: at each level try the cheapest few
     consistent insertions; a global budget bounds the search. *)
  let budget = ref (64 * max 1 (Database.num_entities (System.db sys))) in
  let rec loop sys acc rounds =
    decr budget;
    if rounds = 0 || !budget <= 0 then None
    else begin
      let d = Dgraph.build_pair sys in
      if Dgraph.num_vertices d < 2 || Dgraph.is_strongly_connected d then
        Some (sys, List.rev acc)
      else begin
        (* Precedence relations only grow under insertion, and the arc set
           of D is monotone in them, so any consistent new cross-component
           D-arc is progress toward strong connectivity. Prefer arcs that
           close a condensation cycle (they merge whole component paths),
           then cheapest concurrency loss. *)
        let g = Dgraph.graph d in
        let scc = Distlock_graph.Scc.compute g in
        let cond = Distlock_graph.Scc.condensation g scc in
        let creach = Distlock_graph.Reach.closure cond in
        let entities = Dgraph.entities d in
        let candidates = ref [] in
        Array.iteri
          (fun ai a ->
            Array.iteri
              (fun bi b ->
                let ca = scc.Distlock_graph.Scc.component.(ai)
                and cb = scc.Distlock_graph.Scc.component.(bi) in
                if ca <> cb then
                  match try_connect sys a b with
                  | Some (sys', ins) when ins <> [] ->
                      let closes_cycle =
                        Distlock_graph.Bitset.mem creach.(cb) ca
                      in
                      let cost =
                        ((if closes_cycle then 0 else 1) * 1000)
                        + concurrency_loss ~before:sys ~after:sys'
                      in
                      candidates := (cost, sys', ins) :: !candidates
                  | _ -> ())
              entities)
          entities;
        let sorted =
          List.sort (fun (c1, _, _) (c2, _, _) -> compare (c1 : int) c2)
            !candidates
        in
        let rec try_candidates = function
          | [] -> None
          | (_, sys', ins) :: rest -> (
              match loop sys' (ins @ acc) (rounds - 1) with
              | Some _ as r -> r
              | None -> if !budget <= 0 then None else try_candidates rest)
        in
        try_candidates sorted
      end
    end
  in
  match loop sys [] (4 * max 1 (Database.num_entities (System.db sys))) with
  | None -> None
  | Some (sys', ins) ->
      System.validate_exn sys';
      assert (Theorem1.guarantees_safe sys');
      Some (sys', ins)
