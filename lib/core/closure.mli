open Distlock_txn
open Distlock_graph

(** The closure procedure of Theorem 2 (Lemmas 2–3, Definition 3).

    A two-transaction system [R] is *closed with respect to a dominator
    [X]* of [D(T1,T2)] when for all entities [z ∈ V-X] and [x, y ∈ X]:

    {v Lz <_1 Ux  and  Ly <_2 Uz   imply   Uy <_1 Ux  and  Ly <_2 Lx v}

    [close] adds the implied precedences until fixpoint. On two-site
    systems this always succeeds with [X] still a dominator (Lemma 3); on
    general systems it may fail — either a required precedence would
    create a cycle, or [X] stops being a dominator of the extended
    system's [D] — which is exactly what happens on the safe Fig 5 system
    and on the unsatisfiable Theorem 3 gadgets. *)

type failure =
  | Would_cycle of { txn : int }
      (** Adding a required precedence to transaction [txn] (0 or 1)
          would contradict its existing partial order. *)
  | Dominator_lost
      (** Some added precedence created a [V-X -> X] arc in [D]. *)

type outcome = Closed of System.t | Failed of failure

val close : System.t -> dominator:Database.entity list -> outcome
(** [dominator] must be a dominator of [D(T1,T2)] (entity ids); raises
    [Invalid_argument] otherwise. On [Closed sys'], [sys'] has the same
    steps with possibly more precedences, is closed w.r.t. the dominator,
    and the dominator still dominates [D] of [sys']. *)

val is_closed : System.t -> dominator:Database.entity list -> bool
(** Definition 3's condition, checked without modifying the system. *)

val first_unsafe_dominator :
  ?limit:int -> System.t -> (Database.entity list * System.t) option
(** Corollary 2 sweep: tries every dominator of [D(T1,T2)] (up to [limit],
    default [100_000]) and returns the first whose closure succeeds,
    together with the closed system — a proof of unsafety. [None] means no
    dominator closes (which implies safety for two-site systems, and for
    the Theorem 3 gadgets corresponds to unsatisfiability). *)

val dominator_sets : System.t -> Bitset.t list
(** All dominators of [D(T1,T2)] as vertex sets (convenience re-export). *)
