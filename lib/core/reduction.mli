open Distlock_txn
open Distlock_sat

(** Theorem 3: the reduction from (restricted) CNF satisfiability to
    unsafety of a two-transaction multisite system.

    Given a formula [F] — at most three literals per clause, each variable
    at most twice positive and at most once negative (see
    {!Distlock_sat.Normalize}) — [encode] builds transactions
    [T1(F), T2(F)] whose digraph [D] consists of (Figs 8 and 9):

    - an {e upper cycle} [u -> · -> c_ij -> · -> ... -> u] with a node per
      clause literal and dummy nodes in between;
    - a {e middle row}: per variable [k], a node [w_k] (duplicated into a
      two-node strongly connected pair when the variable occurs twice
      positively) and a node [w'_k] for its negation, all direct
      descendants of [u];
    - a {e lower cycle} through [v] and nodes [z_k, z'_k], with [v] a
      direct descendant of the middle row's primary nodes.

    Every entity lives on its own site. Dominators of [D] are exactly the
    upper cycle plus a subset of middle-row components and encode truth
    assignments ([w_k in X] ⟺ "x_k := 1", [w'_k in X] ⟺ "x_k := 0");
    completion precedences (a)–(c) make the closure procedure succeed on a
    dominator iff the corresponding assignment is consistent and satisfies
    every clause. Hence [{T1(F), T2(F)}] is unsafe iff [F] is
    satisfiable. *)

type t

val encode : Cnf.t -> t
(** Raises [Invalid_argument] unless [Cnf.is_restricted] holds and the
    formula has at least one variable and one clause. *)

val system : t -> System.t

val formula : t -> Cnf.t

val dgraph : t -> Dgraph.t
(** [D(T1(F), T2(F))], as computed from the built transactions. *)

val intended_digraph : t -> Distlock_graph.Digraph.t * Database.entity array
(** The gadget graph as specified; [encode] asserts it equals
    [dgraph]. *)

val num_entities : t -> int

val dominator_of_assignment : t -> bool array -> Database.entity list
(** The desirable dominator encoding a (claimed) model. *)

val assignment_of_dominator : t -> Database.entity list -> bool array
(** Decode a dominator: [x_k := w_k in X]. *)

val middle_subsets : t -> Database.entity list list
(** Every dominator of the gadget, as upper cycle + middle-component
    subset (2^(components) of them — the honest coNP sweep). *)

val decide_unsafe_by_closure : t -> (Database.entity list * System.t) option
(** Corollary 2 sweep over {!middle_subsets}: the first dominator whose
    closure succeeds, with the closed system. [Some _] proves the encoded
    system unsafe; for gadgets, [None] coincides with unsatisfiability of
    [F] (validated in the test suite against DPLL). *)

val certificate_of_model : t -> bool array -> (Certificate.t, string) result
(** Satisfying assignment ⟹ verified non-serializable schedule. *)

val sat_via_safety : Cnf.t -> bool
(** End-to-end: normalize an arbitrary CNF, encode it, and decide its
    satisfiability purely through the unsafety of the encoded system. *)
