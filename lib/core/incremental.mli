open Distlock_txn

(** A mutable transaction system with incremental safety decisions.

    {!Multisite.decide} re-derives everything from scratch on every
    call, so editing one transaction of an [n]-transaction system costs
    O(n²) pair re-checks plus a full cycle enumeration. A session keeps
    the state Proposition 2 actually works at between calls:

    - a {b pair-verdict store} ({!Distlock_engine.Lru_sharded}) keyed by
      the order-canonical {!System.pair_fingerprint}, so after a
      single-transaction edit only the O(n) pairs involving the mutated
      transaction re-run the pair pipeline (at most [2n − 3]: the pair
      fingerprints of all other pairs are unchanged by construction);
    - the {b conflict graph}, maintained edge-incrementally over
      transaction names ({!Distlock_graph.Dyngraph}) — an edit touches
      only the edges incident to the mutated vertex;
    - {b per-cycle B_c verdicts} and {b per-SCC cycle enumerations},
      keyed by content digests of their member transactions, so
      condition (b) is re-judged only for cycles through a touched
      component. [B_c] graphs are rebuilt only for cycles whose member
      pairs changed.

    Sessions are cheap to create and single-domain (the caches they
    reuse are domain-safe, but the mutation API is not serialized). *)

type t

val create :
  ?pair_cache_capacity:int ->
  ?budget:Distlock_engine.Budget.t ->
  Database.t ->
  Txn.t list ->
  t
(** An empty-or-seeded session over one database.
    [pair_cache_capacity] (default [4096], minimum [1]) bounds the
    pair-verdict store; [budget] (default unlimited) applies to every
    {!decide_delta} that does not pass its own. Raises
    [Invalid_argument] on duplicate transaction names. *)

val of_system :
  ?pair_cache_capacity:int ->
  ?budget:Distlock_engine.Budget.t ->
  System.t ->
  t

val system : t -> System.t
(** The current snapshot (cached between edits). Raises
    [Invalid_argument] when the session holds no transactions. *)

val num_txns : t -> int

val txn_names : t -> string list
(** In insertion order. *)

val stats : t -> Distlock_engine.Stats.t
(** Pair-cache hits/misses/re-decisions and per-stage counters for the
    pair pipeline runs this session performed. *)

(** {1 Mutations}

    Each is O(degree) on the conflict graph plus O(n) conflict
    re-detection against the other transactions; no pair pipeline runs
    until the next {!decide_delta}. *)

val add_txn : t -> Txn.t -> unit
(** Raises [Invalid_argument] if a transaction of that name exists. *)

val remove_txn : t -> string -> unit
(** By name; raises [Invalid_argument] if absent. *)

val replace_txn : t -> string -> Txn.t -> unit
(** Replaces the named transaction in place (keeping its position). The
    replacement may carry a different name as long as it collides with
    no other transaction. Raises [Invalid_argument] if the named
    transaction is absent or the new name collides. *)

(** {1 Deciding} *)

type verdict =
  | Safe
  | Unsafe of Multisite.unsafe_reason
      (** Indices refer to the current {!system} snapshot. *)
  | Unknown of string
      (** An undecided pair within budget, or cycle-enumeration
          exhaustion ({!Multisite.exhaustion}) — never a hang. *)

type outcome = {
  verdict : verdict;
  pairs_total : int;  (** Conflicting pairs examined. *)
  pairs_reused : int;  (** Served by the pair-verdict store. *)
  pairs_redecided : int;  (** Pair pipeline runs this call. *)
  cycles_total : int;  (** Conflict-graph cycles examined. *)
  cycles_reused : int;  (** B_c verdicts reused from earlier calls. *)
  cycles_rejudged : int;  (** B_c graphs rebuilt and re-judged. *)
  seconds : float;
}

val decide_delta : ?budget:Distlock_engine.Budget.t -> t -> outcome
(** Decide the current system, reusing every pair verdict, cycle list,
    and B_c verdict whose inputs are untouched since the last call.
    Semantically identical to a from-scratch {!Decision.decide} /
    {!Multisite.decide} on {!system} (the qcheck mutation property in
    the test suite pins this); an empty or single-transaction session
    is trivially safe. An unsafe pair short-circuits: later pairs are
    neither examined nor counted. *)
