open Distlock_txn

type strategy = Insertion | Two_phase | Serialize

type option_report = {
  strategy : strategy;
  system : System.t;
  concurrency_loss : int;
}

let strategy_name = function
  | Insertion -> "precedence insertion"
  | Two_phase -> "two-phase conversion"
  | Serialize -> "full serialization"

let totalize txn =
  let ext = Distlock_order.Poset.linearize (Txn.order txn) in
  Txn.along txn ext

let advise sys =
  if System.num_txns sys <> 2 then
    invalid_arg "Advisor.advise: not a two-transaction system";
  let db = System.db sys in
  let t1, t2 = System.pair sys in
  let verified_safe candidate =
    (* Theorem 1 suffices for every strategy here: insertion targets
       strong connectivity directly; strong 2PL and identical total orders
       are not guaranteed to make D strongly connected, so fall back to
       the exact two-site test / Lemma 1 oracle via the dispatcher. *)
    match Safety.decide_pair candidate with
    | Safety.Safe _ -> true
    | Safety.Unsafe _ | Safety.Unknown _ -> false
  in
  let options = ref [] in
  (match Repair.make_safe sys with
  | Some (sys', ins) when ins <> [] ->
      options :=
        {
          strategy = Insertion;
          system = sys';
          concurrency_loss = Repair.concurrency_loss ~before:sys ~after:sys';
        }
        :: !options
  | _ -> ());
  (match (Policy.make_two_phase t1, Policy.make_two_phase t2) with
  | Some t1', Some t2' ->
      let sys' = System.make db [ t1'; t2' ] in
      if verified_safe sys' then
        options :=
          {
            strategy = Two_phase;
            system = sys';
            concurrency_loss = Repair.concurrency_loss ~before:sys ~after:sys';
          }
          :: !options
  | _ -> ());
  (let sys' = System.make db [ totalize t1; totalize t2 ] in
   (* Totalizing each transaction removes all intra-transaction
      concurrency; it helps only when the resulting pictures happen to be
      safe, so verify before offering. *)
   if verified_safe sys' then
     options :=
       {
         strategy = Serialize;
         system = sys';
         concurrency_loss = Repair.concurrency_loss ~before:sys ~after:sys';
       }
       :: !options);
  List.sort
    (fun a b -> compare a.concurrency_loss b.concurrency_loss)
    !options
