open Distlock_txn

(** Theorem 2: for transactions distributed over at most two sites,
    [{T1,T2}] is safe iff [D(T1,T2)] is strongly connected — with a
    certificate of unsafety in the negative case, and in O(n²) overall
    (Corollary 1). *)

type verdict = Safe | Unsafe of Certificate.t

val decide : System.t -> verdict
(** Raises [Invalid_argument] if the system does not have exactly two
    transactions or uses more than two sites (Theorem 2's hypothesis; use
    {!Safety.decide_pair} for the general dispatcher). *)

val is_safe : System.t -> bool

val decide_connectivity_only : System.t -> bool
(** The bare O(n²) test of Corollary 1 — strong connectivity of
    [D(T1,T2)] — without certificate construction. Used by the scaling
    benchmarks. *)
