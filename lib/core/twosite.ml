open Distlock_txn

type verdict = Safe | Unsafe of Certificate.t

let check_hypothesis sys =
  if System.num_txns sys <> 2 then
    invalid_arg "Twosite.decide: not a two-transaction system";
  match System.sites_used sys with
  | [] | [ _ ] | [ _; _ ] -> ()
  | sites ->
      invalid_arg
        (Printf.sprintf "Twosite.decide: system uses %d sites (at most two \
                         allowed by Theorem 2)"
           (List.length sites))

let decide sys =
  check_hypothesis sys;
  let d = Dgraph.build_pair sys in
  if Dgraph.num_vertices d < 2 || Dgraph.is_strongly_connected d then Safe
  else begin
    (* Theorem 2's only-if direction: any dominator closes (Lemma 3) and
       yields a certificate. *)
    let x =
      match Distlock_graph.Dominator.find (Dgraph.graph d) with
      | Some x -> x
      | None -> assert false (* not strongly connected -> dominator exists *)
    in
    let dominator = Dgraph.entity_set d x in
    match Closure.close sys ~dominator with
    | Closure.Failed _ ->
        (* Impossible on two sites by Lemma 3. *)
        failwith "Twosite.decide: closure failed on a two-site system"
    | Closure.Closed closed -> (
        match Certificate.construct ~original:sys ~closed ~dominator with
        | Ok cert -> Unsafe cert
        | Error msg -> failwith ("Twosite.decide: " ^ msg))
  end

let is_safe sys = match decide sys with Safe -> true | Unsafe _ -> false

let decide_connectivity_only sys =
  let d = Dgraph.build_pair sys in
  Dgraph.num_vertices d < 2 || Dgraph.is_strongly_connected d
