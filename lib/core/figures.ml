open Distlock_txn

let fig1 () =
  let db = Database.create () in
  Database.add_all db [ ("x", 1); ("y", 1); ("w", 2); ("z", 2) ];
  (* T1 reads sites in the "natural" order, T2 in the opposite order at
     site 1 and with z surrounding w at site 2; the two site-chains of each
     transaction are unrelated, so the lock sections of different sites can
     interleave freely — the distributed pitfall of Fig 1. *)
  let t1 =
    Builder.make_exn db ~name:"T1"
      ~steps:
        [
          ("Lx", `Lock "x"); ("ux", `Update "x"); ("Ly", `Lock "y");
          ("uy", `Update "y"); ("Ux", `Unlock "x"); ("Uy", `Unlock "y");
          ("Lw", `Lock "w"); ("uw", `Update "w"); ("Uw", `Unlock "w");
          ("Lz", `Lock "z"); ("uz", `Update "z"); ("Uz", `Unlock "z");
        ]
      ~chains:
        [
          [ "Lx"; "ux"; "Ly"; "uy"; "Ux"; "Uy" ];
          [ "Lw"; "uw"; "Uw"; "Lz"; "uz"; "Uz" ];
        ]
      ()
  in
  let t2 =
    Builder.make_exn db ~name:"T2"
      ~steps:
        [
          ("Ly", `Lock "y"); ("uy", `Update "y"); ("Uy", `Unlock "y");
          ("Lx", `Lock "x"); ("ux", `Update "x"); ("Ux", `Unlock "x");
          ("Lz", `Lock "z"); ("uz", `Update "z"); ("Lw", `Lock "w");
          ("uw", `Update "w"); ("Uw", `Unlock "w"); ("Uz", `Unlock "z");
        ]
      ~chains:
        [
          [ "Ly"; "uy"; "Uy"; "Lx"; "ux"; "Ux" ];
          [ "Lz"; "uz"; "Lw"; "uw"; "Uw"; "Uz" ];
        ]
      ()
  in
  System.make db [ t1; t2 ]

let fig2 () =
  let db = Database.create () in
  Database.add_all db [ ("x", 1); ("y", 1); ("z", 1) ];
  (* t1 is the axis of Fig 2 verbatim: Lx Ly x y Ux Uy Lz z Uz. *)
  let t1 =
    Builder.total db ~name:"t1"
      [
        `Lock "x"; `Lock "y"; `Update "x"; `Update "y"; `Unlock "x";
        `Unlock "y"; `Lock "z"; `Update "z"; `Unlock "z";
      ]
  in
  let t2 =
    Builder.total db ~name:"t2"
      [
        `Lock "z"; `Update "z"; `Unlock "z"; `Lock "y"; `Update "y";
        `Unlock "y"; `Lock "x"; `Update "x"; `Unlock "x";
      ]
  in
  System.make db [ t1; t2 ]

let fig3 () =
  let db = Database.create () in
  Database.add_all db [ ("x", 1); ("y", 1); ("z", 2) ];
  (* Site-1 steps are chained (per-site totality); the z-steps at site 2
     are concurrent to everything else. D(T1,T2) = x <-> y with z
     isolated: not strongly connected, so the system is unsafe (Theorem 2)
     — yet some of its pictures are safe (Lemma 1, tested). *)
  let t1 =
    Builder.make_exn db ~name:"T1"
      ~steps:
        [
          ("Ly", `Lock "y"); ("Lx", `Lock "x"); ("Uy", `Unlock "y");
          ("Ux", `Unlock "x"); ("Lz", `Lock "z"); ("Uz", `Unlock "z");
        ]
      ~chains:[ [ "Ly"; "Lx"; "Uy"; "Ux" ]; [ "Lz"; "Uz" ] ]
      ()
  in
  let t2 =
    Builder.make_exn db ~name:"T2"
      ~steps:
        [
          ("Lx", `Lock "x"); ("Ly", `Lock "y"); ("Ux", `Unlock "x");
          ("Uy", `Unlock "y"); ("Lz", `Lock "z"); ("Uz", `Unlock "z");
        ]
      ~chains:[ [ "Lx"; "Ly"; "Ux"; "Uy" ]; [ "Lz"; "Uz" ] ]
      ()
  in
  System.make db [ t1; t2 ]

let fig5 () =
  let db = Database.create () in
  Database.add_all db [ ("x1", 1); ("x2", 2); ("y1", 3); ("y2", 4) ];
  (* Each entity on its own site, so the only intra-transaction
     precedences needed are the explicit arcs below (all lock -> unlock,
     hence no transitive surprises). The skeleton realizes
     D = { x1 <-> x2, y1 <-> y2, x1 -> y1, x2 -> y2 }, whose only
     dominator is {x1, x2}; the extra arcs (Ly1 < Ux1, Ly2 < Ux2 in T1 and
     Lx2 < Uy1, Lx1 < Uy2 in T2) make the closure of that dominator demand
     both Ux2 < Ux1 and Ux1 < Ux2 — a contradiction, so no certificate of
     unsafety exists and the system is in fact safe. *)
  let steps =
    [
      ("Lx1", `Lock "x1"); ("Ux1", `Unlock "x1");
      ("Lx2", `Lock "x2"); ("Ux2", `Unlock "x2");
      ("Ly1", `Lock "y1"); ("Uy1", `Unlock "y1");
      ("Ly2", `Lock "y2"); ("Uy2", `Unlock "y2");
    ]
  in
  let pair_arcs = [ ("Lx1", "Ux1"); ("Lx2", "Ux2"); ("Ly1", "Uy1"); ("Ly2", "Uy2") ] in
  let t1 =
    Builder.make_exn db ~name:"T1" ~steps
      ~arcs:
        (pair_arcs
        @ [
            (* D skeleton, first conditions of Definition 1 *)
            ("Lx1", "Ux2"); ("Lx2", "Ux1"); ("Ly1", "Uy2"); ("Ly2", "Uy1");
            ("Lx1", "Uy1"); ("Lx2", "Uy2");
            (* closure triggers *)
            ("Ly1", "Ux1"); ("Ly2", "Ux2");
          ])
      ()
  in
  let t2 =
    Builder.make_exn db ~name:"T2" ~steps
      ~arcs:
        (pair_arcs
        @ [
            (* D skeleton, second conditions of Definition 1 *)
            ("Lx2", "Ux1"); ("Lx1", "Ux2"); ("Ly2", "Uy1"); ("Ly1", "Uy2");
            ("Ly1", "Ux1"); ("Ly2", "Ux2");
            (* closure triggers *)
            ("Lx2", "Uy1"); ("Lx1", "Uy2");
          ])
      ()
  in
  System.make db [ t1; t2 ]

let all () =
  [ ("fig1", fig1 ()); ("fig2", fig2 ()); ("fig3", fig3 ()); ("fig5", fig5 ()) ]
