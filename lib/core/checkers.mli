open Distlock_txn
open Distlock_sched

(** The paper's decision procedures as first-class engine checkers.

    Each stage follows the common [Distlock_engine.Checker] signature:
    an applicability predicate, a cost class, and a budgeted run function
    returning a structured result with provenance — replacing the
    hard-wired if/else cascade that used to live in [Safety.decide_pair].

    Stage order in {!pair_checkers} (cheapest and strongest first):

    + {!trivial} — fewer than two commonly locked entities (always safe);
    + {!theorem1} — strong connectivity of [D(T1,T2)] (sufficient, any
      number of sites);
    + {!twosite} — Theorem 2, exact on at most two sites, certificates
      of unsafety via the dominator closure;
    + {!proposition1} — exact for totally ordered pairs on any number of
      sites: the single picture either separates or it does not;
    + {!corollary2} — the dominator-closure sweep; a closing dominator
      certifies unsafety. Sweep failures (too many dominators,
      certificate construction errors) surface as stage errors instead
      of being silently treated as "no dominator";
    + {!lemma1} — the exhaustive extension-pair oracle, capped by the
      budget's step allowance (default 2,000,000 pictures). *)

type evidence =
  | Certificate of Certificate.t
      (** Dominator-closure construction (Theorem 2 / Corollary 2). *)
  | Counterexample of Schedule.t
      (** A legal non-serializable schedule found geometrically. *)

val schedule_of_evidence : evidence -> Schedule.t

type t = (System.t, evidence) Distlock_engine.Checker.t

val trivial : t

val theorem1 : t

val twosite : t

val proposition1 : t

val corollary2 : t

val lemma1 : t

val pair_checkers : t list
(** The staged pipeline for two-transaction systems, in the order
    above. *)

val state_graph_result :
  counterexample:(Schedule.t -> 'ev) ->
  Distlock_engine.Budget.meter ->
  System.t ->
  'ev Distlock_engine.Checker.stage_result
(** Shared run function of the state-graph oracle stages (the pair stage
    here and the multi-transaction fallback in [Decision]): runs
    {!Distlock_sched.Stategraph.decide} under the meter's step allowance
    and wraps the verdict in an [Annotated] carrying the collapse
    statistics ([states], [dup_hits], [exhausted]). *)
