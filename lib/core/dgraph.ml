open Distlock_txn
open Distlock_graph

type t = {
  graph : Digraph.t;
  entities : Database.entity array;
  index : (Database.entity, int) Hashtbl.t;
}

let build sys i j =
  let ti = System.txn sys i and tj = System.txn sys j in
  let common = Array.of_list (System.common_locked sys i j) in
  let k = Array.length common in
  let index = Hashtbl.create k in
  Array.iteri (fun v e -> Hashtbl.replace index e v) common;
  let g = Digraph.create k in
  let lock_i = Array.map (fun e -> Option.get (Txn.lock_of ti e)) common in
  let unlock_i = Array.map (fun e -> Option.get (Txn.unlock_of ti e)) common in
  let lock_j = Array.map (fun e -> Option.get (Txn.lock_of tj e)) common in
  let unlock_j = Array.map (fun e -> Option.get (Txn.unlock_of tj e)) common in
  for a = 0 to k - 1 do
    for b = 0 to k - 1 do
      if a <> b then
        (* (a,b): Lx_a precedes Uy_b in Ti, and Ly_b precedes Ux_a in Tj. *)
        if
          Txn.precedes ti lock_i.(a) unlock_i.(b)
          && Txn.precedes tj lock_j.(b) unlock_j.(a)
        then Digraph.add_arc g a b
    done
  done;
  { graph = g; entities = common; index }

let build_pair sys =
  if System.num_txns sys <> 2 then
    invalid_arg "Dgraph.build_pair: not a two-transaction system";
  build sys 0 1

let graph t = t.graph

let entities t = Array.copy t.entities

let vertex_of t e = Hashtbl.find_opt t.index e

let num_vertices t = Array.length t.entities

let mem_arc t x y =
  match (vertex_of t x, vertex_of t y) with
  | Some a, Some b -> Digraph.mem_arc t.graph a b
  | _ -> false

let is_strongly_connected t = Scc.is_strongly_connected t.graph

let dominators ?limit t = Dominator.enumerate ?limit t.graph

let entity_set t s = List.map (fun v -> t.entities.(v)) (Bitset.elements s)

let pp db ppf t =
  Format.fprintf ppf "@[<v>D-graph on {%s}:@,"
    (String.concat ", "
       (Array.to_list (Array.map (Database.name db) t.entities)));
  List.iter
    (fun (a, b) ->
      Format.fprintf ppf "  %s -> %s@,"
        (Database.name db t.entities.(a))
        (Database.name db t.entities.(b)))
    (Digraph.arcs t.graph);
  Format.fprintf ppf "@]"
