open Distlock_txn

(** Theorem 1: if [D(T1,T2)] is strongly connected then [{T1,T2}] is safe
    — for any number of sites. The condition is *sufficient only*: Fig 5
    exhibits a safe four-site system whose [D] is not strongly connected
    (see {!Examples.fig5} and experiment E5). *)

type verdict =
  | Safe_strongly_connected
      (** [D] strongly connected (or fewer than two common entities):
          guaranteed safe. *)
  | Unknown_not_strongly_connected
      (** The test is inconclusive; safety must be decided by Theorem 2
          (two sites) or exhaustively. *)

val check : System.t -> verdict
(** For a two-transaction system. Fewer than two commonly locked entities
    also yields [Safe_strongly_connected]: with at most one conflicting
    entity no schedule can separate two rectangles. *)

val guarantees_safe : System.t -> bool
