open Distlock_txn

(** The full safety-decision service: the staged pair pipeline of
    {!Checkers} extended with the Proposition 2 multi-transaction
    criterion, wired into a [Distlock_engine.Engine] instance with a
    fingerprint-keyed LRU verdict cache, batch deduplication, and
    per-stage instrumentation.

    This is what the CLI, the benchmarks, and the simulator consult; it
    subsumes calling {!Safety.decide_pair} / {!Multisite.decide}
    directly, which remain as thin stateless compatibility wrappers. *)

type evidence =
  | Pair of Checkers.evidence
      (** Two-transaction unsafety: certificate or counterexample. *)
  | Multi of Multisite.unsafe_reason
      (** Proposition 2: an unsafe conflicting pair, or a conflict-graph
          cycle with acyclic [B_c]. *)

val proposition2_with :
  ?pair_cache:bool Distlock_engine.Lru_sharded.t ->
  ?stats:Distlock_engine.Stats.t ->
  unit ->
  (System.t, evidence) Distlock_engine.Checker.t
(** The Proposition 2 stage over an optional pair-verdict store:
    applicable to any system that is not a pair; runs
    {!Multisite.decide_with} under the stage budget, resolving each
    conflicting pair through [pair_cache] (keyed by
    {!System.pair_fingerprint}) when given, recording pair-cache
    hits/misses into [stats]. Cycle-enumeration exhaustion becomes an
    inconclusive [Pass] (never a hang); an undecided pair becomes a
    stage [Error], as before. *)

val proposition2 : (System.t, evidence) Distlock_engine.Checker.t
(** [proposition2_with ()] — the uncached variant. *)

val checkers : (System.t, evidence) Distlock_engine.Checker.t list
(** {!Checkers.pair_checkers} (with evidence wrapped in {!Pair})
    followed by {!proposition2}. *)

type t = (System.t, evidence) Distlock_engine.Engine.t

val create :
  ?cache_capacity:int ->
  ?pair_cache_capacity:int ->
  ?budget:Distlock_engine.Budget.t ->
  unit ->
  t
(** A fresh engine keyed by {!System.fingerprint}. [cache_capacity]
    (default [1024]) bounds the LRU verdict cache; [0] disables caching
    entirely. [pair_cache_capacity] (default [4096]) bounds the
    pair-fingerprint verdict store consulted by the Proposition 2 stage
    ({!proposition2_with}); [0] disables it, making every pair verdict
    a fresh pipeline run. [budget] (default unlimited) applies to every
    decision unless overridden per call. Decided verdicts are cached;
    [Unknown] outcomes never are, since they depend on the budget in
    force. *)

val decide :
  ?budget:Distlock_engine.Budget.t ->
  t ->
  System.t ->
  evidence Distlock_engine.Outcome.t

val decide_batch :
  ?budget:Distlock_engine.Budget.t ->
  ?jobs:int ->
  t ->
  System.t list ->
  evidence Distlock_engine.Outcome.t list
  * Distlock_engine.Engine.batch_report
(** Deduplicates by fingerprint within the batch and against the cache;
    the report carries hit counts, per-procedure tallies, and wall time.
    [jobs] (default [1]) fans distinct systems out to that many domains;
    outcomes and report totals are identical for every [jobs]. *)

val explain :
  t ->
  System.t ->
  evidence Distlock_engine.Outcome.t ->
  Distlock_engine.Explain.t
(** The typed provenance record for an outcome this engine produced:
    every stage of the pipeline with status and timing (including
    [inapplicable] / [not-reached] stages), cache and pair-cache
    disposition, and state-graph oracle statistics when that stage ran.
    Pure post-processing of the recorded trace. *)

val decide_explained :
  ?budget:Distlock_engine.Budget.t ->
  t ->
  System.t ->
  evidence Distlock_engine.Outcome.t * Distlock_engine.Explain.t
(** {!decide} followed by {!explain}. *)

val stats : t -> Distlock_engine.Stats.t

val describe_multi : System.t -> Multisite.unsafe_reason -> string
(** Human-readable rendering with transaction names, e.g.
    ["transactions T1 and T3 form an unsafe pair"]. *)

val schedule_of_evidence : evidence -> Distlock_sched.Schedule.t option
(** The witness schedule when the evidence carries one ([Pair]). *)
