open Distlock_txn
open Distlock_sat
open Distlock_graph

type t = {
  system : System.t;
  formula : Cnf.t;
  dgraph : Dgraph.t;
  upper : Database.entity list; (* cyclic order: u, dummies, c_ij *)
  w_copies : Database.entity array array; (* per var: copies of w_k, primary first *)
  w_neg : Database.entity array; (* per var: w'_k *)
  middle_components : (int * [ `Pos | `Neg ]) array;
      (* one entry per middle SCC: (variable, polarity) *)
}

let system t = t.system

let formula t = t.formula

let dgraph t = t.dgraph

let num_entities t = Database.num_entities (System.db t.system)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let encode f =
  if not (Cnf.is_restricted f) then
    invalid_arg "Reduction.encode: formula is not in restricted form";
  if f.Cnf.num_vars = 0 || f.Cnf.clauses = [] then
    invalid_arg "Reduction.encode: need at least one variable and one clause";
  let db = Database.create () in
  let next_site = ref 0 in
  let entity name =
    incr next_site;
    Database.add db ~name ~site:!next_site
  in
  (* Upper cycle: u, then per clause literal c{i}_{j}, a dummy before each
     named node and one closing dummy before u. *)
  let u = entity "u" in
  let clause_nodes =
    List.mapi
      (fun i clause ->
        Array.of_list
          (List.mapi (fun j _ -> entity (Printf.sprintf "c%d_%d" i j)) clause))
      f.Cnf.clauses
  in
  let upper_named = u :: List.concat_map Array.to_list clause_nodes in
  let upper =
    (* interleave dummies: n1 d1 n2 d2 ... nk dk (cyclically n1 follows dk) *)
    List.concat
      (List.mapi
         (fun idx n -> [ n; entity (Printf.sprintf "ud%d" idx) ])
         upper_named)
  in
  (* Middle row. *)
  let occ = Cnf.occurrences f in
  let w_copies =
    Array.init f.Cnf.num_vars (fun k ->
        let p, _ = occ.(k) in
        Array.init (max 1 p) (fun c -> entity (Printf.sprintf "w%d_%d" k c)))
  in
  let w_neg =
    Array.init f.Cnf.num_vars (fun k -> entity (Printf.sprintf "wn%d" k))
  in
  (* Lower cycle: v, then z_k, z'_k with dummies. *)
  let v = entity "v" in
  let z = Array.init f.Cnf.num_vars (fun k -> entity (Printf.sprintf "z%d" k)) in
  let zn =
    Array.init f.Cnf.num_vars (fun k -> entity (Printf.sprintf "zn%d" k))
  in
  let lower_named =
    v
    :: List.concat
         (List.init f.Cnf.num_vars (fun k -> [ z.(k); zn.(k) ]))
  in
  let lower =
    List.concat
      (List.mapi
         (fun idx n -> [ n; entity (Printf.sprintf "ld%d" idx) ])
         lower_named)
  in
  (* Intended D arcs. *)
  let arcs = ref [] in
  let arc x y = arcs := (x, y) :: !arcs in
  let cycle nodes =
    let arr = Array.of_list nodes in
    let n = Array.length arr in
    for i = 0 to n - 1 do
      arc arr.(i) arr.((i + 1) mod n)
    done
  in
  cycle upper;
  cycle lower;
  let primaries =
    List.concat
      (List.init f.Cnf.num_vars (fun k -> [ w_copies.(k).(0); w_neg.(k) ]))
  in
  List.iter
    (fun m ->
      arc u m;
      arc m v)
    primaries;
  Array.iter
    (fun copies ->
      if Array.length copies = 2 then begin
        arc copies.(0) copies.(1);
        arc copies.(1) copies.(0)
      end)
    w_copies;
  let d_arcs = !arcs in
  (* Transactions: a lock/unlock pair per entity; skeleton precedences
     realize exactly the arcs of D (Definition 1); completion precedences
     (a)-(c) steer the closure procedure. All precedences in both
     transactions go from a lock step to an unlock step, so no transitive
     consequences arise and D is realized exactly (checked below). *)
  let entities = Database.entities db in
  let step_index = Hashtbl.create 64 in
  let steps =
    Array.of_list
      (List.concat_map
         (fun e ->
           Hashtbl.replace step_index (`L e) (2 * e);
           Hashtbl.replace step_index (`U e) ((2 * e) + 1);
           [ Step.lock e; Step.unlock e ])
         entities)
  in
  let labels =
    Array.map
      (fun (s : Step.t) ->
        (if Step.is_lock s then "L" else "U") ^ Database.name db s.Step.entity)
      steps
  in
  let l e = Hashtbl.find step_index (`L e)
  and un e = Hashtbl.find step_index (`U e) in
  let t1_arcs = ref [] and t2_arcs = ref [] in
  List.iter
    (fun e ->
      t1_arcs := (l e, un e) :: !t1_arcs;
      t2_arcs := (l e, un e) :: !t2_arcs)
    entities;
  List.iter
    (fun (x, y) ->
      (* arc (x,y) of D: Lx < Uy in T1 and Ly < Ux in T2 *)
      t1_arcs := (l x, un y) :: !t1_arcs;
      t2_arcs := (l y, un x) :: !t2_arcs)
    d_arcs;
  (* Completion (a): per variable. *)
  for k = 0 to f.Cnf.num_vars - 1 do
    let w0 = w_copies.(k).(0) in
    t1_arcs := (l z.(k), un w0) :: !t1_arcs;
    t1_arcs := (l zn.(k), un w_neg.(k)) :: !t1_arcs;
    t2_arcs := (l w0, un zn.(k)) :: !t2_arcs;
    t2_arcs := (l w_neg.(k), un z.(k)) :: !t2_arcs
  done;
  (* Completion (b)/(c): per clause literal, consuming a fresh w-copy per
     positive occurrence. *)
  let next_copy = Array.make f.Cnf.num_vars 0 in
  List.iteri
    (fun i clause ->
      let nodes = List.nth clause_nodes i in
      let len = Array.length nodes in
      List.iteri
        (fun j (lit : Cnf.literal) ->
          let m =
            if lit.Cnf.positive then begin
              let c = next_copy.(lit.Cnf.var) in
              next_copy.(lit.Cnf.var) <- c + 1;
              w_copies.(lit.Cnf.var).(c)
            end
            else w_neg.(lit.Cnf.var)
          in
          t1_arcs := (l m, un nodes.(j)) :: !t1_arcs;
          t2_arcs := (l nodes.((j + 1) mod len), un m) :: !t2_arcs)
        clause)
    f.Cnf.clauses;
  let make_txn name arcs =
    let order =
      match Distlock_order.Poset.of_arcs (Array.length steps) arcs with
      | Some p -> p
      | None -> assert false (* all arcs go lock -> unlock: acyclic *)
    in
    Txn.make ~name ~labels:(Array.copy labels) ~steps:(Array.copy steps) order
  in
  let sys =
    System.make db [ make_txn "T1(F)" !t1_arcs; make_txn "T2(F)" !t2_arcs ]
  in
  let dg = Dgraph.build_pair sys in
  (* Sanity: the realized D equals the intended gadget graph. *)
  let intended = Digraph.create (Database.num_entities db) in
  List.iter (fun (x, y) -> Digraph.add_arc intended x y) d_arcs;
  let realized = Digraph.create (Database.num_entities db) in
  let ents = Dgraph.entities dg in
  Digraph.iter_arcs (Dgraph.graph dg) (fun a b ->
      Digraph.add_arc realized ents.(a) ents.(b));
  if not (Digraph.equal intended realized) then
    failwith "Reduction.encode: realized D differs from the gadget graph";
  let middle_components =
    Array.of_list
      (List.concat
         (List.init f.Cnf.num_vars (fun k -> [ (k, `Pos); (k, `Neg) ])))
  in
  {
    system = sys;
    formula = f;
    dgraph = dg;
    upper;
    w_copies;
    w_neg;
    middle_components;
  }

let intended_digraph t =
  let g = Dgraph.graph t.dgraph in
  let ents = Dgraph.entities t.dgraph in
  let out = Digraph.create (num_entities t) in
  Digraph.iter_arcs g (fun a b -> Digraph.add_arc out ents.(a) ents.(b));
  (out, ents)

(* ------------------------------------------------------------------ *)
(* Dominators <-> assignments                                          *)

let component_entities t (k, pol) =
  match pol with
  | `Pos -> Array.to_list t.w_copies.(k)
  | `Neg -> [ t.w_neg.(k) ]

let dominator_of_assignment t a =
  if Array.length a <> t.formula.Cnf.num_vars then
    invalid_arg "Reduction.dominator_of_assignment: wrong assignment size";
  let middles =
    List.concat
      (List.init t.formula.Cnf.num_vars (fun k ->
           if a.(k) then component_entities t (k, `Pos)
           else component_entities t (k, `Neg)))
  in
  t.upper @ middles

let assignment_of_dominator t x =
  Array.init t.formula.Cnf.num_vars (fun k ->
      List.mem t.w_copies.(k).(0) x)

let middle_subsets t =
  let comps = Array.to_list t.middle_components in
  let rec subsets = function
    | [] -> [ [] ]
    | c :: rest ->
        let tails = subsets rest in
        tails @ List.map (fun s -> c :: s) tails
  in
  List.map
    (fun comps -> t.upper @ List.concat_map (component_entities t) comps)
    (subsets comps)

(* Lazy sweep: recurse over middle components without materializing the
   2^components subset list. *)
let decide_unsafe_by_closure t =
  let comps = Array.to_list t.middle_components in
  let try_dominator chosen =
    let dominator = t.upper @ List.concat_map (component_entities t) chosen in
    match Closure.close t.system ~dominator with
    | Closure.Closed closed -> Some (dominator, closed)
    | Closure.Failed _ -> None
    | exception Invalid_argument _ -> None
  in
  let rec search chosen = function
    | [] -> try_dominator chosen
    | c :: rest -> (
        match search (c :: chosen) rest with
        | Some r -> Some r
        | None -> search chosen rest)
  in
  search [] comps

let certificate_of_model t a =
  if not (Cnf.eval a t.formula) then Error "not a model of the formula"
  else begin
    let dominator = dominator_of_assignment t a in
    match Closure.close t.system ~dominator with
    | Closure.Failed _ ->
        Error "closure failed on the dominator of a satisfying assignment"
    | Closure.Closed closed ->
        Certificate.construct ~original:t.system ~closed ~dominator
  end

let sat_via_safety f =
  match Normalize.run f with
  | None -> false (* empty clause: unsatisfiable *)
  | Some { Normalize.formula = g; _ } ->
      if g.Cnf.clauses = [] then true (* vacuously satisfiable *)
      else if g.Cnf.num_vars = 0 then true
      else Option.is_some (decide_unsafe_by_closure (encode g))
