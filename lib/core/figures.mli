open Distlock_txn

(** The paper's worked examples, reconstructed as executable systems.

    The JCSS scan's figures are hand-drawn dags; we rebuild each from the
    surrounding prose and verify the properties the paper claims for it in
    the test suite (and in [examples/figure_gallery.ml]):

    - {!fig1}: a two-site, four-entity unsafe system with a
      non-serializable schedule (Fig 1).
    - {!fig2}: two totally ordered (centralized) transactions whose
      picture admits a path separating the [x]- and [z]-rectangles
      (Fig 2 / Proposition 1).
    - {!fig3}: a two-site system of genuinely partial orders that is
      unsafe even though one of its pictures is safe (Fig 3 / Lemma 1);
      [D(T1,T2)] has the two-element dominator [{x,y}].
    - {!fig5}: the four-site counterexample: [D(T1,T2)] is not strongly
      connected — its only dominator is [{x1,x2}] — yet the system is
      safe, because closing with respect to that dominator forces [Ux1]
      to both precede and follow [Ux2] (Fig 5). *)

val fig1 : unit -> System.t

val fig2 : unit -> System.t

val fig3 : unit -> System.t

val fig5 : unit -> System.t

val all : unit -> (string * System.t) list
