open Distlock_txn
open Distlock_sched
open Distlock_geometry

type verdict =
  | Safe
  | Unsafe of Schedule.t
  | Exhausted of { examined : int; limit : int }

(* Progress counters for the exhaustive oracles, so a long run is
   legible from the outside ([--metrics] snapshots show the census
   advancing). A counter bump is one atomic increment — noise even at
   tens of millions of iterations. The handle is fetched once per run
   through the registry's mutex-guarded get-or-create — not through a
   shared [lazy], which raises [RacyLazy] when forced from several
   domains at once, and these oracles now run on pool workers. *)
let m_schedules () =
  Distlock_obs.Registry.counter Distlock_obs.Obs.global
    ~help:"Legal schedules examined by the brute-force oracle"
    "distlock_brute_schedules_examined_total"

let m_pictures () =
  Distlock_obs.Registry.counter Distlock_obs.Obs.global
    ~help:"Extension-pair pictures examined by the Lemma 1 oracle"
    "distlock_brute_pictures_examined_total"

exception Out_of_budget

let safe_by_schedules ?(limit = 20_000_000) sys =
  let examined = ref 0 in
  let progress = m_schedules () in
  match
    Enumerate.find_legal sys (fun h ->
        if !examined >= limit then raise Out_of_budget;
        incr examined;
        Distlock_obs.Metric.incr progress;
        not (Conflict.is_serializable sys h))
  with
  | Some h -> Unsafe h
  | None -> Safe
  | exception Out_of_budget -> Exhausted { examined = !examined; limit }

exception Found of Schedule.t

let safe_by_extensions ?(limit = 50_000_000) sys =
  let t1, t2 = System.pair sys in
  let examined = ref 0 in
  let progress = m_pictures () in
  try
    Distlock_order.Linext.iter (Txn.order t1) (fun ext1 ->
        let ext1 = Array.copy ext1 in
        Distlock_order.Linext.iter (Txn.order t2) (fun ext2 ->
            if !examined >= limit then raise Out_of_budget;
            incr examined;
            Distlock_obs.Metric.incr progress;
            let plane = Plane.of_extensions sys ext1 (Array.copy ext2) in
            match Separation.decide plane with
            | Separation.Safe -> ()
            | Separation.Unsafe { schedule; _ } -> raise (Found schedule)));
    Safe
  with
  | Found h -> Unsafe h
  | Out_of_budget -> Exhausted { examined = !examined; limit }

let safe_by_states ?(limit = 10_000_000) sys =
  match Stategraph.decide ~limit sys with
  | Stategraph.Safe, _ -> Safe
  | Stategraph.Unsafe h, _ -> Unsafe h
  | Stategraph.Exhausted { visited; limit }, _ ->
      Exhausted { examined = visited; limit }

let is_safe sys =
  match safe_by_states sys with
  | Safe -> true
  | Unsafe _ -> false
  | Exhausted { examined; _ } ->
      failwith
        (Printf.sprintf "Brute.is_safe: state budget exhausted after %d states"
           examined)

let probe_random rng ~trials sys =
  let rec go k =
    if k = 0 then None
    else
      match Enumerate.random_legal rng sys with
      | None -> go (k - 1)
      | Some h -> if Conflict.is_serializable sys h then go (k - 1) else Some h
  in
  go trials
