type verdict = Safe_strongly_connected | Unknown_not_strongly_connected

let check sys =
  let d = Dgraph.build_pair sys in
  if Dgraph.num_vertices d < 2 || Dgraph.is_strongly_connected d then
    Safe_strongly_connected
  else Unknown_not_strongly_connected

let guarantees_safe sys = check sys = Safe_strongly_connected
