open Distlock_txn
open Distlock_sched

(** Top-level safety dispatcher for two-transaction systems.

    Picks the strongest applicable result: Theorem 1 (sufficiency, any
    sites), Theorem 2 (exact, two sites), Corollary 2 (dominator closure
    sweep, any sites), and finally the exponential oracle — mirroring the
    paper's structure, where polynomial certainty is available up to two
    sites and the general problem is coNP-complete (Theorem 3). *)

type unsafety_evidence =
  | Certificate of Certificate.t
      (** Dominator-closure construction (Theorem 2 / Corollary 2). *)
  | Counterexample of Schedule.t  (** Found by exhaustive search. *)

type verdict =
  | Safe of string  (** Why: which theorem concluded safety. *)
  | Unsafe of unsafety_evidence
  | Unknown of string
      (** More than two sites, no dominator closes, and the system exceeds
          the exhaustive-search budget. *)

val decide_pair : ?exhaustive_budget:int -> System.t -> verdict
(** [exhaustive_budget] (default [2_000_000]) caps the number of schedules
    the final fallback may enumerate. *)

val is_safe_exn : System.t -> bool
(** Like {!decide_pair} but raises [Failure] on [Unknown]. *)

val schedule_of_evidence : unsafety_evidence -> Schedule.t
