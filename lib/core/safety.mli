open Distlock_txn
open Distlock_sched

(** Top-level safety dispatcher for two-transaction systems.

    Since the engine refactor this module is a thin compatibility shim:
    the staged cascade now lives in {!Checkers.pair_checkers} and runs
    through the generic [Distlock_engine] pipeline, which gives every
    verdict provenance (which theorem decided), per-stage timings, and
    explicit budget control. {!decide} exposes the full structured
    outcome; {!decide_pair} keeps the historical [verdict] API.

    Stage order: Theorem 1 (sufficiency, any sites), Theorem 2 (exact,
    two sites), Proposition 1 (exact for totally ordered pairs),
    Corollary 2 (dominator closure sweep, any sites), and finally the
    Lemma 1 exponential oracle — mirroring the paper's structure, where
    polynomial certainty is available up to two sites and the general
    problem is coNP-complete (Theorem 3). *)

type unsafety_evidence = Checkers.evidence =
  | Certificate of Certificate.t
      (** Dominator-closure construction (Theorem 2 / Corollary 2). *)
  | Counterexample of Schedule.t
      (** Found geometrically (Proposition 1 / Lemma 1). *)

type verdict =
  | Safe of string  (** Why: which theorem concluded safety. *)
  | Unsafe of unsafety_evidence
  | Unknown of string
      (** No stage decided within budget — e.g. more than two sites, no
          dominator closes, and the system exceeds the exhaustive-search
          budget; or an internal stage error (which the outcome's trace
          records instead of swallowing). *)

val decide :
  ?budget:Distlock_engine.Budget.t ->
  System.t ->
  Checkers.evidence Distlock_engine.Outcome.t
(** The full engine outcome: verdict plus provenance, per-stage trace,
    and elapsed time. Raises [Invalid_argument] unless the system has
    exactly two transactions. Stateless — no verdict cache; use
    {!Decision} for the cached, batched service. *)

val verdict_of_outcome : Checkers.evidence Distlock_engine.Outcome.t -> verdict

val decide_pair : ?exhaustive_budget:int -> System.t -> verdict
(** Historical API. [exhaustive_budget] (default [2_000_000]) caps the
    number of extension pairs the final Lemma 1 fallback may enumerate,
    via {!Distlock_engine.Budget.of_steps}. *)

val is_safe_exn : ?budget:Distlock_engine.Budget.t -> System.t -> bool
(** Like {!decide} but raises [Failure] on [Unknown]. *)

val schedule_of_evidence : unsafety_evidence -> Schedule.t
