open Distlock_txn
open Distlock_sched

(** Brute-force safety oracles.

    Three independent exponential deciders used to validate the
    polynomial tests and each other:

    - {!safe_by_states} walks the memoized execution-state graph
      ({!Distlock_sched.Stategraph}) — exponentially fewer nodes than
      schedules on systems with real interleaving freedom (works for any
      number of transactions);
    - {!safe_by_schedules} enumerates every legal schedule of the system
      and conflict-checks each (works for any number of transactions);
    - {!safe_by_extensions} applies Lemma 1 directly: enumerate all pairs
      of linear extensions and run the geometric Proposition 1 test on
      each picture (two transactions only).

    None of them escapes by exception when a search budget runs out:
    exhaustion is the typed {!Exhausted} verdict. *)

type verdict =
  | Safe
  | Unsafe of Schedule.t  (** A legal non-serializable schedule. *)
  | Exhausted of { examined : int; limit : int }
      (** The search budget ran out after [examined] units (states,
          schedules, or pictures, per oracle) without covering the
          space — not a verdict on the system. *)

val safe_by_states : ?limit:int -> System.t -> verdict
(** State-graph reachability with memoization; [limit] (default
    [10_000_000]) bounds distinct states visited. *)

val safe_by_schedules : ?limit:int -> System.t -> verdict
(** Returns {!Exhausted} after examining [limit] (default [20_000_000])
    schedules without exhausting the space. *)

val safe_by_extensions : ?limit:int -> System.t -> verdict
(** Two-transaction systems. The returned schedule is the separating path
    of the first unsafe picture found. Returns {!Exhausted} after
    examining [limit] extension pairs. The default, [50_000_000], bounds
    worst-case runtime to minutes rather than letting a pair of wide
    partial orders (the extension count is a product of factorials) run
    unbounded; pass an explicit [limit] — including [max_int] — to raise
    it. *)

val is_safe : System.t -> bool
(** [safe_by_states] with defaults; raises [Failure] on {!Exhausted}. *)

val probe_random :
  Random.State.t -> trials:int -> System.t -> Schedule.t option
(** Randomized refutation: sample random legal schedules and return the
    first non-serializable one. [None] after [trials] clean samples — not
    a proof of safety, but a cheap falsifier for systems too large to
    enumerate (used on the big Theorem 3 gadgets). *)
