open Distlock_txn
open Distlock_sched
module E = Distlock_engine

type evidence =
  | Certificate of Certificate.t
  | Counterexample of Schedule.t

let schedule_of_evidence = function
  | Certificate c -> c.Certificate.schedule
  | Counterexample h -> h

type t = (System.t, evidence) E.Checker.t

let is_pair sys = System.num_txns sys = 2

let trivial =
  E.Checker.make ~name:"trivial" ~procedure:E.Checker.Trivial
    ~cost:E.Checker.Polynomial ~applicable:is_pair
    ~run:(fun _ sys ->
      if Dgraph.num_vertices (Dgraph.build_pair sys) < 2 then
        E.Checker.Safe "fewer than two commonly locked entities"
      else E.Checker.Pass "two or more commonly locked entities")

let theorem1 =
  E.Checker.make ~name:"theorem1" ~procedure:E.Checker.Theorem_1
    ~cost:E.Checker.Polynomial ~applicable:is_pair
    ~run:(fun _ sys ->
      if Dgraph.is_strongly_connected (Dgraph.build_pair sys) then
        E.Checker.Safe "Theorem 1: D(T1,T2) strongly connected"
      else E.Checker.Pass "D(T1,T2) not strongly connected")

let twosite =
  E.Checker.make ~name:"two-site" ~procedure:E.Checker.Theorem_2
    ~cost:E.Checker.Polynomial
    ~applicable:(fun sys ->
      is_pair sys && List.length (System.sites_used sys) <= 2)
    ~run:(fun _ sys ->
      match Twosite.decide sys with
      | Twosite.Safe ->
          E.Checker.Safe "Theorem 2 (unreachable: D not strongly connected)"
      | Twosite.Unsafe cert ->
          E.Checker.Unsafe
            ( "Theorem 2: certificate from the dominator closure",
              Certificate cert ))

let proposition1 =
  E.Checker.make ~name:"geometric" ~procedure:E.Checker.Proposition_1
    ~cost:E.Checker.Polynomial
    ~applicable:(fun sys ->
      is_pair sys
      &&
      let t1, t2 = System.pair sys in
      Txn.is_total t1 && Txn.is_total t2)
    ~run:(fun _ sys ->
      let plane = Distlock_geometry.Plane.make sys in
      match Distlock_geometry.Separation.decide plane with
      | Distlock_geometry.Separation.Safe ->
          E.Checker.Safe
            "Proposition 1: the unique picture admits no separating curve"
      | Distlock_geometry.Separation.Unsafe { schedule; _ } ->
          E.Checker.Unsafe
            ( "Proposition 1: a separating monotone curve exists",
              Counterexample schedule ))

let corollary2 =
  E.Checker.make ~name:"closure" ~procedure:E.Checker.Corollary_2
    ~cost:E.Checker.Exponential ~applicable:is_pair
    ~run:(fun _ sys ->
      match Closure.first_unsafe_dominator sys with
      | Some (dominator, closed) -> (
          match Certificate.construct ~original:sys ~closed ~dominator with
          | Ok cert ->
              E.Checker.Unsafe
                ( "Corollary 2: a dominator of D(T1,T2) closes",
                  Certificate cert )
          | Error msg ->
              E.Checker.Error
                ("Corollary 2: certificate construction failed: " ^ msg))
      | None -> E.Checker.Pass "no dominator of D(T1,T2) closes"
      | exception Failure msg -> E.Checker.Error msg)

(* Runs the oracle directly (not through [Brute.safe_by_states]) so the
   collapse statistics survive: they ride out on an [Annotated] wrapper
   and surface in [check --explain] and the stage span. *)
let state_graph_result ~counterexample meter sys =
  let limit = E.Budget.step_allowance meter ~default:2_000_000 in
  let outcome, stats = Distlock_sched.Stategraph.decide ~limit sys in
  let annotate exhausted result =
    E.Checker.Annotated
      ( [
          Distlock_obs.Attr.int "states" stats.Stategraph.states;
          Distlock_obs.Attr.int "dup_hits" stats.Stategraph.dup_hits;
          Distlock_obs.Attr.bool "exhausted" exhausted;
        ],
        result )
  in
  match outcome with
  | Stategraph.Safe ->
      annotate false
        (E.Checker.Safe
           "state graph: no reachable execution is non-serializable")
  | Stategraph.Unsafe h ->
      annotate false
        (E.Checker.Unsafe
           ( "state graph: a reachable complete state has a cyclic conflict \
              digraph",
             counterexample h ))
  | Stategraph.Exhausted { visited; limit } ->
      annotate true
        (E.Checker.Pass
           (Printf.sprintf
              "state budget exhausted after %d of %d allowed states" visited
              limit))

let state_graph =
  E.Checker.make ~name:"state-graph" ~procedure:E.Checker.State_graph
    ~cost:E.Checker.Exponential ~applicable:is_pair
    ~run:(state_graph_result ~counterexample:(fun h -> Counterexample h))

let lemma1 =
  E.Checker.make ~name:"exhaustive" ~procedure:E.Checker.Lemma_1
    ~cost:E.Checker.Exponential ~applicable:is_pair
    ~run:(fun meter sys ->
      let limit = E.Budget.step_allowance meter ~default:2_000_000 in
      match Brute.safe_by_extensions ~limit sys with
      | Brute.Safe ->
          E.Checker.Safe "Lemma 1: exhaustive check of all extension pairs"
      | Brute.Unsafe h ->
          E.Checker.Unsafe
            ( "Lemma 1: some picture admits a separating curve",
              Counterexample h )
      | Brute.Exhausted { examined; limit } ->
          E.Checker.Pass
            (Printf.sprintf
               "picture budget exhausted after %d of %d allowed extension \
                pairs"
               examined limit))

let pair_checkers =
  [ trivial; theorem1; twosite; proposition1; corollary2; state_graph; lemma1 ]
