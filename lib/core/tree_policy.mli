open Distlock_txn

(** The tree (hierarchical) locking protocol of Silberschatz and Kedem
    [12], the paper's canonical example of a safe non-two-phase policy
    ("more relaxed methods are known to work on specially structured
    databases"), lifted to distributed transactions in the spirit of
    Section 6: "previous step" becomes "preceding step in the partial
    order".

    Fix a forest over the entities. A transaction follows the (strong,
    all-extensions) protocol when there is a distinguished first entity
    [x0] such that:

    - [Lx0] precedes every other lock step in the partial order, and
    - every other locked entity [x] has its forest parent [p] locked by
      the transaction, with [Lp < Lx < Up] in the partial order — so in
      every linear extension the parent is held when [x] is locked.

    Systems of such transactions over a common forest are safe even
    though they are not two-phase; the test suite validates this against
    the exhaustive oracle. *)

type forest

val forest : Database.t -> (string * string) list -> (forest, string) result
(** [forest db parent_pairs] builds a forest from [(child, parent)] name
    pairs; entities not mentioned are roots. Errors on unknown entities,
    duplicate children, or cycles. *)

val forest_exn : Database.t -> (string * string) list -> forest

val parent : forest -> Database.entity -> Database.entity option

val follows : forest -> Txn.t -> bool
(** Does the transaction follow the strong tree protocol? *)

val all_follow : forest -> System.t -> bool

val first_entity : forest -> Txn.t -> Database.entity option
(** The distinguished [x0], when the transaction follows the protocol and
    locks at least one entity. *)

val violations : forest -> Txn.t -> string list
(** Human-readable reasons the transaction breaks the protocol (empty iff
    {!follows}). *)

val random_protocol_txn :
  Random.State.t ->
  Database.t ->
  forest ->
  name:string ->
  ?subtree_size:int ->
  ?cross_prob:float ->
  unit ->
  Txn.t
(** A random well-formed transaction following the protocol: picks a
    random start entity, grows a random connected subtree of at most
    [subtree_size] (default 4) entities below it, locks parents before
    children (each child under its parent's section), and — like
    {!Txn_gen} — keeps per-site chains plus a [cross_prob] fraction of
    other cross-site precedences from a base linear order, never dropping
    the protocol's own arcs. *)
