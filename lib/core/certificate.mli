open Distlock_txn
open Distlock_sched

(** Certificates of unsafety (Theorem 2's constructive proof /
    Corollary 2).

    Given a system closed with respect to a dominator [X], the certificate
    is built exactly as in the paper: topologically sort the closed [T1]
    placing the [Ux] ([x ∈ X]) steps as early as possible, topologically
    sort the closed [T2] placing the [Lx] steps as late as possible
    (breaking ties among them by the first sort), and thread a monotone
    path through the resulting picture that separates the [X]-rectangles
    from the rest. The result is a legal, non-serializable schedule of the
    *original* system. *)

type t = {
  ext1 : int array;  (** Linear extension of (the closed, hence original) [T1]. *)
  ext2 : int array;
  schedule : Schedule.t;
  below : Database.entity list;
      (** Entities whose section [T1] finishes before [T2] starts. *)
  above : Database.entity list;
}

val construct :
  original:System.t ->
  closed:System.t ->
  dominator:Database.entity list ->
  (t, string) result
(** Fails (with a diagnostic) only if the inputs do not actually satisfy
    the closure conditions. On success the certificate is already
    verified. *)

val verify : System.t -> t -> bool
(** Re-checks, against the given system, that the schedule is a legal
    complete schedule and is not conflict-serializable. *)

val pp : System.t -> Format.formatter -> t -> unit
