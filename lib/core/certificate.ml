open Distlock_txn
open Distlock_sched
open Distlock_geometry
open Distlock_order

type t = {
  ext1 : int array;
  ext2 : int array;
  schedule : Schedule.t;
  below : Database.entity list;
  above : Database.entity list;
}

let verify sys cert =
  Legality.is_legal sys cert.schedule
  && not (Conflict.is_serializable sys cert.schedule)

(* A linear extension that places each focus step as early as possible, in
   the given focus sequence: each focus step is emitted immediately after
   exactly its own not-yet-emitted ancestors (any topological order inside
   the batch), then everything else follows. This is the proof's "place
   the Ux steps as early as possible" — a plain priority-driven Kahn walk
   is NOT enough, because it may emit an unrelated step that only a later
   focus step depends on before an earlier focus step's unlock. *)
let early_extension poset ~focus =
  let n = Poset.size poset in
  let base = Poset.linearize poset in
  let rank = Array.make n 0 in
  Array.iteri (fun i v -> rank.(v) <- i) base;
  let by_rank l = List.sort (fun a b -> compare rank.(a) rank.(b)) l in
  let emitted = Array.make n false in
  let out = ref [] in
  let emit v =
    if not emitted.(v) then begin
      emitted.(v) <- true;
      out := v :: !out
    end
  in
  let emit_with_ancestors target =
    let pending =
      target :: Distlock_graph.Bitset.elements (Poset.down_set poset target)
      |> List.filter (fun v -> not emitted.(v))
    in
    List.iter emit (by_rank pending)
  in
  List.iter emit_with_ancestors focus;
  List.iter emit (by_rank (List.filter (fun v -> not emitted.(v)) (List.init n Fun.id)));
  let ext = Array.of_list (List.rev !out) in
  assert (Poset.is_linear_extension poset ext);
  ext

(* Topological order of the focus steps alone (w.r.t. [poset]), preferring
   smaller [key] when unconstrained: Kahn on the induced subgraph. *)
let order_focus poset focus ~key =
  let arr = Array.of_list focus in
  let m = Array.length arr in
  let g = Distlock_graph.Digraph.create m in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if i <> j && Poset.precedes poset arr.(i) arr.(j) then
        Distlock_graph.Digraph.add_arc g i j
    done
  done;
  match
    Distlock_graph.Topo.sort_with_priority g ~priority:(fun i -> key arr.(i))
  with
  | Some order -> Array.to_list (Array.map (fun i -> arr.(i)) order)
  | None -> assert false (* induced subgraph of a partial order is acyclic *)

let construct ~original ~closed ~dominator =
  let t1c, t2c = System.pair closed in
  let in_x e = List.mem e dominator in
  let steps_matching txn pred =
    let acc = ref [] in
    for i = Txn.num_steps txn - 1 downto 0 do
      if pred (Txn.step txn i) then acc := i :: !acc
    done;
    !acc
  in
  let x_unlocks1 =
    steps_matching t1c (fun s -> s.Step.action = Step.Unlock && in_x s.Step.entity)
  in
  let x_locks2 =
    steps_matching t2c (fun s -> s.Step.action = Step.Lock && in_x s.Step.entity)
  in
  (* First sort: Ux (x in X) as early as possible in t1, processed in a
     topological order of the unlocks themselves. *)
  let order1 = Txn.order t1c in
  let focus1 = order_focus order1 x_unlocks1 ~key:(fun _ -> 0) in
  let ext1 = early_extension order1 ~focus:focus1 in
  (* Rank of each X-entity's Ux in ext1 ("if Ux was placed before Ux' in
     t1 we put Lx before Lx' in t2"). *)
  let rank1 = Hashtbl.create 16 in
  Array.iteri
    (fun pos i ->
      let s = Txn.step t1c i in
      if s.Step.action = Step.Unlock && in_x s.Step.entity then
        Hashtbl.replace rank1 s.Step.entity pos)
    ext1;
  (* Second sort: Lx (x in X) as late as possible in t2 — i.e. as early as
     possible in the reversed order — with later-t1-unlocks processed
     first so that the final order of the Lx mirrors the order of the
     Ux in t1. *)
  let order2 = Txn.order t2c in
  let rev2 = Poset.reverse order2 in
  let key2 i =
    let s = Txn.step t2c i in
    -Option.value ~default:0 (Hashtbl.find_opt rank1 s.Step.entity)
  in
  let focus2 = order_focus rev2 x_locks2 ~key:key2 in
  let ext2_rev = early_extension rev2 ~focus:focus2 in
  let ext2 =
    let n = Array.length ext2_rev in
    Array.init n (fun i -> ext2_rev.(n - 1 - i))
  in
  assert (Poset.is_linear_extension order2 ext2);
  (* These extensions also extend the original partial orders (closure only
     added precedences), so the plane is built over the original system. *)
  let plane = Plane.of_extensions original ext1 ext2 in
  let try_orientation above_pred =
    match Separation.realize plane ~above:above_pred with
    | None -> None
    | Some schedule ->
        let cert =
          let bv = Plane.b_vector plane schedule in
          {
            ext1;
            ext2;
            schedule;
            below = List.filter_map (fun (e, b) -> if not b then Some e else None) bv;
            above = List.filter_map (fun (e, b) -> if b then Some e else None) bv;
          }
        in
        if verify original cert then Some cert else None
  in
  (* Dominator entities below the path (b = 0), the rest above — and the
     mirrored orientation as a fallback. *)
  match try_orientation (fun e -> not (in_x e)) with
  | Some cert -> Ok cert
  | None -> (
      match try_orientation in_x with
      | Some cert -> Ok cert
      | None ->
          Error
            "Certificate.construct: no separating schedule realizable \
             (inputs are not a closed system with a dominator)")

let pp sys ppf cert =
  let db = System.db sys in
  let names es = String.concat ", " (List.map (Database.name db) es) in
  Format.fprintf ppf
    "@[<v>non-serializable schedule:@,  %s@,rectangles below the path: \
     {%s}@,rectangles above the path: {%s}@]"
    (Schedule.to_string sys cert.schedule)
    (names cert.below) (names cert.above)
