open Distlock_txn

type deadlock_info =
  | Deadlock_possible of int
  | Deadlock_impossible
  | Deadlock_unknown

type txn_policies = {
  name : string;
  two_phase_strong : bool;
  two_phase_weak : bool;
}

type t = {
  system : System.t;
  violations : (string * string) list;
  sites : int list;
  common_entities : string list;
  d_vertices : int;
  d_arcs : int;
  strongly_connected : bool;
  verdict : Safety.verdict;
  decision : Checkers.evidence Distlock_engine.Outcome.t;
  policies : txn_policies list;
  deadlock : deadlock_info;
  repair : (int * int) option;
}

let pair ?exhaustive_budget ?(try_repair = true) sys =
  let db = System.db sys in
  let violations =
    List.map
      (fun (txn, v) -> (Txn.name txn, Validate.to_string db txn v))
      (System.validate sys)
  in
  let d = Dgraph.build_pair sys in
  let budget =
    match exhaustive_budget with
    | Some n -> Distlock_engine.Budget.of_steps n
    | None -> Distlock_engine.Budget.unlimited
  in
  let decision = Safety.decide ~budget sys in
  let verdict = Safety.verdict_of_outcome decision in
  let t1, t2 = System.pair sys in
  let policies =
    List.map
      (fun txn ->
        {
          name = Txn.name txn;
          two_phase_strong = Policy.is_two_phase_strong txn;
          two_phase_weak = Policy.is_two_phase_weak txn;
        })
      [ t1; t2 ]
  in
  let deadlock =
    if Txn.is_total t1 && Txn.is_total t2 then begin
      let plane = Distlock_geometry.Plane.make sys in
      match Distlock_geometry.Deadlock.reachable_deadlocks plane with
      | [] -> Deadlock_impossible
      | states -> Deadlock_possible (List.length states)
    end
    else Deadlock_unknown
  in
  let repair =
    match verdict with
    | Safety.Unsafe _ when try_repair -> (
        match Repair.make_safe sys with
        | Some (sys', ins) ->
            Some
              (List.length ins, Repair.concurrency_loss ~before:sys ~after:sys')
        | None -> None)
    | _ -> None
  in
  {
    system = sys;
    violations;
    sites = System.sites_used sys;
    common_entities =
      List.map (Database.name db) (System.common_locked sys 0 1);
    d_vertices = Dgraph.num_vertices d;
    d_arcs = Distlock_graph.Digraph.num_arcs (Dgraph.graph d);
    strongly_connected = Dgraph.is_strongly_connected d;
    verdict;
    decision;
    policies;
    deadlock;
    repair;
  }

let pp ppf r =
  let sys = r.system in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "sites used: %s@,"
    (String.concat ", " (List.map string_of_int r.sites));
  (match r.violations with
  | [] -> Format.fprintf ppf "well-formed: yes@,"
  | vs ->
      Format.fprintf ppf "well-formed: NO@,";
      List.iter (fun (t, m) -> Format.fprintf ppf "  %s: %s@," t m) vs);
  Format.fprintf ppf
    "D(T1,T2): %d vertices {%s}, %d arcs, strongly connected: %b@,"
    r.d_vertices
    (String.concat ", " r.common_entities)
    r.d_arcs r.strongly_connected;
  List.iter
    (fun p ->
      Format.fprintf ppf "%s: two-phase %s@," p.name
        (if p.two_phase_strong then "strong"
         else if p.two_phase_weak then "weak only"
         else "no"))
    r.policies;
  (match r.verdict with
  | Safety.Safe why -> Format.fprintf ppf "verdict: SAFE — %s@," why
  | Safety.Unsafe ev ->
      Format.fprintf ppf "verdict: UNSAFE@,";
      (match ev with
      | Safety.Certificate c ->
          Format.fprintf ppf "%a@," (Certificate.pp sys) c
      | Safety.Counterexample h ->
          Format.fprintf ppf "counterexample: %s@,"
            (Distlock_sched.Schedule.to_string sys h))
  | Safety.Unknown m -> Format.fprintf ppf "verdict: UNKNOWN — %s@," m);
  (match r.deadlock with
  | Deadlock_possible k ->
      Format.fprintf ppf "deadlock: possible (%d reachable state(s))@," k
  | Deadlock_impossible -> Format.fprintf ppf "deadlock: impossible@,"
  | Deadlock_unknown ->
      Format.fprintf ppf "deadlock: not analyzed (partial orders)@,");
  (match r.repair with
  | Some (ins, loss) ->
      Format.fprintf ppf
        "repair: %d inserted precedence(s) make it safe (loss: %d pairs)@,"
        ins loss
  | None -> (
      match r.verdict with
      | Safety.Unsafe _ ->
          Format.fprintf ppf "repair: no precedence insertion helps@,"
      | _ -> ()));
  Format.fprintf ppf "@]"

let pp_decision ppf r =
  Format.fprintf ppf "@[<v>procedure: %s@,%a@]"
    (Distlock_engine.Outcome.provenance r.decision)
    Distlock_engine.Outcome.pp_trace r.decision.Distlock_engine.Outcome.trace
