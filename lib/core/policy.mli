open Distlock_txn

(** Locking policies (Section 6).

    The paper notes that the characterization of correct (safe) locking
    policies carries over to the distributed case by reading "previous
    step" as "preceding step in the partial order". This module implements
    the workhorse policy — two-phase locking — in that spirit, in two
    strengths:

    - {e strong} 2PL: every lock step precedes every unlock step in the
      partial order, so *every* linear extension is two-phase. Strongly
      2PL systems are always safe: all of [D]'s arcs are present, so
      Theorem 1 applies directly (this is the paper's remark that its
      tools "prove correct all existing distributed locking
      methodologies").
    - {e weak} 2PL: no unlock precedes a lock. For totally ordered
      transactions this is ordinary 2PL, but for genuinely partial orders
      it admits non-two-phase linear extensions and does *not* guarantee
      safety — a distributed pitfall this library's tests exhibit. *)

val is_two_phase_strong : Txn.t -> bool

val is_two_phase_weak : Txn.t -> bool

val all_two_phase_strong : System.t -> bool

val all_two_phase_weak : System.t -> bool

val strong_2pl_is_dgraph_complete : System.t -> bool
(** For a two-transaction strongly-2PL system: checks that [D(T1,T2)] is
    the complete digraph on the common entities (the Theorem 1 argument).
    Exposed for tests and the E8 experiment. *)

val make_two_phase : Txn.t -> Txn.t option
(** Repairs a transaction into strong 2PL by adding the precedences
    [every lock < every unlock]; [None] if that contradicts the existing
    order (some unlock already precedes some lock — the transaction is
    not weakly two-phase). *)
