open Distlock_txn

let lock_steps t =
  let acc = ref [] in
  for i = Txn.num_steps t - 1 downto 0 do
    if Step.is_lock (Txn.step t i) then acc := i :: !acc
  done;
  !acc

let unlock_steps t =
  let acc = ref [] in
  for i = Txn.num_steps t - 1 downto 0 do
    if Step.is_unlock (Txn.step t i) then acc := i :: !acc
  done;
  !acc

let is_two_phase_strong t =
  let locks = lock_steps t and unlocks = unlock_steps t in
  List.for_all
    (fun l -> List.for_all (fun u -> Txn.precedes t l u) unlocks)
    locks

let is_two_phase_weak t =
  let locks = lock_steps t and unlocks = unlock_steps t in
  List.for_all
    (fun l -> List.for_all (fun u -> not (Txn.precedes t u l)) unlocks)
    locks

let all_two_phase_strong sys =
  Array.for_all is_two_phase_strong (System.txns sys)

let all_two_phase_weak sys = Array.for_all is_two_phase_weak (System.txns sys)

let strong_2pl_is_dgraph_complete sys =
  let d = Dgraph.build_pair sys in
  let k = Dgraph.num_vertices d in
  let g = Dgraph.graph d in
  let complete = ref true in
  for a = 0 to k - 1 do
    for b = 0 to k - 1 do
      if a <> b && not (Distlock_graph.Digraph.mem_arc g a b) then
        complete := false
    done
  done;
  !complete

let make_two_phase t =
  let locks = lock_steps t and unlocks = unlock_steps t in
  let arcs =
    List.concat_map (fun l -> List.map (fun u -> (l, u)) unlocks) locks
  in
  Txn.add_precedences t arcs
