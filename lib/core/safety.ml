open Distlock_txn
open Distlock_sched
module E = Distlock_engine

type unsafety_evidence = Checkers.evidence =
  | Certificate of Certificate.t
  | Counterexample of Schedule.t

type verdict =
  | Safe of string
  | Unsafe of unsafety_evidence
  | Unknown of string

let schedule_of_evidence = Checkers.schedule_of_evidence

let decide ?(budget = E.Budget.unlimited) sys =
  if System.num_txns sys <> 2 then
    invalid_arg "Safety.decide_pair: not a two-transaction system";
  E.Engine.run ~budget Checkers.pair_checkers sys

let verdict_of_outcome (o : Checkers.evidence E.Outcome.t) =
  match o.E.Outcome.verdict with
  | E.Outcome.Safe -> Safe o.E.Outcome.detail
  | E.Outcome.Unsafe ev -> Unsafe ev
  | E.Outcome.Unknown msg -> Unknown msg

let decide_pair ?(exhaustive_budget = 2_000_000) sys =
  verdict_of_outcome
    (decide ~budget:(E.Budget.of_steps exhaustive_budget) sys)

let is_safe_exn ?budget sys =
  match verdict_of_outcome (decide ?budget sys) with
  | Safe _ -> true
  | Unsafe _ -> false
  | Unknown msg -> failwith msg
