open Distlock_txn
open Distlock_sched

type unsafety_evidence =
  | Certificate of Certificate.t
  | Counterexample of Schedule.t

type verdict =
  | Safe of string
  | Unsafe of unsafety_evidence
  | Unknown of string

let schedule_of_evidence = function
  | Certificate c -> c.Certificate.schedule
  | Counterexample h -> h

let decide_pair ?(exhaustive_budget = 2_000_000) sys =
  if System.num_txns sys <> 2 then
    invalid_arg "Safety.decide_pair: not a two-transaction system";
  let d = Dgraph.build_pair sys in
  if Dgraph.num_vertices d < 2 then
    Safe "fewer than two commonly locked entities"
  else if Dgraph.is_strongly_connected d then
    Safe "Theorem 1: D(T1,T2) strongly connected"
  else begin
    let two_sites = List.length (System.sites_used sys) <= 2 in
    if two_sites then begin
      match Twosite.decide sys with
      | Twosite.Safe -> Safe "Theorem 2 (unreachable: D not strongly connected)"
      | Twosite.Unsafe cert -> Unsafe (Certificate cert)
    end
    else begin
      (* Corollary 2: look for a dominator whose closure succeeds. *)
      match Closure.first_unsafe_dominator sys with
      | Some (dominator, closed) -> (
          match Certificate.construct ~original:sys ~closed ~dominator with
          | Ok cert -> Unsafe (Certificate cert)
          | Error msg -> failwith ("Safety.decide_pair: " ^ msg))
      | None | (exception Failure _) -> (
          (* No dominator closes: inconclusive beyond two sites (Fig 5);
             fall back to the Lemma 1 oracle within budget. *)
          match Brute.safe_by_extensions ~limit:exhaustive_budget sys with
          | Brute.Safe -> Safe "Lemma 1: exhaustive check of all extension pairs"
          | Brute.Unsafe h -> Unsafe (Counterexample h)
          | exception Failure _ ->
              Unknown
                "more than two sites, no closing dominator, and the system \
                 exceeds the exhaustive-search budget")
    end
  end

let is_safe_exn sys =
  match decide_pair sys with
  | Safe _ -> true
  | Unsafe _ -> false
  | Unknown msg -> failwith msg
