open Distlock_txn
open Distlock_graph

(** The digraph [D(T1,T2)] of Definition 1.

    Vertices are the entities locked-unlocked by *both* transactions; there
    is an arc [(x,y)] iff [Lx] precedes [Uy] in [T1] and [Ly] precedes [Ux]
    in [T2] (precedence in the partial orders). Equivalently: in every
    geometric picture of the pair, the path's side for [x] forces its side
    for [y] ([b_x <= b_y] in Theorem 1's proof). *)

type t

val build : System.t -> int -> int -> t
(** [build sys i j] is [D(Ti, Tj)] (transaction indices). *)

val build_pair : System.t -> t
(** [D(T1,T2)] of a two-transaction system. *)

val graph : t -> Digraph.t

val entities : t -> Database.entity array
(** Vertex index to entity id. *)

val vertex_of : t -> Database.entity -> int option

val num_vertices : t -> int

val mem_arc : t -> Database.entity -> Database.entity -> bool

val is_strongly_connected : t -> bool

val dominators : ?limit:int -> t -> Bitset.t list
(** All dominators of the digraph (Definition 2), as vertex sets. *)

val entity_set : t -> Bitset.t -> Database.entity list
(** Decode a vertex set into entity ids. *)

val pp : Database.t -> Format.formatter -> t -> unit
