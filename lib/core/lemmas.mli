open Distlock_txn

(** The paper's intermediate results as executable, checkable statements.

    Each function decides one lemma's claim on a concrete system, so the
    test suite can validate the paper lemma-by-lemma on thousands of
    random instances rather than only end-to-end. All checks are
    exponential where the statement quantifies over extensions or
    schedules; they are meant for small systems. *)

val lemma1 : ?limit:int -> System.t -> bool
(** Lemma 1: [{T1,T2}] is safe iff every pair of compatible total orders
    is safe. Checks that the two sides of the iff agree on the given
    system (left side by legal-schedule enumeration, right side by
    extension-pair enumeration); [limit] caps both enumerations. *)

val lemma2 : System.t -> dominator:Database.entity list -> bool
(** Lemma 2: on any system, for every triple [z ∈ V-X], [x, y ∈ X] with
    [Lz <1 Ux] and [Ly <2 Uz], the conclusions hold: [x ≠ y], not
    [Uy <1' Ux] contradicted — precisely, [Ux <1 Uy] fails and
    [Lx <2 Ly] fails (so the closure's additions are consistent). True
    vacuously when no triple matches. The paper proves this for
    dominators of [D(T1,T2)]; raises [Invalid_argument] if [dominator]
    is not one. *)

val lemma3 : System.t -> dominator:Database.entity list -> bool
(** Lemma 3 (two sites): after adding one closure step's precedences, the
    dominator still dominates the new [D(T1',T2')]. Checks every matching
    triple's single-step extension; [true] vacuously if none. Raises
    [Invalid_argument] on non-dominators or systems using more than two
    sites. *)

val corollary2 : System.t -> dominator:Database.entity list -> bool
(** Corollary 2: if the system is closed w.r.t. the dominator, then it is
    unsafe — verified constructively (certificate build + check). [true]
    also when the system is simply not closed (the hypothesis fails). *)
