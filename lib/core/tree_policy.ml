open Distlock_txn

type forest = { db : Database.t; parent : Database.entity option array }

let forest db pairs =
  let n = Database.num_entities db in
  let parent = Array.make n None in
  let rec assign = function
    | [] -> Ok ()
    | (child, par) :: rest -> (
        match (Database.find db child, Database.find db par) with
        | None, _ -> Error (Printf.sprintf "unknown entity %S" child)
        | _, None -> Error (Printf.sprintf "unknown entity %S" par)
        | Some c, Some p ->
            if parent.(c) <> None then
              Error (Printf.sprintf "entity %S has two parents" child)
            else begin
              parent.(c) <- Some p;
              assign rest
            end)
  in
  match assign pairs with
  | Error _ as e -> e
  | Ok () ->
      (* cycle check: walk up from each node *)
      let rec walk seen e =
        if List.mem e seen then Error "cycle in parent relation"
        else
          match parent.(e) with
          | None -> Ok ()
          | Some p -> walk (e :: seen) p
      in
      let rec check e =
        if e >= n then Ok ()
        else match walk [] e with Ok () -> check (e + 1) | Error _ as err -> err
      in
      (match check 0 with Ok () -> Ok { db; parent } | Error m -> Error m)

let forest_exn db pairs =
  match forest db pairs with
  | Ok f -> f
  | Error m -> invalid_arg ("Tree_policy.forest: " ^ m)

let parent f e = f.parent.(e)

let locked_with_sections txn =
  List.filter_map
    (fun e ->
      match (Txn.lock_of txn e, Txn.unlock_of txn e) with
      | Some l, Some u -> Some (e, l, u)
      | _ -> None)
    (Txn.locked_entities txn)

let check_with_first f txn x0 =
  let sections = locked_with_sections txn in
  let section e = List.find_opt (fun (x, _, _) -> x = e) sections in
  let l0 =
    match section x0 with Some (_, l, _) -> l | None -> assert false
  in
  List.concat_map
    (fun (x, lx, _) ->
      if x = x0 then []
      else
        let first_ok = Txn.precedes txn l0 lx in
        let parent_ok =
          match f.parent.(x) with
          | None -> false
          | Some p -> (
              match section p with
              | None -> false
              | Some (_, lp, up) ->
                  Txn.precedes txn lp lx && Txn.precedes txn lx up)
        in
        (if first_ok then [] else [ `Not_after_first x ])
        @ if parent_ok then [] else [ `Parent_not_held x ])
    sections

let violations_for f txn x0 db_name =
  List.map
    (function
      | `Not_after_first x ->
          Printf.sprintf "lock of %s is not preceded by the first lock"
            (db_name x)
      | `Parent_not_held x ->
          Printf.sprintf
            "entity %s is locked without its parent being held" (db_name x))
    (check_with_first f txn x0)

let candidates_first txn =
  (* entities whose lock precedes every other lock *)
  let sections = locked_with_sections txn in
  List.filter_map
    (fun (x, lx, _) ->
      if
        List.for_all
          (fun (y, ly, _) -> y = x || Txn.precedes txn lx ly)
          sections
      then Some x
      else None)
    sections

let first_entity f txn =
  List.find_opt
    (fun x0 -> check_with_first f txn x0 = [])
    (candidates_first txn)

let follows f txn =
  match locked_with_sections txn with
  | [] -> true
  | _ -> first_entity f txn <> None

let all_follow f sys = Array.for_all (follows f) (System.txns sys)

let violations f txn =
  match locked_with_sections txn with
  | [] -> []
  | _ -> (
      if follows f txn then []
      else
        match candidates_first txn with
        | [] -> [ "no lock precedes all other locks (no first entity)" ]
        | x0 :: _ -> violations_for f txn x0 (Database.name f.db))

let random_protocol_txn rng db f ~name ?(subtree_size = 4) ?(cross_prob = 0.3)
    () =
  let n = Database.num_entities db in
  if n = 0 then invalid_arg "Tree_policy.random_protocol_txn: empty database";
  let x0 = Random.State.int rng n in
  (* children lists *)
  let children = Array.make n [] in
  Array.iteri
    (fun c p -> match p with Some p -> children.(p) <- c :: children.(p) | None -> ())
    f.parent;
  (* grow a random connected subtree below x0 *)
  let chosen = ref [ x0 ] in
  let frontier = ref children.(x0) in
  while List.length !chosen < subtree_size && !frontier <> [] do
    let arr = Array.of_list !frontier in
    let pick = arr.(Random.State.int rng (Array.length arr)) in
    chosen := pick :: !chosen;
    frontier :=
      children.(pick) @ List.filter (fun e -> e <> pick) !frontier
  done;
  let chosen = List.rev !chosen in
  (* steps: L e, U e per chosen entity *)
  let index = Hashtbl.create 8 in
  let steps = ref [] and labels = ref [] and count = ref 0 in
  List.iter
    (fun e ->
      Hashtbl.replace index (`L e) !count;
      steps := Step.lock e :: !steps;
      labels := ("L" ^ Database.name db e) :: !labels;
      incr count;
      Hashtbl.replace index (`U e) !count;
      steps := Step.unlock e :: !steps;
      labels := ("U" ^ Database.name db e) :: !labels;
      incr count)
    chosen;
  let total = !count in
  let steps = Array.of_list (List.rev !steps) in
  let labels = Array.of_list (List.rev !labels) in
  let l e = Hashtbl.find index (`L e) and u e = Hashtbl.find index (`U e) in
  (* protocol arcs *)
  let protocol_arcs = ref [] in
  List.iter
    (fun e ->
      protocol_arcs := (l e, u e) :: !protocol_arcs;
      if e <> x0 then begin
        protocol_arcs := (l x0, l e) :: !protocol_arcs;
        match f.parent.(e) with
        | Some p when List.mem p chosen ->
            protocol_arcs := (l p, l e) :: (l e, u p) :: !protocol_arcs
        | _ -> ()
      end)
    chosen;
  (* base linear order extending the protocol arcs (random Kahn walk) *)
  let g = Distlock_graph.Digraph.of_arcs total !protocol_arcs in
  let indeg = Array.init total (Distlock_graph.Digraph.in_degree g) in
  let placed = Array.make total false in
  let base = Array.make total (-1) in
  for depth = 0 to total - 1 do
    let avail = ref [] in
    for v = 0 to total - 1 do
      if (not placed.(v)) && indeg.(v) = 0 then avail := v :: !avail
    done;
    let arr = Array.of_list !avail in
    let v = arr.(Random.State.int rng (Array.length arr)) in
    placed.(v) <- true;
    base.(depth) <- v;
    Distlock_graph.Digraph.iter_succ g v (fun w -> indeg.(w) <- indeg.(w) - 1)
  done;
  (* per-site chains + random cross arcs from the base order *)
  let site_of i = Database.site db steps.(i).Step.entity in
  let arcs = ref !protocol_arcs in
  let last_at_site = Hashtbl.create 8 in
  Array.iter
    (fun i ->
      let s = site_of i in
      (match Hashtbl.find_opt last_at_site s with
      | Some prev -> arcs := (prev, i) :: !arcs
      | None -> ());
      Hashtbl.replace last_at_site s i)
    base;
  for a = 0 to total - 1 do
    for b = a + 1 to total - 1 do
      let i = base.(a) and j = base.(b) in
      if site_of i <> site_of j && Random.State.float rng 1.0 < cross_prob then
        arcs := (i, j) :: !arcs
    done
  done;
  let order =
    match Distlock_order.Poset.of_arcs total !arcs with
    | Some p -> p
    | None -> assert false
  in
  Txn.make ~name ~labels ~steps order
