open Distlock_txn
module E = Distlock_engine
module G = Distlock_graph
module Obs = Distlock_obs.Obs
module A = Distlock_obs.Attr

(* Bounds on the content-keyed side tables. They are plain Hashtbls (one
   session, one domain), so the cap is a reset, not an LRU: a workload
   that genuinely cycles through more distinct SCCs or cycles than this
   re-derives them — correctness never depends on a hit. *)
let cycle_cache_cap = 65_536
let scc_cache_cap = 4_096

type verdict =
  | Safe
  | Unsafe of Multisite.unsafe_reason
  | Unknown of string

type outcome = {
  verdict : verdict;
  pairs_total : int;
  pairs_reused : int;
  pairs_redecided : int;
  cycles_total : int;
  cycles_reused : int;
  cycles_rejudged : int;
  seconds : float;
}

type t = {
  db : Database.t;
  mutable txns : Txn.t list; (* insertion order *)
  conflicts : G.Dyngraph.t; (* vertices are transaction names *)
  locked : (string, Database.entity list) Hashtbl.t; (* sorted ids *)
  fps : (string, string) Hashtbl.t; (* name -> Txn.fingerprint *)
  pair_cache : bool E.Lru_sharded.t; (* pair_fingerprint -> safe? *)
  pair_keys : (string * string, string) Hashtbl.t;
      (* sorted name pair -> pair_fingerprint; entries dropped when
         either endpoint mutates, so holds only live conflicting pairs *)
  cycle_cache : (string, bool) Hashtbl.t; (* cycle content -> B_c cyclic? *)
  scc_cycles : (string, int list list) Hashtbl.t;
      (* SCC content -> its simple cycles, as fp-rank lists *)
  stats : E.Stats.t;
  default_budget : E.Budget.t;
  mutable snapshot : System.t option;
}

(* Both lists ascending (Txn.locked_entities sorts). *)
let rec intersects a b =
  match (a, b) with
  | [], _ | _, [] -> false
  | x :: a', y :: b' ->
      if x = y then true else if x < y then intersects a' b else intersects a b'

let connect t name =
  let locked = Hashtbl.find t.locked name in
  Hashtbl.iter
    (fun other their ->
      if other <> name && intersects locked their then
        G.Dyngraph.add_edge t.conflicts name other)
    t.locked

let drop_pair_keys t name =
  let stale =
    Hashtbl.fold
      (fun ((a, b) as k) _ acc ->
        if a = name || b = name then k :: acc else acc)
      t.pair_keys []
  in
  List.iter (Hashtbl.remove t.pair_keys) stale

let register t txn =
  let name = Txn.name txn in
  if Hashtbl.mem t.fps name then
    invalid_arg ("Incremental: duplicate transaction name " ^ name);
  Hashtbl.replace t.fps name (Txn.fingerprint txn);
  Hashtbl.replace t.locked name (Txn.locked_entities txn);
  drop_pair_keys t name;
  G.Dyngraph.add_vertex t.conflicts name;
  connect t name

let unregister t name =
  if not (Hashtbl.mem t.fps name) then
    invalid_arg ("Incremental: unknown transaction " ^ name);
  Hashtbl.remove t.fps name;
  Hashtbl.remove t.locked name;
  drop_pair_keys t name;
  G.Dyngraph.remove_vertex t.conflicts name

let create ?(pair_cache_capacity = 4096) ?(budget = E.Budget.unlimited) db
    txns =
  let t =
    {
      db;
      txns = [];
      conflicts = G.Dyngraph.create ();
      locked = Hashtbl.create 64;
      fps = Hashtbl.create 64;
      pair_cache =
        E.Lru_sharded.create ~capacity:(max 1 pair_cache_capacity) ();
      pair_keys = Hashtbl.create 64;
      cycle_cache = Hashtbl.create 64;
      scc_cycles = Hashtbl.create 16;
      stats = E.Stats.create ();
      default_budget = budget;
      snapshot = None;
    }
  in
  List.iter
    (fun txn ->
      register t txn;
      t.txns <- t.txns @ [ txn ])
    txns;
  t

let of_system ?pair_cache_capacity ?budget sys =
  create ?pair_cache_capacity ?budget (System.db sys)
    (Array.to_list (System.txns sys))

let system t =
  match t.snapshot with
  | Some s -> s
  | None ->
      if t.txns = [] then invalid_arg "Incremental.system: empty session";
      let s = System.make t.db t.txns in
      t.snapshot <- Some s;
      s

let num_txns t = List.length t.txns

let txn_names t = List.map Txn.name t.txns

let stats t = t.stats

let add_txn t txn =
  register t txn;
  t.txns <- t.txns @ [ txn ];
  t.snapshot <- None

let remove_txn t name =
  unregister t name;
  t.txns <- List.filter (fun x -> Txn.name x <> name) t.txns;
  t.snapshot <- None

let replace_txn t name txn =
  if not (Hashtbl.mem t.fps name) then
    invalid_arg ("Incremental: unknown transaction " ^ name);
  let new_name = Txn.name txn in
  if new_name <> name && Hashtbl.mem t.fps new_name then
    invalid_arg ("Incremental: duplicate transaction name " ^ new_name);
  unregister t name;
  register t txn;
  t.txns <- List.map (fun x -> if Txn.name x = name then txn else x) t.txns;
  t.snapshot <- None

exception Found_unsafe of Multisite.unsafe_reason
exception Undecided of string

let digest parts = Digest.to_hex (Digest.string (String.concat "|" parts))

let capped_replace tbl ~cap key v =
  if Hashtbl.length tbl >= cap then Hashtbl.reset tbl;
  Hashtbl.replace tbl key v

let decide_delta ?budget t =
  let budget = Option.value budget ~default:t.default_budget in
  let meter = E.Budget.start budget in
  let pairs_total = ref 0
  and pairs_reused = ref 0
  and pairs_redecided = ref 0
  and cycles_total = ref 0
  and cycles_reused = ref 0
  and cycles_rejudged = ref 0 in
  let sp = Obs.start_span "session.decide_delta" in
  let verdict =
    match t.txns with
    | [] | [ _ ] -> Safe (* no conflicting pair, no cycle of length >= 3 *)
    | _ -> (
        (* Built only when a cache miss actually needs transaction
           content — a fully warm call re-decides nothing and skips
           the snapshot entirely. *)
        let sys = lazy (system t) in
        let names = Array.of_list (txn_names t) in
        let n = Array.length names in
        let fp_of i = Hashtbl.find t.fps names.(i) in
        (* Condition (a): each conflicting pair through the pair-verdict
           store; only pairs whose fingerprint is new since the last
           call reach the pipeline. Pair fingerprints themselves are
           cached per name pair and dropped when an endpoint mutates. *)
        let pair_key i j =
          let key =
            if names.(i) <= names.(j) then (names.(i), names.(j))
            else (names.(j), names.(i))
          in
          match Hashtbl.find_opt t.pair_keys key with
          | Some fp -> fp
          | None ->
              let fp =
                System.pair_fingerprint_with ~fp:fp_of (Lazy.force sys) i j
              in
              Hashtbl.replace t.pair_keys key fp;
              fp
        in
        let pair_safe i j =
          let fp = pair_key i j in
          match E.Lru_sharded.find t.pair_cache fp with
          | Some safe ->
              incr pairs_reused;
              E.Stats.record_pair_lookup t.stats ~hit:true;
              safe
          | None -> (
              E.Stats.record_pair_lookup t.stats ~hit:false;
              let sub = Multisite.pair_system (Lazy.force sys) i j in
              let o =
                E.Engine.run ~stats:t.stats ~budget:(E.Budget.budget meter)
                  Checkers.pair_checkers sub
              in
              match o.E.Outcome.verdict with
              | E.Outcome.Unknown msg -> raise (Undecided msg)
              | E.Outcome.Safe | E.Outcome.Unsafe _ ->
                  let safe = o.E.Outcome.verdict = E.Outcome.Safe in
                  incr pairs_redecided;
                  E.Stats.record_pair_redecided t.stats;
                  E.Lru_sharded.add t.pair_cache fp safe;
                  safe)
        in
        let cycle_limit =
          E.Budget.step_allowance meter ~default:2_000_000
        in
        try
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              if G.Dyngraph.has_edge t.conflicts names.(i) names.(j) then begin
                incr pairs_total;
                if not (pair_safe i j) then
                  raise (Found_unsafe (Multisite.Unsafe_pair (i, j)))
              end
            done
          done;
          (* Condition (b), scoped to strongly connected components: a
             directed simple cycle lives inside one SCC, so each
             component's cycle list is enumerated over a canonical
             (fingerprint-ranked) renumbering and cached by component
             content — components untouched by recent edits hit. *)
          let idx = Hashtbl.create n in
          Array.iteri (fun i nm -> Hashtbl.replace idx nm i) names;
          let g =
            G.Dyngraph.to_digraph t.conflicts
              ~index_of:(Hashtbl.find idx) ~n
          in
          let scc = G.Scc.compute g in
          for comp = 0 to scc.G.Scc.count - 1 do
            let mem = G.Scc.members scc comp in
            if List.length mem >= 3 then begin
              let ranked =
                Array.of_list
                  (List.sort (fun a b -> compare (fp_of a) (fp_of b)) mem)
              in
              let rank_of = Hashtbl.create (Array.length ranked) in
              Array.iteri (fun r v -> Hashtbl.replace rank_of v r) ranked;
              let arcs = ref [] in
              List.iter
                (fun u ->
                  G.Digraph.iter_succ g u (fun v ->
                      if scc.G.Scc.component.(v) = comp then
                        arcs :=
                          (Hashtbl.find rank_of u, Hashtbl.find rank_of v)
                          :: !arcs))
                mem;
              let arcs = List.sort compare !arcs in
              let key =
                digest
                  ("scc"
                  :: Array.to_list (Array.map fp_of ranked)
                  @ List.map
                      (fun (u, v) -> Printf.sprintf "%d>%d" u v)
                      arcs)
              in
              let cycles =
                match Hashtbl.find_opt t.scc_cycles key with
                | Some cs -> cs
                | None -> (
                    let gsub = G.Digraph.create (Array.length ranked) in
                    List.iter
                      (fun (u, v) -> G.Digraph.add_arc gsub u v)
                      arcs;
                    match
                      Multisite.simple_cycles_bounded ~limit:cycle_limit gsub
                    with
                    | Multisite.Cut { examined; limit } ->
                        raise
                          (Undecided
                             (Printf.sprintf
                                "cycle-enumeration budget exhausted after \
                                 %d of %d steps"
                                examined limit))
                    | Multisite.Cycles cs ->
                        capped_replace t.scc_cycles ~cap:scc_cache_cap key cs;
                        cs)
              in
              List.iter
                (fun cyc ->
                  incr cycles_total;
                  let orig = List.map (fun r -> ranked.(r)) cyc in
                  let ckey = digest ("cyc" :: List.map fp_of orig) in
                  let bc_cyclic =
                    match Hashtbl.find_opt t.cycle_cache ckey with
                    | Some cyclic ->
                        incr cycles_reused;
                        cyclic
                    | None ->
                        incr cycles_rejudged;
                        let cyclic =
                          not
                            (G.Topo.is_acyclic
                               (Multisite.b_cycle_graph (Lazy.force sys)
                                  orig))
                        in
                        capped_replace t.cycle_cache ~cap:cycle_cache_cap
                          ckey cyclic;
                        cyclic
                  in
                  if not bc_cyclic then
                    raise (Found_unsafe (Multisite.Acyclic_bc orig)))
                cycles
            end
          done;
          Safe
        with
        | Found_unsafe r -> Unsafe r
        | Undecided msg -> Unknown msg)
  in
  let seconds = E.Budget.elapsed meter in
  if Obs.enabled () then
    Obs.add_attrs sp
      [
        A.str "verdict"
          (match verdict with
          | Safe -> "safe"
          | Unsafe _ -> "unsafe"
          | Unknown _ -> "unknown");
        A.int "pairs_total" !pairs_total;
        A.int "pairs_reused" !pairs_reused;
        A.int "pairs_redecided" !pairs_redecided;
        A.int "cycles_total" !cycles_total;
        A.int "cycles_reused" !cycles_reused;
        A.int "cycles_rejudged" !cycles_rejudged;
      ];
  Obs.end_span sp;
  {
    verdict;
    pairs_total = !pairs_total;
    pairs_reused = !pairs_reused;
    pairs_redecided = !pairs_redecided;
    cycles_total = !cycles_total;
    cycles_reused = !cycles_reused;
    cycles_rejudged = !cycles_rejudged;
    seconds;
  }
