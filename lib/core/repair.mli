open Distlock_txn

(** Making unsafe systems safe by inserting precedences.

    The paper closes by noting that the strong-connectivity condition "can
    be a useful tool for guaranteeing safety in more complex situations":
    since Theorem 1 holds for any number of sites, a scheduler can *force*
    safety by adding synchronization (extra precedence arcs between a
    transaction's own steps — in practice, a message from one site's agent
    to another's) until [D(T1,T2)] is strongly connected.

    [make_safe] inserts, greedily and one [D]-arc at a time, precedences
    [Lz < Ux] into [T1] and [Lx < Uz] into [T2] for entity pairs that
    connect a dominator back to the rest of [D], preferring insertions
    that destroy the least concurrency, until the digraph is strongly
    connected. *)

type insertion = {
  txn : int;  (** 0 or 1. *)
  before : int;  (** step index made earlier *)
  after : int;  (** step index made later *)
}

val make_safe : System.t -> (System.t * insertion list) option
(** [None] when no sequence of consistent insertions reaches strong
    connectivity (does not happen on well-formed systems with ≥ 2 common
    entities, but the search is greedy, not complete). The result is
    guaranteed safe (Theorem 1) and re-validated to be well-formed. *)

val concurrency_loss : before:System.t -> after:System.t -> int
(** Number of step pairs (across both transactions) that were concurrent
    before and are ordered after — the price of the repair. *)
