open Distlock_txn
module E = Distlock_engine

type evidence =
  | Pair of Checkers.evidence
  | Multi of Multisite.unsafe_reason

let proposition2 =
  E.Checker.make ~name:"multisite" ~procedure:E.Checker.Proposition_2
    ~cost:E.Checker.Exponential
    ~applicable:(fun sys -> System.num_txns sys <> 2)
    ~run:(fun meter sys ->
      match Multisite.decide ~budget:(E.Budget.budget meter) sys with
      | Multisite.Safe ->
          E.Checker.Safe
            "Proposition 2: all conflicting pairs safe and every \
             conflict-graph cycle has a cyclic B_c"
      | Multisite.Unsafe reason ->
          E.Checker.Unsafe
            ("Proposition 2: unsafety witness found", Multi reason)
      | exception Failure msg -> E.Checker.Error msg)

(* Exact fallback for many-transaction systems (the two-transaction
   table carries its own state-graph stage): memoized reachability over
   execution states, so a Proposition 2 budget error still gets a real
   verdict when the state graph fits the step allowance. *)
let state_graph_multi =
  E.Checker.make ~name:"multi-state-graph" ~procedure:E.Checker.State_graph
    ~cost:E.Checker.Exponential
    ~applicable:(fun sys -> System.num_txns sys <> 2)
    ~run:(fun meter sys ->
      let limit = E.Budget.step_allowance meter ~default:2_000_000 in
      match Brute.safe_by_states ~limit sys with
      | Brute.Safe ->
          E.Checker.Safe
            "state graph: no reachable execution is non-serializable"
      | Brute.Unsafe h ->
          E.Checker.Unsafe
            ( "state graph: a reachable complete state has a cyclic \
               conflict digraph",
              Pair (Checkers.Counterexample h) )
      | Brute.Exhausted { examined; limit } ->
          E.Checker.Pass
            (Printf.sprintf
               "state budget exhausted after %d of %d allowed states"
               examined limit))

let checkers =
  List.map
    (E.Checker.map_evidence (fun ev -> Pair ev))
    Checkers.pair_checkers
  @ [ proposition2; state_graph_multi ]

type t = (System.t, evidence) E.Engine.t

let create ?(cache_capacity = 1024) ?budget () =
  E.Engine.create ~cache_capacity ?budget ~fingerprint:System.fingerprint
    checkers

let decide ?budget t sys = E.Engine.decide ?budget t sys

let decide_batch ?budget ?jobs t syss = E.Engine.decide_batch ?budget ?jobs t syss

let stats = E.Engine.stats

let describe_multi sys = function
  | Multisite.Unsafe_pair (i, j) ->
      Printf.sprintf "transactions %s and %s form an unsafe pair"
        (Txn.name (System.txn sys i))
        (Txn.name (System.txn sys j))
  | Multisite.Acyclic_bc cycle ->
      Printf.sprintf "conflict-graph cycle (%s) has an acyclic B_c"
        (String.concat " -> "
           (List.map (fun i -> Txn.name (System.txn sys i)) cycle))

let schedule_of_evidence = function
  | Pair ev -> Some (Checkers.schedule_of_evidence ev)
  | Multi _ -> None
