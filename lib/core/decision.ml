open Distlock_txn
module E = Distlock_engine

type evidence =
  | Pair of Checkers.evidence
  | Multi of Multisite.unsafe_reason

(* The Proposition 2 stage, generalized over where pair verdicts come
   from. With [pair_cache] set, each conflicting pair is looked up by
   its order-canonical {!System.pair_fingerprint} before the pair
   pipeline runs, and decided pair verdicts are stored back — so a
   system sharing pairs with earlier decisions (a batch of edits of one
   base system, say) re-runs the pipeline only for pairs it does not
   share. Unknown pairs raise out of the store un-cached, exactly like
   the uncached path. Cycle enumeration runs under the meter's step
   allowance and maps exhaustion to an inconclusive [Pass] — never a
   hang, and the state-graph fallback still gets its chance. *)
let proposition2_with ?pair_cache ?stats () =
  E.Checker.make ~name:"multisite" ~procedure:E.Checker.Proposition_2
    ~cost:E.Checker.Exponential
    ~applicable:(fun sys -> System.num_txns sys <> 2)
    ~run:(fun meter sys ->
      let budget = E.Budget.budget meter in
      let run_pair i j =
        Safety.is_safe_exn ~budget (Multisite.pair_system sys i j)
      in
      (* Per-decision pair-cache traffic. The shared [stats] counters
         are cumulative across the engine's whole lifetime; these local
         refs meter this one decision, so the [Annotated] wrapper (and
         through it [check --explain]) reports the traffic of the
         decision being explained even mid-batch. *)
      let hits = ref 0 and misses = ref 0 and redecided = ref 0 in
      let pair_safe =
        match pair_cache with
        | None -> run_pair
        | Some cache ->
            fun i j -> (
              let fp = System.pair_fingerprint sys i j in
              match E.Lru_sharded.find cache fp with
              | Some safe ->
                  incr hits;
                  Option.iter
                    (fun st -> E.Stats.record_pair_lookup st ~hit:true)
                    stats;
                  safe
              | None ->
                  incr misses;
                  Option.iter
                    (fun st -> E.Stats.record_pair_lookup st ~hit:false)
                    stats;
                  let safe = run_pair i j in
                  incr redecided;
                  Option.iter
                    (fun st -> E.Stats.record_pair_redecided st)
                    stats;
                  E.Lru_sharded.add cache fp safe;
                  safe)
      in
      let annotate result =
        if !hits + !misses = 0 then result
        else
          E.Checker.Annotated
            ( [
                Distlock_obs.Attr.int "pair_hits" !hits;
                Distlock_obs.Attr.int "pair_misses" !misses;
                Distlock_obs.Attr.int "pairs_redecided" !redecided;
              ],
              result )
      in
      let cycle_limit = E.Budget.step_allowance meter ~default:2_000_000 in
      match Multisite.decide_with ~pair_safe ~cycle_limit sys with
      | Multisite.Decided Multisite.Safe ->
          annotate
            (E.Checker.Safe
               "Proposition 2: all conflicting pairs safe and every \
                conflict-graph cycle has a cyclic B_c")
      | Multisite.Decided (Multisite.Unsafe reason) ->
          annotate
            (E.Checker.Unsafe
               ("Proposition 2: unsafety witness found", Multi reason))
      | Multisite.Exhausted { examined; limit } ->
          annotate
            (E.Checker.Pass
               (Printf.sprintf
                  "cycle-enumeration budget exhausted after %d of %d steps"
                  examined limit))
      | exception Failure msg -> annotate (E.Checker.Error msg))

let proposition2 = proposition2_with ()

(* Exact fallback for many-transaction systems (the two-transaction
   table carries its own state-graph stage): memoized reachability over
   execution states, so a Proposition 2 budget error still gets a real
   verdict when the state graph fits the step allowance. *)
let state_graph_multi =
  E.Checker.make ~name:"multi-state-graph" ~procedure:E.Checker.State_graph
    ~cost:E.Checker.Exponential
    ~applicable:(fun sys -> System.num_txns sys <> 2)
    ~run:
      (Checkers.state_graph_result ~counterexample:(fun h ->
           Pair (Checkers.Counterexample h)))

let checkers =
  List.map
    (E.Checker.map_evidence (fun ev -> Pair ev))
    Checkers.pair_checkers
  @ [ proposition2; state_graph_multi ]

type t = (System.t, evidence) E.Engine.t

let create ?(cache_capacity = 1024) ?(pair_cache_capacity = 4096) ?budget () =
  let stats = E.Stats.create () in
  let pair_cache =
    if pair_cache_capacity <= 0 then None
    else Some (E.Lru_sharded.create ~capacity:pair_cache_capacity ())
  in
  let checkers =
    List.map
      (E.Checker.map_evidence (fun ev -> Pair ev))
      Checkers.pair_checkers
    @ [ proposition2_with ?pair_cache ~stats (); state_graph_multi ]
  in
  E.Engine.create ~cache_capacity ?budget ~stats
    ~fingerprint:System.fingerprint checkers

let decide ?budget t sys = E.Engine.decide ?budget t sys

let decide_batch ?budget ?jobs t syss = E.Engine.decide_batch ?budget ?jobs t syss

let explain t sys o = E.Engine.explain t sys o

let decide_explained ?budget t sys = E.Engine.decide_explained ?budget t sys

let stats = E.Engine.stats

let describe_multi sys = function
  | Multisite.Unsafe_pair (i, j) ->
      Printf.sprintf "transactions %s and %s form an unsafe pair"
        (Txn.name (System.txn sys i))
        (Txn.name (System.txn sys j))
  | Multisite.Acyclic_bc cycle ->
      Printf.sprintf "conflict-graph cycle (%s) has an acyclic B_c"
        (String.concat " -> "
           (List.map (fun i -> Txn.name (System.txn sys i)) cycle))

let schedule_of_evidence = function
  | Pair ev -> Some (Checkers.schedule_of_evidence ev)
  | Multi _ -> None
