open Distlock_txn

let lemma1 ?(limit = 1_000_000) sys =
  let left =
    match Brute.safe_by_schedules ~limit sys with
    | Brute.Safe -> true
    | Brute.Unsafe _ -> false
    | Brute.Exhausted _ -> failwith "Lemmas.lemma1: schedule budget exhausted"
  in
  let right =
    match Brute.safe_by_extensions ~limit sys with
    | Brute.Safe -> true
    | Brute.Unsafe _ -> false
    | Brute.Exhausted _ -> failwith "Lemmas.lemma1: picture budget exhausted"
  in
  left = right

(* Triples (z, x, y) satisfying Lemma 2's hypotheses. *)
let matching_triples sys ~dominator =
  let t1, t2 = System.pair sys in
  let common = System.common_locked sys 0 1 in
  let in_x e = List.mem e dominator in
  let l1 e = Option.get (Txn.lock_of t1 e)
  and u1 e = Option.get (Txn.unlock_of t1 e)
  and l2 e = Option.get (Txn.lock_of t2 e)
  and u2 e = Option.get (Txn.unlock_of t2 e) in
  List.concat_map
    (fun z ->
      if in_x z then []
      else
        List.concat_map
          (fun x ->
            if (not (in_x x)) || not (Txn.precedes t1 (l1 z) (u1 x)) then []
            else
              List.filter_map
                (fun y ->
                  if in_x y && Txn.precedes t2 (l2 y) (u2 z) then
                    Some (z, x, y)
                  else None)
                common)
          common)
    common

let check_dominator sys ~dominator =
  let d = Dgraph.build_pair sys in
  let g = Dgraph.graph d in
  let entities = Dgraph.entities d in
  let in_x = Array.map (fun e -> List.mem e dominator) entities in
  let ok = ref true in
  Distlock_graph.Digraph.iter_arcs g (fun u v ->
      if in_x.(v) && not in_x.(u) then ok := false);
  let members = Array.to_list in_x |> List.filter Fun.id |> List.length in
  if not (!ok && members > 0 && members < Array.length entities) then
    invalid_arg "Lemmas: not a dominator of D(T1,T2)"

let lemma2 sys ~dominator =
  check_dominator sys ~dominator;
  let t1, t2 = System.pair sys in
  let l2s e = Option.get (Txn.lock_of t2 e)
  and u1 e = Option.get (Txn.unlock_of t1 e) in
  List.for_all
    (fun (_z, x, y) ->
      x <> y
      && (not (Txn.precedes t1 (u1 x) (u1 y)))
      && not (Txn.precedes t2 (l2s x) (l2s y)))
    (matching_triples sys ~dominator)

let lemma3 sys ~dominator =
  check_dominator sys ~dominator;
  if List.length (System.sites_used sys) > 2 then
    invalid_arg "Lemmas.lemma3: more than two sites";
  let t1, t2 = System.pair sys in
  let u1 e = Option.get (Txn.unlock_of t1 e)
  and l2 e = Option.get (Txn.lock_of t2 e) in
  List.for_all
    (fun (_z, x, y) ->
      match
        ( Txn.add_precedences t1 [ (u1 y, u1 x) ],
          Txn.add_precedences t2 [ (l2 y, l2 x) ] )
      with
      | Some t1', Some t2' -> (
          let sys' = System.make (System.db sys) [ t1'; t2' ] in
          (* dominator preserved in D of the one-step extension *)
          try
            check_dominator sys' ~dominator;
            true
          with Invalid_argument _ -> false)
      | _ -> false (* two-site closure steps never contradict (Lemma 2) *))
    (matching_triples sys ~dominator)

let corollary2 sys ~dominator =
  check_dominator sys ~dominator;
  if not (Closure.is_closed sys ~dominator) then true
  else
    match Certificate.construct ~original:sys ~closed:sys ~dominator with
    | Ok cert -> Certificate.verify sys cert
    | Error _ -> false
