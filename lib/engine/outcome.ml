type 'ev verdict = Safe | Unsafe of 'ev | Unknown of string

type stage_status = Decided | Passed | Errored | Skipped

type stage_trace = {
  stage : string;
  procedure : Checker.procedure;
  status : stage_status;
  detail : string;
  seconds : float;
  attrs : Distlock_obs.Attr.t;
}

type 'ev t = {
  verdict : 'ev verdict;
  procedure : Checker.procedure option;
  detail : string;
  trace : stage_trace list;
  seconds : float;
  cached : bool;
}

let map f t =
  {
    t with
    verdict =
      (match t.verdict with
      | Safe -> Safe
      | Unsafe ev -> Unsafe (f ev)
      | Unknown msg -> Unknown msg);
  }

let decided t = match t.verdict with Unknown _ -> false | Safe | Unsafe _ -> true

let provenance t =
  match t.procedure with
  | Some p -> Checker.procedure_label p
  | None -> "undecided"

let status_label = function
  | Decided -> "decided"
  | Passed -> "passed"
  | Errored -> "ERROR"
  | Skipped -> "skipped"

let pp_trace ppf trace =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%-12s [%-7s] %-7s %8.3f ms  %s" s.stage
        (Checker.procedure_label s.procedure)
        (status_label s.status) (s.seconds *. 1_000.) s.detail)
    trace;
  Format.fprintf ppf "@]"

let pp_summary ppf t =
  let verdict =
    match t.verdict with
    | Safe -> "SAFE"
    | Unsafe _ -> "UNSAFE"
    | Unknown _ -> "UNKNOWN"
  in
  Format.fprintf ppf "%s — %s [%s, %.3f ms%s]" verdict t.detail (provenance t)
    (t.seconds *. 1_000.)
    (if t.cached then ", cached" else "")
