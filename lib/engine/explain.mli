(** Typed decision-provenance records.

    An explain record is the full story of one decision: every checker
    in the pipeline in order (including the stages that never ran and
    why not), the verdict-cache and pair-cache disposition, the
    state-graph oracle's statistics when an oracle stage ran, and the
    winning procedure. It is assembled after the fact from the engine's
    checker table plus the recorded {!Outcome.t} — deciding costs
    nothing extra when nobody asks for an explanation. *)

val schema_version : string
(** ["distlock.explain/1"], emitted as the record's ["schema"] field. *)

type stage = {
  checker : string;
  procedure : string;  (** Paper-style label, e.g. ["Thm 1"]. *)
  cost : string;  (** ["O(1)"], ["poly"], or ["exp"]. *)
  applicable : bool;
  status : string;
      (** [decided | passed | error | skipped | inapplicable |
          not-reached]. The first four mirror {!Outcome.stage_status};
          the last two cover checkers absent from the trace. *)
  detail : string;
  seconds : float;
  budget_spent_s : float;
      (** Cumulative pipeline time when this stage ended. *)
  metrics : Distlock_obs.Attr.t;
      (** Checker-reported measurements; empty for most stages. *)
}

type cache = {
  fingerprint : string;  (** Hex digest of the system fingerprint. *)
  hit : bool;  (** Whole verdict served from the system-fp cache. *)
  pair_hits : int;  (** Pair verdicts reused from the pair-fp cache. *)
  pair_misses : int;
  pairs_redecided : int;
}

type oracle = {
  states : int;  (** Distinct execution states visited. *)
  dup_hits : int;  (** Transitions pruned by memoization. *)
  dedup_ratio : float;  (** [dup_hits / (states + dup_hits)]. *)
  exhausted : bool;  (** The state budget ran out before closure. *)
}

type t = {
  verdict : string;  (** ["safe"], ["unsafe"], or ["unknown"]. *)
  procedure : string;
  detail : string;
  cached : bool;
  seconds : float;
  cache : cache;
  stages : stage list;  (** Whole checker table, pipeline order. *)
  oracle : oracle option;  (** Present iff an oracle stage reported. *)
}

val of_outcome :
  checkers:('sys, 'ev) Checker.t list ->
  fingerprint:string ->
  'sys ->
  'ev Outcome.t ->
  t

val to_json : t -> Distlock_obs.Json.t

val pp : Format.formatter -> t -> unit
(** Multi-line human rendering for [check --explain]. *)
