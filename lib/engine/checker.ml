type procedure =
  | Trivial
  | Theorem_1
  | Theorem_2
  | Proposition_1
  | Corollary_2
  | Lemma_1
  | State_graph
  | Proposition_2
  | Custom of string

let procedure_label = function
  | Trivial -> "trivial"
  | Theorem_1 -> "Thm 1"
  | Theorem_2 -> "Thm 2"
  | Proposition_1 -> "Prop 1"
  | Corollary_2 -> "Cor 2"
  | Lemma_1 -> "Lemma 1"
  | State_graph -> "States"
  | Proposition_2 -> "Prop 2"
  | Custom s -> s

type cost = Constant | Polynomial | Exponential

let cost_label = function
  | Constant -> "O(1)"
  | Polynomial -> "poly"
  | Exponential -> "exp"

type 'ev stage_result =
  | Safe of string
  | Unsafe of string * 'ev
  | Pass of string
  | Error of string
  | Annotated of Distlock_obs.Attr.t * 'ev stage_result

type ('sys, 'ev) t = {
  name : string;
  procedure : procedure;
  cost : cost;
  applicable : 'sys -> bool;
  run : Budget.meter -> 'sys -> 'ev stage_result;
}

let make ~name ~procedure ~cost ~applicable ~run =
  { name; procedure; cost; applicable; run }

let rec map_result f = function
  | Safe d -> Safe d
  | Unsafe (d, ev) -> Unsafe (d, f ev)
  | Pass d -> Pass d
  | Error d -> Error d
  | Annotated (a, r) -> Annotated (a, map_result f r)

let map_evidence f c =
  { c with run = (fun meter sys -> map_result f (c.run meter sys)) }

let rec strip = function
  | Annotated (attrs, r) ->
      let attrs', r' = strip r in
      (attrs @ attrs', r')
  | r -> ([], r)
