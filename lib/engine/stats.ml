module M = Distlock_obs.Metric
module R = Distlock_obs.Registry

type stage = {
  stage_name : string;
  mutable attempts : int;
  mutable decided_safe : int;
  mutable decided_unsafe : int;
  mutable passed : int;
  mutable errors : int;
  mutable skipped : int;
  mutable seconds : float;
}

(* Registry-backed handles per pipeline stage. The [stage] record above
   is kept as the read-only view the accessors return, so callers written
   against the original mutable-record API keep compiling. *)
type handles = {
  h_name : string;
  safe_c : M.counter;
  unsafe_c : M.counter;
  passed_c : M.counter;
  errors_c : M.counter;
  skipped_c : M.counter;
  seconds_h : M.histogram;
}

(* [tbl]/[order] are guarded by [lock]: stage handles are get-or-create
   and several pool domains can record the same stage's first sample at
   once. The counters themselves are [Atomic]-backed ({!M}), so the
   recording hot path after handle lookup is lock-free. *)
type t = {
  reg : R.t;
  decisions_c : M.counter;
  cache_hits_c : M.counter;
  cache_misses_c : M.counter;
  unknowns_c : M.counter;
  pair_hits_c : M.counter;
  pair_misses_c : M.counter;
  pairs_redecided_c : M.counter;
  tbl : (string, handles) Hashtbl.t;
  mutable order : string list;  (* reversed first-seen order *)
  lock : Mutex.t;
}

let create ?registry () =
  let reg = match registry with Some r -> r | None -> R.create () in
  {
    reg;
    decisions_c =
      R.counter reg ~help:"Decisions served (cached or computed)"
        "distlock_engine_decisions_total";
    cache_hits_c =
      R.counter reg ~help:"Decisions served from the verdict cache"
        "distlock_engine_cache_hits_total";
    cache_misses_c =
      R.counter reg ~help:"Cache lookups that ran the pipeline"
        "distlock_engine_cache_misses_total";
    unknowns_c =
      R.counter reg ~help:"Decisions that ended Unknown"
        "distlock_engine_unknowns_total";
    pair_hits_c =
      R.counter reg ~help:"Pair verdicts served from the pair-fingerprint cache"
        "distlock_engine_pair_hits_total";
    pair_misses_c =
      R.counter reg ~help:"Pair-fingerprint cache lookups that missed"
        "distlock_engine_pair_misses_total";
    pairs_redecided_c =
      R.counter reg ~help:"Pair pipeline runs forced by a pair-cache miss"
        "distlock_engine_pairs_redecided_total";
    tbl = Hashtbl.create 8;
    order = [];
    lock = Mutex.create ();
  }

let registry t = t.reg

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | r ->
      Mutex.unlock t.lock;
      r
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let reset t =
  R.reset t.reg;
  with_lock t (fun () ->
      Hashtbl.reset t.tbl;
      t.order <- [])

let result_counter t ~stage result =
  R.counter t.reg
    ~labels:[ ("stage", stage); ("result", result) ]
    ~help:"Stage executions by result" "distlock_engine_stage_total"

let handles t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              safe_c = result_counter t ~stage:name "safe";
              unsafe_c = result_counter t ~stage:name "unsafe";
              passed_c = result_counter t ~stage:name "passed";
              errors_c = result_counter t ~stage:name "error";
              skipped_c = result_counter t ~stage:name "skipped";
              seconds_h =
                R.histogram t.reg
                  ~labels:[ ("stage", name) ]
                  ~help:"Stage latency in seconds"
                  "distlock_engine_stage_seconds";
            }
          in
          Hashtbl.add t.tbl name h;
          t.order <- name :: t.order;
          h)

let record_stage t ~name (status, unsafe) seconds =
  let h = handles t name in
  (* Skips consume no stage time; recording a 0-duration observation
     would drag the latency histogram toward the lowest bucket. *)
  (match status with
  | Outcome.Skipped -> ()
  | Outcome.Decided | Outcome.Passed | Outcome.Errored ->
      M.observe h.seconds_h seconds);
  match status with
  | Outcome.Decided -> M.incr (if unsafe then h.unsafe_c else h.safe_c)
  | Outcome.Passed -> M.incr h.passed_c
  | Outcome.Errored -> M.incr h.errors_c
  | Outcome.Skipped -> M.incr h.skipped_c

let record_decision t ~cached ~unknown =
  M.incr t.decisions_c;
  if cached then M.incr t.cache_hits_c;
  if unknown then M.incr t.unknowns_c

let record_cache_miss t = M.incr t.cache_misses_c

let record_pair_lookup t ~hit =
  M.incr (if hit then t.pair_hits_c else t.pair_misses_c)

let record_pair_redecided t = M.incr t.pairs_redecided_c

let decisions t = M.counter_value t.decisions_c

let cache_hits t = M.counter_value t.cache_hits_c

let cache_misses t = M.counter_value t.cache_misses_c

let unknowns t = M.counter_value t.unknowns_c

let pair_hits t = M.counter_value t.pair_hits_c

let pair_misses t = M.counter_value t.pair_misses_c

let pairs_redecided t = M.counter_value t.pairs_redecided_c

let hit_rate t =
  let d = decisions t in
  if d = 0 then 0. else float_of_int (cache_hits t) /. float_of_int d

let view h =
  let safe = M.counter_value h.safe_c
  and unsafe = M.counter_value h.unsafe_c
  and passed = M.counter_value h.passed_c
  and errors = M.counter_value h.errors_c in
  {
    stage_name = h.h_name;
    attempts = safe + unsafe + passed + errors;
    decided_safe = safe;
    decided_unsafe = unsafe;
    passed;
    errors;
    skipped = M.counter_value h.skipped_c;
    seconds = M.histogram_sum h.seconds_h;
  }

let stages t =
  (* Snapshot order and handles in one critical section so a concurrent
     [reset] cannot empty [tbl] between reading a name and resolving it;
     the handle counters themselves are atomic, so [view] runs unlocked. *)
  let hs =
    with_lock t (fun () ->
        List.filter_map (fun name -> Hashtbl.find_opt t.tbl name) t.order)
  in
  List.rev_map view hs

let quantiles t =
  let hs =
    with_lock t (fun () ->
        List.filter_map (fun name -> Hashtbl.find_opt t.tbl name) t.order)
  in
  List.rev_map
    (fun h ->
      ( h.h_name,
        ( M.quantile h.seconds_h 0.5,
          M.quantile h.seconds_h 0.9,
          M.quantile h.seconds_h 0.99 ) ))
    hs

(* Mean time per run, defined as 0 when the stage was recorded but never
   attempted (deadline skips only) — not NaN. *)
let mean_seconds s =
  if s.attempts = 0 then 0. else s.seconds /. float_of_int s.attempts

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "decisions: %d (%d unknown); cache: %d hit(s), %d miss(es), hit rate \
     %.1f%%@,"
    (decisions t) (unknowns t) (cache_hits t) (cache_misses t)
    (100. *. hit_rate t);
  (* The pair-cache line appears only once the pair store has been
     consulted, so pair-free pipelines print exactly as before. *)
  if pair_hits t + pair_misses t > 0 then
    Format.fprintf ppf
      "pair cache: %d hit(s), %d miss(es), %d pair(s) re-decided@,"
      (pair_hits t) (pair_misses t) (pairs_redecided t);
  (match stages t with
  | [] -> Format.fprintf ppf "(no stage activity)"
  | stages ->
      let qs = quantiles t in
      (* Bucket-interpolated, so a skip-only stage has no samples: its
         quantiles are NaN and print as a dash. *)
      let q ppf v =
        if Float.is_nan v then Format.fprintf ppf " %12s" "-"
        else Format.fprintf ppf " %9.3f ms" (v *. 1_000.)
      in
      Format.fprintf ppf "%-12s %8s %6s %8s %8s %7s %8s %12s %12s %12s %12s %12s"
        "stage" "runs" "safe" "unsafe" "passed" "errors" "skipped" "time"
        "mean" "p50" "p90" "p99";
      List.iter
        (fun s ->
          let q50, q90, q99 =
            match List.assoc_opt s.stage_name qs with
            | Some triple -> triple
            | None -> (Float.nan, Float.nan, Float.nan)
          in
          Format.fprintf ppf
            "@,%-12s %8d %6d %8d %8d %7d %8d %9.3f ms %9.3f ms%a%a%a"
            s.stage_name s.attempts s.decided_safe s.decided_unsafe s.passed
            s.errors s.skipped (s.seconds *. 1_000.)
            (mean_seconds s *. 1_000.)
            q q50 q q90 q q99)
        stages);
  Format.fprintf ppf "@]"

let pp_prometheus ppf t = R.pp_prometheus ppf t.reg
