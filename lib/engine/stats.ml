type stage = {
  stage_name : string;
  mutable attempts : int;
  mutable decided_safe : int;
  mutable decided_unsafe : int;
  mutable passed : int;
  mutable errors : int;
  mutable skipped : int;
  mutable seconds : float;
}

type t = {
  mutable decisions : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable unknowns : int;
  tbl : (string, stage) Hashtbl.t;
  mutable order : string list;  (* reversed first-seen order *)
}

let create () =
  { decisions = 0; cache_hits = 0; cache_misses = 0; unknowns = 0;
    tbl = Hashtbl.create 8; order = [] }

let reset t =
  t.decisions <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.unknowns <- 0;
  Hashtbl.reset t.tbl;
  t.order <- []

let stage t name =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> s
  | None ->
      let s =
        { stage_name = name; attempts = 0; decided_safe = 0;
          decided_unsafe = 0; passed = 0; errors = 0; skipped = 0;
          seconds = 0. }
      in
      Hashtbl.add t.tbl name s;
      t.order <- name :: t.order;
      s

let record_stage t ~name (status, unsafe) seconds =
  let s = stage t name in
  s.seconds <- s.seconds +. seconds;
  match status with
  | Outcome.Decided ->
      s.attempts <- s.attempts + 1;
      if unsafe then s.decided_unsafe <- s.decided_unsafe + 1
      else s.decided_safe <- s.decided_safe + 1
  | Outcome.Passed ->
      s.attempts <- s.attempts + 1;
      s.passed <- s.passed + 1
  | Outcome.Errored ->
      s.attempts <- s.attempts + 1;
      s.errors <- s.errors + 1
  | Outcome.Skipped -> s.skipped <- s.skipped + 1

let record_decision t ~cached ~unknown =
  t.decisions <- t.decisions + 1;
  if cached then t.cache_hits <- t.cache_hits + 1;
  if unknown then t.unknowns <- t.unknowns + 1

let record_cache_miss t = t.cache_misses <- t.cache_misses + 1

let decisions t = t.decisions

let cache_hits t = t.cache_hits

let cache_misses t = t.cache_misses

let unknowns t = t.unknowns

let hit_rate t =
  if t.decisions = 0 then 0.
  else float_of_int t.cache_hits /. float_of_int t.decisions

let stages t = List.rev_map (Hashtbl.find t.tbl) t.order

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "decisions: %d (%d unknown); cache: %d hit(s), %d miss(es), hit rate \
     %.1f%%@,"
    t.decisions t.unknowns t.cache_hits t.cache_misses (100. *. hit_rate t);
  Format.fprintf ppf "%-12s %8s %6s %8s %8s %7s %8s %12s" "stage" "runs"
    "safe" "unsafe" "passed" "errors" "skipped" "time";
  List.iter
    (fun s ->
      Format.fprintf ppf "@,%-12s %8d %6d %8d %8d %7d %8d %9.3f ms"
        s.stage_name s.attempts s.decided_safe s.decided_unsafe s.passed
        s.errors s.skipped (s.seconds *. 1_000.))
    (stages t);
  Format.fprintf ppf "@]"
