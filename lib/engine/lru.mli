(** A string-keyed LRU map with a fixed capacity, used as the verdict
    cache: keys are canonical system fingerprints, values are outcomes.
    All operations are O(1) (hash table + intrusive doubly-linked list).
    Not thread-safe. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Marks the entry most-recently used on a hit. *)

val mem : 'a t -> string -> bool
(** Does not touch recency. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or overwrite; the entry becomes most-recently used. Evicts the
    least-recently-used entry when the cache is full. *)

val evictions : 'a t -> int
(** Total entries evicted since creation. *)

val clear : 'a t -> unit

val keys : 'a t -> string list
(** Most-recently used first. *)
