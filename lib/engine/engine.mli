(** The staged safety-decision engine.

    An engine instance bundles an ordered checker pipeline, a canonical
    fingerprint function, an LRU verdict cache keyed on fingerprints, a
    default budget, and instrumentation counters. It serves single
    decisions ({!decide}) and deduplicated batches ({!decide_batch}).

    Caching is sound because fingerprints are canonical over everything a
    verdict depends on (database, steps, partial orders). [Unknown]
    outcomes are {e never} cached: they depend on the budget of the call
    that produced them, and a later call with a larger budget must be
    allowed to try again.

    Engine instances are not thread-safe; use one per domain. *)

type ('sys, 'ev) t

val create :
  ?cache_capacity:int ->
  ?budget:Budget.t ->
  fingerprint:('sys -> string) ->
  ('sys, 'ev) Checker.t list ->
  ('sys, 'ev) t
(** [cache_capacity] defaults to [1024]; [0] (or negative) disables the
    verdict cache. [budget] (default {!Budget.unlimited}) applies to
    every decision that does not pass its own. Raises [Invalid_argument]
    on an empty checker list. *)

val checkers : ('sys, 'ev) t -> ('sys, 'ev) Checker.t list

val stats : _ t -> Stats.t

val cache_len : _ t -> int
(** Current number of cached verdicts ([0] when caching is disabled). *)

val clear_cache : _ t -> unit

val run :
  ?stats:Stats.t ->
  ?budget:Budget.t ->
  ('sys, 'ev) Checker.t list ->
  'sys ->
  'ev Outcome.t
(** Stateless single run of a pipeline — no engine instance, no cache.
    Stages run in order; inapplicable stages are ignored, stages after
    the budget's deadline are marked [Skipped], stage errors are recorded
    and the pipeline continues. If no stage decides, the outcome is
    [Unknown] carrying the aggregated stage errors. *)

val decide : ?budget:Budget.t -> ('sys, 'ev) t -> 'sys -> 'ev Outcome.t
(** Fingerprint, consult the cache, run the pipeline on a miss, store
    decided outcomes. The returned outcome has [cached = true] on a
    hit. *)

(** What happened to one batch. *)
type batch_report = {
  submitted : int;
  unique : int;  (** Distinct fingerprints in the batch. *)
  batch_dedup_hits : int;  (** Duplicates folded within this batch. *)
  cache_hits : int;  (** Served by the engine's LRU cache. *)
  cache_misses : int;  (** Full pipeline runs. *)
  batch_seconds : float;
  per_procedure : (string * int) list;
      (** Deciding procedure label -> verdict count over unique systems. *)
}

val hit_rate : batch_report -> float
(** (batch-dedup hits + cache hits) / submitted; [0.] on an empty batch. *)

val decide_batch :
  ?budget:Budget.t -> ('sys, 'ev) t -> 'sys list -> 'ev Outcome.t list * batch_report
(** Decide many systems at once: duplicates (by fingerprint) are decided
    once and their outcome replicated, in submission order. Per-stage
    counters and timings accumulate in [stats t]. *)

val pp_batch_report : Format.formatter -> batch_report -> unit
