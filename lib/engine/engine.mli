(** The staged safety-decision engine.

    An engine instance bundles an ordered checker pipeline, a canonical
    fingerprint function, a sharded LRU verdict cache keyed on
    fingerprints, a default budget, and instrumentation counters. It
    serves single decisions ({!decide}) and deduplicated batches
    ({!decide_batch}), optionally fanned out over a domain pool
    ([~jobs]).

    Caching is sound because fingerprints are canonical over everything a
    verdict depends on (database, steps, partial orders). [Unknown]
    outcomes are {e never} cached: they depend on the budget of the call
    that produced them, and a later call with a larger budget must be
    allowed to try again.

    Domain-safety: the pipeline core is pure, the cache is sharded
    ({!Lru_sharded}), and {!Stats} is atomic-counter-backed — one engine
    instance may serve {!decide} calls from several domains
    concurrently. *)

type ('sys, 'ev) t

val create :
  ?cache_capacity:int ->
  ?budget:Budget.t ->
  ?stats:Stats.t ->
  fingerprint:('sys -> string) ->
  ('sys, 'ev) Checker.t list ->
  ('sys, 'ev) t
(** [cache_capacity] defaults to [1024]; [0] (or negative) disables the
    verdict cache. [budget] (default {!Budget.unlimited}) applies to
    every decision that does not pass its own. [stats] (default a fresh
    instance) lets checkers that record into a stats sink of their own —
    e.g. a pair-cache-consulting Proposition 2 stage — share one
    instance with the engine, so batch reports see their counters.
    Raises [Invalid_argument] on an empty checker list. *)

val checkers : ('sys, 'ev) t -> ('sys, 'ev) Checker.t list

val stats : _ t -> Stats.t

val cache_len : _ t -> int
(** Current number of cached verdicts ([0] when caching is disabled). *)

val clear_cache : _ t -> unit

val run :
  ?stats:Stats.t ->
  ?budget:Budget.t ->
  ('sys, 'ev) Checker.t list ->
  'sys ->
  'ev Outcome.t
(** Stateless single run of a pipeline — no engine instance, no cache.
    Stages run in order; inapplicable stages are ignored, stages after
    the budget's deadline are marked [Skipped], stage errors are recorded
    and the pipeline continues. If no stage decides, the outcome is
    [Unknown] carrying the aggregated stage errors.

    Reentrant: allocates no shared state, so the same checker list may
    be run from several domains at once. Stage [seconds] are monotonic
    wall time ({!Distlock_obs.Obs.mono_s}); the per-stage span
    additionally carries a [cpu_seconds] attribute
    ({!Distlock_obs.Obs.cpu_s}). *)

val decide : ?budget:Budget.t -> ('sys, 'ev) t -> 'sys -> 'ev Outcome.t
(** Fingerprint, consult the cache, run the pipeline on a miss, store
    decided outcomes. The returned outcome has [cached = true] on a
    hit. Safe to call concurrently from several domains. *)

val explain : ('sys, 'ev) t -> 'sys -> 'ev Outcome.t -> Explain.t
(** Assemble the typed provenance record ({!Explain.t}) for an outcome
    this engine produced for [sys]: the full checker table with per-stage
    statuses (including [inapplicable] and [not-reached]), cache
    disposition, and oracle statistics. Pure post-processing — costs
    nothing unless called. *)

val decide_explained :
  ?budget:Budget.t -> ('sys, 'ev) t -> 'sys -> 'ev Outcome.t * Explain.t
(** {!decide} followed by {!explain} on the result. *)

(** What happened to one batch. *)
type batch_report = {
  submitted : int;
  unique : int;  (** Distinct fingerprints in the batch. *)
  batch_dedup_hits : int;  (** Duplicates folded within this batch. *)
  cache_hits : int;  (** Served by the engine's LRU cache. *)
  cache_misses : int;  (** Full pipeline runs. *)
  pair_hits : int;
      (** Pair verdicts served from the pair-fingerprint cache during
          this batch (multi-transaction systems only; [0] otherwise). *)
  pair_misses : int;  (** Pair-cache lookups that missed. *)
  pairs_redecided : int;  (** Pair pipeline runs forced by those misses. *)
  batch_seconds : float;  (** Wall-clock seconds for the whole batch. *)
  jobs : int;  (** Domain count the batch ran with ([1] = sequential). *)
  per_procedure : (string * int) list;
      (** Deciding procedure label -> verdict count over unique systems,
          in first-seen submission order. *)
}

val hit_rate : batch_report -> float
(** (batch-dedup hits + cache hits) / submitted; [0.] on an empty batch. *)

val decide_batch :
  ?budget:Budget.t ->
  ?jobs:int ->
  ('sys, 'ev) t ->
  'sys list ->
  'ev Outcome.t list * batch_report
(** Decide many systems at once: duplicates (by fingerprint) are decided
    once and their outcome replicated, in submission order. Per-stage
    counters and timings accumulate in [stats t].

    [jobs] (default [1]) is the number of domains deciding the batch's
    distinct systems. [jobs:1] runs everything on the calling domain and
    is exactly the sequential behavior; [jobs:n] fans the distinct
    systems out to [n] pool domains and then merges on the caller, so
    outcomes, their order, and every report field except [batch_seconds]
    are identical for every [jobs]. Raises [Invalid_argument] when
    [jobs < 1]. *)

val pp_batch_report : Format.formatter -> batch_report -> unit
(** One line of totals plus a per-procedure tally; mentions the job
    count only when it is > 1, so sequential output is unchanged. *)
