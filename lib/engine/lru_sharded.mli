(** A domain-safe sharded LRU map: the hash of the key selects one of
    [shards] independent {!Lru} instances, each behind its own mutex.
    All operations stay O(1); concurrent operations on different shards
    never contend.

    Semantics vs the plain {!Lru}: eviction is least-recently-used
    {e within a shard}, not globally — an approximation that is
    invisible for uniformly hashed keys (system fingerprints). Total
    capacity is the per-shard capacity summed, rounded {e up} from the
    request, never below it. *)

type 'a t

val create : ?shards:int -> capacity:int -> unit -> 'a t
(** [shards] defaults to {!default_shards} and is rounded up to a power
    of two (and down to [capacity] when the cache is tiny). Raises
    [Invalid_argument] when [capacity < 1] or [shards < 1]. *)

val default_shards : int
(** 16 — above any plausible [--jobs] width on one machine, small
    enough that per-shard capacity stays meaningful. *)

val num_shards : _ t -> int

val capacity : _ t -> int
(** Summed over shards; [>=] the capacity passed to {!create}. *)

val length : _ t -> int

val find : 'a t -> string -> 'a option
(** Marks the entry most-recently used within its shard on a hit. *)

val mem : _ t -> string -> bool

val add : 'a t -> string -> 'a -> unit

val evictions : _ t -> int

val clear : _ t -> unit
