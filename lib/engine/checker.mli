(** First-class decision procedures ("checkers").

    Each of the paper's deciders becomes a value of type [('sys, 'ev) t]:
    a named stage with a provenance tag, a cost class, an applicability
    predicate, and a budgeted [run] function returning a structured
    {!stage_result} instead of free-form strings or silently-swallowed
    exceptions. The {!Engine} runs a list of checkers as a staged
    pipeline, cheapest and strongest first.

    The types are polymorphic in the subject ['sys] and the unsafety
    evidence ['ev] so this library stays independent of the transaction
    model; the concrete checker table for the paper's procedures lives in
    [Distlock_core.Checkers]. *)

(** Which result of the paper a verdict rests on. *)
type procedure =
  | Trivial  (** Degenerate instances (e.g. fewer than two common entities). *)
  | Theorem_1  (** Strong connectivity of [D(T1,T2)] — sufficient, any sites. *)
  | Theorem_2  (** The exact two-site decision with closure certificates. *)
  | Proposition_1  (** The geometric separation test on total orders. *)
  | Corollary_2  (** The dominator-closure sweep, any number of sites. *)
  | Lemma_1  (** Exhaustive check of all extension pairs. *)
  | State_graph
      (** Memoized reachability over bitset-packed execution states — an
          exact oracle exponentially cheaper than schedule enumeration. *)
  | Proposition_2  (** The many-transaction criterion ([G], [B_c] cycles). *)
  | Custom of string  (** Extension point for non-paper procedures. *)

val procedure_label : procedure -> string
(** Short paper-style label: ["Thm 1"], ["Prop 1"], ["Cor 2"], … *)

(** Asymptotic cost class, used to order stages and decide what a
    deadline-expired pipeline may still skip. *)
type cost = Constant | Polynomial | Exponential

val cost_label : cost -> string

(** What one stage concluded about one subject. *)
type 'ev stage_result =
  | Safe of string  (** Decided safe; the string says why. *)
  | Unsafe of string * 'ev  (** Decided unsafe, with evidence. *)
  | Pass of string  (** Inconclusive here; try the next stage. *)
  | Error of string
      (** The stage itself failed (budget exceeded, construction error).
          Recorded in the trace and surfaced in an [Unknown] verdict if no
          later stage decides — never silently masked. *)
  | Annotated of Distlock_obs.Attr.t * 'ev stage_result
      (** A result wrapped with measured attributes (states visited,
          pair-cache traffic, …). The engine strips the wrapper and
          attaches the attributes to the stage's trace entry and span,
          where [check --explain] and the trace exporters surface them. *)

type ('sys, 'ev) t = {
  name : string;
  procedure : procedure;
  cost : cost;
  applicable : 'sys -> bool;
  run : Budget.meter -> 'sys -> 'ev stage_result;
}

val make :
  name:string ->
  procedure:procedure ->
  cost:cost ->
  applicable:('sys -> bool) ->
  run:(Budget.meter -> 'sys -> 'ev stage_result) ->
  ('sys, 'ev) t

val map_evidence : ('a -> 'b) -> ('sys, 'a) t -> ('sys, 'b) t
(** Lift a checker into a wider evidence type (used to combine the
    two-transaction table with the many-transaction checker). *)

val strip : 'ev stage_result -> Distlock_obs.Attr.t * 'ev stage_result
(** Unwrap nested {!Annotated} layers: the collected attributes
    (outermost first) and the underlying plain result. *)
