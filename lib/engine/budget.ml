type t = { max_steps : int option; max_seconds : float option }

let unlimited = { max_steps = None; max_seconds = None }

let make ?max_steps ?max_seconds () =
  (match max_steps with
  | Some n when n < 0 -> invalid_arg "Budget.make: negative max_steps"
  | _ -> ());
  (match max_seconds with
  | Some s when s < 0. -> invalid_arg "Budget.make: negative max_seconds"
  | _ -> ());
  { max_steps; max_seconds }

let of_steps n = make ~max_steps:n ()

let describe t =
  match (t.max_steps, t.max_seconds) with
  | None, None -> "unlimited"
  | Some n, None -> Printf.sprintf "%d steps" n
  | None, Some s -> Printf.sprintf "%.3f s" s
  | Some n, Some s -> Printf.sprintf "%d steps, %.3f s" n s

(* Deadlines are monotonic wall time ([Obs.mono_s]), not process CPU
   time: with several domains running, CPU time advances domain-count
   times faster than the clock on the wall, which would expire
   deadlines early — and a meter that outlives its stage must measure
   the wait, not the burn. Monotonic rather than [gettimeofday],
   because an NTP step must not expire (or un-expire) a deadline. *)
type meter = { spec : t; started : float }

let start spec = { spec; started = Distlock_obs.Obs.mono_s () }

let budget m = m.spec

let elapsed m = Distlock_obs.Obs.mono_s () -. m.started

(* [>=] so that [max_seconds = 0.] deterministically means "no time at
   all" regardless of clock granularity. *)
let expired m =
  match m.spec.max_seconds with None -> false | Some s -> elapsed m >= s

let remaining_seconds m =
  match m.spec.max_seconds with
  | None -> None
  | Some s -> Some (Float.max 0. (s -. elapsed m))

let step_allowance m ~default =
  match m.spec.max_steps with None -> default | Some n -> n
