(** Verdicts with structured provenance.

    Where the old dispatcher returned bare strings, an engine outcome
    records {e which} paper procedure decided, the full per-stage trace
    (status, detail, elapsed time), the total decision time, and whether
    the verdict came from the cache. *)

type 'ev verdict = Safe | Unsafe of 'ev | Unknown of string

type stage_status =
  | Decided  (** This stage produced the verdict. *)
  | Passed  (** Ran but was inconclusive. *)
  | Errored  (** Failed (budget, construction error); surfaced, not masked. *)
  | Skipped  (** Not run because the budget's deadline had expired. *)

type stage_trace = {
  stage : string;  (** Checker name. *)
  procedure : Checker.procedure;
  status : stage_status;
  detail : string;
  seconds : float;  (** Wall (monotonic) time spent in this stage. *)
  attrs : Distlock_obs.Attr.t;
      (** Checker-reported measurements ({!Checker.Annotated}): states
          visited, pair-cache traffic, budget exhaustion flags, … Empty
          for stages that report none. *)
}

type 'ev t = {
  verdict : 'ev verdict;
  procedure : Checker.procedure option;
      (** The procedure that decided; [None] iff the verdict is
          [Unknown]. *)
  detail : string;
      (** Why: the deciding stage's explanation, or the aggregated error
          messages of an [Unknown]. *)
  trace : stage_trace list;  (** Applicable stages, in pipeline order. *)
  seconds : float;  (** Total decision time (processor seconds). *)
  cached : bool;  (** Served from the verdict cache. *)
}

val map : ('a -> 'b) -> 'a t -> 'b t

val decided : _ t -> bool
(** [true] unless the verdict is [Unknown]. *)

val provenance : _ t -> string
(** ["Thm 1"], …, or ["undecided"] for [Unknown] outcomes. *)

val status_label : stage_status -> string
(** ["decided"], ["passed"], ["ERROR"], or ["skipped"]. *)

val pp_trace : Format.formatter -> stage_trace list -> unit
(** One line per stage: name, procedure, status, time, detail. *)

val pp_summary : Format.formatter -> _ t -> unit
(** e.g. ["SAFE — Theorem 1: … [Thm 1, 0.12 ms]"]. *)
