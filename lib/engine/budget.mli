(** Explicit resource budgets for staged decision pipelines.

    A budget bounds how much work a pipeline may spend on one decision:
    an optional cap on enumeration steps (schedules, pictures, extension
    pairs — whatever the exponential stages count) and an optional
    deadline in seconds. This replaces ad-hoc threading of integer
    [exhaustive_budget] arguments through every layer.

    A {!meter} is a started budget: it carries the start time so stages
    and the pipeline driver can ask whether the deadline has passed and
    how many enumeration steps the remaining stages may still spend. *)

type t = {
  max_steps : int option;
      (** Cap on enumeration steps for exhaustive stages; [None] means
          the stage's own documented default applies. *)
  max_seconds : float option;
      (** Relative wall-clock deadline (seconds from {!start});
          [None] means no deadline. *)
}

val unlimited : t
(** No step cap, no deadline. *)

val make : ?max_steps:int -> ?max_seconds:float -> unit -> t
(** Raises [Invalid_argument] on a negative cap or deadline. *)

val of_steps : int -> t
(** [of_steps n] = [make ~max_steps:n ()]. *)

val describe : t -> string
(** Human-readable rendering, e.g. ["2000000 steps"] or ["unlimited"]. *)

(** {1 Started budgets} *)

type meter

val start : t -> meter
(** Stamp the current time; the deadline (if any) counts from here. *)

val budget : meter -> t

val elapsed : meter -> float
(** Wall-clock seconds since {!start} ({!Distlock_obs.Obs.now_s}) —
    not CPU time, which diverges under multiple domains. *)

val expired : meter -> bool
(** Has the deadline passed? (Always [false] without one.) *)

val remaining_seconds : meter -> float option
(** Deadline seconds still available, clamped at [0.]; [None] without a
    deadline. *)

val step_allowance : meter -> default:int -> int
(** The step cap for an exhaustive stage: the budget's [max_steps] if
    set, the stage's [default] otherwise. *)
