(** Instrumentation counters for an engine instance: how many decisions
    were served, how the cache behaved, and — per pipeline stage — how
    often each checker ran, what it concluded, and how much time it
    consumed. Mutated in place by {!Engine}; read with the accessors or
    rendered with {!pp}. *)

type stage = {
  stage_name : string;
  mutable attempts : int;  (** Times the stage was run. *)
  mutable decided_safe : int;
  mutable decided_unsafe : int;
  mutable passed : int;
  mutable errors : int;
  mutable skipped : int;  (** Deadline-expired skips (not counted as attempts). *)
  mutable seconds : float;  (** Cumulative processor time in the stage. *)
}

type t

val create : unit -> t

val reset : t -> unit

val record_stage : t -> name:string -> Outcome.stage_status * bool -> float -> unit
(** [record_stage t ~name (status, unsafe) seconds]: bump the stage's
    counters. [unsafe] disambiguates [Decided] into safe/unsafe. *)

val record_decision : t -> cached:bool -> unknown:bool -> unit

val record_cache_miss : t -> unit

val decisions : t -> int

val cache_hits : t -> int

val cache_misses : t -> int

val unknowns : t -> int

val hit_rate : t -> float
(** [cache_hits / decisions]; [0.] before any decision. *)

val stages : t -> stage list
(** In first-recorded order. *)

val pp : Format.formatter -> t -> unit
