(** Instrumentation for an engine instance, backed by a
    {!Distlock_obs.Registry}: decision/cache counters plus, per pipeline
    stage, result-labeled counters and a latency histogram. The original
    accessor API is preserved — callers still read plain ints and a
    {!stage} record list — while [--metrics] exports the same numbers as
    Prometheus text via {!pp_prometheus}.

    Domain-safe: the counters are [Atomic]-backed, stage-handle creation
    is mutex-guarded get-or-create, so concurrent recording from pool
    workers ([decide_batch ~jobs]) loses no samples. *)

type stage = {
  stage_name : string;
  mutable attempts : int;  (** Times the stage was run. *)
  mutable decided_safe : int;
  mutable decided_unsafe : int;
  mutable passed : int;
  mutable errors : int;
  mutable skipped : int;  (** Deadline-expired skips (not counted as attempts). *)
  mutable seconds : float;  (** Cumulative wall-clock time in the stage. *)
}
(** A point-in-time view computed from the registry; mutating it does
    not write back. *)

type t

val create : ?registry:Distlock_obs.Registry.t -> unit -> t
(** By default each engine owns a private registry; pass [registry]
    (e.g. {!Distlock_obs.Obs.global}) to co-locate the metrics. Metric
    names are fixed ([distlock_engine_*]), so two engines sharing one
    registry also share counters. *)

val registry : t -> Distlock_obs.Registry.t

val reset : t -> unit

val record_stage : t -> name:string -> Outcome.stage_status * bool -> float -> unit
(** [record_stage t ~name (status, unsafe) seconds]: bump the stage's
    counters. [unsafe] disambiguates [Decided] into safe/unsafe. *)

val record_decision : t -> cached:bool -> unknown:bool -> unit

val record_cache_miss : t -> unit

val record_pair_lookup : t -> hit:bool -> unit
(** One lookup in a pair-fingerprint verdict store (the pair-granular
    cache behind Proposition 2 and [decide_delta]). *)

val record_pair_redecided : t -> unit
(** The pair pipeline actually ran for one pair (always follows a miss;
    a lookup whose pipeline run ends [Unknown] is a miss that is {e not}
    re-decided, since nothing cacheable was produced). *)

val decisions : t -> int

val cache_hits : t -> int

val cache_misses : t -> int

val unknowns : t -> int

val pair_hits : t -> int

val pair_misses : t -> int

val pairs_redecided : t -> int

val hit_rate : t -> float
(** [cache_hits / decisions]; [0.] before any decision. *)

val stages : t -> stage list
(** In first-recorded order. *)

val quantiles : t -> (string * (float * float * float)) list
(** Per-stage bucket-interpolated (p50, p90, p99) of the stage latency
    histogram in seconds, in first-recorded order; a NaN triple for a
    stage with no timed runs (e.g. only ever skipped). *)

val mean_seconds : stage -> float
(** Mean time per attempted run; [0.] (not NaN) for a stage that was
    recorded but never attempted, e.g. one only ever skipped. *)

val pp : Format.formatter -> t -> unit

val pp_prometheus : Format.formatter -> t -> unit
(** The engine's registry in Prometheus text exposition format. *)
