(* A sharded LRU: hash of the fingerprint picks a shard, one mutex and
   one plain {!Lru} per shard. Contention drops by the shard count while
   each operation stays O(1); the price is that eviction is LRU *per
   shard* rather than globally (a cold shard can retain an entry older
   than one a hot shard just evicted). For a verdict cache keyed by
   cryptographic-quality fingerprints the shard loading is uniform and
   the approximation is invisible in hit rates.

   16 shards: comfortably above any plausible [--jobs] on one machine
   (so two domains rarely contend), small enough that per-shard capacity
   stays meaningful for caches of a few hundred entries. A power of two
   keeps shard selection a mask. *)

let default_shards = 16

type 'a shard = { lock : Mutex.t; lru : 'a Lru.t }

type 'a t = { shards : 'a shard array; mask : int }

let with_shard s f =
  Mutex.lock s.lock;
  match f s.lru with
  | r ->
      Mutex.unlock s.lock;
      r
  | exception e ->
      Mutex.unlock s.lock;
      raise e

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let create ?(shards = default_shards) ~capacity () =
  if capacity < 1 then
    invalid_arg "Lru_sharded.create: capacity must be >= 1";
  if shards < 1 then invalid_arg "Lru_sharded.create: shards must be >= 1";
  let n = next_pow2 (min shards capacity) 1 in
  (* Round per-shard capacity up: total capacity is at least the request
     (never below it — a cache that silently shrinks under-serves). *)
  let per_shard = (capacity + n - 1) / n in
  {
    shards =
      Array.init n (fun _ ->
          { lock = Mutex.create (); lru = Lru.create ~capacity:per_shard });
    mask = n - 1;
  }

let shard t key = t.shards.(Hashtbl.hash key land t.mask)

let num_shards t = Array.length t.shards

let capacity t =
  Array.fold_left (fun acc s -> acc + Lru.capacity s.lru) 0 t.shards

let length t =
  Array.fold_left
    (fun acc s -> acc + with_shard s Lru.length)
    0 t.shards

let find t key = with_shard (shard t key) (fun lru -> Lru.find lru key)

let mem t key = with_shard (shard t key) (fun lru -> Lru.mem lru key)

let add t key value =
  with_shard (shard t key) (fun lru -> Lru.add lru key value)

let evictions t =
  Array.fold_left
    (fun acc s -> acc + with_shard s Lru.evictions)
    0 t.shards

let clear t = Array.iter (fun s -> with_shard s Lru.clear) t.shards
