module Obs = Distlock_obs.Obs
module A = Distlock_obs.Attr

type ('sys, 'ev) t = {
  checkers : ('sys, 'ev) Checker.t list;
  fingerprint : 'sys -> string;
  cache : 'ev Outcome.t Lru.t option;
  stats : Stats.t;
  default_budget : Budget.t;
}

let create ?(cache_capacity = 1024) ?(budget = Budget.unlimited) ~fingerprint
    checkers =
  if checkers = [] then invalid_arg "Engine.create: no checkers";
  {
    checkers;
    fingerprint;
    cache =
      (if cache_capacity <= 0 then None
       else Some (Lru.create ~capacity:cache_capacity));
    stats = Stats.create ();
    default_budget = budget;
  }

let checkers t = t.checkers

let stats t = t.stats

let cache_len t = match t.cache with None -> 0 | Some c -> Lru.length c

let clear_cache t = match t.cache with None -> () | Some c -> Lru.clear c

(* One staged pass over the pipeline. Applicable stages run in order;
   once the deadline has expired the remaining ones are marked Skipped.
   A stage Error is recorded and the pipeline continues — the final
   Unknown carries every error so nothing is silently masked. *)
let run ?stats ?(budget = Budget.unlimited) checkers sys =
  let meter = Budget.start budget in
  let trace = ref [] in
  (* Span attributes shared by every pipeline stage. [cache_hit] is
     always false here: a cache hit never reaches [run] (the decide span
     carries the hit). [budget_remaining_s] is -1 without a deadline. *)
  let stage_attrs (c : _ Checker.t) () =
    [
      A.str "checker" c.Checker.name;
      A.str "procedure" (Checker.procedure_label c.Checker.procedure);
      A.str "cost" (Checker.cost_label c.Checker.cost);
      A.bool "cache_hit" false;
      A.float "budget_remaining_s"
        (Option.value ~default:(-1.) (Budget.remaining_seconds meter));
    ]
  in
  let record (entry : Outcome.stage_trace) unsafe =
    trace := entry :: !trace;
    match stats with
    | None -> ()
    | Some st ->
        Stats.record_stage st ~name:entry.Outcome.stage
          (entry.Outcome.status, unsafe)
          entry.Outcome.seconds
  in
  let finish verdict procedure detail =
    let unknown = match verdict with Outcome.Unknown _ -> true | _ -> false in
    (match stats with
    | None -> ()
    | Some st -> Stats.record_decision st ~cached:false ~unknown);
    {
      Outcome.verdict;
      procedure;
      detail;
      trace = List.rev !trace;
      seconds = Budget.elapsed meter;
      cached = false;
    }
  in
  let rec go = function
    | [] ->
        let errors =
          List.filter_map
            (fun (s : Outcome.stage_trace) ->
              match s.Outcome.status with
              | Outcome.Errored -> Some s.Outcome.detail
              | _ -> None)
            (List.rev !trace)
        in
        let skipped =
          List.exists
            (fun (s : Outcome.stage_trace) -> s.Outcome.status = Outcome.Skipped)
            !trace
        in
        let msg =
          if errors <> [] then String.concat "; " errors
          else if skipped then
            "budget deadline expired before a decisive procedure could run"
          else "no applicable procedure decided the system"
        in
        finish (Outcome.Unknown msg) None msg
    | (c : _ Checker.t) :: rest ->
        if not (c.Checker.applicable sys) then go rest
        else if Budget.expired meter then begin
          if Obs.enabled () then
            Obs.with_span "engine.stage" ~attrs:(stage_attrs c) (fun sp ->
                Obs.add_attrs sp
                  [ A.str "status" "skipped"; A.str "verdict" "none" ]);
          record
            {
              Outcome.stage = c.Checker.name;
              procedure = c.Checker.procedure;
              status = Outcome.Skipped;
              detail = "budget deadline expired";
              seconds = 0.;
            }
            false;
          go rest
        end
        else begin
          let sp = Obs.start_span "engine.stage" ~attrs:(stage_attrs c) in
          let t0 = Sys.time () in
          let result =
            try c.Checker.run meter sys with
            | Failure msg -> Checker.Error msg
            | Invalid_argument msg -> Checker.Error ("invalid argument: " ^ msg)
          in
          let dt = Sys.time () -. t0 in
          if Obs.enabled () then begin
            let status, verdict =
              match result with
              | Checker.Safe _ -> ("decided", "safe")
              | Checker.Unsafe _ -> ("decided", "unsafe")
              | Checker.Pass _ -> ("passed", "none")
              | Checker.Error _ -> ("error", "none")
            in
            Obs.add_attrs sp
              [
                A.str "status" status; A.str "verdict" verdict;
                A.float "cpu_seconds" dt;
              ]
          end;
          Obs.end_span sp;
          let entry status detail =
            {
              Outcome.stage = c.Checker.name;
              procedure = c.Checker.procedure;
              status;
              detail;
              seconds = dt;
            }
          in
          match result with
          | Checker.Safe detail ->
              record (entry Outcome.Decided detail) false;
              finish Outcome.Safe (Some c.Checker.procedure) detail
          | Checker.Unsafe (detail, ev) ->
              record (entry Outcome.Decided detail) true;
              finish (Outcome.Unsafe ev) (Some c.Checker.procedure) detail
          | Checker.Pass detail ->
              record (entry Outcome.Passed detail) false;
              go rest
          | Checker.Error detail ->
              record (entry Outcome.Errored detail) false;
              go rest
        end
  in
  go checkers

let verdict_label (o : _ Outcome.t) =
  match o.Outcome.verdict with
  | Outcome.Safe -> "safe"
  | Outcome.Unsafe _ -> "unsafe"
  | Outcome.Unknown _ -> "unknown"

let decide ?budget t sys =
  let budget = Option.value budget ~default:t.default_budget in
  let sp = Obs.start_span "engine.decide" in
  let finish fp (o : _ Outcome.t) =
    if Obs.enabled () then
      Obs.add_attrs sp
        [
          A.str "fingerprint" (Digest.to_hex (Digest.string fp));
          A.str "verdict" (verdict_label o);
          A.str "procedure" (Outcome.provenance o);
          A.bool "cache_hit" o.Outcome.cached;
        ];
    Obs.end_span sp;
    o
  in
  let fp = t.fingerprint sys in
  match Option.bind t.cache (fun c -> Lru.find c fp) with
  | Some o ->
      Stats.record_decision t.stats ~cached:true
        ~unknown:(not (Outcome.decided o));
      finish fp { o with Outcome.cached = true }
  | None ->
      if t.cache <> None then Stats.record_cache_miss t.stats;
      let o = run ~stats:t.stats ~budget t.checkers sys in
      (match (t.cache, o.Outcome.verdict) with
      | Some _, Outcome.Unknown _ -> () (* budget-dependent: never cached *)
      | Some c, _ -> Lru.add c fp o
      | None, _ -> ());
      finish fp o

type batch_report = {
  submitted : int;
  unique : int;
  batch_dedup_hits : int;
  cache_hits : int;
  cache_misses : int;
  batch_seconds : float;
  per_procedure : (string * int) list;
}

let hit_rate r =
  if r.submitted = 0 then 0.
  else
    float_of_int (r.batch_dedup_hits + r.cache_hits)
    /. float_of_int r.submitted

let decide_batch ?budget t syss =
  let sp =
    Obs.start_span "engine.batch"
      ~attrs:(fun () -> [ A.int "submitted" (List.length syss) ])
  in
  let t0 = Sys.time () in
  let seen : (string, 'a Outcome.t) Hashtbl.t = Hashtbl.create 64 in
  let fps = Hashtbl.create 64 in
  let dedup = ref 0 and hits = ref 0 and misses = ref 0 in
  let procs = ref [] in
  let bump_proc (o : _ Outcome.t) =
    let label = Outcome.provenance o in
    procs :=
      (match List.assoc_opt label !procs with
      | Some n -> (label, n + 1) :: List.remove_assoc label !procs
      | None -> (label, 1) :: !procs)
  in
  let outcomes =
    List.map
      (fun sys ->
        let fp = t.fingerprint sys in
        Hashtbl.replace fps fp ();
        match Hashtbl.find_opt seen fp with
        | Some o ->
            incr dedup;
            { o with Outcome.cached = true }
        | None ->
            let o = decide ?budget t sys in
            if o.Outcome.cached then incr hits else incr misses;
            (* Unknowns are not replicated across the batch either: a
               duplicate of an undecided system re-runs the pipeline. *)
            if Outcome.decided o then Hashtbl.replace seen fp o;
            bump_proc o;
            o)
      syss
  in
  let report =
    {
      submitted = List.length syss;
      unique = Hashtbl.length fps;
      batch_dedup_hits = !dedup;
      cache_hits = !hits;
      cache_misses = !misses;
      batch_seconds = Sys.time () -. t0;
      per_procedure = List.rev !procs;
    }
  in
  if Obs.enabled () then
    Obs.add_attrs sp
      [
        A.int "unique" report.unique;
        A.int "batch_dedup_hits" report.batch_dedup_hits;
        A.int "cache_hits" report.cache_hits;
        A.int "cache_misses" report.cache_misses;
      ];
  Obs.end_span sp;
  (outcomes, report)

let pp_batch_report ppf r =
  Format.fprintf ppf
    "@[<v>batch: %d submitted, %d unique, %d batch duplicate(s), %d cache \
     hit(s), %d miss(es); hit rate %.1f%%; %.3f ms@,per procedure: %s@]"
    r.submitted r.unique r.batch_dedup_hits r.cache_hits r.cache_misses
    (100. *. hit_rate r)
    (r.batch_seconds *. 1_000.)
    (if r.per_procedure = [] then "-"
     else
       String.concat ", "
         (List.map
            (fun (p, n) -> Printf.sprintf "%s ×%d" p n)
            r.per_procedure))
