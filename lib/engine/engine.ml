module Obs = Distlock_obs.Obs
module A = Distlock_obs.Attr
module Par = Distlock_par.Par

(* Concurrency architecture (DESIGN §9): the pipeline core ([run] and
   every checker) is pure — it closes over no shared mutable state — so
   one engine instance may serve decisions from several domains at
   once. The mutable shell is domain-safe piecewise: the verdict cache
   is sharded ({!Lru_sharded}, one mutex per shard), {!Stats} counters
   are [Atomic]-backed, and the obs layer serializes sink writes. *)

type ('sys, 'ev) t = {
  checkers : ('sys, 'ev) Checker.t list;
  fingerprint : 'sys -> string;
  cache : 'ev Outcome.t Lru_sharded.t option;
  stats : Stats.t;
  default_budget : Budget.t;
}

let create ?(cache_capacity = 1024) ?(budget = Budget.unlimited) ?stats
    ~fingerprint checkers =
  if checkers = [] then invalid_arg "Engine.create: no checkers";
  {
    checkers;
    fingerprint;
    cache =
      (if cache_capacity <= 0 then None
       else Some (Lru_sharded.create ~capacity:cache_capacity ()));
    stats = (match stats with Some s -> s | None -> Stats.create ());
    default_budget = budget;
  }

let checkers t = t.checkers

let stats t = t.stats

let cache_len t =
  match t.cache with None -> 0 | Some c -> Lru_sharded.length c

let clear_cache t =
  match t.cache with None -> () | Some c -> Lru_sharded.clear c

(* One staged pass over the pipeline. Applicable stages run in order;
   once the deadline has expired the remaining ones are marked Skipped.
   A stage Error is recorded and the pipeline continues — the final
   Unknown carries every error so nothing is silently masked.

   Reentrancy: this function closes over nothing mutable. Every ref it
   allocates ([meter], [trace]) is private to the call, so concurrent
   [run]s of the same checker list from different domains never
   interact (the optional [stats] sink is domain-safe by itself). *)
let run ?stats ?(budget = Budget.unlimited) checkers sys =
  let meter = Budget.start budget in
  let trace = ref [] in
  (* Span attributes shared by every pipeline stage. [cache_hit] is
     always false here: a cache hit never reaches [run] (the decide span
     carries the hit). [budget_remaining_s] is -1 without a deadline. *)
  let stage_attrs (c : _ Checker.t) () =
    [
      A.str "checker" c.Checker.name;
      A.str "procedure" (Checker.procedure_label c.Checker.procedure);
      A.str "cost" (Checker.cost_label c.Checker.cost);
      A.bool "cache_hit" false;
      A.float "budget_remaining_s"
        (Option.value ~default:(-1.) (Budget.remaining_seconds meter));
    ]
  in
  let record (entry : Outcome.stage_trace) unsafe =
    trace := entry :: !trace;
    match stats with
    | None -> ()
    | Some st ->
        Stats.record_stage st ~name:entry.Outcome.stage
          (entry.Outcome.status, unsafe)
          entry.Outcome.seconds
  in
  let finish verdict procedure detail =
    let unknown = match verdict with Outcome.Unknown _ -> true | _ -> false in
    (match stats with
    | None -> ()
    | Some st -> Stats.record_decision st ~cached:false ~unknown);
    (* Anomaly hook: an undecided pipeline — stage errors, an exhausted
       budget — is exactly what the flight recorder exists to explain.
       No-op unless a global recorder is installed (the CLI installs
       one; library tests that exercise Unknown on purpose do not). *)
    if unknown then
      Distlock_obs.Recorder.anomaly
        ~reason:("engine decision ended Unknown: " ^ detail);
    {
      Outcome.verdict;
      procedure;
      detail;
      trace = List.rev !trace;
      seconds = Budget.elapsed meter;
      cached = false;
    }
  in
  let rec go = function
    | [] ->
        let errors =
          List.filter_map
            (fun (s : Outcome.stage_trace) ->
              match s.Outcome.status with
              | Outcome.Errored -> Some s.Outcome.detail
              | _ -> None)
            (List.rev !trace)
        in
        let skipped =
          List.exists
            (fun (s : Outcome.stage_trace) -> s.Outcome.status = Outcome.Skipped)
            !trace
        in
        let msg =
          if errors <> [] then String.concat "; " errors
          else if skipped then
            "budget deadline expired before a decisive procedure could run"
          else "no applicable procedure decided the system"
        in
        finish (Outcome.Unknown msg) None msg
    | (c : _ Checker.t) :: rest ->
        if not (c.Checker.applicable sys) then go rest
        else if Budget.expired meter then begin
          if Obs.enabled () then
            Obs.with_span "engine.stage" ~attrs:(stage_attrs c) (fun sp ->
                Obs.add_attrs sp
                  [ A.str "status" "skipped"; A.str "verdict" "none" ]);
          record
            {
              Outcome.stage = c.Checker.name;
              procedure = c.Checker.procedure;
              status = Outcome.Skipped;
              detail = "budget deadline expired";
              seconds = 0.;
              attrs = [];
            }
            false;
          go rest
        end
        else begin
          let sp = Obs.start_span "engine.stage" ~attrs:(stage_attrs c) in
          (* Stage timing is monotonic wall time; the span also carries
             the CPU time, which is the genuinely-CPU number (and, being
             process-wide, can exceed the wall delta when other domains
             are busy — it is an attribute, not the trace timing). *)
          let t0 = Obs.mono_s () in
          let c0 = Obs.cpu_s () in
          let result =
            try c.Checker.run meter sys with
            | Failure msg -> Checker.Error msg
            | Invalid_argument msg -> Checker.Error ("invalid argument: " ^ msg)
          in
          let dt = Obs.mono_s () -. t0 in
          let dt_cpu = Obs.cpu_s () -. c0 in
          (* Checkers report measurements (states visited, pair-cache
             traffic, …) by wrapping their result in [Annotated]; the
             attributes land on the trace entry and the stage span. *)
          let stage_metrics, result = Checker.strip result in
          if Obs.enabled () then begin
            let status, verdict =
              match result with
              | Checker.Safe _ -> ("decided", "safe")
              | Checker.Unsafe _ -> ("decided", "unsafe")
              | Checker.Pass _ -> ("passed", "none")
              | Checker.Error _ -> ("error", "none")
              | Checker.Annotated _ -> assert false (* stripped above *)
            in
            Obs.add_attrs sp
              ([
                 A.str "status" status; A.str "verdict" verdict;
                 A.float "seconds" dt; A.float "cpu_seconds" dt_cpu;
               ]
              @ stage_metrics)
          end;
          Obs.end_span sp;
          let entry status detail =
            {
              Outcome.stage = c.Checker.name;
              procedure = c.Checker.procedure;
              status;
              detail;
              seconds = dt;
              attrs = stage_metrics;
            }
          in
          match result with
          | Checker.Safe detail ->
              record (entry Outcome.Decided detail) false;
              finish Outcome.Safe (Some c.Checker.procedure) detail
          | Checker.Unsafe (detail, ev) ->
              record (entry Outcome.Decided detail) true;
              finish (Outcome.Unsafe ev) (Some c.Checker.procedure) detail
          | Checker.Pass detail ->
              record (entry Outcome.Passed detail) false;
              go rest
          | Checker.Error detail ->
              record (entry Outcome.Errored detail) false;
              go rest
          | Checker.Annotated _ -> assert false (* stripped above *)
        end
  in
  go checkers

let verdict_label (o : _ Outcome.t) =
  match o.Outcome.verdict with
  | Outcome.Safe -> "safe"
  | Outcome.Unsafe _ -> "unsafe"
  | Outcome.Unknown _ -> "unknown"

let decide ?budget t sys =
  let budget = Option.value budget ~default:t.default_budget in
  let sp = Obs.start_span "engine.decide" in
  let finish fp (o : _ Outcome.t) =
    if Obs.enabled () then
      Obs.add_attrs sp
        [
          A.str "fingerprint" (Digest.to_hex (Digest.string fp));
          A.str "verdict" (verdict_label o);
          A.str "procedure" (Outcome.provenance o);
          A.bool "cache_hit" o.Outcome.cached;
        ];
    Obs.end_span sp;
    o
  in
  let fp = t.fingerprint sys in
  match Option.bind t.cache (fun c -> Lru_sharded.find c fp) with
  | Some o ->
      Stats.record_decision t.stats ~cached:true
        ~unknown:(not (Outcome.decided o));
      finish fp { o with Outcome.cached = true }
  | None ->
      if t.cache <> None then Stats.record_cache_miss t.stats;
      let o = run ~stats:t.stats ~budget t.checkers sys in
      (match (t.cache, o.Outcome.verdict) with
      | Some _, Outcome.Unknown _ -> () (* budget-dependent: never cached *)
      | Some c, _ -> Lru_sharded.add c fp o
      | None, _ -> ());
      finish fp o

let explain t sys (o : _ Outcome.t) =
  Explain.of_outcome ~checkers:t.checkers ~fingerprint:(t.fingerprint sys) sys
    o

let decide_explained ?budget t sys =
  let o = decide ?budget t sys in
  (o, explain t sys o)

type batch_report = {
  submitted : int;
  unique : int;
  batch_dedup_hits : int;
  cache_hits : int;
  cache_misses : int;
  pair_hits : int;
  pair_misses : int;
  pairs_redecided : int;
  batch_seconds : float;
  jobs : int;
  per_procedure : (string * int) list;
}

let hit_rate r =
  if r.submitted = 0 then 0.
  else
    float_of_int (r.batch_dedup_hits + r.cache_hits)
    /. float_of_int r.submitted

(* Per-procedure tally: constant-time bumps plus a first-seen order
   list, replacing the old O(n²) assoc-list shuffle. *)
module Tally = struct
  type t = {
    counts : (string, int) Hashtbl.t;
    mutable order : string list;  (* reversed first-seen *)
  }

  let create () = { counts = Hashtbl.create 8; order = [] }

  let bump t (o : _ Outcome.t) =
    let label = Outcome.provenance o in
    match Hashtbl.find_opt t.counts label with
    | Some n -> Hashtbl.replace t.counts label (n + 1)
    | None ->
        Hashtbl.add t.counts label 1;
        t.order <- label :: t.order

  let to_list t =
    List.rev_map (fun l -> (l, Hashtbl.find t.counts l)) t.order
end

let decide_batch ?budget ?(jobs = 1) t syss =
  if jobs < 1 then invalid_arg "Engine.decide_batch: jobs must be >= 1";
  let submitted = List.length syss in
  let sp =
    Obs.start_span "engine.batch"
      ~attrs:(fun () -> [ A.int "submitted" submitted; A.int "jobs" jobs ])
  in
  let t0 = Obs.mono_s () in
  (* Pair-cache deltas over the batch: snapshot the engine's counters
     here and subtract on the way out. The counters are atomic, so with
     [jobs > 1] a concurrent user of the same stats could inflate the
     delta — the engine's own workers are the only writers in the CLI. *)
  let ph0 = Stats.pair_hits t.stats
  and pm0 = Stats.pair_misses t.stats
  and pr0 = Stats.pairs_redecided t.stats in
  let keyed = List.map (fun sys -> (t.fingerprint sys, sys)) syss in
  (* Parallel prelude: fan the batch's distinct systems out to a domain
     pool, one decision per task, and collect their outcomes. [decide]
     is safe to run concurrently (pure core, sharded cache, atomic
     stats). Workers share no mutable state here at all: [Par.map]
     returns results in input order, so the fingerprint table is built
     sequentially on this domain by zipping inputs with outputs —
     OCaml's Hashtbl is not domain-safe, even for distinct keys. The
     sequential merge below then finds every distinct fingerprint
     pre-decided. *)
  let predecided : (string, 'a Outcome.t) Hashtbl.t =
    Hashtbl.create (if jobs > 1 then 64 else 0)
  in
  if jobs > 1 then begin
    let seen_fp = Hashtbl.create 64 in
    let uniq =
      List.filter
        (fun (fp, _) ->
          if Hashtbl.mem seen_fp fp then false
          else begin
            Hashtbl.add seen_fp fp ();
            true
          end)
        keyed
    in
    let outs =
      Par.with_pool ~domains:jobs (fun pool ->
          Par.map pool (fun (_, sys) -> decide ?budget t sys) uniq)
    in
    List.iter2 (fun (fp, _) o -> Hashtbl.replace predecided fp o) uniq outs
  end;
  (* Sequential merge, identical for every [jobs]: submission order,
     duplicate folding, and accounting are the same code path whether
     the decisions were just computed in parallel or are computed here
     inline — so [jobs:1] is exactly the old sequential behavior. *)
  let seen : (string, 'a Outcome.t) Hashtbl.t = Hashtbl.create 64 in
  let fps = Hashtbl.create 64 in
  let dedup = ref 0 and hits = ref 0 and misses = ref 0 in
  let tally = Tally.create () in
  let outcomes =
    List.map
      (fun (fp, sys) ->
        Hashtbl.replace fps fp ();
        match Hashtbl.find_opt seen fp with
        | Some o ->
            incr dedup;
            { o with Outcome.cached = true }
        | None ->
            let o =
              match Hashtbl.find_opt predecided fp with
              | Some o ->
                  Hashtbl.remove predecided fp;
                  o
              | None -> decide ?budget t sys
            in
            if o.Outcome.cached then incr hits else incr misses;
            (* Unknowns are not replicated across the batch either: a
               duplicate of an undecided system re-runs the pipeline. *)
            if Outcome.decided o then Hashtbl.replace seen fp o;
            Tally.bump tally o;
            o)
      keyed
  in
  let report =
    {
      submitted;
      unique = Hashtbl.length fps;
      batch_dedup_hits = !dedup;
      cache_hits = !hits;
      cache_misses = !misses;
      pair_hits = Stats.pair_hits t.stats - ph0;
      pair_misses = Stats.pair_misses t.stats - pm0;
      pairs_redecided = Stats.pairs_redecided t.stats - pr0;
      batch_seconds = Obs.mono_s () -. t0;
      jobs;
      per_procedure = Tally.to_list tally;
    }
  in
  if Obs.enabled () then
    Obs.add_attrs sp
      [
        A.int "unique" report.unique;
        A.int "batch_dedup_hits" report.batch_dedup_hits;
        A.int "cache_hits" report.cache_hits;
        A.int "cache_misses" report.cache_misses;
      ];
  Obs.end_span sp;
  (outcomes, report)

let pp_batch_report ppf r =
  Format.fprintf ppf
    "@[<v>batch: %d submitted, %d unique, %d batch duplicate(s), %d cache \
     hit(s), %d miss(es); hit rate %.1f%%; %.3f ms%s@,per procedure: %s@]"
    r.submitted r.unique r.batch_dedup_hits r.cache_hits r.cache_misses
    (100. *. hit_rate r)
    (r.batch_seconds *. 1_000.)
    ((if r.jobs > 1 then Printf.sprintf " (%d jobs)" r.jobs else "")
    (* Pair-cache numbers appear only when the pair store was consulted,
       so pair-free (two-transaction) batches print exactly as before. *)
    ^
    if r.pair_hits + r.pair_misses > 0 then
      Printf.sprintf "; pairs: %d reused, %d re-decided" r.pair_hits
        r.pairs_redecided
    else "")
    (if r.per_procedure = [] then "-"
     else
       String.concat ", "
         (List.map
            (fun (p, n) -> Printf.sprintf "%s ×%d" p n)
            r.per_procedure))
