module A = Distlock_obs.Attr
module J = Distlock_obs.Json

(* The provenance record `check --explain` surfaces: the whole checker
   table in pipeline order (including the stages that never ran and
   why), the cache disposition, the exhaustive-oracle statistics when
   an oracle stage ran, and the winning procedure. Assembled from an
   outcome plus the engine's checker list — everything here is plain
   strings and numbers, so the record serializes without knowing the
   evidence type. *)

let schema_version = "distlock.explain/1"

type stage = {
  checker : string;
  procedure : string;
  cost : string;
  applicable : bool;
  status : string;
      (* decided | passed | error | skipped | inapplicable | not-reached *)
  detail : string;
  seconds : float;
  budget_spent_s : float;  (* cumulative pipeline time when this stage ended *)
  metrics : A.t;  (* checker-reported measurements, possibly empty *)
}

type cache = {
  fingerprint : string;  (* hex digest of the system fingerprint *)
  hit : bool;
  pair_hits : int;
  pair_misses : int;
  pairs_redecided : int;
}

type oracle = {
  states : int;
  dup_hits : int;
  dedup_ratio : float;  (* pruned transitions / explored transitions *)
  exhausted : bool;
}

type t = {
  verdict : string;
  procedure : string;
  detail : string;
  cached : bool;
  seconds : float;
  cache : cache;
  stages : stage list;
  oracle : oracle option;
}

let int_metric metrics key =
  match List.assoc_opt key metrics with Some (A.Int n) -> Some n | _ -> None

let bool_metric metrics key =
  match List.assoc_opt key metrics with Some (A.Bool b) -> b | _ -> false

(* Walk the full checker table against the recorded trace: trace
   entries cover exactly the applicable stages the pipeline reached, in
   order, so one linear merge recovers a status for every checker —
   including "inapplicable" and "not-reached", which the trace by
   construction cannot contain. *)
let stages_of ~checkers sys (o : _ Outcome.t) =
  let spent = ref 0. in
  let rec go checkers (trace : Outcome.stage_trace list) decided =
    match checkers with
    | [] -> []
    | (c : _ Checker.t) :: cs -> (
        let static status =
          {
            checker = c.Checker.name;
            procedure = Checker.procedure_label c.Checker.procedure;
            cost = Checker.cost_label c.Checker.cost;
            applicable = status <> "inapplicable";
            status;
            detail = "";
            seconds = 0.;
            budget_spent_s = !spent;
            metrics = [];
          }
        in
        match trace with
        | (e : Outcome.stage_trace) :: es when e.Outcome.stage = c.Checker.name
          ->
            spent := !spent +. e.Outcome.seconds;
            let status = String.lowercase_ascii
                (Outcome.status_label e.Outcome.status) in
            (* Bound before the cons: [::] evaluates its tail first, and
               the recursion advances [spent]. *)
            let entry =
              {
                checker = c.Checker.name;
                procedure = Checker.procedure_label c.Checker.procedure;
                cost = Checker.cost_label c.Checker.cost;
                applicable = true;
                status;
                detail = e.Outcome.detail;
                seconds = e.Outcome.seconds;
                budget_spent_s = !spent;
                metrics = e.Outcome.attrs;
              }
            in
            entry :: go cs es (decided || e.Outcome.status = Outcome.Decided)
        | _ ->
            let entry =
              if not (c.Checker.applicable sys) then static "inapplicable"
              else
                (* Applicable but absent from the trace: the pipeline
                   ended (decided or ran out of stages) before it. *)
                static "not-reached"
            in
            entry :: go cs trace decided)
  in
  go checkers o.Outcome.trace false

let oracle_of stages =
  (* The last stage that reported oracle statistics (the state-graph
     stage on either the pair or the multi-transaction path). *)
  List.fold_left
    (fun acc (s : stage) ->
      match int_metric s.metrics "states" with
      | None -> acc
      | Some states ->
          let dup_hits =
            Option.value ~default:0 (int_metric s.metrics "dup_hits")
          in
          let explored = states + dup_hits in
          Some
            {
              states;
              dup_hits;
              dedup_ratio =
                (if explored = 0 then 0.
                 else float_of_int dup_hits /. float_of_int explored);
              exhausted = bool_metric s.metrics "exhausted";
            })
    None stages

let cache_of ~fingerprint stages (o : _ Outcome.t) =
  let sum key =
    List.fold_left
      (fun acc (s : stage) ->
        acc + Option.value ~default:0 (int_metric s.metrics key))
      0 stages
  in
  {
    fingerprint = Digest.to_hex (Digest.string fingerprint);
    hit = o.Outcome.cached;
    pair_hits = sum "pair_hits";
    pair_misses = sum "pair_misses";
    pairs_redecided = sum "pairs_redecided";
  }

let of_outcome ~checkers ~fingerprint sys (o : _ Outcome.t) =
  let stages = stages_of ~checkers sys o in
  {
    verdict =
      (match o.Outcome.verdict with
      | Outcome.Safe -> "safe"
      | Outcome.Unsafe _ -> "unsafe"
      | Outcome.Unknown _ -> "unknown");
    procedure = Outcome.provenance o;
    detail = o.Outcome.detail;
    cached = o.Outcome.cached;
    seconds = o.Outcome.seconds;
    cache = cache_of ~fingerprint stages o;
    stages;
    oracle = oracle_of stages;
  }

(* ------------------------------------------------------------------ *)
(* Serialization. *)

let stage_to_json (s : stage) =
  J.Obj
    ([
       ("checker", J.Str s.checker);
       ("procedure", J.Str s.procedure);
       ("cost", J.Str s.cost);
       ("applicable", J.Bool s.applicable);
       ("status", J.Str s.status);
       ("detail", J.Str s.detail);
       ("seconds", J.Float s.seconds);
       ("budget_spent_s", J.Float s.budget_spent_s);
     ]
    @ if s.metrics = [] then [] else [ ("metrics", A.to_json s.metrics) ])

let to_json t =
  J.Obj
    ([
       ("schema", J.Str schema_version);
       ("verdict", J.Str t.verdict);
       ("procedure", J.Str t.procedure);
       ("detail", J.Str t.detail);
       ("cached", J.Bool t.cached);
       ("seconds", J.Float t.seconds);
       ( "cache",
         J.Obj
           [
             ("fingerprint", J.Str t.cache.fingerprint);
             ("hit", J.Bool t.cache.hit);
             ("pair_hits", J.Int t.cache.pair_hits);
             ("pair_misses", J.Int t.cache.pair_misses);
             ("pairs_redecided", J.Int t.cache.pairs_redecided);
           ] );
       ("stages", J.List (List.map stage_to_json t.stages));
     ]
    @
    match t.oracle with
    | None -> []
    | Some o ->
        [
          ( "oracle",
            J.Obj
              [
                ("states", J.Int o.states);
                ("dup_hits", J.Int o.dup_hits);
                ("dedup_ratio", J.Float o.dedup_ratio);
                ("exhausted", J.Bool o.exhausted);
              ] );
        ])

let pp ppf t =
  Format.fprintf ppf "@[<v>explain: %s via %s in %.3f ms (%s)" t.verdict
    t.procedure (t.seconds *. 1_000.)
    (if t.cache.hit then "cache hit on " ^ t.cache.fingerprint
     else "fingerprint " ^ t.cache.fingerprint);
  if t.cache.pair_hits + t.cache.pair_misses > 0 then
    Format.fprintf ppf "@,pairs: %d reused, %d re-decided" t.cache.pair_hits
      t.cache.pairs_redecided;
  List.iter
    (fun (s : stage) ->
      let line =
        Printf.sprintf "%-17s [%-7s] %-4s %-12s" s.checker s.procedure s.cost
          s.status
        ^ (if
             s.applicable && s.status <> "not-reached"
             && s.status <> "skipped"
           then
             Printf.sprintf " %8.3f ms (spent %8.3f ms)" (s.seconds *. 1_000.)
               (s.budget_spent_s *. 1_000.)
           else "")
        ^ (if s.detail <> "" then "  " ^ s.detail else "")
        ^
        if s.metrics <> [] then
          Format.asprintf "  {%a}" A.pp s.metrics
        else ""
      in
      (* Right-trim: padded columns must not leave trailing blanks on
         lines with nothing after them (cram tests flag them). *)
      let n = ref (String.length line) in
      while !n > 0 && line.[!n - 1] = ' ' do decr n done;
      Format.fprintf ppf "@,%s" (String.sub line 0 !n))
    t.stages;
  (match t.oracle with
  | None -> ()
  | Some o ->
      Format.fprintf ppf
        "@,oracle: %d state(s), %d duplicate hit(s) (%.1f%% dedup)%s" o.states
        o.dup_hits (100. *. o.dedup_ratio)
        (if o.exhausted then ", budget exhausted" else ""));
  Format.fprintf ppf "@]"
