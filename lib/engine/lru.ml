type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards MRU *)
  mutable next : 'a node option;  (* towards LRU *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  cap : int;
  mutable first : 'a node option;  (* most-recently used *)
  mutable last : 'a node option;  (* least-recently used *)
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { tbl = Hashtbl.create (2 * capacity); cap = capacity; first = None;
    last = None; evicted = 0 }

let capacity t = t.cap

let length t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  n.prev <- None;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value

let mem t key = Hashtbl.mem t.tbl key

let evict_last t =
  match t.last with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      t.evicted <- t.evicted + 1

let add t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      n.value <- value;
      unlink t n;
      push_front t n
  | None ->
      if Hashtbl.length t.tbl >= t.cap then evict_last t;
      let n = { key; value; prev = None; next = None } in
      Hashtbl.add t.tbl key n;
      push_front t n

let evictions t = t.evicted

let clear t =
  Hashtbl.reset t.tbl;
  t.first <- None;
  t.last <- None

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.first
