(** Transformation into the restricted CNF form used by Theorem 3's
    reduction: every clause has two or three distinct-variable literals,
    and each variable occurs at most twice positively and at most once
    negatively ("a well-known NP-complete version of satisfiability").

    The pipeline is equisatisfiability-preserving:

    + clauses longer than three literals are split with fresh chain
      variables (the standard 3-SAT conversion);
    + tautological clauses are dropped and duplicate literals merged;
    + unit clauses [(l)] become [(l | p) & (l | ~p)] for a fresh [p];
    + every variable [x] with [p] positive and [q] negative occurrences is
      replaced by [d = max p q 1] fresh pairs [(a_i, b_i)] — [a_i] standing
      for [x], [b_i] for [~x] — tied together by the implication cycle
      [(~a_i | ~b_i) & (b_i | a_{i+1 mod d})], whose only models are
      "all [a] true, all [b] false" and the reverse. The [i]-th positive
      occurrence uses [a_i], the [i]-th negative uses [b_i]; each fresh
      variable then occurs at most twice positively and once negatively. *)

type t = {
  formula : Cnf.t;  (** The restricted formula. *)
  original_vars : int;
  var_map : (int * bool) option array;
      (** For each fresh variable: [(original, polarity)] — [(x, true)] for
          an [a]-variable of original [x], [(x, false)] for a [b]-variable —
          or [None] for auxiliary chain/padding variables. *)
}

val run : Cnf.t -> t option
(** [None] when the input contains an empty clause (trivially
    unsatisfiable — the gadget construction needs at least the restricted
    shape). The output always satisfies {!Cnf.is_restricted}. *)

val project : t -> bool array -> bool array
(** Map a model of the restricted formula back to a model of the original
    ([a]-variables vote for their original variable). *)
