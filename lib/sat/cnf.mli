(** CNF formulas.

    Variables are integers [0 .. num_vars - 1]; a literal is a variable
    with a sign. Theorem 3 reduces satisfiability of formulas in a
    *restricted form* — at most three literals per clause, each variable at
    most twice unnegated and at most once negated — to unsafety of a pair
    of distributed transactions; {!Normalize} produces that form. *)

type literal = { var : int; positive : bool }

type clause = literal list

type t = { num_vars : int; clauses : clause list }

val pos : int -> literal

val neg : int -> literal

val make : num_vars:int -> clause list -> t
(** Raises [Invalid_argument] if a literal's variable is out of range. *)

val negate : literal -> literal

val eval_literal : bool array -> literal -> bool

val eval_clause : bool array -> clause -> bool

val eval : bool array -> t -> bool

val num_clauses : t -> int

val occurrences : t -> (int * int) array
(** Per variable: (positive occurrence count, negative occurrence count). *)

val is_restricted : t -> bool
(** The form Theorem 3's reduction accepts: every clause has 2 or 3
    literals, no clause repeats a variable, and each variable occurs at
    most twice positively and at most once negatively. *)

val pp : Format.formatter -> t -> unit
(** E.g. [(x0 | ~x1 | x2) & (x1 | ~x2)]. *)
