(* Clause state during search: literals are Cnf.literal; assignment is a
   partial map var -> bool option. Plain recursive DPLL — formulas arising
   in tests and benches have at most a few hundred variables. *)

type assignment = bool option array

let literal_status (a : assignment) (l : Cnf.literal) =
  match a.(l.Cnf.var) with
  | None -> `Unassigned
  | Some v -> if v = l.Cnf.positive then `True else `False

(* Returns `Sat | `Conflict | `Unit of literal | `Unresolved for a clause. *)
let clause_status a clause =
  let rec go unassigned = function
    | [] -> (
        match unassigned with
        | [] -> `Conflict
        | [ l ] -> `Unit l
        | _ -> `Unresolved)
    | l :: rest -> (
        match literal_status a l with
        | `True -> `Sat
        | `False -> go unassigned rest
        | `Unassigned -> go (l :: unassigned) rest)
  in
  go [] clause

exception Conflict

(* Unit propagation to fixpoint; returns the list of vars assigned. On
   conflict, every assignment made here is undone before Conflict is
   raised, so callers can treat propagation as transactional. *)
let propagate a clauses =
  let trail = ref [] in
  try
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun c ->
          match clause_status a c with
          | `Conflict -> raise Conflict
          | `Unit l ->
              a.(l.Cnf.var) <- Some l.Cnf.positive;
              trail := l.Cnf.var :: !trail;
              changed := true
          | `Sat | `Unresolved -> ())
        clauses
    done;
    !trail
  with Conflict ->
    List.iter (fun v -> a.(v) <- None) !trail;
    raise Conflict

let pure_literals a clauses =
  let num_vars = Array.length a in
  let seen_pos = Array.make num_vars false in
  let seen_neg = Array.make num_vars false in
  List.iter
    (fun c ->
      match clause_status a c with
      | `Sat -> ()
      | _ ->
          List.iter
            (fun (l : Cnf.literal) ->
              if a.(l.Cnf.var) = None then
                if l.Cnf.positive then seen_pos.(l.Cnf.var) <- true
                else seen_neg.(l.Cnf.var) <- true)
            c)
    clauses;
  let pures = ref [] in
  for v = 0 to num_vars - 1 do
    if a.(v) = None then
      if seen_pos.(v) && not seen_neg.(v) then pures := (v, true) :: !pures
      else if seen_neg.(v) && not seen_pos.(v) then pures := (v, false) :: !pures
  done;
  !pures

let solve (f : Cnf.t) =
  let a = Array.make f.Cnf.num_vars None in
  let clauses = f.Cnf.clauses in
  let undo vars = List.iter (fun v -> a.(v) <- None) vars in
  let rec search () =
    match
      (try `Propagated (propagate a clauses) with Conflict -> `Conflict)
    with
    | `Conflict -> false
    | `Propagated trail -> (
        let pures = pure_literals a clauses in
        List.iter (fun (v, value) -> a.(v) <- Some value) pures;
        let assigned = trail @ List.map fst pures in
        let all_sat =
          List.for_all (fun c -> clause_status a c = `Sat) clauses
        in
        if all_sat then true
        else
          (* branch on the first unassigned variable of an unresolved clause *)
          let branch_var =
            List.find_map
              (fun c ->
                match clause_status a c with
                | `Sat -> None
                | _ ->
                    List.find_map
                      (fun (l : Cnf.literal) ->
                        if a.(l.Cnf.var) = None then Some l.Cnf.var else None)
                      c)
              clauses
          in
          match branch_var with
          | None ->
              (* No unresolved clause mentions an unassigned var, and not
                 all clauses are satisfied: impossible (such a clause would
                 be a conflict caught by propagate). *)
              undo assigned;
              false
          | Some v ->
              let try_value value =
                a.(v) <- Some value;
                let ok = search () in
                if not ok then a.(v) <- None;
                ok
              in
              if try_value true || try_value false then true
              else begin
                undo assigned;
                false
              end)
  in
  (* Vacuous variables (mentioned nowhere) default to false. *)
  if search () then
    Some (Array.map (function Some v -> v | None -> false) a)
  else None

let is_satisfiable f = Option.is_some (solve f)

let check_var_limit f =
  if f.Cnf.num_vars > 22 then
    invalid_arg "Dpll: exhaustive search beyond 22 variables"

let solve_brute f =
  check_var_limit f;
  let n = f.Cnf.num_vars in
  let total = 1 lsl n in
  let a = Array.make n false in
  let rec go mask =
    if mask >= total then None
    else begin
      for v = 0 to n - 1 do
        a.(v) <- mask land (1 lsl v) <> 0
      done;
      if Cnf.eval a f then Some (Array.copy a) else go (mask + 1)
    end
  in
  go 0

let count_models f =
  check_var_limit f;
  let n = f.Cnf.num_vars in
  let a = Array.make n false in
  let count = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    for v = 0 to n - 1 do
      a.(v) <- mask land (1 lsl v) <> 0
    done;
    if Cnf.eval a f then incr count
  done;
  !count
