type literal = { var : int; positive : bool }

type clause = literal list

type t = { num_vars : int; clauses : clause list }

let pos var = { var; positive = true }

let neg var = { var; positive = false }

let make ~num_vars clauses =
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          if l.var < 0 || l.var >= num_vars then
            invalid_arg "Cnf.make: literal out of range")
        clause)
    clauses;
  { num_vars; clauses }

let negate l = { l with positive = not l.positive }

let eval_literal assignment l =
  if l.positive then assignment.(l.var) else not assignment.(l.var)

let eval_clause assignment c = List.exists (eval_literal assignment) c

let eval assignment t = List.for_all (eval_clause assignment) t.clauses

let num_clauses t = List.length t.clauses

let occurrences t =
  let occ = Array.make t.num_vars (0, 0) in
  List.iter
    (List.iter (fun l ->
         let p, n = occ.(l.var) in
         occ.(l.var) <- (if l.positive then (p + 1, n) else (p, n + 1))))
    t.clauses;
  occ

let is_restricted t =
  let occ = occurrences t in
  Array.for_all (fun (p, n) -> p <= 2 && n <= 1) occ
  && List.for_all
       (fun c ->
         let len = List.length c in
         let vars = List.map (fun l -> l.var) c in
         (len = 2 || len = 3)
         && List.length (List.sort_uniq compare vars) = len)
       t.clauses

let pp_literal ppf l =
  Format.fprintf ppf "%sx%d" (if l.positive then "" else "~") l.var

let pp ppf t =
  if t.clauses = [] then Format.pp_print_string ppf "true"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
      (fun ppf c ->
        Format.fprintf ppf "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
             pp_literal)
          c)
      ppf t.clauses
