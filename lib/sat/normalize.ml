type t = {
  formula : Cnf.t;
  original_vars : int;
  var_map : (int * bool) option array;
}

(* Step 1: clean clauses — merge duplicate literals, drop tautologies. *)
let clean_clauses clauses =
  List.filter_map
    (fun clause ->
      let sorted = List.sort_uniq compare clause in
      let tautological =
        List.exists (fun (l : Cnf.literal) -> List.mem (Cnf.negate l) sorted) sorted
      in
      if tautological then None else Some sorted)
    clauses

(* Step 2: split clauses of length > 3 with fresh chain variables:
   (l1 | l2 | l3 | l4 | ...) becomes (l1 | l2 | c) & (~c | l3 | l4 | ...),
   recursively. *)
let split_long fresh clauses =
  let rec split clause =
    match clause with
    | _ :: _ :: _ :: _ :: _ -> (
        match clause with
        | l1 :: l2 :: rest ->
            let c = fresh () in
            (l1 :: l2 :: [ Cnf.pos c ]) :: split (Cnf.neg c :: rest)
        | _ -> assert false)
    | c -> [ c ]
  in
  List.concat_map split clauses

(* Step 3: pad unit clauses. *)
let pad_units fresh clauses =
  List.concat_map
    (fun clause ->
      match clause with
      | [ l ] ->
          let p = fresh () in
          [ [ l; Cnf.pos p ]; [ l; Cnf.neg p ] ]
      | c -> [ c ])
    clauses

(* Step 4: occurrence splitting. *)
let split_occurrences num_vars clauses =
  (* Count occurrences per variable. *)
  let pos_count = Array.make num_vars 0 and neg_count = Array.make num_vars 0 in
  List.iter
    (List.iter (fun (l : Cnf.literal) ->
         if l.Cnf.positive then pos_count.(l.Cnf.var) <- pos_count.(l.Cnf.var) + 1
         else neg_count.(l.Cnf.var) <- neg_count.(l.Cnf.var) + 1))
    clauses;
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let var_map = ref [] in
  let record v info = var_map := (v, info) :: !var_map in
  (* Variables within the occurrence budget are kept (renumbered) as-is;
     the rest get d pairs (a_i, b_i) tied by the implication cycle. *)
  let a_vars = Array.make num_vars [||] and b_vars = Array.make num_vars [||] in
  let kept = Array.make num_vars (-1) in
  let extra = ref [] in
  for x = 0 to num_vars - 1 do
    if pos_count.(x) <= 2 && neg_count.(x) <= 1 then begin
      let v = fresh () in
      record v (Some (x, true));
      kept.(x) <- v
    end
    else begin
      let d = max 1 (max pos_count.(x) neg_count.(x)) in
      let a = Array.init d (fun _ ->
          let v = fresh () in
          record v (Some (x, true));
          v)
      in
      let b = Array.init d (fun _ ->
          let v = fresh () in
          record v (Some (x, false));
          v)
      in
      a_vars.(x) <- a;
      b_vars.(x) <- b;
      for i = 0 to d - 1 do
        (* a_i -> ~b_i  and  ~b_i -> a_{i+1} *)
        extra := [ Cnf.neg a.(i); Cnf.neg b.(i) ] :: !extra;
        extra := [ Cnf.pos b.(i); Cnf.pos a.((i + 1) mod d) ] :: !extra
      done
    end
  done;
  (* Substitute occurrences. *)
  let next_pos = Array.make num_vars 0 and next_neg = Array.make num_vars 0 in
  let substituted =
    List.map
      (List.map (fun (l : Cnf.literal) ->
           if kept.(l.Cnf.var) >= 0 then
             { l with Cnf.var = kept.(l.Cnf.var) }
           else if l.Cnf.positive then begin
             let i = next_pos.(l.Cnf.var) in
             next_pos.(l.Cnf.var) <- i + 1;
             Cnf.pos a_vars.(l.Cnf.var).(i)
           end
           else begin
             let i = next_neg.(l.Cnf.var) in
             next_neg.(l.Cnf.var) <- i + 1;
             Cnf.pos b_vars.(l.Cnf.var).(i)
           end))
      clauses
  in
  let total_vars = !next in
  let var_map_arr = Array.make total_vars None in
  List.iter (fun (v, info) -> var_map_arr.(v) <- info) !var_map;
  (substituted @ List.rev !extra, total_vars, var_map_arr)

let run (f : Cnf.t) =
  let clauses = clean_clauses f.Cnf.clauses in
  if List.exists (fun c -> c = []) clauses then None
  else begin
    (* Fresh variables for steps 2-3 extend the original numbering; step 4
       renumbers everything anyway. *)
    let next = ref f.Cnf.num_vars in
    let fresh () =
      let v = !next in
      incr next;
      v
    in
    let clauses = split_long fresh clauses in
    let clauses = pad_units fresh clauses in
    let interim_vars = !next in
    let clauses, total_vars, var_map =
      split_occurrences interim_vars clauses
    in
    (* Auxiliary variables introduced in steps 2-3 have fresh pairs too;
       remap their entries to None (they do not correspond to original
       variables). *)
    let var_map =
      Array.map
        (function
          | Some (x, _) when x >= f.Cnf.num_vars -> None
          | info -> info)
        var_map
    in
    let formula = Cnf.make ~num_vars:total_vars clauses in
    assert (Cnf.is_restricted formula);
    Some { formula; original_vars = f.Cnf.num_vars; var_map }
  end

let project t model =
  let out = Array.make t.original_vars false in
  Array.iteri
    (fun v info ->
      match info with
      | Some (x, true) when v < Array.length model -> out.(x) <- model.(v)
      | _ -> ())
    t.var_map;
  out
