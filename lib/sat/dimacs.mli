(** DIMACS CNF serialization, for interoperability with external tooling
    and for the CLI's [reduce] command. *)

val to_string : Cnf.t -> string

val of_string : string -> (Cnf.t, string) result
(** Parses the standard [p cnf <vars> <clauses>] format; comment lines
    ([c ...]) are skipped. *)
