let random rng ~num_vars ~num_clauses ~max_len =
  if num_vars <= 0 then invalid_arg "Sat_gen.random: need variables";
  let clause () =
    let len = 1 + Random.State.int rng (min max_len num_vars) in
    let vars = Array.init num_vars Fun.id in
    for i = num_vars - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = vars.(i) in
      vars.(i) <- vars.(j);
      vars.(j) <- t
    done;
    List.init len (fun i ->
        if Random.State.bool rng then Cnf.pos vars.(i) else Cnf.neg vars.(i))
  in
  Cnf.make ~num_vars (List.init num_clauses (fun _ -> clause ()))

let random_restricted rng ~num_vars ~num_clauses =
  if num_vars < 3 then invalid_arg "Sat_gen.random_restricted: need >= 3 vars";
  let pos_budget = Array.make num_vars 2 and neg_budget = Array.make num_vars 1 in
  let draw_literal used =
    (* candidate literals with remaining budget on unused variables *)
    let candidates = ref [] in
    for v = 0 to num_vars - 1 do
      if not (List.mem v used) then begin
        if pos_budget.(v) > 0 then candidates := Cnf.pos v :: !candidates;
        if neg_budget.(v) > 0 then candidates := Cnf.neg v :: !candidates
      end
    done;
    match !candidates with
    | [] -> None
    | cs ->
        let arr = Array.of_list cs in
        Some arr.(Random.State.int rng (Array.length arr))
  in
  let clauses = ref [] in
  (try
     for _ = 1 to num_clauses do
       let len = 2 + Random.State.int rng 2 in
       let lits = ref [] and used = ref [] in
       for _ = 1 to len do
         match draw_literal !used with
         | Some l ->
             lits := l :: !lits;
             used := l.Cnf.var :: !used
         | None -> ()
       done;
       match !lits with
       | _ :: _ :: _ as clause ->
           List.iter
             (fun (l : Cnf.literal) ->
               if l.Cnf.positive then
                 pos_budget.(l.Cnf.var) <- pos_budget.(l.Cnf.var) - 1
               else neg_budget.(l.Cnf.var) <- neg_budget.(l.Cnf.var) - 1)
             clause;
           clauses := clause :: !clauses
       | _ -> raise Exit (* budgets exhausted *)
     done
   with Exit -> ());
  let f = Cnf.make ~num_vars (List.rev !clauses) in
  assert (Cnf.is_restricted f || f.Cnf.clauses = []);
  f
