(** A DPLL satisfiability solver with unit propagation and pure-literal
    elimination. It is the independent oracle against which the Theorem 3
    reduction is validated: for every formula [F],
    [solve F <> None  <->  encode F is unsafe]. *)

val solve : Cnf.t -> bool array option
(** A satisfying assignment, or [None] if unsatisfiable. Every returned
    assignment satisfies [Cnf.eval assignment f]. *)

val is_satisfiable : Cnf.t -> bool

val solve_brute : Cnf.t -> bool array option
(** Exhaustive truth-table search; the oracle's oracle for tiny formulas
    (raises [Invalid_argument] beyond 22 variables). *)

val count_models : Cnf.t -> int
(** Number of satisfying assignments, by exhaustive enumeration (same
    variable limit as {!solve_brute}). *)
