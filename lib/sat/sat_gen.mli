(** Random CNF generation for property tests and reduction benchmarks. *)

val random : Random.State.t -> num_vars:int -> num_clauses:int -> max_len:int -> Cnf.t
(** Clauses of 1..[max_len] distinct-variable literals with random signs. *)

val random_restricted : Random.State.t -> num_vars:int -> num_clauses:int -> Cnf.t
(** Directly in Theorem 3's restricted form: random 2-3-literal clauses
    drawn while respecting the per-variable occurrence budget (two
    positive, one negative). [num_clauses] is an upper bound — generation
    stops early when budgets run out. *)
