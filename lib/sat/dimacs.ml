let to_string (f : Cnf.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" f.Cnf.num_vars (Cnf.num_clauses f));
  List.iter
    (fun clause ->
      List.iter
        (fun (l : Cnf.literal) ->
          Buffer.add_string buf
            (Printf.sprintf "%d " (if l.Cnf.positive then l.Cnf.var + 1 else -(l.Cnf.var + 1))))
        clause;
      Buffer.add_string buf "0\n")
    f.Cnf.clauses;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let num_vars = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ "p"; "cnf"; v; _ ] -> (
            match int_of_string_opt v with
            | Some v -> num_vars := v
            | None -> fail "bad variable count in header")
        | _ -> fail "malformed problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (fun t -> t <> "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> fail (Printf.sprintf "bad literal %S" tok)
               | Some 0 ->
                   clauses := List.rev !current :: !clauses;
                   current := []
               | Some l when l > 0 -> current := Cnf.pos (l - 1) :: !current
               | Some l -> current := Cnf.neg (-l - 1) :: !current))
    lines;
  match !error with
  | Some msg -> Error msg
  | None ->
      if !num_vars < 0 then Error "missing problem line"
      else if !current <> [] then Error "unterminated clause"
      else
        (try Ok (Cnf.make ~num_vars:!num_vars (List.rev !clauses))
         with Invalid_argument msg -> Error msg)
