(** Linear extensions of a poset.

    Lemma 1 reduces distributed pair safety to safety of all pairs of
    compatible total orders; the brute-force oracle therefore needs to walk
    the (possibly exponential) space of linear extensions. Enumeration is
    callback-driven with early exit so oracles can stop at the first
    counterexample. *)

val iter : Poset.t -> (int array -> unit) -> unit
(** Calls the function on every linear extension, in lexicographic order of
    the emitted element sequence. The array is reused between calls: copy it
    if you keep it. *)

val exists : Poset.t -> (int array -> bool) -> bool
(** Short-circuiting search for an extension satisfying the predicate. *)

val find : Poset.t -> (int array -> bool) -> int array option

val count : ?limit:int -> Poset.t -> int
(** Number of linear extensions, by direct enumeration. Stops and raises
    [Failure] after [limit] (default [10_000_000]) extensions. *)

val random : Random.State.t -> Poset.t -> int array
(** A uniformly-ish random extension: repeatedly picks an available element
    uniformly (not exactly uniform over extensions, but cheap and a good
    test-case distribution). *)
