exception Stop

let iter_gen p f =
  let n = Poset.size p in
  let g = Poset.to_digraph p in
  let indeg = Array.init n (Distlock_graph.Digraph.in_degree g) in
  let order = Array.make n (-1) in
  let placed = Array.make n false in
  let rec go depth =
    if depth = n then f order
    else
      (* lexicographic: try available elements in increasing id order *)
      for v = 0 to n - 1 do
        if (not placed.(v)) && indeg.(v) = 0 then begin
          placed.(v) <- true;
          order.(depth) <- v;
          Distlock_graph.Digraph.iter_succ g v (fun w ->
              indeg.(w) <- indeg.(w) - 1);
          go (depth + 1);
          Distlock_graph.Digraph.iter_succ g v (fun w ->
              indeg.(w) <- indeg.(w) + 1);
          placed.(v) <- false
        end
      done
  in
  go 0

let iter p f = iter_gen p f

let exists p pred =
  try
    iter_gen p (fun o -> if pred o then raise Stop);
    false
  with Stop -> true

let find p pred =
  let found = ref None in
  (try
     iter_gen p (fun o ->
         if pred o then begin
           found := Some (Array.copy o);
           raise Stop
         end)
   with Stop -> ());
  !found

let count ?(limit = 10_000_000) p =
  let c = ref 0 in
  iter_gen p (fun _ ->
      incr c;
      if !c > limit then failwith "Linext.count: limit exceeded");
  !c

let random rng p =
  let n = Poset.size p in
  let g = Poset.to_digraph p in
  let indeg = Array.init n (Distlock_graph.Digraph.in_degree g) in
  let placed = Array.make n false in
  let order = Array.make n (-1) in
  for depth = 0 to n - 1 do
    let avail = ref [] in
    for v = 0 to n - 1 do
      if (not placed.(v)) && indeg.(v) = 0 then avail := v :: !avail
    done;
    let choices = Array.of_list !avail in
    let v = choices.(Random.State.int rng (Array.length choices)) in
    placed.(v) <- true;
    order.(depth) <- v;
    Distlock_graph.Digraph.iter_succ g v (fun w -> indeg.(w) <- indeg.(w) - 1)
  done;
  order
