open Distlock_graph

type t = {
  size : int;
  after : Bitset.t array; (* after.(a) = strict successors of a *)
}

let size t = t.size

let precedes t a b = Bitset.mem t.after.(a) b

let of_digraph g =
  match Topo.sort g with
  | None -> None
  | Some _ -> Some { size = Digraph.n g; after = Reach.closure g }

let of_arcs n arcs = of_digraph (Digraph.of_arcs n arcs)

let empty n = { size = n; after = Array.init n (fun _ -> Bitset.create n) }

let chain n =
  {
    size = n;
    after =
      Array.init n (fun a ->
          let s = Bitset.create n in
          for b = a + 1 to n - 1 do
            Bitset.add s b
          done;
          s);
  }

let concurrent t a b = a <> b && (not (precedes t a b)) && not (precedes t b a)

let comparable t a b = precedes t a b || precedes t b a

let relation t =
  let acc = ref [] in
  for a = t.size - 1 downto 0 do
    List.iter (fun b -> acc := (a, b) :: !acc) (List.rev (Bitset.elements t.after.(a)))
  done;
  !acc

let to_digraph t =
  let g = Digraph.create t.size in
  Array.iteri (fun a s -> Bitset.iter (fun b -> Digraph.add_arc g a b) s) t.after;
  g

let covers t = Digraph.arcs (Reach.transitive_reduction (to_digraph t))

let add_arcs t arcs =
  let g = to_digraph t in
  List.iter (fun (a, b) -> Digraph.add_arc g a b) arcs;
  of_digraph g

let up_set t a = Bitset.copy t.after.(a)

let down_set t a =
  let s = Bitset.create t.size in
  for b = 0 to t.size - 1 do
    if precedes t b a then Bitset.add s b
  done;
  s

let is_total t =
  let ok = ref true in
  for a = 0 to t.size - 1 do
    for b = a + 1 to t.size - 1 do
      if not (comparable t a b) then ok := false
    done
  done;
  !ok

let total_on t elems =
  let rec pairs = function
    | [] -> true
    | a :: rest -> List.for_all (fun b -> comparable t a b) rest && pairs rest
  in
  pairs elems

let is_linear_extension t order =
  Array.length order = t.size
  && Topo.is_topological_order (to_digraph t) order

let linearize_with_priority t ~priority =
  match Topo.sort_with_priority (to_digraph t) ~priority with
  | Some o -> o
  | None -> assert false (* posets are acyclic by construction *)

let linearize t = linearize_with_priority t ~priority:(fun _ -> 0)

let equal a b =
  a.size = b.size && Array.for_all2 Bitset.equal a.after b.after

let pp ppf t =
  Format.fprintf ppf "@[<h>poset(%d): %a@]" t.size
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (a, b) -> Format.fprintf ppf "%d<%d" a b))
    (covers t)

let reverse t =
  match of_digraph (Distlock_graph.Digraph.transpose (to_digraph t)) with
  | Some p -> p
  | None -> assert false (* reversing an acyclic relation keeps it acyclic *)
