(** A distributed database in the paper's sense (Section 2):
    [D = (E, m, σ)] — a set of entities, a number of sites, and a
    *stored-at* function assigning a site to each entity.

    Entities are interned: user code names them by string, the library works
    with dense integer ids. Sites are numbered from [1] as in the paper. *)

type t

type entity = int
(** Dense entity id, [0 .. num_entities - 1]. *)

val create : unit -> t

val add : t -> name:string -> site:int -> entity
(** Registers an entity. Re-adding the same name at the same site returns
    the existing id; re-adding at a *different* site raises
    [Invalid_argument] (the stored-at function is a function). Sites must
    be [>= 1]. *)

val add_all : t -> (string * int) list -> unit

val find : t -> string -> entity option

val id_exn : t -> string -> entity
(** Raises [Not_found] for unknown names. *)

val name : t -> entity -> string

val site : t -> entity -> int
(** The stored-at function [σ]. *)

val num_entities : t -> int

val num_sites : t -> int
(** Highest site number in use ([m]); [0] for an empty database. *)

val entities : t -> entity list

val entities_at : t -> int -> entity list
(** All entities stored at one site. *)

val pp : Format.formatter -> t -> unit
