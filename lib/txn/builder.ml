open Distlock_order

type action_spec = [ `Lock of string | `Unlock of string | `Update of string ]

let resolve db spec =
  let entity name =
    match Database.find db name with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "unknown entity %S" name)
  in
  match spec with
  | `Lock n -> Result.map Step.lock (entity n)
  | `Unlock n -> Result.map Step.unlock (entity n)
  | `Update n -> Result.map Step.update (entity n)

let make db ~name ~steps ?(arcs = []) ?(chains = []) () =
  let ( let* ) = Result.bind in
  let labels = Array.of_list (List.map fst steps) in
  let index = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc (i, l) ->
        let* () = acc in
        if Hashtbl.mem index l then Error (Printf.sprintf "duplicate label %S" l)
        else begin
          Hashtbl.add index l i;
          Ok ()
        end)
      (Ok ())
      (List.mapi (fun i (l, _) -> (i, l)) steps)
  in
  let* step_array =
    List.fold_left
      (fun acc (_, spec) ->
        let* l = acc in
        let* s = resolve db spec in
        Ok (s :: l))
      (Ok []) steps
  in
  let step_array = Array.of_list (List.rev step_array) in
  let lookup l =
    match Hashtbl.find_opt index l with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "unknown step label %S" l)
  in
  let* arc_list =
    List.fold_left
      (fun acc (a, b) ->
        let* l = acc in
        let* ia = lookup a in
        let* ib = lookup b in
        Ok ((ia, ib) :: l))
      (Ok []) arcs
  in
  let* chain_arcs =
    List.fold_left
      (fun acc chain ->
        let* l = acc in
        let rec pairs = function
          | a :: (b :: _ as rest) ->
              let* tl = pairs rest in
              let* ia = lookup a in
              let* ib = lookup b in
              Ok ((ia, ib) :: tl)
          | _ -> Ok []
        in
        let* ps = pairs chain in
        Ok (ps @ l))
      (Ok []) chains
  in
  match Poset.of_arcs (Array.length step_array) (arc_list @ chain_arcs) with
  | None -> Error "cyclic precedence declaration"
  | Some order -> Ok (Txn.make ~name ~labels ~steps:step_array order)

let make_exn db ~name ~steps ?arcs ?chains () =
  match make db ~name ~steps ?arcs ?chains () with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Builder.make (%s): %s" name msg)

let auto_label used spec =
  let base =
    match spec with
    | `Lock n -> "L" ^ n
    | `Unlock n -> "U" ^ n
    | `Update n -> n
  in
  let rec fresh i =
    let candidate = if i = 0 then base else Printf.sprintf "%s#%d" base i in
    if Hashtbl.mem used candidate then fresh (i + 1)
    else begin
      Hashtbl.add used candidate ();
      candidate
    end
  in
  fresh 0

let total db ~name specs =
  let used = Hashtbl.create 16 in
  let steps = List.map (fun spec -> (auto_label used spec, spec)) specs in
  let chain = List.map fst steps in
  make_exn db ~name ~steps ~chains:[ chain ] ()

let locked_sequence db ~name entities =
  total db ~name
    (List.concat_map (fun e -> [ `Lock e; `Update e; `Unlock e ]) entities)

let two_phase_sequence db ~name entities =
  total db ~name
    (List.map (fun e -> `Lock e) entities
    @ List.map (fun e -> `Update e) entities
    @ List.map (fun e -> `Unlock e) entities)
