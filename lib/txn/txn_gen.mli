(** Random generation of well-formed distributed locked transactions and
    systems, for property tests and benchmark workloads.

    The generator first draws a random *global* linear order of all steps
    (respecting [Lx < update x < Ux] for every entity), then keeps its
    per-site projections as chains (guaranteeing the paper's per-site
    totality) plus a random subset of the cross-site pairs as explicit
    precedences. Every generated transaction is therefore well-formed by
    construction, and totally ordered when [cross_prob = 1.0]. *)

val random_txn :
  Random.State.t ->
  Database.t ->
  name:string ->
  entities:Database.entity list ->
  ?with_updates:bool ->
  ?cross_prob:float ->
  unit ->
  Txn.t
(** [entities] are the entities the transaction locks (in a random order of
    access). [with_updates] (default [false], matching the paper's figures)
    inserts an update between each pair. [cross_prob] (default [0.3]) is
    the probability of retaining each cross-site precedence from the base
    linear order. *)

val random_database :
  Random.State.t -> num_entities:int -> num_sites:int -> Database.t
(** Entities [e0 ... e{n-1}] assigned to sites so that every site
    [1..num_sites] is used at least once (requires
    [num_entities >= num_sites]). *)

val random_pair_system :
  Random.State.t ->
  num_shared:int ->
  num_private:int ->
  num_sites:int ->
  ?with_updates:bool ->
  ?cross_prob:float ->
  unit ->
  System.t
(** A two-transaction system where both transactions lock the [num_shared]
    shared entities and each additionally locks [num_private] entities of
    its own. *)

val random_multi_system :
  Random.State.t ->
  num_txns:int ->
  num_entities:int ->
  entities_per_txn:int ->
  num_sites:int ->
  ?with_updates:bool ->
  ?cross_prob:float ->
  unit ->
  System.t
(** [num_txns] transactions each locking a random [entities_per_txn]-subset
    of the entity pool. *)
