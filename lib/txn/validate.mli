(** Well-formedness of locked transactions, per the paper's Section 2
    assumptions:

    - steps on entities stored at the same site are totally ordered;
    - at most one [lock x]/[unlock x] pair per entity, the lock preceding
      the unlock, and neither appearing without the other;
    - every [update x] lies strictly between the pair;
    - ([`Strict] only) each pair surrounds at least one update. The paper
      itself drops update steps in its figures ("we omit the update steps,
      as they do not affect safety"), so the relaxed level is the default
      for analysis inputs. *)

type violation =
  | Site_not_total of { site : int; step_a : int; step_b : int }
      (** Two same-site steps are concurrent. *)
  | Duplicate_lock of { entity : Database.entity; steps : int list }
  | Duplicate_unlock of { entity : Database.entity; steps : int list }
  | Lock_without_unlock of { entity : Database.entity; lock : int }
  | Unlock_without_lock of { entity : Database.entity; unlock : int }
  | Unlock_not_after_lock of {
      entity : Database.entity;
      lock : int;
      unlock : int;
    }
  | Update_outside_section of { entity : Database.entity; update : int }
      (** An update not strictly between the entity's lock and unlock. *)
  | Update_without_lock of { entity : Database.entity; update : int }
  | Empty_section of { entity : Database.entity }
      (** Strict mode: a lock/unlock pair with no update in between. *)

val check : ?strict:bool -> Database.t -> Txn.t -> violation list
(** Empty list = well-formed. [strict] defaults to [false]. *)

val check_exn : ?strict:bool -> Database.t -> Txn.t -> unit
(** Raises [Invalid_argument] with a rendered report on violation. *)

val to_string : Database.t -> Txn.t -> violation -> string
