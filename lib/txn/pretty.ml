let site_columns db txn =
  let sites =
    List.sort_uniq compare
      (List.map (Database.site db) (Txn.touched_entities txn))
  in
  let width = 9 in
  let buf = Buffer.create 256 in
  let pad s = Printf.sprintf "%-*s" width s in
  Buffer.add_string buf (pad (Txn.name txn));
  List.iter
    (fun s -> Buffer.add_string buf (pad (Printf.sprintf "site %d" s)))
    sites;
  Buffer.add_char buf '\n';
  let ext = Distlock_order.Poset.linearize (Txn.order txn) in
  Array.iter
    (fun i ->
      let step = Txn.step txn i in
      let site = Database.site db step.Step.entity in
      Buffer.add_string buf (pad "");
      List.iter
        (fun s ->
          Buffer.add_string buf
            (pad (if s = site then Step.to_string db step else "")))
        sites;
      Buffer.add_char buf '\n')
    ext;
  Buffer.contents buf

let system sys =
  let db = System.db sys in
  String.concat "\n"
    (Array.to_list (Array.map (site_columns db) (System.txns sys)))
