(** Ergonomic construction of transactions.

    Steps are declared with string labels and precedences are given by
    label, either as individual arcs or as chains ([["a";"b";"c"]] meaning
    [a < b < c]). Entities are referred to by name and must already be
    registered in the database. *)

type action_spec =
  [ `Lock of string | `Unlock of string | `Update of string ]

val make :
  Database.t ->
  name:string ->
  steps:(string * action_spec) list ->
  ?arcs:(string * string) list ->
  ?chains:string list list ->
  unit ->
  (Txn.t, string) result
(** Builds a transaction. Errors (as [Error msg]) on: duplicate or unknown
    labels, unknown entities, or a cyclic precedence declaration. The
    result is not validated against the locking discipline — run
    {!Validate.check} for that. *)

val make_exn :
  Database.t ->
  name:string ->
  steps:(string * action_spec) list ->
  ?arcs:(string * string) list ->
  ?chains:string list list ->
  unit ->
  Txn.t

val total : Database.t -> name:string -> action_spec list -> Txn.t
(** A totally ordered (centralized-style) transaction executing the given
    actions in sequence; labels are auto-generated from the actions. *)

val locked_sequence : Database.t -> name:string -> string list -> Txn.t
(** [locked_sequence db ~name ["x"; "y"]] is the totally ordered
    transaction [Lx x Ux Ly y Uy]: lock, update, unlock each entity in
    turn. *)

val two_phase_sequence : Database.t -> name:string -> string list -> Txn.t
(** [Lx Ly ... x y ... Ux Uy ...]: all locks, then all updates, then all
    unlocks — a canonical two-phase transaction. *)
