type entity = int

type t = {
  mutable names : string array;
  mutable sites : int array;
  mutable count : int;
  index : (string, int) Hashtbl.t;
  mutable max_site : int;
}

let create () =
  {
    names = Array.make 8 "";
    sites = Array.make 8 0;
    count = 0;
    index = Hashtbl.create 16;
    max_site = 0;
  }

let grow t =
  if t.count = Array.length t.names then begin
    let cap = 2 * t.count in
    let names = Array.make cap "" and sites = Array.make cap 0 in
    Array.blit t.names 0 names 0 t.count;
    Array.blit t.sites 0 sites 0 t.count;
    t.names <- names;
    t.sites <- sites
  end

let add t ~name ~site =
  if site < 1 then invalid_arg "Database.add: sites are numbered from 1";
  match Hashtbl.find_opt t.index name with
  | Some id ->
      if t.sites.(id) <> site then
        invalid_arg
          (Printf.sprintf "Database.add: entity %S already stored at site %d"
             name t.sites.(id));
      id
  | None ->
      grow t;
      let id = t.count in
      t.names.(id) <- name;
      t.sites.(id) <- site;
      t.count <- t.count + 1;
      Hashtbl.add t.index name id;
      if site > t.max_site then t.max_site <- site;
      id

let add_all t l = List.iter (fun (name, site) -> ignore (add t ~name ~site)) l

let find t name = Hashtbl.find_opt t.index name

let id_exn t name =
  match find t name with Some id -> id | None -> raise Not_found

let check t e =
  if e < 0 || e >= t.count then invalid_arg "Database: entity id out of range"

let name t e =
  check t e;
  t.names.(e)

let site t e =
  check t e;
  t.sites.(e)

let num_entities t = t.count

let num_sites t = t.max_site

let entities t = List.init t.count Fun.id

let entities_at t s = List.filter (fun e -> t.sites.(e) = s) (entities t)

let pp ppf t =
  Format.fprintf ppf "@[<v>database: %d entities, %d sites@," t.count t.max_site;
  List.iter
    (fun e -> Format.fprintf ppf "  %s @@ site %d@," t.names.(e) t.sites.(e))
    (entities t);
  Format.fprintf ppf "@]"
