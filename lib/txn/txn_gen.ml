open Distlock_order

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(* Random topological order of the per-entity L < u < U constraints:
   a random-available Kahn walk. *)
let random_base_order rng constraints n =
  let g = Distlock_graph.Digraph.of_arcs n constraints in
  let indeg = Array.init n (Distlock_graph.Digraph.in_degree g) in
  let placed = Array.make n false in
  let order = Array.make n (-1) in
  for depth = 0 to n - 1 do
    let avail = ref [] in
    for v = 0 to n - 1 do
      if (not placed.(v)) && indeg.(v) = 0 then avail := v :: !avail
    done;
    let choices = Array.of_list !avail in
    let v = choices.(Random.State.int rng (Array.length choices)) in
    placed.(v) <- true;
    order.(depth) <- v;
    Distlock_graph.Digraph.iter_succ g v (fun w -> indeg.(w) <- indeg.(w) - 1)
  done;
  order

let random_txn rng db ~name ~entities ?(with_updates = false)
    ?(cross_prob = 0.3) () =
  let entities = Array.of_list entities in
  shuffle rng entities;
  let steps = ref [] and constraints = ref [] and labels = ref [] in
  let n = ref 0 in
  let push step label =
    steps := step :: !steps;
    labels := label :: !labels;
    incr n;
    !n - 1
  in
  Array.iter
    (fun e ->
      let en = Database.name db e in
      let l = push (Step.lock e) ("L" ^ en) in
      let mid =
        if with_updates then Some (push (Step.update e) en) else None
      in
      let u = push (Step.unlock e) ("U" ^ en) in
      match mid with
      | Some m -> constraints := (l, m) :: (m, u) :: !constraints
      | None -> constraints := (l, u) :: !constraints)
    entities;
  let n = !n in
  let steps = Array.of_list (List.rev !steps) in
  let labels = Array.of_list (List.rev !labels) in
  let base = random_base_order rng !constraints n in
  let site_of i = Database.site db steps.(i).Step.entity in
  let arcs = ref [] in
  (* Per-site chains along the base order. *)
  let last_at_site = Hashtbl.create 8 in
  Array.iter
    (fun i ->
      let s = site_of i in
      (match Hashtbl.find_opt last_at_site s with
      | Some prev -> arcs := (prev, i) :: !arcs
      | None -> ());
      Hashtbl.replace last_at_site s i)
    base;
  (* Per-entity L < (u <) U (same-site, hence already chained, but keep the
     explicit arcs for robustness with single-entity sites). *)
  arcs := !constraints @ !arcs;
  (* Random cross-site precedences drawn from the base order. *)
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let i = base.(a) and j = base.(b) in
      if site_of i <> site_of j && Random.State.float rng 1.0 < cross_prob then
        arcs := (i, j) :: !arcs
    done
  done;
  let order =
    match Poset.of_arcs n !arcs with Some p -> p | None -> assert false
  in
  Txn.make ~name ~labels ~steps order

let random_database rng ~num_entities ~num_sites =
  if num_entities < num_sites then
    invalid_arg "Txn_gen.random_database: fewer entities than sites";
  let db = Database.create () in
  let sites = Array.init num_entities (fun i ->
      if i < num_sites then i + 1 else 1 + Random.State.int rng num_sites)
  in
  shuffle rng sites;
  Array.iteri
    (fun i site -> ignore (Database.add db ~name:(Printf.sprintf "e%d" i) ~site))
    sites;
  db

let random_pair_system rng ~num_shared ~num_private ~num_sites ?with_updates
    ?cross_prob () =
  let total = num_shared + (2 * num_private) in
  let db = random_database rng ~num_entities:(max total num_sites) ~num_sites in
  let all = Array.of_list (Database.entities db) in
  shuffle rng all;
  let slice off len = Array.to_list (Array.sub all off len) in
  let shared = slice 0 num_shared in
  let private1 = slice num_shared num_private in
  let private2 = slice (num_shared + num_private) num_private in
  let t1 =
    random_txn rng db ~name:"T1" ~entities:(shared @ private1) ?with_updates
      ?cross_prob ()
  in
  let t2 =
    random_txn rng db ~name:"T2" ~entities:(shared @ private2) ?with_updates
      ?cross_prob ()
  in
  System.make db [ t1; t2 ]

let random_multi_system rng ~num_txns ~num_entities ~entities_per_txn
    ~num_sites ?with_updates ?cross_prob () =
  if entities_per_txn > num_entities then
    invalid_arg "Txn_gen.random_multi_system: entities_per_txn > num_entities";
  let db =
    random_database rng ~num_entities:(max num_entities num_sites) ~num_sites
  in
  let all = Array.of_list (Database.entities db) in
  let txns =
    List.init num_txns (fun k ->
        shuffle rng all;
        let entities = Array.to_list (Array.sub all 0 entities_per_txn) in
        random_txn rng db
          ~name:(Printf.sprintf "T%d" (k + 1))
          ~entities ?with_updates ?cross_prob ())
  in
  System.make db txns
