open Distlock_order

(** Locked transactions: a partial order of steps (Section 2).

    A transaction is [T = (S, A, e)] — steps, a partial order, a
    modifies-function — here represented as an array of {!Step.t} plus a
    {!Poset.t} over step indices. Step labels are kept for printing and for
    the builder's by-label arc syntax. *)

type t

val make :
  name:string -> ?labels:string array -> steps:Step.t array -> Poset.t -> t
(** Raises [Invalid_argument] if the poset size differs from the step
    count. Does *not* validate the paper's locking discipline — see
    {!Validate}. *)

val name : t -> string

val num_steps : t -> int

val step : t -> int -> Step.t

val steps : t -> Step.t array
(** A copy. *)

val label : t -> int -> string

val order : t -> Poset.t

val precedes : t -> int -> int -> bool
(** Strict precedence between step indices, the paper's [>_T]. *)

val concurrent : t -> int -> int -> bool

val lock_of : t -> Database.entity -> int option
(** Index of the [lock x] step, if the transaction locks [x]. Assumes the
    at-most-one-pair discipline; with duplicates, the first by index wins. *)

val unlock_of : t -> Database.entity -> int option

val updates_of : t -> Database.entity -> int list

val locked_entities : t -> Database.entity list
(** Entities with both a lock and an unlock step, ascending ids. *)

val touched_entities : t -> Database.entity list
(** Every entity appearing in any step. *)

val steps_at_site : t -> Database.t -> int -> int list
(** Indices of steps whose entity is stored at the given site. *)

val add_precedences : t -> (int * int) list -> t option
(** Theorem 2's closure operation: same steps, extra precedences; [None]
    if the extended relation is cyclic. *)

val along : t -> int array -> t
(** [along t ext] is the totally ordered transaction obtained by replacing
    the partial order with the linear extension [ext] (a permutation of
    step indices). Step indices are preserved, only the order changes.
    Raises [Invalid_argument] if [ext] is not a linear extension of [t]. *)

val is_total : t -> bool

val fingerprint : t -> string
(** Order-canonical fingerprint (32-char hex digest) of this one
    transaction: its name (length-prefixed), step list, and full step
    partial order (emitted sorted, so the digest is independent of how
    the relation was built). Depends on nothing outside the
    transaction, so it is stable under any change to other transactions
    or to entities the transaction does not mention —
    {!System.fingerprint} and {!System.pair_fingerprint} are derived
    from these digests. *)

val pp : Database.t -> Format.formatter -> t -> unit
(** Covering-relation rendering, paper notation for steps. *)
