(** A small text format for transaction systems, used by the CLI and for
    fixtures. Example:

    {v
    # Fig 1-style system
    entity x @ 1
    entity z @ 2

    txn T1 {
      step Lx lock x
      step ux update x
      step Ux unlock x
      chain Lx ux Ux
    }

    txn T2 {
      step a lock x
      step b unlock x
      arc a -> b
    }
    v}

    Lines are [entity <name> @ <site>], or inside a [txn <name> { ... }]
    block: [step <label> (lock|unlock|update) <entity>],
    [arc <label> -> <label>], [chain <label> <label> ...]. [#] starts a
    comment. *)

val system_of_string : string -> (System.t, string) result

val system_to_string : System.t -> string
(** Round-trips through {!system_of_string} (labels are preserved; the
    emitted precedences are the covering relation). *)
