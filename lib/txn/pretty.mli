(** Figure-style rendering of transactions: one column per site, steps
    top-to-bottom along a linear extension — the layout the paper's own
    figures use. *)

val site_columns : Database.t -> Txn.t -> string
(** E.g. for Fig 1's [T1]:

    {v
    T1           site 1   site 2
                 Lx
                 x
                 Ly
                 ...      Lw
    v}

    Steps are placed on separate rows in the order of a default linear
    extension; each step appears in its entity's site column. *)

val system : System.t -> string
(** All transactions of a system, side by side vertically. *)
