type action = Lock | Unlock | Update

type t = { action : action; entity : Database.entity }

let lock entity = { action = Lock; entity }

let unlock entity = { action = Unlock; entity }

let update entity = { action = Update; entity }

let is_lock s = s.action = Lock

let is_unlock s = s.action = Unlock

let is_update s = s.action = Update

let equal a b = a.action = b.action && a.entity = b.entity

let to_string db s =
  let n = Database.name db s.entity in
  match s.action with Lock -> "L" ^ n | Unlock -> "U" ^ n | Update -> n

let pp db ppf s = Format.pp_print_string ppf (to_string db s)
