(** A locked transaction system [T = {T1, ..., Tr}] over one database. *)

type t

val make : Database.t -> Txn.t list -> t
(** Raises [Invalid_argument] on an empty transaction list or duplicate
    transaction names. *)

val db : t -> Database.t

val txns : t -> Txn.t array
(** A copy. *)

val num_txns : t -> int

val txn : t -> int -> Txn.t

val total_steps : t -> int
(** The paper's [n]: steps summed over all transactions. *)

val pair : t -> Txn.t * Txn.t
(** The two transactions of a two-transaction system; raises
    [Invalid_argument] otherwise. *)

val common_locked : t -> int -> int -> Database.entity list
(** Entities locked-unlocked by both of two transactions — the vertex set
    of [D(Ti,Tj)] (Definition 1). *)

val validate : ?strict:bool -> t -> (Txn.t * Validate.violation) list
(** All violations across all transactions. *)

val validate_exn : ?strict:bool -> t -> unit

val sites_used : t -> int list
(** Sites actually storing some entity touched by some transaction. *)

val fingerprint : t -> string
(** A canonical fingerprint (32-char hex digest) over everything a
    safety verdict depends on: the database (entity names and their
    stored-at sites, in id order) and one {!Txn.fingerprint} per
    transaction, in system order. Two systems with equal fingerprints
    get the same verdict, so the digest keys the engine's verdict
    cache; any perturbation — moving an entity to another site, adding
    or removing a precedence — changes it. *)

val pair_fingerprint : t -> int -> int -> string
(** [pair_fingerprint t i j] is a canonical fingerprint of the
    two-transaction subsystem [{Ti, Tj}]: the sites of the entities the
    two transactions touch plus their two {!Txn.fingerprint}s, combined
    order-canonically so [pair_fingerprint t i j =
    pair_fingerprint t j i]. It depends on nothing else — reordering,
    adding, removing, or editing {e other} transactions (or entities
    neither touches) leaves it unchanged — so it keys pair-verdict
    caches across edits of the enclosing system. Raises
    [Invalid_argument] when [i = j]. *)

val pair_fingerprint_with : fp:(int -> string) -> t -> int -> int -> string
(** {!pair_fingerprint} with the per-transaction digests supplied by
    [fp] (which must return [Txn.fingerprint (txn t i)] for index [i])
    instead of recomputed — for callers that already hold them, e.g. an
    incremental session re-keying O(n) pairs per edit. The result is
    byte-identical to {!pair_fingerprint}. *)

val pp : Format.formatter -> t -> unit
