(** A locked transaction system [T = {T1, ..., Tr}] over one database. *)

type t

val make : Database.t -> Txn.t list -> t
(** Raises [Invalid_argument] on an empty transaction list or duplicate
    transaction names. *)

val db : t -> Database.t

val txns : t -> Txn.t array
(** A copy. *)

val num_txns : t -> int

val txn : t -> int -> Txn.t

val total_steps : t -> int
(** The paper's [n]: steps summed over all transactions. *)

val pair : t -> Txn.t * Txn.t
(** The two transactions of a two-transaction system; raises
    [Invalid_argument] otherwise. *)

val common_locked : t -> int -> int -> Database.entity list
(** Entities locked-unlocked by both of two transactions — the vertex set
    of [D(Ti,Tj)] (Definition 1). *)

val validate : ?strict:bool -> t -> (Txn.t * Validate.violation) list
(** All violations across all transactions. *)

val validate_exn : ?strict:bool -> t -> unit

val sites_used : t -> int list
(** Sites actually storing some entity touched by some transaction. *)

val fingerprint : t -> string
(** A canonical fingerprint (32-char hex digest) over everything a
    safety verdict depends on: the database (entity names and their
    stored-at sites, in id order) and, per transaction, its name, step
    list, and full step partial order. Two systems with equal
    fingerprints get the same verdict, so the digest keys the engine's
    verdict cache; any perturbation — moving an entity to another site,
    adding or removing a precedence — changes it. *)

val pp : Format.formatter -> t -> unit
