type violation =
  | Site_not_total of { site : int; step_a : int; step_b : int }
  | Duplicate_lock of { entity : Database.entity; steps : int list }
  | Duplicate_unlock of { entity : Database.entity; steps : int list }
  | Lock_without_unlock of { entity : Database.entity; lock : int }
  | Unlock_without_lock of { entity : Database.entity; unlock : int }
  | Unlock_not_after_lock of {
      entity : Database.entity;
      lock : int;
      unlock : int;
    }
  | Update_outside_section of { entity : Database.entity; update : int }
  | Update_without_lock of { entity : Database.entity; update : int }
  | Empty_section of { entity : Database.entity }

let steps_of_kind t e kind =
  let acc = ref [] in
  for i = Txn.num_steps t - 1 downto 0 do
    let s = Txn.step t i in
    if s.Step.entity = e && s.Step.action = kind then acc := i :: !acc
  done;
  !acc

let check ?(strict = false) db t =
  let violations = ref [] in
  let report v = violations := v :: !violations in
  (* Per-site totality. *)
  for site = 1 to Database.num_sites db do
    let at_site = Txn.steps_at_site t db site in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter
            (fun b ->
              if Txn.concurrent t a b then
                report (Site_not_total { site; step_a = a; step_b = b }))
            rest;
          pairs rest
    in
    pairs at_site
  done;
  (* Lock discipline per entity. *)
  List.iter
    (fun e ->
      let locks = steps_of_kind t e Step.Lock in
      let unlocks = steps_of_kind t e Step.Unlock in
      let updates = steps_of_kind t e Step.Update in
      (match locks with
      | _ :: _ :: _ -> report (Duplicate_lock { entity = e; steps = locks })
      | _ -> ());
      (match unlocks with
      | _ :: _ :: _ -> report (Duplicate_unlock { entity = e; steps = unlocks })
      | _ -> ());
      match (locks, unlocks) with
      | [], [] ->
          List.iter
            (fun u -> report (Update_without_lock { entity = e; update = u }))
            updates
      | l :: _, [] -> report (Lock_without_unlock { entity = e; lock = l })
      | [], u :: _ -> report (Unlock_without_lock { entity = e; unlock = u })
      | l :: _, u :: _ ->
          if not (Txn.precedes t l u) then
            report (Unlock_not_after_lock { entity = e; lock = l; unlock = u });
          List.iter
            (fun up ->
              if not (Txn.precedes t l up && Txn.precedes t up u) then
                report (Update_outside_section { entity = e; update = up }))
            updates;
          if strict && updates = [] then report (Empty_section { entity = e }))
    (Txn.touched_entities t);
  List.rev !violations

let to_string db t v =
  let ename e = Database.name db e in
  let sname i = Txn.label t i in
  match v with
  | Site_not_total { site; step_a; step_b } ->
      Printf.sprintf "steps %s and %s at site %d are not ordered" (sname step_a)
        (sname step_b) site
  | Duplicate_lock { entity; _ } ->
      Printf.sprintf "more than one lock step for %s" (ename entity)
  | Duplicate_unlock { entity; _ } ->
      Printf.sprintf "more than one unlock step for %s" (ename entity)
  | Lock_without_unlock { entity; _ } ->
      Printf.sprintf "lock %s has no matching unlock" (ename entity)
  | Unlock_without_lock { entity; _ } ->
      Printf.sprintf "unlock %s has no matching lock" (ename entity)
  | Unlock_not_after_lock { entity; _ } ->
      Printf.sprintf "unlock %s does not follow lock %s" (ename entity)
        (ename entity)
  | Update_outside_section { entity; update } ->
      Printf.sprintf "update step %s of %s is not inside its locked section"
        (sname update) (ename entity)
  | Update_without_lock { entity; update } ->
      Printf.sprintf "update step %s of %s is not protected by a lock"
        (sname update) (ename entity)
  | Empty_section { entity } ->
      Printf.sprintf "lock/unlock pair for %s surrounds no update"
        (ename entity)

let check_exn ?strict db t =
  match check ?strict db t with
  | [] -> ()
  | vs ->
      let msgs = List.map (to_string db t) vs in
      invalid_arg
        (Printf.sprintf "transaction %s is not well-formed: %s" (Txn.name t)
           (String.concat "; " msgs))
