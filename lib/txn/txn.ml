open Distlock_order

type t = {
  name : string;
  steps : Step.t array;
  order : Poset.t;
  labels : string array;
}

let make ~name ?labels ~steps order =
  let n = Array.length steps in
  if Poset.size order <> n then
    invalid_arg "Txn.make: poset size differs from step count";
  let labels =
    match labels with
    | Some l ->
        if Array.length l <> n then
          invalid_arg "Txn.make: label count differs from step count";
        l
    | None -> Array.init n string_of_int
  in
  { name; steps; order; labels }

let name t = t.name

let num_steps t = Array.length t.steps

let step t i = t.steps.(i)

let steps t = Array.copy t.steps

let label t i = t.labels.(i)

let order t = t.order

let precedes t a b = Poset.precedes t.order a b

let concurrent t a b = Poset.concurrent t.order a b

let find_step t pred =
  let n = num_steps t in
  let rec go i = if i >= n then None else if pred t.steps.(i) then Some i else go (i + 1) in
  go 0

let lock_of t e =
  find_step t (fun s -> s.Step.action = Step.Lock && s.Step.entity = e)

let unlock_of t e =
  find_step t (fun s -> s.Step.action = Step.Unlock && s.Step.entity = e)

let updates_of t e =
  let acc = ref [] in
  Array.iteri
    (fun i s ->
      if s.Step.action = Step.Update && s.Step.entity = e then acc := i :: !acc)
    t.steps;
  List.rev !acc

let touched_entities t =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      if not (Hashtbl.mem seen s.Step.entity) then
        Hashtbl.add seen s.Step.entity ())
    t.steps;
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) seen [])

let locked_entities t =
  List.filter
    (fun e -> lock_of t e <> None && unlock_of t e <> None)
    (touched_entities t)

let steps_at_site t db site =
  let acc = ref [] in
  Array.iteri
    (fun i s -> if Database.site db s.Step.entity = site then acc := i :: !acc)
    t.steps;
  List.rev !acc

let add_precedences t arcs =
  Option.map (fun order -> { t with order }) (Poset.add_arcs t.order arcs)

let along t ext =
  if not (Poset.is_linear_extension t.order ext) then
    invalid_arg "Txn.along: not a linear extension";
  let n = num_steps t in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) ext;
  let arcs = ref [] in
  for i = 0 to n - 2 do
    arcs := (ext.(i), ext.(i + 1)) :: !arcs
  done;
  let order =
    match Poset.of_arcs n !arcs with Some p -> p | None -> assert false
  in
  { t with order }

let is_total t = Poset.is_total t.order

(* Canonical serialization backing [fingerprint]. The name is
   length-prefixed so no choice of transaction names can make two
   different transactions serialize identically; the order relation is
   emitted sorted so the digest does not depend on insertion order. *)
let serialize t =
  let buf = Buffer.create 128 in
  let add = Buffer.add_string buf in
  add (string_of_int (String.length t.name));
  add ":";
  add t.name;
  add ":";
  Array.iter
    (fun (s : Step.t) ->
      add
        (match s.Step.action with
        | Step.Lock -> "L"
        | Step.Unlock -> "U"
        | Step.Update -> "u");
      add (string_of_int s.Step.entity);
      add ",")
    t.steps;
  add "#";
  List.iter
    (fun (a, b) ->
      add (string_of_int a);
      add "<";
      add (string_of_int b);
      add ";")
    (List.sort compare (Poset.relation t.order));
  Buffer.contents buf

let fingerprint t = Digest.to_hex (Digest.string (serialize t))

let pp db ppf t =
  Format.fprintf ppf "@[<v>%s (%d steps):@," t.name (num_steps t);
  Array.iteri
    (fun i s ->
      Format.fprintf ppf "  [%d:%s] %s@," i t.labels.(i) (Step.to_string db s))
    t.steps;
  Format.fprintf ppf "  covers: %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (a, b) ->
         Format.fprintf ppf "%s<%s"
           (Step.to_string db t.steps.(a))
           (Step.to_string db t.steps.(b))))
    (Poset.covers t.order)
