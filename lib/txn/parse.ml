let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

type block = {
  name : string;
  mutable steps : (string * Builder.action_spec) list; (* reversed *)
  mutable arcs : (string * string) list;
  mutable chains : string list list;
}

let system_of_string text =
  let db = Database.create () in
  let blocks = ref [] in
  let current = ref None in
  let error = ref None in
  let fail lineno msg =
    if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match (tokens line, !current) with
      | [], _ -> ()
      | [ "entity"; name; "@"; site ], None -> (
          match int_of_string_opt site with
          | Some s when s >= 1 -> (
              try ignore (Database.add db ~name ~site:s)
              with Invalid_argument m -> fail lineno m)
          | _ -> fail lineno "bad site number")
      | [ "txn"; name; "{" ], None ->
          current := Some { name; steps = []; arcs = []; chains = [] }
      | [ "}" ], Some b ->
          blocks := b :: !blocks;
          current := None
      | [ "step"; label; action; entity ], Some b -> (
          let spec =
            match action with
            | "lock" -> Some (`Lock entity)
            | "unlock" -> Some (`Unlock entity)
            | "update" -> Some (`Update entity)
            | _ -> None
          in
          match spec with
          | Some spec -> b.steps <- (label, spec) :: b.steps
          | None -> fail lineno ("unknown action " ^ action))
      | [ "arc"; a; "->"; c ], Some b -> b.arcs <- (a, c) :: b.arcs
      | "chain" :: (_ :: _ :: _ as labels), Some b ->
          b.chains <- labels :: b.chains
      | tok :: _, _ -> fail lineno ("unexpected token " ^ tok))
    lines;
  if !current <> None then
    (if !error = None then error := Some "unterminated txn block");
  match !error with
  | Some msg -> Error msg
  | None -> (
      let build b =
        Builder.make db ~name:b.name ~steps:(List.rev b.steps)
          ~arcs:(List.rev b.arcs) ~chains:(List.rev b.chains) ()
      in
      let rec build_all acc = function
        | [] -> Ok (List.rev acc)
        | b :: rest -> (
            match build b with
            | Ok t -> build_all (t :: acc) rest
            | Error m -> Error (Printf.sprintf "txn %s: %s" b.name m))
      in
      match build_all [] (List.rev !blocks) with
      | Error m -> Error m
      | Ok [] -> Error "no transactions"
      | Ok txns -> (
          try Ok (System.make db txns) with Invalid_argument m -> Error m))

let system_to_string sys =
  let db = System.db sys in
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun e -> pf "entity %s @ %d\n" (Database.name db e) (Database.site db e))
    (Database.entities db);
  Array.iter
    (fun txn ->
      pf "\ntxn %s {\n" (Txn.name txn);
      for i = 0 to Txn.num_steps txn - 1 do
        let s = Txn.step txn i in
        let action =
          match s.Step.action with
          | Step.Lock -> "lock"
          | Step.Unlock -> "unlock"
          | Step.Update -> "update"
        in
        pf "  step %s %s %s\n" (Txn.label txn i) action
          (Database.name db s.Step.entity)
      done;
      List.iter
        (fun (a, b) -> pf "  arc %s -> %s\n" (Txn.label txn a) (Txn.label txn b))
        (Distlock_order.Poset.covers (Txn.order txn));
      pf "}\n")
    (System.txns sys);
  Buffer.contents buf
